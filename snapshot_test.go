package exactsim_test

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	exactsim "github.com/exactsim/exactsim"
)

func snapshotServiceOptions() exactsim.ServiceOptions {
	return exactsim.ServiceOptions{
		Workers:   4,
		CacheSize: -1, // force recomputation so the diag index does the warm work
		QuerierOptions: []exactsim.QuerierOption{
			exactsim.WithSeed(42),
			exactsim.WithEpsilon(0.02),
		},
	}
}

func mustQuery(t *testing.T, s *exactsim.Service, src exactsim.NodeID) *exactsim.QueryResult {
	t.Helper()
	resp := s.Query(context.Background(), exactsim.Request{Source: src})
	if resp.Err != nil {
		t.Fatalf("query %d: %v", src, resp.Err)
	}
	return resp.Result
}

func scoresBitEqual(a, b []float64) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

// TestSnapshotRoundTripDeterminism is the acceptance proof: a
// single-source query on a snapshot-restored Service is bit-identical
// to the writer's result — warmed sources and never-seen sources alike
// — and the restored index serves the writer's chunks without a single
// recomputation.
func TestSnapshotRoundTripDeterminism(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(500, 4, 7)
	writer, err := exactsim.NewService(g, snapshotServiceOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	warmed := []exactsim.NodeID{0, 3, 17, 101, 499}
	ref := make(map[exactsim.NodeID][]float64)
	for _, src := range warmed {
		ref[src] = mustQuery(t, writer, src).Scores
	}
	writerStats := writer.Stats()
	if writerStats.DiagChunks == 0 {
		t.Fatal("writer accumulated no diag chunks; the restore test would be vacuous")
	}

	path := filepath.Join(t.TempDir(), "warm.snap")
	if err := writer.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	// The writer answers this one AFTER the snapshot: the restored side
	// must agree bit-for-bit even for sources the spill never saw.
	coldSrc := exactsim.NodeID(250)
	ref[coldSrc] = mustQuery(t, writer, coldSrc).Scores

	restored, err := exactsim.OpenSnapshot(path, snapshotServiceOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if st := restored.Stats(); !st.DiagIndexEnabled || st.DiagChunks != writerStats.DiagChunks {
		t.Fatalf("restored diag index has %d chunks, writer had %d", st.DiagChunks, writerStats.DiagChunks)
	}
	if restored.Epoch() != 1 {
		t.Fatalf("restored service starts at epoch %d, want 1", restored.Epoch())
	}
	if restored.Graph().N() != g.N() || restored.Graph().M() != g.M() {
		t.Fatal("restored graph shape differs")
	}

	for src, want := range ref {
		got := mustQuery(t, restored, src).Scores
		if i, ok := scoresBitEqual(want, got); !ok {
			t.Fatalf("source %d diverges at index %d: writer %v restored %v",
				src, i, want[i], got[i])
		}
	}
	// Warmed sources must have been answered entirely from restored
	// chunks: zero misses until the cold source touched new cells.
	st := restored.Stats()
	if st.DiagHits == 0 {
		t.Fatal("restored index served no hits")
	}
}

// TestSnapshotWithoutDiagIndex covers the graph-only container: a
// service with indexing disabled still snapshots and restores.
func TestSnapshotWithoutDiagIndex(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(300, 3, 5)
	opts := snapshotServiceOptions()
	opts.DiagIndexBytes = -1
	writer, err := exactsim.NewService(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	want := mustQuery(t, writer, 42).Scores

	path := filepath.Join(t.TempDir(), "noidx.snap")
	if err := writer.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	restored, err := exactsim.OpenSnapshot(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if st := restored.Stats(); st.DiagIndexEnabled {
		t.Fatal("indexing disabled but restored service has an index")
	}
	if i, ok := scoresBitEqual(want, mustQuery(t, restored, 42).Scores); !ok {
		t.Fatalf("scores diverge at %d", i)
	}
}

// TestSnapshotRestoreIgnoresSpillWhenDisabled: a snapshot carrying a
// spill restores fine into a service configured without indexing, and
// answers exactly like any other index-free service on that graph.
// (Index-attached and index-free configurations quantize sample
// allowances differently by design, so the baseline here is an
// index-free service, not the index-carrying writer.)
func TestSnapshotRestoreIgnoresSpillWhenDisabled(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(300, 3, 5)
	writer, err := exactsim.NewService(g, snapshotServiceOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	mustQuery(t, writer, 7) // populate the spill
	path := filepath.Join(t.TempDir(), "warm.snap")
	if err := writer.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	opts := snapshotServiceOptions()
	opts.DiagIndexBytes = -1
	baseline, err := exactsim.NewService(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer baseline.Close()
	want := mustQuery(t, baseline, 7).Scores

	restored, err := exactsim.OpenSnapshot(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if st := restored.Stats(); st.DiagIndexEnabled {
		t.Fatal("index restored despite being disabled")
	}
	if i, ok := scoresBitEqual(want, mustQuery(t, restored, 7).Scores); !ok {
		t.Fatalf("scores diverge at %d", i)
	}
}

// TestSnapshotInspect sanity-checks the inspection path against a live
// service's own gauges.
func TestSnapshotInspect(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(300, 3, 9)
	svc, err := exactsim.NewService(g, snapshotServiceOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	mustQuery(t, svc, 1)
	st := svc.Stats()

	path := filepath.Join(t.TempDir(), "i.snap")
	if err := svc.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	info, err := exactsim.InspectSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Sections) != 2 {
		t.Fatalf("sections = %d, want graph + diag", len(info.Sections))
	}
	if info.GraphStats.N != g.N() || info.GraphStats.M != g.M() {
		t.Fatalf("inspect graph stats %+v", info.GraphStats)
	}
	if info.Diag == nil {
		t.Fatal("inspect lost the diag section")
	}
	if !info.Diag.Bound || info.Diag.Seed != 42 {
		t.Fatalf("inspect diag binding %+v", info.Diag)
	}
	if info.Diag.Chunks != st.DiagChunks || info.Diag.Explores != st.DiagExplores {
		t.Fatalf("inspect counts %d/%d vs stats %d/%d",
			info.Diag.Chunks, info.Diag.Explores, st.DiagChunks, st.DiagExplores)
	}
	if info.GraphChecksum == 0 {
		t.Fatal("zero graph checksum")
	}
}

// TestSnapshotOnClosedService: Snapshot after Close answers with the
// closed error, not a partial container.
func TestSnapshotOnClosedService(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(100, 3, 1)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if err := svc.SaveSnapshot(filepath.Join(t.TempDir(), "x.snap")); err == nil {
		t.Fatal("snapshot of a closed service succeeded")
	}
}

// TestOpenBinaryServesQueries: an mmap-backed graph drops into the
// regular serving path and answers identically to its heap twin.
func TestOpenBinaryServesQueries(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(300, 3, 3)
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := exactsim.SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	mm, err := exactsim.OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()

	heapSvc, err := exactsim.NewService(g, snapshotServiceOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer heapSvc.Close()
	mmSvc, err := exactsim.NewService(mm, snapshotServiceOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer mmSvc.Close()

	want := mustQuery(t, heapSvc, 11).Scores
	got := mustQuery(t, mmSvc, 11).Scores
	if i, ok := scoresBitEqual(want, got); !ok {
		t.Fatalf("mmap-backed scores diverge at %d", i)
	}
}
