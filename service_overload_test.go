package exactsim_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/internal/algo"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/sparse"
)

// The test-stall algorithm parks every SingleSource on a gate channel so
// tests can hold the worker pool at a known saturation point. Executions
// are counted so tests can prove a rejected query never computed.
var (
	stallGate       chan struct{}
	stallGateMu     sync.Mutex
	stallExecutions atomic.Int64
	registerStall   sync.Once
)

const stallAlgName = "test-stall"

func setStallGate(ch chan struct{}) {
	stallGateMu.Lock()
	stallGate = ch
	stallGateMu.Unlock()
}

func currentStallGate() chan struct{} {
	stallGateMu.Lock()
	defer stallGateMu.Unlock()
	return stallGate
}

type stallQuerier struct{ g *graph.Graph }

func (q *stallQuerier) Name() string        { return stallAlgName }
func (q *stallQuerier) Graph() *graph.Graph { return q.g }

func (q *stallQuerier) SingleSource(ctx context.Context, source graph.NodeID) (*algo.Result, error) {
	stallExecutions.Add(1)
	if gate := currentStallGate(); gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	scores := make([]float64, q.g.N())
	scores[source] = 1
	return &algo.Result{Algorithm: stallAlgName, Scores: scores}, nil
}

func (q *stallQuerier) TopK(ctx context.Context, source graph.NodeID, k int) ([]sparse.Entry, *algo.Result, error) {
	res, err := q.SingleSource(ctx, source)
	if err != nil {
		return nil, nil, err
	}
	return sparse.TopK(res.Scores, k, source), res, nil
}

func registerStallAlgorithm() {
	registerStall.Do(func() {
		algo.Register(stallAlgName, func(ctx context.Context, g *graph.Graph, cfg algo.Config) (algo.Querier, error) {
			return &stallQuerier{g: g}, nil
		})
	})
}

// saturateService parks one query on the single worker, waits for it to
// start computing, then fills the queue with `depth` more — sequenced so
// no filler can race the worker's pop and get shed early. All parked
// queries ride the given priority and answer into done. The gate release
// is also a t.Cleanup, so a failing assertion can never deadlock Close
// behind a stalled worker.
func saturateService(t *testing.T, svc *exactsim.Service, pri exactsim.Priority, depth int) (done chan exactsim.Response, release func()) {
	t.Helper()
	gate := make(chan struct{})
	setStallGate(gate)
	var once sync.Once
	release = func() {
		once.Do(func() {
			close(gate)
			setStallGate(nil)
		})
	}
	t.Cleanup(release)
	done = make(chan exactsim.Response, depth+1)
	submit := func(src exactsim.NodeID) {
		go func() {
			done <- svc.Query(context.Background(), exactsim.Request{
				Algorithm: stallAlgName, Source: src, NoCache: true, Priority: pri})
		}()
	}
	waitFor := func(what string, ok func(exactsim.ServiceStats) bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := svc.Stats()
			if ok(st) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("service never reached %s: %+v", what, st)
			}
			time.Sleep(time.Millisecond)
		}
	}
	submit(0)
	waitFor("in-flight worker", func(st exactsim.ServiceStats) bool { return st.InFlight >= 1 })
	for i := 1; i <= depth; i++ {
		submit(exactsim.NodeID(i))
	}
	waitFor("full queue", func(st exactsim.ServiceStats) bool { return st.QueueDepth >= depth })
	return done, release
}

// TestServiceShedsWhenSaturated: a full queue answers the next submission
// promptly with a retryable unavailable carrying a retry_after_ms hint —
// it never blocks the submitter behind the backlog. Run under -race in
// the overload-smoke CI job.
func TestServiceShedsWhenSaturated(t *testing.T) {
	registerStallAlgorithm()
	g := exactsim.GenerateBarabasiAlbert(50, 3, 7)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers: 1, QueueDepth: 2, QueueTarget: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	done, release := saturateService(t, svc, exactsim.PriorityBackground, 2)
	defer release()

	start := time.Now()
	resp := svc.Query(context.Background(), exactsim.Request{
		Algorithm: stallAlgName, Source: 40, NoCache: true, Priority: exactsim.PriorityBackground})
	elapsed := time.Since(start)
	if resp.Err == nil {
		t.Fatal("saturated submission succeeded")
	}
	if resp.Err.Code != exactsim.CodeUnavailable {
		t.Fatalf("shed code = %q, want unavailable", resp.Err.Code)
	}
	if resp.Err.RetryAfterMillis <= 0 {
		t.Fatalf("shed response carries no retry_after_ms hint: %+v", resp.Err)
	}
	if got := exactsim.RetryAfter(resp.Err); got <= 0 {
		t.Fatalf("RetryAfter(err) = %v, want > 0", got)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("shed took %v — the submitter blocked behind the backlog", elapsed)
	}
	if st := svc.Stats(); st.ShedQueries == 0 {
		t.Fatalf("shed_queries = 0 after a shed: %+v", st)
	}

	release()
	for i := 0; i < 3; i++ {
		if r := <-done; r.Err != nil {
			t.Fatalf("parked query failed after release: %v", r.Err)
		}
	}
}

// TestServicePriorityEviction: when the queue is full of background
// work, an interactive arrival takes a slot — the newest background job
// is evicted with the shed error, and the interactive query completes.
func TestServicePriorityEviction(t *testing.T) {
	registerStallAlgorithm()
	g := exactsim.GenerateBarabasiAlbert(50, 3, 7)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers: 1, QueueDepth: 2, QueueTarget: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	done, release := saturateService(t, svc, exactsim.PriorityBackground, 2)
	defer release()

	interactive := make(chan exactsim.Response, 1)
	go func() {
		interactive <- svc.Query(context.Background(), exactsim.Request{
			Algorithm: stallAlgName, Source: 41, NoCache: true})
	}()

	// One parked background query loses its slot to the interactive
	// arrival: it answers unavailable while the worker still stalls.
	select {
	case r := <-done:
		if r.Err == nil || r.Err.Code != exactsim.CodeUnavailable {
			t.Fatalf("evicted background query: err = %v, want unavailable", r.Err)
		}
		if r.Err.RetryAfterMillis <= 0 {
			t.Fatalf("evicted response carries no retry hint: %+v", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no background query was evicted for the interactive arrival")
	}

	release()
	if r := <-interactive; r.Err != nil {
		t.Fatalf("interactive query failed: %v", r.Err)
	}
	for i := 0; i < 2; i++ {
		if r := <-done; r.Err != nil {
			t.Fatalf("surviving background query failed: %v", r.Err)
		}
	}
}

// TestServiceExpiredOnArrival: a query whose budget is spent before
// submission is answered deadline_exceeded without computing, and the
// deadline_rejected gauge counts it.
func TestServiceExpiredOnArrival(t *testing.T) {
	registerStallAlgorithm()
	g := exactsim.GenerateBarabasiAlbert(50, 3, 7)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	setStallGate(nil)

	before := stallExecutions.Load()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	resp := svc.Query(ctx, exactsim.Request{Algorithm: stallAlgName, Source: 1, NoCache: true})
	if resp.Err == nil || resp.Err.Code != exactsim.CodeDeadlineExceeded {
		t.Fatalf("expired query: err = %v, want deadline_exceeded", resp.Err)
	}
	if got := stallExecutions.Load(); got != before {
		t.Fatalf("expired query executed anyway (%d -> %d)", before, got)
	}
	if st := svc.Stats(); st.DeadlineRejected == 0 {
		t.Fatalf("deadline_rejected = 0 after an expired arrival: %+v", st)
	}
}

// TestServiceUnknownPriorityRejected: class names outside the taxonomy
// are invalid_argument, not silently mapped to a class.
func TestServiceUnknownPriorityRejected(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(50, 3, 7)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	resp := svc.Query(context.Background(), exactsim.Request{Source: 1, Priority: "urgent"})
	if resp.Err == nil || resp.Err.Code != exactsim.CodeInvalidArgument {
		t.Fatalf("unknown priority: err = %v, want invalid_argument", resp.Err)
	}
}

// TestServiceBrownoutDegrades: under the overload signal an AllowDegraded
// request is answered by the ladder's cheaper algorithm with
// Response.Degraded set; a request without the opt-in keeps its exact
// plan through the same overload.
func TestServiceBrownoutDegrades(t *testing.T) {
	registerStallAlgorithm()
	g := exactsim.GenerateBarabasiAlbert(60, 3, 7)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers: 1, QueueDepth: 1, QueueTarget: -1,
		DegradeLadder: map[string]string{"exactsim": "mc"}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Trip the overload signal: saturate, then shed one submission. The
	// signal holds for a QueueWindow after the shed, which is the window
	// the degraded request rides in after release frees the pool.
	done, release := saturateService(t, svc, exactsim.PriorityBackground, 1)
	shed := svc.Query(context.Background(), exactsim.Request{
		Algorithm: stallAlgName, Source: 50, NoCache: true, Priority: exactsim.PriorityBackground})
	if shed.Err == nil || shed.Err.Code != exactsim.CodeUnavailable {
		t.Fatalf("priming shed: err = %v, want unavailable", shed.Err)
	}
	release()
	for i := 0; i < 2; i++ {
		<-done
	}
	if !svc.Stats().BrownoutActive {
		t.Skip("overload signal already decayed (slow machine)")
	}

	opted := svc.Query(context.Background(), exactsim.Request{
		Algorithm: "exactsim", Source: 2, AllowDegraded: true})
	if opted.Err != nil {
		t.Fatalf("degraded query failed: %v", opted.Err)
	}
	if !opted.Degraded {
		t.Fatalf("overloaded AllowDegraded answer not marked degraded: %+v", opted)
	}
	if opted.Request.Algorithm != "mc" {
		t.Fatalf("degraded plan = %q, want ladder step mc", opted.Request.Algorithm)
	}
	if st := svc.Stats(); st.DegradedQueries == 0 {
		t.Fatalf("degraded_queries = 0 after a brownout answer: %+v", st)
	}

	exact := svc.Query(context.Background(), exactsim.Request{
		Algorithm: "exactsim", Source: 3, NoCache: true})
	if exact.Err != nil {
		t.Fatalf("exact query failed: %v", exact.Err)
	}
	if exact.Degraded || exact.Request.Algorithm != "exactsim" {
		t.Fatalf("non-opted request altered under overload: %+v", exact.Request)
	}
}

// TestServiceBatchExpiredAnsweredLocally: a batch whose context dies
// mid-submission answers the remaining entries in place with the
// context's code — none of them reach the pool.
func TestServiceBatchExpiredAnsweredLocally(t *testing.T) {
	registerStallAlgorithm()
	g := exactsim.GenerateBarabasiAlbert(50, 3, 7)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	setStallGate(nil)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := make([]exactsim.Request, 8)
	for i := range reqs {
		reqs[i] = exactsim.Request{Algorithm: stallAlgName, Source: exactsim.NodeID(i), NoCache: true}
	}
	before := stallExecutions.Load()
	out := svc.Batch(ctx, reqs)
	if got := stallExecutions.Load(); got != before {
		t.Fatalf("cancelled batch executed %d queries", got-before)
	}
	for i, r := range out {
		if r.Err == nil || r.Err.Code != exactsim.CodeCanceled {
			t.Fatalf("batch[%d]: err = %v, want canceled", i, r.Err)
		}
	}
}
