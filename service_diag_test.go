package exactsim_test

import (
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
)

// diagTestOpts are the querier knobs shared by every test in this file —
// the service under test and the reference queriers must agree on them for
// bit comparisons to be meaningful.
func diagTestOpts() []exactsim.QuerierOption {
	return []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(7)}
}

// referenceScores computes the expected bit-exact answer for one source:
// a standalone querier over g with a fresh (cold) diagonal index — which,
// by the cold-vs-warm contract, is what any index state must reproduce.
func referenceScores(t *testing.T, g *exactsim.Graph, source exactsim.NodeID) []float64 {
	t.Helper()
	opts := append(diagTestOpts(), exactsim.WithDiagIndex(exactsim.NewDiagSampleIndex(0)))
	q, err := exactsim.NewQuerier("exactsim", g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.SingleSource(context.Background(), source)
	if err != nil {
		t.Fatal(err)
	}
	return res.Scores
}

// TestServiceDiagIndexWarmAndStats exercises the serving-layer surface of
// the diagonal index: Warm populates it, repeat traffic hits it, the
// ServiceStats gauges report it, and the gauge block survives a JSON round
// trip bit-for-bit (the /v1/stats wire contract).
func TestServiceDiagIndexWarmAndStats(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(500, 4, 3)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        2,
		CacheSize:      -1, // isolate the diag index from the result LRU
		QuerierOptions: diagTestOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	wr := svc.Warm(context.Background(), exactsim.WarmRequest{TopDegree: 8})
	if wr.Err != nil {
		t.Fatal(wr.Err)
	}
	if wr.Warmed != 8 || wr.Failed != 0 || wr.GraphEpoch != 1 {
		t.Fatalf("warm: %+v", wr)
	}

	// A fresh source must answer bit-identically to a cold standalone
	// querier, even though it lands on a pre-warmed index.
	want := referenceScores(t, g, 200)
	resp := svc.Query(context.Background(), exactsim.Request{Source: 200})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	for j := range want {
		if math.Float64bits(want[j]) != math.Float64bits(resp.Result.Scores[j]) {
			t.Fatalf("warmed service diverged from cold reference at %d", j)
		}
	}

	st := svc.Stats()
	if !st.DiagIndexEnabled {
		t.Fatal("index disabled by default")
	}
	if st.DiagHits == 0 || st.DiagMisses == 0 || st.DiagChunks == 0 || st.DiagResidentBytes <= 0 {
		t.Fatalf("gauges not populated: %+v", st)
	}
	if st.DiagHitRate <= 0 || st.DiagHitRate > 1 {
		t.Fatalf("hit rate %g out of range", st.DiagHitRate)
	}
	if st.DiagBudgetBytes != 128<<20 {
		t.Fatalf("default budget %d, want 128 MiB", st.DiagBudgetBytes)
	}

	// Wire shape: every diag gauge must survive JSON unchanged.
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back exactsim.ServiceStats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Fatalf("ServiceStats did not round-trip:\n got %+v\nwant %+v", back, st)
	}

	// Disabled index: gauges read zero and queries still answer.
	off, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers: 1, DiagIndexBytes: -1, QuerierOptions: diagTestOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if resp := off.Query(context.Background(), exactsim.Request{Source: 3}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if st := off.Stats(); st.DiagIndexEnabled || st.DiagChunks != 0 || st.DiagHits != 0 {
		t.Fatalf("disabled index leaked gauges: %+v", st)
	}
}

// TestServiceDiagIndexEvictionBudget runs a service whose index budget is
// far below the working set, so chunks evict continuously — and answers
// must stay bit-identical to the cold reference anyway.
func TestServiceDiagIndexEvictionBudget(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(400, 4, 9)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        2,
		CacheSize:      -1,
		DiagIndexBytes: 2048,
		QuerierOptions: diagTestOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	sources := []exactsim.NodeID{0, 7, 42, 0, 7}
	for _, src := range sources {
		want := referenceScores(t, g, src)
		resp := svc.Query(context.Background(), exactsim.Request{Source: src, NoCache: true})
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		for j := range want {
			if math.Float64bits(want[j]) != math.Float64bits(resp.Result.Scores[j]) {
				t.Fatalf("source %d diverged under eviction at %d", src, j)
			}
		}
	}
	st := svc.Stats()
	if st.DiagEvictions == 0 {
		t.Fatalf("2 KiB budget never evicted: %+v", st)
	}
	if st.DiagResidentBytes > 2048 {
		t.Fatalf("resident %d exceeds the 2 KiB budget", st.DiagResidentBytes)
	}
}

// TestServiceDiagIndexEpochRace is the stale-chunk race proof: queries
// hammer ExactSim while updates flip the graph, and every response must be
// bit-identical to the cold reference for the graph of the epoch it
// claims. A chunk served across an epoch boundary — walks on the wrong
// graph — would flip bits; per-epoch index construction makes that
// structurally impossible, and -race checks the synchronization.
func TestServiceDiagIndexEpochRace(t *testing.T) {
	gOdd := exactsim.GenerateBarabasiAlbert(300, 3, 1)  // epochs 1, 3, 5, ...
	gEven := exactsim.GenerateBarabasiAlbert(400, 3, 2) // epochs 2, 4, 6, ...

	const sources = 4
	wantOdd := make([][]float64, sources)
	wantEven := make([][]float64, sources)
	for s := 0; s < sources; s++ {
		wantOdd[s] = referenceScores(t, gOdd, exactsim.NodeID(s))
		wantEven[s] = referenceScores(t, gEven, exactsim.NodeID(s))
	}

	svc, err := exactsim.NewService(gOdd, exactsim.ServiceOptions{
		Workers:        4,
		QuerierOptions: diagTestOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const updates = 10
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < updates; i++ {
			g := gEven
			if i%2 == 1 {
				g = gOdd
			}
			if _, err := svc.Update(g); err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	const queryGoroutines = 4
	for gr := 0; gr < queryGoroutines; gr++ {
		wg.Add(1)
		go func(gr int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				src := exactsim.NodeID((gr + i) % sources)
				resp := svc.Query(context.Background(), exactsim.Request{Source: src})
				if resp.Err != nil {
					t.Errorf("query: %v", resp.Err)
					return
				}
				want := wantOdd[src]
				if resp.GraphEpoch%2 == 0 {
					want = wantEven[src]
				}
				if len(resp.Result.Scores) != len(want) {
					t.Errorf("epoch %d: %d scores, want %d — mixed epochs",
						resp.GraphEpoch, len(resp.Result.Scores), len(want))
					return
				}
				for j := range want {
					if math.Float64bits(want[j]) != math.Float64bits(resp.Result.Scores[j]) {
						t.Errorf("epoch %d source %d: bit flip at %d — stale diag chunk?",
							resp.GraphEpoch, src, j)
						return
					}
				}
			}
		}(gr)
	}
	wg.Wait()
}
