package exactsim_test

import (
	"math"
	"testing"

	exactsim "github.com/exactsim/exactsim"
)

// TestSeedDeterminismAcrossWorkerCounts is the conformance test for the
// documented Options.Seed contract: two runs with equal seeds and options
// return identical vectors regardless of Workers. The contract is
// load-bearing for the whole compute spine — the diagonal phase shards fat
// requests into per-chunk RNG streams and merges integer meet counts, and
// the sparse kernels shard over nonzeros with worker-independent
// boundaries; any scheduling leak in either shows up here as a bit flip.
func TestSeedDeterminismAcrossWorkerCounts(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(1200, 4, 7)
	// Node 0 is a BA hub: its R(k) dominates and splits into many chunks,
	// exactly the regime the chunked sampling exists for. 1111 is a leaf.
	sources := []exactsim.NodeID{0, 1111}
	for _, optimized := range []bool{false, true} {
		name := "basic"
		if optimized {
			name = "optimized"
		}
		t.Run(name, func(t *testing.T) {
			for _, source := range sources {
				var want []float64
				for _, workers := range []int{1, 8} {
					// SampleFactor only scales the walk-pair volume; the
					// determinism property is sample-count independent, so
					// keep the test fast enough for -race CI.
					eng, err := exactsim.New(g, exactsim.Options{
						Epsilon:      1e-2,
						Optimized:    optimized,
						Workers:      workers,
						Seed:         99,
						SampleFactor: 0.05,
					})
					if err != nil {
						t.Fatal(err)
					}
					res, err := eng.SingleSource(source)
					if err != nil {
						t.Fatal(err)
					}
					if want == nil {
						want = res.Scores
						continue
					}
					for j := range want {
						if math.Float64bits(want[j]) != math.Float64bits(res.Scores[j]) {
							t.Fatalf("source %d workers=%d: Scores[%d] = %x, want %x (Workers=1)",
								source, workers, j,
								math.Float64bits(res.Scores[j]), math.Float64bits(want[j]))
						}
					}
				}
			}
		})
	}
}

// TestSeedDeterminismDiagIndex extends the conformance suite to the shared
// diagonal sample index: with an index attached, a query's answer must be
// bit-identical whether the index is cold or pre-warmed by other queries,
// and across worker counts — chunk streams are node-keyed and merges are
// integer-exact, so a cache hit returns precisely what sampling would.
func TestSeedDeterminismDiagIndex(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(1200, 4, 7)
	newEngine := func(optimized bool, workers int, ix *exactsim.DiagSampleIndex) *exactsim.Engine {
		eng, err := exactsim.New(g, exactsim.Options{
			Epsilon:      1e-2,
			Optimized:    optimized,
			Workers:      workers,
			Seed:         99,
			SampleFactor: 0.05,
			DiagIndex:    ix,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	for _, optimized := range []bool{false, true} {
		name := "basic"
		if optimized {
			name = "optimized"
		}
		t.Run(name, func(t *testing.T) {
			// Cold reference: fresh index, one query, one worker.
			cold, err := newEngine(optimized, 1, exactsim.NewDiagSampleIndex(0)).SingleSource(0)
			if err != nil {
				t.Fatal(err)
			}
			// Warm path: a fresh index populated by two *other* sources
			// first (node 0's chunk cells partially overlap theirs), then
			// the same query at a different worker count.
			warmIx := exactsim.NewDiagSampleIndex(0)
			warmEng := newEngine(optimized, 8, warmIx)
			if _, err := warmEng.SingleSource(600); err != nil {
				t.Fatal(err)
			}
			if _, err := warmEng.SingleSource(1111); err != nil {
				t.Fatal(err)
			}
			warm, err := warmEng.SingleSource(0)
			if err != nil {
				t.Fatal(err)
			}
			for j := range cold.Scores {
				if math.Float64bits(cold.Scores[j]) != math.Float64bits(warm.Scores[j]) {
					t.Fatalf("cold vs warm index diverged at %d: %x vs %x", j,
						math.Float64bits(cold.Scores[j]), math.Float64bits(warm.Scores[j]))
				}
			}
			// Repeat on the warm index: pure cache hits, same bits.
			again, err := warmEng.SingleSource(0)
			if err != nil {
				t.Fatal(err)
			}
			for j := range cold.Scores {
				if math.Float64bits(cold.Scores[j]) != math.Float64bits(again.Scores[j]) {
					t.Fatalf("warm repeat diverged at %d", j)
				}
			}
		})
	}
}

// TestSeedDeterminismRepeatedQueries pins the other half of the contract:
// the same engine answering the same query twice — with pooled scratch
// reused in between — must return the identical vector (a dirty pooled
// buffer or stale frontier would corrupt the second answer).
func TestSeedDeterminismRepeatedQueries(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(1500, 4, 11)
	for _, optimized := range []bool{false, true} {
		eng, err := exactsim.New(g, exactsim.Options{
			Epsilon: 1e-2, Optimized: optimized, Seed: 5, SampleFactor: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Interleave a different source so the pooled buffers come back
		// dirty with another query's support before the repeat.
		first, err := eng.SingleSource(3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.SingleSource(700); err != nil {
			t.Fatal(err)
		}
		second, err := eng.SingleSource(3)
		if err != nil {
			t.Fatal(err)
		}
		for j := range first.Scores {
			if math.Float64bits(first.Scores[j]) != math.Float64bits(second.Scores[j]) {
				t.Fatalf("optimized=%v: repeat query diverged at %d: %g vs %g",
					optimized, j, first.Scores[j], second.Scores[j])
			}
		}
	}
}
