package exactsim_test

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/internal/fault"
)

func fileExists(t *testing.T, path string) bool {
	t.Helper()
	_, err := os.Stat(path)
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return err == nil
}

// flipByte damages a snapshot container the way bit rot or a torn
// write does: one byte in the middle of the file changes. The section
// CRC64 must catch it on open.
func flipByte(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSaveSnapshotKeepRotates: each save shifts the previous container
// down one generation, and the chain is bounded — with keep=2, a third
// predecessor never appears no matter how many saves happen. Every
// surviving generation remains an intact, openable container.
func TestSaveSnapshotKeepRotates(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(200, 3, 11)
	svc, err := exactsim.NewService(g, snapshotServiceOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	path := filepath.Join(t.TempDir(), "rot.snap")
	for i := 0; i < 4; i++ {
		if err := svc.SaveSnapshotKeep(path, 2); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	for _, p := range []string{path, path + ".1", path + ".2"} {
		if !fileExists(t, p) {
			t.Fatalf("generation %s missing after 4 keep=2 saves", p)
		}
		s, err := exactsim.OpenSnapshot(p, snapshotServiceOptions())
		if err != nil {
			t.Fatalf("rotated generation %s does not open: %v", p, err)
		}
		s.Close()
	}
	if fileExists(t, path+".3") {
		t.Fatal("keep=2 leaked a third generation")
	}
}

// TestBootSnapshotQuarantinesCorruptPrimary is the ISSUE's boot drill:
// the newest snapshot is damaged, so BootSnapshot impounds it (renamed
// aside with its bytes intact for a post-mortem) and boots the previous
// generation — whose answers are bit-identical to the writer's, because
// a rotated generation is just an older consistent image of the same
// graph epoch.
func TestBootSnapshotQuarantinesCorruptPrimary(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(400, 3, 13)
	writer, err := exactsim.NewService(g, snapshotServiceOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	warmed := []exactsim.NodeID{2, 77, 310}
	ref := make(map[exactsim.NodeID][]float64)
	for _, src := range warmed {
		ref[src] = mustQuery(t, writer, src).Scores
	}

	path := filepath.Join(t.TempDir(), "boot.snap")
	if err := writer.SaveSnapshotKeep(path, 2); err != nil {
		t.Fatal(err)
	}
	if err := writer.SaveSnapshotKeep(path, 2); err != nil {
		t.Fatal(err)
	}
	flipByte(t, path)

	svc, rep, err := exactsim.BootSnapshot(path, snapshotServiceOptions())
	if err != nil {
		t.Fatalf("boot with intact previous generation failed: %v (report %+v)", err, rep)
	}
	defer svc.Close()
	if rep.Opened != path+".1" {
		t.Fatalf("booted %q, want the previous generation %q", rep.Opened, path+".1")
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != path+".quarantine" {
		t.Fatalf("quarantine report: %+v", rep.Quarantined)
	}
	if !fileExists(t, path+".quarantine") {
		t.Fatal("damaged container not preserved on disk")
	}
	if fileExists(t, path) {
		t.Fatal("damaged primary still in place — the next boot would re-probe it")
	}
	for src, want := range ref {
		got := mustQuery(t, svc, src).Scores
		if i, ok := scoresBitEqual(want, got); !ok {
			t.Fatalf("source %d: fallback-generation answer diverges at %d", src, i)
		}
	}
}

// TestBootSnapshotMissingPrimary: a boot after a previous quarantine
// finds no file at the primary path at all — the probe continues into
// the rotation chain instead of giving up.
func TestBootSnapshotMissingPrimary(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(200, 3, 17)
	writer, err := exactsim.NewService(g, snapshotServiceOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	path := filepath.Join(t.TempDir(), "gap.snap")
	if err := writer.SaveSnapshotKeep(path, 1); err != nil {
		t.Fatal(err)
	}
	if err := writer.SaveSnapshotKeep(path, 1); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	svc, rep, err := exactsim.BootSnapshot(path, snapshotServiceOptions())
	if err != nil {
		t.Fatalf("boot from rotation chain alone failed: %v", err)
	}
	defer svc.Close()
	if rep.Opened != path+".1" {
		t.Fatalf("booted %q, want %q", rep.Opened, path+".1")
	}
}

// TestBootSnapshotAllCorrupt: every generation damaged — BootSnapshot
// reports the full story (all probed, all quarantined, none opened) and
// returns an error so the daemon can fall back to a cold build.
func TestBootSnapshotAllCorrupt(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(200, 3, 19)
	writer, err := exactsim.NewService(g, snapshotServiceOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	path := filepath.Join(t.TempDir(), "dead.snap")
	if err := writer.SaveSnapshotKeep(path, 1); err != nil {
		t.Fatal(err)
	}
	if err := writer.SaveSnapshotKeep(path, 1); err != nil {
		t.Fatal(err)
	}
	flipByte(t, path)
	flipByte(t, path+".1")

	svc, rep, err := exactsim.BootSnapshot(path, snapshotServiceOptions())
	if err == nil {
		svc.Close()
		t.Fatal("boot succeeded with every generation corrupt")
	}
	if rep.Opened != "" {
		t.Fatalf("report claims %q opened", rep.Opened)
	}
	if len(rep.Tried) != 2 || len(rep.Quarantined) != 2 {
		t.Fatalf("report: tried %v quarantined %v", rep.Tried, rep.Quarantined)
	}
	for _, q := range rep.Quarantined {
		if !fileExists(t, q) {
			t.Fatalf("quarantined file %s missing", q)
		}
	}

	// Nothing bootable at all → not_found, the cold-build signal.
	_, _, err = exactsim.BootSnapshot(filepath.Join(t.TempDir(), "never.snap"), snapshotServiceOptions())
	if e := exactsim.ToError(err); e == nil || e.Code != exactsim.CodeNotFound {
		t.Fatalf("empty path: %v, want not_found", err)
	}
}

// TestSnapshotWriteWrapFaultIsCaughtOnOpen closes the loop between the
// fault layer and the quarantine path: a snapshot written through a
// silently-corrupting writer (ServiceOptions.SnapshotWriteWrap — what
// exactsimd's -fault flag installs) must be rejected by the container
// checksums on open, never served — and BootSnapshot must quarantine it.
func TestSnapshotWriteWrapFaultIsCaughtOnOpen(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(200, 3, 23)
	inj := fault.New(fault.Config{Seed: 99, CorruptProb: 1})
	opts := snapshotServiceOptions()
	opts.SnapshotWriteWrap = func(w io.Writer) io.Writer { return inj.Writer(w) }
	svc, err := exactsim.NewService(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	// Warm a little so the container has a diag section too.
	mustQuery(t, svc, 5)

	path := filepath.Join(t.TempDir(), "faulty.snap")
	if err := svc.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if inj.Counts().Corruptions == 0 {
		t.Fatal("injector corrupted nothing; the test is vacuous")
	}
	if s, err := exactsim.OpenSnapshot(path, snapshotServiceOptions()); err == nil {
		s.Close()
		t.Fatal("corrupted container opened cleanly")
	}
	_, rep, err := exactsim.BootSnapshot(path, snapshotServiceOptions())
	if err == nil {
		t.Fatal("BootSnapshot accepted the corrupt container")
	}
	if len(rep.Quarantined) != 1 || !fileExists(t, path+".quarantine") {
		t.Fatalf("corrupt container not quarantined: %+v", rep)
	}
}
