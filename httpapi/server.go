package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	exactsim "github.com/exactsim/exactsim"
)

// ServerOptions bounds what one HTTP request may cost. The zero value is
// usable.
type ServerOptions struct {
	// MaxBatch caps the request count of one /v1/batch call. 0 selects
	// 4096; negative removes the bound.
	MaxBatch int
	// MaxBodyBytes caps a request body. 0 selects 8 MiB; negative
	// removes the bound.
	MaxBodyBytes int64
	// MaxTimeout clamps client-requested timeout_ms values, and bounds
	// requests that ask for no timeout at all. 0 leaves both unbounded
	// (the Service's DefaultTimeout still applies).
	MaxTimeout time.Duration
}

func (o *ServerOptions) normalize() {
	if o.MaxBatch == 0 {
		o.MaxBatch = 4096
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 8 << 20
	}
}

// Server exposes one exactsim.Service over the HTTP query protocol. It is
// an http.Handler; mount it directly or under a prefix of your own mux.
type Server struct {
	svc  *exactsim.Service
	opts ServerOptions
	mux  *http.ServeMux
	// draining gates readiness only: while set, /readyz answers 503 so
	// balancers stop routing here, but in-flight and even new queries
	// still succeed — the drain window is for the fleet to notice, not
	// a hard door.
	draining atomic.Bool
	// panics counts handler panics this server swallowed (see Recovered);
	// folded into the panics_recovered gauge /v1/stats reports, alongside
	// the Service's own worker-level count.
	panics    atomic.Int64
	lastPanic atomic.Pointer[string]
	protected http.Handler
}

// NewServer wraps svc. The caller keeps ownership of svc (and closes it);
// a request arriving after Close answers with code "closed" / 503.
func NewServer(svc *exactsim.Service, opts ServerOptions) *Server {
	opts.normalize()
	s := &Server{svc: svc, opts: opts, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/query/stream", s.handleQueryStream)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/warm", s.handleWarm)
	// Registered for both verbs: semantically it is a download (GET, and
	// what a bare `curl -o` sends), but POST-only clients from the first
	// cut of this endpoint keep working.
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.protected = Recovered(s.mux, func(v any, stack []byte) {
		s.panics.Add(1)
		msg := fmt.Sprintf("panic: %v\n%s", v, stack)
		s.lastPanic.Store(&msg)
	})
	return s
}

// Recovered wraps next so a handler panic answers as a CodeInternal
// protocol error instead of killing the connection (and, with
// http.Server's default recovery absent, the process). http.ErrAbortHandler
// re-panics: it is the sanctioned way to abort a response and net/http
// handles it quietly. If the handler already wrote part of a response the
// error envelope lands after those bytes — clients see a malformed body
// and treat it as a transport failure, which is the retryable outcome we
// want. onPanic (may be nil) observes the recovered value and stack.
func Recovered(next http.Handler, onPanic func(v any, stack []byte)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler { //nolint:errorlint // sentinel compared by identity, per net/http docs
				panic(v)
			}
			if onPanic != nil {
				onPanic(v, debug.Stack())
			}
			e := exactsim.Errorf(exactsim.CodeInternal, "httpapi: handler panic: %v", v)
			writeJSON(w, StatusOf(e), exactsim.Response{Err: e})
		}()
		next.ServeHTTP(w, r)
	})
}

// Service returns the wrapped service (for stats, updates, Close).
func (s *Server) Service() *exactsim.Service { return s.svc }

// SetDraining flips the readiness gate (see /readyz): a draining server
// keeps answering queries and /healthz liveness, but tells routers to
// send new traffic elsewhere — the graceful half of a rolling restart.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports the current readiness gate.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.protected.ServeHTTP(w, r)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var qr QueryRequest
	if e := s.decode(w, r, &qr); e != nil {
		writeJSON(w, StatusOf(e), exactsim.Response{Err: e})
		return
	}
	ctx, cancel := s.requestContext(r.Context(), qr.TimeoutMillis)
	defer cancel()
	// Expired on arrival (a sub-millisecond wire budget, or a caller gone
	// before decode finished): answer without touching the worker pool.
	if e := expiredOnArrival(ctx); e != nil {
		writeJSON(w, StatusOf(e), exactsim.Response{Request: qr.Body, Err: e})
		return
	}
	resp := s.svc.Query(ctx, qr.Body)
	writeJSON(w, StatusOf(resp.Err), resp)
}

// handleQueryStream answers one query as NDJSON refinement records
// (application/x-ndjson): intermediate accuracy tiers as they complete,
// then the terminal record flagged "final" — bit-identical to what the
// non-streaming endpoint would have answered. The 200 status commits
// before computation starts, so errors after the first byte travel in
// the terminal record's error field, not the status line.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	var qr QueryRequest
	if e := s.decode(w, r, &qr); e != nil {
		writeJSON(w, StatusOf(e), exactsim.Response{Err: e})
		return
	}
	ctx, cancel := s.requestContext(r.Context(), qr.TimeoutMillis)
	defer cancel()
	if e := expiredOnArrival(ctx); e != nil {
		writeJSON(w, StatusOf(e), exactsim.Response{Request: qr.Body, Err: e})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	// QueryStream calls emit sequentially from a worker goroutine and
	// only returns after the last call, so the encoder is never written
	// concurrently.
	resp := s.svc.QueryStream(ctx, qr.Body, func(refinement exactsim.Response) {
		enc.Encode(StreamRecord{Response: refinement})
		if flusher != nil {
			flusher.Flush()
		}
	})
	enc.Encode(StreamRecord{Response: resp, Final: true})
}

// expiredOnArrival reports a context already dead at tier entry as the
// protocol error to answer with (nil while budget remains). Each tier
// checks before doing work, so a query whose deadline has already passed
// is bounced immediately — the deadline-propagation contract.
func expiredOnArrival(ctx context.Context) *exactsim.Error {
	if err := ctx.Err(); err != nil {
		return exactsim.ToError(err)
	}
	return nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var br BatchRequest
	if e := s.decode(w, r, &br); e != nil {
		writeJSON(w, StatusOf(e), exactsim.Response{Err: e})
		return
	}
	if s.opts.MaxBatch > 0 && len(br.Body.Requests) > s.opts.MaxBatch {
		e := exactsim.Errorf(exactsim.CodeInvalidArgument,
			"httpapi: batch of %d exceeds the server bound %d", len(br.Body.Requests), s.opts.MaxBatch)
		writeJSON(w, StatusOf(e), exactsim.Response{Err: e})
		return
	}
	ctx, cancel := s.requestContext(r.Context(), br.TimeoutMillis)
	defer cancel()
	if e := expiredOnArrival(ctx); e != nil {
		writeJSON(w, StatusOf(e), exactsim.Response{Err: e})
		return
	}
	// Per-request failures live inside each Response; the batch call
	// itself is a 200.
	writeJSON(w, http.StatusOK, BatchResponse{Responses: s.svc.Batch(ctx, br.Body.Requests)})
}

func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	var wr WarmRequest
	if e := s.decode(w, r, &wr); e != nil {
		writeJSON(w, StatusOf(e), exactsim.WarmResponse{Err: e})
		return
	}
	// MaxBatch bounds the warm fan-out the same way it bounds batch
	// requests — warming is a batch in disguise. The effective fan-out
	// mirrors Service.Warm's source resolution: explicit Sources win,
	// otherwise TopDegree, otherwise the service's default hub count.
	if s.opts.MaxBatch > 0 {
		fanout := len(wr.Body.Sources)
		if fanout == 0 {
			fanout = wr.Body.TopDegree
			if fanout <= 0 {
				fanout = exactsim.DefaultWarmTopDegree
			}
		}
		if fanout > s.opts.MaxBatch {
			e := exactsim.Errorf(exactsim.CodeInvalidArgument,
				"httpapi: warm fan-out of %d sources exceeds the server bound %d", fanout, s.opts.MaxBatch)
			writeJSON(w, StatusOf(e), exactsim.WarmResponse{Err: e})
			return
		}
	}
	ctx, cancel := s.requestContext(r.Context(), wr.TimeoutMillis)
	defer cancel()
	if e := expiredOnArrival(ctx); e != nil {
		writeJSON(w, StatusOf(e), exactsim.WarmResponse{Err: e})
		return
	}
	resp := s.svc.Warm(ctx, wr.Body)
	writeJSON(w, StatusOf(resp.Err), resp)
}

// handleSnapshot streams the service's current graph generation as a
// snapshot container (application/octet-stream): the admin/fleet path
// by which a fresh instance clones a warm peer's graph + diagonal
// sample index instead of re-deriving them. The epoch travels in
// X-Exactsim-Graph-Epoch; save the body to disk and boot with
// `exactsimd -snapshot` (or exactsim.OpenSnapshot).
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	cw := &countingWriter{w: w}
	// The epoch header is set by the pinned-generation hook — after the
	// snapshot decides which generation it streams (an Update can race
	// the request), before the first body byte flushes the headers.
	err := s.svc.SnapshotTo(cw, func(epoch uint64) {
		w.Header().Set("X-Exactsim-Graph-Epoch", strconv.FormatUint(epoch, 10))
	})
	if err != nil {
		if cw.n == 0 {
			// Nothing streamed yet (a closed service fails up front): the
			// protocol error envelope can still answer.
			e := exactsim.ToError(err)
			h := w.Header()
			h.Del("Content-Type")
			h.Del("X-Exactsim-Graph-Epoch")
			writeJSON(w, StatusOf(e), exactsim.Response{Err: e})
			return
		}
		// Mid-stream failure: the status is gone; the truncated body
		// fails its container checksum on the client side.
	}
}

// countingWriter tracks whether any response bytes left the building,
// which decides if an error can still change the status line.
type countingWriter struct {
	w http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	// Static registry caps joined with the live planner's calibrated cost
	// rows — the introspection surface remote planners decide from.
	estimates := make(map[string]exactsim.PlanEstimate)
	for _, e := range s.svc.PlanEstimates() {
		estimates[e.Name] = e
	}
	caps := exactsim.AlgorithmCaps()
	methods := make([]MethodInfo, 0, len(caps))
	for _, c := range caps {
		mi := MethodInfo{MethodCaps: c}
		if e, ok := estimates[c.Name]; ok {
			mi.CostUnits, mi.CostNanos = e.Units, e.Nanos
		}
		methods = append(methods, mi)
	}
	writeJSON(w, http.StatusOK, AlgorithmsResponse{
		Algorithms: exactsim.Algorithms(),
		Default:    s.svc.DefaultAlgorithm(),
		Methods:    methods,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.svc.Stats()
	// Handler-level panics are this server's, not the Service's; fold
	// them into the same gauge so one number answers "did anything blow
	// up in this process".
	st.PanicsRecovered += s.panics.Load()
	if p := s.lastPanic.Load(); p != nil && st.LastPanic == "" {
		st.LastPanic = firstLine(*p)
	}
	writeJSON(w, http.StatusOK, st)
}

// firstLine trims a captured panic-with-stack down to its headline; the
// stats wire format wants a gauge-sized string, not a traceback.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// handleHealthz is pure liveness — the process is up and serving HTTP.
// ?ready=1 upgrades the probe to the readiness view for callers whose
// probe config can only vary the path's query string.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("ready") == "1" {
		s.handleReadyz(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// handleReadyz is readiness — distinct from liveness so a replica can be
// drained (stop receiving new fleet traffic) without being killed while
// in-flight queries finish. 503 while draining, closed, or before a
// graph generation is installed; 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
	case s.svc.Closed():
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "closed\n")
	case s.svc.Epoch() == 0:
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "no graph epoch\n")
	default:
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	}
}

// requestContext maps the wire timeout onto a context deadline, clamped
// by MaxTimeout.
func (s *Server) requestContext(ctx context.Context, timeoutMillis int64) (context.Context, context.CancelFunc) {
	timeout := time.Duration(timeoutMillis) * time.Millisecond
	if s.opts.MaxTimeout > 0 && (timeout <= 0 || timeout > s.opts.MaxTimeout) {
		timeout = s.opts.MaxTimeout
	}
	if timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, timeout)
}

// decode reads one JSON body under the size bound. A failure is reported
// as a protocol error so clients see the same {code, message} shape on
// every path.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) *exactsim.Error {
	body := r.Body
	if s.opts.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	// Unknown fields are ignored deliberately: /v1 clients newer than the
	// server must keep working when optional fields are added.
	if err := json.NewDecoder(body).Decode(into); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return exactsim.Errorf(exactsim.CodeInvalidArgument,
				"httpapi: body exceeds %d bytes", tooLarge.Limit)
		}
		return exactsim.Errorf(exactsim.CodeInvalidArgument, "httpapi: bad request body: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding a fully materialized response cannot fail except for a
	// broken connection, which has no recovery anyway.
	json.NewEncoder(w).Encode(v)
}
