package httpapi_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/httpapi"
)

// TestReadinessSplitFromLiveness: /healthz answers liveness for as long
// as the process runs; /readyz (and the /healthz?ready=1 alias) flips to
// 503 while draining or after close, which is what the cluster router's
// membership poller keys ejection on.
func TestReadinessSplitFromLiveness(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(100, 3, 17)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        1,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	api := httpapi.NewServer(svc, httpapi.ServerOptions{})
	ts := httptest.NewServer(api)
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		body, _ := io.ReadAll(res.Body)
		return res.StatusCode, string(body)
	}

	ctx := context.Background()
	c, err := httpapi.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	// Serving normally: alive and ready, by handler and by client.
	for _, path := range []string{"/healthz", "/readyz", "/healthz?ready=1"} {
		if code, body := get(path); code != http.StatusOK {
			t.Fatalf("%s while serving: %d %q", path, code, body)
		}
	}
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Ready(ctx); err != nil {
		t.Fatal(err)
	}
	if api.Draining() {
		t.Fatal("Draining true before SetDraining")
	}

	// Draining: readiness fails, liveness and queries keep working.
	api.SetDraining(true)
	if !api.Draining() {
		t.Fatal("Draining false after SetDraining(true)")
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d %q", code, body)
	}
	if code, _ := get("/healthz?ready=1"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz?ready=1 while draining: %d", code)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while draining: %d — draining must not fail liveness", code)
	}
	if err := c.Ready(ctx); err == nil {
		t.Fatal("client Ready nil while draining")
	}
	if resp, err := c.Query(ctx, exactsim.Request{Source: 3}); err != nil || resp.Err != nil {
		t.Fatalf("in-flight query refused while draining: %v / %v", err, resp.Err)
	}

	// Drain cancelled (e.g. rollback): ready again.
	api.SetDraining(false)
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after drain cancelled: %d", code)
	}

	// Closed service: still alive (the process runs), never ready.
	svc.Close()
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after close: %d", code)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after close: %d %q", code, body)
	}
}

// TestSharedTransportDefault: clients built without WithHTTPClient share
// one pooled transport — fan-out routers would otherwise exhaust
// ephemeral ports opening a connection per request.
func TestSharedTransportDefault(t *testing.T) {
	shared := httpapi.SharedClient()
	if shared == nil || shared.Transport == nil {
		t.Fatal("SharedClient not wired to a pooled transport")
	}
	if httpapi.SharedClient() != shared {
		t.Fatal("SharedClient not a singleton")
	}
	tr, ok := shared.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("shared transport is %T", shared.Transport)
	}
	if tr.MaxIdleConnsPerHost < 2 {
		t.Fatalf("MaxIdleConnsPerHost = %d — pool too small to keep fleet connections warm",
			tr.MaxIdleConnsPerHost)
	}
	if tr.IdleConnTimeout == 0 {
		t.Fatal("idle connections never expire")
	}
}
