// Package httpapi is the HTTP transport of the exactsim query protocol:
// a Server exposing a Service over five endpoints, and a Client that
// implements the same exactsim.Querier interface the in-process engines
// do, so code written against a local graph can point at a remote daemon
// unchanged.
//
// The wire types ARE the in-process types — exactsim.Request and
// exactsim.Response serialize as-is, per-request errors travel as the
// structured {code, message} of exactsim.Error, and every response
// carries the graph epoch it was computed on. The endpoints:
//
//	POST /v1/query       one Request (+ optional timeout_ms) → Response
//	POST /v1/batch       {"requests": [...]} → {"responses": [...]}
//	POST /v1/warm        WarmRequest → WarmResponse (pre-compute sources,
//	                     fill the result cache + diagonal sample index)
//	GET  /v1/snapshot    stream the current graph generation as a
//	                     snapshot container (graph CSR + diag index
//	                     spill; application/octet-stream) — the warm
//	                     clone / instant-restart path (POST also accepted)
//	GET  /v1/algorithms  registry names + the service default
//	GET  /v1/stats       ServiceStats (counters + load-balancer gauges,
//	                     including the diagonal-index hit/resident gauges)
//	GET  /healthz        liveness probe
//
// A client-requested timeout_ms becomes a server-side context deadline,
// so a slow query is cancelled inside its computation loops and answers
// with code "deadline_exceeded" — which the Client surfaces as an error
// matching context.DeadlineExceeded, exactly like a local query would.
// See DESIGN.md §6 and cmd/exactsimd.
package httpapi

import (
	"net/http"

	exactsim "github.com/exactsim/exactsim"
)

// QueryRequest is the body of POST /v1/query: an exactsim.Request plus
// the transport-only timeout.
type QueryRequest struct {
	exactsim.Request
	// TimeoutMillis, when positive, bounds this query server-side: the
	// server derives a context deadline from it, so cancellation reaches
	// inside the algorithm's computation loops. The Client fills it from
	// the caller's context deadline automatically.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// BatchRequest is the body of POST /v1/batch. TimeoutMillis bounds the
// whole batch (each response still fails individually).
type BatchRequest struct {
	Requests      []exactsim.Request `json:"requests"`
	TimeoutMillis int64              `json:"timeout_ms,omitempty"`
}

// BatchResponse is the body answering POST /v1/batch; Responses align
// with the submitted Requests by index.
type BatchResponse struct {
	Responses []exactsim.Response `json:"responses"`
}

// WarmRequest is the body of POST /v1/warm: an exactsim.WarmRequest plus
// the transport-only timeout bounding the whole warming pass.
type WarmRequest struct {
	exactsim.WarmRequest
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// setTimeout implements the client's deadline re-propagation: a retried
// request re-serializes the *remaining* budget, so each tier (and each
// backoff sleep) subtracts its own dwell from the wire timeout instead
// of granting the server the original, already partly spent budget.
func (r *QueryRequest) setTimeout(ms int64) { r.TimeoutMillis = ms }
func (r *BatchRequest) setTimeout(ms int64) { r.TimeoutMillis = ms }
func (r *WarmRequest) setTimeout(ms int64)  { r.TimeoutMillis = ms }

// AlgorithmsResponse is the body answering GET /v1/algorithms.
type AlgorithmsResponse struct {
	// Algorithms lists every registry name the server accepts.
	Algorithms []string `json:"algorithms"`
	// Default answers requests with an empty algorithm field.
	Default string `json:"default"`
}

// StatusOf maps a protocol error code onto its HTTP status. Success (nil)
// is 200; unknown codes map to 500.
func StatusOf(e *exactsim.Error) int {
	if e == nil {
		return http.StatusOK
	}
	switch e.Code {
	case exactsim.CodeInvalidArgument:
		return http.StatusBadRequest
	case exactsim.CodeNotFound:
		return http.StatusNotFound
	case exactsim.CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case exactsim.CodeCanceled:
		// 499 Client Closed Request (nginx convention): the caller went
		// away; no standard status fits better.
		return 499
	case exactsim.CodeUnavailable, exactsim.CodeClosed:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
