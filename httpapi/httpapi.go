// Package httpapi is the HTTP transport of the exactsim query protocol:
// a Server exposing a Service over its endpoints, and a Client that
// implements the same exactsim.Querier interface the in-process engines
// do, so code written against a local graph can point at a remote daemon
// unchanged.
//
// The wire types ARE the in-process types — exactsim.Request and
// exactsim.Response serialize as-is, per-request errors travel as the
// structured {code, message} of exactsim.Error, and every response
// carries the graph epoch it was computed on. The endpoints:
//
//	POST /v1/query        one Request (+ optional timeout_ms) → Response
//	POST /v1/query/stream one Request → NDJSON refinement records, each
//	                      an exactsim.Response plus a "final" flag; the
//	                      terminal record (final: true) is bit-identical
//	                      to what POST /v1/query would have answered
//	POST /v1/batch        {"requests": [...]} → {"responses": [...]}
//	POST /v1/warm         WarmRequest → WarmResponse (pre-compute sources,
//	                      fill the result cache + diagonal sample index)
//	GET  /v1/snapshot     stream the current graph generation as a
//	                      snapshot container (graph CSR + diag index
//	                      spill; application/octet-stream) — the warm
//	                      clone / instant-restart path (POST also accepted)
//	GET  /v1/algorithms   capability surface: per-method caps + calibrated
//	                      cost rows, and the service default ("auto")
//	GET  /v1/stats        ServiceStats (counters + load-balancer gauges,
//	                      including the diagonal-index hit/resident gauges)
//	GET  /healthz         liveness probe
//
// A client-requested timeout_ms becomes a server-side context deadline,
// so a slow query is cancelled inside its computation loops and answers
// with code "deadline_exceeded" — which the Client surfaces as an error
// matching context.DeadlineExceeded, exactly like a local query would.
// See DESIGN.md §6, §13 and cmd/exactsimd.
package httpapi

import (
	"encoding/json"
	"net/http"
	"strconv"

	exactsim "github.com/exactsim/exactsim"
)

// Envelope is the one timeout envelope every POST body rides in: the
// payload's own fields serialized flat, plus the transport-only
// "timeout_ms". It replaces the three copy-pasted per-endpoint structs —
// the deadline semantics live here, once:
//
// TimeoutMillis, when positive, bounds the request server-side: the
// server derives a context deadline from it (clamped by its MaxTimeout),
// so cancellation reaches inside the algorithms' computation loops.
// The Client fills it from the caller's context deadline automatically,
// and RE-fills it on every retry with the *remaining* budget — each
// attempt (and each backoff sleep) subtracts its own dwell from the wire
// timeout instead of granting the server the original, already partly
// spent budget. That re-propagation is setTimeout, the single hook the
// client's retry loop needs.
type Envelope[T any] struct {
	// Body is the endpoint's payload; its fields serialize at the top
	// level of the JSON object, exactly as before the envelope existed.
	Body T
	// TimeoutMillis is the transport-only server-side deadline (see
	// above); 0 means "no wire-requested deadline".
	TimeoutMillis int64
}

// MarshalJSON serializes Body flat and splices "timeout_ms" into the
// same object, preserving the pre-envelope wire shape.
func (e Envelope[T]) MarshalJSON() ([]byte, error) {
	body, err := json.Marshal(e.Body)
	if err != nil {
		return nil, err
	}
	if e.TimeoutMillis <= 0 {
		return body, nil
	}
	// Every envelope payload is a struct, so body is a JSON object;
	// splice before the closing brace (comma unless the object is empty).
	out := body[:len(body)-1]
	if len(body) > 2 {
		out = append(out, ',')
	}
	out = append(out, `"timeout_ms":`...)
	out = strconv.AppendInt(out, e.TimeoutMillis, 10)
	return append(out, '}'), nil
}

// UnmarshalJSON reads the flat object into Body and extracts the
// transport-only "timeout_ms" (which Body, not declaring it, ignores).
func (e *Envelope[T]) UnmarshalJSON(data []byte) error {
	if err := json.Unmarshal(data, &e.Body); err != nil {
		return err
	}
	var t struct {
		TimeoutMillis int64 `json:"timeout_ms"`
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return err
	}
	e.TimeoutMillis = t.TimeoutMillis
	return nil
}

// setTimeout is the client retry loop's deadline re-propagation hook
// (see Envelope's doc — the semantics are defined once, up there).
func (e *Envelope[T]) setTimeout(ms int64) { e.TimeoutMillis = ms }

// QueryRequest is the body of POST /v1/query and /v1/query/stream: an
// exactsim.Request plus the transport-only timeout.
type QueryRequest = Envelope[exactsim.Request]

// Batch is the payload of POST /v1/batch.
type Batch struct {
	Requests []exactsim.Request `json:"requests"`
}

// BatchRequest is the body of POST /v1/batch. TimeoutMillis bounds the
// whole batch (each response still fails individually).
type BatchRequest = Envelope[Batch]

// BatchResponse is the body answering POST /v1/batch; Responses align
// with the submitted Requests by index.
type BatchResponse struct {
	Responses []exactsim.Response `json:"responses"`
}

// WarmRequest is the body of POST /v1/warm: an exactsim.WarmRequest plus
// the transport-only timeout bounding the whole warming pass.
type WarmRequest = Envelope[exactsim.WarmRequest]

// StreamRecord is one NDJSON line of POST /v1/query/stream: a refinement
// Response (Partial, with the epsilon it achieved) or — flagged Final —
// the terminal answer, bit-identical to the non-streaming endpoint's.
// Errors travel in the terminal record's embedded error field; the HTTP
// status is committed (200) before computation starts.
type StreamRecord struct {
	exactsim.Response
	// Final marks the terminal record; exactly one per stream.
	Final bool `json:"final"`
}

// MethodInfo is one row of the /v1/algorithms capability surface: the
// registry's static capability flags plus the serving planner's
// calibrated cost estimate for this method on the current graph.
type MethodInfo struct {
	exactsim.MethodCaps
	// CostUnits is the planner cost model's work-unit count at the
	// service's base epsilon; CostNanos is its latency estimate on this
	// machine (microprobe-calibrated, refined from observed query
	// latencies). Zero when the server predates calibration.
	CostUnits float64 `json:"cost_units,omitempty"`
	CostNanos int64   `json:"cost_nanos,omitempty"`
}

// AlgorithmsResponse is the body answering GET /v1/algorithms — the
// capability/cost surface remote planners and dashboards introspect.
// The registry is static and the cost rows drift only slowly (EWMA of
// observed latencies), so clients cache the whole response per base URL.
type AlgorithmsResponse struct {
	// Algorithms lists every registry name the server accepts.
	Algorithms []string `json:"algorithms"`
	// Default answers requests with an empty algorithm field ("auto"
	// unless the server pinned a concrete method).
	Default string `json:"default"`
	// Methods carries one capability/cost row per registry name.
	Methods []MethodInfo `json:"methods,omitempty"`
}

// StatusOf maps a protocol error code onto its HTTP status. Success (nil)
// is 200; unknown codes map to 500.
func StatusOf(e *exactsim.Error) int {
	if e == nil {
		return http.StatusOK
	}
	switch e.Code {
	case exactsim.CodeInvalidArgument:
		return http.StatusBadRequest
	case exactsim.CodeNotFound:
		return http.StatusNotFound
	case exactsim.CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case exactsim.CodeCanceled:
		// 499 Client Closed Request (nginx convention): the caller went
		// away; no standard status fits better.
		return 499
	case exactsim.CodeUnavailable, exactsim.CodeClosed:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
