package httpapi_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/httpapi"
	"github.com/exactsim/exactsim/internal/fault"
)

// flaky wraps a handler and fails the first n requests per path with the
// given status and body, succeeding afterwards.
type flaky struct {
	next  http.Handler
	fails atomic.Int64
	mode  func(w http.ResponseWriter)
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.fails.Add(-1) >= 0 {
		f.mode(w)
		return
	}
	f.next.ServeHTTP(w, r)
}

// TestClientRetriesTransientFailures: a 503 streak shorter than the retry
// budget is invisible to the caller; one longer than it surfaces.
func TestClientRetriesTransientFailures(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(200, 3, 7)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)

	unavailable := func(w http.ResponseWriter) {
		e := exactsim.Errorf(exactsim.CodeUnavailable, "flaky: try again")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(httpapi.StatusOf(e))
		json.NewEncoder(w).Encode(exactsim.Response{Err: e})
	}
	fl := &flaky{next: httpapi.NewServer(svc, httpapi.ServerOptions{}), mode: unavailable}
	ts := httptest.NewServer(fl)
	t.Cleanup(ts.Close)

	c, err := httpapi.NewClient(ts.URL,
		httpapi.WithRetries(2), httpapi.WithRetryBackoff(time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	fl.fails.Store(2) // 2 failures, 3 attempts: the caller never notices
	resp, err := c.Query(context.Background(), exactsim.Request{Source: 3})
	if err != nil || resp.Err != nil {
		t.Fatalf("retryable streak surfaced: err=%v respErr=%v", err, resp.Err)
	}
	if len(resp.Result.Scores) != 200 {
		t.Fatalf("scores len %d", len(resp.Result.Scores))
	}

	fl.fails.Store(5) // longer than the budget: the protocol error surfaces
	resp, err = c.Query(context.Background(), exactsim.Request{Source: 4})
	if err != nil {
		t.Fatalf("protocol error became transport error: %v", err)
	}
	if resp.Err == nil || resp.Err.Code != exactsim.CodeUnavailable {
		t.Fatalf("want unavailable after exhausted retries, got %+v", resp.Err)
	}

	// A stale envelope from a failed attempt must not leak into a later
	// success (out is zeroed between attempts).
	fl.fails.Store(1)
	resp, err = c.Query(context.Background(), exactsim.Request{Source: 5})
	if err != nil || resp.Err != nil {
		t.Fatalf("stale envelope leaked: err=%v respErr=%v", err, resp.Err)
	}
}

// TestClientNoRetryOnInvalidArgument: non-retryable codes answer
// immediately — the server must see exactly one request.
func TestClientNoRetryOnInvalidArgument(t *testing.T) {
	var hits atomic.Int64
	g := exactsim.GenerateBarabasiAlbert(50, 3, 7)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	api := httpapi.NewServer(svc, httpapi.ServerOptions{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		api.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	c2, err := httpapi.NewClient(ts.URL, httpapi.WithRetryBackoff(time.Millisecond, 2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c2.Query(context.Background(), exactsim.Request{Source: 9999})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == nil || resp.Err.Code != exactsim.CodeInvalidArgument {
		t.Fatalf("want invalid_argument, got %+v", resp.Err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("non-retryable error was retried: %d requests", n)
	}
}

// TestClientRetryHonorsDeadlineBudget: with the deadline nearly spent,
// the client returns the last error instead of sleeping through it.
func TestClientRetryHonorsDeadlineBudget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		e := exactsim.Errorf(exactsim.CodeUnavailable, "always down")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(httpapi.StatusOf(e))
		json.NewEncoder(w).Encode(exactsim.Response{Err: e})
	}))
	t.Cleanup(ts.Close)
	c, err := httpapi.NewClient(ts.URL,
		httpapi.WithRetries(10), httpapi.WithRetryBackoff(50*time.Millisecond, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	resp, err := c.Query(ctx, exactsim.Request{Source: 1})
	if err != nil {
		t.Fatalf("transport error: %v", err)
	}
	if resp.Err == nil || resp.Err.Code != exactsim.CodeUnavailable {
		t.Fatalf("want unavailable, got %+v", resp.Err)
	}
	if d := time.Since(start); d > 300*time.Millisecond {
		t.Fatalf("client burned %v sleeping past the deadline budget", d)
	}
}

// TestClientRetriesInjectedResets: under the fault injector's connection
// resets the retry loop converges to an answer.
func TestClientRetriesInjectedResets(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(200, 3, 7)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(httpapi.NewServer(svc, httpapi.ServerOptions{}))
	t.Cleanup(ts.Close)

	inj := fault.New(fault.Config{Seed: 11, ResetProb: 0.3})
	hc := &http.Client{Transport: inj.Transport(http.DefaultTransport.(*http.Transport).Clone())}
	c, err := httpapi.NewClient(ts.URL, httpapi.WithHTTPClient(hc),
		httpapi.WithRetries(4), httpapi.WithRetryBackoff(time.Millisecond, 4*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for src := 0; src < 40; src++ {
		resp, err := c.Query(context.Background(), exactsim.Request{Source: exactsim.NodeID(src % 50)})
		if err == nil && resp.Err == nil {
			ok++
		}
	}
	if ok < 38 { // 0.3^5 per query leaves ~0.1% residual failure
		t.Fatalf("only %d/40 queries survived 30%% resets with 4 retries", ok)
	}
	if inj.Counts().Resets == 0 {
		t.Fatal("injector never fired — the test proved nothing")
	}
}

// TestClientConnectionReuse: success, protocol-error and probe paths all
// drain + close bodies, so the whole exercise rides one TCP connection.
func TestClientConnectionReuse(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(200, 3, 7)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(httpapi.NewServer(svc, httpapi.ServerOptions{}))
	t.Cleanup(ts.Close)

	var dials atomic.Int64
	tr := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dials.Add(1)
			return (&net.Dialer{}).DialContext(ctx, network, addr)
		},
		MaxIdleConnsPerHost: 1,
	}
	t.Cleanup(tr.CloseIdleConnections)
	c, err := httpapi.NewClient(ts.URL, httpapi.WithHTTPClient(&http.Client{Transport: tr}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := c.Query(ctx, exactsim.Request{Source: exactsim.NodeID(i)}); err != nil {
			t.Fatal(err)
		}
		// Protocol error path (out-of-range source → 400 envelope).
		if resp, err := c.Query(ctx, exactsim.Request{Source: 99999}); err != nil || resp.Err == nil {
			t.Fatalf("want protocol error: err=%v resp=%+v", err, resp)
		}
		if err := c.Health(ctx); err != nil {
			t.Fatal(err)
		}
		if err := c.Ready(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Stats(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("50 exchanges used %d connections, want 1 — a body is not being drained", n)
	}
}

// TestServerRecoversHandlerPanic: a panicking handler answers the
// CodeInternal envelope, the server survives, and the stats gauge counts
// it.
func TestServerRecoversHandlerPanic(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(50, 3, 7)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	api := httpapi.NewServer(svc, httpapi.ServerOptions{})

	// Panic at the transport layer, below api's own mux, by mounting a
	// bomb next to it under api's Recovered wrapper.
	var panics atomic.Int64
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("handler bomb")
	})
	wrapped := httpapi.Recovered(mux, func(v any, stack []byte) {
		panics.Add(1)
		if len(stack) == 0 {
			t.Error("empty stack capture")
		}
	})
	ts := httptest.NewServer(wrapped)
	t.Cleanup(ts.Close)

	res, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", res.StatusCode)
	}
	var env exactsim.Response
	if err := json.NewDecoder(res.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Err == nil || env.Err.Code != exactsim.CodeInternal || !strings.Contains(env.Err.Message, "handler bomb") {
		t.Fatalf("envelope %+v", env.Err)
	}
	if panics.Load() != 1 {
		t.Fatalf("onPanic ran %d times", panics.Load())
	}

	// The server (and its connection pool) is still alive.
	res2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res2.Body)
	res2.Body.Close()
	if res2.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %d", res2.StatusCode)
	}
}

// TestClientUndecodable2xxIsTransportError: a 200 whose body is not the
// protocol's JSON (garbled by a proxy, cut mid-flight) is a transport
// error the caller can retry elsewhere — never a parse panic, never an
// accepted answer.
func TestClientUndecodable2xxIsTransportError(t *testing.T) {
	cut := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"result":{"scores":[0.1,0.2`) // truncated JSON
	}))
	t.Cleanup(cut.Close)
	c, err := httpapi.NewClient(cut.URL, httpapi.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	_, qerr := c.Query(context.Background(), exactsim.Request{Source: 1})
	if qerr == nil {
		t.Fatal("garbled 200 was accepted")
	}
	var pe *exactsim.Error
	if errors.As(qerr, &pe) {
		t.Fatalf("garbled body decoded into a protocol error: %v", qerr)
	}
}
