package httpapi_test

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/httpapi"
)

// TestEnvelopeWireCompat: the generic timeout envelope serializes the
// payload flat with timeout_ms spliced in — the exact pre-envelope wire
// shape — and round-trips losslessly.
func TestEnvelopeWireCompat(t *testing.T) {
	qr := httpapi.QueryRequest{
		Body:          exactsim.Request{Algorithm: "exactsim", Source: 42, K: 5, Epsilon: 0.01},
		TimeoutMillis: 1500,
	}
	blob, err := json.Marshal(qr)
	if err != nil {
		t.Fatal(err)
	}
	var wire map[string]any
	if err := json.Unmarshal(blob, &wire); err != nil {
		t.Fatal(err)
	}
	// Flat: the request's own fields at top level, plus timeout_ms.
	for _, key := range []string{"algorithm", "source", "k", "epsilon", "timeout_ms"} {
		if _, ok := wire[key]; !ok {
			t.Fatalf("wire object missing %q: %s", key, blob)
		}
	}
	if ms, ok := wire["timeout_ms"].(float64); !ok || ms != 1500 {
		t.Fatalf("timeout_ms = %v", wire["timeout_ms"])
	}
	var back httpapi.QueryRequest
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != qr {
		t.Fatalf("round trip lost data:\n in: %+v\nout: %+v", qr, back)
	}

	// No wire-requested timeout → no timeout_ms key at all.
	blob, err = json.Marshal(httpapi.QueryRequest{Body: exactsim.Request{Source: 1}})
	if err != nil {
		t.Fatal(err)
	}
	wire = nil
	if err := json.Unmarshal(blob, &wire); err != nil {
		t.Fatal(err)
	}
	if _, ok := wire["timeout_ms"]; ok {
		t.Fatalf("zero timeout serialized anyway: %s", blob)
	}

	// The batch and warm envelopes ride the same generic type.
	bb, err := json.Marshal(httpapi.BatchRequest{
		Body:          httpapi.Batch{Requests: []exactsim.Request{{Source: 1}}},
		TimeoutMillis: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var bw struct {
		Requests      []exactsim.Request `json:"requests"`
		TimeoutMillis int64              `json:"timeout_ms"`
	}
	if err := json.Unmarshal(bb, &bw); err != nil {
		t.Fatal(err)
	}
	if len(bw.Requests) != 1 || bw.TimeoutMillis != 7 {
		t.Fatalf("batch envelope wire shape: %s", bb)
	}
}

// TestHTTPQueryStream: refinements arrive as NDJSON records and the
// terminal record is byte-for-byte the non-streaming answer.
func TestHTTPQueryStream(t *testing.T) {
	_, _, c := loopback(t, exactsim.ServiceOptions{Workers: 2}, httpapi.ServerOptions{})
	ctx := context.Background()
	req := exactsim.Request{Source: 8, Epsilon: 0.001, K: 5}

	var refinements []exactsim.Response
	final, err := c.QueryStream(ctx, req, func(r exactsim.Response) { refinements = append(refinements, r) })
	if err != nil {
		t.Fatal(err)
	}
	if final.Err != nil {
		t.Fatal(final.Err)
	}
	if final.Partial {
		t.Fatal("terminal record flagged Partial")
	}
	if len(refinements) == 0 {
		t.Fatal("no refinements over the wire for a multi-tier ladder")
	}
	for i, ref := range refinements {
		if !ref.Partial || ref.AchievedEpsilon <= 0 {
			t.Fatalf("refinement %d not a tier record: %+v", i, ref)
		}
	}

	// The stream's final tier landed in the server cache under the same
	// key — the plain endpoint now answers the identical result.
	plain, err := c.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Err != nil || !plain.CacheHit {
		t.Fatalf("plain query after stream: hit=%v err=%v", plain.CacheHit, plain.Err)
	}
	if len(final.Result.Scores) != len(plain.Result.Scores) {
		t.Fatalf("score lengths differ: %d vs %d", len(final.Result.Scores), len(plain.Result.Scores))
	}
	for i := range final.Result.Scores {
		if math.Float64bits(final.Result.Scores[i]) != math.Float64bits(plain.Result.Scores[i]) {
			t.Fatalf("stream and plain answers diverge at %d", i)
		}
	}
}

// TestHTTPQueryStreamRejection: a request rejected before anything
// streams answers with the normal JSON error envelope, which the client
// surfaces in Response.Err like the plain endpoint does.
func TestHTTPQueryStreamRejection(t *testing.T) {
	_, _, c := loopback(t, exactsim.ServiceOptions{Workers: 1}, httpapi.ServerOptions{})
	final, err := c.QueryStream(context.Background(),
		exactsim.Request{Source: 99999}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Err == nil || final.Err.Code != exactsim.CodeInvalidArgument {
		t.Fatalf("rejection: %+v", final.Err)
	}
}

// TestHTTPQueryStreamPartialDeadline: an opted-in stream under a tight
// wire deadline ends with a Partial best-so-far terminal record — no
// deadline_exceeded, through the full HTTP round trip.
func TestHTTPQueryStreamPartialDeadline(t *testing.T) {
	_, _, c := loopback(t, exactsim.ServiceOptions{Workers: 1}, httpapi.ServerOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	// ε=2.5e-4 starts the ladder at its cheapest rung (0.064 — inside
	// the deadline even race-instrumented) while the terminal rung can
	// never fit the remaining budget, so the checkpoint bails mid-ladder
	// and the final record arrives well before the client context
	// expires.
	final, err := c.QueryStream(ctx,
		exactsim.Request{Source: 5, Epsilon: 2.5e-4, AllowPartial: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Err != nil {
		t.Fatalf("opted-in stream errored: %v", final.Err)
	}
	if !final.Partial || final.AchievedEpsilon <= 0 || final.Result == nil {
		t.Fatalf("terminal record not best-so-far: partial=%v achieved=%g",
			final.Partial, final.AchievedEpsilon)
	}
}

// TestHTTPAlgorithmsInfo: the capability surface carries one caps+cost
// row per registry method, and the client caches it — repeated calls
// cost one upstream round trip total.
func TestHTTPAlgorithmsInfo(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(300, 3, 7)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        1,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	inner := httpapi.NewServer(svc, httpapi.ServerOptions{})
	var algoHits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/algorithms" {
			algoHits.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	c, err := httpapi.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	ar, err := c.AlgorithmsInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Default != exactsim.AlgorithmAuto {
		t.Fatalf("default %q", ar.Default)
	}
	if len(ar.Methods) != len(exactsim.AlgorithmCaps()) {
		t.Fatalf("%d method rows, want %d", len(ar.Methods), len(exactsim.AlgorithmCaps()))
	}
	byName := make(map[string]httpapi.MethodInfo)
	for _, m := range ar.Methods {
		if !m.SupportsTopK {
			t.Errorf("method %q reports no top-k support", m.Name)
		}
		if m.CostUnits <= 0 || m.CostNanos <= 0 {
			t.Errorf("method %q has no cost row: %+v", m.Name, m)
		}
		byName[m.Name] = m
	}
	if es := byName["exactsim"]; es.Exactness != exactsim.ExactnessErrorBounded || !es.ErrorDriven {
		t.Fatalf("exactsim caps: %+v", es)
	}
	if pm := byName["powermethod"]; pm.Exactness != exactsim.ExactnessExact || pm.ErrorDriven {
		t.Fatalf("powermethod caps: %+v", pm)
	}

	// Cached: two more reads, still one upstream hit.
	if _, err := c.AlgorithmsInfo(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Algorithms(ctx); err != nil {
		t.Fatal(err)
	}
	if n := algoHits.Load(); n != 1 {
		t.Fatalf("upstream /v1/algorithms hit %d times, want 1 (client cache)", n)
	}
}
