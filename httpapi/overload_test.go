package httpapi_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/httpapi"
)

// shedHandler answers every request with a coded unavailable shed (plus
// a retry_after_ms hint) until the remaining counter hits zero, then
// succeeds — the building block of the retry-budget and backoff-floor
// tests. remaining < 0 sheds forever.
func shedHandler(t *testing.T, remaining int, retryAfterMillis int64, onAttempt func(r *http.Request)) http.Handler {
	t.Helper()
	var mu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if onAttempt != nil {
			onAttempt(r)
		}
		mu.Lock()
		shed := remaining != 0
		if remaining > 0 {
			remaining--
		}
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if !shed {
			w.WriteHeader(http.StatusOK)
			json.NewEncoder(w).Encode(exactsim.Response{GraphEpoch: 1})
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"error": map[string]any{
			"code":           string(exactsim.CodeUnavailable),
			"message":        "saturated",
			"retry_after_ms": retryAfterMillis,
		}})
	})
}

// TestClientRetryBudgetSuppressesStorm pins the token-bucket arithmetic
// against an always-saturated server: the burst funds exactly its size
// in retries, nothing succeeds so nothing is earned, and every later
// call gets exactly one attempt — the collective-action fix for retry
// storms, counted attempt by attempt.
func TestClientRetryBudgetSuppressesStorm(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(shedHandler(t, -1, 1, func(*http.Request) { attempts++ }))
	defer ts.Close()

	c, err := httpapi.NewClient(ts.URL,
		httpapi.WithRetries(2),
		httpapi.WithRetryBackoff(100*time.Microsecond, time.Millisecond),
		httpapi.WithRetryBudget(0.5, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const calls = 10
	for i := 0; i < calls; i++ {
		resp, err := c.Query(ctx, exactsim.Request{})
		if err != nil {
			t.Fatalf("call %d: transport error %v", i, err)
		}
		if resp.Err == nil || resp.Err.Code != exactsim.CodeUnavailable {
			t.Fatalf("call %d: want coded unavailable, got %v", i, resp.Err)
		}
	}
	// Call 1 retries twice (spending the whole burst); calls 2..10 are
	// declined their first retry and return after a single attempt.
	if want := calls + 2; attempts != want {
		t.Fatalf("server saw %d attempts for %d calls, want %d", attempts, calls, want)
	}
	st := c.RetryStats()
	if st.Retries != 2 || st.Suppressed != calls-1 {
		t.Fatalf("RetryStats = %+v, want 2 retries and %d suppressed", st, calls-1)
	}
}

// TestClientRetryAfterFloorsBackoff: the server's retry_after_ms hint
// floors the backoff sleep, outranking even the configured cap — the
// client must not knock again before the server said the backlog could
// have moved.
func TestClientRetryAfterFloorsBackoff(t *testing.T) {
	const hint = 80 * time.Millisecond
	ts := httptest.NewServer(shedHandler(t, 1, hint.Milliseconds(), nil))
	defer ts.Close()

	c, err := httpapi.NewClient(ts.URL,
		httpapi.WithRetries(2),
		// Cap far below the hint: only the floor can make this retry wait.
		httpapi.WithRetryBackoff(100*time.Microsecond, time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := c.Query(context.Background(), exactsim.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != nil {
		t.Fatalf("retry should have succeeded, got %v", resp.Err)
	}
	if elapsed := time.Since(start); elapsed < hint {
		t.Fatalf("retry fired after %v, before the server's %v retry_after hint", elapsed, hint)
	}
}

// TestClientRetryRepropagatesDeadline: a retried request re-serializes
// the caller's *remaining* deadline budget as timeout_ms — the attempt
// after an 100ms backoff must grant the server strictly less dwell than
// the first, not the original already-spent budget.
func TestClientRetryRepropagatesDeadline(t *testing.T) {
	const hint = 100 * time.Millisecond
	var mu sync.Mutex
	var timeouts []int64
	ts := httptest.NewServer(shedHandler(t, 1, hint.Milliseconds(), func(r *http.Request) {
		var qr httpapi.QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&qr); err != nil {
			t.Errorf("decoding attempt body: %v", err)
			return
		}
		mu.Lock()
		timeouts = append(timeouts, qr.TimeoutMillis)
		mu.Unlock()
	}))
	defer ts.Close()

	c, err := httpapi.NewClient(ts.URL,
		httpapi.WithRetries(2),
		httpapi.WithRetryBackoff(100*time.Microsecond, time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	resp, err := c.Query(ctx, exactsim.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != nil {
		t.Fatalf("retry should have succeeded, got %v", resp.Err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(timeouts) != 2 {
		t.Fatalf("server saw %d attempts, want 2 (timeouts %v)", len(timeouts), timeouts)
	}
	if timeouts[0] <= 0 || timeouts[0] > 500 {
		t.Fatalf("first attempt timeout_ms = %d, want within the caller's 500ms budget", timeouts[0])
	}
	// The backoff slept through the server's 100ms hint; the re-sent
	// budget must have shrunk by at least half of that (generous slack
	// for scheduling), never grown.
	if timeouts[1] > timeouts[0]-50 {
		t.Fatalf("retried attempt re-sent timeout_ms %d after the first sent %d; the spent backoff must come out of the wire budget", timeouts[1], timeouts[0])
	}
}
