package httpapi_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/httpapi"
)

// TestHTTPSnapshotWarmClone is the fleet story end to end: instance A
// serves and warms; a fresh instance clones A over the wire (POST
// /v1/snapshot), boots from the container, and answers bit-identically
// with A's diagonal sample chunks already resident.
func TestHTTPSnapshotWarmClone(t *testing.T) {
	svcOpts := exactsim.ServiceOptions{
		Workers:   2,
		CacheSize: -1,
		QuerierOptions: []exactsim.QuerierOption{
			exactsim.WithEpsilon(0.05), exactsim.WithSeed(3),
		},
	}
	svcA, ts, c := loopback(t, svcOpts, httpapi.ServerOptions{})

	ctx := context.Background()
	want, err := c.SingleSource(ctx, 42)
	if err != nil {
		t.Fatal(err)
	}
	statsA := svcA.Stats()
	if statsA.DiagChunks == 0 {
		t.Fatal("server accumulated no diag chunks")
	}

	var buf bytes.Buffer
	n, epoch, err := c.Snapshot(ctx, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("snapshot copied %d bytes, buffered %d", n, buf.Len())
	}
	if epoch != svcA.Epoch() {
		t.Fatalf("snapshot epoch %d, server at %d", epoch, svcA.Epoch())
	}

	// A bare GET (what `curl -o` sends) must download the same container.
	res, err := ts.Client().Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	viaGet, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK || !bytes.Equal(viaGet, buf.Bytes()) {
		t.Fatalf("GET /v1/snapshot: status %d, %d bytes (POST gave %d)", res.StatusCode, len(viaGet), buf.Len())
	}

	path := filepath.Join(t.TempDir(), "clone.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	clone, err := exactsim.OpenSnapshot(path, svcOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer clone.Close()
	if st := clone.Stats(); st.DiagChunks != statsA.DiagChunks {
		t.Fatalf("clone restored %d chunks, server had %d", st.DiagChunks, statsA.DiagChunks)
	}
	resp := clone.Query(ctx, exactsim.Request{Source: 42})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	for i := range want.Scores {
		if math.Float64bits(want.Scores[i]) != math.Float64bits(resp.Result.Scores[i]) {
			t.Fatalf("clone diverges from server at %d: %v vs %v", i, want.Scores[i], resp.Result.Scores[i])
		}
	}
	// A truncated transfer must fail to open, not half-load.
	short := filepath.Join(t.TempDir(), "short.snap")
	if err := os.WriteFile(short, buf.Bytes()[:buf.Len()-11], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := exactsim.OpenSnapshot(short, svcOpts); err == nil {
		t.Fatal("truncated snapshot opened")
	}
}

// TestHTTPSnapshotClosedService: the endpoint answers the protocol
// error when the service is gone, not an empty container.
func TestHTTPSnapshotClosedService(t *testing.T) {
	svc, _, c := loopback(t, exactsim.ServiceOptions{Workers: 1}, httpapi.ServerOptions{})
	svc.Close()
	var buf bytes.Buffer
	_, _, err := c.Snapshot(context.Background(), &buf)
	if err == nil {
		t.Fatal("snapshot of closed service succeeded")
	}
	if !errors.Is(err, exactsim.ErrServiceClosed) {
		t.Fatalf("error %v does not match ErrServiceClosed", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("closed service still streamed %d bytes", buf.Len())
	}
}
