package httpapi_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/httpapi"
)

// loopback starts a Service over a small graph and an httptest server in
// front of it; the caller gets a connected client.
func loopback(t *testing.T, svcOpts exactsim.ServiceOptions, srvOpts httpapi.ServerOptions,
	clientOpts ...httpapi.ClientOption) (*exactsim.Service, *httptest.Server, *httpapi.Client) {
	t.Helper()
	g := exactsim.GenerateBarabasiAlbert(300, 3, 7)
	if svcOpts.QuerierOptions == nil {
		svcOpts.QuerierOptions = []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)}
	}
	svc, err := exactsim.NewService(g, svcOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(httpapi.NewServer(svc, srvOpts))
	t.Cleanup(ts.Close)
	c, err := httpapi.NewClient(ts.URL, clientOpts...)
	if err != nil {
		t.Fatal(err)
	}
	return svc, ts, c
}

// TestHTTPQueryAndCache: one query over the wire, then the same one again
// — the second is served by the server-side LRU and says so.
func TestHTTPQueryAndCache(t *testing.T) {
	_, _, c := loopback(t, exactsim.ServiceOptions{Workers: 2}, httpapi.ServerOptions{})
	req := exactsim.Request{Source: 3, K: 5}
	first, err := c.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Err != nil || first.CacheHit || first.GraphEpoch != 1 {
		t.Fatalf("first: %+v", first)
	}
	if len(first.TopK) != 5 || len(first.Result.Scores) != 300 {
		t.Fatalf("payload: k=%d n=%d", len(first.TopK), len(first.Result.Scores))
	}
	if first.Request.Algorithm != "exactsim" {
		t.Fatalf("normalized algorithm not echoed: %q", first.Request.Algorithm)
	}
	second, err := c.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("identical query missed the server-side cache")
	}
}

// TestHTTPDeadlineRoundTrip is the acceptance check for structured error
// codes: a deadline that expires server-side (carried as timeout_ms from
// the client context) surfaces client-side as an error matching
// context.DeadlineExceeded.
func TestHTTPDeadlineRoundTrip(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(3000, 5, 33)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers: 1,
		// ε=10⁻⁶ makes the diagonal phase run for many seconds uncancelled.
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(1e-6), exactsim.WithSeed(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(httpapi.NewServer(svc, httpapi.ServerOptions{}))
	defer ts.Close()
	c, err := httpapi.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	// A 50ms deadline on a query that needs seconds: the Client forwards
	// it as timeout_ms, the server cancels the computation mid-loop and
	// answers with the structured code.
	qctx, qcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer qcancel()
	_, qerr := c.SingleSource(qctx, 7)
	if qerr == nil {
		t.Fatal("deadline did not surface")
	}
	if !errors.Is(qerr, context.DeadlineExceeded) {
		t.Fatalf("got %v, want a context.DeadlineExceeded match", qerr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline honored only after %v", elapsed)
	}
	// When the server answers (rather than the client transport timing
	// out), the structured code crosses intact.
	var pe *exactsim.Error
	if errors.As(qerr, &pe) && pe.Code != exactsim.CodeDeadlineExceeded {
		t.Fatalf("structured code %q, want %q", pe.Code, exactsim.CodeDeadlineExceeded)
	}
}

// TestHTTPServerSideDeadline pins the deterministic half of the round
// trip: the deadline exists ONLY server-side (the service's
// DefaultTimeout; the client context never expires), so the structured
// "deadline_exceeded" must arrive as a Response body — and still match
// context.DeadlineExceeded through errors.Is on the client.
func TestHTTPServerSideDeadline(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(3000, 5, 33)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		Workers:        1,
		DefaultTimeout: 30 * time.Millisecond,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(1e-6), exactsim.WithSeed(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(httpapi.NewServer(svc, httpapi.ServerOptions{}))
	defer ts.Close()
	c, err := httpapi.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	_, qerr := c.SingleSource(context.Background(), 7)
	if qerr == nil {
		t.Fatal("server-side deadline did not surface")
	}
	var pe *exactsim.Error
	if !errors.As(qerr, &pe) {
		t.Fatalf("got %T (%v), want a structured *exactsim.Error", qerr, qerr)
	}
	if pe.Code != exactsim.CodeDeadlineExceeded {
		t.Fatalf("structured code %q, want %q", pe.Code, exactsim.CodeDeadlineExceeded)
	}
	if !errors.Is(qerr, context.DeadlineExceeded) {
		t.Fatal("remote deadline does not match context.DeadlineExceeded")
	}
}

// TestHTTPErrorCodes: protocol rejections cross the wire with their code
// and matching HTTP status.
func TestHTTPErrorCodes(t *testing.T) {
	_, ts, c := loopback(t, exactsim.ServiceOptions{Workers: 1}, httpapi.ServerOptions{MaxBatch: 4})

	resp, err := c.Query(context.Background(), exactsim.Request{Algorithm: "nope", Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == nil || resp.Err.Code != exactsim.CodeNotFound {
		t.Fatalf("unknown algorithm: %+v", resp.Err)
	}
	resp, err = c.Query(context.Background(), exactsim.Request{Source: -5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == nil || resp.Err.Code != exactsim.CodeInvalidArgument {
		t.Fatalf("bad source: %+v", resp.Err)
	}

	// Raw HTTP status mapping.
	res, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"algorithm":"nope","source":0}`))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown algorithm returned HTTP %d, want 404", res.StatusCode)
	}
	res, err = http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(`{not json`))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body returned HTTP %d, want 400", res.StatusCode)
	}

	// A batch over the server bound is rejected as a whole, and the
	// client surfaces the structured error.
	tooBig := make([]exactsim.Request, 5)
	if _, err := c.Batch(context.Background(), tooBig); err == nil {
		t.Fatal("oversized batch accepted")
	} else {
		var pe *exactsim.Error
		if !errors.As(err, &pe) || pe.Code != exactsim.CodeInvalidArgument {
			t.Fatalf("oversized batch error: %v", err)
		}
	}
}

// TestHTTPBatch: mixed success/failure batch over the wire, responses in
// request order with per-request errors.
func TestHTTPBatch(t *testing.T) {
	_, _, c := loopback(t, exactsim.ServiceOptions{Workers: 3}, httpapi.ServerOptions{})
	reqs := []exactsim.Request{
		{Algorithm: "parsim", Source: 0, K: 3},
		{Algorithm: "exactsim", Source: 1},
		{Algorithm: "no-such-algorithm", Source: 2},
		{Source: 999999}, // out of range
	}
	resps, err := c.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != len(reqs) {
		t.Fatalf("%d responses for %d requests", len(resps), len(reqs))
	}
	for i, r := range resps {
		if r.Request.Source != reqs[i].Source {
			t.Fatalf("response %d out of order", i)
		}
	}
	if resps[0].Err != nil || len(resps[0].TopK) != 3 {
		t.Fatalf("batch[0]: %+v", resps[0])
	}
	if resps[1].Err != nil {
		t.Fatalf("batch[1]: %v", resps[1].Err)
	}
	if resps[2].Err == nil || resps[2].Err.Code != exactsim.CodeNotFound {
		t.Fatalf("batch[2]: %+v", resps[2].Err)
	}
	if resps[3].Err == nil || resps[3].Err.Code != exactsim.CodeInvalidArgument {
		t.Fatalf("batch[3]: %+v", resps[3].Err)
	}
}

// TestHTTPAlgorithmsStatsHealth: the discovery and observability
// endpoints round-trip through the client helpers.
func TestHTTPAlgorithmsStatsHealth(t *testing.T) {
	svc, _, c := loopback(t, exactsim.ServiceOptions{Workers: 2}, httpapi.ServerOptions{})
	ctx := context.Background()

	names, def, err := c.Algorithms(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if def != exactsim.AlgorithmAuto {
		t.Fatalf("default algorithm %q", def)
	}
	want := exactsim.Algorithms()
	if len(names) != len(want) {
		t.Fatalf("algorithms %v, want %v", names, want)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Query(ctx, exactsim.Request{Source: 1}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Queries < 1 || st.GraphEpoch != 1 {
		t.Fatalf("stats over the wire: %+v", st)
	}

	// A live update is visible through the remote gauges.
	if _, err := svc.Update(exactsim.GenerateBarabasiAlbert(100, 3, 1)); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.GraphEpoch != 2 {
		t.Fatalf("remote GraphEpoch = %d after update", st.GraphEpoch)
	}
	resp, err := c.Query(ctx, exactsim.Request{Source: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.GraphEpoch != 2 || len(resp.Result.Scores) != 100 {
		t.Fatalf("post-update remote query: epoch=%d n=%d", resp.GraphEpoch, len(resp.Result.Scores))
	}
}

// TestClientBadBase: constructor validation.
// TestHTTPWarm drives the prefetch endpoint over the wire: POST /v1/warm
// pre-computes hub sources, the diag-index gauges show up in /v1/stats
// afterwards, and the server bounds an explicit source list by MaxBatch.
func TestHTTPWarm(t *testing.T) {
	_, ts, c := loopback(t, exactsim.ServiceOptions{Workers: 2},
		httpapi.ServerOptions{MaxBatch: 4})

	wr, err := c.Warm(context.Background(), exactsim.WarmRequest{TopDegree: 3})
	if err != nil {
		t.Fatal(err)
	}
	if wr.Err != nil || wr.Warmed != 3 || wr.Failed != 0 || wr.GraphEpoch != 1 {
		t.Fatalf("warm: %+v", wr)
	}

	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !st.DiagIndexEnabled || st.DiagChunks == 0 || st.DiagResidentBytes <= 0 {
		t.Fatalf("diag gauges missing over the wire: %+v", st)
	}

	// Explicit sources work, and failures are per-source counts.
	wr, err = c.Warm(context.Background(), exactsim.WarmRequest{
		Sources: []exactsim.NodeID{1, 2, 9999},
	})
	if err != nil {
		t.Fatal(err)
	}
	if wr.Warmed != 2 || wr.Failed != 1 {
		t.Fatalf("explicit sources: %+v", wr)
	}

	// An oversized source list — or hub count — is rejected wholesale
	// with the batch bound.
	wr, err = c.Warm(context.Background(), exactsim.WarmRequest{
		Sources: []exactsim.NodeID{0, 1, 2, 3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if wr.Err == nil || wr.Err.Code != exactsim.CodeInvalidArgument {
		t.Fatalf("oversized warm list: %+v", wr)
	}
	wr, err = c.Warm(context.Background(), exactsim.WarmRequest{TopDegree: 10})
	if err != nil {
		t.Fatal(err)
	}
	if wr.Err == nil || wr.Err.Code != exactsim.CodeInvalidArgument {
		t.Fatalf("oversized top_degree: %+v", wr)
	}
	// An empty request implies the service's default hub fan-out (32),
	// which this server's MaxBatch=4 must also bound.
	wr, err = c.Warm(context.Background(), exactsim.WarmRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if wr.Err == nil || wr.Err.Code != exactsim.CodeInvalidArgument {
		t.Fatalf("default fan-out over bound: %+v", wr)
	}
	// TopDegree is irrelevant (and unchecked) when Sources are explicit —
	// the service ignores it, so the bound must too.
	wr, err = c.Warm(context.Background(), exactsim.WarmRequest{
		Sources: []exactsim.NodeID{1, 2}, TopDegree: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wr.Err != nil || wr.Warmed != 2 {
		t.Fatalf("explicit sources with stray top_degree: %+v", wr)
	}

	// A bad request body answers 400 with the protocol envelope.
	res, err := http.Post(ts.URL+"/v1/warm", "application/json",
		strings.NewReader(`{"top_degree": -1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative top_degree answered %s", res.Status)
	}
}

func TestClientBadBase(t *testing.T) {
	if _, err := httpapi.NewClient("not a url"); err == nil {
		t.Fatal("garbage base URL accepted")
	}
	if _, err := httpapi.NewClient("/just/a/path"); err == nil {
		t.Fatal("schemeless base URL accepted")
	}
}
