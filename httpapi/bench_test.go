package httpapi_test

import (
	"context"
	"net/http/httptest"
	"testing"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/httpapi"
)

// benchLoopback stands up Service → Server → Client over HTTP loopback
// with a warmed cache, so the measured cost is the transport (JSON both
// ways, one HTTP round trip) on top of BenchmarkServiceThroughput.
func benchLoopback(b *testing.B) *httpapi.Client {
	b.Helper()
	g := exactsim.GenerateBarabasiAlbert(2000, 4, 1)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		CacheSize:      256,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.05), exactsim.WithSeed(1)},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	ts := httptest.NewServer(httpapi.NewServer(svc, httpapi.ServerOptions{}))
	b.Cleanup(ts.Close)
	c, err := httpapi.NewClient(ts.URL)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for s := 0; s < 64; s++ {
		if resp, err := c.Query(ctx, exactsim.Request{Source: exactsim.NodeID(s)}); err != nil || resp.Err != nil {
			b.Fatalf("warm: %v %v", err, resp.Err)
		}
	}
	return c
}

// BenchmarkHTTPLoopbackQuery is one cached single-source query per
// iteration through the full HTTP stack.
func BenchmarkHTTPLoopbackQuery(b *testing.B) {
	c := benchLoopback(b)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			resp, err := c.Query(ctx, exactsim.Request{Source: exactsim.NodeID(i & 63), K: 10})
			if err != nil {
				b.Fatal(err)
			}
			if resp.Err != nil {
				b.Fatal(resp.Err)
			}
			i++
		}
	})
}

// BenchmarkHTTPLoopbackBatch amortizes the round trip over 64 requests.
func BenchmarkHTTPLoopbackBatch(b *testing.B) {
	c := benchLoopback(b)
	ctx := context.Background()
	reqs := make([]exactsim.Request, 64)
	for i := range reqs {
		reqs[i] = exactsim.Request{Source: exactsim.NodeID(i & 63)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resps, err := c.Batch(ctx, reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range resps {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}
