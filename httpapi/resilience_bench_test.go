package httpapi_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/httpapi"
	"github.com/exactsim/exactsim/internal/fault"
)

// BenchmarkClientRetryReset measures the client's capped decorrelated-
// jitter retry loop against a seeded 10% connection-reset schedule on
// its own transport (internal/fault). retries=0 reports the raw fault
// rate as err_rate; retries=2 (the shipped default) should drive it
// ≥10× lower while p50 stays a clean loopback round trip — the resets
// fire before the request is accepted, so retried queries never
// double-count server work.
func BenchmarkClientRetryReset(b *testing.B) {
	for _, retries := range []int{0, 2} {
		b.Run(fmt.Sprintf("retries=%d", retries), func(b *testing.B) {
			g := exactsim.GenerateBarabasiAlbert(2000, 4, 1)
			svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
				CacheSize:      256,
				QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.05), exactsim.WithSeed(1)},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(svc.Close)
			ts := httptest.NewServer(httpapi.NewServer(svc, httpapi.ServerOptions{}))
			b.Cleanup(ts.Close)

			// Warm the cache over a clean client so the faulty one measures
			// transport resilience, not cold computes.
			warm, err := httpapi.NewClient(ts.URL)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			for s := 0; s < 64; s++ {
				if resp, err := warm.Query(ctx, exactsim.Request{Source: exactsim.NodeID(s)}); err != nil || resp.Err != nil {
					b.Fatalf("warm: %v %v", err, resp.Err)
				}
			}

			inj := fault.New(fault.Config{Seed: 7, ResetProb: 0.1})
			c, err := httpapi.NewClient(ts.URL,
				httpapi.WithHTTPClient(&http.Client{
					Transport: inj.Transport(http.DefaultTransport.(*http.Transport).Clone()),
				}),
				httpapi.WithRetries(retries),
				httpapi.WithRetryBackoff(200*time.Microsecond, 2*time.Millisecond),
			)
			if err != nil {
				b.Fatal(err)
			}

			lat := make([]time.Duration, 0, b.N)
			errs := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				resp, err := c.Query(ctx, exactsim.Request{Source: exactsim.NodeID(i & 63), K: 10})
				if err != nil || resp.Err != nil {
					errs++
				} else {
					lat = append(lat, time.Since(start))
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(errs)/float64(b.N), "err_rate")
			// Percentile over ALL issued queries with errors sorting last, so
			// both arms share a denominator — otherwise the baseline's failed
			// 10% silently deflate its percentile index and the comparison
			// flatters the hardened arm's tail into its median.
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			if idx := int(0.50 * float64(b.N-1)); idx < len(lat) {
				b.ReportMetric(float64(lat[idx].Nanoseconds()), "p50-ns/op")
			}
		})
	}
}
