package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	exactsim "github.com/exactsim/exactsim"
)

// sharedTransport is the pooled transport every Client constructed
// without WithHTTPClient shares. One tuned pool matters under fan-out:
// a router fronting N backends opens connections from one process to a
// handful of hosts at high rate, and http.DefaultClient's per-host idle
// cap of 2 would churn ephemeral ports (TIME_WAIT exhaustion) exactly
// when the fleet is busiest. Kept package-private; substitute a whole
// *http.Client via WithHTTPClient to customize.
var sharedTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   5 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	ForceAttemptHTTP2:     true,
	MaxIdleConns:          512,
	MaxIdleConnsPerHost:   64,
	IdleConnTimeout:       90 * time.Second,
	TLSHandshakeTimeout:   5 * time.Second,
	ExpectContinueTimeout: time.Second,
}

var sharedClient = &http.Client{Transport: sharedTransport}

// SharedClient returns the package-wide pooled *http.Client used by
// every Client constructed without WithHTTPClient — exported so sibling
// transports (the cluster router's raw snapshot proxy) reuse the same
// connection pool instead of growing a second one.
func SharedClient() *http.Client { return sharedClient }

// Client talks the HTTP query protocol and implements exactsim.Querier,
// so a remote exactsimd slots in anywhere a local querier does:
//
//	c, _ := httpapi.NewClient("http://localhost:8640", httpapi.WithAlgorithm("exactsim"))
//	var q exactsim.Querier = c
//	res, err := q.SingleSource(ctx, 42)
//
// A context deadline on a call is forwarded to the server as timeout_ms,
// so the computation is cancelled server-side too; a server-side
// "deadline_exceeded" comes back as an error matching
// context.DeadlineExceeded under errors.Is. Client is safe for concurrent
// use.
type Client struct {
	base      string
	hc        *http.Client
	algorithm string
	epsilon   float64

	// retries is how many times a failed idempotent POST (query, batch,
	// warm) is re-sent after the first attempt. Probes (Health, Ready),
	// Stats, Algorithms and Snapshot never retry: probes feed membership
	// decisions that must see failures, and a snapshot stream restarts
	// cheaper at the caller.
	retries   int
	retryBase time.Duration
	retryCap  time.Duration

	// Retry budget (token bucket): each retry spends one token, each
	// successful exchange earns budgetRatio back, capped at budgetBurst.
	// At steady state retries are bounded to ~budgetRatio of traffic, so
	// a saturated fleet sees at most (1+ratio)× its offered load instead
	// of a (1+retries)× retry storm. budgetBurst <= 0 disables the budget
	// (WithRetryBudget(-1, 0)).
	budgetMu     sync.Mutex
	budgetTokens float64
	budgetRatio  float64
	budgetBurst  float64

	// Monotonic retry accounting (RetryStats): total attempts sent,
	// retries among them, and retries the exhausted budget suppressed.
	attempts        atomic.Int64
	retriesSent     atomic.Int64
	retriesDeclined atomic.Int64

	// algoCache memoizes the /v1/algorithms capability surface (static
	// registry, slowly drifting cost rows) after the first successful
	// fetch; see AlgorithmsInfo.
	algoMu    sync.Mutex
	algoCache *AlgorithmsResponse
}

const (
	defaultRetries     = 2
	defaultRetryBase   = 5 * time.Millisecond
	defaultRetryCap    = 250 * time.Millisecond
	defaultBudgetRatio = 0.1
	defaultBudgetBurst = 10
)

// ClientOption customizes NewClient.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport tuning, instrumentation). Default: a package-wide client
// over one pooled, keep-alive transport shared by all Clients (see
// SharedClient), so many clients against many hosts don't exhaust
// ephemeral ports under load.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithAlgorithm pins the algorithm SingleSource and TopK request; empty
// (the default) lets the server's default answer.
func WithAlgorithm(name string) ClientOption {
	return func(c *Client) { c.algorithm = name }
}

// WithEpsilon pins the per-request error target SingleSource and TopK
// request; 0 (the default) keeps the server-side default.
func WithEpsilon(eps float64) ClientOption {
	return func(c *Client) { c.epsilon = eps }
}

// WithRetries sets how many times a failed Query/Batch/Warm call is
// re-sent (default 2, so up to 3 attempts). Negative disables retries
// entirely — a router that does its own replica-level retrying may want
// the raw first-attempt outcome. Only transport failures and the
// retryable protocol codes (unavailable, closed, internal) re-send; the
// API is read-only and a connection reset fires before the request is
// accepted, so a retry can never double-apply anything.
func WithRetries(n int) ClientOption {
	return func(c *Client) {
		if n < 0 {
			n = 0
		}
		c.retries = n
	}
}

// WithRetryBackoff tunes the decorrelated-jitter backoff between retry
// attempts: sleeps start around base and are capped at cap. Zero values
// keep the defaults (5ms base, 250ms cap).
func WithRetryBackoff(base, cap time.Duration) ClientOption {
	return func(c *Client) {
		if base > 0 {
			c.retryBase = base
		}
		if cap > 0 {
			c.retryCap = cap
		}
	}
}

// WithRetryBudget tunes the client-wide retry token bucket: each retry
// spends one token, each successful exchange earns ratio back, and the
// bucket holds at most burst tokens (also its starting balance, so a
// cold client can still rescue early transients). At steady state the
// budget caps retry amplification near 1+ratio — the collective-action
// fix for retry storms: when the fleet is saturated nobody's retries
// are succeeding, so nobody earns tokens, so everybody stops re-sending.
// ratio < 0 disables the budget entirely (per-call WithRetries attempts
// always allowed); ratio 0 or burst 0 keep the defaults (0.1, 10).
func WithRetryBudget(ratio float64, burst int) ClientOption {
	return func(c *Client) {
		if ratio < 0 {
			c.budgetRatio, c.budgetBurst = 0, 0
			return
		}
		if ratio > 0 {
			c.budgetRatio = ratio
		}
		if burst > 0 {
			c.budgetBurst = float64(burst)
		}
		c.budgetTokens = c.budgetBurst
	}
}

// RetryStats reports the client's cumulative retry accounting: attempts
// actually sent, how many of those were retries, and how many retries
// the exhausted budget suppressed. Amplification observed by servers is
// Attempts / (Attempts - Retries).
type RetryStats struct {
	Attempts   int64 `json:"attempts"`
	Retries    int64 `json:"retries"`
	Suppressed int64 `json:"suppressed"`
}

// RetryStats snapshots the retry counters (safe for concurrent use).
func (c *Client) RetryStats() RetryStats {
	return RetryStats{
		Attempts:   c.attempts.Load(),
		Retries:    c.retriesSent.Load(),
		Suppressed: c.retriesDeclined.Load(),
	}
}

// spendRetryToken reports whether the budget lets another retry go out,
// consuming one token when it does. A disabled budget always allows.
func (c *Client) spendRetryToken() bool {
	c.budgetMu.Lock()
	defer c.budgetMu.Unlock()
	if c.budgetBurst <= 0 {
		return true
	}
	if c.budgetTokens < 1 {
		return false
	}
	c.budgetTokens--
	return true
}

// earnRetryToken credits the budget for one successful exchange.
func (c *Client) earnRetryToken() {
	c.budgetMu.Lock()
	if c.budgetTokens += c.budgetRatio; c.budgetTokens > c.budgetBurst {
		c.budgetTokens = c.budgetBurst
	}
	c.budgetMu.Unlock()
}

// NewClient points a client at an exactsimd base URL (scheme + host,
// e.g. "http://localhost:8640").
func NewClient(baseURL string, opts ...ClientOption) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, exactsim.Wrapf(exactsim.CodeInvalidArgument, err, "httpapi: bad base URL %q", baseURL)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, exactsim.Errorf(exactsim.CodeInvalidArgument, "httpapi: base URL %q needs a scheme and host", baseURL)
	}
	c := &Client{
		base: strings.TrimRight(u.String(), "/"), hc: sharedClient,
		retries: defaultRetries, retryBase: defaultRetryBase, retryCap: defaultRetryCap,
		budgetRatio: defaultBudgetRatio, budgetBurst: defaultBudgetBurst,
		budgetTokens: defaultBudgetBurst,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Name returns the algorithm this client was configured with ("" = the
// server default answers).
func (c *Client) Name() string { return c.algorithm }

// Graph returns nil: the remote graph is not materialized client-side.
// Callers that need its shape ask the server (Stats reports the epoch;
// score vectors arrive sized to the remote n).
func (c *Client) Graph() *exactsim.Graph { return nil }

// SingleSource answers one single-source query remotely. Per-request
// failures (including a server-side deadline) are returned as the
// structured *exactsim.Error.
func (c *Client) SingleSource(ctx context.Context, source exactsim.NodeID) (*exactsim.QueryResult, error) {
	resp, err := c.Query(ctx, exactsim.Request{
		Algorithm: c.algorithm, Source: source, Epsilon: c.epsilon,
	})
	if err != nil {
		return nil, err
	}
	if resp.Err != nil {
		return nil, resp.Err
	}
	return resp.Result, nil
}

// TopK answers one top-k query remotely, returning the entries and the
// underlying full result.
func (c *Client) TopK(ctx context.Context, source exactsim.NodeID, k int) ([]exactsim.Entry, *exactsim.QueryResult, error) {
	if k <= 0 {
		return nil, nil, exactsim.Errorf(exactsim.CodeInvalidArgument, "httpapi: k %d not positive", k)
	}
	resp, err := c.Query(ctx, exactsim.Request{
		Algorithm: c.algorithm, Source: source, Epsilon: c.epsilon, K: k,
	})
	if err != nil {
		return nil, nil, err
	}
	if resp.Err != nil {
		return nil, nil, resp.Err
	}
	return resp.TopK, resp.Result, nil
}

// Query sends one protocol request verbatim. The returned error covers
// transport and decoding failures only; per-request failures arrive in
// Response.Err, exactly as they do from a local Service.
func (c *Client) Query(ctx context.Context, req exactsim.Request) (exactsim.Response, error) {
	qr := QueryRequest{Body: req, TimeoutMillis: timeoutMillis(ctx)}
	var resp exactsim.Response
	if err := c.post(ctx, "/v1/query", &qr, &resp); err != nil {
		// A protocol error (non-2xx with a {code, message} envelope)
		// belongs in Response.Err, same as a local Service would report
		// it; only transport failures surface as Query's own error.
		var pe *exactsim.Error
		if errors.As(err, &pe) {
			if resp.Err == nil {
				resp.Err = pe
			}
			if resp.Request == (exactsim.Request{}) {
				resp.Request = req
			}
			return resp, nil
		}
		return exactsim.Response{Request: req}, err
	}
	return resp, nil
}

// Batch sends many requests in one round trip; responses align with
// requests by index, each carrying its own Err.
func (c *Client) Batch(ctx context.Context, reqs []exactsim.Request) ([]exactsim.Response, error) {
	br := BatchRequest{Body: Batch{Requests: reqs}, TimeoutMillis: timeoutMillis(ctx)}
	var out BatchResponse
	if err := c.post(ctx, "/v1/batch", &br, &out); err != nil {
		return nil, err
	}
	return out.Responses, nil
}

// Warm asks the server to pre-compute sources (or its top in-degree hubs
// when the request names none), filling the remote result cache and
// diagonal sample index; see exactsim.Service.Warm. The returned error
// covers transport failures; a wholesale protocol rejection arrives in
// WarmResponse.Err.
func (c *Client) Warm(ctx context.Context, wr exactsim.WarmRequest) (exactsim.WarmResponse, error) {
	req := WarmRequest{Body: wr, TimeoutMillis: timeoutMillis(ctx)}
	var resp exactsim.WarmResponse
	if err := c.post(ctx, "/v1/warm", &req, &resp); err != nil {
		var pe *exactsim.Error
		if errors.As(err, &pe) {
			if resp.Err == nil {
				resp.Err = pe
			}
			return resp, nil
		}
		return exactsim.WarmResponse{}, err
	}
	return resp, nil
}

// QueryStream sends one request to POST /v1/query/stream and invokes
// emit for each intermediate refinement record (Partial responses, in
// tightening-epsilon order) as it arrives. The returned Response is the
// terminal record (final: true) — bit-identical to what Query would have
// answered for the same request. Streams never retry: refinements may
// already have reached emit, and replaying them on a re-send would hand
// the caller the same tiers twice.
func (c *Client) QueryStream(ctx context.Context, req exactsim.Request, emit func(exactsim.Response)) (exactsim.Response, error) {
	if emit == nil {
		emit = func(exactsim.Response) {}
	}
	qr := QueryRequest{Body: req, TimeoutMillis: timeoutMillis(ctx)}
	body, err := json.Marshal(&qr)
	if err != nil {
		return exactsim.Response{Request: req},
			exactsim.Wrapf(exactsim.CodeInvalidArgument, err, "httpapi: encoding /v1/query/stream request")
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/query/stream", bytes.NewReader(body))
	if err != nil {
		return exactsim.Response{Request: req}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.attempts.Add(1)
	res, err := c.hc.Do(hreq)
	if err != nil {
		return exactsim.Response{Request: req}, err
	}
	defer res.Body.Close()
	if res.StatusCode < 200 || res.StatusCode >= 300 {
		// Nothing streamed yet: the server rejected with the normal JSON
		// error envelope, which for this endpoint is a Response.
		data, _ := io.ReadAll(io.LimitReader(res.Body, 1<<20))
		var resp exactsim.Response
		if json.Unmarshal(data, &resp) == nil && resp.Err != nil {
			if resp.Request == (exactsim.Request{}) {
				resp.Request = req
			}
			return resp, nil
		}
		return exactsim.Response{Request: req},
			exactsim.Errorf(exactsim.CodeUnavailable, "httpapi: POST /v1/query/stream returned %s", res.Status)
	}
	// json.Decoder, not bufio.Scanner: a record carrying a full score
	// vector can exceed a scanner's token cap, and NDJSON records are
	// self-delimiting JSON anyway.
	dec := json.NewDecoder(res.Body)
	for {
		var rec StreamRecord
		if err := dec.Decode(&rec); err != nil {
			// A stream that ends before its final record is a broken
			// transport, not an answer — the terminal record is the only
			// one the protocol guarantees. Wrapf keeps the cause, so a
			// mid-stream context cancellation still matches errors.Is.
			return exactsim.Response{Request: req},
				exactsim.Wrapf(exactsim.CodeUnavailable, err, "httpapi: /v1/query/stream ended before the final record")
		}
		if rec.Final {
			c.earnRetryToken()
			return rec.Response, nil
		}
		emit(rec.Response)
	}
}

// Snapshot downloads the server's current graph generation as a
// snapshot container — graph plus diagonal sample index — and copies it
// to w, returning the byte count and the graph epoch the server
// reported. Save it to a file and boot a warm clone with
// exactsim.OpenSnapshot (or `exactsimd -snapshot`): that is how a fresh
// fleet member skips both the graph parse and the sampling the peer
// already paid for. The container is self-checksummed; a transfer
// truncated mid-stream fails to open.
func (c *Client) Snapshot(ctx context.Context, w io.Writer) (n int64, epoch uint64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/snapshot", nil)
	if err != nil {
		return 0, 0, err
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return 0, 0, err
	}
	if res.StatusCode < 200 || res.StatusCode >= 300 {
		data, _ := io.ReadAll(io.LimitReader(res.Body, 1<<20))
		drainClose(res.Body)
		var env struct {
			Err *exactsim.Error `json:"error"`
		}
		if json.Unmarshal(data, &env) == nil && env.Err != nil {
			return 0, 0, env.Err
		}
		return 0, 0, exactsim.Errorf(exactsim.CodeUnavailable, "httpapi: POST /v1/snapshot returned %s", res.Status)
	}
	defer res.Body.Close()
	epoch, _ = strconv.ParseUint(res.Header.Get("X-Exactsim-Graph-Epoch"), 10, 64)
	n, err = io.Copy(w, res.Body)
	if err != nil {
		return n, epoch, exactsim.Wrapf(exactsim.CodeUnavailable, err, "httpapi: downloading snapshot")
	}
	return n, epoch, nil
}

// AlgorithmsInfo returns the server's full capability/cost surface
// (GET /v1/algorithms), memoized after the first successful fetch: the
// registry is static and the cost rows drift only slowly, so one round
// trip per client amortizes across every later planning decision. Build
// a fresh Client to re-read.
func (c *Client) AlgorithmsInfo(ctx context.Context) (AlgorithmsResponse, error) {
	c.algoMu.Lock()
	defer c.algoMu.Unlock()
	if c.algoCache != nil {
		return *c.algoCache, nil
	}
	var ar AlgorithmsResponse
	if err := c.get(ctx, "/v1/algorithms", &ar); err != nil {
		return AlgorithmsResponse{}, err
	}
	c.algoCache = &ar
	return ar, nil
}

// Algorithms returns the server's registry names and default algorithm
// (a subset of AlgorithmsInfo, sharing its cache).
func (c *Client) Algorithms(ctx context.Context) (names []string, def string, err error) {
	ar, err := c.AlgorithmsInfo(ctx)
	if err != nil {
		return nil, "", err
	}
	return ar.Algorithms, ar.Default, nil
}

// Stats returns the server's service counters and gauges.
func (c *Client) Stats(ctx context.Context) (exactsim.ServiceStats, error) {
	var st exactsim.ServiceStats
	err := c.get(ctx, "/v1/stats", &st)
	return st, err
}

// Health probes GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	drainClose(res.Body)
	if res.StatusCode != http.StatusOK {
		return exactsim.Errorf(exactsim.CodeUnavailable, "httpapi: health check returned %s", res.Status)
	}
	return nil
}

// Ready probes GET /readyz — readiness, not liveness: a 200 means the
// server wants new traffic; a draining or epoch-less server answers 503
// while /healthz still reports it alive. Routers poll this one.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	res, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	drainClose(res.Body)
	if res.StatusCode != http.StatusOK {
		return exactsim.Errorf(exactsim.CodeUnavailable, "httpapi: readiness check returned %s", res.Status)
	}
	return nil
}

// drainClose consumes what remains of a response body (bounded) before
// closing it. An undrained body forces net/http to tear the connection
// down instead of returning it to the pool — under fleet fan-out that
// turns every error path into a fresh TCP+TLS handshake exactly when
// things are already going badly. The bound keeps a hostile/huge body
// from turning politeness into an unbounded read.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 256<<10))
	body.Close()
}

// timeoutMillis converts a context deadline into the wire timeout (≥1ms
// when a deadline exists, so an almost-expired context still serializes
// as a bound rather than "none").
func timeoutMillis(ctx context.Context) int64 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// post sends one JSON request, retrying transport failures and retryable
// protocol errors with capped decorrelated-jitter backoff. Every retried
// path here is an idempotent read (the whole /v1 surface is); a reset
// always fires before the server accepts the request, so re-sending is
// safe. Each retry must also clear the token-bucket retry budget — under
// fleet-wide saturation nothing succeeds, tokens stop flowing, and the
// whole client population quiets down instead of storming. A retry only
// sleeps when the remaining context deadline budget can absorb the sleep
// *and* another attempt — otherwise the last error returns immediately
// instead of burning the caller's deadline on a wait; a retry_after_ms
// hint on the error floors the sleep (the server told us when the
// backlog should have moved).
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("httpapi: encoding %s request: %w", path, err)
	}
	prev := c.retryBase
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			// A failed decode may have partially filled out; each attempt
			// must start from a zero value or stale fields survive a later
			// success (json.Unmarshal merges, it does not reset).
			reflect.ValueOf(out).Elem().SetZero()
			// Deadline re-propagation: the first attempt and the backoff
			// sleeps have spent part of the caller's budget, so a retried
			// request re-serializes what actually remains — the server must
			// never be granted dwell the client has already burned.
			if dc, ok := in.(interface{ setTimeout(int64) }); ok {
				if ms := timeoutMillis(ctx); ms > 0 {
					dc.setTimeout(ms)
					if body, err = json.Marshal(in); err != nil {
						return fmt.Errorf("httpapi: encoding %s request: %w", path, err)
					}
				}
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		c.attempts.Add(1)
		if attempt > 0 {
			c.retriesSent.Add(1)
		}
		err = c.do(req, out)
		if err == nil {
			c.earnRetryToken()
			return nil
		}
		if attempt >= c.retries || !retryableError(err) || ctx.Err() != nil {
			return err
		}
		if !c.spendRetryToken() {
			c.retriesDeclined.Add(1)
			return err
		}
		sleep, ok := c.backoff(ctx, &prev, exactsim.RetryAfter(err))
		if !ok {
			return err
		}
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return err
		}
	}
}

// backoff draws the next decorrelated-jitter sleep (uniform in
// [base, 3·prev], capped, floored at the server's retry_after hint) and
// reports whether the context's remaining deadline budget can afford
// sleeping and then trying again.
func (c *Client) backoff(ctx context.Context, prev *time.Duration, floor time.Duration) (time.Duration, bool) {
	lo, hi := c.retryBase, 3*(*prev)
	if hi > c.retryCap {
		hi = c.retryCap
	}
	sleep := lo
	if hi > lo {
		sleep = lo + rand.N(hi-lo)
	}
	if sleep < floor {
		// The server's hint outranks the jitter draw — retrying sooner
		// than the backlog can drain is a wasted attempt. It also
		// outranks retryCap: the hint is already bounded server-side.
		sleep = floor
	}
	*prev = sleep
	if dl, ok := ctx.Deadline(); ok {
		// Require room for the sleep plus a non-trivial attempt.
		if time.Until(dl) < sleep+2*c.retryBase {
			return 0, false
		}
	}
	return sleep, true
}

// retryableError reports whether one attempt's failure is worth
// re-sending: any transport-level failure (the request may never have
// arrived, or the response never made it back intact), or a protocol
// error whose code promises the server rejected without doing the work.
func retryableError(err error) bool {
	var pe *exactsim.Error
	if errors.As(err, &pe) {
		switch pe.Code {
		case exactsim.CodeUnavailable, exactsim.CodeClosed, exactsim.CodeInternal:
			return true
		}
		return false
	}
	// Deliberate non-retry on context errors: the caller's budget is gone.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// do executes one exchange and decodes the JSON body into out. A non-2xx
// status with a protocol {code, message} envelope is returned as the
// *exactsim.Error it carries (after also decoding the envelope into out,
// which for /v1/query is the same Response); anything else non-2xx, or a
// 2xx body that is not the protocol's JSON, is a transport error.
func (c *Client) do(req *http.Request, out any) error {
	res, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(res.Body)
	if err != nil {
		return fmt.Errorf("httpapi: reading %s %s response: %w", req.Method, req.URL.Path, err)
	}
	if res.StatusCode < 200 || res.StatusCode >= 300 {
		var env struct {
			Err *exactsim.Error `json:"error"`
		}
		if json.Unmarshal(data, &env) == nil && env.Err != nil {
			json.Unmarshal(data, out)
			return env.Err
		}
		return fmt.Errorf("httpapi: %s %s returned %s", req.Method, req.URL.Path, res.Status)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("httpapi: %s %s returned %s with undecodable body: %v",
			req.Method, req.URL.Path, res.Status, err)
	}
	return nil
}
