package httpapi_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/httpapi"
)

// BenchmarkClientRetryAmplification measures the retry amplification a
// saturated server observes: every request is answered with a coded
// "unavailable" shed (plus a retry_after_ms hint), so every client call
// exhausts its retry policy. The amplification metric is server-seen
// attempts per client call. Unbudgeted, retries=2 amplifies offered load
// 3× — the classic retry storm that keeps a saturated fleet saturated.
// With the token-bucket budget (shipped defaults: ratio 0.1, burst 10)
// nothing succeeds, so no tokens are earned, the burst drains once, and
// amplification settles at 1 + burst/N ≤ 1.1 — the overload-control
// acceptance bound.
func BenchmarkClientRetryAmplification(b *testing.B) {
	for _, budgeted := range []bool{true, false} {
		b.Run(fmt.Sprintf("budget=%t", budgeted), func(b *testing.B) {
			var attempts atomic.Int64
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				attempts.Add(1)
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(map[string]any{
					"error": map[string]any{
						"code":           string(exactsim.CodeUnavailable),
						"message":        "saturated",
						"retry_after_ms": 1,
					},
				})
			}))
			b.Cleanup(ts.Close)

			opts := []httpapi.ClientOption{
				httpapi.WithRetries(2),
				// Tight backoff keeps the bench measuring the budget, not
				// the sleeps; the server's 1ms hint still floors each one.
				httpapi.WithRetryBackoff(100*time.Microsecond, time.Millisecond),
			}
			if !budgeted {
				opts = append(opts, httpapi.WithRetryBudget(-1, 0))
			}
			c, err := httpapi.NewClient(ts.URL, opts...)
			if err != nil {
				b.Fatal(err)
			}

			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := c.Query(ctx, exactsim.Request{Source: exactsim.NodeID(i)})
				if err != nil {
					b.Fatalf("transport error: %v", err)
				}
				if resp.Err == nil || resp.Err.Code != exactsim.CodeUnavailable {
					b.Fatalf("want coded unavailable shed, got %v", resp.Err)
				}
			}
			b.StopTimer()

			amp := float64(attempts.Load()) / float64(b.N)
			b.ReportMetric(amp, "amplification")
			st := c.RetryStats()
			b.ReportMetric(float64(st.Suppressed), "suppressed")
		})
	}
}
