package httpapi_test

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/httpapi"
)

// conformanceCase mirrors internal/algo's registry conformance table: the
// per-algorithm options that make it accurate on a 250-node graph and the
// MaxError it must then achieve against power-method ground truth. Here
// the whole path runs over HTTP loopback — Client (Querier) → Server →
// Service — so it also proves the score vectors survive serialization.
type conformanceCase struct {
	opts []exactsim.QuerierOption
	tol  float64
}

func conformanceCases() map[string]conformanceCase {
	return map[string]conformanceCase{
		"exactsim": {[]exactsim.QuerierOption{exactsim.WithEpsilon(1e-3), exactsim.WithSeed(1)}, 1e-3},
		// Same 5σ rationale as the in-process table: the basic ablation's
		// capped sampling leaves ~2e-3 irreducible noise on D(source).
		"exactsim-basic": {[]exactsim.QuerierOption{exactsim.WithEpsilon(1e-3), exactsim.WithSeed(2)}, 1e-2},
		"powermethod":    {nil, 1e-8},
		"parsim":         {[]exactsim.QuerierOption{exactsim.WithIterations(100)}, 0.1},
		"mc":             {[]exactsim.QuerierOption{exactsim.WithWalks(20, 3000), exactsim.WithSeed(3)}, 0.1},
		"linearization":  {[]exactsim.QuerierOption{exactsim.WithEpsilon(0.02), exactsim.WithSeed(4)}, 0.1},
		"prsim":          {[]exactsim.QuerierOption{exactsim.WithEpsilon(0.02), exactsim.WithSeed(5)}, 0.1},
		"probesim":       {[]exactsim.QuerierOption{exactsim.WithEpsilon(0.05), exactsim.WithSeed(6)}, 0.1},
	}
}

// TestClientConformance is the registry conformance suite run through the
// HTTP transport: for every registered algorithm, an httpapi.Client used
// as an exactsim.Querier must answer with the same shape and accuracy a
// local querier does. The case table is keyed off Algorithms(), so a new
// algorithm without loopback coverage fails loudly.
func TestClientConformance(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(250, 3, 42)
	truth := exactsim.PowerMethod(g, 0.6, 40)
	const source = 17
	cases := conformanceCases()

	for _, name := range exactsim.Algorithms() {
		cse, ok := cases[name]
		if !ok {
			t.Fatalf("registered algorithm %q has no loopback conformance case", name)
		}
		t.Run(name, func(t *testing.T) {
			svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
				Workers:          2,
				DefaultAlgorithm: name,
				QuerierOptions:   cse.opts,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer svc.Close()
			ts := httptest.NewServer(httpapi.NewServer(svc, httpapi.ServerOptions{}))
			defer ts.Close()

			c, err := httpapi.NewClient(ts.URL, httpapi.WithAlgorithm(name))
			if err != nil {
				t.Fatal(err)
			}
			// The client IS a Querier — the interface assertion is the
			// point of this test.
			var q exactsim.Querier = c
			if q.Name() != name {
				t.Fatalf("Name() = %q, want %q", q.Name(), name)
			}
			if q.Graph() != nil {
				t.Fatal("remote querier materialized a local graph")
			}

			res, err := q.SingleSource(context.Background(), source)
			if err != nil {
				t.Fatal(err)
			}
			if res.Algorithm != name {
				t.Fatalf("Result.Algorithm = %q, want %q", res.Algorithm, name)
			}
			if len(res.Scores) != g.N() {
				t.Fatalf("got %d scores for n=%d", len(res.Scores), g.N())
			}
			if math.Abs(res.Scores[source]-1) > cse.tol {
				t.Fatalf("self-similarity %g not within %g of 1", res.Scores[source], cse.tol)
			}
			var maxErr float64
			for j, s := range res.Scores {
				if e := math.Abs(s - truth.At(source, j)); e > maxErr {
					maxErr = e
				}
			}
			if maxErr > cse.tol {
				t.Fatalf("MaxError %g above tolerance %g over the wire", maxErr, cse.tol)
			}

			top, topRes, err := q.TopK(context.Background(), source, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(top) != 10 {
				t.Fatalf("TopK returned %d entries", len(top))
			}
			if topRes == nil || len(topRes.Scores) != g.N() {
				t.Fatal("TopK did not return the underlying Result")
			}
			for i, e := range top {
				if e.Idx == source {
					t.Fatal("TopK includes the source")
				}
				if i > 0 && e.Val > top[i-1].Val {
					t.Fatal("TopK not sorted descending")
				}
			}

			// Out-of-range sources error uniformly — here the rejection
			// crosses the wire as CodeInvalidArgument.
			if _, err := q.SingleSource(context.Background(), -1); err == nil {
				t.Fatal("negative source accepted")
			}
			if _, err := q.SingleSource(context.Background(), int32(g.N())); err == nil {
				t.Fatal("source == n accepted")
			}
		})
	}
}
