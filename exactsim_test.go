package exactsim_test

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	exactsim "github.com/exactsim/exactsim"
)

// TestPublicAPIEndToEnd exercises the facade the way README's quick start
// does: generate, query, evaluate.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(300, 3, 7)
	truth := exactsim.PowerMethod(g, exactsim.DefaultC, 40)

	eng, err := exactsim.New(g, exactsim.Options{Epsilon: 1e-3, Optimized: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.SingleSource(5)
	if err != nil {
		t.Fatal(err)
	}
	if e := exactsim.MaxError(res.Scores, truth.Row(5)); e > 1e-3 {
		t.Fatalf("MaxError %g above configured epsilon", e)
	}
	if p := exactsim.PrecisionAtK(res.Scores, truth.Row(5), 20, 5); p < 0.95 {
		t.Fatalf("Precision@20 = %g", p)
	}
	top, _, err := eng.TopK(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("TopK returned %d entries", len(top))
	}
}

func TestDatasetAccess(t *testing.T) {
	if len(exactsim.Datasets()) != 8 {
		t.Fatal("dataset registry incomplete")
	}
	g, err := exactsim.GenerateDataset("GQ", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() == 0 || g.M() == 0 {
		t.Fatal("empty stand-in")
	}
	if _, err := exactsim.GenerateDataset("XX", 1); err == nil {
		t.Fatal("bad key accepted")
	}
}

func TestGraphIO(t *testing.T) {
	g, err := exactsim.ReadEdgeList(strings.NewReader("0 1\n1 2\n2 0\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "g.bin")
	if err := exactsim.SaveBinary(bin, g); err != nil {
		t.Fatal(err)
	}
	g2, err := exactsim.LoadBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("binary round trip mismatch")
	}
	stats := exactsim.Stats(g2)
	if stats.N != 3 || stats.M != 3 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestLoadEdgeListFromDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.txt")
	if err := os.WriteFile(path, []byte("# test\n0 1\n1 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := exactsim.LoadEdgeList(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m=%d", g.M())
	}
}

func TestBaselinesThroughFacade(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(120, 3, 3)
	truth := exactsim.PowerMethod(g, exactsim.DefaultC, 40)
	src := exactsim.NodeID(4)

	mcIdx := exactsim.BuildMCIndex(g, exactsim.MCParams{C: 0.6, L: 20, R: 400, Seed: 1})
	ps := exactsim.NewParSim(g, exactsim.ParSimParams{C: 0.6, L: 30})
	lin := exactsim.BuildLinearization(g, exactsim.LinearizationParams{C: 0.6, Eps: 0.05, Seed: 2})
	pr := exactsim.BuildPRSim(g, exactsim.PRSimParams{C: 0.6, Eps: 0.05, Seed: 3})

	for name, scores := range map[string][]float64{
		"mc":     mcIdx.SingleSource(src),
		"parsim": ps.SingleSource(src),
		"linear": lin.SingleSource(src),
		"prsim":  pr.SingleSource(src),
	} {
		if len(scores) != g.N() {
			t.Fatalf("%s returned %d scores", name, len(scores))
		}
		e := exactsim.MaxError(scores, truth.Row(int(src)))
		if math.IsNaN(e) || e > 0.5 {
			t.Fatalf("%s wildly wrong: MaxError %g", name, e)
		}
	}
}

func TestPoolThroughFacade(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(80, 3, 9)
	eng, _ := exactsim.New(g, exactsim.Options{Epsilon: 1e-3, Seed: 4, Optimized: true})
	top, _, err := eng.TopK(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := exactsim.Pool(g, exactsim.DefaultC, 2, 5,
		[]exactsim.PoolEntry{{Algorithm: "exactsim", TopK: top}}, 2000, 5)
	if res.Precision["exactsim"] < 0.6 {
		t.Fatalf("pooled precision %g for the exact method", res.Precision["exactsim"])
	}
}

func TestTopKOfMatchesEngineTopK(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(60, 3, 11)
	eng, _ := exactsim.New(g, exactsim.Options{Epsilon: 1e-3, Seed: 6, Optimized: true})
	res, err := eng.SingleSource(1)
	if err != nil {
		t.Fatal(err)
	}
	a := exactsim.TopKOf(res.Scores, 7, 1)
	b, _, _ := eng.TopK(1, 7)
	for i := range a {
		if a[i].Idx != b[i].Idx {
			t.Fatalf("TopKOf and Engine.TopK disagree at %d", i)
		}
	}
}
