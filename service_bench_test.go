package exactsim_test

import (
	"context"
	"testing"

	exactsim "github.com/exactsim/exactsim"
)

// BenchmarkServiceThroughput measures queries/sec through the Service
// front-end under concurrent load on a warmed cache — the serving
// overhead (dispatch, single-flight, LRU, epoch bookkeeping) rather than
// algorithm time, which is what a load balancer provisioning instances
// needs. Paired with BenchmarkHTTPLoopbackQuery in httpapi, the delta is
// the wire cost.
func BenchmarkServiceThroughput(b *testing.B) {
	g := exactsim.GenerateBarabasiAlbert(2000, 4, 1)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		CacheSize:      256,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.05), exactsim.WithSeed(1)},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	// Warm the 64 sources the benchmark rotates over, so the steady state
	// is cache-hit serving.
	for s := 0; s < 64; s++ {
		if resp := svc.Query(ctx, exactsim.Request{Source: exactsim.NodeID(s)}); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			resp := svc.Query(ctx, exactsim.Request{Source: exactsim.NodeID(i & 63), K: 10})
			if resp.Err != nil {
				b.Fatal(resp.Err)
			}
			i++
		}
	})
}

// BenchmarkServiceThroughputCold measures the uncached path: every query
// recomputes (NoCache), bounded by the worker pool. This is the
// compute-bound ceiling the cache-hit number should be contrasted with.
func BenchmarkServiceThroughputCold(b *testing.B) {
	g := exactsim.GenerateBarabasiAlbert(2000, 4, 1)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	// Build the querier outside the timer.
	if resp := svc.Query(ctx, exactsim.Request{Source: 0}); resp.Err != nil {
		b.Fatal(resp.Err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			resp := svc.Query(ctx, exactsim.Request{
				Source: exactsim.NodeID(i % g.N()), NoCache: true,
			})
			if resp.Err != nil {
				b.Fatal(resp.Err)
			}
			i++
		}
	})
}
