package exactsim_test

import (
	"context"
	"sync/atomic"
	"testing"

	exactsim "github.com/exactsim/exactsim"
)

// BenchmarkServiceThroughput measures queries/sec through the Service
// front-end under concurrent load on a warmed cache — the serving
// overhead (dispatch, single-flight, LRU, epoch bookkeeping) rather than
// algorithm time, which is what a load balancer provisioning instances
// needs. Paired with BenchmarkHTTPLoopbackQuery in httpapi, the delta is
// the wire cost.
func BenchmarkServiceThroughput(b *testing.B) {
	g := exactsim.GenerateBarabasiAlbert(2000, 4, 1)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		CacheSize:      256,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.05), exactsim.WithSeed(1)},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	// Warm the 64 sources the benchmark rotates over, so the steady state
	// is cache-hit serving.
	for s := 0; s < 64; s++ {
		if resp := svc.Query(ctx, exactsim.Request{Source: exactsim.NodeID(s)}); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			resp := svc.Query(ctx, exactsim.Request{Source: exactsim.NodeID(i & 63), K: 10})
			if resp.Err != nil {
				b.Fatal(resp.Err)
			}
			i++
		}
	})
}

// BenchmarkServiceDistinctSources measures the workload the diagonal
// sample index exists for: every query names a different source, so the
// result LRU never helps (it is disabled outright here) and each answer
// recomputes its forward and backward phases — but D(k,k) depends only on
// the graph, so the Diagonal phase, the dominant cost, is shareable.
//
//   - cold: the index disabled (DiagIndexBytes < 0) — the pre-index
//     serving behavior, every query pays full sampling.
//   - warm: the per-epoch index enabled and pre-populated by one rotation
//     over the source set outside the timer — the steady state of a
//     long-running instance (or one warmed via Warm / POST /v1/warm).
//
// The warm/cold ns-per-op ratio is the serving speedup the index buys;
// BENCH_PR4.json records both.
func BenchmarkServiceDistinctSources(b *testing.B) {
	g := exactsim.GenerateBarabasiAlbert(2000, 4, 1)
	const sources = 256
	run := func(b *testing.B, diagBytes int64, warm bool) {
		svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
			CacheSize:      -1, // distinct sources: the result LRU is out of the picture
			DiagIndexBytes: diagBytes,
			QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.02), exactsim.WithSeed(1)},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		ctx := context.Background()
		// Build the querier (and, for warm, one full source rotation)
		// outside the timer.
		if resp := svc.Query(ctx, exactsim.Request{Source: 0}); resp.Err != nil {
			b.Fatal(resp.Err)
		}
		if warm {
			for s := 0; s < sources; s++ {
				if resp := svc.Query(ctx, exactsim.Request{Source: exactsim.NodeID(s)}); resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
		}
		b.ResetTimer()
		var next atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := next.Add(1)
				resp := svc.Query(ctx, exactsim.Request{Source: exactsim.NodeID(i % sources)})
				if resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
		})
	}
	b.Run("cold", func(b *testing.B) { run(b, -1, false) })
	b.Run("warm", func(b *testing.B) { run(b, 0, true) })
}

// BenchmarkServiceThroughputCold measures the uncached path: every query
// recomputes (NoCache), bounded by the worker pool. This is the
// compute-bound ceiling the cache-hit number should be contrasted with.
func BenchmarkServiceThroughputCold(b *testing.B) {
	g := exactsim.GenerateBarabasiAlbert(2000, 4, 1)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	// Build the querier outside the timer.
	if resp := svc.Query(ctx, exactsim.Request{Source: 0}); resp.Err != nil {
		b.Fatal(resp.Err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			resp := svc.Query(ctx, exactsim.Request{
				Source: exactsim.NodeID(i % g.N()), NoCache: true,
			})
			if resp.Err != nil {
				b.Fatal(resp.Err)
			}
			i++
		}
	})
}
