package exactsim

import (
	"time"

	"github.com/exactsim/exactsim/internal/algo"
	"github.com/exactsim/exactsim/internal/plan"
)

// AlgorithmAuto routes a request through the adaptive query planner
// (internal/plan): the service picks the cheapest registered method whose
// guarantees cover the request's (epsilon, k) — and, for requests that
// opted into partial or degraded answers, its deadline budget — then
// echoes the choice in Response.Plan. It is the service default.
//
// Determinism carve-out (DESIGN §13): a request that sets neither
// AllowPartial nor AllowDegraded is planned by a pure function of
// (epsilon, k) and epoch-static graph statistics, so "auto" answers
// bit-identically to the concrete method it reports, on every same-epoch
// replica.
const AlgorithmAuto = "auto"

// PlanInfo is the audit block an "auto"-routed Response carries: what the
// planner chose and why. Cache lines are keyed under the *planned*
// algorithm and epsilon, so two requests planned alike share an answer.
type PlanInfo struct {
	// Algorithm is the concrete registry method the planner selected.
	Algorithm string `json:"algorithm"`
	// EffectiveEpsilon is the error target the plan runs at, with the 0
	// "service default" sentinel resolved to its actual value.
	EffectiveEpsilon float64 `json:"effective_epsilon"`
	// Reason is the planner's enumerated explanation (tight-epsilon,
	// large-power-law, large-flat, small-graph-default,
	// deadline-downgrade, deadline-loosen).
	Reason string `json:"reason"`
}

// MethodCaps describes one registered algorithm's capabilities — the
// static half of the /v1/algorithms capability surface.
type MethodCaps = algo.Caps

// Exactness classifies what a method's answers promise (exact,
// error_bounded, heuristic).
type Exactness = algo.Exactness

// Exactness classes, re-exported from the registry.
const (
	ExactnessExact        = algo.ExactnessExact
	ExactnessErrorBounded = algo.ExactnessErrorBounded
	ExactnessHeuristic    = algo.ExactnessHeuristic
)

// DescribeAlgorithm returns the capability row for a registered name.
func DescribeAlgorithm(name string) (MethodCaps, bool) { return algo.Describe(name) }

// AlgorithmCaps returns every registered method's capability row in
// registry order.
func AlgorithmCaps() []MethodCaps { return algo.AllCaps() }

// PlanEstimate is one method's calibrated cost row: the planner's work
// units at the service's base epsilon and their latency estimate on this
// machine (microprobe-calibrated, refined by observed query latencies).
type PlanEstimate = plan.CostEstimate

// PlanEstimates returns the current graph generation's calibrated
// per-method cost rows — the dynamic half of the capability surface.
func (s *Service) PlanEstimates() []PlanEstimate {
	return s.state.Load().planner.Estimates()
}

// resolvePlan routes an AlgorithmAuto request through st's planner and
// rewrites it to the concrete plan. Strict requests (neither AllowPartial
// nor AllowDegraded) use the pure decision path; flexible ones also weigh
// the remaining deadline, expected queue dwell and diag-index residency.
// The request's 0-epsilon sentinel survives when the plan keeps it, so
// planned answers share cache lines with explicit requests.
func (s *Service) resolvePlan(ctx deadliner, st *graphState, req Request) (Request, *PlanInfo) {
	in := plan.Input{
		Epsilon:  req.Epsilon,
		K:        req.K,
		Flexible: req.AllowPartial || req.AllowDegraded,
	}
	if in.Flexible {
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); rem > 0 {
				in.Deadline = rem
			}
		}
		in.QueueDwell = s.queue.expectedDwell()
		in.PriorityRank, _ = req.Priority.rank()
		if st.diagIdx != nil {
			in.DiagResidentBytes = st.diagIdx.Stats().ResidentBytes
		}
	}
	d := st.planner.Plan(in)
	req.Algorithm = d.Algorithm
	req.Epsilon = d.Epsilon
	return req, &PlanInfo{
		Algorithm:        d.Algorithm,
		EffectiveEpsilon: st.planner.Effective(d.Epsilon),
		Reason:           d.Reason,
	}
}

// deadliner is the slice of context.Context resolvePlan needs; the
// narrow interface keeps the planner testable without contexts.
type deadliner interface{ Deadline() (time.Time, bool) }
