package cluster

import (
	"testing"
	"time"
)

func TestLatencyTrackerGatesUntilWarm(t *testing.T) {
	tr := newLatencyTracker()
	for i := 0; i < trackerMinSamples-1; i++ {
		tr.record(time.Millisecond)
		if _, ok := tr.quantile(0.95); ok {
			t.Fatalf("quantile available after only %d samples", i+1)
		}
	}
	tr.record(time.Millisecond)
	if _, ok := tr.quantile(0.95); !ok {
		t.Fatalf("quantile unavailable after %d samples", trackerMinSamples)
	}
}

func TestLatencyTrackerQuantiles(t *testing.T) {
	tr := newLatencyTracker()
	// 90 fast, 10 slow: p50 must look fast, p99 slow.
	for i := 0; i < 90; i++ {
		tr.record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		tr.record(100 * time.Millisecond)
	}
	p50, ok := tr.quantile(0.50)
	if !ok || p50 != time.Millisecond {
		t.Fatalf("p50 = %v ok=%v", p50, ok)
	}
	p99, ok := tr.quantile(0.99)
	if !ok || p99 != 100*time.Millisecond {
		t.Fatalf("p99 = %v ok=%v", p99, ok)
	}
}

func TestLatencyTrackerWindowSlides(t *testing.T) {
	tr := newLatencyTracker()
	// Fill the window with slow samples, then overwrite it entirely with
	// fast ones: the old regime must age out.
	for i := 0; i < trackerWindow; i++ {
		tr.record(time.Second)
	}
	for i := 0; i < trackerWindow+trackerRecompute; i++ {
		tr.record(time.Millisecond)
	}
	p99, ok := tr.quantile(0.99)
	if !ok || p99 != time.Millisecond {
		t.Fatalf("p99 after regime change = %v ok=%v", p99, ok)
	}
	if got := tr.samples(); got != trackerWindow {
		t.Fatalf("window holds %d samples, want %d", got, trackerWindow)
	}
}

func TestHedgeBudgetSpendAndEarn(t *testing.T) {
	h := newHedgeBudget(0.5, 2)
	// The bucket starts full: burst hedges launch, then it runs dry.
	if !h.spend() || !h.spend() {
		t.Fatal("a full bucket must fund its burst")
	}
	if h.spend() {
		t.Fatal("an empty bucket must refuse a hedge")
	}
	// Two un-hedged successes at ratio 0.5 earn one token back.
	h.earn()
	if h.spend() {
		t.Fatal("half a token must not fund a hedge")
	}
	h.earn()
	if !h.spend() {
		t.Fatal("a whole earned token must fund exactly one hedge")
	}
	if h.spend() {
		t.Fatal("the earned token was already spent")
	}
}

func TestHedgeBudgetEarnCapsAtBurst(t *testing.T) {
	h := newHedgeBudget(1, 3)
	for i := 0; i < 100; i++ {
		h.earn()
	}
	for i := 0; i < 3; i++ {
		if !h.spend() {
			t.Fatalf("spend %d refused after heavy earning; cap lost tokens it should have kept", i)
		}
	}
	if h.spend() {
		t.Fatal("earning past the cap must not mint tokens beyond burst")
	}
}

func TestHedgeBudgetDisabled(t *testing.T) {
	h := newHedgeBudget(0.1, 0)
	for i := 0; i < 64; i++ {
		if !h.spend() {
			t.Fatal("burst <= 0 disables the budget; spend must always allow")
		}
	}
}

func TestHedgeBudgetDefaultFundsConfiguredRate(t *testing.T) {
	// The Options default ties the earn rate to the hedge quantile: at
	// quantile q, ~((1-q)) of queries hedge, and each of the other ~q
	// earns 2×(1-q) — income ≈ 2× spend, so the configured hedge rate
	// self-funds at steady state instead of silently starving.
	var o Options
	o.HedgeQuantile = 0.95
	o.normalize()
	if got, want := o.HedgeBudgetRatio, 2*(1-0.95); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("defaulted HedgeBudgetRatio = %v, want %v", got, want)
	}
	if o.HedgeBudgetBurst != 16 {
		t.Fatalf("defaulted HedgeBudgetBurst = %d, want 16", o.HedgeBudgetBurst)
	}
}
