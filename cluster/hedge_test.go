package cluster

import (
	"testing"
	"time"
)

func TestLatencyTrackerGatesUntilWarm(t *testing.T) {
	tr := newLatencyTracker()
	for i := 0; i < trackerMinSamples-1; i++ {
		tr.record(time.Millisecond)
		if _, ok := tr.quantile(0.95); ok {
			t.Fatalf("quantile available after only %d samples", i+1)
		}
	}
	tr.record(time.Millisecond)
	if _, ok := tr.quantile(0.95); !ok {
		t.Fatalf("quantile unavailable after %d samples", trackerMinSamples)
	}
}

func TestLatencyTrackerQuantiles(t *testing.T) {
	tr := newLatencyTracker()
	// 90 fast, 10 slow: p50 must look fast, p99 slow.
	for i := 0; i < 90; i++ {
		tr.record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		tr.record(100 * time.Millisecond)
	}
	p50, ok := tr.quantile(0.50)
	if !ok || p50 != time.Millisecond {
		t.Fatalf("p50 = %v ok=%v", p50, ok)
	}
	p99, ok := tr.quantile(0.99)
	if !ok || p99 != 100*time.Millisecond {
		t.Fatalf("p99 = %v ok=%v", p99, ok)
	}
}

func TestLatencyTrackerWindowSlides(t *testing.T) {
	tr := newLatencyTracker()
	// Fill the window with slow samples, then overwrite it entirely with
	// fast ones: the old regime must age out.
	for i := 0; i < trackerWindow; i++ {
		tr.record(time.Second)
	}
	for i := 0; i < trackerWindow+trackerRecompute; i++ {
		tr.record(time.Millisecond)
	}
	p99, ok := tr.quantile(0.99)
	if !ok || p99 != time.Millisecond {
		t.Fatalf("p99 after regime change = %v ok=%v", p99, ok)
	}
	if got := tr.samples(); got != trackerWindow {
		t.Fatalf("window holds %d samples, want %d", got, trackerWindow)
	}
}
