package cluster_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/cluster"
	"github.com/exactsim/exactsim/httpapi"
)

// Router slots in anywhere a single replica's client did.
var _ exactsim.Querier = (*cluster.Router)(nil)

// gate simulates a replica process dying and coming back on the same
// address: while down, every request — queries and membership probes
// alike — is refused with a bare 503, which the router sees as a
// transport-level failure.
type gate struct {
	down       atomic.Bool
	delay      atomic.Int64 // per-query straggler injection, nanoseconds
	delayEvery atomic.Int64 // stall only every Nth query (≤1 = every query)
	queryN     atomic.Int64
	serial     atomic.Bool // serialize queries: delay models per-replica capacity
	serialMu   sync.Mutex
	// garbleMode corrupts /v1/query responses at the wire level while the
	// replica itself stays healthy: 1 answers 200 with bytes that are not
	// JSON at all, 2 answers 200 with a truncated JSON prefix (a short
	// body). Both must surface client-side as retryable transport errors,
	// never as a parse panic or an accepted answer.
	garbleMode atomic.Int32
	// abortEvery cuts the connection (http.ErrAbortHandler) on every Nth
	// /v1/query — a deterministic server-side connection-reset rate for
	// the resilience benchmarks. ≤0 disables. The abort fires BEFORE the
	// request reaches the service, so a retried query is never
	// double-computed.
	abortEvery atomic.Int64
	abortN     atomic.Int64
	next       http.Handler
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.down.Load() {
		http.Error(w, "down", http.StatusServiceUnavailable)
		return
	}
	if every := g.abortEvery.Load(); every > 0 && r.URL.Path == "/v1/query" && g.abortN.Add(1)%every == 0 {
		panic(http.ErrAbortHandler)
	}
	if mode := g.garbleMode.Load(); mode != 0 && r.URL.Path == "/v1/query" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		switch mode {
		case 1:
			w.Write([]byte("these bytes are not json\x00\x01"))
		default:
			w.Write([]byte(`{"result":{"scores":[0.25,`)) // cut mid-array
		}
		return
	}
	if r.URL.Path == "/v1/query" {
		if g.serial.Load() {
			// One query at a time: the injected delay becomes this
			// replica's service time, so fleet throughput is capacity ×
			// replica count regardless of host core count.
			g.serialMu.Lock()
			defer g.serialMu.Unlock()
		}
		if d := g.delay.Load(); d > 0 {
			if every := g.delayEvery.Load(); every <= 1 || g.queryN.Add(1)%every == 0 {
				time.Sleep(time.Duration(d))
			}
		}
	}
	g.next.ServeHTTP(w, r)
}

// statsSpoof rewrites the /v1/stats queue-depth gauge so shedding can be
// tested without actually saturating a worker pool.
type statsSpoof struct {
	queueDepth atomic.Int64 // negative = passthrough
	svc        *exactsim.Service
	next       http.Handler
}

func (s *statsSpoof) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if qd := s.queueDepth.Load(); qd >= 0 && r.Method == http.MethodGet && r.URL.Path == "/v1/stats" {
		st := s.svc.Stats()
		st.QueueDepth = int(qd)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st)
		return
	}
	s.next.ServeHTTP(w, r)
}

// member is one loopback fleet replica.
type member struct {
	svc   *exactsim.Service
	api   *httpapi.Server
	gate  *gate
	spoof *statsSpoof
	ts    *httptest.Server
}

func (m *member) url() string { return m.ts.URL }

// startMember boots one replica over g. All members of a test fleet
// share the graph and the querier options, which is what makes their
// answers bit-identical — the property routing, retries and hedging
// rely on.
func startMember(t testing.TB, g *exactsim.Graph, svcOpts exactsim.ServiceOptions) *member {
	t.Helper()
	svc, err := exactsim.NewService(g, svcOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return serveMember(t, svc)
}

func serveMember(t testing.TB, svc *exactsim.Service) *member {
	t.Helper()
	api := httpapi.NewServer(svc, httpapi.ServerOptions{})
	spoof := &statsSpoof{svc: svc, next: api}
	spoof.queueDepth.Store(-1)
	gt := &gate{next: spoof}
	ts := httptest.NewServer(gt)
	t.Cleanup(ts.Close)
	return &member{svc: svc, api: api, gate: gt, spoof: spoof, ts: ts}
}

func startFleet(t testing.TB, g *exactsim.Graph, n int, svcOpts exactsim.ServiceOptions) ([]*member, []string) {
	t.Helper()
	members := make([]*member, n)
	urls := make([]string, n)
	for i := range members {
		members[i] = startMember(t, g, svcOpts)
		urls[i] = members[i].url()
	}
	return members, urls
}

// manualPollOptions disables the background poller so tests drive
// membership transitions deterministically via Router.Poll.
func manualPollOptions() cluster.Options {
	return cluster.Options{
		PollInterval:  -1,
		PollTimeout:   2 * time.Second,
		FailThreshold: 2,
		EpochLagPolls: 2,
	}
}

// TestRouterConformanceBitIdentical is acceptance criterion (a): for
// every registry algorithm, an answer routed through a 3-replica fleet
// is bit-identical to a single-backend reference — same scores, same
// top-k, same epoch. Shared seeds make the replicas interchangeable;
// this test proves the router adds routing, not noise.
func TestRouterConformanceBitIdentical(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(250, 3, 42)
	svcOpts := exactsim.ServiceOptions{
		Workers: 2,
		QuerierOptions: []exactsim.QuerierOption{
			exactsim.WithEpsilon(0.05), exactsim.WithSeed(1),
			exactsim.WithWalks(10, 500), exactsim.WithIterations(25),
		},
	}
	_, urls := startFleet(t, g, 3, svcOpts)

	ref, err := exactsim.NewService(g, svcOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	r, err := cluster.New(urls, manualPollOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.HealthyBackends != 3 {
		t.Fatalf("fleet: %d healthy backends, want 3", st.HealthyBackends)
	}

	ctx := context.Background()
	sources := []exactsim.NodeID{3, 17, 99, 200}
	for _, algorithm := range exactsim.Algorithms() {
		for _, src := range sources {
			req := exactsim.Request{Algorithm: algorithm, Source: src, K: 10}
			got := r.Query(ctx, req)
			want := ref.Query(ctx, req)
			if got.Err != nil || want.Err != nil {
				t.Fatalf("%s/%d: errs %v / %v", algorithm, src, got.Err, want.Err)
			}
			if got.GraphEpoch != want.GraphEpoch {
				t.Fatalf("%s/%d: epoch %d vs %d", algorithm, src, got.GraphEpoch, want.GraphEpoch)
			}
			if len(got.Result.Scores) != len(want.Result.Scores) {
				t.Fatalf("%s/%d: score lengths differ", algorithm, src)
			}
			for j := range got.Result.Scores {
				if got.Result.Scores[j] != want.Result.Scores[j] {
					t.Fatalf("%s/%d: score[%d] = %x, reference %x — fleet answer not bit-identical",
						algorithm, src, j, got.Result.Scores[j], want.Result.Scores[j])
				}
			}
			if len(got.TopK) != len(want.TopK) {
				t.Fatalf("%s/%d: topk lengths differ", algorithm, src)
			}
			for i := range got.TopK {
				if got.TopK[i] != want.TopK[i] {
					t.Fatalf("%s/%d: topk[%d] = %+v vs %+v", algorithm, src, i, got.TopK[i], want.TopK[i])
				}
			}
		}
	}

	// Batch through the fleet: responses align by index and match the
	// reference bit-for-bit too.
	reqs := make([]exactsim.Request, 32)
	for i := range reqs {
		reqs[i] = exactsim.Request{Source: exactsim.NodeID(i * 7 % 250), K: 5}
	}
	gotBatch := r.Batch(ctx, reqs)
	wantBatch := ref.Batch(ctx, reqs)
	for i := range reqs {
		if gotBatch[i].Err != nil || wantBatch[i].Err != nil {
			t.Fatalf("batch[%d]: errs %v / %v", i, gotBatch[i].Err, wantBatch[i].Err)
		}
		for j := range gotBatch[i].Result.Scores {
			if gotBatch[i].Result.Scores[j] != wantBatch[i].Result.Scores[j] {
				t.Fatalf("batch[%d]: score[%d] differs from reference", i, j)
			}
		}
	}
}

// TestRouterBackendDeathAbsorbed is acceptance criterion (b): killing
// one of three backends mid-load loses no accepted query (the retry /
// hedge path absorbs the failures), membership ejects the dead replica
// after FailThreshold polls, and re-admits it when it comes back.
func TestRouterBackendDeathAbsorbed(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(300, 3, 7)
	svcOpts := exactsim.ServiceOptions{
		Workers:        4,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	}
	members, urls := startFleet(t, g, 3, svcOpts)

	opts := manualPollOptions()
	opts.HedgeMinDelay = 2 * time.Millisecond
	r, err := cluster.New(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.HealthyBackends != 3 {
		t.Fatalf("precondition: %d healthy backends", st.HealthyBackends)
	}

	ctx := context.Background()
	const (
		loaders    = 8
		perLoader  = 40
		killAfter  = 60 // completed queries before the kill
		totalLoad  = loaders * perLoader
		victimIdx  = 1
		sourceSpan = 300
	)
	var completed atomic.Int64
	var killOnce sync.Once
	errs := make(chan string, totalLoad)
	var wg sync.WaitGroup
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(l)))
			for i := 0; i < perLoader; i++ {
				src := exactsim.NodeID(rng.Intn(sourceSpan))
				resp := r.Query(ctx, exactsim.Request{Source: src})
				if resp.Err != nil {
					errs <- resp.Err.Error()
				} else if len(resp.Result.Scores) != sourceSpan {
					errs <- "short score vector"
				}
				if completed.Add(1) == killAfter {
					killOnce.Do(func() { members[victimIdx].gate.down.Store(true) })
				}
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatalf("query lost during backend death: %s", msg)
	}

	// Membership: two failed polls eject the victim.
	r.Poll(ctx)
	r.Poll(ctx)
	st := r.Stats()
	if st.HealthyBackends != 2 {
		t.Fatalf("after death: %d healthy backends, want 2", st.HealthyBackends)
	}
	ejected := false
	for _, b := range st.Backends {
		if b.URL == urls[victimIdx] {
			if b.Healthy {
				t.Fatal("victim still marked healthy")
			}
			if b.Ejections < 1 {
				t.Fatal("victim ejection not counted")
			}
			if b.LastPollError == "" {
				t.Fatal("victim poll error not recorded")
			}
			ejected = true
		}
	}
	if !ejected {
		t.Fatal("victim not found in fleet stats")
	}

	// The fleet keeps answering without it.
	for src := 0; src < 30; src++ {
		if resp := r.Query(ctx, exactsim.Request{Source: exactsim.NodeID(src)}); resp.Err != nil {
			t.Fatalf("query failed with victim ejected: %v", resp.Err)
		}
	}
	if members[victimIdx].svc.Stats().Queries == 0 {
		t.Fatal("victim never served — kill happened before any routing to it")
	}

	// Recovery: one clean poll re-admits.
	members[victimIdx].gate.down.Store(false)
	r.Poll(ctx)
	st = r.Stats()
	if st.HealthyBackends != 3 {
		t.Fatalf("after recovery: %d healthy backends, want 3", st.HealthyBackends)
	}
	if st.Retries == 0 {
		t.Fatal("no retries recorded — the kill was never absorbed by rerouting")
	}
}

// TestRouterCloneJoinerWarmStart is acceptance criterion (c): a joining
// replica bootstrapped by CloneFromPeer — through the *router's*
// /v1/snapshot proxy, so the joiner needs no peer address — answers its
// first queries with nonzero diagonal-index hits, and bit-identically
// to the replica it cloned.
func TestRouterCloneJoinerWarmStart(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(400, 3, 5)
	svcOpts := exactsim.ServiceOptions{
		Workers:        2,
		CacheSize:      -1, // force every query to compute → diag index exercised
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.02), exactsim.WithSeed(1)},
	}
	peer := startMember(t, g, svcOpts)

	r, err := cluster.New([]string{peer.url()}, manualPollOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs := httptest.NewServer(cluster.NewServer(r, cluster.ServerOptions{}))
	defer rs.Close()

	ctx := context.Background()
	// Warm the peer through the fleet path so its diag index holds the
	// hub chunks every later query shares.
	if wr := r.Warm(ctx, exactsim.WarmRequest{TopDegree: 16}); wr.Err != nil || wr.Warmed == 0 {
		t.Fatalf("warm: %+v", wr)
	}
	r.Poll(ctx) // refresh gauges so the snapshot proxy sees the warmth

	clonePath := filepath.Join(t.TempDir(), "joiner.snap")
	n, epoch, err := cluster.CloneFromPeer(ctx, rs.URL, clonePath)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || epoch != 1 {
		t.Fatalf("clone: %d bytes, epoch %d", n, epoch)
	}

	joinerSvc, err := exactsim.OpenSnapshot(clonePath, svcOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer joinerSvc.Close()
	joiner := serveMember(t, joinerSvc)
	if err := r.Add(joiner.url()); err != nil {
		t.Fatal(err)
	}
	r.Poll(ctx)
	if st := r.Stats(); st.HealthyBackends != 2 {
		t.Fatalf("joiner not admitted: %d healthy", st.HealthyBackends)
	}

	// Route a spread of sources; the ring sends a share to the joiner.
	// Every answer must match the peer bit-for-bit.
	for src := 0; src < 64; src++ {
		resp := r.Query(ctx, exactsim.Request{Source: exactsim.NodeID(src)})
		if resp.Err != nil {
			t.Fatalf("source %d: %v", src, resp.Err)
		}
		want := peer.svc.Query(ctx, exactsim.Request{Source: exactsim.NodeID(src)})
		if want.Err != nil {
			t.Fatalf("reference source %d: %v", src, want.Err)
		}
		for j := range resp.Result.Scores {
			if resp.Result.Scores[j] != want.Result.Scores[j] {
				t.Fatalf("source %d: joiner fleet answer differs from peer at %d", src, j)
			}
		}
	}

	jst := joinerSvc.Stats()
	if jst.Queries == 0 {
		t.Fatal("ring routed nothing to the joiner across 64 sources")
	}
	if jst.DiagHits == 0 {
		t.Fatal("cloned joiner served queries with zero diag-index hits — the clone booted cold")
	}
}

// TestRouterShedsSaturatedFleet: a replica whose polled queue gauge is
// over the shed threshold stops receiving queries; when every healthy
// replica is saturated the router answers unavailable immediately
// instead of queueing.
func TestRouterShedsSaturatedFleet(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(200, 3, 11)
	svcOpts := exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	}
	members, urls := startFleet(t, g, 2, svcOpts)

	opts := manualPollOptions()
	opts.ShedQueueDepth = 100
	r, err := cluster.New(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx := context.Background()
	// Saturate member 0: its gauge goes over threshold at the next poll.
	members[0].spoof.queueDepth.Store(500)
	r.Poll(ctx)
	for src := 0; src < 40; src++ {
		if resp := r.Query(ctx, exactsim.Request{Source: exactsim.NodeID(src)}); resp.Err != nil {
			t.Fatalf("source %d with one replica shedding: %v", src, resp.Err)
		}
	}
	if q := members[0].svc.Stats().Queries; q != 0 {
		t.Fatalf("saturated replica still served %d queries", q)
	}

	// Saturate both: the fleet is full; requests are rejected early.
	members[1].spoof.queueDepth.Store(500)
	r.Poll(ctx)
	resp := r.Query(ctx, exactsim.Request{Source: 3})
	if resp.Err == nil || resp.Err.Code != exactsim.CodeUnavailable {
		t.Fatalf("saturated fleet answered %+v, want unavailable", resp)
	}
	if st := r.Stats(); st.Shed == 0 {
		t.Fatal("shed counter not incremented")
	}

	// Pressure releases → traffic resumes.
	members[0].spoof.queueDepth.Store(-1)
	members[1].spoof.queueDepth.Store(-1)
	r.Poll(ctx)
	if resp := r.Query(ctx, exactsim.Request{Source: 3}); resp.Err != nil {
		t.Fatalf("after release: %v", resp.Err)
	}
}

// TestRouterHedgesStragglers: once the latency tracker knows the normal
// regime, a query stuck on an induced straggler is raced on the second
// ring candidate and the fast answer wins long before the straggler
// would have returned.
func TestRouterHedgesStragglers(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(300, 3, 7)
	svcOpts := exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	}
	members, urls := startFleet(t, g, 2, svcOpts)

	opts := manualPollOptions()
	opts.HedgeMinDelay = 2 * time.Millisecond
	opts.HedgeQuantile = 0.5
	r, err := cluster.New(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx := context.Background()
	const probe = exactsim.NodeID(42)
	// Identify the probe source's ring owner while the tracker is still
	// cold — no hedging can fire yet, so exactly one replica serves this
	// query and the straggler we induce below really is the primary.
	if resp := r.Query(ctx, exactsim.Request{Source: probe}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	primary := 0
	if members[1].svc.Stats().Queries > 0 {
		primary = 1
	}

	// Warm the tracker (and both caches) well past its sample gate.
	for i := 0; i < 40; i++ {
		if resp := r.Query(ctx, exactsim.Request{Source: exactsim.NodeID(i % 50)}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}

	const stall = 1500 * time.Millisecond
	members[primary].gate.delay.Store(int64(stall))

	start := time.Now()
	resp := r.Query(ctx, exactsim.Request{Source: probe})
	elapsed := time.Since(start)
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if elapsed >= stall {
		t.Fatalf("hedge did not rescue the straggler: %v elapsed", elapsed)
	}
	st := r.Stats()
	if st.Hedged == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedge counters: hedged=%d wins=%d", st.Hedged, st.HedgeWins)
	}
	if st.HedgeDelayNanos == 0 {
		t.Fatal("hedge delay gauge empty despite warm tracker")
	}
}

// TestClusterServerProtocol: a stock httpapi.Client pointed at the
// router's server uses the fleet exactly as it would one replica —
// query, batch, stats, algorithms, health — and the router's stats
// answer decodes as the aggregated superset.
func TestClusterServerProtocol(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(250, 3, 9)
	svcOpts := exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	}
	_, urls := startFleet(t, g, 3, svcOpts)
	r, err := cluster.New(urls, manualPollOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv := cluster.NewServer(r, cluster.ServerOptions{})
	rs := httptest.NewServer(srv)
	defer rs.Close()

	c, err := httpapi.NewClient(rs.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	resp, err := c.Query(ctx, exactsim.Request{Source: 7, K: 5})
	if err != nil || resp.Err != nil {
		t.Fatalf("query via router: %v / %v", err, resp.Err)
	}
	if len(resp.TopK) != 5 || resp.GraphEpoch != 1 {
		t.Fatalf("payload: %+v", resp)
	}

	reqs := []exactsim.Request{{Source: 1}, {Source: 2}, {Source: 3}}
	batch, err := c.Batch(ctx, reqs)
	if err != nil || len(batch) != 3 {
		t.Fatalf("batch via router: %v (%d)", err, len(batch))
	}
	for i, br := range batch {
		if br.Err != nil || br.Request.Source != reqs[i].Source {
			t.Fatalf("batch[%d]: %+v", i, br)
		}
	}

	names, def, err := c.Algorithms(ctx)
	if err != nil || def == "" || len(names) == 0 {
		t.Fatalf("algorithms via router: %v %q %v", err, def, names)
	}

	// The aggregated stats decode into the plain ServiceStats shape.
	// Backend gauges are cached from the last membership poll, so
	// refresh them first (the daemon's background poller does this).
	r.Poll(ctx)
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.GraphEpoch != 1 || st.Queries == 0 {
		t.Fatalf("aggregated ServiceStats view: %+v", st)
	}
	// …and the full fleet view carries the per-backend detail.
	res, err := http.Get(rs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var fs cluster.FleetStats
	if err := json.NewDecoder(res.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	if len(fs.Backends) != 3 || fs.HealthyBackends != 3 || fs.RouterQueries == 0 {
		t.Fatalf("fleet view: backends=%d healthy=%d routed=%d",
			len(fs.Backends), fs.HealthyBackends, fs.RouterQueries)
	}

	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Ready(ctx); err != nil {
		t.Fatal(err)
	}
	// Draining the router flips readiness but not liveness.
	srv.SetDraining(true)
	if err := c.Ready(ctx); err == nil {
		t.Fatal("draining router still ready")
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("draining router not alive: %v", err)
	}
	srv.SetDraining(false)

	// Warm through the router reaches every replica.
	wr, err := c.Warm(ctx, exactsim.WarmRequest{Sources: []exactsim.NodeID{5, 6}})
	if err != nil || wr.Err != nil {
		t.Fatalf("warm via router: %v / %v", err, wr.Err)
	}
	if wr.Warmed != 6 { // 2 sources × 3 replicas
		t.Fatalf("warmed %d, want 6", wr.Warmed)
	}
}

// TestRouterEpochLagEjects: a replica that misses a fleet-wide graph
// update is ejected after EpochLagPolls polls — stale answers never mix
// into fresh traffic — and re-admitted once it catches up.
func TestRouterEpochLagEjects(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(200, 3, 13)
	svcOpts := exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	}
	members, urls := startFleet(t, g, 3, svcOpts)
	r, err := cluster.New(urls, manualPollOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx := context.Background()
	// Roll a graph update across replicas 0 and 1 only.
	g2 := exactsim.GenerateBarabasiAlbert(200, 3, 14)
	for _, i := range []int{0, 1} {
		if _, err := members[i].svc.Update(g2); err != nil {
			t.Fatal(err)
		}
	}
	r.Poll(ctx) // lag 1 — grace
	if st := r.Stats(); st.HealthyBackends != 3 {
		t.Fatalf("grace poll already ejected: %d healthy", st.HealthyBackends)
	}
	r.Poll(ctx) // lag 2 — ejected
	st := r.Stats()
	if st.HealthyBackends != 2 {
		t.Fatalf("laggard not ejected: %d healthy", st.HealthyBackends)
	}
	if st.GraphEpoch != 2 {
		t.Fatalf("fleet epoch %d, want 2", st.GraphEpoch)
	}

	// Queries route only to the epoch-2 replicas.
	for src := 0; src < 20; src++ {
		resp := r.Query(ctx, exactsim.Request{Source: exactsim.NodeID(src)})
		if resp.Err != nil {
			t.Fatalf("source %d: %v", src, resp.Err)
		}
		if resp.GraphEpoch != 2 {
			t.Fatalf("source %d answered on stale epoch %d", src, resp.GraphEpoch)
		}
	}

	// The laggard catches up and rejoins.
	if _, err := members[2].svc.Update(g2); err != nil {
		t.Fatal(err)
	}
	r.Poll(ctx)
	if st := r.Stats(); st.HealthyBackends != 3 {
		t.Fatalf("caught-up replica not re-admitted: %d healthy", st.HealthyBackends)
	}
}
