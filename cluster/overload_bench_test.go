package cluster_test

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/cluster"
	"github.com/exactsim/exactsim/internal/algo"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/sparse"
)

// The overload benchmark needs a fixed, deterministic cost model, so it
// ships its own pair of registry algorithms instead of timing real
// SimRank solvers (whose cost varies with the host): bench-exact models
// the expensive exact plan, bench-cheap the brownout fallback one ladder
// step down. Both honor context cancellation mid-"compute" and return a
// closed-form deterministic score vector, which is what lets the client
// side verify bit-determinism of non-degraded answers without a
// reference replica.
const (
	benchExactName = "bench-exact"
	benchCheapName = "bench-cheap"

	benchExactCost = 8 * time.Millisecond
	benchCheapCost = time.Millisecond
)

var (
	registerOverloadAlgos sync.Once
	// benchExpiredExec counts executions that began with their deadline
	// already spent — the acceptance metric that must stay at zero. The
	// 2ms grace keeps a deadline that lands in the microseconds between
	// the worker's queued-expiry check and the algorithm's first
	// instruction from registering as a propagation failure.
	benchExpiredExec atomic.Int64
)

type overloadBenchQuerier struct {
	g     *graph.Graph
	name  string
	cost  time.Duration
	scale float64
}

func (q *overloadBenchQuerier) Name() string        { return q.name }
func (q *overloadBenchQuerier) Graph() *graph.Graph { return q.g }

func (q *overloadBenchQuerier) SingleSource(ctx context.Context, source graph.NodeID) (*algo.Result, error) {
	if dl, ok := ctx.Deadline(); ok && time.Since(dl) > 2*time.Millisecond {
		benchExpiredExec.Add(1)
	}
	t := time.NewTimer(q.cost)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &algo.Result{Algorithm: q.name, Scores: overloadBenchScores(q.g.N(), source, q.scale)}, nil
}

func (q *overloadBenchQuerier) TopK(ctx context.Context, source graph.NodeID, k int) ([]sparse.Entry, *algo.Result, error) {
	res, err := q.SingleSource(ctx, source)
	if err != nil {
		return nil, nil, err
	}
	return sparse.TopK(res.Scores, k, source), res, nil
}

// overloadBenchScores is the closed-form answer both the server-side
// bench algorithms and the client-side determinism check compute.
func overloadBenchScores(n int, source graph.NodeID, scale float64) []float64 {
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = scale / float64(1+abs(int(source)-i))
	}
	scores[source] = 1
	return scores
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func registerOverloadBenchAlgorithms() {
	registerOverloadAlgos.Do(func() {
		algo.Register(benchExactName, func(ctx context.Context, g *graph.Graph, cfg algo.Config) (algo.Querier, error) {
			return &overloadBenchQuerier{g: g, name: benchExactName, cost: benchExactCost, scale: 0.5}, nil
		})
		algo.Register(benchCheapName, func(ctx context.Context, g *graph.Graph, cfg algo.Config) (algo.Querier, error) {
			return &overloadBenchQuerier{g: g, name: benchCheapName, cost: benchCheapCost, scale: 0.25}, nil
		})
	})
}

// BenchmarkOverloadGoodput drives a 2-replica loopback fleet at roughly
// 2× its sustained service capacity — 8 closed-loop clients recycling
// every ≤30ms against 2 workers of 8ms service time (≈266 offered vs
// 250 served qps, with 4× the fleet's worker slots queued) — with a
// 30ms deadline on every query, and compares shed-only operation
// against brownout. The acceptance criteria of the
// overload-control PR read directly off the extra metrics:
//
//   - expired-exec must be 0 in both arms: deadline propagation means no
//     tier ever executes a query whose budget is already spent;
//   - goodput-qps (in-deadline answers per second) must be strictly
//     higher with brownout on — opted-in queries answered by the cheap
//     ladder step beat queries shed outright;
//   - every non-degraded answer is verified bit-identical to the
//     closed-form expected scores (the brownout determinism carve-out).
func BenchmarkOverloadGoodput(b *testing.B) {
	registerOverloadBenchAlgorithms()
	const (
		clients  = 8
		deadline = 30 * time.Millisecond
	)
	for _, mode := range []string{"mode=shed-only", "mode=brownout"} {
		brownout := mode == "mode=brownout"
		b.Run(mode, func(b *testing.B) {
			g := exactsim.GenerateBarabasiAlbert(200, 3, 1)
			members, urls := startFleet(b, g, 2, exactsim.ServiceOptions{
				Workers:          1,
				QueueDepth:       16,
				DefaultAlgorithm: benchExactName,
				DegradeLadder:    map[string]string{benchExactName: benchCheapName},
				DisableBrownout:  !brownout,
			})
			opts := manualPollOptions()
			opts.DisableHedging = true
			r, err := cluster.New(urls, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(r.Close)

			// Build both queriers on every member outside the timed region,
			// so the measured path never pays a querier construction.
			ctx := context.Background()
			for _, m := range members {
				for _, alg := range []string{benchExactName, benchCheapName} {
					if resp := m.svc.Query(ctx, exactsim.Request{Algorithm: alg, NoCache: true}); resp.Err != nil {
						b.Fatal(resp.Err)
					}
				}
			}

			benchExpiredExec.Store(0)
			var good, degraded, shedOrDropped, deadlineMiss atomic.Int64
			var latMu sync.Mutex
			lat := make([]time.Duration, 0, b.N)
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						src := exactsim.NodeID((i * 13) % 200)
						qctx, cancel := context.WithTimeout(ctx, deadline)
						start := time.Now()
						resp := r.Query(qctx, exactsim.Request{
							Source:        src,
							NoCache:       true,
							AllowDegraded: brownout,
						})
						el := time.Since(start)
						cancel()
						switch {
						case resp.Err == nil:
							good.Add(1)
							if resp.Degraded {
								degraded.Add(1)
							} else if i%8 == 0 {
								verifyExactAnswer(b, g.N(), src, resp)
							}
							latMu.Lock()
							lat = append(lat, el)
							latMu.Unlock()
						case resp.Err.Code == exactsim.CodeUnavailable:
							shedOrDropped.Add(1)
						case resp.Err.Code == exactsim.CodeDeadlineExceeded:
							deadlineMiss.Add(1)
						default:
							b.Errorf("query %d: unexpected error %v", i, resp.Err)
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()

			if n := benchExpiredExec.Load(); n > 0 {
				b.Errorf("%d queries began executing with their deadline already spent; deadline propagation must reject them at admission", n)
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(good.Load())/sec, "goodput-qps")
			}
			b.ReportMetric(float64(degraded.Load()), "degraded")
			b.ReportMetric(float64(shedOrDropped.Load()), "shed")
			b.ReportMetric(float64(deadlineMiss.Load()), "deadline-miss")
			b.ReportMetric(float64(benchExpiredExec.Load()), "expired-exec")
			// Server-side view: the router's retries can rescue a shed or
			// CoDel-dropped attempt on the other replica, so the fleet's
			// own drop counters show the overload machinery engaging even
			// when the client-visible shed count stays low.
			var fleetCoDel, fleetRejected int64
			for _, m := range members {
				st := m.svc.Stats()
				fleetCoDel += st.ShedQueries + st.CoDelDrops
				fleetRejected += st.DeadlineRejected
			}
			b.ReportMetric(float64(fleetCoDel), "fleet-drops")
			b.ReportMetric(float64(fleetRejected), "fleet-deadline-rejected")
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			if len(lat) > 0 {
				b.ReportMetric(float64(lat[int(0.99*float64(len(lat)-1))].Nanoseconds()), "p99-ns/op")
			}
		})
	}
}

// verifyExactAnswer checks one non-degraded response bit-for-bit against
// the closed form bench-exact computes: under any overload, an answer
// that does not carry Degraded must be the exact answer.
func verifyExactAnswer(b *testing.B, n int, src exactsim.NodeID, resp exactsim.Response) {
	if resp.Request.Algorithm != benchExactName {
		b.Errorf("source %d: non-degraded answer computed by %q, want %q", src, resp.Request.Algorithm, benchExactName)
		return
	}
	if resp.Result == nil || len(resp.Result.Scores) != n {
		b.Errorf("source %d: non-degraded answer missing its %d-node score vector", src, n)
		return
	}
	want := overloadBenchScores(n, graph.NodeID(src), 0.5)
	for i, s := range resp.Result.Scores {
		if math.Float64bits(s) != math.Float64bits(want[i]) {
			b.Errorf("source %d: non-degraded scores[%d] = %x, want %x (bit-determinism broken)", src, i, s, want[i])
			return
		}
	}
}
