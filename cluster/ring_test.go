package cluster

import (
	"fmt"
	"testing"
)

func TestRingCandidatesDistinctAndComplete(t *testing.T) {
	ids := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := buildRing(ids, 64)
	for key := int64(0); key < 200; key++ {
		cands := r.candidates(keyHash(key), nil)
		if len(cands) != len(ids) {
			t.Fatalf("key %d: %d candidates, want %d", key, len(cands), len(ids))
		}
		seen := map[int]bool{}
		for _, c := range cands {
			if c < 0 || c >= len(ids) {
				t.Fatalf("key %d: candidate %d out of range", key, c)
			}
			if seen[c] {
				t.Fatalf("key %d: duplicate candidate %d", key, c)
			}
			seen[c] = true
		}
	}
}

func TestRingAffinityAndSpread(t *testing.T) {
	ids := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := buildRing(ids, 64)
	counts := make([]int, len(ids))
	const keys = 3000
	for key := int64(0); key < keys; key++ {
		first := r.candidates(keyHash(key), nil)[0]
		again := r.candidates(keyHash(key), nil)[0]
		if first != again {
			t.Fatalf("key %d: primary not stable (%d then %d)", key, first, again)
		}
		counts[first]++
	}
	// vnode-weighted consistent hashing is not perfectly even, but no
	// backend should own a wildly skewed share of the key space.
	for i, c := range counts {
		share := float64(c) / keys
		if share < 0.15 || share > 0.55 {
			t.Fatalf("backend %d owns %.0f%% of keys: %v", i, 100*share, counts)
		}
	}
}

func TestRingMinimalRemapOnMembershipChange(t *testing.T) {
	ids := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	before := buildRing(ids, 64)
	after := buildRing(ids[:3], 64) // d leaves

	const keys = 2000
	moved := 0
	for key := int64(0); key < keys; key++ {
		b := before.candidates(keyHash(key), nil)[0]
		a := after.candidates(keyHash(key), nil)[0]
		if before.owners != nil && b != 3 && ids[b] != ids[a] {
			moved++
		}
	}
	// Keys not owned by the departed backend should essentially all stay
	// put — that is the consistent-hashing contract. Allow a tiny slack
	// for hash-boundary coincidences.
	if moved > keys/20 {
		t.Fatalf("%d/%d keys moved off surviving backends", moved, keys)
	}
}

func TestRingSingleBackend(t *testing.T) {
	r := buildRing([]string{"http://only:1"}, 8)
	for key := int64(0); key < 16; key++ {
		cands := r.candidates(keyHash(key), nil)
		if len(cands) != 1 || cands[0] != 0 {
			t.Fatalf("key %d: %v", key, cands)
		}
	}
}

func TestRingEmptyIsSafe(t *testing.T) {
	r := buildRing(nil, 64)
	if got := r.candidates(keyHash(7), nil); len(got) != 0 {
		t.Fatalf("empty ring yielded %v", got)
	}
}

func TestKeyHashSpreads(t *testing.T) {
	// Consecutive small source ids must not collide or cluster into a
	// few values (they feed ring arcs directly).
	seen := map[uint64]int64{}
	for key := int64(0); key < 10000; key++ {
		h := keyHash(key)
		if prev, ok := seen[h]; ok {
			t.Fatalf("keyHash collision: %d and %d", prev, key)
		}
		seen[h] = key
	}
}

func BenchmarkRingCandidates(b *testing.B) {
	ids := make([]string, 8)
	for i := range ids {
		ids[i] = fmt.Sprintf("http://backend-%d:8640", i)
	}
	r := buildRing(ids, 64)
	out := make([]int, 0, len(ids))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = r.candidates(keyHash(int64(i)), out[:0])
	}
}
