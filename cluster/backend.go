package cluster

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/httpapi"
)

// backend is one fleet member as the router sees it: a protocol client
// plus the membership and load state routing decisions read.
//
// Synchronization discipline (one per field group, audited in PR 8):
// every field the query hot path or Stats touches is an atomic; the
// plain consecFails/epochLag ints are poller-owned (only touched under
// Router.pollMu); brk is internally mutex-guarded and never accessed
// around its methods. Do not mix idioms within a group — a field either
// stays atomic everywhere or stays lock-guarded everywhere.
type backend struct {
	url    string
	client *httpapi.Client

	// healthy gates routing. It flips false on FailThreshold consecutive
	// poll failures or EpochLagPolls consecutive polls behind the fleet
	// epoch, and back true on a clean, caught-up poll.
	healthy atomic.Bool

	// inflight counts this router's queries currently on the wire to
	// this backend — the bounded-load signal (distinct from the
	// backend's own InFlight gauge, which includes other routers).
	inflight atomic.Int64

	// ejections counts healthy→unhealthy transitions.
	ejections atomic.Int64

	// stats is the last successfully polled gauge snapshot (nil before
	// the first success). Shedding and the aggregated fleet stats read
	// it lock-free.
	stats atomic.Pointer[exactsim.ServiceStats]

	// lastPollErr is the last poll's failure text ("" on success), for
	// the fleet stats view. Atomic, not pollMu: the poller is the only
	// writer, but Router.Stats reads it lock-free off the poll cycle.
	lastPollErr atomic.Pointer[string]

	// brk is the transport-failure circuit breaker (see breaker.go),
	// layered under the poll-driven health gate above.
	brk breaker

	// Poller-owned counters (only touched under Router.pollMu).
	consecFails int
	epochLag    int
}

func newBackend(url string, hc *httpapiClientConfig) (*backend, error) {
	c, err := httpapi.NewClient(url, hc.clientOptions()...)
	if err != nil {
		return nil, err
	}
	empty := ""
	b := &backend{url: url, client: c}
	b.lastPollErr.Store(&empty)
	return b, nil
}

// httpapiClientConfig carries the shared *http.Client and retry policy
// into backend construction without re-deciding defaults at every call
// site.
type httpapiClientConfig struct {
	hc      *http.Client
	retries int // 0 = httpapi default; negative = disabled
}

func (c *httpapiClientConfig) clientOptions() []httpapi.ClientOption {
	var opts []httpapi.ClientOption
	if c.hc != nil {
		opts = append(opts, httpapi.WithHTTPClient(c.hc))
	}
	if c.retries != 0 {
		n := c.retries
		if n < 0 {
			n = 0
		}
		opts = append(opts, httpapi.WithRetries(n))
	}
	return opts
}

// saturated reports whether the backend's last-polled gauges are over
// the shed thresholds for a request of the given class rank. Thresholds
// scale down with rank — interactive (0) sheds at the full bound, batch
// (1) at 3/4, background (2) at 1/2 — so optional traffic stops being
// routed to a filling replica while user-facing queries still fit. A
// backend that has never answered a poll is not saturated — health
// gating covers it.
func (b *backend) saturated(o *Options, rank int) bool {
	st := b.stats.Load()
	if st == nil {
		return false
	}
	if lim := classLimit(o.ShedQueueDepth, rank); lim > 0 && st.QueueDepth >= lim {
		return true
	}
	if lim := classLimit(o.ShedInFlight, rank); lim > 0 && st.InFlight >= lim {
		return true
	}
	return false
}

// classLimit scales a shed threshold by class rank: 4/4, 3/4, 2/4 of
// the configured bound (floored at 1 so a tiny bound still admits
// something). Non-positive bounds stay disabled.
func classLimit(bound, rank int) int {
	if bound <= 0 {
		return bound
	}
	if rank < 0 {
		rank = 0
	}
	if rank > 2 {
		rank = 2
	}
	lim := bound * (4 - rank) / 4
	if lim < 1 {
		lim = 1
	}
	return lim
}

// epoch returns the backend's last-polled graph epoch (0 before the
// first successful poll).
func (b *backend) epoch() uint64 {
	if st := b.stats.Load(); st != nil {
		return st.GraphEpoch
	}
	return 0
}

// setHealthy flips the health flag, counting eject transitions.
func (b *backend) setHealthy(v bool) {
	was := b.healthy.Swap(v)
	if was && !v {
		b.ejections.Add(1)
	}
}

// Poll runs one full membership cycle synchronously: every backend is
// probed for readiness and stats concurrently, then health and epoch-lag
// state is updated from the results. The background poller calls this on
// its ticker; tests call it directly for deterministic membership
// transitions.
func (r *Router) Poll(ctx context.Context) {
	r.pollMu.Lock()
	defer r.pollMu.Unlock()

	backends := r.snapshot()
	type pollResult struct {
		st  exactsim.ServiceStats
		err error
	}
	results := make([]pollResult, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, r.opts.PollTimeout)
			defer cancel()
			// Readiness, not liveness: a draining replica answers
			// /healthz 200 while it finishes in-flight work, but must
			// stop receiving new queries — /readyz says so.
			if err := b.client.Ready(pctx); err != nil {
				results[i] = pollResult{err: err}
				return
			}
			st, err := b.client.Stats(pctx)
			results[i] = pollResult{st: st, err: err}
		}(i, b)
	}
	wg.Wait()

	// Fleet max epoch over this cycle's successful polls.
	var maxEpoch uint64
	for i := range results {
		if results[i].err == nil && results[i].st.GraphEpoch > maxEpoch {
			maxEpoch = results[i].st.GraphEpoch
		}
	}

	for i, b := range backends {
		res := results[i]
		if res.err != nil {
			msg := res.err.Error()
			b.lastPollErr.Store(&msg)
			b.consecFails++
			if b.consecFails >= r.opts.FailThreshold || b.stats.Load() == nil {
				b.setHealthy(false)
			}
			continue
		}
		empty := ""
		b.lastPollErr.Store(&empty)
		b.consecFails = 0
		st := res.st
		b.stats.Store(&st)
		// A clean poll rode the same transport queries use; an open
		// breaker would only delay the recovery the poll just proved.
		b.brk.reset()
		if st.GraphEpoch < maxEpoch {
			b.epochLag++
			if b.epochLag >= r.opts.EpochLagPolls {
				b.setHealthy(false)
			}
			continue
		}
		b.epochLag = 0
		b.setHealthy(true)
	}
}

// pollLoop is the background membership goroutine.
func (r *Router) pollLoop() {
	defer r.pollWG.Done()
	t := time.NewTicker(r.opts.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-r.pollCtx.Done():
			return
		case <-t.C:
			r.Poll(r.pollCtx)
		}
	}
}
