package cluster_test

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/cluster"
	"github.com/exactsim/exactsim/httpapi"
)

// TestRouterQueryStream: a stream routed through the fleet forwards
// every tier refinement and ends with a terminal answer bit-identical
// to the plain routed query.
func TestRouterQueryStream(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(250, 3, 42)
	svcOpts := exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.05), exactsim.WithSeed(1)},
	}
	_, urls := startFleet(t, g, 3, svcOpts)
	r, err := cluster.New(urls, manualPollOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()
	r.Poll(ctx)

	req := exactsim.Request{Source: 8, Epsilon: 0.001, K: 5, NoCache: true}
	var refinements []exactsim.Response
	final := r.QueryStream(ctx, req, func(res exactsim.Response) { refinements = append(refinements, res) })
	if final.Err != nil {
		t.Fatal(final.Err)
	}
	if final.Partial {
		t.Fatal("terminal record flagged Partial")
	}
	if len(refinements) == 0 {
		t.Fatal("no refinements forwarded through the router")
	}
	prev := math.Inf(1)
	for i, ref := range refinements {
		if !ref.Partial || ref.AchievedEpsilon <= 0 {
			t.Fatalf("refinement %d not a tier record: %+v", i, ref)
		}
		if ref.AchievedEpsilon >= prev {
			t.Fatalf("refinement %d did not tighten: %g then %g", i, prev, ref.AchievedEpsilon)
		}
		prev = ref.AchievedEpsilon
	}

	plain := r.Query(ctx, req)
	if plain.Err != nil {
		t.Fatal(plain.Err)
	}
	if len(final.Result.Scores) != len(plain.Result.Scores) {
		t.Fatalf("score lengths differ: %d vs %d", len(final.Result.Scores), len(plain.Result.Scores))
	}
	for i := range final.Result.Scores {
		if math.Float64bits(final.Result.Scores[i]) != math.Float64bits(plain.Result.Scores[i]) {
			t.Fatalf("routed stream and routed query diverge at %d", i)
		}
	}
}

// TestRouterServerStreamAndAlgorithms: the fleet front door re-serves
// both new surfaces — /v1/query/stream proxies the backend ladder and
// /v1/algorithms re-serves a backend's capability document.
func TestRouterServerStreamAndAlgorithms(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(250, 3, 42)
	svcOpts := exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.05), exactsim.WithSeed(1)},
	}
	_, urls := startFleet(t, g, 2, svcOpts)
	r, err := cluster.New(urls, manualPollOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()
	r.Poll(ctx)
	rs := httptest.NewServer(cluster.NewServer(r, cluster.ServerOptions{}))
	defer rs.Close()

	c, err := httpapi.NewClient(rs.URL)
	if err != nil {
		t.Fatal(err)
	}

	var refinements int
	final, err := c.QueryStream(ctx, exactsim.Request{Source: 8, Epsilon: 0.001, K: 5},
		func(exactsim.Response) { refinements++ })
	if err != nil {
		t.Fatal(err)
	}
	if final.Err != nil || final.Partial || refinements == 0 {
		t.Fatalf("front-door stream: err=%v partial=%v refinements=%d",
			final.Err, final.Partial, refinements)
	}

	ar, err := c.AlgorithmsInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Default != exactsim.AlgorithmAuto {
		t.Fatalf("front-door default %q", ar.Default)
	}
	// Compare against the static caps table, not Algorithms(): sibling
	// tests in this binary register throwaway methods into the registry.
	if len(ar.Methods) != len(exactsim.AlgorithmCaps()) {
		t.Fatalf("front door re-served %d method rows, want %d",
			len(ar.Methods), len(exactsim.AlgorithmCaps()))
	}
	for _, m := range ar.Methods {
		if m.CostUnits <= 0 || m.CostNanos <= 0 {
			t.Fatalf("method %q lost its cost row through the proxy: %+v", m.Name, m)
		}
	}
}
