package cluster

import (
	"sort"
	"sync"
	"time"
)

// latencyTracker keeps a sliding window of recent successful query
// latencies and answers quantile questions about them — the signal that
// decides when a request has become a straggler worth hedging. A fixed
// ring buffer bounds both memory and the horizon: old traffic stops
// influencing the hedge delay after windowSize fresh samples.
type latencyTracker struct {
	mu     sync.Mutex
	buf    []time.Duration
	next   int
	filled bool

	// quantile cache: recomputed lazily every recomputeEvery records
	// instead of sorting the window on every query's hot path.
	sinceSort int
	sorted    []time.Duration
}

const (
	// trackerWindow is the sample window; big enough that one burst of
	// fast cache hits doesn't erase the tail, small enough to adapt when
	// the fleet's latency regime shifts.
	trackerWindow = 512
	// trackerMinSamples gates hedging until the tracker has seen enough
	// traffic to know what "slow" means; before that no hedge fires.
	trackerMinSamples = 16
	// trackerRecompute bounds how stale the cached sorted window may be.
	trackerRecompute = 32
)

func newLatencyTracker() *latencyTracker {
	return &latencyTracker{buf: make([]time.Duration, 0, trackerWindow)}
}

// record adds one observed latency.
func (t *latencyTracker) record(d time.Duration) {
	t.mu.Lock()
	if len(t.buf) < trackerWindow {
		t.buf = append(t.buf, d)
	} else {
		t.buf[t.next] = d
		t.next = (t.next + 1) % trackerWindow
		t.filled = true
	}
	t.sinceSort++
	t.mu.Unlock()
}

// quantile returns the q-quantile (0 < q < 1) of the window and true, or
// 0 and false while fewer than trackerMinSamples latencies have been
// recorded. The sorted view is cached and refreshed at most every
// trackerRecompute records.
func (t *latencyTracker) quantile(q float64) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) < trackerMinSamples {
		return 0, false
	}
	if t.sorted == nil || t.sinceSort >= trackerRecompute {
		t.sorted = append(t.sorted[:0], t.buf...)
		sort.Slice(t.sorted, func(i, j int) bool { return t.sorted[i] < t.sorted[j] })
		t.sinceSort = 0
	}
	idx := int(q * float64(len(t.sorted)))
	if idx >= len(t.sorted) {
		idx = len(t.sorted) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return t.sorted[idx], true
}

// samples reports how many latencies are currently in the window.
func (t *latencyTracker) samples() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// hedgeBudget is the token bucket bounding hedged requests, the mirror
// of httpapi's retry budget one tier up: each hedge launch spends one
// token, each successful un-hedged query earns ratio back, capped at
// burst. At steady state hedges are bounded to ~ratio of traffic — a
// fleet whose every query is slow stops earning tokens and stops
// hedging, instead of doubling the offered load exactly when capacity
// ran out. The bucket starts full so a cold router can still rescue
// early stragglers.
type hedgeBudget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	burst  float64
}

// newHedgeBudget builds a bucket; burst <= 0 disables it (spend always
// allows).
func newHedgeBudget(ratio float64, burst int) *hedgeBudget {
	return &hedgeBudget{tokens: float64(burst), ratio: ratio, burst: float64(burst)}
}

// spend reports whether a hedge may launch, consuming one token when it
// does.
func (h *hedgeBudget) spend() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.burst <= 0 {
		return true
	}
	if h.tokens < 1 {
		return false
	}
	h.tokens--
	return true
}

// earn credits the bucket for one successful un-hedged completion.
func (h *hedgeBudget) earn() {
	h.mu.Lock()
	if h.tokens += h.ratio; h.tokens > h.burst {
		h.tokens = h.burst
	}
	h.mu.Unlock()
}
