package cluster

import (
	"sync"
	"time"
)

// breaker is a per-backend circuit breaker over *transport* failures —
// dial refused, connection reset, body cut — the failure class where
// every attempt burns a candidate slot (and possibly a hedge) just to
// rediscover that the wire to this replica is broken. Protocol errors
// never trip it: a replica that answers "invalid_argument" has a working
// transport.
//
// It layers *under* the poll-driven eject/re-admit membership: polls run
// on an interval, so a replica can be flapping for most of a second
// before FailThreshold ejects it, and every query in that window pays a
// failed attempt first. The breaker reacts at query cadence instead —
// threshold consecutive transport failures open it, queries skip it for
// the cooldown, then one half-open probe decides between closing it and
// another cooldown. A clean membership poll also closes it: readiness
// rides the same transport, so a replica the poller just re-admitted
// should not sit out another cooldown.
//
// States: closed (normal), open (skip until cooldown elapses), half-open
// (exactly one probe in flight decides).
// breaker is mutex-only: every field, counters included, is read and
// written under mu (trips is exposed to Stats through state(), not
// atomically) — the struct deliberately has no atomic fields to mix with.
type breaker struct {
	mu       sync.Mutex
	open     bool
	probing  bool // half-open: the single probe is on the wire
	fails    int  // consecutive transport failures while closed
	openedAt time.Time
	trips    int64
}

// blocked reports whether pick() should skip this backend right now —
// non-mutating, so scanning candidates never consumes the half-open
// probe slot.
func (b *breaker) blocked(now time.Time, cooldown time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return false
	}
	if now.Sub(b.openedAt) < cooldown {
		return true
	}
	// Cooldown elapsed: the backend is eligible for one probe, so it is
	// not blocked for candidate selection; acquire() arbitrates who sends.
	return b.probing
}

// acquire asks to send one request. Closed: always yes. Open and cooling:
// no. Open with cooldown elapsed: yes for exactly one caller (the
// half-open probe); concurrent callers are refused until its result lands.
func (b *breaker) acquire(now time.Time, cooldown time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if now.Sub(b.openedAt) < cooldown || b.probing {
		return false
	}
	b.probing = true
	return true
}

// result records one attempt's transport outcome. ok closes the breaker
// from any state; a failure while closed counts toward threshold, and a
// failed half-open probe re-opens for another cooldown.
func (b *breaker) result(ok bool, threshold int, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.open = false
		b.probing = false
		b.fails = 0
		return
	}
	if b.open {
		// The failed half-open probe (or a straggler attempt sent before
		// the trip): stay open, restart the cooldown clock.
		b.probing = false
		b.openedAt = now
		return
	}
	b.fails++
	if b.fails >= threshold {
		b.open = true
		b.probing = false
		b.openedAt = now
		b.trips++
	}
}

// reset closes the breaker unconditionally — called when a clean
// membership poll proves the transport works.
func (b *breaker) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.open = false
	b.probing = false
	b.fails = 0
}

// state renders the breaker for the stats view.
func (b *breaker) state(now time.Time, cooldown time.Duration) (state string, trips int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !b.open:
		return "closed", b.trips
	case b.probing || now.Sub(b.openedAt) >= cooldown:
		return "half-open", b.trips
	default:
		return "open", b.trips
	}
}
