package cluster

import (
	"time"

	exactsim "github.com/exactsim/exactsim"
)

// FleetStats is the router's aggregated view of the fleet. It embeds an
// exactsim.ServiceStats whose counters and gauges are *sums* across the
// replicas' last-polled stats (GraphEpoch is the fleet max, DiagHitRate
// is recomputed from the summed hit/miss counters), so GET /v1/stats on
// a router decodes into the same ServiceStats shape clients already
// read — httpapi.Client.Stats works against a router unchanged — while
// the extra fields carry the fleet-level story.
type FleetStats struct {
	exactsim.ServiceStats

	// Backends is the per-replica detail, ordered as registered.
	Backends []BackendStats `json:"backends"`

	// HealthyBackends counts replicas currently admitted by membership.
	HealthyBackends int `json:"healthy_backends"`

	// RouterQueries / RouterErrors count requests through this router
	// (the embedded Queries/Errors sums are fleet-wide and include
	// traffic from other routers and direct clients).
	RouterQueries int64 `json:"router_queries"`
	RouterErrors  int64 `json:"router_errors"`
	// Retries counts failed attempts absorbed by the next ring
	// candidate; Hedged counts hedge launches, HedgeWins the hedges
	// whose answer arrived first; Shed counts queries rejected early
	// because every healthy replica was saturated.
	Retries   int64 `json:"retries"`
	Hedged    int64 `json:"hedged"`
	HedgeWins int64 `json:"hedge_wins"`
	// HedgeSuppressed counts hedge timers that fired but found the hedge
	// token budget empty — speculative double-sends the router declined
	// because recent traffic had not banked enough successes.
	HedgeSuppressed int64 `json:"hedge_suppressed"`
	Shed            int64 `json:"shed"`
	// BreakerSkips counts attempts answered instantly from an open
	// circuit breaker instead of touching the wire; BreakerTrips sums
	// closed→open transitions across backends.
	BreakerSkips int64 `json:"breaker_skips"`
	BreakerTrips int64 `json:"breaker_trips"`
	// FailOpenPicks counts queries routed with every backend
	// poll-ejected (fail-open panic routing: the health prober may be
	// the failing component, so the ring is walked anyway).
	FailOpenPicks int64 `json:"fail_open_picks"`
	// HedgeDelayNanos is the current straggler threshold (0 until the
	// latency tracker has enough samples).
	HedgeDelayNanos int64 `json:"hedge_delay_ns"`
}

// BackendStats is one replica's slice of the fleet view.
type BackendStats struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// RouterInFlight is this router's in-wire query count against the
	// replica (the bounded-load signal).
	RouterInFlight int64 `json:"router_in_flight"`
	// Ejections counts healthy→unhealthy membership transitions.
	Ejections int64 `json:"ejections"`
	// BreakerState is the circuit breaker's current state: "closed",
	// "open", or "half-open" (cooldown elapsed, probe pending/in flight).
	BreakerState string `json:"breaker_state"`
	// BreakerTrips counts closed→open transitions.
	BreakerTrips int64 `json:"breaker_trips"`
	// LastPollError is the most recent poll failure ("" when the last
	// poll succeeded).
	LastPollError string `json:"last_poll_error,omitempty"`
	// Stats is the replica's last successfully polled snapshot (zero
	// before the first success).
	Stats exactsim.ServiceStats `json:"stats"`
}

// Stats assembles the fleet view from membership state and the latest
// poll snapshots — no network round trips, so it is cheap enough for a
// load balancer to scrape aggressively.
func (r *Router) Stats() FleetStats {
	backends := r.snapshot()
	out := FleetStats{
		RouterQueries:   r.queries.Load(),
		RouterErrors:    r.errors.Load(),
		Retries:         r.retries.Load(),
		Hedged:          r.hedged.Load(),
		HedgeWins:       r.hedgeWins.Load(),
		HedgeSuppressed: r.hedgeSuppressed.Load(),
		Shed:            r.shed.Load(),
		BreakerSkips:    r.breakerSkips.Load(),
		FailOpenPicks:   r.failOpen.Load(),
		Backends:        make([]BackendStats, 0, len(backends)),
	}
	now := time.Now()
	if d, ok := r.hedgeDelay(); ok {
		out.HedgeDelayNanos = d.Nanoseconds()
	}
	for _, b := range backends {
		bs := BackendStats{
			URL:            b.url,
			Healthy:        b.healthy.Load(),
			RouterInFlight: b.inflight.Load(),
			Ejections:      b.ejections.Load(),
		}
		bs.BreakerState, bs.BreakerTrips = b.brk.state(now, r.opts.BreakerCooldown)
		out.BreakerTrips += bs.BreakerTrips
		if msg := b.lastPollErr.Load(); msg != nil {
			bs.LastPollError = *msg
		}
		if st := b.stats.Load(); st != nil {
			bs.Stats = *st
			agg := &out.ServiceStats
			agg.Queries += st.Queries
			agg.CacheHits += st.CacheHits
			agg.Errors += st.Errors
			agg.CachedResults += st.CachedResults
			agg.QueueDepth += st.QueueDepth
			agg.InFlight += st.InFlight
			agg.Queriers += st.Queriers
			if st.GraphEpoch > agg.GraphEpoch {
				agg.GraphEpoch = st.GraphEpoch
			}
			agg.DiagIndexEnabled = agg.DiagIndexEnabled || st.DiagIndexEnabled
			agg.DiagHits += st.DiagHits
			agg.DiagMisses += st.DiagMisses
			agg.DiagEvictions += st.DiagEvictions
			agg.DiagChunks += st.DiagChunks
			agg.DiagExplores += st.DiagExplores
			agg.DiagResidentBytes += st.DiagResidentBytes
			agg.DiagBudgetBytes += st.DiagBudgetBytes
			// Overload counters sum across replicas; BrownoutActive ORs
			// (any replica degrading is fleet news) and the sojourn gauge
			// takes the worst replica — the one retry hints come from.
			agg.ShedQueries += st.ShedQueries
			agg.CoDelDrops += st.CoDelDrops
			agg.DeadlineRejected += st.DeadlineRejected
			agg.DegradedQueries += st.DegradedQueries
			agg.BrownoutActive = agg.BrownoutActive || st.BrownoutActive
			if st.QueueSojournMicros > agg.QueueSojournMicros {
				agg.QueueSojournMicros = st.QueueSojournMicros
			}
			agg.AutoPlanned += st.AutoPlanned
			agg.PartialResults += st.PartialResults
			agg.PanicsRecovered += st.PanicsRecovered
			if agg.LastPanic == "" {
				agg.LastPanic = st.LastPanic
			}
		}
		if bs.Healthy {
			out.HealthyBackends++
		}
		out.Backends = append(out.Backends, bs)
	}
	if looked := out.DiagHits + out.DiagMisses; looked > 0 {
		out.DiagHitRate = float64(out.DiagHits) / float64(looked)
	}
	return out
}
