package cluster

import (
	"testing"
	"time"
)

// TestBreakerStateMachine drives the breaker through every transition
// with fabricated clocks — the methods take explicit `now` values, so
// the whole lifecycle is deterministic: closed → threshold failures →
// open → cooldown → half-open single probe → failed probe re-opens →
// successful probe closes.
func TestBreakerStateMachine(t *testing.T) {
	const threshold = 3
	cooldown := 100 * time.Millisecond
	t0 := time.Unix(1000, 0)

	var b breaker

	// Closed: always admits, never blocks.
	if b.blocked(t0, cooldown) {
		t.Fatal("new breaker blocked")
	}
	if !b.acquire(t0, cooldown) {
		t.Fatal("new breaker refused acquire")
	}
	if st, trips := b.state(t0, cooldown); st != "closed" || trips != 0 {
		t.Fatalf("initial state %q trips=%d", st, trips)
	}

	// threshold-1 failures leave it closed…
	for i := 0; i < threshold-1; i++ {
		b.result(false, threshold, t0)
		if b.blocked(t0, cooldown) {
			t.Fatalf("blocked after %d/%d failures", i+1, threshold)
		}
	}
	// …and one success wipes the streak: consecutive means consecutive.
	b.result(true, threshold, t0)
	for i := 0; i < threshold-1; i++ {
		b.result(false, threshold, t0)
	}
	if b.blocked(t0, cooldown) {
		t.Fatal("success did not reset the failure streak")
	}

	// The threshold-th consecutive failure trips it.
	b.result(false, threshold, t0)
	if !b.blocked(t0, cooldown) {
		t.Fatal("not blocked after threshold consecutive failures")
	}
	if b.acquire(t0, cooldown) {
		t.Fatal("open breaker admitted a request inside cooldown")
	}
	if st, trips := b.state(t0, cooldown); st != "open" || trips != 1 {
		t.Fatalf("after trip: state %q trips=%d", st, trips)
	}

	// Cooldown elapsed: eligible for exactly one half-open probe.
	t1 := t0.Add(cooldown)
	if b.blocked(t1, cooldown) {
		t.Fatal("still blocked after cooldown elapsed")
	}
	if st, _ := b.state(t1, cooldown); st != "half-open" {
		t.Fatalf("post-cooldown state %q, want half-open", st)
	}
	if !b.acquire(t1, cooldown) {
		t.Fatal("half-open probe slot refused")
	}
	if b.acquire(t1, cooldown) {
		t.Fatal("second concurrent caller also got the probe slot")
	}
	if !b.blocked(t1, cooldown) {
		t.Fatal("probe in flight but candidate scan not blocked")
	}

	// Failed probe: re-open, cooldown clock restarts, no new trip.
	b.result(false, threshold, t1)
	if !b.blocked(t1.Add(cooldown/2), cooldown) {
		t.Fatal("failed probe did not restart the cooldown")
	}
	if _, trips := b.state(t1, cooldown); trips != 1 {
		t.Fatalf("failed probe counted as a new trip: %d", trips)
	}

	// Second probe succeeds: closed again, streak cleared.
	t2 := t1.Add(2 * cooldown)
	if !b.acquire(t2, cooldown) {
		t.Fatal("second probe refused")
	}
	b.result(true, threshold, t2)
	if b.blocked(t2, cooldown) {
		t.Fatal("successful probe did not close the breaker")
	}
	if st, _ := b.state(t2, cooldown); st != "closed" {
		t.Fatalf("post-recovery state %q", st)
	}
	for i := 0; i < threshold-1; i++ {
		b.result(false, threshold, t2)
	}
	if b.blocked(t2, cooldown) {
		t.Fatal("recovery did not clear the failure streak")
	}

	// reset() closes from open unconditionally (the clean-poll path).
	b.result(false, threshold, t2)
	if !b.blocked(t2, cooldown) {
		t.Fatal("precondition: breaker should be open")
	}
	b.reset()
	if b.blocked(t2, cooldown) || !b.acquire(t2, cooldown) {
		t.Fatal("reset did not close the breaker")
	}
}
