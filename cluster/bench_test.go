package cluster_test

import (
	"context"
	"runtime"
	"sort"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/cluster"
)

// benchServiceTime is the emulated per-replica service time for the
// fleet-scaling benchmark. Loopback replicas share the host's cores, so
// real compute cannot demonstrate fleet scaling on a small CI runner;
// instead each replica serializes its queries behind a fixed service
// time (gate.serial) — per-replica capacity is then 1/benchServiceTime
// and any throughput gain beyond that is the router spreading load
// across replicas, which is the property under test.
const benchServiceTime = 6 * time.Millisecond

// benchFleet stands up n loopback replicas over one graph with warmed
// caches, then arms the capacity gate on each.
func benchFleet(b *testing.B, n int) *cluster.Router {
	b.Helper()
	g := exactsim.GenerateBarabasiAlbert(200, 3, 1)
	members, urls := startFleet(b, g, n, exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	})
	opts := manualPollOptions()
	opts.DisableHedging = true
	r, err := cluster.New(urls, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(r.Close)
	ctx := context.Background()
	for src := 0; src < 200; src++ {
		if resp := r.Query(ctx, exactsim.Request{Source: exactsim.NodeID(src)}); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
	for _, m := range members {
		m.gate.delay.Store(int64(benchServiceTime))
		m.gate.delayEvery.Store(1)
		m.gate.serial.Store(true)
	}
	return r
}

// BenchmarkRouterFleet measures routed throughput against replica count
// with fixed per-replica capacity (see benchServiceTime). ns/op dropping
// — and the qps extra metric rising — as replicas are added is the
// fleet tier doing its job: consistent-hash spread plus bounded-load
// spill keeps every replica busy without piling onto one.
func BenchmarkRouterFleet(b *testing.B) {
	for _, replicas := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "replicas=1", 2: "replicas=2", 4: "replicas=4"}[replicas], func(b *testing.B) {
			r := benchFleet(b, replicas)
			ctx := context.Background()
			b.SetParallelism(8 / runtime.GOMAXPROCS(0) * replicas)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					src := exactsim.NodeID((i * 13) % 200)
					if resp := r.Query(ctx, exactsim.Request{Source: src}); resp.Err != nil {
						b.Fatal(resp.Err)
					}
					i++
				}
			})
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(b.N)/sec, "qps")
			}
		})
	}
}

// BenchmarkRouterTail measures tail latency with an induced straggler:
// one of two replicas stalls every 20th query for 25ms. Unhedged, those
// stalls are the p99. Hedged, the router races a stalled query on the
// second replica after the tracked p95 delay, and the p99 collapses to
// roughly hedge-delay + one fast query. Replica determinism is what
// makes taking the racing answer sound.
func BenchmarkRouterTail(b *testing.B) {
	const (
		stall      = 25 * time.Millisecond
		stallEvery = 20
	)
	for _, hedged := range []bool{false, true} {
		name := "hedged=false"
		if hedged {
			name = "hedged=true"
		}
		b.Run(name, func(b *testing.B) {
			g := exactsim.GenerateBarabasiAlbert(500, 3, 1)
			members, urls := startFleet(b, g, 2, exactsim.ServiceOptions{
				Workers:        2,
				QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
			})
			opts := manualPollOptions()
			opts.DisableHedging = !hedged
			opts.HedgeMinDelay = 500 * time.Microsecond
			r, err := cluster.New(urls, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(r.Close)

			ctx := context.Background()
			// Warm every replica's result cache for the whole source set —
			// a steady-state fleet converges there via hedges and spills —
			// so a hedge rescue costs a cache hit, not a cold compute.
			for _, m := range members {
				for i := 0; i < 64; i++ {
					if resp := m.svc.Query(ctx, exactsim.Request{Source: exactsim.NodeID(i)}); resp.Err != nil {
						b.Fatal(resp.Err)
					}
				}
			}
			// Then warm the latency tracker on clean routed traffic before
			// arming the straggler.
			for i := 0; i < 64; i++ {
				if resp := r.Query(ctx, exactsim.Request{Source: exactsim.NodeID(i)}); resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
			members[1].gate.delay.Store(int64(stall))
			members[1].gate.delayEvery.Store(stallEvery)

			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := exactsim.NodeID(i % 64)
				start := time.Now()
				if resp := r.Query(ctx, exactsim.Request{Source: src}); resp.Err != nil {
					b.Fatal(resp.Err)
				}
				lat = append(lat, time.Since(start))
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			q := func(p float64) float64 {
				idx := int(p * float64(len(lat)-1))
				return float64(lat[idx].Nanoseconds())
			}
			b.ReportMetric(q(0.50), "p50-ns/op")
			b.ReportMetric(q(0.99), "p99-ns/op")
		})
	}
}
