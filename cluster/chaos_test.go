package cluster_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/cluster"
	"github.com/exactsim/exactsim/httpapi"
	"github.com/exactsim/exactsim/internal/algo"
	"github.com/exactsim/exactsim/internal/fault"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/sparse"
)

// chaosSeeds are the fixed schedules CI replays (ci.yml chaos-smoke).
// Any seed must pass; these three are pinned so a regression reproduces
// with `go test -run FleetChaosConformance/seed=0x2f -race ./cluster`.
var chaosSeeds = []uint64{0x2f, 0xc0ffee, 0x5eed}

// chaosFaultConfig is the standard no-torn-writes schedule: every HTTP
// exchange in the fleet — queries, membership probes, client retries —
// rolls these dice. Roughly one exchange in eight is damaged.
func chaosFaultConfig(seed uint64) fault.Config {
	return fault.Config{
		Seed:          seed,
		LatencyProb:   0.05,
		Latency:       2 * time.Millisecond,
		ResetProb:     0.05,
		Error5xxProb:  0.03,
		ShortBodyProb: 0.03,
		CorruptProb:   0.02,
	}
}

// faultHTTPClient builds the chaos transport: the injector wraps a
// pooled transport clone so the fleet still reuses connections (faults
// come from the schedule, not from port exhaustion).
func faultHTTPClient(inj *fault.Injector) *http.Client {
	base := http.DefaultTransport.(*http.Transport).Clone()
	return &http.Client{Transport: inj.Transport(base)}
}

// TestFleetChaosConformance is the tentpole acceptance test: a
// 3-replica loopback fleet serves concurrent load while a seeded fault
// schedule resets connections, injects 5xx, cuts bodies short and flips
// response bytes on every path (queries AND membership probes). The
// oracle is bit-determinism — every ACCEPTED answer must equal the
// fault-free reference exactly; a single flipped bit that survives into
// an accepted response fails the suite. Availability must stay high
// (the retry/breaker stack absorbs the damage) and no replica may
// record a panic: this schedule contains no panic faults, so any
// recovery would mean fault handling itself is broken.
func TestFleetChaosConformance(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(250, 3, 42)
	svcOpts := exactsim.ServiceOptions{
		Workers: 2,
		QuerierOptions: []exactsim.QuerierOption{
			exactsim.WithEpsilon(0.1), exactsim.WithSeed(1),
		},
	}
	ref, err := exactsim.NewService(g, svcOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%#x", seed), func(t *testing.T) {
			members, urls := startFleet(t, g, 3, svcOpts)
			inj := fault.New(chaosFaultConfig(seed))
			opts := manualPollOptions()
			opts.HTTPClient = faultHTTPClient(inj)
			r, err := cluster.New(urls, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()

			// The bootstrap poll already rode the faulty transport; keep
			// polling until every replica is admitted so the load phase
			// starts from full strength.
			ctx := context.Background()
			for i := 0; i < 50 && r.Stats().HealthyBackends < 3; i++ {
				r.Poll(ctx)
			}
			if st := r.Stats(); st.HealthyBackends == 0 {
				t.Fatal("no replica admitted through the faulty transport")
			}

			const (
				loaders   = 4
				perLoader = 40
				span      = 250
			)
			var accepted, rejected, mismatches atomic.Int64
			var wg sync.WaitGroup
			for l := 0; l < loaders; l++ {
				wg.Add(1)
				go func(l int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(seed) + int64(l)))
					for i := 0; i < perLoader; i++ {
						src := exactsim.NodeID(rng.Intn(span))
						resp := r.Query(ctx, exactsim.Request{Source: src})
						if resp.Err != nil {
							rejected.Add(1)
							continue
						}
						accepted.Add(1)
						want := ref.Query(ctx, exactsim.Request{Source: src})
						if want.Err != nil {
							t.Errorf("reference failed for source %d: %v", src, want.Err)
							return
						}
						if resp.GraphEpoch != want.GraphEpoch {
							mismatches.Add(1)
							t.Errorf("source %d: epoch %d vs %d", src, resp.GraphEpoch, want.GraphEpoch)
							return
						}
						if i, ok := bitEqual(resp.Result.Scores, want.Result.Scores); !ok {
							mismatches.Add(1)
							t.Errorf("source %d: ACCEPTED answer differs from reference at index %d — corruption passed the checks", src, i)
							return
						}
					}
				}(l)
			}
			// Membership churns mid-load, through the same faulty wire.
			for i := 0; i < 3; i++ {
				time.Sleep(20 * time.Millisecond)
				r.Poll(ctx)
			}
			wg.Wait()

			total := accepted.Load() + rejected.Load()
			if mismatches.Load() != 0 {
				t.Fatalf("%d accepted answers were not bit-identical to the reference", mismatches.Load())
			}
			if total != loaders*perLoader {
				t.Fatalf("load accounting: %d of %d", total, loaders*perLoader)
			}
			if float64(accepted.Load()) < 0.9*float64(total) {
				t.Fatalf("availability collapsed: %d/%d accepted under the fault schedule", accepted.Load(), total)
			}
			counts := inj.Counts()
			if counts.Draws == 0 || counts.Resets+counts.Errors5xx+counts.ShortBodies+counts.Corruptions == 0 {
				t.Fatalf("fault schedule fired nothing (%+v) — the run proved nothing", counts)
			}
			var panics int64
			for _, m := range members {
				panics += m.svc.Stats().PanicsRecovered
			}
			if panics != 0 {
				t.Fatalf("%d panics recovered under a no-panic schedule — a fault reached code that cannot handle it", panics)
			}
			t.Logf("seed %#x: accepted %d/%d, faults %s, retries=%d breaker_skips=%d",
				seed, accepted.Load(), total, counts.String(), r.Stats().Retries, r.Stats().BreakerSkips)
		})
	}
}

func bitEqual(a, b []float64) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

// --- panic containment through the fleet -----------------------------

// The cluster test binary registers its own copy of the test-panic
// algorithm (test binaries don't share registries). Disarmed it answers
// a pure function of (source, n) — every replica agrees bit for bit —
// and armed it panics inside the replica's worker.
var (
	panicNextQueries atomic.Int64
	registerPanicAlg sync.Once
)

const panicAlgName = "test-panic"

type panicQuerier struct{ g *graph.Graph }

func (q *panicQuerier) Name() string        { return panicAlgName }
func (q *panicQuerier) Graph() *graph.Graph { return q.g }

func (q *panicQuerier) SingleSource(ctx context.Context, source graph.NodeID) (*algo.Result, error) {
	if panicNextQueries.Load() > 0 && panicNextQueries.Add(-1) >= 0 {
		panic("test-panic: injected query panic")
	}
	start := time.Now()
	scores := make([]float64, q.g.N())
	for i := range scores {
		d := int(source) - i
		if d < 0 {
			d = -d
		}
		scores[i] = 1 / float64(1+d)
	}
	scores[source] = 1
	return &algo.Result{Algorithm: panicAlgName, Scores: scores, QueryTime: time.Since(start)}, nil
}

func (q *panicQuerier) TopK(ctx context.Context, source graph.NodeID, k int) ([]sparse.Entry, *algo.Result, error) {
	res, err := q.SingleSource(ctx, source)
	if err != nil {
		return nil, nil, err
	}
	return sparse.TopK(res.Scores, k, source), res, nil
}

func registerPanicAlgorithm() {
	registerPanicAlg.Do(func() {
		algo.Register(panicAlgName, func(ctx context.Context, g *graph.Graph, cfg algo.Config) (algo.Querier, error) {
			return &panicQuerier{g: g}, nil
		})
	})
}

// TestFleetPanicContainment: a replica-side panic costs the client
// nothing — the replica contains it (CodeInternal + panics_recovered),
// the router sees a retryable code and reroutes, and the caller gets
// the bit-identical answer from the next replica. The aggregated fleet
// stats surface the recovery so chaos runs can assert on it.
func TestFleetPanicContainment(t *testing.T) {
	registerPanicAlgorithm()
	g := exactsim.GenerateBarabasiAlbert(150, 3, 31)
	svcOpts := exactsim.ServiceOptions{Workers: 2}
	members, urls := startFleet(t, g, 2, svcOpts)

	// No client retries and no hedging: the router's replica-level retry
	// must be the thing that absorbs the panic.
	opts := manualPollOptions()
	opts.DisableHedging = true
	opts.ClientRetries = -1
	r, err := cluster.New(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx := context.Background()
	req := exactsim.Request{Algorithm: panicAlgName, Source: 5, NoCache: true}
	base := r.Query(ctx, req)
	if base.Err != nil {
		t.Fatal(base.Err)
	}

	panicNextQueries.Store(1)
	resp := r.Query(ctx, req)
	if resp.Err != nil {
		t.Fatalf("panic was not absorbed by rerouting: %v", resp.Err)
	}
	if i, ok := bitEqual(resp.Result.Scores, base.Result.Scores); !ok {
		t.Fatalf("post-panic answer differs at %d", i)
	}

	var recovered int64
	for _, m := range members {
		recovered += m.svc.Stats().PanicsRecovered
	}
	if recovered < 1 {
		t.Fatal("no replica recorded the recovered panic")
	}
	if st := r.Stats(); st.Retries < 1 {
		t.Fatalf("router retries = %d; the panic answer came from nowhere", st.Retries)
	}

	// The fold-up: a poll refreshes backend stats and the fleet view
	// carries the recovery.
	r.Poll(ctx)
	if fs := r.Stats(); fs.PanicsRecovered < 1 {
		t.Fatalf("aggregated panics_recovered = %d", fs.PanicsRecovered)
	}
	if !strings.Contains(r.Stats().LastPanic, "panic") {
		t.Fatalf("aggregated last_panic = %q", r.Stats().LastPanic)
	}

	// Replicas survived; the whole fleet still answers.
	for src := 0; src < 20; src++ {
		if resp := r.Query(ctx, exactsim.Request{Source: exactsim.NodeID(src)}); resp.Err != nil {
			t.Fatalf("post-panic fleet query %d: %v", src, resp.Err)
		}
	}
}

// TestRouterMalformedBackendResponse is satellite 4: a backend whose
// query responses are wire-garbage — non-JSON bytes or a truncated JSON
// prefix, both with status 200 — must read as a retryable transport
// error. The router reroutes to the intact replica and the caller never
// sees a failure; pointing a raw no-retry client at the garbling
// backend yields an error, not a parse panic or a half-decoded answer.
func TestRouterMalformedBackendResponse(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(200, 3, 37)
	svcOpts := exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	}
	members, urls := startFleet(t, g, 2, svcOpts)

	opts := manualPollOptions()
	opts.DisableHedging = true
	opts.ClientRetries = -1
	opts.BreakerThreshold = -1 // isolate the retry path from breaker masking
	r, err := cluster.New(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()

	for mode := int32(1); mode <= 2; mode++ {
		members[0].gate.garbleMode.Store(mode)
		for src := 0; src < 40; src++ {
			resp := r.Query(ctx, exactsim.Request{Source: exactsim.NodeID(src)})
			if resp.Err != nil {
				t.Fatalf("mode %d source %d: garbled backend cost an answer: %v", mode, src, resp.Err)
			}
		}
	}
	if st := r.Stats(); st.Retries == 0 {
		t.Fatal("no retries recorded — the garbling backend was never even tried")
	}

	// Raw client, no retries: the garble surfaces as a plain error.
	c, err := httpapi.NewClient(urls[0], httpapi.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	members[0].gate.garbleMode.Store(1)
	if _, err := c.Query(ctx, exactsim.Request{Source: 3}); err == nil {
		t.Fatal("non-JSON 200 decoded as a success")
	}
	members[0].gate.garbleMode.Store(2)
	if _, err := c.Query(ctx, exactsim.Request{Source: 3}); err == nil {
		t.Fatal("truncated JSON 200 decoded as a success")
	}
	members[0].gate.garbleMode.Store(0)
}

// TestRouterFailOpenWhenAllEjected pins panic routing: when every
// backend is poll-ejected, the health verdict is suspect — the prober
// rides the same network as the queries, and chaos that blinds it must
// not blind the data path. The router walks the ring anyway (counted in
// FailOpenPicks) and the answer is bit-identical to the healthy
// baseline; when the backends really are down, fail-open still fails —
// it trades a guaranteed error for an attempt, never for a wrong bit.
func TestRouterFailOpenWhenAllEjected(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(200, 3, 7)
	members, urls := startFleet(t, g, 2, exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	})
	opts := manualPollOptions()
	opts.DisableHedging = true
	opts.ClientRetries = -1
	r, err := cluster.New(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx := context.Background()

	ref := r.Query(ctx, exactsim.Request{Source: 3})
	if ref.Err != nil {
		t.Fatalf("baseline: %v", ref.Err)
	}

	// Blind the prober: two failed polls eject both replicas...
	for _, m := range members {
		m.gate.down.Store(true)
	}
	r.Poll(ctx)
	r.Poll(ctx)
	if st := r.Stats(); st.HealthyBackends != 0 {
		t.Fatalf("want 0 healthy after failed polls, got %d", st.HealthyBackends)
	}
	// ...but the replicas themselves are fine. Fail-open must serve.
	for _, m := range members {
		m.gate.down.Store(false)
	}
	resp := r.Query(ctx, exactsim.Request{Source: 3})
	if resp.Err != nil {
		t.Fatalf("fail-open query with 0 healthy backends: %v", resp.Err)
	}
	if at, ok := bitEqual(resp.Result.Scores, ref.Result.Scores); !ok {
		t.Fatalf("fail-open answer not bit-identical to healthy baseline (index %d)", at)
	}
	st := r.Stats()
	if st.FailOpenPicks == 0 {
		t.Fatal("no fail-open pick recorded")
	}
	if st.HealthyBackends != 0 {
		t.Fatalf("membership must stay ejected until a clean poll, got %d healthy", st.HealthyBackends)
	}

	// Truly-down backends: fail-open attempts and fails — no silent hang,
	// no fabricated answer.
	for _, m := range members {
		m.gate.down.Store(true)
	}
	if resp := r.Query(ctx, exactsim.Request{Source: 5}); resp.Err == nil {
		t.Fatal("fail-open against truly-down backends answered")
	}

	// One clean poll re-admits and fail-open steps aside.
	for _, m := range members {
		m.gate.down.Store(false)
	}
	r.Poll(ctx)
	if st := r.Stats(); st.HealthyBackends != 2 {
		t.Fatalf("want 2 healthy after clean poll, got %d", st.HealthyBackends)
	}
	before := r.Stats().FailOpenPicks
	if resp := r.Query(ctx, exactsim.Request{Source: 3}); resp.Err != nil {
		t.Fatalf("post-recovery query: %v", resp.Err)
	}
	if after := r.Stats().FailOpenPicks; after != before {
		t.Fatalf("healthy fleet still picking fail-open (%d -> %d)", before, after)
	}
}
