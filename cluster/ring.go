package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over backend indices. Each backend owns
// Vnodes points on the ring; a query key (the source node) walks the ring
// clockwise from its hash and yields each *distinct* backend once, in a
// stable preference order. Source affinity is the point: the same source
// lands on the same replica across queries (maximizing that replica's
// diagonal sample index hit rate for the chunks its touched nodes need),
// and adding or removing one replica remaps only ~1/N of the key space
// instead of reshuffling everything.
type ring struct {
	hashes []uint64 // sorted point hashes
	owners []int    // owners[i] = backend index owning hashes[i]
	n      int      // distinct backend count
}

// buildRing places vnodes points per id. The ids are hashed by name (the
// backend URL), not by slice position, so membership changes move as few
// keys as possible.
func buildRing(ids []string, vnodes int) *ring {
	r := &ring{
		hashes: make([]uint64, 0, len(ids)*vnodes),
		owners: make([]int, 0, len(ids)*vnodes),
		n:      len(ids),
	}
	type point struct {
		h     uint64
		owner int
	}
	pts := make([]point, 0, len(ids)*vnodes)
	for i, id := range ids {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, point{h: pointHash(id, v), owner: i})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].h != pts[b].h {
			return pts[a].h < pts[b].h
		}
		// Ties (vanishingly rare) break by owner so the ring is a pure
		// function of the membership set.
		return pts[a].owner < pts[b].owner
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.owners = append(r.owners, p.owner)
	}
	return r
}

// candidates appends to out the distinct backend indices in ring order
// starting at key's successor point — the full routing preference order
// for this key. len(out) == r.n afterwards.
func (r *ring) candidates(key uint64, out []int) []int {
	if r.n == 0 || len(r.hashes) == 0 {
		return out
	}
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= key })
	seen := make([]bool, r.n)
	found := 0
	for i := 0; i < len(r.hashes) && found < r.n; i++ {
		owner := r.owners[(start+i)%len(r.hashes)]
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
			found++
		}
	}
	return out
}

// pointHash hashes one (backend id, virtual node) ring point.
func pointHash(id string, vnode int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{'#'})
	h.Write([]byte(strconv.Itoa(vnode)))
	return h.Sum64()
}

// keyHash spreads a source node id over the ring's key space. Source ids
// are small dense integers; splitmix64's finalizer turns them into
// uniform 64-bit keys so consecutive sources don't clump on one arc.
func keyHash(source int64) uint64 {
	z := uint64(source) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
