package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	exactsim "github.com/exactsim/exactsim"
)

// Router fans SimRank queries across a fleet of exactsimd backends. It
// implements exactsim.Querier (like httpapi.Client does), so a fleet
// slots in anywhere one replica did. Routing is consistent-hash by
// source with bounded-load spill; failures retry on the next ring
// candidate; stragglers are hedged on a second replica (safe: replicas
// answer bit-identically); saturated replicas are shed. Router is safe
// for concurrent use.
type Router struct {
	opts Options

	// mu guards the membership slice + ring (rebuilt by Add/Remove).
	mu       sync.RWMutex
	backends []*backend
	ring     *ring

	// pollMu serializes Poll cycles (ticker vs. manual calls).
	pollMu   sync.Mutex
	pollCtx  context.Context
	pollStop context.CancelFunc
	pollWG   sync.WaitGroup

	tracker *latencyTracker

	// hedgeBudget bounds hedge launches to ~HedgeBudgetRatio of
	// successful traffic so hedging cannot amplify a fleet-wide overload
	// (see hedge.go).
	hedgeBudget *hedgeBudget

	clientCfg httpapiClientConfig

	// Router-level counters (fleet stats).
	queries         atomic.Int64
	errors          atomic.Int64
	retries         atomic.Int64
	hedged          atomic.Int64
	hedgeWins       atomic.Int64
	hedgeSuppressed atomic.Int64
	shed            atomic.Int64
	breakerSkips    atomic.Int64
	failOpen        atomic.Int64
}

// New builds a router over the given backend base URLs and runs one
// synchronous membership poll, so backends that are already up are
// routable before the first query. The background poller starts unless
// Options.PollInterval is negative.
func New(backendURLs []string, opts Options) (*Router, error) {
	if len(backendURLs) == 0 {
		return nil, exactsim.Errorf(exactsim.CodeInvalidArgument, "cluster: no backends")
	}
	opts.normalize()
	r := &Router{
		opts:        opts,
		tracker:     newLatencyTracker(),
		hedgeBudget: newHedgeBudget(opts.HedgeBudgetRatio, opts.HedgeBudgetBurst),
		clientCfg:   httpapiClientConfig{hc: opts.HTTPClient, retries: opts.ClientRetries},
	}
	seen := make(map[string]bool, len(backendURLs))
	for _, u := range backendURLs {
		if seen[u] {
			return nil, exactsim.Errorf(exactsim.CodeInvalidArgument, "cluster: duplicate backend %s", u)
		}
		seen[u] = true
		b, err := newBackend(u, &r.clientCfg)
		if err != nil {
			return nil, err
		}
		r.backends = append(r.backends, b)
	}
	r.rebuildRingLocked()

	r.pollCtx, r.pollStop = context.WithCancel(context.Background())
	pctx, cancel := context.WithTimeout(r.pollCtx, r.opts.PollTimeout)
	r.Poll(pctx)
	cancel()
	if r.opts.PollInterval > 0 {
		r.pollWG.Add(1)
		go r.pollLoop()
	}
	return r, nil
}

// Close stops the membership poller. In-flight queries finish.
func (r *Router) Close() {
	r.pollStop()
	r.pollWG.Wait()
}

// Add joins a backend to the fleet. It starts unhealthy until a poll
// admits it; call Poll (or wait a poll interval) to route to it.
func (r *Router) Add(url string) error {
	b, err := newBackend(url, &r.clientCfg)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.backends {
		if have.url == url {
			return exactsim.Errorf(exactsim.CodeInvalidArgument, "cluster: backend already present: %s", url)
		}
	}
	r.backends = append(r.backends, b)
	r.rebuildRingLocked()
	return nil
}

// Remove drops a backend from the fleet; its keys remap to their next
// ring candidates. Queries already on the wire to it finish.
func (r *Router) Remove(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, b := range r.backends {
		if b.url == url {
			r.backends = append(r.backends[:i], r.backends[i+1:]...)
			r.rebuildRingLocked()
			return true
		}
	}
	return false
}

// rebuildRingLocked re-derives the hash ring from the current member
// URLs; callers hold r.mu.
func (r *Router) rebuildRingLocked() {
	ids := make([]string, len(r.backends))
	for i, b := range r.backends {
		ids[i] = b.url
	}
	r.ring = buildRing(ids, r.opts.Vnodes)
}

// snapshot returns the current membership slice (immutable once taken —
// Add/Remove replace the slice).
func (r *Router) snapshot() []*backend {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.backends
}

// errFleetSaturated distinguishes "every healthy replica is shedding"
// from "no healthy replica at all" in pick's error path.
var errFleetSaturated = errors.New("cluster: fleet saturated")

// errBreakersOpen means every healthy replica's circuit breaker is open:
// transports are flapping fleet-wide and the cooldown window has not
// elapsed. Callers see CodeUnavailable either way; the distinct text is
// for operators.
var errBreakersOpen = errors.New("cluster: all replica circuit breakers open")

// priorityRank maps a request's overload class onto the queue rank the
// shed thresholds scale by (0 = interactive). Unknown classes rank as
// interactive here — the backend rejects them as invalid_argument, and
// mis-shedding a doomed request would hide that error.
func priorityRank(p exactsim.Priority) int {
	switch p {
	case exactsim.PriorityBatch:
		return 1
	case exactsim.PriorityBackground:
		return 2
	}
	return 0
}

// pick returns this query's replica preference order: ring candidates
// for the source, healthy only, saturated replicas shed, and the list
// stably partitioned so under-bounded-load replicas come first. The
// primary (first element) is therefore the source's ring owner unless
// that owner is currently over its load bound, in which case the next
// arc takes this query — bounded-load rebalancing. Saturation is
// class-aware via rank: lower classes see tighter shed thresholds, so
// background traffic stops reaching a filling replica before batch
// does, and batch before interactive.
func (r *Router) pick(source exactsim.NodeID, rank int) ([]*backend, error) {
	r.mu.RLock()
	backends := r.backends
	ring := r.ring
	r.mu.RUnlock()

	order := ring.candidates(keyHash(int64(source)), make([]int, 0, len(backends)))
	healthy := 0
	broken := 0
	now := time.Now()
	var total int64
	eligible := make([]*backend, 0, len(order))
	for _, idx := range order {
		b := backends[idx]
		if !b.healthy.Load() {
			continue
		}
		healthy++
		total += b.inflight.Load()
		// An open breaker skips the replica without burning an attempt —
		// blocked() is non-mutating, so scanning never claims the
		// half-open probe slot (tryOne's acquire does that).
		if r.opts.breakerEnabled() && b.brk.blocked(now, r.opts.BreakerCooldown) {
			broken++
			r.breakerSkips.Add(1)
			continue
		}
		if b.saturated(&r.opts, rank) {
			continue
		}
		eligible = append(eligible, b)
	}
	if healthy == 0 {
		// Fail open (panic routing): every backend is poll-ejected, so the
		// health verdict itself is the suspect — the prober rides the same
		// network the queries do, and a fault that blinds it must not
		// blind the data path. A query with zero candidates is a
		// guaranteed error; optimistically walking the ring costs one
		// attempt against a possibly-dead backend and rescues the case
		// where only the probes are failing. Breaker-open backends stay
		// excluded: their verdict comes from real query traffic, not
		// probes.
		for _, idx := range order {
			b := backends[idx]
			if r.opts.breakerEnabled() && b.brk.blocked(now, r.opts.BreakerCooldown) {
				r.breakerSkips.Add(1)
				continue
			}
			eligible = append(eligible, b)
		}
		if len(eligible) == 0 {
			return nil, errBreakersOpen
		}
		r.failOpen.Add(1)
		return eligible, nil
	}
	if len(eligible) == 0 {
		if broken == healthy {
			return nil, errBreakersOpen
		}
		return nil, errFleetSaturated
	}
	// Bounded load: cap any replica at factor × fleet mean (+1 so a
	// near-idle fleet never blocks its own primary). Stable partition
	// keeps ring order within each class.
	bound := int64(r.opts.BoundedLoadFactor*float64(total)/float64(healthy)) + 1
	under := make([]*backend, 0, len(eligible))
	var over []*backend
	for _, b := range eligible {
		if b.inflight.Load() <= bound {
			under = append(under, b)
		} else {
			over = append(over, b)
		}
	}
	return append(under, over...), nil
}

// Query answers one request through the fleet. The response is exactly
// what the owning backend produced (epoch, cache-hit flag, structured
// error); router-level failures (no capacity, no health) surface as
// CodeUnavailable, matching what a single saturated replica would say.
func (r *Router) Query(ctx context.Context, req exactsim.Request) exactsim.Response {
	r.queries.Add(1)
	resp := r.route(ctx, req)
	if resp.Err != nil {
		r.errors.Add(1)
	}
	return resp
}

func (r *Router) route(ctx context.Context, req exactsim.Request) exactsim.Response {
	// Expired on arrival: a query whose deadline is already gone must
	// not spend a candidate walk, let alone wire attempts.
	if err := ctx.Err(); err != nil {
		return exactsim.Response{Request: req, Err: exactsim.ToError(err)}
	}
	cands, err := r.pick(req.Source, priorityRank(req.Priority))
	if err != nil {
		return exactsim.Response{Request: req, Err: r.pickError(err)}
	}
	if len(cands) > r.opts.MaxAttempts {
		cands = cands[:r.opts.MaxAttempts]
	}
	return r.race(ctx, cands, req)
}

// pickError converts a pick failure into the wire unavailable, counting
// sheds and stamping the retry_after_ms hint: a saturated fleet's state
// is refreshed by the next poll, an open breaker by its cooldown —
// retrying sooner than either can only find the same answer.
func (r *Router) pickError(err error) *exactsim.Error {
	e := exactsim.Errorf(exactsim.CodeUnavailable, "%s", err.Error())
	switch {
	case errors.Is(err, errFleetSaturated):
		r.shed.Add(1)
		e.WithRetryAfter(r.opts.PollInterval)
	case errors.Is(err, errBreakersOpen):
		e.WithRetryAfter(r.opts.BreakerCooldown)
	}
	return e
}

// tryResult is one replica attempt's outcome.
type tryResult struct {
	resp      exactsim.Response
	retryable bool
	hedge     bool // launched by the hedge timer
	latency   time.Duration
}

// race runs the attempt loop for one query: launch on the primary; on
// failure, retry the next candidate; if the attempt outlives the hedge
// delay, race the next candidate concurrently and take the first
// answer. Losing attempts are cancelled. Replica determinism is what
// makes taking "whichever answered first" sound: both would have
// returned bit-identical scores.
func (r *Router) race(ctx context.Context, cands []*backend, req exactsim.Request) exactsim.Response {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan tryResult, len(cands))
	next := 0
	outstanding := 0
	launch := func(hedge bool) bool {
		if next >= len(cands) {
			return false
		}
		b := cands[next]
		next++
		outstanding++
		go func() {
			results <- r.tryOne(rctx, b, req, hedge)
		}()
		return true
	}
	launch(false)

	var hedgeC <-chan time.Time
	var hedgeTimer *time.Timer
	if !r.opts.DisableHedging && len(cands) > 1 {
		if d, ok := r.hedgeDelay(); ok {
			hedgeTimer = time.NewTimer(d)
			defer hedgeTimer.Stop()
			hedgeC = hedgeTimer.C
		}
	}

	var last exactsim.Response
	for {
		select {
		case <-ctx.Done():
			return exactsim.Response{Request: req, Err: exactsim.ToError(ctx.Err())}
		case <-hedgeC:
			hedgeC = nil
			// The timer only says this attempt is a straggler; the budget
			// says whether the fleet can afford a speculative double-send.
			// When recent traffic has not banked enough successes, the
			// hedge is suppressed and the primary rides out alone.
			if !r.hedgeBudget.spend() {
				r.hedgeSuppressed.Add(1)
				continue
			}
			if launch(true) {
				r.hedged.Add(1)
			}
		case res := <-results:
			outstanding--
			if !res.retryable {
				if res.resp.Err == nil {
					r.tracker.record(res.latency)
					if res.hedge {
						r.hedgeWins.Add(1)
					} else {
						r.hedgeBudget.earn()
					}
				}
				return res.resp
			}
			last = res.resp
			// A failed attempt immediately claims the next candidate —
			// no reason to wait for the hedge timer to do it.
			if launch(false) {
				r.retries.Add(1)
				continue
			}
			if outstanding == 0 {
				return last
			}
		}
	}
}

// tryOne sends req to b once. Transport failures and retryable protocol
// codes (unavailable, closed, internal) report retryable; everything
// else — success, invalid_argument, not_found, deadline — is final.
// The breaker brackets the exchange: acquire gates the send (arbitrating
// the half-open probe), and the transport outcome feeds back — except
// when ctx was cancelled, because a hedge loser's abort says nothing
// about the replica's transport and must not trip its breaker.
func (r *Router) tryOne(ctx context.Context, b *backend, req exactsim.Request, hedge bool) tryResult {
	if r.opts.breakerEnabled() && !b.brk.acquire(time.Now(), r.opts.BreakerCooldown) {
		// Raced open between pick and send (or lost the half-open probe
		// slot): fail fast without touching the wire.
		r.breakerSkips.Add(1)
		return tryResult{
			resp: exactsim.Response{Request: req,
				Err: exactsim.Errorf(exactsim.CodeUnavailable, "cluster: %s: circuit breaker open", b.url)},
			retryable: ctx.Err() == nil,
			hedge:     hedge,
		}
	}
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	start := time.Now()
	resp, err := b.client.Query(ctx, req)
	lat := time.Since(start)
	if err != nil {
		// Transport failure (dial refused, connection cut mid-body, or
		// our own cancellation when another attempt already won).
		if r.opts.breakerEnabled() && ctx.Err() == nil {
			b.brk.result(false, r.opts.BreakerThreshold, time.Now())
		}
		return tryResult{
			resp: exactsim.Response{Request: req,
				Err: exactsim.Errorf(exactsim.CodeUnavailable, "cluster: %s: %v", b.url, err)},
			retryable: ctx.Err() == nil,
			hedge:     hedge,
			latency:   lat,
		}
	}
	// Any decoded protocol response — success or error — proves the
	// transport works.
	if r.opts.breakerEnabled() {
		b.brk.result(true, r.opts.BreakerThreshold, time.Now())
	}
	if resp.Err != nil && retryableCode(resp.Err.Code) && ctx.Err() == nil {
		return tryResult{resp: resp, retryable: true, hedge: hedge, latency: lat}
	}
	return tryResult{resp: resp, hedge: hedge, latency: lat}
}

// retryableCode reports whether another replica could plausibly answer
// where this one refused. Deadline/cancel are the caller's own bounds;
// invalid_argument and not_found would fail identically everywhere.
func retryableCode(c exactsim.ErrorCode) bool {
	switch c {
	case exactsim.CodeUnavailable, exactsim.CodeClosed, exactsim.CodeInternal:
		return true
	}
	return false
}

// hedgeDelay is the tracked HedgeQuantile latency clamped to the
// [HedgeMinDelay, HedgeMaxDelay] window; false until the tracker has
// seen enough traffic to define a straggler.
func (r *Router) hedgeDelay() (time.Duration, bool) {
	d, ok := r.tracker.quantile(r.opts.HedgeQuantile)
	if !ok {
		return 0, false
	}
	if d < r.opts.HedgeMinDelay {
		d = r.opts.HedgeMinDelay
	}
	if d > r.opts.HedgeMaxDelay {
		d = r.opts.HedgeMaxDelay
	}
	return d, true
}

// QueryStream answers one request through the fleet as a refinement
// stream: emit receives each intermediate record as its replica produces
// it, and the returned Response is the terminal answer — bit-identical
// to what Query would return for the same request. Streams are never
// hedged (two replicas would double-deliver refinements) and retry on
// the next ring candidate only while nothing has reached emit yet; once
// a refinement is out, replaying the ladder from another replica would
// hand the caller the same tiers twice, so a later failure is final.
func (r *Router) QueryStream(ctx context.Context, req exactsim.Request, emit func(exactsim.Response)) exactsim.Response {
	r.queries.Add(1)
	resp := r.routeStream(ctx, req, emit)
	if resp.Err != nil {
		r.errors.Add(1)
	}
	return resp
}

func (r *Router) routeStream(ctx context.Context, req exactsim.Request, emit func(exactsim.Response)) exactsim.Response {
	if emit == nil {
		emit = func(exactsim.Response) {}
	}
	if err := ctx.Err(); err != nil {
		return exactsim.Response{Request: req, Err: exactsim.ToError(err)}
	}
	cands, err := r.pick(req.Source, priorityRank(req.Priority))
	if err != nil {
		return exactsim.Response{Request: req, Err: r.pickError(err)}
	}
	if len(cands) > r.opts.MaxAttempts {
		cands = cands[:r.opts.MaxAttempts]
	}
	var last exactsim.Response
	for i, b := range cands {
		emitted := false
		res := r.tryOneStream(ctx, b, req, func(rec exactsim.Response) {
			emitted = true
			emit(rec)
		})
		if !res.retryable || emitted {
			if res.resp.Err == nil {
				r.tracker.record(res.latency)
			}
			return res.resp
		}
		last = res.resp
		if i+1 < len(cands) {
			r.retries.Add(1)
		}
	}
	return last
}

// tryOneStream is tryOne for the streaming endpoint: same breaker
// bracketing and retryability classification, no hedge accounting.
func (r *Router) tryOneStream(ctx context.Context, b *backend, req exactsim.Request, emit func(exactsim.Response)) tryResult {
	if r.opts.breakerEnabled() && !b.brk.acquire(time.Now(), r.opts.BreakerCooldown) {
		r.breakerSkips.Add(1)
		return tryResult{
			resp: exactsim.Response{Request: req,
				Err: exactsim.Errorf(exactsim.CodeUnavailable, "cluster: %s: circuit breaker open", b.url)},
			retryable: ctx.Err() == nil,
		}
	}
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	start := time.Now()
	resp, err := b.client.QueryStream(ctx, req, emit)
	lat := time.Since(start)
	if err != nil {
		if r.opts.breakerEnabled() && ctx.Err() == nil {
			b.brk.result(false, r.opts.BreakerThreshold, time.Now())
		}
		return tryResult{
			resp: exactsim.Response{Request: req,
				Err: exactsim.Errorf(exactsim.CodeUnavailable, "cluster: %s: %v", b.url, err)},
			retryable: ctx.Err() == nil,
			latency:   lat,
		}
	}
	if r.opts.breakerEnabled() {
		b.brk.result(true, r.opts.BreakerThreshold, time.Now())
	}
	if resp.Err != nil && retryableCode(resp.Err.Code) && ctx.Err() == nil {
		return tryResult{resp: resp, retryable: true, latency: lat}
	}
	return tryResult{resp: resp, latency: lat}
}

// Batch answers many requests through the fleet, responses aligned with
// requests by index. Requests are grouped by their primary replica and
// shipped as per-replica sub-batches (one round trip each); a sub-batch
// whose transport fails falls back to routing its members individually,
// which re-enters the retry/hedge path.
func (r *Router) Batch(ctx context.Context, reqs []exactsim.Request) []exactsim.Response {
	out := make([]exactsim.Response, len(reqs))
	groups := make(map[*backend][]int)
	for i, req := range reqs {
		cands, err := r.pick(req.Source, priorityRank(req.Priority))
		if err != nil {
			r.queries.Add(1)
			r.errors.Add(1)
			out[i] = exactsim.Response{Request: req, Err: r.pickError(err)}
			continue
		}
		groups[cands[0]] = append(groups[cands[0]], i)
	}
	var wg sync.WaitGroup
	for b, idxs := range groups {
		wg.Add(1)
		go func(b *backend, idxs []int) {
			defer wg.Done()
			sub := make([]exactsim.Request, len(idxs))
			for j, i := range idxs {
				sub[j] = reqs[i]
			}
			b.inflight.Add(int64(len(idxs)))
			resps, err := b.client.Batch(ctx, sub)
			b.inflight.Add(-int64(len(idxs)))
			if err == nil && len(resps) == len(idxs) {
				for j, i := range idxs {
					out[i] = resps[j]
					r.queries.Add(1)
					if out[i].Err != nil {
						r.errors.Add(1)
					}
				}
				return
			}
			// The whole sub-batch transport failed (replica died between
			// pick and send): route each member individually — Query's
			// retry path finds the next candidates.
			for _, i := range idxs {
				out[i] = r.Query(ctx, reqs[i])
			}
		}(b, idxs)
	}
	wg.Wait()
	return out
}

// Warm fans a warm request to every healthy replica — each fills its own
// diagonal sample index (sources it will own plus shared hub cells) —
// and sums the outcomes. GraphEpoch reports the fleet max afterwards.
func (r *Router) Warm(ctx context.Context, wr exactsim.WarmRequest) exactsim.WarmResponse {
	backends := r.snapshot()
	var (
		mu  sync.Mutex
		out exactsim.WarmResponse
		wg  sync.WaitGroup
		any bool
	)
	for _, b := range backends {
		if !b.healthy.Load() {
			continue
		}
		any = true
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			resp, err := b.client.Warm(ctx, wr)
			mu.Lock()
			defer mu.Unlock()
			if err != nil || resp.Err != nil {
				out.Failed++
				return
			}
			out.Warmed += resp.Warmed
			out.Failed += resp.Failed
			if resp.GraphEpoch > out.GraphEpoch {
				out.GraphEpoch = resp.GraphEpoch
			}
		}(b)
	}
	wg.Wait()
	if !any {
		out.Err = exactsim.Errorf(exactsim.CodeUnavailable, "cluster: no healthy backends")
	}
	return out
}

// SingleSource implements exactsim.Querier over the fleet.
func (r *Router) SingleSource(ctx context.Context, source exactsim.NodeID) (*exactsim.QueryResult, error) {
	resp := r.Query(ctx, exactsim.Request{Source: source})
	if resp.Err != nil {
		return nil, resp.Err
	}
	return resp.Result, nil
}

// TopK implements exactsim.Querier over the fleet.
func (r *Router) TopK(ctx context.Context, source exactsim.NodeID, k int) ([]exactsim.Entry, *exactsim.QueryResult, error) {
	if k <= 0 {
		return nil, nil, exactsim.Errorf(exactsim.CodeInvalidArgument, "cluster: k %d not positive", k)
	}
	resp := r.Query(ctx, exactsim.Request{Source: source, K: k})
	if resp.Err != nil {
		return nil, nil, resp.Err
	}
	return resp.TopK, resp.Result, nil
}

// Name implements exactsim.Querier; the fleet answers with its backends'
// default algorithm, which the router does not re-declare.
func (r *Router) Name() string { return "cluster" }

// Graph implements exactsim.Querier: like httpapi.Client, the remote
// graph is not materialized router-side.
func (r *Router) Graph() *exactsim.Graph { return nil }
