package cluster_test

import (
	"context"
	"strings"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/cluster"
)

// breakerFleetOptions: manual polls, no hedging, no client-level retries
// — each router attempt is exactly one HTTP exchange, so the breaker's
// failure count maps 1:1 to failed attempts and the tests are
// deterministic.
func breakerFleetOptions(threshold int, cooldown time.Duration) cluster.Options {
	opts := manualPollOptions()
	opts.DisableHedging = true
	opts.ClientRetries = -1
	opts.BreakerThreshold = threshold
	opts.BreakerCooldown = cooldown
	return opts
}

func victimState(t *testing.T, r *cluster.Router, url string) (cluster.BackendStats, cluster.FleetStats) {
	t.Helper()
	st := r.Stats()
	for _, b := range st.Backends {
		if b.URL == url {
			return b, st
		}
	}
	t.Fatalf("backend %s missing from fleet stats", url)
	return cluster.BackendStats{}, st
}

// tripBreaker sends queries across a source spread until the victim's
// breaker reports open. Every query must still succeed — the point of
// the breaker is that the surviving replica absorbs the traffic.
func tripBreaker(t *testing.T, r *cluster.Router, victimURL string) {
	t.Helper()
	ctx := context.Background()
	for src := 0; src < 120; src++ {
		resp := r.Query(ctx, exactsim.Request{Source: exactsim.NodeID(src)})
		if resp.Err != nil {
			t.Fatalf("source %d lost while breaker forming: %v", src, resp.Err)
		}
		if bs, _ := victimState(t, r, victimURL); bs.BreakerState == "open" {
			return
		}
	}
	t.Fatal("breaker never opened across 120 queries against a dead backend")
}

// TestRouterBreakerTripsAndPollRecovery: a flapping replica (membership
// still healthy — polls are withheld) trips its circuit breaker after
// BreakerThreshold consecutive transport failures; while open, queries
// skip it at pick() time instead of burning a failed attempt, and the
// rest of the fleet answers everything. A clean membership poll then
// closes the breaker immediately — long before the 10s cooldown — so a
// re-admitted replica is not benched twice.
func TestRouterBreakerTripsAndPollRecovery(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(200, 3, 21)
	svcOpts := exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	}
	members, urls := startFleet(t, g, 2, svcOpts)

	r, err := cluster.New(urls, breakerFleetOptions(3, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.HealthyBackends != 2 {
		t.Fatalf("precondition: %d healthy backends", st.HealthyBackends)
	}

	const victim = 1
	members[victim].gate.down.Store(true)
	tripBreaker(t, r, urls[victim])

	bs, fs := victimState(t, r, urls[victim])
	if !bs.Healthy {
		t.Fatal("breaker test leaked into membership: victim ejected without a poll")
	}
	if bs.BreakerTrips < 1 || fs.BreakerTrips < 1 {
		t.Fatalf("trips not counted: backend=%d fleet=%d", bs.BreakerTrips, fs.BreakerTrips)
	}

	// With the breaker open, traffic flows without failed attempts:
	// pick() skips the victim outright.
	ctx := context.Background()
	skipsBefore := fs.BreakerSkips
	servedBefore := members[victim].svc.Stats().Queries
	for src := 0; src < 40; src++ {
		if resp := r.Query(ctx, exactsim.Request{Source: exactsim.NodeID(src)}); resp.Err != nil {
			t.Fatalf("source %d with breaker open: %v", src, resp.Err)
		}
	}
	bs, fs = victimState(t, r, urls[victim])
	if bs.BreakerState != "open" {
		t.Fatalf("breaker state %q mid-cooldown, want open", bs.BreakerState)
	}
	if fs.BreakerSkips <= skipsBefore {
		t.Fatal("open breaker never skipped the victim at pick() time")
	}
	if served := members[victim].svc.Stats().Queries; served != servedBefore {
		t.Fatalf("victim served %d queries through an open breaker", served-servedBefore)
	}

	// The replica recovers and a clean poll re-proves the transport: the
	// breaker must close NOW, not after the 10s cooldown.
	members[victim].gate.down.Store(false)
	r.Poll(ctx)
	bs, _ = victimState(t, r, urls[victim])
	if bs.BreakerState != "closed" {
		t.Fatalf("breaker state %q after clean poll, want closed", bs.BreakerState)
	}
	for src := 0; src < 60; src++ {
		if resp := r.Query(ctx, exactsim.Request{Source: exactsim.NodeID(src)}); resp.Err != nil {
			t.Fatalf("source %d after recovery: %v", src, resp.Err)
		}
	}
	if members[victim].svc.Stats().Queries == servedBefore {
		t.Fatal("recovered victim received no traffic")
	}
}

// TestRouterBreakerHalfOpenRecovery: with no membership poll at all, an
// open breaker recovers through its own half-open probe — cooldown
// elapses, one query is allowed through, it succeeds, the breaker
// closes, and traffic returns to the replica.
func TestRouterBreakerHalfOpenRecovery(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(200, 3, 23)
	svcOpts := exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	}
	members, urls := startFleet(t, g, 2, svcOpts)

	const cooldown = 150 * time.Millisecond
	r, err := cluster.New(urls, breakerFleetOptions(3, cooldown))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const victim = 0
	members[victim].gate.down.Store(true)
	tripBreaker(t, r, urls[victim])
	servedBefore := members[victim].svc.Stats().Queries

	// Replica comes back; NO poll happens. After the cooldown the next
	// query owned by the victim rides the half-open probe and closes it.
	members[victim].gate.down.Store(false)
	time.Sleep(cooldown + 50*time.Millisecond)

	ctx := context.Background()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for src := 0; src < 40; src++ {
			if resp := r.Query(ctx, exactsim.Request{Source: exactsim.NodeID(src)}); resp.Err != nil {
				t.Fatalf("source %d during half-open recovery: %v", src, resp.Err)
			}
		}
		if bs, _ := victimState(t, r, urls[victim]); bs.BreakerState == "closed" {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	bs, _ := victimState(t, r, urls[victim])
	if bs.BreakerState != "closed" {
		t.Fatalf("breaker state %q, probe recovery never closed it", bs.BreakerState)
	}
	if members[victim].svc.Stats().Queries == servedBefore {
		t.Fatal("victim served nothing after half-open recovery")
	}
}

// TestRouterAllBreakersOpen: when every healthy replica's breaker is
// open the router answers unavailable immediately with the distinct
// breaker message — operators can tell "fleet-wide transport flap" from
// "fleet saturated" in one glance.
func TestRouterAllBreakersOpen(t *testing.T) {
	g := exactsim.GenerateBarabasiAlbert(150, 3, 29)
	svcOpts := exactsim.ServiceOptions{
		Workers:        2,
		QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
	}
	members, urls := startFleet(t, g, 1, svcOpts)

	r, err := cluster.New(urls, breakerFleetOptions(3, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx := context.Background()
	members[0].gate.down.Store(true)
	// Three failed attempts trip the only breaker; these queries fail
	// with the transport error (there is no second replica to absorb).
	for i := 0; i < 3; i++ {
		if resp := r.Query(ctx, exactsim.Request{Source: 1}); resp.Err == nil {
			t.Fatal("query against the dead sole replica succeeded")
		}
	}
	resp := r.Query(ctx, exactsim.Request{Source: 1})
	if resp.Err == nil || resp.Err.Code != exactsim.CodeUnavailable {
		t.Fatalf("want unavailable, got %+v", resp)
	}
	if !strings.Contains(resp.Err.Error(), "circuit breakers open") {
		t.Fatalf("error %q does not carry the breaker diagnosis", resp.Err)
	}
	if st := r.Stats(); st.Shed != 0 {
		t.Fatalf("breaker rejection miscounted as shed (%d)", st.Shed)
	}
}
