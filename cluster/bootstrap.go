package cluster

import (
	"context"
	"os"
	"path/filepath"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/httpapi"
)

// CloneFromPeer bootstraps a joining replica's state: it downloads the
// snapshot container — graph CSR plus spilled diagonal sample index —
// from a warm peer (an exactsimd, or a router which proxies its warmest
// replica) and writes it to path atomically. Boot the new replica with
// `exactsimd -snapshot <path>` (or exactsim.OpenSnapshot) and it
// answers its first query with the peer's chunks already resident
// instead of cold-sampling everything the fleet has already paid for.
//
// The container is self-checksummed: a transfer truncated mid-stream
// fails to open rather than booting a half-warm replica, and the
// temp-file + rename means a crashed clone never leaves a corrupt file
// at path. Returns the byte count and the graph epoch the peer
// reported.
func CloneFromPeer(ctx context.Context, peerURL, path string, opts ...httpapi.ClientOption) (int64, uint64, error) {
	c, err := httpapi.NewClient(peerURL, opts...)
	if err != nil {
		return 0, 0, err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".clone-*")
	if err != nil {
		return 0, 0, exactsim.Wrapf(exactsim.CodeInternal, err, "cluster: clone temp file")
	}
	defer os.Remove(tmp.Name())
	n, epoch, err := c.Snapshot(ctx, tmp)
	if err != nil {
		tmp.Close()
		return n, epoch, exactsim.Wrapf(exactsim.CodeUnavailable, err, "cluster: cloning from %s", peerURL)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return n, epoch, err
	}
	if err := tmp.Close(); err != nil {
		return n, epoch, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return n, epoch, err
	}
	return n, epoch, nil
}
