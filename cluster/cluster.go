// Package cluster composes N exactsimd backends into one serving fleet:
// a Router that speaks the same wire protocol the backends do (so
// httpapi.Client and every existing caller work against it unchanged)
// and fans queries across replicas by consistent-hash source routing.
//
// The design leans on two properties the lower layers already guarantee:
//
//   - Determinism: every replica configured with the same (graph, c,
//     seed, ε) answers bit-identically, so racing two replicas (hedging)
//     or retrying on a second one after a failure can never return a
//     different answer — only a faster one.
//   - Source-keyed warmth: the diagonal sample index makes a replica
//     fast for the chunk cells its past queries touched. Routing by
//     source keeps each source's traffic on one replica, so the fleet's
//     aggregate index capacity is the *sum* of the replicas' budgets
//     instead of N copies of the same hot set.
//
// The moving parts (DESIGN.md §9):
//
//   - ring.go: consistent-hash ring, vnode-weighted, keyed by source.
//   - Bounded-load rebalancing: a replica whose router-side in-flight
//     count exceeds BoundedLoadFactor × the fleet mean is demoted for
//     this query; the next ring candidate takes it.
//   - backend.go: health- and epoch-aware membership. A poller hits
//     /readyz and /v1/stats; consecutive failures eject a replica,
//     falling behind the fleet's max graph epoch ejects it too, and
//     recovery (health back + epoch caught up) re-admits it.
//   - hedge.go + router.go: hedged requests. A latency tracker keeps the
//     recent window; once a query outlives the HedgeQuantile latency, a
//     second replica races it and the first answer wins.
//   - Load shedding: replicas whose reported QueueDepth/InFlight gauges
//     saturate are skipped; when every healthy replica is saturated the
//     router answers "unavailable" immediately instead of queueing.
//   - bootstrap.go: CloneFromPeer pulls /v1/snapshot from a warm peer so
//     a joining replica starts with graph and diag chunks resident.
//
// See cmd/exactsim-router for the daemon.
package cluster

import (
	"net/http"
	"time"
)

// Options tunes a Router. The zero value is production-usable.
type Options struct {
	// Vnodes is the virtual node count per backend on the hash ring.
	// 0 selects 64 (keeps the per-backend arc spread even at small N).
	Vnodes int

	// BoundedLoadFactor caps a replica's share of the router's in-flight
	// queries at factor × fleet mean before routing spills to the next
	// ring candidate. 0 selects 1.25; values < 1 are treated as 1.
	BoundedLoadFactor float64

	// HedgeQuantile is the latency quantile after which a still-pending
	// query is hedged on a second replica. 0 selects 0.95.
	HedgeQuantile float64
	// HedgeMinDelay floors the hedge delay so microsecond cache-hit
	// windows don't cause a hedge storm. 0 selects 1ms.
	HedgeMinDelay time.Duration
	// HedgeMaxDelay caps the hedge delay. 0 selects 1s.
	HedgeMaxDelay time.Duration
	// DisableHedging turns hedged requests off (retries still happen).
	DisableHedging bool
	// HedgeBudgetRatio is the hedge token bucket's earn rate: each
	// successful un-hedged query earns this many tokens, each hedge
	// launch spends one, so at steady state hedges are capped near this
	// fraction of traffic (a saturated fleet stops earning and stops
	// hedging instead of doubling its own load). 0 derives the default
	// from the hedge policy itself: 2×(1−HedgeQuantile), i.e. twice the
	// hedge rate the quantile asks for — 0.1 at the default 0.95
	// quantile — so the budget throttles overload amplification without
	// starving the straggler rescue the operator configured. Negative
	// disables the budget (hedges bounded only by the timer and
	// MaxAttempts).
	HedgeBudgetRatio float64
	// HedgeBudgetBurst is the bucket capacity and starting balance.
	// 0 selects 16.
	HedgeBudgetBurst int

	// MaxAttempts bounds how many distinct replicas one query may touch
	// (first try + retries + the hedge). 0 selects 3; the fleet size is
	// always an upper bound.
	MaxAttempts int

	// ShedQueueDepth skips a replica whose last-polled QueueDepth gauge
	// is at or above this. 0 selects 128; negative disables the check.
	ShedQueueDepth int
	// ShedInFlight skips a replica whose last-polled InFlight gauge is
	// at or above this. 0 disables the check (QueueDepth is the primary
	// saturation signal — work waits there before it runs).
	ShedInFlight int

	// PollInterval is the membership poll period. 0 selects 1s; negative
	// disables the background poller entirely (tests drive Poll by hand).
	PollInterval time.Duration
	// PollTimeout bounds one poll round-trip. 0 selects half the poll
	// interval, clamped to [100ms, 2s].
	PollTimeout time.Duration
	// FailThreshold is the consecutive poll-failure count that ejects a
	// replica. 0 selects 2 (one blip survives, a dead process doesn't).
	FailThreshold int
	// EpochLagPolls is how many consecutive polls a replica may trail
	// the fleet's max graph epoch before it is ejected. 0 selects 2 —
	// one poll of grace for the normal rolling-update window where
	// replicas momentarily disagree.
	EpochLagPolls int

	// BreakerThreshold is the consecutive transport-failure count that
	// opens a backend's circuit breaker (see breaker.go): while open,
	// pick() skips the backend without spending an attempt, until
	// BreakerCooldown elapses and a single half-open probe decides.
	// 0 selects 5; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker blocks traffic before
	// allowing its half-open probe. 0 selects 500ms.
	BreakerCooldown time.Duration

	// ClientRetries sets the per-backend httpapi.Client retry count for
	// query traffic (see httpapi.WithRetries): transport-level blips are
	// re-sent on the same backend before the router burns a candidate
	// slot on a different replica. 0 keeps httpapi's default (2);
	// negative disables client-level retries so the router's own
	// replica-level retrying is the only loop.
	ClientRetries int

	// HTTPClient overrides the *http.Client used for backend traffic.
	// nil selects httpapi's shared pooled transport, which the router
	// depends on under fan-out load: per-request connections would
	// exhaust ephemeral ports. A fault-injection transport plugs in here
	// (see internal/fault and exactsim-router's -fault flags).
	HTTPClient *http.Client
}

func (o *Options) normalize() {
	if o.Vnodes <= 0 {
		o.Vnodes = 64
	}
	if o.BoundedLoadFactor == 0 {
		o.BoundedLoadFactor = 1.25
	}
	if o.BoundedLoadFactor < 1 {
		o.BoundedLoadFactor = 1
	}
	if o.HedgeQuantile <= 0 || o.HedgeQuantile >= 1 {
		o.HedgeQuantile = 0.95
	}
	if o.HedgeMinDelay <= 0 {
		o.HedgeMinDelay = time.Millisecond
	}
	if o.HedgeMaxDelay <= 0 {
		o.HedgeMaxDelay = time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.HedgeBudgetRatio == 0 {
		// Twice the hedge rate HedgeQuantile implies (quantile already
		// normalized above), so the budget binds under overload, not
		// during the straggler rescues the quantile was tuned to catch.
		o.HedgeBudgetRatio = 2 * (1 - o.HedgeQuantile)
	}
	if o.HedgeBudgetBurst <= 0 {
		o.HedgeBudgetBurst = 16
	}
	if o.HedgeBudgetRatio < 0 {
		// Disabled: a non-positive burst makes spend() always allow.
		o.HedgeBudgetRatio, o.HedgeBudgetBurst = 0, 0
	}
	if o.ShedQueueDepth == 0 {
		o.ShedQueueDepth = 128
	}
	if o.PollInterval == 0 {
		o.PollInterval = time.Second
	}
	if o.PollTimeout <= 0 {
		o.PollTimeout = o.PollInterval / 2
		if o.PollTimeout < 100*time.Millisecond {
			o.PollTimeout = 100 * time.Millisecond
		}
		if o.PollTimeout > 2*time.Second {
			o.PollTimeout = 2 * time.Second
		}
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.EpochLagPolls <= 0 {
		o.EpochLagPolls = 2
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 500 * time.Millisecond
	}
}

// breakerEnabled reports whether the per-backend circuit breaker is on.
func (o *Options) breakerEnabled() bool { return o.BreakerThreshold > 0 }
