package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/httpapi"
)

// ServerOptions bounds what one request to the router may cost; the
// semantics mirror httpapi.ServerOptions so operators tune one mental
// model for both tiers.
type ServerOptions struct {
	// MaxBatch caps the request count of one /v1/batch call. 0 selects
	// 4096; negative removes the bound.
	MaxBatch int
	// MaxBodyBytes caps a request body. 0 selects 8 MiB; negative
	// removes the bound.
	MaxBodyBytes int64
	// MaxTimeout clamps client-requested timeout_ms values, and bounds
	// requests that ask for no timeout at all. 0 leaves both unbounded.
	MaxTimeout time.Duration
}

func (o *ServerOptions) normalize() {
	if o.MaxBatch == 0 {
		o.MaxBatch = 4096
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 8 << 20
	}
}

// Server exposes a Router over the exactsim wire protocol. The endpoint
// set matches httpapi.Server's — /v1/query, /v1/batch, /v1/warm,
// /v1/snapshot, /v1/algorithms, /v1/stats, /healthz, /readyz — so every
// existing client (httpapi.Client included) points at a fleet the way
// it pointed at one replica. /v1/stats answers the aggregated
// FleetStats (a JSON superset of ServiceStats); /v1/snapshot proxies
// the warmest replica's container, which is how a joining replica can
// clone from "the fleet" without knowing its members.
type Server struct {
	router   *Router
	opts     ServerOptions
	mux      *http.ServeMux
	draining atomic.Bool
	// panics counts handler panics this router server contained; folded
	// into the aggregated panics_recovered gauge.
	panics    atomic.Int64
	protected http.Handler
}

// NewServer wraps r. The caller keeps ownership of r (and closes it).
func NewServer(r *Router, opts ServerOptions) *Server {
	opts.normalize()
	s := &Server{router: r, opts: opts, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/query/stream", s.handleQueryStream)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/warm", s.handleWarm)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	// Same containment contract as httpapi.Server: a router handler
	// panic answers CodeInternal and bumps a gauge; the daemon survives.
	s.protected = httpapi.Recovered(s.mux, func(v any, stack []byte) {
		s.panics.Add(1)
	})
	return s
}

// Router returns the wrapped router (for stats, membership, Close).
func (s *Server) Router() *Router { return s.router }

// SetDraining flips the readiness gate: while draining, /readyz answers
// 503 so an upstream balancer stops sending new traffic, while
// in-flight queries (and /healthz liveness) are untouched.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.protected.ServeHTTP(w, r)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var qr httpapi.QueryRequest
	if e := s.decode(w, r, &qr); e != nil {
		writeJSON(w, httpapi.StatusOf(e), exactsim.Response{Err: e})
		return
	}
	ctx, cancel := s.requestContext(r.Context(), qr.TimeoutMillis)
	defer cancel()
	// Expired on arrival: answer before burning a candidate walk or a
	// wire attempt (same contract as httpapi.Server and the Service).
	if e := expiredOnArrival(ctx); e != nil {
		writeJSON(w, httpapi.StatusOf(e), exactsim.Response{Request: qr.Body, Err: e})
		return
	}
	resp := s.router.Query(ctx, qr.Body)
	writeJSON(w, httpapi.StatusOf(resp.Err), resp)
}

// handleQueryStream forwards one query as an NDJSON refinement stream
// from whichever replica the router picks; the terminal record (final:
// true) matches what POST /v1/query through the router would answer.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	var qr httpapi.QueryRequest
	if e := s.decode(w, r, &qr); e != nil {
		writeJSON(w, httpapi.StatusOf(e), exactsim.Response{Err: e})
		return
	}
	ctx, cancel := s.requestContext(r.Context(), qr.TimeoutMillis)
	defer cancel()
	if e := expiredOnArrival(ctx); e != nil {
		writeJSON(w, httpapi.StatusOf(e), exactsim.Response{Request: qr.Body, Err: e})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	resp := s.router.QueryStream(ctx, qr.Body, func(rec exactsim.Response) {
		enc.Encode(httpapi.StreamRecord{Response: rec})
		if flusher != nil {
			flusher.Flush()
		}
	})
	enc.Encode(httpapi.StreamRecord{Response: resp, Final: true})
}

// expiredOnArrival reports a context already dead at tier entry as the
// protocol error to answer with (nil while budget remains).
func expiredOnArrival(ctx context.Context) *exactsim.Error {
	if err := ctx.Err(); err != nil {
		return exactsim.ToError(err)
	}
	return nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var br httpapi.BatchRequest
	if e := s.decode(w, r, &br); e != nil {
		writeJSON(w, httpapi.StatusOf(e), exactsim.Response{Err: e})
		return
	}
	if s.opts.MaxBatch > 0 && len(br.Body.Requests) > s.opts.MaxBatch {
		e := exactsim.Errorf(exactsim.CodeInvalidArgument,
			"cluster: batch of %d exceeds the router bound %d", len(br.Body.Requests), s.opts.MaxBatch)
		writeJSON(w, httpapi.StatusOf(e), exactsim.Response{Err: e})
		return
	}
	ctx, cancel := s.requestContext(r.Context(), br.TimeoutMillis)
	defer cancel()
	if e := expiredOnArrival(ctx); e != nil {
		writeJSON(w, httpapi.StatusOf(e), exactsim.Response{Err: e})
		return
	}
	writeJSON(w, http.StatusOK, httpapi.BatchResponse{Responses: s.router.Batch(ctx, br.Body.Requests)})
}

func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	var wr httpapi.WarmRequest
	if e := s.decode(w, r, &wr); e != nil {
		writeJSON(w, httpapi.StatusOf(e), exactsim.WarmResponse{Err: e})
		return
	}
	ctx, cancel := s.requestContext(r.Context(), wr.TimeoutMillis)
	defer cancel()
	if e := expiredOnArrival(ctx); e != nil {
		writeJSON(w, httpapi.StatusOf(e), exactsim.WarmResponse{Err: e})
		return
	}
	resp := s.router.Warm(ctx, wr.Body)
	writeJSON(w, httpapi.StatusOf(resp.Err), resp)
}

// handleSnapshot streams a snapshot container from the warmest healthy
// replica (the one with the most diag-index bytes resident), headers
// passed through — so `exactsimd -clone-from <router>` bootstraps a new
// replica without naming a peer.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	b := s.router.warmestBackend()
	if b == nil {
		e := exactsim.Errorf(exactsim.CodeUnavailable, "cluster: no healthy backends")
		writeJSON(w, httpapi.StatusOf(e), exactsim.Response{Err: e})
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		strings.TrimRight(b.url, "/")+"/v1/snapshot", nil)
	if err != nil {
		e := exactsim.ToError(err)
		writeJSON(w, httpapi.StatusOf(e), exactsim.Response{Err: e})
		return
	}
	res, err := s.router.httpClient().Do(req)
	if err != nil {
		e := exactsim.Errorf(exactsim.CodeUnavailable, "cluster: %s: %v", b.url, err)
		writeJSON(w, httpapi.StatusOf(e), exactsim.Response{Err: e})
		return
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if epoch := res.Header.Get("X-Exactsim-Graph-Epoch"); epoch != "" {
		w.Header().Set("X-Exactsim-Graph-Epoch", epoch)
	}
	w.WriteHeader(res.StatusCode)
	// A copy failure mid-stream leaves a truncated body; the container
	// checksum fails on the client side, same as the single-replica path.
	io.Copy(w, res.Body)
}

// handleAlgorithms re-serves the capability/cost surface of the first
// healthy replica — the fleet serves whatever its members serve, and
// replicas run the same registry, so one member speaks for all. The
// per-backend client caches the response, so steady-state scrapes cost
// no upstream round trip.
func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	for _, b := range s.router.snapshot() {
		if !b.healthy.Load() {
			continue
		}
		ar, err := b.client.AlgorithmsInfo(r.Context())
		if err != nil {
			continue
		}
		writeJSON(w, http.StatusOK, ar)
		return
	}
	e := exactsim.Errorf(exactsim.CodeUnavailable, "cluster: no healthy backends")
	writeJSON(w, httpapi.StatusOf(e), exactsim.Response{Err: e})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	fs := s.router.Stats()
	fs.PanicsRecovered += s.panics.Load()
	writeJSON(w, http.StatusOK, fs)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("ready") == "1" {
		s.handleReadyz(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// handleReadyz reports whether the router can usefully take traffic:
// not draining, and at least one healthy replica behind it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
	case s.router.Stats().HealthyBackends == 0:
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "no healthy backends\n")
	default:
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	}
}

func (s *Server) requestContext(ctx context.Context, timeoutMillis int64) (context.Context, context.CancelFunc) {
	timeout := time.Duration(timeoutMillis) * time.Millisecond
	if s.opts.MaxTimeout > 0 && (timeout <= 0 || timeout > s.opts.MaxTimeout) {
		timeout = s.opts.MaxTimeout
	}
	if timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, timeout)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) *exactsim.Error {
	body := r.Body
	if s.opts.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	if err := json.NewDecoder(body).Decode(into); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return exactsim.Errorf(exactsim.CodeInvalidArgument,
				"cluster: body exceeds %d bytes", tooLarge.Limit)
		}
		return exactsim.Errorf(exactsim.CodeInvalidArgument, "cluster: bad request body: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// warmestBackend picks the healthy replica with the most diag-index
// bytes resident — the best clone source for a joiner.
func (r *Router) warmestBackend() *backend {
	var best *backend
	var bestBytes int64 = -1
	for _, b := range r.snapshot() {
		if !b.healthy.Load() {
			continue
		}
		var resident int64
		if st := b.stats.Load(); st != nil {
			resident = st.DiagResidentBytes
		}
		if resident > bestBytes {
			best, bestBytes = b, resident
		}
	}
	return best
}

// httpClient is the raw client used for proxied byte streams (the
// snapshot path bypasses httpapi.Client so headers can be forwarded
// before the body starts).
func (r *Router) httpClient() *http.Client {
	if r.opts.HTTPClient != nil {
		return r.opts.HTTPClient
	}
	return httpapi.SharedClient()
}
