package cluster_test

import (
	"context"
	"sort"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/cluster"
)

// BenchmarkRouterResetFault measures what the resilience stack buys
// under a 10% server-side connection-reset rate: every replica cuts the
// connection (http.ErrAbortHandler) on every 10th /v1/query, before the
// request reaches the service — the same shape as a mid-deploy replica
// dropping its accept queue. hardened=false strips the stack to a single
// raw attempt (no client retries, no replica failover, no breaker);
// hardened=true runs the shipped defaults. The acceptance claim is the
// err_rate extra metric dropping ≥10× at an unchanged p50 — retries
// absorb the resets without taxing the queries that never hit one.
// Hedging is off in both arms so the comparison isolates the retry path.
func BenchmarkRouterResetFault(b *testing.B) {
	const abortEvery = 10
	for _, hardened := range []bool{false, true} {
		name := "hardened=false"
		if hardened {
			name = "hardened=true"
		}
		b.Run(name, func(b *testing.B) {
			g := exactsim.GenerateBarabasiAlbert(500, 3, 1)
			members, urls := startFleet(b, g, 2, exactsim.ServiceOptions{
				Workers:        2,
				QuerierOptions: []exactsim.QuerierOption{exactsim.WithEpsilon(0.1), exactsim.WithSeed(1)},
			})
			opts := manualPollOptions()
			opts.DisableHedging = true
			if !hardened {
				opts.ClientRetries = -1
				opts.MaxAttempts = 1
				opts.BreakerThreshold = -1
			}
			r, err := cluster.New(urls, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(r.Close)

			ctx := context.Background()
			// Warm every replica's result cache, then the routed path, before
			// arming the abort gate — the measured latency is then a cached
			// query plus whatever the faults and retries add.
			for _, m := range members {
				for i := 0; i < 64; i++ {
					if resp := m.svc.Query(ctx, exactsim.Request{Source: exactsim.NodeID(i)}); resp.Err != nil {
						b.Fatal(resp.Err)
					}
				}
			}
			for i := 0; i < 64; i++ {
				if resp := r.Query(ctx, exactsim.Request{Source: exactsim.NodeID(i)}); resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
			for _, m := range members {
				m.gate.abortEvery.Store(abortEvery)
			}

			lat := make([]time.Duration, 0, b.N)
			errs := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := exactsim.NodeID(i % 64)
				start := time.Now()
				if resp := r.Query(ctx, exactsim.Request{Source: src}); resp.Err != nil {
					errs++
				} else {
					lat = append(lat, time.Since(start))
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(errs)/float64(b.N), "err_rate")
			// Percentile over ALL issued queries with errors sorting last, so
			// both arms share a denominator — otherwise the baseline's failed
			// 10% silently deflate its percentile index and the comparison
			// flatters the hardened arm's tail into its median.
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			if idx := int(0.50 * float64(b.N-1)); idx < len(lat) {
				b.ReportMetric(float64(lat[idx].Nanoseconds()), "p50-ns/op")
			}
		})
	}
}
