module github.com/exactsim/exactsim

go 1.24
