// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON benchmark report (stdout), so CI can publish machine-readable perf
// artifacts (BENCH_PR2.json and successors) and future perf PRs can diff
// ns/op and allocs/op against a stable baseline instead of eyeballing logs.
//
// Usage:
//
//	go test -run=NONE -bench=SingleSource -benchtime=1x -benchmem ./... | benchjson > bench.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Custom metrics emitted with
// b.ReportMetric (hedge tail latencies, hit rates, …) land in Extra
// keyed by their unit string, e.g. {"p99-ns/op": 1.2e6}.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the whole run: environment header lines plus results.
type Report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses "BenchmarkX-8  5  958646218 ns/op  20727412 B/op  25954 allocs/op".
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			// ReportMetric units pass through verbatim so bench-specific
			// gauges (p99-ns/op and friends) survive into the artifact.
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	return r, seen
}
