// Command exactsim answers single-source and top-k SimRank queries from
// the command line through the unified algorithm registry.
//
// Usage:
//
//	exactsim -graph edges.txt -source 42 -eps 1e-6 -topk 10
//	exactsim -dataset GQ -source 0 -method parsim
//	exactsim -dataset WV -source 3 -method prsim -timeout 5s
//
// Either -graph (an edge-list file; add -undirected for co-authorship-style
// inputs) or -dataset (a Table-2 stand-in key) selects the graph. -method
// accepts any registered algorithm (see -method help); -timeout bounds the
// query with a context deadline that is honored inside the computation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	exactsim "github.com/exactsim/exactsim"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list file (SNAP format)")
		undirected = flag.Bool("undirected", false, "treat edge list as undirected")
		datasetKey = flag.String("dataset", "", "Table-2 dataset key (GQ, HT, WV, HP, DB, IC, IT, TW)")
		scale      = flag.Float64("scale", 1.0, "dataset scale in (0,1]")
		source     = flag.Int("source", 0, "source node id")
		eps        = flag.Float64("eps", 0, "additive error target (default: 1e-6 for exactsim, each method's serving default otherwise)")
		c          = flag.Float64("c", exactsim.DefaultC, "SimRank decay factor")
		topk       = flag.Int("topk", 10, "print the top-k most similar nodes")
		method     = flag.String("method", "exactsim",
			"algorithm: "+strings.Join(exactsim.Algorithms(), " | "))
		seed    = flag.Uint64("seed", 1, "random seed")
		workers = flag.Int("workers", 1, "parallel workers within one query")
		timeout = flag.Duration("timeout", 0, "query deadline (0 = none), e.g. 30s")
		// Profiling flags, so perf work on the walk/diag hot path has a
		// stable real-query baseline (pair the output with `go tool pprof`).
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the query to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (post-query) to this file")
	)
	flag.Parse()

	// Profile flushing must survive the fatal() exit path too (os.Exit
	// skips defers): fatal calls flushProfiles before exiting, and the
	// sync.Once keeps the normal-return defer from flushing twice.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	if *cpuProfile != "" || *memProfile != "" {
		var once sync.Once
		cpu, mem := *cpuProfile, *memProfile
		flushProfiles = func() {
			once.Do(func() {
				if cpu != "" {
					pprof.StopCPUProfile()
				}
				if mem != "" {
					f, err := os.Create(mem)
					if err != nil {
						fmt.Fprintln(os.Stderr, "exactsim:", err)
						return
					}
					defer f.Close()
					runtime.GC() // settle allocations so the heap profile is stable
					if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
						fmt.Fprintln(os.Stderr, "exactsim:", err)
					}
				}
			})
		}
		defer flushProfiles()
	}

	if *method == "help" {
		fmt.Println("registered algorithms:", strings.Join(exactsim.Algorithms(), ", "))
		return
	}

	g, err := loadGraph(*graphPath, *undirected, *datasetKey, *scale)
	if err != nil {
		fatal(err)
	}
	stats := exactsim.Stats(g)
	fmt.Printf("graph: n=%d m=%d avg-degree=%.2f dead-ends=%d\n",
		stats.N, stats.M, stats.AvgDegree, stats.DeadEnds)
	if *source < 0 || *source >= g.N() {
		fatal(fmt.Errorf("source %d out of range [0,%d)", *source, g.N()))
	}
	src := exactsim.NodeID(*source)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Forward -eps only when the user set it: the sampling baselines cost
	// O(1/ε²), so pinning everyone to ExactSim's tight default would make
	// e.g. probesim run for days. ExactSim keeps its historical 1e-6.
	epsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "eps" {
			epsSet = true
		}
	})
	opts := []exactsim.QuerierOption{
		exactsim.WithC(*c),
		exactsim.WithSeed(*seed),
		exactsim.WithWorkers(*workers),
	}
	switch {
	case epsSet:
		opts = append(opts, exactsim.WithEpsilon(*eps))
	case *method == "exactsim" || *method == "exactsim-basic":
		*eps = 1e-6
		opts = append(opts, exactsim.WithEpsilon(*eps))
	}

	q, err := exactsim.NewQuerierCtx(ctx, *method, g, opts...)
	if err != nil {
		fatal(err)
	}
	if ix, ok := q.(exactsim.QuerierIndex); ok {
		fmt.Printf("index: built in %v, %.2f MB\n",
			ix.PrepTime().Round(time.Microsecond), float64(ix.IndexBytes())/(1<<20))
	}

	top, res, err := q.TopK(ctx, src, *topk)
	if err != nil {
		fatal(err)
	}

	epsLabel := fmt.Sprintf("%g", *eps)
	if *eps == 0 {
		epsLabel = "default"
	}
	fmt.Printf("method=%s eps=%s query-time=%v\n", *method, epsLabel,
		res.QueryTime.Round(time.Microsecond))
	fmt.Printf("s(%d,%d) = %.8f (self)\n", src, src, res.Scores[src])
	fmt.Printf("top-%d:\n", *topk)
	for rank, e := range top {
		fmt.Printf("  %2d. node %-10d s = %.8f\n", rank+1, e.Idx, e.Val)
	}
}

func loadGraph(path string, undirected bool, key string, scale float64) (*exactsim.Graph, error) {
	switch {
	case path != "" && key != "":
		return nil, fmt.Errorf("use either -graph or -dataset, not both")
	case path != "":
		return exactsim.LoadEdgeList(path, undirected)
	case key != "":
		return exactsim.GenerateDataset(key, scale)
	default:
		return nil, fmt.Errorf("one of -graph or -dataset is required")
	}
}

// flushProfiles finalizes any active -cpuprofile/-memprofile output; fatal
// must run it because os.Exit skips deferred calls.
var flushProfiles = func() {}

func fatal(err error) {
	flushProfiles()
	fmt.Fprintln(os.Stderr, "exactsim:", err)
	os.Exit(1)
}
