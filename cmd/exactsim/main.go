// Command exactsim answers single-source and top-k SimRank queries from
// the command line.
//
// Usage:
//
//	exactsim -graph edges.txt -source 42 -eps 1e-6 -topk 10
//	exactsim -dataset GQ -source 0 -method parsim
//
// Either -graph (an edge-list file; add -undirected for co-authorship-style
// inputs) or -dataset (a Table-2 stand-in key) selects the graph. -method
// chooses between exactsim (default), exactsim-basic, mc, parsim,
// linearization, and prsim.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	exactsim "github.com/exactsim/exactsim"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list file (SNAP format)")
		undirected = flag.Bool("undirected", false, "treat edge list as undirected")
		datasetKey = flag.String("dataset", "", "Table-2 dataset key (GQ, HT, WV, HP, DB, IC, IT, TW)")
		scale      = flag.Float64("scale", 1.0, "dataset scale in (0,1]")
		source     = flag.Int("source", 0, "source node id")
		eps        = flag.Float64("eps", 1e-6, "additive error target")
		c          = flag.Float64("c", exactsim.DefaultC, "SimRank decay factor")
		topk       = flag.Int("topk", 10, "print the top-k most similar nodes")
		method     = flag.String("method", "exactsim", "exactsim | exactsim-basic | mc | parsim | linearization | prsim")
		seed       = flag.Uint64("seed", 1, "random seed")
		workers    = flag.Int("workers", 1, "parallel workers (ExactSim only)")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *undirected, *datasetKey, *scale)
	if err != nil {
		fatal(err)
	}
	stats := exactsim.Stats(g)
	fmt.Printf("graph: n=%d m=%d avg-degree=%.2f dead-ends=%d\n",
		stats.N, stats.M, stats.AvgDegree, stats.DeadEnds)
	if *source < 0 || *source >= g.N() {
		fatal(fmt.Errorf("source %d out of range [0,%d)", *source, g.N()))
	}
	src := exactsim.NodeID(*source)

	start := time.Now()
	scores, err := querySingleSource(g, src, *method, *c, *eps, *seed, *workers)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("method=%s eps=%g query-time=%v\n", *method, *eps, elapsed.Round(time.Microsecond))
	fmt.Printf("s(%d,%d) = %.8f (self)\n", src, src, scores[src])
	fmt.Printf("top-%d:\n", *topk)
	for rank, e := range exactsim.TopKOf(scores, *topk, src) {
		fmt.Printf("  %2d. node %-10d s = %.8f\n", rank+1, e.Idx, e.Val)
	}
}

func loadGraph(path string, undirected bool, key string, scale float64) (*exactsim.Graph, error) {
	switch {
	case path != "" && key != "":
		return nil, fmt.Errorf("use either -graph or -dataset, not both")
	case path != "":
		return exactsim.LoadEdgeList(path, undirected)
	case key != "":
		return exactsim.GenerateDataset(key, scale)
	default:
		return nil, fmt.Errorf("one of -graph or -dataset is required")
	}
}

func querySingleSource(g *exactsim.Graph, src exactsim.NodeID,
	method string, c, eps float64, seed uint64, workers int) ([]float64, error) {

	switch method {
	case "exactsim", "exactsim-basic":
		eng, err := exactsim.New(g, exactsim.Options{
			C: c, Epsilon: eps, Optimized: method == "exactsim",
			Seed: seed, Workers: workers,
		})
		if err != nil {
			return nil, err
		}
		res, err := eng.SingleSource(src)
		if err != nil {
			return nil, err
		}
		return res.Scores, nil
	case "mc":
		ix := exactsim.BuildMCIndex(g, exactsim.MCParams{C: c, L: 20, R: 1000, Seed: seed})
		return ix.SingleSource(src), nil
	case "parsim":
		eng := exactsim.NewParSim(g, exactsim.ParSimParams{C: c, L: 50})
		return eng.SingleSource(src), nil
	case "linearization":
		ix := exactsim.BuildLinearization(g, exactsim.LinearizationParams{C: c, Eps: eps, Seed: seed})
		return ix.SingleSource(src), nil
	case "prsim":
		ix := exactsim.BuildPRSim(g, exactsim.PRSimParams{C: c, Eps: eps, Seed: seed})
		return ix.SingleSource(src), nil
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exactsim:", err)
	os.Exit(1)
}
