// Command exactsim-vet is the project's custom vet tool: the analyzers in
// internal/lint behind the standard `go vet -vettool` protocol.
//
// Protocol mode (what the go command invokes):
//
//	go vet -vettool=$(go build -o /tmp/exactsim-vet ./cmd/exactsim-vet && echo /tmp/exactsim-vet) ./...
//
// Convenience mode: invoked with package patterns (or nothing), it builds
// nothing and re-executes itself through `go vet -vettool=<self>` so a bare
//
//	exactsim-vet ./...
//
// does the right thing from a shell or a CI step.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"github.com/exactsim/exactsim/internal/lint/ctxpoll"
	"github.com/exactsim/exactsim/internal/lint/detrange"
	"github.com/exactsim/exactsim/internal/lint/errcode"
	"github.com/exactsim/exactsim/internal/lint/rngsource"
	"github.com/exactsim/exactsim/internal/lint/shedpath"
	"github.com/exactsim/exactsim/internal/lint/unitchecker"
)

func main() {
	if standaloneInvocation(os.Args[1:]) {
		patterns := os.Args[1:]
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		self, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, "exactsim-vet:", err)
			os.Exit(1)
		}
		cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				os.Exit(ee.ExitCode())
			}
			fmt.Fprintln(os.Stderr, "exactsim-vet:", err)
			os.Exit(1)
		}
		return
	}

	unitchecker.Main(
		detrange.Analyzer,
		rngsource.Analyzer,
		errcode.Analyzer,
		ctxpoll.Analyzer,
		shedpath.Analyzer,
	)
}

// standaloneInvocation distinguishes a human's `exactsim-vet ./...` from
// the go command's `exactsim-vet -flags` / `exactsim-vet <unit>.cfg`.
func standaloneInvocation(args []string) bool {
	if len(args) == 0 {
		return true
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return false
		}
	}
	return true
}
