// Command exactsimd serves SimRank queries over HTTP: an exactsim.Service
// wrapped by the httpapi transport, answering every registered algorithm
// on one graph with per-request deadlines, an epoch-keyed result cache and
// structured protocol errors.
//
// Usage:
//
//	exactsimd -dataset WV -scale 0.1 -addr :8640
//	exactsimd -graph edges.txt -undirected -eps 1e-4 -workers 8
//	exactsimd -ba-n 5000 -ba-k 4              # generated demo graph
//	exactsimd -snapshot warm.snap             # instant warm restart
//	exactsimd -clone-from http://peer:8640 -snapshot clone.snap   # join a fleet warm
//
// Then:
//
//	curl -s localhost:8640/v1/query -d '{"source":42,"k":5}'            # "auto" plans the method
//	curl -sN localhost:8640/v1/query/stream -d '{"source":42,"allow_partial":true,"timeout_ms":500}'
//	curl -s localhost:8640/v1/warm -d '{"top_degree":64}'
//	curl -s localhost:8640/v1/snapshot -o warm.snap
//	curl -s localhost:8640/v1/algorithms
//	curl -s localhost:8640/v1/stats
//	curl -s localhost:8640/healthz            # liveness
//	curl -s localhost:8640/readyz             # readiness (503 while draining)
//
// -warm N pre-computes the N highest in-degree sources before serving, so
// the diagonal sample index (see -diag-index-mb) starts hot and first-query
// latency drops.
//
// -save-snapshot writes the warm state (graph CSR + diagonal sample
// index) as a snapshot container after warming and again at graceful
// shutdown; -snapshot boots from one — the graph is mmap'd zero-copy and
// the index restored, so a restart (or a fresh fleet member fed a peer's
// /v1/snapshot download) answers its first query in microseconds instead
// of re-parsing and re-sampling.
//
// Saves rotate -snapshot-keep previous generations aside (path.1,
// path.2, …). A boot that finds the newest container damaged — torn
// write, bit rot; anything the checksums reject — renames it to
// <name>.quarantine, logs it, and boots the previous generation; with
// every generation damaged it falls back to a cold build from the graph
// flags. -fault / -fault-seed arm a deterministic fault schedule on the
// clone transport and snapshot writes for chaos drills.
//
// SIGINT/SIGTERM first fail /readyz for -drain (so routers reroute), then
// drain in-flight requests (5 s grace) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/cluster"
	"github.com/exactsim/exactsim/httpapi"
	"github.com/exactsim/exactsim/internal/fault"
)

func main() {
	var (
		addr       = flag.String("addr", ":8640", "listen address")
		graphPath  = flag.String("graph", "", "edge-list file (SNAP format)")
		binary     = flag.Bool("binary", false, "-graph file is the repository's binary format")
		undirected = flag.Bool("undirected", false, "treat edge list as undirected")
		datasetKey = flag.String("dataset", "", "Table-2 dataset key (GQ, HT, WV, HP, DB, IC, IT, TW)")
		scale      = flag.Float64("scale", 1.0, "dataset scale in (0,1]")
		baN        = flag.Int("ba-n", 5000, "fallback generated graph: node count")
		baK        = flag.Int("ba-k", 4, "fallback generated graph: edges per node")
		algorithm  = flag.String("algorithm", exactsim.AlgorithmAuto,
			"default algorithm: auto (adaptive planner) | "+strings.Join(exactsim.Algorithms(), " | "))
		eps         = flag.Float64("eps", 1e-3, "service-wide error target (0 = each algorithm's own default)")
		seed        = flag.Uint64("seed", 1, "service-wide random seed")
		workers     = flag.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "queued-query bound (0 = 4×workers)")
		cacheSize   = flag.Int("cache", 1024, "result LRU capacity (negative disables)")
		maxQueriers = flag.Int("max-queriers", 64, "retained (algorithm, ε) querier bound")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-query deadline (0 = none)")
		maxTimeout  = flag.Duration("max-timeout", 0, "clamp on client-requested timeouts (0 = none)")
		maxBatch    = flag.Int("max-batch", 4096, "per-call /v1/batch request bound")
		diagIndexMB = flag.Int64("diag-index-mb", 128, "diagonal sample index budget in MiB (negative disables)")
		warm        = flag.Int("warm", 0, "pre-warm this many top in-degree sources before serving (0 = none)")
		snapshot    = flag.String("snapshot", "", "boot from a snapshot container: mmap the graph and restore the diagonal sample index (see -save-snapshot and POST /v1/snapshot)")
		saveSnap    = flag.String("save-snapshot", "", "write a snapshot container here after warming, and again on graceful shutdown — the next boot with -snapshot starts warm")
		cloneFrom   = flag.String("clone-from", "", "bootstrap by cloning a warm peer (or router) first: download its /v1/snapshot to the -snapshot path, then boot from it")
		snapKeep    = flag.Int("snapshot-keep", 2, "previous snapshot generations kept beside -save-snapshot (path.1 … path.N); a boot that finds the newest corrupt quarantines it and falls back a generation")

		queueTarget = flag.Duration("queue-target", 0, "CoDel sojourn target of the priority queue: queued work dwelling above this for a full window is head-dropped (0 = 5ms default, negative disables age drops)")
		queueWindow = flag.Duration("queue-window", 0, "CoDel interval and brownout overload horizon (0 = 100ms default)")
		noBrownout  = flag.Bool("no-brownout", false, "never answer degraded: overloaded AllowDegraded requests are shed like everyone else")
		brownoutEps = flag.Float64("brownout-max-eps", 0, "cap on brownout epsilon loosening: a degraded answer doubles the request epsilon only up to here (0 = 0.1 default, negative disables loosening)")
		ladderSpec  = flag.String("degrade-ladder", "", "brownout algorithm downgrade map as 'from=to,from=to' (empty = built-in ladder, 'none' disables algorithm downgrades)")
		drain       = flag.Duration("drain", 0, "readiness-drain window before shutdown: /readyz answers 503 for this long so routers stop sending traffic before the listener closes")

		faultSpec = flag.String("fault", "", "deterministic fault injection on the clone transport and snapshot writes, e.g. 'reset=0.1,corrupt=0.02,torn=0.01' (see internal/fault)")
		faultSeed = flag.Uint64("fault-seed", 1, "seed of the -fault schedule; the same seed replays the same chaos run")
	)
	flag.Parse()

	// -fault arms the seeded schedule on this daemon's fallible I/O: the
	// clone download rides the fault transport, and snapshot saves stream
	// through the corrupting/torn writer — which is exactly what the
	// quarantine boot path exists to absorb.
	var inj *fault.Injector
	if *faultSpec != "" {
		cfg, err := fault.ParseSpec(*faultSpec, *faultSeed)
		if err != nil {
			log.Fatalf("exactsimd: %v", err)
		}
		inj = fault.New(cfg)
		log.Printf("exactsimd: FAULT INJECTION ARMED: %s seed=%d", *faultSpec, *faultSeed)
	}

	if *cloneFrom != "" {
		if *snapshot == "" {
			log.Fatal("exactsimd: -clone-from needs -snapshot as the destination path")
		}
		var cloneOpts []httpapi.ClientOption
		if inj != nil {
			base := http.DefaultTransport.(*http.Transport).Clone()
			cloneOpts = append(cloneOpts, httpapi.WithHTTPClient(&http.Client{Transport: inj.Transport(base)}))
		}
		start := time.Now()
		n, epoch, err := cluster.CloneFromPeer(context.Background(), *cloneFrom, *snapshot, cloneOpts...)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("exactsimd: cloned %d KiB (epoch %d) from %s to %s in %v",
			n>>10, epoch, *cloneFrom, *snapshot, time.Since(start).Round(time.Millisecond))
	}

	var qopts []exactsim.QuerierOption
	if *eps > 0 {
		qopts = append(qopts, exactsim.WithEpsilon(*eps))
	}
	qopts = append(qopts, exactsim.WithSeed(*seed))
	diagBytes := *diagIndexMB << 20
	if *diagIndexMB < 0 {
		diagBytes = -1
	}
	ladder, ladderErr := parseDegradeLadder(*ladderSpec)
	if ladderErr != nil {
		log.Fatalf("exactsimd: %v", ladderErr)
	}
	svcOpts := exactsim.ServiceOptions{
		Workers:            *workers,
		QueueDepth:         *queue,
		CacheSize:          *cacheSize,
		MaxQueriers:        *maxQueriers,
		DefaultAlgorithm:   *algorithm,
		DefaultTimeout:     *timeout,
		DiagIndexBytes:     diagBytes,
		QuerierOptions:     qopts,
		QueueTarget:        *queueTarget,
		QueueWindow:        *queueWindow,
		DisableBrownout:    *noBrownout,
		BrownoutMaxEpsilon: *brownoutEps,
		DegradeLadder:      ladder,
	}
	if inj != nil {
		svcOpts.SnapshotWriteWrap = func(w io.Writer) io.Writer { return inj.Writer(w) }
	}

	var (
		svc  *exactsim.Service
		desc string
		err  error
	)
	if *snapshot != "" {
		start := time.Now()
		var rep *exactsim.BootReport
		svc, rep, err = exactsim.BootSnapshot(*snapshot, svcOpts)
		for _, q := range rep.Quarantined {
			log.Printf("exactsimd: QUARANTINED damaged snapshot generation: %s", q)
		}
		if err != nil {
			// Every generation failed (or none existed). The graph flags
			// are the cold-build fallback: slower, never warm, but serving.
			log.Printf("exactsimd: snapshot boot failed (tried %d generations): %v", len(rep.Tried), err)
			var g *exactsim.Graph
			g, desc, err = loadGraph(*graphPath, *binary, *undirected, *datasetKey, *scale, *baN, *baK, *seed)
			if err != nil {
				log.Fatal(err)
			}
			svc, err = exactsim.NewService(g, svcOpts)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("exactsimd: cold-built %s after snapshot fallback", desc)
			desc += " (cold fallback)"
		} else {
			st := svc.Stats()
			log.Printf("exactsimd: restored snapshot %s in %v — %d diag chunks + %d explorations resident (%d KiB)",
				rep.Opened, time.Since(start).Round(time.Millisecond),
				st.DiagChunks, st.DiagExplores, st.DiagResidentBytes>>10)
			desc = "snapshot " + rep.Opened
		}
	} else {
		var g *exactsim.Graph
		g, desc, err = loadGraph(*graphPath, *binary, *undirected, *datasetKey, *scale, *baN, *baK, *seed)
		if err != nil {
			log.Fatal(err)
		}
		svc, err = exactsim.NewService(g, svcOpts)
		if err != nil {
			log.Fatal(err)
		}
	}
	defer svc.Close()

	if *warm > 0 {
		start := time.Now()
		wr := svc.Warm(context.Background(), exactsim.WarmRequest{TopDegree: *warm})
		if wr.Err != nil {
			log.Fatalf("exactsimd: warm: %v", wr.Err)
		}
		st := svc.Stats()
		log.Printf("exactsimd: warmed %d sources in %v (%d failed) — %d diag chunks resident (%d KiB)",
			wr.Warmed, time.Since(start).Round(time.Millisecond), wr.Failed,
			st.DiagChunks, st.DiagResidentBytes>>10)
	}

	if *saveSnap != "" {
		saveSnapshot(svc, *saveSnap, *snapKeep)
	}

	api := httpapi.NewServer(svc, httpapi.ServerOptions{
		MaxBatch:   *maxBatch,
		MaxTimeout: *maxTimeout,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: api,
		// Slow-client hygiene: a peer that never finishes its headers or
		// sits idle on a kept-alive connection cannot pin a goroutine or a
		// socket forever. No ReadTimeout/WriteTimeout — batch bodies and
		// the /v1/snapshot stream legitimately take a while.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("exactsimd: serving %s (n=%d m=%d) on %s — default algorithm %q, epoch %d",
		desc, svc.Graph().N(), svc.Graph().M(), *addr, svc.DefaultAlgorithm(), svc.Epoch())

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	if *drain > 0 {
		// Flip readiness first so routers polling /readyz stop sending
		// new queries, then give them the drain window to notice before
		// the listener goes away — in-flight queries keep completing.
		log.Printf("exactsimd: draining for %v", *drain)
		api.SetDraining(true)
		time.Sleep(*drain)
	}
	log.Printf("exactsimd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("exactsimd: shutdown: %v", err)
	}
	if *saveSnap != "" {
		// Re-spill on the way out: everything this process sampled since
		// boot rides into the next boot's warm start.
		saveSnapshot(svc, *saveSnap, *snapKeep)
	}
	st := svc.Stats()
	log.Printf("exactsimd: served %d queries (%d cache hits, %d errors, diag hit rate %.0f%%)",
		st.Queries, st.CacheHits, st.Errors, 100*st.DiagHitRate)
}

// parseDegradeLadder resolves -degrade-ladder: "" keeps the built-in
// ladder (DefaultDegradeLadder via ServiceOptions), "none" disables
// algorithm downgrades, and "from=to,from=to" builds a custom map
// (validated against the algorithm registry by NewService).
func parseDegradeLadder(spec string) (map[string]string, error) {
	switch spec {
	case "":
		return nil, nil
	case "none":
		return map[string]string{}, nil
	}
	ladder := make(map[string]string)
	for _, step := range strings.Split(spec, ",") {
		from, to, ok := strings.Cut(strings.TrimSpace(step), "=")
		from, to = strings.TrimSpace(from), strings.TrimSpace(to)
		if !ok || from == "" || to == "" {
			return nil, fmt.Errorf("-degrade-ladder: bad step %q (want from=to)", step)
		}
		if prev, dup := ladder[from]; dup {
			return nil, fmt.Errorf("-degrade-ladder: %q maps to both %q and %q", from, prev, to)
		}
		ladder[from] = to
	}
	return ladder, nil
}

// saveSnapshot writes the current generation to path (atomically,
// rotating keep previous generations aside) and logs the outcome;
// failures are reported, not fatal — a read-only disk should not take
// the serving path down.
func saveSnapshot(svc *exactsim.Service, path string, keep int) {
	start := time.Now()
	if err := svc.SaveSnapshotKeep(path, keep); err != nil {
		log.Printf("exactsimd: save-snapshot: %v", err)
		return
	}
	fi, _ := os.Stat(path)
	var size int64
	if fi != nil {
		size = fi.Size()
	}
	st := svc.Stats()
	log.Printf("exactsimd: wrote snapshot %s (%d KiB, epoch %d, %d diag chunks) in %v",
		path, size>>10, st.GraphEpoch, st.DiagChunks, time.Since(start).Round(time.Millisecond))
}

// loadGraph resolves the graph flags: an explicit file beats a dataset
// key beats the generated fallback.
func loadGraph(path string, binary, undirected bool, datasetKey string, scale float64,
	baN, baK int, seed uint64) (*exactsim.Graph, string, error) {
	switch {
	case path != "" && datasetKey != "":
		return nil, "", errors.New("exactsimd: -graph and -dataset are mutually exclusive")
	case path != "" && binary:
		// OpenBinary mmaps the container zero-copy where the platform
		// allows; the mapping lives for the life of the daemon.
		g, err := exactsim.OpenBinary(path)
		return g, path, err
	case path != "":
		g, err := exactsim.LoadEdgeList(path, undirected)
		return g, path, err
	case datasetKey != "":
		g, err := exactsim.GenerateDataset(datasetKey, scale)
		return g, fmt.Sprintf("dataset %s ×%g", datasetKey, scale), err
	default:
		g := exactsim.GenerateBarabasiAlbert(baN, baK, seed)
		return g, fmt.Sprintf("generated BA(n=%d, k=%d)", baN, baK), nil
	}
}
