// Command exactsim-router fronts a fleet of exactsimd backends with one
// endpoint speaking the same wire protocol, so every existing client —
// httpapi.Client included — points at the fleet the way it pointed at a
// single replica.
//
// Usage:
//
//	exactsim-router -backends http://10.0.0.1:8640,http://10.0.0.2:8640,http://10.0.0.3:8640
//	exactsim-router -backends ... -hedge-quantile 0.9 -shed-queue 64
//
// Then:
//
//	curl -s localhost:8639/v1/query -d '{"source":42,"k":5}'
//	curl -sN localhost:8639/v1/query/stream -d '{"source":42,"allow_partial":true,"timeout_ms":500}'
//	curl -s localhost:8639/v1/algorithms   # capability/cost surface (re-served from a replica)
//	curl -s localhost:8639/v1/stats        # aggregated FleetStats
//	curl -s localhost:8639/v1/snapshot -o warm.snap   # warmest replica's container
//	curl -s localhost:8639/readyz
//
// The router routes by source over a consistent-hash ring (bounded-load
// spill), so repeated sources land on the same replica and maximize its
// diagonal-sample-index hit rate; polls /readyz + /v1/stats for health-
// and epoch-aware membership; hedges straggling queries on a second
// replica (bit-deterministic replicas make the race safe); sheds load
// when the whole fleet saturates; and proxies /v1/snapshot from the
// warmest replica so a joiner can clone from "the fleet"
// (exactsimd -clone-from http://router:8639). See DESIGN.md §9.
//
// SIGINT/SIGTERM flip /readyz to 503 for -drain, then shut down.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/exactsim/exactsim/cluster"
	"github.com/exactsim/exactsim/internal/fault"
)

func main() {
	var (
		addr     = flag.String("addr", ":8639", "listen address")
		backends = flag.String("backends", "", "comma-separated backend base URLs (required)")
		vnodes   = flag.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
		loadFac  = flag.Float64("bounded-load", 1.25, "bounded-load factor (replica in-flight cap = factor × fleet mean)")
		hedgeQ   = flag.Float64("hedge-quantile", 0.95, "latency quantile after which a query is hedged on a second replica")
		hedgeMin = flag.Duration("hedge-min", time.Millisecond, "floor on the hedge delay")
		hedgeMax = flag.Duration("hedge-max", time.Second, "cap on the hedge delay")
		noHedge  = flag.Bool("no-hedge", false, "disable hedged requests")
		attempts = flag.Int("max-attempts", 3, "distinct replicas one query may touch (retries + hedge)")

		hedgeBudget      = flag.Float64("hedge-budget", 0, "hedge token bucket earn rate per un-hedged success (0 = 2×(1−hedge-quantile) default, negative disables the budget)")
		hedgeBudgetBurst = flag.Int("hedge-budget-burst", 0, "hedge token bucket capacity and starting balance (0 = 16)")

		shedQueue    = flag.Int("shed-queue", 128, "skip a replica whose queue-depth gauge is at/above this (negative disables)")
		shedInflight = flag.Int("shed-inflight", 0, "skip a replica whose in-flight gauge is at/above this (0 disables)")

		poll     = flag.Duration("poll", time.Second, "membership poll interval")
		failN    = flag.Int("fail-threshold", 2, "consecutive poll failures that eject a replica")
		epochLag = flag.Int("epoch-lag", 2, "consecutive polls behind the fleet max epoch that eject a replica")

		breakerN        = flag.Int("breaker-threshold", 5, "consecutive transport failures that open a backend's circuit breaker (negative disables)")
		breakerCooldown = flag.Duration("breaker-cooldown", 500*time.Millisecond, "how long an open breaker blocks traffic before its half-open probe")
		clientRetries   = flag.Int("client-retries", 0, "same-backend transport retries per attempt (0 = default 2, negative disables)")

		maxBatch   = flag.Int("max-batch", 4096, "per-call /v1/batch request bound")
		maxTimeout = flag.Duration("max-timeout", 0, "clamp on client-requested timeouts (0 = none)")
		drain      = flag.Duration("drain", time.Second, "readiness-drain window before shutdown")

		faultSpec = flag.String("fault", "", "deterministic fault injection on all backend traffic, e.g. 'latency=0.05:2ms,reset=0.1,5xx=0.05,short=0.04,corrupt=0.02' (see internal/fault)")
		faultSeed = flag.Uint64("fault-seed", 1, "seed of the -fault schedule; the same seed replays the same chaos run")
	)
	flag.Parse()

	if *backends == "" {
		log.Fatal("exactsim-router: -backends is required")
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	// -fault wraps every backend exchange — queries, probes, the snapshot
	// proxy — in the seeded schedule. The same seed replays the same run.
	var inj *fault.Injector
	var httpClient *http.Client
	if *faultSpec != "" {
		cfg, err := fault.ParseSpec(*faultSpec, *faultSeed)
		if err != nil {
			log.Fatalf("exactsim-router: %v", err)
		}
		inj = fault.New(cfg)
		base := http.DefaultTransport.(*http.Transport).Clone()
		httpClient = &http.Client{Transport: inj.Transport(base)}
		log.Printf("exactsim-router: FAULT INJECTION ARMED: %s seed=%d", *faultSpec, *faultSeed)
	}

	router, err := cluster.New(urls, cluster.Options{
		Vnodes:            *vnodes,
		BoundedLoadFactor: *loadFac,
		HedgeQuantile:     *hedgeQ,
		HedgeMinDelay:     *hedgeMin,
		HedgeMaxDelay:     *hedgeMax,
		DisableHedging:    *noHedge,
		HedgeBudgetRatio:  *hedgeBudget,
		HedgeBudgetBurst:  *hedgeBudgetBurst,
		MaxAttempts:       *attempts,
		ShedQueueDepth:    *shedQueue,
		ShedInFlight:      *shedInflight,
		PollInterval:      *poll,
		FailThreshold:     *failN,
		EpochLagPolls:     *epochLag,
		BreakerThreshold:  *breakerN,
		BreakerCooldown:   *breakerCooldown,
		ClientRetries:     *clientRetries,
		HTTPClient:        httpClient,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()

	api := cluster.NewServer(router, cluster.ServerOptions{
		MaxBatch:   *maxBatch,
		MaxTimeout: *maxTimeout,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: api,
		// Slow-client hygiene: a peer that never finishes its headers or
		// sits idle on a kept-alive connection cannot pin a goroutine or a
		// socket forever. No ReadTimeout/WriteTimeout — query bodies are
		// small but responses (and the snapshot proxy stream) may be long.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	st := router.Stats()
	log.Printf("exactsim-router: fronting %d backends (%d healthy, fleet epoch %d) on %s",
		len(urls), st.HealthyBackends, st.GraphEpoch, *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("exactsim-router: draining for %v", *drain)
	api.SetDraining(true)
	if *drain > 0 {
		time.Sleep(*drain)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("exactsim-router: shutdown: %v", err)
	}
	st = router.Stats()
	log.Printf("exactsim-router: routed %d queries (%d errors, %d retries, %d hedged / %d hedge wins, %d shed, %d breaker skips / %d trips)",
		st.RouterQueries, st.RouterErrors, st.Retries, st.Hedged, st.HedgeWins, st.Shed,
		st.BreakerSkips, st.BreakerTrips)
	if inj != nil {
		log.Printf("exactsim-router: fault injection: %s", inj.Counts().String())
	}
}
