// Command gengraph emits synthetic graphs: either the Table-2 dataset
// stand-ins or parameterized generative models, in edge-list or binary
// format.
//
// Usage:
//
//	gengraph -dataset TW -scale 0.1 -out tw.bin
//	gengraph -model ba -n 100000 -k 4 -out graph.txt -format edgelist
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/internal/graph"
)

func main() {
	var (
		datasetKey = flag.String("dataset", "", "Table-2 dataset key")
		scale      = flag.Float64("scale", 1.0, "dataset scale in (0,1]")
		model      = flag.String("model", "", "ba | dsf | rmat (alternative to -dataset)")
		n          = flag.Int("n", 10000, "node count (model mode)")
		m          = flag.Int("m", 0, "edge count (dsf/rmat; 0 = 10n)")
		k          = flag.Int("k", 4, "attachment degree (ba)")
		seed       = flag.Uint64("seed", 1, "generator seed")
		out        = flag.String("out", "", "output path (default stdout, edgelist only)")
		format     = flag.String("format", "", "edgelist | binary (default by extension: .bin → binary)")
	)
	flag.Parse()

	g, err := build(*datasetKey, *scale, *model, *n, *m, *k, *seed)
	if err != nil {
		fatal(err)
	}
	stats := exactsim.Stats(g)
	fmt.Fprintf(os.Stderr, "generated n=%d m=%d max-in-degree=%d\n",
		stats.N, stats.M, stats.MaxInDegree)

	if err := emit(g, *out, *format); err != nil {
		fatal(err)
	}
}

func build(key string, scale float64, model string, n, m, k int, seed uint64) (*exactsim.Graph, error) {
	switch {
	case key != "" && model != "":
		return nil, fmt.Errorf("use either -dataset or -model, not both")
	case key != "":
		return exactsim.GenerateDataset(key, scale)
	case model == "ba":
		return exactsim.GenerateBarabasiAlbert(n, k, seed), nil
	case model == "dsf":
		if m == 0 {
			m = 10 * n
		}
		return exactsim.GenerateDirectedScaleFree(n, m, seed), nil
	case model == "rmat":
		scalePow := 4
		for 1<<scalePow < n {
			scalePow++
		}
		if m == 0 {
			m = 10 * (1 << scalePow)
		}
		return exactsim.GenerateRMAT(scalePow, m, seed), nil
	default:
		return nil, fmt.Errorf("one of -dataset or -model {ba,dsf,rmat} is required")
	}
}

func emit(g *exactsim.Graph, out, format string) error {
	if format == "" {
		if len(out) > 4 && out[len(out)-4:] == ".bin" {
			format = "binary"
		} else {
			format = "edgelist"
		}
	}
	switch format {
	case "binary":
		if out == "" {
			return fmt.Errorf("binary output requires -out")
		}
		return exactsim.SaveBinary(out, g)
	case "edgelist":
		if out == "" {
			w := bufio.NewWriter(os.Stdout)
			if err := graph.WriteEdgeList(w, g); err != nil {
				return err
			}
			return w.Flush()
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := graph.WriteEdgeList(f, g); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
