// Command experiments regenerates the paper's tables and figures on the
// dataset stand-ins. Each experiment id maps to one table/figure of the
// evaluation section (see DESIGN.md §3):
//
//	experiments -exp table2                  # dataset inventory
//	experiments -exp fig1 -scale 0.2         # MaxError vs query time, small graphs
//	experiments -exp all -quick              # smoke-run everything
//	experiments -exp fig5 -csv out.csv       # machine-readable series
//
// Absolute numbers depend on the host; the *shapes* — which method wins,
// by what factor, where the budget cuts each method off — are the
// reproduction targets recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/exactsim/exactsim/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: "+strings.Join(harness.Experiments(), ", ")+", or all")
		quick   = flag.Bool("quick", false, "tiny smoke-run configuration")
		scale   = flag.Float64("scale", 0, "dataset scale override in (0,1]")
		queries = flag.Int("queries", 0, "query nodes per dataset (paper: 50)")
		budget  = flag.Duration("budget", 0, "per-point time budget (default 2m; paper: 24h)")
		gtEps   = flag.Float64("gteps", 0, "ground-truth epsilon for large graphs (default 1e-7)")
		sf      = flag.Float64("samplefactor", 0, "sampling constant scale (default 1)")
		kTop    = flag.Int("k", 0, "precision cutoff k (paper: 500)")
		csvPath = flag.String("csv", "", "also write raw points as CSV")
		seed    = flag.Uint64("seed", 0, "seed override")
	)
	flag.Parse()

	cfg := harness.Default()
	if *quick {
		cfg = harness.Quick()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *budget > 0 {
		cfg.TimeBudget = *budget
	}
	if *gtEps > 0 {
		cfg.GroundTruthEps = *gtEps
	}
	if *sf > 0 {
		cfg.SampleFactor = *sf
	}
	if *kTop > 0 {
		cfg.K = *kTop
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Out = os.Stderr

	runner := harness.NewRunner(cfg)
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = harness.Experiments()
	}

	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		csvFile = f
	}

	start := time.Now()
	for _, id := range ids {
		rep, err := runner.Run(id)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		if err := rep.Write(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		if csvFile != nil {
			if err := rep.WriteCSV(csvFile); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start).Round(time.Second))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
