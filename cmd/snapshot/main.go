// Command snapshot converts graphs into the repository's snapshot
// container format and inspects existing containers.
//
// Usage:
//
//	snapshot convert [-undirected] -o graph.snap edges.txt
//	snapshot convert -o graph.snap old-format.bin      # legacy binary in
//	snapshot inspect warm.snap
//
// convert autodetects its input: a snapshot container, the legacy
// pre-container binary format, or a SNAP-style text edge list. The
// output is always a graph-only container: converting a warm snapshot
// keeps the graph but drops the diagonal sample index spill (it is
// serving-process state — a warning says so; regenerate it by serving
// with -save-snapshot). inspect verifies every section checksum
// (opening does that unconditionally) and prints the section table,
// graph degree structure and — for snapshots written by a serving
// daemon — the diagonal sample index spill's binding and entry counts.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "convert":
		convert(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  snapshot convert [-undirected] -o out.snap <edges.txt | legacy.bin | container.snap>
  snapshot inspect <container.snap>
`)
	os.Exit(2)
}

func convert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	out := fs.String("o", "", "output container path (required)")
	undirected := fs.Bool("undirected", false, "treat a text edge list as undirected")
	fs.Parse(args)
	if *out == "" || fs.NArg() != 1 {
		usage()
	}
	in := fs.Arg(0)

	start := time.Now()
	g, kind, hadSpill, err := loadAny(in, *undirected)
	if err != nil {
		fatal(err)
	}
	loaded := time.Since(start)
	if hadSpill {
		fmt.Fprintln(os.Stderr, "snapshot: note: input carries a diag-index spill; convert writes a graph-only container (spills are serving-process state — regenerate with exactsimd -save-snapshot)")
	}
	start = time.Now()
	if err := exactsim.SaveBinary(*out, g); err != nil {
		fatal(err)
	}
	fi, _ := os.Stat(*out)
	var size int64
	if fi != nil {
		size = fi.Size()
	}
	fmt.Printf("converted %s (%s) → %s: n=%d m=%d, %d KiB, checksum %#016x (load %v, write %v)\n",
		in, kind, *out, g.N(), g.M(), size>>10, exactsim.GraphChecksum(g),
		loaded.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
}

// legacyMagic mirrors internal/graph's pre-container format marker
// ("GSIMRANK"); the format is frozen, the constant cannot drift.
const legacyMagic = uint64(0x4753494d52414e4b)

// loadAny sniffs the input format by its first 8 bytes. hadSpill
// reports whether a container input carried a diag-index section that
// the conversion will not preserve.
func loadAny(path string, undirected bool) (g *exactsim.Graph, kind string, hadSpill bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", false, err
	}
	var head [8]byte
	n, _ := io.ReadFull(f, head[:])
	f.Close()
	if n == 8 {
		switch binary.LittleEndian.Uint64(head[:]) {
		case store.Magic:
			// One open pays for everything: verification, the graph, and
			// the does-it-carry-a-spill check.
			cf, err := store.Open(path)
			if err != nil {
				return nil, "", false, err
			}
			g, aliased, err := graph.FromContainer(cf)
			if err != nil {
				cf.Close()
				return nil, "", false, err
			}
			_, spill := cf.Section(store.SectionDiagIndex)
			if !aliased {
				cf.Close()
			}
			return g, "container", spill, nil
		case legacyMagic:
			g, err := exactsim.LoadBinary(path)
			return g, "legacy binary", false, err
		}
	}
	g, err = exactsim.LoadEdgeList(path, undirected)
	return g, "text edge list", false, err
}

func inspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	start := time.Now()
	info, err := exactsim.InspectSnapshot(path)
	if err != nil {
		fatal(err)
	}
	var size int64
	if fi, err := os.Stat(path); err == nil {
		size = fi.Size()
	}
	fmt.Printf("%s: %d bytes, opened+verified in %v (mmap=%v)\n",
		path, size, time.Since(start).Round(time.Microsecond), info.Mapped)
	names := map[uint32]string{store.SectionGraph: "graph", store.SectionDiagIndex: "diag-index"}
	for _, sec := range info.Sections {
		name := names[sec.ID]
		if name == "" {
			name = fmt.Sprintf("unknown(%d)", sec.ID)
		}
		fmt.Printf("  section %-12s offset=%-10d bytes=%-10d crc64=%#016x\n",
			name, sec.Offset, sec.Bytes, sec.CRC)
	}
	gs := info.GraphStats
	fmt.Printf("  graph: n=%d m=%d avg-degree=%.2f max-in=%d max-out=%d dead-ends=%d checksum=%#016x\n",
		gs.N, gs.M, gs.AvgDegree, gs.MaxInDegree, gs.MaxOutDegree, gs.DeadEnds, info.GraphChecksum)
	if info.Diag == nil {
		fmt.Println("  diag index: none (graph-only container)")
		return
	}
	d := info.Diag
	if !d.Bound {
		fmt.Println("  diag index: empty spill (index was never used)")
		return
	}
	fmt.Printf("  diag index: %d chunks + %d explorations, bound to graph %#016x (c=%g seed=%d, writer budget %d MiB)\n",
		d.Chunks, d.Explores, d.GraphChecksum, d.C, d.Seed, d.BudgetBytes>>20)
	if d.GraphChecksum != info.GraphChecksum {
		fmt.Println("  WARNING: diag spill is bound to a DIFFERENT graph than this container carries; restore will be rejected")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snapshot:", err)
	os.Exit(1)
}
