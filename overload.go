package exactsim

import (
	"math"
	"sync"
	"time"
)

// Priority is a request's overload class. Under pressure the Service
// sheds classes in reverse order — background first, interactive last —
// so pre-warming and clone traffic can never crowd out a user-facing
// query. The zero value ("") means interactive: unmarked traffic is
// assumed to have a human waiting on it.
type Priority string

const (
	// PriorityInteractive is user-facing traffic: served first, shed
	// last. Empty Priority fields normalize to this class.
	PriorityInteractive Priority = "interactive"
	// PriorityBatch is throughput traffic (offline batches, analytics):
	// served after interactive, shed before it.
	PriorityBatch Priority = "batch"
	// PriorityBackground is optional work — Warm prefetch, clone-driven
	// fills — shed first whenever anything else wants the slot.
	PriorityBackground Priority = "background"
)

// rank maps a Priority onto its queue class (0 = most urgent). The
// second result is false for unknown class names, which the Service
// rejects as invalid_argument rather than guessing a class.
func (p Priority) rank() (int, bool) {
	switch p {
	case "", PriorityInteractive:
		return 0, true
	case PriorityBatch:
		return 1, true
	case PriorityBackground:
		return 2, true
	}
	return 0, false
}

// display is the class name with the zero value spelled out.
func (p Priority) display() Priority {
	if p == "" {
		return PriorityInteractive
	}
	return p
}

// numPriorities is the queue class count (rank 0..numPriorities-1).
const numPriorities = 3

// DefaultDegradeLadder is the brownout downgrade map applied when
// ServiceOptions.DegradeLadder is nil: each algorithm steps to a cheaper
// estimator with a looser (but still bounded and deterministic) accuracy
// profile. Only requests with AllowDegraded set ever take a step.
var DefaultDegradeLadder = map[string]string{
	"exactsim":       "prsim",
	"exactsim-basic": "prsim",
	"parsim":         "prsim",
	"prsim":          "mc",
	"probesim":       "mc",
	"linearization":  "mc",
	"powermethod":    "mc",
}

const (
	// defaultQueueTarget is the CoDel sojourn target: queueing above this
	// for a full window means the pool is behind, not merely bursty.
	defaultQueueTarget = 5 * time.Millisecond
	// defaultQueueWindow is the CoDel interval — how long sojourn must
	// stay above target before head drops begin, and the sliding horizon
	// of the brownout overload signal.
	defaultQueueWindow = 100 * time.Millisecond
	// defaultBrownoutMaxEpsilon caps brownout epsilon loosening: a
	// degraded answer doubles the request's epsilon at most up to here.
	defaultBrownoutMaxEpsilon = 0.1
)

// queueDropReason says why the queue ejected a job without running it.
type queueDropReason int

const (
	// dropShed: the queue was full and this job was the cheapest loss
	// (either the incoming job, or a queued lower-class victim evicted to
	// make room for a more urgent arrival).
	dropShed queueDropReason = iota
	// dropCoDel: sojourn time stayed over target for a full window, so
	// the queue is standing, not bursting — oldest-first drops shorten it
	// (dropping from the tail would keep serving stale work forever).
	// Only deadline-bearing jobs are eligible: a caller with no deadline
	// asked to wait however long it takes, so ejecting it would turn a
	// slow answer into a wrong one.
	dropCoDel
)

// serviceQueue replaces the single FIFO jobs channel: three bounded
// per-class FIFOs drained strictly by class (interactive before batch
// before background), with class-aware shedding on overflow and
// CoDel-style age-based head drop once standing sojourn exceeds the
// target for a window. All state is guarded by mu; onDrop is invoked
// outside the lock and must answer the job (exactly once — a dropped job
// is no longer reachable by any worker).
type serviceQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	capacity int
	closed   bool
	classes  [numPriorities][]*serviceJob
	size     int

	target time.Duration // CoDel sojourn target; <=0 disables age drops
	window time.Duration // CoDel interval / overload horizon

	// CoDel control-law state (Nichols & Jacobson): first-above-target
	// timestamp, whether we are in the dropping state, and the next drop
	// time advancing as window/sqrt(dropCount).
	aboveSince time.Time
	dropping   bool
	dropNext   time.Time
	dropCount  int

	// lastShed timestamps the most recent overflow shed — together with
	// the dropping state it forms the brownout "sustained overload"
	// signal.
	lastShed time.Time

	// sojournEWMA smooths observed queue dwell (α = 1/8); it sizes the
	// retry_after_ms hint shed responses carry.
	sojournEWMA time.Duration

	sheds      int64
	codelDrops int64

	onDrop func(*serviceJob, queueDropReason)
}

func newServiceQueue(capacity int, target, window time.Duration, onDrop func(*serviceJob, queueDropReason)) *serviceQueue {
	q := &serviceQueue{capacity: capacity, target: target, window: window, onDrop: onDrop}
	q.cond = sync.NewCond(&q.mu)
	return q
}

type pushVerdict int

const (
	pushOK pushVerdict = iota
	pushShed
	pushClosed
)

// push enqueues job, shedding class-aware on overflow: a full queue
// evicts the newest job of the lowest class strictly below the incoming
// one (background loses its slot to batch, both lose to interactive);
// when nothing queued is lower, the incoming job itself is shed. The
// submitter learns its own fate from the verdict; an evicted victim is
// answered through onDrop.
func (q *serviceQueue) push(job *serviceJob) pushVerdict {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return pushClosed
	}
	var victim *serviceJob
	if q.size >= q.capacity {
		q.lastShed = time.Now()
		q.sheds++
		for c := numPriorities - 1; c > job.pri; c-- {
			if n := len(q.classes[c]); n > 0 {
				victim = q.classes[c][n-1]
				q.classes[c][n-1] = nil
				q.classes[c] = q.classes[c][:n-1]
				q.size--
				break
			}
		}
		if victim == nil {
			q.mu.Unlock()
			return pushShed
		}
	}
	q.classes[job.pri] = append(q.classes[job.pri], job)
	q.size++
	q.cond.Signal()
	q.mu.Unlock()
	if victim != nil {
		q.onDrop(victim, dropShed)
	}
	return pushOK
}

// pop blocks until a job is available (or the queue is closed and
// drained) and returns the head of the highest-priority nonempty class.
// Dequeue is where CoDel acts: the popped job's sojourn feeds the
// control law, and when a drop fires the victim is the oldest
// deadline-bearing job of the least-urgent nonempty class — work whose
// loss hurts least and whose caller bounded its wait anyway. The popped
// job itself is dropped only when nothing cheaper is droppable and it
// carries a deadline of its own; when the whole backlog is unbounded
// waiters, the control law stays armed but no job is lost.
func (q *serviceQueue) pop() (*serviceJob, bool) {
	q.mu.Lock()
	for {
		for q.size == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.size == 0 {
			q.mu.Unlock()
			return nil, false
		}
		job := q.dequeueLocked(0)
		now := time.Now()
		sojourn := now.Sub(job.enq)
		q.observeLocked(sojourn)
		if !q.codelDropLocked(sojourn, now) {
			q.mu.Unlock()
			return job, true
		}
		if victim := q.codelVictimLocked(job.pri + 1); victim != nil {
			q.codelDrops++
			q.mu.Unlock()
			q.onDrop(victim, dropCoDel)
			return job, true
		}
		if job.deadline {
			q.codelDrops++
			q.mu.Unlock()
			q.onDrop(job, dropCoDel)
			q.mu.Lock()
			continue
		}
		q.mu.Unlock()
		return job, true
	}
}

// codelVictimLocked removes and returns the oldest deadline-bearing job
// of the least-urgent nonempty class at or below minClass urgency; nil
// when nothing queued there is droppable (deadline-free callers wait out
// any backlog — CoDel never ejects them).
func (q *serviceQueue) codelVictimLocked(minClass int) *serviceJob {
	for c := numPriorities - 1; c >= minClass; c-- {
		cls := q.classes[c]
		for i, job := range cls {
			if !job.deadline {
				continue
			}
			copy(cls[i:], cls[i+1:])
			cls[len(cls)-1] = nil
			q.classes[c] = cls[:len(cls)-1]
			q.size--
			return job
		}
	}
	return nil
}

// dequeueLocked removes and returns the head (oldest) job of the first
// nonempty class at or below minClass urgency; nil when none.
func (q *serviceQueue) dequeueLocked(minClass int) *serviceJob {
	for c := minClass; c < numPriorities; c++ {
		cls := q.classes[c]
		if len(cls) == 0 {
			continue
		}
		job := cls[0]
		cls[0] = nil
		if len(cls) == 1 {
			q.classes[c] = nil // release the drifting backing array
		} else {
			q.classes[c] = cls[1:]
		}
		q.size--
		return job
	}
	return nil
}

// observeLocked folds one dequeued sojourn into the EWMA (α = 1/8).
func (q *serviceQueue) observeLocked(sojourn time.Duration) {
	if q.sojournEWMA == 0 {
		q.sojournEWMA = sojourn
		return
	}
	q.sojournEWMA += (sojourn - q.sojournEWMA) / 8
}

// codelDropLocked runs the CoDel control law on one dequeue: drops begin
// after sojourn stays above target for a full window and then accelerate
// as window/sqrt(count) until a below-target dequeue resets the state.
func (q *serviceQueue) codelDropLocked(sojourn time.Duration, now time.Time) bool {
	if q.target <= 0 {
		return false
	}
	if sojourn < q.target {
		q.aboveSince = time.Time{}
		q.dropping = false
		q.dropCount = 0
		return false
	}
	if q.aboveSince.IsZero() {
		q.aboveSince = now
		return false
	}
	if !q.dropping {
		if now.Sub(q.aboveSince) < q.window {
			return false
		}
		q.dropping = true
		q.dropCount = 1
		q.dropNext = now.Add(codelInterval(q.window, 1))
		return true
	}
	if now.Before(q.dropNext) {
		return false
	}
	q.dropCount++
	q.dropNext = now.Add(codelInterval(q.window, q.dropCount))
	return true
}

// codelInterval is the inter-drop spacing: window/sqrt(count), so the
// drop rate ramps gently instead of cliff-dropping the queue.
func codelInterval(window time.Duration, count int) time.Duration {
	return time.Duration(float64(window) / math.Sqrt(float64(count)))
}

// overloaded is the brownout signal: the queue is in the CoDel dropping
// state, or an overflow shed happened within the last window. Both mean
// demand has exceeded capacity for a sustained stretch, not one burst.
func (q *serviceQueue) overloaded() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropping || (!q.lastShed.IsZero() && time.Since(q.lastShed) <= q.window)
}

// retryAfterMillis sizes the retry_after_ms hint on shed responses:
// twice the smoothed sojourn (the backlog should have moved by then),
// floored at the sojourn target and 1ms, capped at 1s.
func (q *serviceQueue) retryAfterMillis() int64 {
	q.mu.Lock()
	hint := 2 * q.sojournEWMA
	floor := q.target
	q.mu.Unlock()
	if floor <= 0 {
		floor = 10 * time.Millisecond
	}
	if hint < floor {
		hint = floor
	}
	if hint > time.Second {
		hint = time.Second
	}
	ms := hint.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// expectedDwell is the planner's queue-pressure input: the smoothed
// sojourn a newly admitted job should expect to wait before a worker
// touches it. Flexible "auto" plans charge it against the request's
// deadline budget, so a request arriving behind a standing backlog is
// planned as if its deadline were already that much shorter.
func (q *serviceQueue) expectedDwell() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sojournEWMA
}

// depth reports the queued job count.
func (q *serviceQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// dropStats snapshots the shed/CoDel counters and the smoothed sojourn.
func (q *serviceQueue) dropStats() (sheds, codelDrops int64, sojourn time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sheds, q.codelDrops, q.sojournEWMA
}

// close wakes every waiting worker; queued jobs are still drained (pop
// keeps returning them until the queue empties), matching the channel
// semantics this queue replaced. Pushes after close report pushClosed.
func (q *serviceQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
