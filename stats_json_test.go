package exactsim

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// statsTagGolden pins the wire name of every ServiceStats gauge. The
// struct is consumed by dashboards and by the cluster router's FleetStats
// aggregation (which embeds it), so renaming or dropping a tag is a
// protocol break — this test makes that a deliberate act.
var statsTagGolden = map[string]string{
	"Queries":            "queries",
	"CacheHits":          "cache_hits",
	"Errors":             "errors",
	"CachedResults":      "cached_results",
	"QueueDepth":         "queue_depth",
	"InFlight":           "in_flight",
	"Queriers":           "queriers",
	"GraphEpoch":         "graph_epoch",
	"DiagIndexEnabled":   "diag_index_enabled",
	"DiagHits":           "diag_hits",
	"DiagMisses":         "diag_misses",
	"DiagHitRate":        "diag_hit_rate",
	"DiagEvictions":      "diag_evictions",
	"DiagChunks":         "diag_chunks",
	"DiagExplores":       "diag_explores",
	"DiagResidentBytes":  "diag_resident_bytes",
	"DiagBudgetBytes":    "diag_budget_bytes",
	"ShedQueries":        "shed_queries",
	"CoDelDrops":         "codel_drops",
	"DeadlineRejected":   "deadline_rejected",
	"DegradedQueries":    "degraded_queries",
	"BrownoutActive":     "brownout_active",
	"QueueSojournMicros": "queue_sojourn_us",
	"AutoPlanned":        "auto_planned",
	"PartialResults":     "partial_results",
	"PanicsRecovered":    "panics_recovered",
	"LastPanic":          "last_panic",
}

func TestServiceStatsTagsComplete(t *testing.T) {
	st := reflect.TypeOf(ServiceStats{})
	if st.NumField() != len(statsTagGolden) {
		t.Fatalf("ServiceStats has %d fields, golden map has %d — update statsTagGolden (and FleetStats aggregation) for the new gauge",
			st.NumField(), len(statsTagGolden))
	}
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		want, ok := statsTagGolden[f.Name]
		if !ok {
			t.Errorf("field %s not in golden map", f.Name)
			continue
		}
		tag := strings.Split(f.Tag.Get("json"), ",")[0]
		if tag != want {
			t.Errorf("field %s: json tag %q, golden %q", f.Name, tag, want)
		}
	}
}

// TestServiceStatsJSONRoundTrip populates every gauge with a distinct
// nonzero value via reflection and proves the JSON round trip loses
// nothing: any future field either survives the trip or fails here.
func TestServiceStatsJSONRoundTrip(t *testing.T) {
	var in ServiceStats
	v := reflect.ValueOf(&in).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int64:
			f.SetInt(int64(1000 + i))
		case reflect.Uint64:
			f.SetUint(uint64(2000 + i))
		case reflect.Float64:
			f.SetFloat(0.5 + float64(i))
		case reflect.Bool:
			f.SetBool(true)
		case reflect.String:
			f.SetString(fmt.Sprintf("s%d", i))
		default:
			t.Fatalf("ServiceStats.%s has kind %s — teach this test to populate it",
				v.Type().Field(i).Name, f.Kind())
		}
	}

	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out ServiceStats
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Fatalf("round trip lost data:\n in: %+v\nout: %+v", in, out)
	}

	// The wire object carries exactly the golden names — no unexported
	// leakage, no accidental omitempty dropping a zero gauge.
	var wire map[string]any
	if err := json.Unmarshal(blob, &wire); err != nil {
		t.Fatal(err)
	}
	if len(wire) != len(statsTagGolden) {
		t.Fatalf("wire object has %d keys, want %d: %v", len(wire), len(statsTagGolden), wire)
	}
	for _, name := range statsTagGolden {
		if _, ok := wire[name]; !ok {
			t.Errorf("wire object missing %q", name)
		}
	}
}

// TestServiceStatsLiveValuesSurviveWire drives a real service and checks
// the gauges a fleet router depends on (epoch, hit rate, residency)
// survive serialization from live values, not just synthetic ones.
func TestServiceStatsLiveValuesSurviveWire(t *testing.T) {
	g := GenerateBarabasiAlbert(200, 3, 21)
	svc, err := NewService(g, ServiceOptions{
		Workers:        2,
		QuerierOptions: []QuerierOption{WithEpsilon(0.1), WithSeed(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ctx := t.Context()
	for src := 0; src < 8; src++ {
		if resp := svc.Query(ctx, Request{Source: NodeID(src)}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
		// Repeat → cache hit.
		if resp := svc.Query(ctx, Request{Source: NodeID(src)}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}

	in := svc.Stats()
	if in.Queries != 16 || in.CacheHits != 8 || in.GraphEpoch != 1 {
		t.Fatalf("unexpected live stats: %+v", in)
	}
	if !in.DiagIndexEnabled || in.DiagResidentBytes == 0 {
		t.Fatalf("diag index gauges empty: %+v", in)
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out ServiceStats
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Fatalf("live stats round trip lost data:\n in: %+v\nout: %+v", in, out)
	}
}
