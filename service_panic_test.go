package exactsim_test

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	exactsim "github.com/exactsim/exactsim"
	"github.com/exactsim/exactsim/internal/algo"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/sparse"
)

// panicNextQueries arms the test-panic algorithm: while positive, each
// SingleSource decrements it and panics. panicNextBuilds does the same
// for the factory (the querier-build path).
var (
	panicNextQueries atomic.Int64
	panicNextBuilds  atomic.Int64
	registerPanicAlg sync.Once
)

const panicAlgName = "test-panic"

// panicQuerier answers deterministic fake scores when disarmed — a pure
// function of (source, n), so every replica agrees bit for bit — and
// panics when armed. It exists to prove containment, not similarity.
type panicQuerier struct{ g *graph.Graph }

func (q *panicQuerier) Name() string        { return panicAlgName }
func (q *panicQuerier) Graph() *graph.Graph { return q.g }

func (q *panicQuerier) SingleSource(ctx context.Context, source graph.NodeID) (*algo.Result, error) {
	if panicNextQueries.Load() > 0 && panicNextQueries.Add(-1) >= 0 {
		panic("test-panic: injected query panic")
	}
	start := time.Now()
	n := q.g.N()
	scores := make([]float64, n)
	for i := range scores {
		d := int(source) - i
		if d < 0 {
			d = -d
		}
		scores[i] = 1 / float64(1+d)
	}
	scores[source] = 1
	return &algo.Result{Algorithm: panicAlgName, Scores: scores, QueryTime: time.Since(start)}, nil
}

func (q *panicQuerier) TopK(ctx context.Context, source graph.NodeID, k int) ([]sparse.Entry, *algo.Result, error) {
	res, err := q.SingleSource(ctx, source)
	if err != nil {
		return nil, nil, err
	}
	return sparse.TopK(res.Scores, k, source), res, nil
}

func registerPanicAlgorithm() {
	registerPanicAlg.Do(func() {
		algo.Register(panicAlgName, func(ctx context.Context, g *graph.Graph, cfg algo.Config) (algo.Querier, error) {
			if panicNextBuilds.Load() > 0 && panicNextBuilds.Add(-1) >= 0 {
				panic("test-panic: injected build panic")
			}
			return &panicQuerier{g: g}, nil
		})
	})
}

// TestServicePanicContainment: a panicking algorithm costs one
// CodeInternal response and a panics_recovered increment — never a
// worker, never the process.
func TestServicePanicContainment(t *testing.T) {
	registerPanicAlgorithm()
	g := exactsim.GenerateBarabasiAlbert(100, 3, 7)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := t.Context()

	// Disarmed baseline: the fake algorithm answers.
	base := svc.Query(ctx, exactsim.Request{Algorithm: panicAlgName, Source: 5})
	if base.Err != nil {
		t.Fatal(base.Err)
	}
	if base.Result.Scores[5] != 1 {
		t.Fatalf("fake scores wrong: %v", base.Result.Scores[:8])
	}

	// Armed: the panic surfaces as CodeInternal, not a crash.
	panicNextQueries.Store(2)
	for i := 0; i < 2; i++ {
		resp := svc.Query(ctx, exactsim.Request{Algorithm: panicAlgName, Source: 5, NoCache: true})
		if resp.Err == nil {
			t.Fatalf("armed query %d succeeded", i)
		}
		if resp.Err.Code != exactsim.CodeInternal {
			t.Fatalf("armed query %d: code %q, want internal", i, resp.Err.Code)
		}
		if !strings.Contains(resp.Err.Message, "panic") {
			t.Fatalf("error does not mention the panic: %v", resp.Err)
		}
	}

	st := svc.Stats()
	if st.PanicsRecovered != 2 {
		t.Fatalf("panics_recovered = %d, want 2", st.PanicsRecovered)
	}
	if !strings.Contains(st.LastPanic, "injected query panic") {
		t.Fatalf("last_panic = %q", st.LastPanic)
	}
	if strings.Contains(st.LastPanic, "\n") {
		t.Fatalf("last_panic carries a stack trace: %q", st.LastPanic)
	}

	// The pool survived: every worker still answers.
	for src := 0; src < 8; src++ {
		if resp := svc.Query(ctx, exactsim.Request{Algorithm: panicAlgName, Source: exactsim.NodeID(src), NoCache: true}); resp.Err != nil {
			t.Fatalf("post-panic query %d failed: %v", src, resp.Err)
		}
	}
	if errs := svc.Stats().Errors; errs < 2 {
		t.Fatalf("errors counter %d did not count the panics", errs)
	}
}

// TestServiceBuildPanicContainment: a factory panic during the
// single-flight querier build fails that build (CodeInternal), releases
// every waiter, and the next request retries the build successfully.
func TestServiceBuildPanicContainment(t *testing.T) {
	registerPanicAlgorithm()
	g := exactsim.GenerateBarabasiAlbert(100, 3, 7)
	svc, err := exactsim.NewService(g, exactsim.ServiceOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := t.Context()

	panicNextBuilds.Store(1)
	// Two concurrent first-queries share the single-flight build; both
	// must see its failure rather than hang on slot.done.
	var wg sync.WaitGroup
	errsCh := make(chan *exactsim.Error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := svc.Query(ctx, exactsim.Request{Algorithm: panicAlgName, Source: 3, NoCache: true})
			errsCh <- resp.Err
		}()
	}
	wg.Wait()
	close(errsCh)
	sawInternal := 0
	for e := range errsCh {
		if e != nil && e.Code == exactsim.CodeInternal {
			sawInternal++
		}
	}
	if sawInternal == 0 {
		t.Fatal("no waiter saw the build panic as CodeInternal")
	}
	if got := svc.Stats().PanicsRecovered; got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}

	// The poisoned slot was removed: a fresh request rebuilds and answers.
	resp := svc.Query(ctx, exactsim.Request{Algorithm: panicAlgName, Source: 3})
	if resp.Err != nil {
		t.Fatalf("rebuild after build panic failed: %v", resp.Err)
	}
}
