// Package detrange flags iteration-order and scheduling nondeterminism in
// the deterministic kernel packages: map ranges whose effect depends on
// iteration order, reflection-based non-stable sort.Slice calls, and
// multi-way selects whose winner is chosen pseudorandomly by the runtime.
//
// Go randomizes map iteration order per run and select-case choice per
// execution; inside the kernel either one silently breaks the bit-exact
// reproducibility that chunk merging (DESIGN §7) and replica hedging
// (DESIGN §9) are built on.
//
// The analyzer is pattern-aware rather than absolutist: a map range whose
// body is provably order-insensitive — collecting keys that are sorted
// immediately after, copying entries into another map, integer counting —
// is accepted without a directive, because that idiom is the *fix* for
// nondeterministic iteration, not an instance of it.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/exactsim/exactsim/internal/lint"
	"github.com/exactsim/exactsim/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flag order-nondeterministic constructs in deterministic kernel packages\n\n" +
		"Reports map ranges with order-sensitive bodies, sort.Slice (reflection-based,\n" +
		"non-stable), and selects with more than one live communication case. Escape\n" +
		"with '" + lint.Directive + " <justification>' when the nondeterminism provably\n" +
		"cannot reach scored output.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	// Validate directive justifications everywhere — a bare
	// //lint:nondeterministic-ok must not silently rot in any package —
	// then gate the actual checks to the kernel set.
	sup := lint.NewSuppressor(pass)
	if !lint.IsKernelPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	lint.WalkFiles(pass, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkBlock(pass, sup, n.List)
			case *ast.CaseClause:
				checkBlock(pass, sup, n.Body)
			case *ast.CommClause:
				checkBlock(pass, sup, n.Body)
			case *ast.CallExpr:
				checkSortSlice(pass, sup, n)
			case *ast.SelectStmt:
				checkSelect(pass, sup, n)
			}
			return true
		})
	})
	return nil, nil
}

// checkBlock examines every map range among stmts with visibility into the
// statements that follow it, so the keys-then-sort idiom can be recognized.
func checkBlock(pass *analysis.Pass, sup *lint.Suppressor, stmts []ast.Stmt) {
	for i, s := range stmts {
		rng, ok := s.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := pass.TypesInfo.Types[rng.X].Type
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		if sup.Suppressed(rng.Pos()) {
			continue
		}
		if rng.Key == nil && rng.Value == nil {
			// `for range m` runs the body len(m) identical times;
			// no iteration-order dependence to observe.
			continue
		}
		if orderInsensitive(pass, rng, stmts[i+1:]) {
			continue
		}
		pass.Reportf(rng.Pos(), "map iteration order is randomized per run; kernel results must not depend on it — iterate sorted keys, or escape with '%s <why>'", lint.Directive)
	}
}

// orderInsensitive reports whether the range body provably commutes:
// every statement is order-insensitive on its own, and every slice the
// body appends to is sorted in the statements following the loop.
func orderInsensitive(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) bool {
	var sinks []types.Object // append targets that must be sorted later
	for _, s := range rng.Body.List {
		obj, ok := stmtCommutes(pass, s)
		if !ok {
			return false
		}
		if obj != nil {
			sinks = append(sinks, obj)
		}
	}
	for _, obj := range sinks {
		if !sortedLater(pass, obj, rest) {
			return false
		}
	}
	return true
}

// stmtCommutes classifies one loop-body statement. It returns (sink, true)
// when the statement is order-insensitive; sink is non-nil for an append
// whose target must additionally be sorted after the loop.
func stmtCommutes(pass *analysis.Pass, s ast.Stmt) (types.Object, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return nil, false
		}
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		// x = append(x, ...): accumulates a multiset; order-insensitive
		// once sorted. The target must be a plain identifier so the
		// later sort can be matched to it.
		if id, ok := lhs.(*ast.Ident); ok && s.Tok == token.ASSIGN {
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "append") {
				if len(call.Args) > 0 {
					if arg0, ok := call.Args[0].(*ast.Ident); ok && arg0.Name == id.Name {
						return pass.TypesInfo.ObjectOf(id), true
					}
				}
			}
		}
		// dst[expr] = v where dst is a map: each distinct key writes a
		// distinct cell, so iteration order cannot be observed (map
		// copy / inversion idioms).
		if ix, ok := lhs.(*ast.IndexExpr); ok && s.Tok == token.ASSIGN {
			if t := pass.TypesInfo.Types[ix.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return nil, true
				}
			}
		}
		// n += k, n |= k, ...: exact and commutative for integers only —
		// float addition is order-dependent in the last bits, which is
		// precisely what this analyzer exists to catch.
		switch s.Tok {
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			if t := pass.TypesInfo.Types[lhs].Type; t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					return nil, true
				}
			}
		}
		return nil, false
	case *ast.IncDecStmt:
		return nil, true
	case *ast.BranchStmt:
		return nil, s.Tok == token.CONTINUE
	case *ast.IfStmt:
		// A pure filter — `if cond { continue }` with no else — only
		// drops iterations; combined with commuting siblings it stays
		// order-insensitive.
		if s.Else != nil || len(s.Body.List) != 1 {
			return nil, false
		}
		br, ok := s.Body.List[0].(*ast.BranchStmt)
		return nil, ok && br.Tok == token.CONTINUE
	case *ast.ExprStmt:
		// delete(m, k) removes a key wherever in the order it appears.
		if call, ok := s.X.(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "delete") {
			return nil, true
		}
		return nil, false
	}
	return nil, false
}

// sortishFuncs are the callees accepted as "sorting the collected keys":
// the stdlib sort/slices entry points plus anything whose name mentions
// Sort (covering project-local typed sorters).
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	case *ast.IndexExpr: // generic instantiation: slices.Sort[...]
		if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			name = sel.Sel.Name
		}
	}
	switch name {
	case "Sort", "Stable", "Strings", "Ints", "Float64s", "Slice", "SliceStable",
		"SortFunc", "SortStableFunc":
		return true
	}
	return false
}

// sortedLater reports whether obj is passed to a sort call somewhere in
// the statements following the range loop.
func sortedLater(pass *analysis.Pass, obj types.Object, rest []ast.Stmt) bool {
	if obj == nil {
		return false
	}
	found := false
	for _, s := range rest {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSortCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok
}

// checkSortSlice flags sort.Slice: its reflect-based swapper is slow in
// kernel hot loops, and its non-stable order makes ties land differently
// across runs whenever the less function is not a total order.
func checkSortSlice(pass *analysis.Pass, sup *lint.Suppressor, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sort" || fn.Name() != "Slice" {
		return
	}
	if lint.IsTestFile(pass.Fset, call.Pos()) || sup.Suppressed(call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(), "sort.Slice is reflection-based and non-stable; kernel sorts must use a typed sort.Interface or a stable sort with a total order")
}

// checkSelect flags selects with two or more live communication cases:
// when several are ready the runtime picks one uniformly at random, so any
// kernel state touched in the winning case becomes schedule-dependent.
func checkSelect(pass *analysis.Pass, sup *lint.Suppressor, sel *ast.SelectStmt) {
	if lint.IsTestFile(pass.Fset, sel.Pos()) || sup.Suppressed(sel.Pos()) {
		return
	}
	comm := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comm++
		}
	}
	if comm >= 2 {
		pass.Reportf(sel.Pos(), "select with %d communication cases resolves races pseudorandomly; kernel control flow must be schedule-independent — restructure, or escape with '%s <why>'", comm, lint.Directive)
	}
}
