// Package linttest is a stdlib-only analog of x/tools' analysistest: it
// runs one analyzer over a testdata package and checks its diagnostics
// against `// want "regexp"` comments in the sources.
//
// Conventions:
//   - Each test case is a directory of .go files (conventionally under
//     internal/lint/testdata, which the go tool ignores).
//   - The package is type-checked against the standard library via the
//     source importer, so cases may import stdlib packages but nothing
//     from this module.
//   - The import path is supplied by the test, not derived from disk:
//     the analyzers gate on package paths (kernel set, serving surface),
//     so one directory can be replayed under different identities to
//     prove a check stays silent outside its target packages.
//   - A line expecting diagnostics carries one or more `// want "re"`
//     clauses; every diagnostic must be matched by a clause on its line
//     and every clause must be matched by a diagnostic, or the test
//     fails with the full delta.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"github.com/exactsim/exactsim/internal/lint/analysis"
)

var wantRE = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)$`)
var quoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run analyzes the package in dir under the given import path and
// compares diagnostics with the `// want` expectations in its sources.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	files, fset, pkg, info := load(t, dir, importPath)

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				k := key{filepath.Base(posn.Filename), posn.Line}
				for _, q := range quoted.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, q[1], err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		k := key{filepath.Base(posn.Filename), posn.Line}
		ok := false
		for _, re := range wants[k] {
			if !matched[re] && re.MatchString(d.Message) {
				matched[re] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	var missed []string
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				missed = append(missed, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
			}
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}

// load parses and type-checks every .go file in dir as one package named
// by importPath, resolving imports (stdlib only) from source.
func load(t *testing.T, dir, importPath string) ([]*ast.File, *token.FileSet, *types.Package, *types.Info) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no .go files in %s (%v)", dir, err)
	}
	sort.Strings(paths)
	fset := token.NewFileSet()
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", p, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	return files, fset, pkg, info
}
