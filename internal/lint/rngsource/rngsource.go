// Package rngsource bans ambient randomness and wall-clock reads in the
// deterministic kernel packages.
//
// Every random bit consumed by the compute path must flow through
// internal/rng's seeded xoshiro256++ streams: chunk-exact diagonal merging
// (DESIGN §7) and cross-replica hedging (DESIGN §9) are sound only because
// the same (seed, node, chunk) key always reproduces the same samples.
// math/rand (any seeding), crypto/rand, and time.Now each smuggle
// machine-local entropy into that path, so their mere presence in a kernel
// package is an error — not just their use on a hot line.
package rngsource

import (
	"go/ast"
	"go/types"
	"strconv"

	"github.com/exactsim/exactsim/internal/lint"
	"github.com/exactsim/exactsim/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "rngsource",
	Doc: "forbid math/rand, crypto/rand, and time.Now in deterministic kernel packages\n\n" +
		"Kernel packages (internal/core, diag, linalg, sparse, walk, rng, ppr, graph, gen)\n" +
		"must draw randomness only from internal/rng's seeded generators and must not\n" +
		"read the wall clock; both break bit-reproducibility of sampled results.",
	Run: run,
}

// bannedImports maps a forbidden import path to why it is forbidden.
var bannedImports = map[string]string{
	"math/rand":    "unseedable global state; use internal/rng's seeded streams",
	"math/rand/v2": "unseedable global state; use internal/rng's seeded streams",
	"crypto/rand":  "machine entropy is unreproducible; use internal/rng's seeded streams",
}

// bannedCalls maps "pkgpath.Func" to the reason a call is forbidden.
var bannedCalls = map[string]string{
	"time.Now":   "wall-clock reads are machine-local",
	"time.Since": "reads the wall clock via time.Now",
	"time.Until": "reads the wall clock via time.Now",
}

func run(pass *analysis.Pass) (any, error) {
	if !lint.IsKernelPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	// Quiet: detrange owns validation of bare Directive comments.
	sup := lint.NewQuietSuppressor(pass)
	lint.WalkFiles(pass, func(f *ast.File) {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := bannedImports[path]; ok && !sup.Suppressed(imp.Pos()) {
				pass.Reportf(imp.Pos(), "import of %s in deterministic kernel package: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			key := fn.Pkg().Path() + "." + fn.Name()
			if why, ok := bannedCalls[key]; ok && !sup.Suppressed(call.Pos()) {
				pass.Reportf(call.Pos(), "call to %s in deterministic kernel package: %s", key, why)
			}
			return true
		})
	})
	return nil, nil
}
