package lint_test

import (
	"testing"

	"github.com/exactsim/exactsim/internal/lint"
	"github.com/exactsim/exactsim/internal/lint/analysis"
	"github.com/exactsim/exactsim/internal/lint/ctxpoll"
	"github.com/exactsim/exactsim/internal/lint/detrange"
	"github.com/exactsim/exactsim/internal/lint/errcode"
	"github.com/exactsim/exactsim/internal/lint/linttest"
	"github.com/exactsim/exactsim/internal/lint/rngsource"
	"github.com/exactsim/exactsim/internal/lint/shedpath"
)

// kernelID replays a fixture directory as if it were a deterministic
// kernel package; surfaceID as the cluster serving surface; outsideID as
// a package none of the contracts bind.
const (
	kernelID  = lint.ModulePath + "/internal/core"
	surfaceID = lint.ModulePath + "/cluster"
	outsideID = lint.ModulePath + "/internal/harness"
)

// TestGolden drives every analyzer over its seeded-violation fixture:
// each `// want` line must fire and every other line must stay silent,
// covering the escape hatches and the false-positive regressions
// (sorted-after-range, typed sorts, conditioned loops, unexported
// helpers) in the same pass.
func TestGolden(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		dir      string
		id       string
	}{
		{detrange.Analyzer, "testdata/detrange", kernelID},
		{rngsource.Analyzer, "testdata/rngsource", kernelID},
		{errcode.Analyzer, "testdata/errcode", surfaceID},
		{ctxpoll.Analyzer, "testdata/ctxpoll", kernelID},
		{shedpath.Analyzer, "testdata/shedpath", surfaceID},
	}
	for _, c := range cases {
		t.Run(c.analyzer.Name, func(t *testing.T) {
			linttest.Run(t, c.analyzer, c.dir, c.id)
		})
	}
}

// TestOutsideTargetsSilent replays a fixture seeded with violations of
// all four analyzers under an import path none of them bind: the
// contracts are scoped to package sets, and a check that fired here
// would lint the whole repository into escape-hatch soup.
func TestOutsideTargetsSilent(t *testing.T) {
	for _, a := range []*analysis.Analyzer{
		detrange.Analyzer, rngsource.Analyzer, errcode.Analyzer, ctxpoll.Analyzer,
		shedpath.Analyzer,
	} {
		t.Run(a.Name, func(t *testing.T) {
			linttest.Run(t, a, "testdata/nontarget", outsideID)
		})
	}
}

// TestKernelSetPins the package-set predicates: growing or shrinking
// either set must be a conscious, reviewed act.
func TestKernelSet(t *testing.T) {
	for _, p := range []string{
		"/internal/core", "/internal/diag", "/internal/linalg", "/internal/sparse",
		"/internal/walk", "/internal/rng", "/internal/ppr", "/internal/graph", "/internal/gen",
	} {
		if !lint.IsKernelPackage(lint.ModulePath + p) {
			t.Errorf("IsKernelPackage(%s) = false, want true", p)
		}
	}
	for _, p := range []string{"/internal/harness", "/cluster", "/httpapi", ""} {
		if lint.IsKernelPackage(lint.ModulePath + p) {
			t.Errorf("IsKernelPackage(%q) = true, want false", p)
		}
	}
	// Test variants inherit their base package's obligations.
	if !lint.IsKernelPackage(lint.ModulePath + "/internal/rng_test") {
		t.Error("external test variant of a kernel package should count as kernel")
	}
	if !lint.IsKernelPackage(lint.ModulePath + "/internal/rng [" + lint.ModulePath + "/internal/rng.test]") {
		t.Error("vet unit ID of a kernel package should count as kernel")
	}
	for _, p := range []string{"", "/httpapi", "/cluster"} {
		if !lint.CodedErrorPackages(lint.ModulePath + p) {
			t.Errorf("CodedErrorPackages(%q) = false, want true", p)
		}
	}
	if lint.CodedErrorPackages(lint.ModulePath + "/internal/core") {
		t.Error("kernel packages are not part of the coded-error surface")
	}
}
