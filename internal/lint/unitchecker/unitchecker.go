// Package unitchecker implements the `go vet -vettool` protocol for the
// repository's analyzers, on the standard library alone.
//
// The go command drives a vet tool one compilation unit at a time:
//
//  1. `tool -V=full` — must print "<name> version <v> ... buildID=<id>";
//     the go command hashes the line into its action cache key.
//  2. `tool -flags` — must print a JSON description of the tool's flags so
//     the go command can validate pass-through arguments.
//  3. `tool [flags] <unit>.cfg` — analyze one package. The .cfg file is a
//     JSON Config carrying the unit's file list and the export-data paths
//     of everything it imports; findings go to stderr as file:line:col
//     lines and a nonzero exit marks the unit failed.
//
// This mirrors golang.org/x/tools/go/analysis/unitchecker closely enough
// that `go vet -vettool=$(pwd)/exactsim-vet ./...` behaves exactly like a
// stock vet tool: per-package caching, -json, and flag validation all work.
// The hermetic build environment (no module proxy) is why the upstream
// package is re-implemented rather than imported.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"github.com/exactsim/exactsim/internal/lint/analysis"
)

// Config is the JSON unit description the go command writes for each
// package it vets. Field names must match cmd/go's encoding exactly;
// unknown fields are ignored so the schema can grow with the toolchain.
type Config struct {
	ID           string // e.g. "fmt [fmt.test]"
	Compiler     string // gc
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string // import path as written -> canonical path
	PackageFile  map[string]string // canonical path -> export data file
	Standard     map[string]bool
	PackageVetx  map[string]string // canonical path -> facts file from deps
	VetxOnly     bool              // facts-only pass over a dependency
	VetxOutput   string            // where to write this unit's facts

	SucceedOnTypecheckFailure bool
}

type jsonFlag struct {
	Name  string `json:"Name"`
	Bool  bool   `json:"Bool"`
	Usage string `json:"Usage"`
}

// jsonDiagnostic mirrors the -json output schema of upstream vet.
type jsonDiagnostic struct {
	Category string `json:"category,omitempty"`
	Posn     string `json:"posn"`
	Message  string `json:"message"`
}

// Main is the entry point for a vet tool: it interprets the protocol flags
// and either answers a metadata query or analyzes the unit .cfg named by
// the single positional argument. It does not return.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	var (
		versionQuery string
		flagsQuery   bool
		jsonOut      bool
	)
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.StringVar(&versionQuery, "V", "", "print version and exit (go command protocol)")
	fs.BoolVar(&flagsQuery, "flags", false, "print flags in JSON and exit (go command protocol)")
	fs.BoolVar(&jsonOut, "json", false, "emit JSON diagnostics")
	// Per-analyzer enable flags, as upstream: -detrange=false disables one
	// analyzer. Default all-on.
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		enabled[a.Name] = fs.Bool(a.Name, true, "enable "+a.Name+" analysis: "+doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] <unit>.cfg\n", progname)
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	if versionQuery != "" {
		if versionQuery != "full" {
			log.Fatalf("unsupported flag value: -V=%s", versionQuery)
		}
		// The go command hashes this line into its cache key, so it must
		// change whenever the tool binary does: hash the executable.
		exe, err := os.Executable()
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Open(exe)
		if err != nil {
			log.Fatal(err)
		}
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
		os.Exit(0)
	}

	if flagsQuery {
		var out []jsonFlag
		fs.VisitAll(func(f *flag.Flag) {
			if f.Name == "V" || f.Name == "flags" {
				return
			}
			_, isBool := f.Value.(interface{ IsBoolFlag() bool })
			out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
		})
		data, err := json.Marshal(out)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		fmt.Println()
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fs.Usage()
		os.Exit(1)
	}

	var run []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}
	diags, err := analyzeUnit(args[0], run)
	if err != nil {
		log.Fatal(err)
	}
	if len(diags) > 0 {
		if jsonOut {
			printJSON(os.Stdout, diags)
		} else {
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s: %s\n", d.posn, d.msg)
			}
		}
		os.Exit(2)
	}
	os.Exit(0)
}

type unitDiag struct {
	analyzer string
	category string
	posn     string
	msg      string
}

func printJSON(w io.Writer, diags []unitDiag) {
	// Upstream shape: {"<pkg>": {"<analyzer>": [diag...]}} — but the
	// package ID is not part of unitDiag; group by analyzer only, which
	// is what downstream tooling keys on.
	byAnalyzer := make(map[string][]jsonDiagnostic)
	for _, d := range diags {
		byAnalyzer[d.analyzer] = append(byAnalyzer[d.analyzer], jsonDiagnostic{
			Category: d.category, Posn: d.posn, Message: d.msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(byAnalyzer)
}

// analyzeUnit loads one vet unit config, type-checks the package from the
// export data the go command prepared, and runs the analyzers over it.
func analyzeUnit(cfgPath string, analyzers []*analysis.Analyzer) ([]unitDiag, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// The go command expects the facts file to exist after every
	// invocation, including facts-only dependency passes. None of the
	// repository's analyzers exports facts, so the file is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, fmt.Errorf("writing facts: %w", err)
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a canonical package path; the go command wrote the
		// export data of every dependency into PackageFile.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})

	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", buildArch()),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	var diags []unitDiag
	for _, a := range analyzers {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, unitDiag{
					analyzer: a.Name,
					category: d.Category,
					posn:     fset.Position(d.Pos).String(),
					msg:      d.Message + " (" + a.Name + ")",
				})
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, cfg.ImportPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].posn < diags[j].posn })
	return diags, nil
}

func buildArch() string {
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
