// Package shedpath enforces the overload-answer contract on the serving
// surface: a function implementing a shed, drop, CoDel, or brownout
// decision must stamp every Response it builds — a coded
// *exactsim.Error (the shed/drop case), the Degraded flag (the
// brownout case), or the Partial flag (the anytime best-so-far case,
// where a deadline-capped ladder answers with the accuracy it reached).
// A bare success-shaped Response escaping an overload path is the worst
// kind of overload bug: the caller sees a normal answer with no scores
// and no error, retries nothing, degrades nothing, and the taxonomy
// (DESIGN §5, §12, §13) silently ends there.
//
// Detection is structural (fixtures cannot import the module): inside
// the coded-error package set, any function whose name mentions an
// overload verb (shed / drop / codel / degrad / brownout,
// case-insensitive) is an overload path, and every keyed composite
// literal of a Response-suffixed type it builds must set an Err or
// Degraded field. Helpers that fill the stamp in later suppress the
// finding with the //lint:shed-ok directive, justification required.
package shedpath

import (
	"go/ast"
	"regexp"

	"github.com/exactsim/exactsim/internal/lint"
	"github.com/exactsim/exactsim/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "shedpath",
	Doc: "require overload paths to stamp their Responses\n\n" +
		"In the exactsim, httpapi and cluster packages, functions implementing shed,\n" +
		"drop, CoDel or brownout decisions must not build a Response that sets none of\n" +
		"Err, Degraded or Partial: an unstamped answer leaving an overload path loses\n" +
		"the retryable error taxonomy, the degradation marker and the best-so-far\n" +
		"marker at once.",
	Run: run,
}

// overloadName marks a function as an overload path by its name.
var overloadName = regexp.MustCompile(`(?i)shed|drop|codel|degrad|brownout`)

func run(pass *analysis.Pass) (any, error) {
	if !lint.CodedErrorPackages(pass.Pkg.Path()) {
		return nil, nil
	}
	sup := lint.NewSuppressorFor(pass, lint.ShedDirective)
	lint.WalkFiles(pass, func(f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !overloadName.MatchString(fd.Name.Name) {
				continue
			}
			checkFunc(pass, sup, fd)
		}
	})
	return nil, nil
}

// checkFunc flags every Response-like composite literal in fd's body
// (closures included — an unstamped Response escapes through a callback
// just the same) that sets neither Err nor Degraded. Positional literals
// are left alone: they can only compile by filling every field, Err
// included.
func checkFunc(pass *analysis.Pass, sup *lint.Suppressor, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		name := responseTypeName(cl.Type)
		if name == "" || stamped(cl) || positional(cl) || sup.Suppressed(cl.Pos()) {
			return true
		}
		pass.Reportf(cl.Pos(), "overload path %s builds a %s with none of Err, Degraded or Partial set; a shed, degraded or best-so-far answer must carry a coded *exactsim.Error, the Degraded flag or the Partial flag", fd.Name.Name, name)
		return true
	})
}

// responseTypeName returns the syntactic type name when it looks like a
// wire response ("Response" or any *Response suffix, qualified or not),
// else "".
func responseTypeName(t ast.Expr) string {
	var id *ast.Ident
	switch u := t.(type) {
	case *ast.Ident:
		id = u
	case *ast.SelectorExpr:
		id = u.Sel
	default:
		return ""
	}
	name := id.Name
	if name == "Response" || (len(name) > len("Response") && name[len(name)-len("Response"):] == "Response") {
		return name
	}
	return ""
}

// stamped reports whether the literal sets an Err, Degraded or Partial
// field — Partial marks the anytime best-so-far answer a deadline-capped
// ladder returns instead of a bare deadline_exceeded.
func stamped(cl *ast.CompositeLit) bool {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); ok && (key.Name == "Err" || key.Name == "Degraded" || key.Name == "Partial") {
			return true
		}
	}
	return false
}

// positional reports whether the literal uses unkeyed elements.
func positional(cl *ast.CompositeLit) bool {
	for _, elt := range cl.Elts {
		if _, ok := elt.(*ast.KeyValueExpr); !ok {
			return true
		}
	}
	return false
}
