// Package errcode enforces the transport error taxonomy on the public
// serving surface: every error an exported function or method of the root
// exactsim package, httpapi, or cluster returns must be a coded
// *exactsim.Error (or a sentinel the taxonomy maps, like ErrServiceClosed).
//
// Codes — not Go error identities — are what survives serialization
// (DESIGN §5): a naked fmt.Errorf or errors.New escaping an exported
// method reaches the wire as an uncoded "internal" blob, so the far side
// loses retryability classification, errors.Is matching, and breaker
// semantics. The analyzer flags the construction sites where such errors
// are returned directly from the public surface; plumbing through
// unexported helpers is reviewed by humans, but the overwhelmingly common
// leak — `return fmt.Errorf(...)` in an exported method — is mechanical.
package errcode

import (
	"go/ast"
	"go/types"

	"github.com/exactsim/exactsim/internal/lint"
	"github.com/exactsim/exactsim/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errcode",
	Doc: "require coded *exactsim.Error on the public serving surface\n\n" +
		"Exported functions and methods of the exactsim, httpapi and cluster packages\n" +
		"must not return naked fmt.Errorf/errors.New errors: those lose their code (and\n" +
		"hence retryability and errors.Is identity) at the first process boundary. Use\n" +
		"exactsim.Errorf(code, ...) or exactsim.Wrapf(code, err, ...).",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !lint.CodedErrorPackages(pass.Pkg.Path()) {
		return nil, nil
	}
	// Quiet: detrange owns validation of bare Directive comments.
	sup := lint.NewQuietSuppressor(pass)
	lint.WalkFiles(pass, func(f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !exportedSurface(fd) {
				continue
			}
			checkFunc(pass, sup, fd)
		}
	})
	return nil, nil
}

// exportedSurface reports whether fd is part of the public surface: an
// exported top-level function, or an exported method on an exported type.
func exportedSurface(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr: // generic receiver
			t = u.X
		case *ast.Ident:
			return u.IsExported()
		default:
			return false
		}
	}
}

// checkFunc walks fd's body for `return ...` statements whose results
// include a direct call to errors.New or fmt.Errorf. Function literals
// inside the body are walked too: an uncoded error produced by a handler
// closure registered from an exported method escapes just the same.
func checkFunc(pass *analysis.Pass, sup *lint.Suppressor, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := res.(*ast.CallExpr)
			if !ok {
				continue
			}
			name := nakedErrorCall(pass, call)
			if name == "" || sup.Suppressed(call.Pos()) {
				continue
			}
			pass.Reportf(call.Pos(), "%s escapes the exported %s surface uncoded; return exactsim.Errorf/Wrapf with an ErrorCode so the taxonomy survives transport", name, fd.Name.Name)
		}
		return true
	})
}

// nakedErrorCall returns "errors.New" / "fmt.Errorf" if call constructs an
// uncoded error, else "".
func nakedErrorCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() + "." + fn.Name() {
	case "errors.New":
		return "errors.New"
	case "fmt.Errorf":
		return "fmt.Errorf"
	}
	return ""
}
