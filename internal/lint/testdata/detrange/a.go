// Golden fixtures for the detrange analyzer, replayed under a kernel
// package identity. Each `// want` clause is a diagnostic the analyzer
// must produce on that line; lines without one must stay silent.
package a

import "sort"

// Seeded violation: float accumulation observes map iteration order in
// its low-order bits.
func flagFloatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { // want "map iteration order is randomized"
		sum += v
	}
	return sum
}

// False-positive regression (ISSUE 8): collecting keys and sorting them
// afterwards is the *fix* for nondeterministic iteration and must not
// flag.
func okSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Near-miss: filtered keys, still sorted after.
func okFilteredSortedKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k, keep := range m {
		if !keep {
			continue
		}
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Near-miss: map-to-map copy writes each key's distinct cell; order
// cannot be observed.
func okMapCopy(m map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Near-miss: integer accumulation is exact and commutative.
func okIntCount(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Near-miss: key-less range just repeats the body len(m) times.
func okBareRange(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Escape hatch with a justification is honored.
func okEscaped(m map[int]float64) float64 {
	var sum float64
	for _, v := range m { //lint:nondeterministic-ok fixture: result is compared with a tolerance, never bit-compared
		sum += v
	}
	return sum
}

// A keys slice that is never sorted re-flags the range.
func flagUnsortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "map iteration order is randomized"
		keys = append(keys, k)
	}
	return keys
}

// A bare directive is itself a finding: overrides must say why.
func flagBareDirective(m map[int]float64) float64 {
	var sum float64
	//lint:nondeterministic-ok // want "needs a justification"
	for _, v := range m { // want "map iteration order is randomized"
		sum += v
	}
	return sum
}

// Seeded violation: reflection-based, non-stable sort.
func flagSortSlice(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "reflection-based and non-stable"
}

// Near-miss: a typed sort.Interface is the sanctioned replacement.
type byVal []int

func (b byVal) Len() int           { return len(b) }
func (b byVal) Swap(i, j int)      { b[i], b[j] = b[j], b[i] }
func (b byVal) Less(i, j int) bool { return b[i] < b[j] }

func okTypedSort(xs []int) { sort.Sort(byVal(xs)) }

// Near-miss: SliceStable is reflective but order-stable; detrange only
// bans the non-stable variant.
func okSliceStable(xs []int) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// Seeded violation: with both channels ready the runtime picks a case
// pseudorandomly.
func flagSelect(a, b chan int) int {
	select { // want "select with 2 communication cases"
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

// Near-miss: single comm case plus default is the standard non-blocking
// poll; there is no race to resolve.
func okPollSelect(done chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}
