// Golden fixtures for the rngsource analyzer under a kernel identity.
package a

import (
	crand "crypto/rand" // want "crypto/rand"
	"math/rand"         // want "math/rand"
	"time"
)

// Imports above are each one finding; uses below are not re-flagged
// (the import is the contraband, wherever it is consumed).
func useRand() int {
	return rand.Intn(3)
}

func useCrypto() byte {
	var b [1]byte
	crand.Read(b[:])
	return b[0]
}

// Seeded violations: wall-clock reads.
func flagNow() time.Time {
	return time.Now() // want "time.Now"
}

func flagSince(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since"
}

// Escape hatch with a justification is honored.
func okEscapedNow() time.Time {
	return time.Now() //lint:nondeterministic-ok fixture: telemetry timestamp, never feeds scored output
}

// Near-miss: the time package itself is fine — constants and Duration
// arithmetic are deterministic; only the clock reads are banned.
func okDuration(d time.Duration) time.Duration {
	return d + 5*time.Second
}
