// Golden fixtures for the ctxpoll analyzer under a kernel identity.
package a

import (
	"context"
	"sync/atomic"
)

// Seeded violation: no condition, no cancellation reference, no
// termination argument.
func flagSpin(n *int) {
	for { // want "unconditioned loop in kernel package"
		*n++
	}
}

// Near-miss: polls ctx.Err each pass (the PR 1 contract).
func okCtx(ctx context.Context, n *int) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		*n++
	}
}

// Near-miss: a context flowing into a callee counts as a poll site.
func okCtxCallee(ctx context.Context, step func(context.Context) bool) {
	for {
		if !step(ctx) {
			return
		}
	}
}

// Near-miss: a stop flag is the kernel's select-free cancellation idiom
// (diag workers use exactly this shape).
func okStopFlag(stop *atomic.Bool, n *int) {
	for {
		if stop.Load() {
			return
		}
		*n++
	}
}

// Near-miss: conditioned loops carry their progress contract in the
// condition and are trusted (binary search, drain loops, ...).
func okConditioned(lo, hi int) int {
	for lo < hi {
		lo = (lo+hi)/2 + 1
	}
	return lo
}

// Escape hatch: a termination argument is recorded and honored.
func okBounded(n int) int {
	steps := 0
	//lint:bounded halves n each pass; reaches zero within 64 iterations
	for {
		if n == 0 {
			return steps
		}
		n /= 2
		steps++
	}
}

// A bare directive is itself a finding and suppresses nothing.
func flagBareDirective(n *int) {
	//lint:bounded // want "needs a justification"
	for { // want "unconditioned loop in kernel package"
		*n++
	}
}
