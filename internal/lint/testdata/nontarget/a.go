// One package seeded with a violation of every analyzer, replayed under
// a non-kernel, non-surface import path: every analyzer must stay silent
// here — the contracts bind specific package sets, not the whole module.
package a

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func mapRangeFloat(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

func sortSlice(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func clockAndRand() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(10))
}

func Exported(n int) error {
	return fmt.Errorf("a: naked but outside the surface %d", n)
}

func spin(n *int) {
	for {
		*n++
	}
}

type Response struct {
	N   int
	Err error
}

func shedOutside(n int) Response {
	return Response{N: n}
}
