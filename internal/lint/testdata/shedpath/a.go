// Golden fixtures for the shedpath analyzer, replayed under the cluster
// package identity (part of the coded-error serving surface). Response /
// Error stand in for the exactsim wire types — detection is structural.
package a

type Error struct{ Code string }

type Request struct{ Source int }

type Response struct {
	Request  Request
	Degraded bool
	Partial  bool
	Err      *Error
}

type WarmResponse struct {
	Warmed int
	Err    *Error
}

// Seeded violation: a shed path answering with a bare success-shaped
// Response — no coded error, no degradation marker.
func shedQuery(req Request) Response {
	return Response{Request: req} // want "overload path shedQuery builds a Response with none of Err, Degraded or Partial set"
}

// Seeded violation: the zero literal is just as unstamped.
func dropOldest() Response {
	return Response{} // want "overload path dropOldest builds a Response with none of Err, Degraded or Partial set"
}

// Seeded violation: closures inside an overload path are part of it.
func codelLoop(req Request) func() Response {
	return func() Response {
		return Response{Request: req} // want "overload path codelLoop builds a Response with none of Err, Degraded or Partial set"
	}
}

// Near-miss: Degraded: false / Err: nil still *decided* the stamp — the
// analyzer checks presence, not value (values need dataflow; the
// reviewer owns those).
func codelStamped() Response {
	return Response{Degraded: false, Err: nil}
}

// Near-miss: a shed answer carrying its coded error.
func shedAnswer(req Request) Response {
	return Response{Request: req, Err: &Error{Code: "unavailable"}}
}

// Near-miss: a brownout answer carrying the degradation marker.
func brownoutAnswer(req Request) Response {
	return Response{Request: req, Degraded: true}
}

// Near-miss: an anytime best-so-far answer — a deadline-capped ladder
// dropping out with the accuracy it reached — carries the Partial flag.
func dropToBestSoFar(req Request) Response {
	return Response{Request: req, Partial: true}
}

// Seeded violation: WarmResponse is a wire response too.
func degradeWarm() WarmResponse {
	return WarmResponse{Warmed: 1} // want "overload path degradeWarm builds a WarmResponse with none of Err, Degraded or Partial set"
}

// Near-miss: functions outside the overload vocabulary build bare
// Responses freely (the success path does, constantly).
func respond(req Request) Response {
	return Response{Request: req}
}

// Near-miss: positional literals can only compile by filling every
// field, Err included.
func shedPositional(req Request) Response {
	return Response{req, false, false, &Error{Code: "unavailable"}}
}

// Near-miss: the escape hatch, with its mandatory justification.
func shedTemplate(req Request) Response {
	//lint:shed-ok caller stamps Err before the response escapes
	r := Response{Request: req}
	r.Err = &Error{Code: "unavailable"}
	return r
}

// Seeded violation: a bare directive is no justification.
func dropTemplate(req Request) Response {
	//lint:shed-ok // want "directive needs a justification string"
	return Response{Request: req} // want "overload path dropTemplate builds a Response with none of Err, Degraded or Partial set"
}

// Near-miss: non-response types are out of scope even in overload paths.
func shedRequest(req Request) Request {
	return Request{Source: req.Source}
}
