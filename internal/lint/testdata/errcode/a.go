// Golden fixtures for the errcode analyzer, replayed under the cluster
// package identity (part of the coded-error serving surface).
package a

import (
	"errors"
	"fmt"
)

// Package-level sentinels are construction, not escape: they are flagged
// only where an exported signature returns them uncoded (a human-review
// concern, not this analyzer's).
var errSentinel = errors.New("a: sentinel")

// Coded stands in for *exactsim.Error: any non-naked error value passes.
type Coded struct{ Code string }

func (e *Coded) Error() string { return e.Code }

type Service struct{}

// Seeded violation: naked errors.New returned from an exported method of
// an exported type.
func (s *Service) Query(n int) error {
	if n < 0 {
		return errors.New("a: negative source") // want "errors.New escapes the exported Query surface"
	}
	return nil
}

// Seeded violation: naked fmt.Errorf from an exported function.
func Exported(n int) error {
	return fmt.Errorf("a: bad n %d", n) // want "fmt.Errorf escapes the exported Exported surface"
}

// Near-miss: a coded error crosses the surface with its taxonomy intact.
func ExportedCoded(n int) error {
	if n < 0 {
		return &Coded{Code: "invalid_argument"}
	}
	return nil
}

// Near-miss: returning a sentinel is identity-preserving, not naked
// construction.
func ExportedSentinel() error { return errSentinel }

// Near-miss: unexported helpers may build plain errors; the exported
// caller is responsible for coding them before they escape.
func helper(n int) error { return fmt.Errorf("a: internal detail %d", n) }

// Near-miss: methods on unexported types are not public surface.
type hidden struct{}

func (h *hidden) Method() error { return errors.New("a: x") }

// Function literals inside an exported function are part of its surface:
// handlers built here escape through the registration.
func ExportedClosure() func() error {
	return func() error {
		return errors.New("a: closure leak") // want "errors.New escapes the exported ExportedClosure surface"
	}
}
