// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic).
//
// The build environment for this repository is hermetic — no module proxy —
// so the upstream framework cannot be imported; this package provides the
// same shape on top of the standard library's go/ast, go/token and go/types
// so the project's analyzers (internal/lint/...) stay source-compatible with
// upstream should the dependency ever become available: an analyzer written
// against this package ports to x/tools by changing one import line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. It mirrors the upstream type of the
// same name; only the fields the repository's drivers need are present.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. By upstream
	// convention it is a lowercase identifier.
	Name string

	// Doc is the help text: first line is a summary, the rest elaborates.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Validate rejects analyzer sets that are malformed (missing names or Run
// functions, duplicate names) before a driver trusts them.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		if a == nil || a.Name == "" {
			return fmt.Errorf("analysis: analyzer with empty name")
		}
		if a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q has no Run function", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// Pass bundles everything one analyzer run may inspect about one package,
// plus the Report sink for its findings.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. Drivers install it; analyzers should
	// prefer Reportf.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRangef reports a formatted diagnostic at the start of a node.
func (p *Pass) ReportRangef(n ast.Node, format string, args ...any) {
	p.Reportf(n.Pos(), format, args...)
}

// Diagnostic is one finding: a position and a message. Category optionally
// tags a sub-check within an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}
