// Package lint hosts the project's custom vet suite: analyzers that turn
// the determinism, error-taxonomy, and concurrency contracts of DESIGN.md
// into compiler-grade checks (see DESIGN.md §11 "Static enforcement").
//
// The analyzers live in subpackages (detrange, rngsource, errcode, ctxpoll)
// and are driven by cmd/exactsim-vet through the go vet -vettool protocol.
// This package carries what they share: the kernel-package set the
// determinism contract binds, and the escape-hatch directive that lets a
// human override a finding with a recorded justification.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"github.com/exactsim/exactsim/internal/lint/analysis"
)

// ModulePath is the import-path root of this repository.
const ModulePath = "github.com/exactsim/exactsim"

// kernelPackages are the packages whose outputs must be bit-deterministic:
// every byte they compute feeds chunk-exact diagonal merging (DESIGN §7)
// and replica-identical hedged serving (DESIGN §9). Code outside this set
// may use maps, wall clocks, and stdlib randomness freely.
var kernelPackages = map[string]bool{
	ModulePath + "/internal/core":   true,
	ModulePath + "/internal/diag":   true,
	ModulePath + "/internal/linalg": true,
	ModulePath + "/internal/sparse": true,
	ModulePath + "/internal/walk":   true,
	ModulePath + "/internal/rng":    true,
	ModulePath + "/internal/ppr":    true,
	ModulePath + "/internal/graph":  true,
	ModulePath + "/internal/gen":    true,
}

// IsKernelPackage reports whether path is bound by the bit-determinism
// contract. Test variants ("pkg_test", "pkg [pkg.test]") of a kernel
// package count as kernel: the determinism analyzers skip _test.go files
// individually instead.
func IsKernelPackage(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i] // "pkg [pkg.test]" unit IDs
	}
	return kernelPackages[path]
}

// CodedErrorPackages are the packages forming the public serving surface:
// every error their exported functions and methods return must carry an
// ErrorCode from the transport taxonomy (a *exactsim.Error), because these
// errors cross process boundaries where Go error identity is lost.
func CodedErrorPackages(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	switch path {
	case ModulePath, ModulePath + "/httpapi", ModulePath + "/cluster":
		return true
	}
	return false
}

// Directive is the escape hatch: a comment of the form
//
//	//lint:nondeterministic-ok <justification>
//
// on the flagged line, or alone on the line above it, suppresses the
// determinism analyzers for that line. The justification is mandatory —
// a bare directive is itself reported — so every override records *why*
// the nondeterminism cannot corrupt scored output.
const Directive = "//lint:nondeterministic-ok"

// BoundedDirective is ctxpoll's escape hatch: it asserts that a loop the
// analyzer cannot prove finite does in fact terminate, and why:
//
//	//lint:bounded <termination argument>
const BoundedDirective = "//lint:bounded"

// ShedDirective is shedpath's escape hatch: it asserts that a Response
// built bare inside an overload path is stamped (Err or Degraded) before
// it can reach a caller, and why the analyzer cannot see it:
//
//	//lint:shed-ok <where the outcome is stamped>
const ShedDirective = "//lint:shed-ok"

// IsTestFile reports whether pos lies in a _test.go file. The determinism
// contract binds production kernel code; tests may use maps and clocks
// freely (the bit-determinism oracle tests do, deliberately).
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Suppressor answers "is this position escaped?" for one package. Build it
// once per pass; it also validates that every directive carries a
// justification, reporting bare ones through the pass.
type Suppressor struct {
	fset *token.FileSet
	// lines maps filename -> set of line numbers covered by a directive.
	lines map[string]map[int]bool
}

// NewSuppressor scans every comment in the pass's files for Directive and
// reports directives whose justification is missing. Exactly one analyzer
// per directive should use the validating constructor (detrange for
// Directive, ctxpoll for BoundedDirective) so a bare directive is reported
// once; analyzers that merely share a directive use NewQuietSuppressor.
func NewSuppressor(pass *analysis.Pass) *Suppressor {
	return newSuppressor(pass, Directive, true)
}

// NewQuietSuppressor consults Directive without validating justifications.
func NewQuietSuppressor(pass *analysis.Pass) *Suppressor {
	return newSuppressor(pass, Directive, false)
}

// NewSuppressorFor is NewSuppressor for an arbitrary directive.
func NewSuppressorFor(pass *analysis.Pass, directive string) *Suppressor {
	return newSuppressor(pass, directive, true)
}

func newSuppressor(pass *analysis.Pass, directive string, validate bool) *Suppressor {
	s := &Suppressor{fset: pass.Fset, lines: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directive) {
					continue
				}
				just := strings.TrimSpace(strings.TrimPrefix(c.Text, directive))
				// A "justification" that is itself a comment (as in
				// `//lint:bounded // why is this ok?`) is no
				// justification at all.
				if i := strings.Index(just, "//"); i >= 0 {
					just = strings.TrimSpace(just[:i])
				}
				if just == "" {
					if validate {
						pass.Reportf(c.Pos(), "%s directive needs a justification string after the directive word", directive)
					}
					continue
				}
				posn := s.fset.Position(c.Pos())
				m := s.lines[posn.Filename]
				if m == nil {
					m = make(map[int]bool)
					s.lines[posn.Filename] = m
				}
				// The directive covers its own line (trailing-comment
				// form) and the next line (preceding-comment form).
				m[posn.Line] = true
				m[posn.Line+1] = true
			}
		}
	}
	return s
}

// Suppressed reports whether a finding at pos is covered by a directive.
func (s *Suppressor) Suppressed(pos token.Pos) bool {
	posn := s.fset.Position(pos)
	return s.lines[posn.Filename][posn.Line]
}

// WalkFiles runs fn over every non-test file in the pass.
func WalkFiles(pass *analysis.Pass, fn func(*ast.File)) {
	for _, f := range pass.Files {
		if IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		fn(f)
	}
}
