// Package ctxpoll preserves the cancellation contract (PR 1: every query
// honors its context) inside the deterministic kernel packages: a loop
// with no loop condition — `for { ... }` — has no structural bound, so it
// must visibly poll for cancellation (a context, or a stop flag) or carry
// a recorded termination argument.
//
// The analyzer deliberately trusts conditioned loops: `for lo < hi`,
// `for len(xs) > 0`, and three-clause counted loops state their progress
// contract in the condition, and flagging them all would drown the signal
// (binary searches, sift-downs, drain loops). The dangerous shape in
// review experience is the bare infinite loop whose exit is buried in a
// branch deep inside the body: those either poll ctx/stop, or explain
// themselves with '//lint:bounded <termination argument>'.
package ctxpoll

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/exactsim/exactsim/internal/lint"
	"github.com/exactsim/exactsim/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc: "require cancellation polling (or a termination argument) in unconditioned kernel loops\n\n" +
		"A `for { ... }` loop in a deterministic kernel package must reference a\n" +
		"context.Context, a stop/quit/done flag, or carry '" + lint.BoundedDirective + " <why>'\n" +
		"so unbounded work stays cancellable (the PR 1 contract).",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	// Validate //lint:bounded justifications everywhere, even in
	// non-kernel packages, so a bare directive never silently rots.
	sup := lint.NewSuppressorFor(pass, lint.BoundedDirective)
	if !lint.IsKernelPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	lint.WalkFiles(pass, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if sup.Suppressed(loop.Pos()) || pollsCancellation(pass, loop.Body) {
				return true
			}
			pass.Reportf(loop.Pos(), "unconditioned loop in kernel package neither polls a context/stop flag nor documents termination; check ctx.Err(), or escape with '%s <termination argument>'", lint.BoundedDirective)
			return true
		})
	})
	return nil, nil
}

// pollsCancellation reports whether the loop body references a
// context.Context value (ctx.Err(), <-ctx.Done(), helper(ctx, ...) all
// qualify) or an identifier that names a stop flag.
func pollsCancellation(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			if named, ok := obj.Type().(*types.Named); ok {
				o := named.Obj()
				if o.Name() == "Context" && o.Pkg() != nil && o.Pkg().Path() == "context" {
					found = true
					return false
				}
			}
		}
		switch name := strings.ToLower(id.Name); {
		case strings.Contains(name, "stop"), strings.Contains(name, "quit"),
			strings.Contains(name, "cancel"), name == "done":
			found = true
			return false
		}
		return true
	})
	return found
}
