package harness

import (
	"fmt"
	"time"

	"github.com/exactsim/exactsim/internal/core"
	"github.com/exactsim/exactsim/internal/eval"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/lineariz"
	"github.com/exactsim/exactsim/internal/mc"
	"github.com/exactsim/exactsim/internal/parsim"
	"github.com/exactsim/exactsim/internal/prsim"
)

// queryFunc produces a single-source score vector.
type queryFunc func(src graph.NodeID) []float64

// measure runs the query set for one sweep point and aggregates metrics.
// The time budget stops further queries once exceeded; the point keeps the
// averages over the queries that did run.
func (cfg Config) measure(env *Env, method, param string,
	prep time.Duration, indexBytes int64, q queryFunc) Point {

	p := Point{
		Dataset: env.Spec.Key, Method: method, Param: param,
		PrepSeconds: secs(prep), IndexBytes: indexBytes,
	}
	if prep == 0 {
		p.PrepSeconds = 0
	}
	k := cfg.kFor(env.G)
	var queryTotal time.Duration
	ran := 0
	for i, src := range env.Sources {
		start := time.Now()
		scores := q(src)
		queryTotal += time.Since(start)
		p.MaxError += eval.MaxError(scores, env.Truth[i])
		p.Precision += eval.PrecisionAtK(scores, env.Truth[i], k, src)
		ran++
		if queryTotal > cfg.TimeBudget {
			break
		}
	}
	if ran == 0 {
		p.Omitted = true
		p.Reason = "no queries completed"
		return p
	}
	p.QuerySeconds = queryTotal.Seconds() / float64(ran)
	p.MaxError /= float64(ran)
	p.Precision /= float64(ran)
	cfg.logf("  %-12s %-14s prep=%8.3fs query=%8.4fs maxerr=%.3e prec@%d=%.3f",
		method, param, p.PrepSeconds, p.QuerySeconds, p.MaxError, k, p.Precision)
	return p
}

func omittedPoint(env *Env, method, param, reason string) Point {
	return Point{Dataset: env.Spec.Key, Method: method, Param: param,
		Omitted: true, Reason: reason}
}

// budgetExceeded reports whether a measured point already blew the budget,
// which terminates its sweep (costs grow monotonically along each grid).
func (cfg Config) budgetExceeded(p Point) bool {
	return p.PrepSeconds+p.QuerySeconds*float64(cfg.Queries) > cfg.TimeBudget.Seconds()
}

// predictedOver estimates the next point's cost from the previous one and
// a growth factor, and gates it against 3× the budget (run slightly-over
// points so the figure keeps its knee, skip hopeless ones).
func (cfg Config) predictedOver(prev Point, growth float64) bool {
	if prev.Omitted {
		return true
	}
	predicted := (prev.PrepSeconds + prev.QuerySeconds*float64(cfg.Queries)) * growth
	return predicted > 3*cfg.TimeBudget.Seconds()
}

// SweepExactSim sweeps ExactSim (optimized or basic) over the ε grid.
func SweepExactSim(cfg Config, env *Env, optimized bool) []Point {
	name := "ExactSim"
	if !optimized {
		name = "ExactSim-basic"
	}
	var out []Point
	for i, eps := range cfg.epsGrid() {
		param := fmtEps(eps)
		if i > 0 && cfg.predictedOver(out[i-1], 8) {
			out = append(out, omittedPoint(env, name, param, "predicted over budget"))
			continue
		}
		eng, err := core.New(env.G, core.Options{
			C: cfg.C, Epsilon: eps, Optimized: optimized,
			Seed: cfg.Seed + uint64(i), SampleFactor: cfg.SampleFactor,
		})
		if err != nil {
			out = append(out, omittedPoint(env, name, param, err.Error()))
			continue
		}
		p := cfg.measure(env, name, param, 0, 0, func(src graph.NodeID) []float64 {
			res, qerr := eng.SingleSource(src)
			if qerr != nil {
				panic(qerr) // sources are validated; unreachable
			}
			return res.Scores
		})
		out = append(out, p)
		if cfg.budgetExceeded(p) {
			for _, eps2 := range cfg.epsGrid()[i+1:] {
				out = append(out, omittedPoint(env, name, fmtEps(eps2), "over budget"))
			}
			break
		}
	}
	return out
}

// SweepMC sweeps the Monte-Carlo baseline over its (L, r) grid.
func SweepMC(cfg Config, env *Env) []Point {
	grid := []struct{ L, R int }{
		{5, 50}, {10, 100}, {20, 300}, {30, 1000}, {50, 3000}, {50, 10000},
	}
	var out []Point
	for i, g := range grid {
		param := fmt.Sprintf("(L,r)=(%d,%d)", g.L, g.R)
		// predictive gate: building n·r walks at ~5e7 steps/s
		est := float64(env.G.N()) * float64(g.R) * 4 / 5e7
		if est > 3*cfg.TimeBudget.Seconds() || (i > 0 && cfg.predictedOver(out[i-1], 4)) {
			out = append(out, omittedPoint(env, "MC", param, "predicted over budget"))
			continue
		}
		ix := mc.Build(env.G, mc.Params{C: cfg.C, L: g.L, R: g.R, Seed: cfg.Seed + uint64(i)})
		p := cfg.measure(env, "MC", param, ix.PrepTime, ix.Bytes(), ix.SingleSource)
		out = append(out, p)
		if cfg.budgetExceeded(p) {
			for _, g2 := range grid[i+1:] {
				out = append(out, omittedPoint(env, "MC",
					fmt.Sprintf("(L,r)=(%d,%d)", g2.L, g2.R), "over budget"))
			}
			break
		}
	}
	return out
}

// SweepParSim sweeps the iteration count L.
func SweepParSim(cfg Config, env *Env) []Point {
	grid := []int{5, 10, 20, 50, 100, 300}
	var out []Point
	for i, L := range grid {
		param := fmt.Sprintf("L=%d", L)
		if i > 0 && cfg.predictedOver(out[i-1], 4) {
			out = append(out, omittedPoint(env, "ParSim", param, "predicted over budget"))
			continue
		}
		eng := parsim.New(env.G, parsim.Params{C: cfg.C, L: L})
		p := cfg.measure(env, "ParSim", param, 0, 0, eng.SingleSource)
		out = append(out, p)
		if cfg.budgetExceeded(p) {
			for _, L2 := range grid[i+1:] {
				out = append(out, omittedPoint(env, "ParSim",
					fmt.Sprintf("L=%d", L2), "over budget"))
			}
			break
		}
	}
	return out
}

// SweepLinearization sweeps ε; its preprocessing is the O(n·log n/ε²) wall
// the paper highlights, so most of the grid gets omitted — by design.
func SweepLinearization(cfg Config, env *Env) []Point {
	var out []Point
	for i, eps := range cfg.epsGrid() {
		param := fmtEps(eps)
		params := lineariz.Params{C: cfg.C, Eps: eps, Workers: 1,
			Seed: cfg.Seed + uint64(i), SampleFactor: cfg.SampleFactor}
		// predictive gate from the exact pair count (~5e7 walk steps/s,
		// ~7 steps per pair)
		est := float64(lineariz.PrepCost(env.G, params)) * 7 / 5e7
		if est > 3*cfg.TimeBudget.Seconds() {
			out = append(out, omittedPoint(env, "Linearization", param,
				fmt.Sprintf("preprocessing predicted %.0fs", est)))
			continue
		}
		ix := lineariz.Build(env.G, params)
		p := cfg.measure(env, "Linearization", param, ix.PrepTime, ix.Bytes(), ix.SingleSource)
		out = append(out, p)
		if cfg.budgetExceeded(p) {
			for _, eps2 := range cfg.epsGrid()[i+1:] {
				out = append(out, omittedPoint(env, "Linearization", fmtEps(eps2), "over budget"))
			}
			break
		}
	}
	return out
}

// SweepPRSim sweeps ε over the hub-index baseline.
func SweepPRSim(cfg Config, env *Env) []Point {
	var out []Point
	for i, eps := range cfg.epsGrid() {
		param := fmtEps(eps)
		if i > 0 && cfg.predictedOver(out[i-1], 30) {
			out = append(out, omittedPoint(env, "PRSim", param, "predicted over budget"))
			continue
		}
		ix := prsim.Build(env.G, prsim.Params{
			C: cfg.C, Eps: eps, Workers: 1,
			Seed: cfg.Seed + uint64(i), SampleFactor: cfg.SampleFactor,
		})
		p := cfg.measure(env, "PRSim", param, ix.PrepTime, ix.Bytes(), ix.SingleSource)
		out = append(out, p)
		if cfg.budgetExceeded(p) {
			for _, eps2 := range cfg.epsGrid()[i+1:] {
				out = append(out, omittedPoint(env, "PRSim", fmtEps(eps2), "over budget"))
			}
			break
		}
	}
	return out
}

// SweepAll runs every method's sweep on one dataset environment — the
// shared measurement behind Figures 1–4 (small) and 5–8 (large).
func SweepAll(cfg Config, env *Env) []Point {
	var out []Point
	cfg.logf("[%s] sweeping ExactSim", env.Spec.Key)
	out = append(out, SweepExactSim(cfg, env, true)...)
	cfg.logf("[%s] sweeping MC", env.Spec.Key)
	out = append(out, SweepMC(cfg, env)...)
	cfg.logf("[%s] sweeping ParSim", env.Spec.Key)
	out = append(out, SweepParSim(cfg, env)...)
	cfg.logf("[%s] sweeping Linearization", env.Spec.Key)
	out = append(out, SweepLinearization(cfg, env)...)
	cfg.logf("[%s] sweeping PRSim", env.Spec.Key)
	out = append(out, SweepPRSim(cfg, env)...)
	return out
}

// SweepAblation compares the optimized component stack for Figure 9 plus
// the DESIGN.md "ablation-extra" variants.
func SweepAblation(cfg Config, env *Env, extra bool) []Point {
	type variant struct {
		name string
		opt  core.Options
	}
	variants := []variant{
		{"ExactSim", core.Options{C: cfg.C, Optimized: true}},
		{"ExactSim-basic", core.Options{C: cfg.C, Optimized: false}},
	}
	if extra {
		variants = append(variants,
			variant{"ExactSim-noPi2", core.Options{C: cfg.C, Optimized: true, NoPiSquaredSampling: true}},
			variant{"ExactSim-noExploit", core.Options{C: cfg.C, Optimized: true, NoLocalExploit: true}},
		)
	}
	var out []Point
	for _, v := range variants {
		cfg.logf("[%s] ablation variant %s", env.Spec.Key, v.name)
		prev := Point{}
		for i, eps := range cfg.epsGrid() {
			param := fmtEps(eps)
			if i > 0 && cfg.predictedOver(prev, 8) {
				out = append(out, omittedPoint(env, v.name, param, "predicted over budget"))
				prev = Point{Omitted: true}
				continue
			}
			opt := v.opt
			opt.Epsilon = eps
			opt.Seed = cfg.Seed + uint64(i)
			opt.SampleFactor = cfg.SampleFactor
			eng, err := core.New(env.G, opt)
			if err != nil {
				out = append(out, omittedPoint(env, v.name, param, err.Error()))
				continue
			}
			p := cfg.measure(env, v.name, param, 0, 0, func(src graph.NodeID) []float64 {
				res, qerr := eng.SingleSource(src)
				if qerr != nil {
					panic(qerr)
				}
				return res.Scores
			})
			out = append(out, p)
			prev = p
			if cfg.budgetExceeded(p) {
				for _, eps2 := range cfg.epsGrid()[i+1:] {
					out = append(out, omittedPoint(env, v.name, fmtEps(eps2), "over budget"))
				}
				break
			}
		}
	}
	return out
}
