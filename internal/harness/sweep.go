package harness

import (
	"context"
	"fmt"
	"time"

	"github.com/exactsim/exactsim/internal/algo"
	"github.com/exactsim/exactsim/internal/eval"
	"github.com/exactsim/exactsim/internal/lineariz"
)

// measure runs the query set for one sweep point through the unified
// Querier interface and aggregates metrics. Preprocessing cost and index
// size come from the optional algo.Index interface (zero for index-free
// methods, matching the paper's figures). The time budget stops further
// queries once exceeded; the point keeps the averages over the queries
// that did run.
func (cfg Config) measure(env *Env, method, param string, q algo.Querier) Point {
	p := Point{Dataset: env.Spec.Key, Method: method, Param: param}
	if ix, ok := q.(algo.Index); ok {
		p.PrepSeconds = secs(ix.PrepTime())
		p.IndexBytes = ix.IndexBytes()
	}
	k := cfg.kFor(env.G)
	ctx := context.Background()
	var queryTotal time.Duration
	ran := 0
	for i, src := range env.Sources {
		res, err := q.SingleSource(ctx, src)
		if err != nil {
			return omittedPoint(env, method, param, err.Error())
		}
		queryTotal += res.QueryTime
		p.MaxError += eval.MaxError(res.Scores, env.Truth[i])
		p.Precision += eval.PrecisionAtK(res.Scores, env.Truth[i], k, src)
		ran++
		if queryTotal > cfg.TimeBudget {
			break
		}
	}
	if ran == 0 {
		p.Omitted = true
		p.Reason = "no queries completed"
		return p
	}
	p.QuerySeconds = queryTotal.Seconds() / float64(ran)
	p.MaxError /= float64(ran)
	p.Precision /= float64(ran)
	cfg.logf("  %-12s %-14s prep=%8.3fs query=%8.4fs maxerr=%.3e prec@%d=%.3f",
		method, param, p.PrepSeconds, p.QuerySeconds, p.MaxError, k, p.Precision)
	return p
}

// sweepPoint constructs the named registry algorithm and measures it; a
// failed construction (bad options, cancelled build) becomes an omitted
// point rather than aborting the sweep.
func (cfg Config) sweepPoint(env *Env, method, param, regName string, opts ...algo.Option) Point {
	q, err := algo.New(regName, env.G, opts...)
	if err != nil {
		return omittedPoint(env, method, param, err.Error())
	}
	return cfg.measure(env, method, param, q)
}

func omittedPoint(env *Env, method, param, reason string) Point {
	return Point{Dataset: env.Spec.Key, Method: method, Param: param,
		Omitted: true, Reason: reason}
}

// budgetExceeded reports whether a measured point already blew the budget,
// which terminates its sweep (costs grow monotonically along each grid).
func (cfg Config) budgetExceeded(p Point) bool {
	return p.PrepSeconds+p.QuerySeconds*float64(cfg.Queries) > cfg.TimeBudget.Seconds()
}

// predictedOver estimates the next point's cost from the previous one and
// a growth factor, and gates it against 3× the budget (run slightly-over
// points so the figure keeps its knee, skip hopeless ones).
func (cfg Config) predictedOver(prev Point, growth float64) bool {
	if prev.Omitted {
		return true
	}
	predicted := (prev.PrepSeconds + prev.QuerySeconds*float64(cfg.Queries)) * growth
	return predicted > 3*cfg.TimeBudget.Seconds()
}

// baseOpts are the options every sweep shares.
func (cfg Config) baseOpts(seedOffset uint64) []algo.Option {
	return []algo.Option{
		algo.WithC(cfg.C),
		algo.WithSeed(cfg.Seed + seedOffset),
		algo.WithSampleFactor(cfg.SampleFactor),
	}
}

// SweepExactSim sweeps ExactSim (optimized or basic) over the ε grid.
func SweepExactSim(cfg Config, env *Env, optimized bool) []Point {
	name, regName := "ExactSim", "exactsim"
	if !optimized {
		name, regName = "ExactSim-basic", "exactsim-basic"
	}
	var out []Point
	for i, eps := range cfg.epsGrid() {
		param := fmtEps(eps)
		if i > 0 && cfg.predictedOver(out[i-1], 8) {
			out = append(out, omittedPoint(env, name, param, "predicted over budget"))
			continue
		}
		opts := append(cfg.baseOpts(uint64(i)), algo.WithEpsilon(eps))
		p := cfg.sweepPoint(env, name, param, regName, opts...)
		out = append(out, p)
		if cfg.budgetExceeded(p) {
			for _, eps2 := range cfg.epsGrid()[i+1:] {
				out = append(out, omittedPoint(env, name, fmtEps(eps2), "over budget"))
			}
			break
		}
	}
	return out
}

// SweepMC sweeps the Monte-Carlo baseline over its (L, r) grid.
func SweepMC(cfg Config, env *Env) []Point {
	grid := []struct{ L, R int }{
		{5, 50}, {10, 100}, {20, 300}, {30, 1000}, {50, 3000}, {50, 10000},
	}
	var out []Point
	for i, g := range grid {
		param := fmt.Sprintf("(L,r)=(%d,%d)", g.L, g.R)
		// predictive gate: building n·r walks at ~5e7 steps/s
		est := float64(env.G.N()) * float64(g.R) * 4 / 5e7
		if est > 3*cfg.TimeBudget.Seconds() || (i > 0 && cfg.predictedOver(out[i-1], 4)) {
			out = append(out, omittedPoint(env, "MC", param, "predicted over budget"))
			continue
		}
		opts := append(cfg.baseOpts(uint64(i)), algo.WithWalks(g.L, g.R))
		p := cfg.sweepPoint(env, "MC", param, "mc", opts...)
		out = append(out, p)
		if cfg.budgetExceeded(p) {
			for _, g2 := range grid[i+1:] {
				out = append(out, omittedPoint(env, "MC",
					fmt.Sprintf("(L,r)=(%d,%d)", g2.L, g2.R), "over budget"))
			}
			break
		}
	}
	return out
}

// SweepParSim sweeps the iteration count L.
func SweepParSim(cfg Config, env *Env) []Point {
	grid := []int{5, 10, 20, 50, 100, 300}
	var out []Point
	for i, L := range grid {
		param := fmt.Sprintf("L=%d", L)
		if i > 0 && cfg.predictedOver(out[i-1], 4) {
			out = append(out, omittedPoint(env, "ParSim", param, "predicted over budget"))
			continue
		}
		opts := append(cfg.baseOpts(0), algo.WithIterations(L))
		p := cfg.sweepPoint(env, "ParSim", param, "parsim", opts...)
		out = append(out, p)
		if cfg.budgetExceeded(p) {
			for _, L2 := range grid[i+1:] {
				out = append(out, omittedPoint(env, "ParSim",
					fmt.Sprintf("L=%d", L2), "over budget"))
			}
			break
		}
	}
	return out
}

// SweepLinearization sweeps ε; its preprocessing is the O(n·log n/ε²) wall
// the paper highlights, so most of the grid gets omitted — by design.
func SweepLinearization(cfg Config, env *Env) []Point {
	var out []Point
	for i, eps := range cfg.epsGrid() {
		param := fmtEps(eps)
		// predictive gate from the exact pair count (~5e7 walk steps/s,
		// ~7 steps per pair)
		cost := lineariz.PrepCost(env.G, lineariz.Params{
			C: cfg.C, Eps: eps, SampleFactor: cfg.SampleFactor,
		})
		est := float64(cost) * 7 / 5e7
		if est > 3*cfg.TimeBudget.Seconds() {
			out = append(out, omittedPoint(env, "Linearization", param,
				fmt.Sprintf("preprocessing predicted %.0fs", est)))
			continue
		}
		opts := append(cfg.baseOpts(uint64(i)), algo.WithEpsilon(eps))
		p := cfg.sweepPoint(env, "Linearization", param, "linearization", opts...)
		out = append(out, p)
		if cfg.budgetExceeded(p) {
			for _, eps2 := range cfg.epsGrid()[i+1:] {
				out = append(out, omittedPoint(env, "Linearization", fmtEps(eps2), "over budget"))
			}
			break
		}
	}
	return out
}

// SweepPRSim sweeps ε over the hub-index baseline.
func SweepPRSim(cfg Config, env *Env) []Point {
	var out []Point
	for i, eps := range cfg.epsGrid() {
		param := fmtEps(eps)
		if i > 0 && cfg.predictedOver(out[i-1], 30) {
			out = append(out, omittedPoint(env, "PRSim", param, "predicted over budget"))
			continue
		}
		opts := append(cfg.baseOpts(uint64(i)), algo.WithEpsilon(eps))
		p := cfg.sweepPoint(env, "PRSim", param, "prsim", opts...)
		out = append(out, p)
		if cfg.budgetExceeded(p) {
			for _, eps2 := range cfg.epsGrid()[i+1:] {
				out = append(out, omittedPoint(env, "PRSim", fmtEps(eps2), "over budget"))
			}
			break
		}
	}
	return out
}

// SweepAll runs every method's sweep on one dataset environment — the
// shared measurement behind Figures 1–4 (small) and 5–8 (large).
func SweepAll(cfg Config, env *Env) []Point {
	var out []Point
	cfg.logf("[%s] sweeping ExactSim", env.Spec.Key)
	out = append(out, SweepExactSim(cfg, env, true)...)
	cfg.logf("[%s] sweeping MC", env.Spec.Key)
	out = append(out, SweepMC(cfg, env)...)
	cfg.logf("[%s] sweeping ParSim", env.Spec.Key)
	out = append(out, SweepParSim(cfg, env)...)
	cfg.logf("[%s] sweeping Linearization", env.Spec.Key)
	out = append(out, SweepLinearization(cfg, env)...)
	cfg.logf("[%s] sweeping PRSim", env.Spec.Key)
	out = append(out, SweepPRSim(cfg, env)...)
	return out
}

// SweepAblation compares the optimized component stack for Figure 9 plus
// the DESIGN.md "ablation-extra" variants, all through the registry: the
// ablation switches are ordinary querier options.
func SweepAblation(cfg Config, env *Env, extra bool) []Point {
	type variant struct {
		name    string
		regName string
		extra   []algo.Option
	}
	variants := []variant{
		{"ExactSim", "exactsim", nil},
		{"ExactSim-basic", "exactsim-basic", nil},
	}
	if extra {
		variants = append(variants,
			variant{"ExactSim-noPi2", "exactsim",
				[]algo.Option{algo.WithoutPiSquaredSampling()}},
			variant{"ExactSim-noExploit", "exactsim",
				[]algo.Option{algo.WithoutLocalExploit()}},
		)
	}
	var out []Point
	for _, v := range variants {
		cfg.logf("[%s] ablation variant %s", env.Spec.Key, v.name)
		prev := Point{}
		for i, eps := range cfg.epsGrid() {
			param := fmtEps(eps)
			if i > 0 && cfg.predictedOver(prev, 8) {
				out = append(out, omittedPoint(env, v.name, param, "predicted over budget"))
				prev = Point{Omitted: true}
				continue
			}
			opts := append(cfg.baseOpts(uint64(i)), algo.WithEpsilon(eps))
			opts = append(opts, v.extra...)
			p := cfg.sweepPoint(env, v.name, param, v.regName, opts...)
			out = append(out, p)
			prev = p
			if cfg.budgetExceeded(p) {
				for _, eps2 := range cfg.epsGrid()[i+1:] {
					out = append(out, omittedPoint(env, v.name, fmtEps(eps2), "over budget"))
				}
				break
			}
		}
	}
	return out
}
