package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/exactsim/exactsim/internal/dataset"
)

// quick returns a configuration small enough for CI.
func quick() Config {
	c := Quick()
	c.Scale = 0.01
	c.Queries = 2
	c.K = 10
	c.TimeBudget = 2 * time.Second
	c.EpsGrid = []float64{1e-1, 1e-2, 1e-3}
	c.GroundTruthEps = 1e-3
	c.SampleFactor = 0.5
	return c
}

func TestPickSources(t *testing.T) {
	spec, _ := dataset.ByKey("GQ")
	g := spec.Generate(0.02)
	srcs := pickSources(g, 5, 1)
	if len(srcs) != 5 {
		t.Fatalf("picked %d sources", len(srcs))
	}
	seen := map[int32]bool{}
	for _, s := range srcs {
		if seen[s] {
			t.Fatal("duplicate source")
		}
		seen[s] = true
		if int(s) >= g.N() {
			t.Fatal("source out of range")
		}
	}
	// determinism
	again := pickSources(g, 5, 1)
	for i := range srcs {
		if srcs[i] != again[i] {
			t.Fatal("source selection not deterministic")
		}
	}
}

func TestNewEnvSmall(t *testing.T) {
	cfg := quick()
	spec, _ := dataset.ByKey("GQ")
	env, err := NewEnv(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if env.TruthKind != "powermethod" {
		t.Fatalf("small graph truth kind %q", env.TruthKind)
	}
	if len(env.Truth) != len(env.Sources) {
		t.Fatal("truth/source mismatch")
	}
	for i, s := range env.Sources {
		if env.Truth[i][s] != 1 {
			t.Fatalf("truth self-score %g", env.Truth[i][s])
		}
	}
}

func TestNewEnvLarge(t *testing.T) {
	cfg := quick()
	spec, _ := dataset.ByKey("DB")
	env, err := NewEnv(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(env.TruthKind, "exactsim") {
		t.Fatalf("large graph truth kind %q", env.TruthKind)
	}
}

func TestSweepExactSimProducesMonotonePoints(t *testing.T) {
	cfg := quick()
	spec, _ := dataset.ByKey("GQ")
	env, err := NewEnv(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	pts := SweepExactSim(cfg, env, true)
	if len(pts) != len(cfg.epsGrid()) {
		t.Fatalf("expected %d points, got %d", len(cfg.epsGrid()), len(pts))
	}
	// the first (loosest) point must have run and met its error target
	if pts[0].Omitted {
		t.Fatalf("eps=1e-1 point omitted: %s", pts[0].Reason)
	}
	if pts[0].MaxError > 1e-1 {
		t.Fatalf("eps=1e-1 measured error %g", pts[0].MaxError)
	}
	for _, p := range pts {
		if !p.Omitted && p.QuerySeconds <= 0 {
			t.Fatalf("point %v has no query time", p.Param)
		}
	}
}

func TestSweepAllCoversMethods(t *testing.T) {
	cfg := quick()
	spec, _ := dataset.ByKey("GQ")
	env, err := NewEnv(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	pts := SweepAll(cfg, env)
	methods := map[string]bool{}
	for _, p := range pts {
		methods[p.Method] = true
	}
	for _, want := range []string{"ExactSim", "MC", "ParSim", "Linearization", "PRSim"} {
		if !methods[want] {
			t.Fatalf("sweep missing method %s (have %v)", want, methods)
		}
	}
}

func TestRunnerFigureProjections(t *testing.T) {
	cfg := quick()
	r := NewRunner(cfg)
	rep1, err := r.Run("fig1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Points) == 0 {
		t.Fatal("fig1 produced no points")
	}
	// fig2 must reuse the cached sweep: same number of points
	rep2, err := r.Run("fig2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Points) != len(rep1.Points) {
		t.Fatalf("fig1/fig2 point counts differ: %d vs %d",
			len(rep1.Points), len(rep2.Points))
	}
	// figs 3/4 restrict to index methods
	rep3, err := r.Run("fig3")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep3.Points {
		if !isIndexMethod(p.Method) {
			t.Fatalf("fig3 contains index-free method %s", p.Method)
		}
	}
}

func TestRunnerTable2(t *testing.T) {
	r := NewRunner(quick())
	rep, err := r.Run("table2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Preformatted, "ca-GrQc") {
		t.Fatal("table2 output incomplete")
	}
}

func TestRunnerTable3(t *testing.T) {
	r := NewRunner(quick())
	rep, err := r.Run("table3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("table3 rows: %d", len(rep.Rows))
	}
}

func TestRunnerUnknownID(t *testing.T) {
	r := NewRunner(quick())
	if _, err := r.Run("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestReportWriteAndCSV(t *testing.T) {
	cfg := quick()
	r := NewRunner(cfg)
	rep, err := r.Run("fig9")
	if err != nil {
		t.Fatal(err)
	}
	var tbl, csvBuf bytes.Buffer
	if err := rep.Write(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "ExactSim-basic") {
		t.Fatalf("fig9 table missing the ablation baseline:\n%s", tbl.String())
	}
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != len(rep.Points)+1 {
		t.Fatalf("CSV rows %d for %d points", len(lines), len(rep.Points))
	}
}

func TestBudgetOmission(t *testing.T) {
	cfg := quick()
	cfg.TimeBudget = 1 * time.Millisecond // everything over budget fast
	spec, _ := dataset.ByKey("GQ")
	env, err := NewEnv(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	pts := SweepLinearization(cfg, env)
	omitted := 0
	for _, p := range pts {
		if p.Omitted {
			omitted++
		}
	}
	if omitted < len(pts)-2 {
		t.Fatalf("tiny budget should omit nearly everything: %d/%d", omitted, len(pts))
	}
}
