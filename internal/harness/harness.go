// Package harness drives the paper's experimental study (§4): it sweeps
// every method over its parameter grid on the Table-2 dataset stand-ins,
// measures preprocessing time, index size, query time, MaxError and
// Precision@k against ground truth, and renders the series behind every
// figure and table. See DESIGN.md §3 for the experiment index.
//
// Ground-truth policy follows the paper exactly: small graphs use the
// power method; large graphs use optimized ExactSim at ε = 10⁻⁷ (§4.2),
// configurable down for quick runs.
package harness

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"github.com/exactsim/exactsim/internal/algo"
	"github.com/exactsim/exactsim/internal/dataset"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/rng"
)

// Config tunes a harness run. The zero value is NOT usable; call Default
// or Quick.
type Config struct {
	// C is the SimRank decay factor (paper: 0.6).
	C float64
	// Scale shrinks the dataset stand-ins, in (0,1].
	Scale float64
	// Queries is the number of random source nodes per dataset (paper: 50).
	Queries int
	// K is the top-k cutoff for precision (paper: 500); clamped to n/4.
	K int
	// TimeBudget bounds each sweep point; points predicted or measured to
	// exceed it are omitted — the stand-in for the paper's 24 h cutoff.
	TimeBudget time.Duration
	// GroundTruthEps is the ExactSim ε used for large-graph ground truth.
	GroundTruthEps float64
	// Workers caps parallelism for ground-truth computation; measured
	// sweeps always run single-threaded like the paper's evaluation.
	Workers int
	// Seed drives query selection and every stochastic method.
	Seed uint64
	// EpsGrid overrides the error-parameter sweep (paper default:
	// 10⁻¹ … 10⁻⁷). Quick configurations truncate it.
	EpsGrid []float64
	// SampleFactor is forwarded to the sampling methods (0 = 1.0).
	SampleFactor float64
	// Out receives progress lines; nil silences them.
	Out io.Writer
}

// Default mirrors the paper's settings at full stand-in scale.
func Default() Config {
	return Config{
		C: 0.6, Scale: 1, Queries: 50, K: 500,
		TimeBudget: 2 * time.Minute, GroundTruthEps: 1e-7,
		Workers: 1, Seed: 20200614,
	}
}

// Quick returns a configuration small enough for unit tests and smoke
// benchmarks: tiny graphs, few queries, loose ground truth, a truncated
// ε grid.
func Quick() Config {
	return Config{
		C: 0.6, Scale: 0.02, Queries: 3, K: 25,
		TimeBudget: 10 * time.Second, GroundTruthEps: 1e-4,
		Workers: 1, Seed: 20200614,
		EpsGrid: []float64{1e-1, 1e-2, 1e-3, 1e-4},
	}
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format+"\n", args...)
	}
}

// Point is one measured sweep point: a (dataset, method, parameter) cell
// averaged over the query set.
type Point struct {
	Dataset string
	Method  string
	Param   string
	// PrepSeconds and IndexBytes are zero for index-free methods.
	PrepSeconds float64
	IndexBytes  int64
	// QuerySeconds is the mean per-query wall time.
	QuerySeconds float64
	// MaxError is the mean over queries of max_j |ŝ(j) − S(i,j)|.
	MaxError float64
	// Precision is the mean Precision@K.
	Precision float64
	// Omitted marks points skipped for exceeding the time budget.
	Omitted bool
	Reason  string
}

// Env bundles a generated dataset with its ground truth and query nodes.
type Env struct {
	Spec    dataset.Spec
	G       *graph.Graph
	Sources []graph.NodeID
	// Truth[i] is the ground-truth single-source vector for Sources[i].
	Truth [][]float64
	// TruthKind records how the truth was produced ("powermethod" or
	// "exactsim(eps)").
	TruthKind string
}

// NewEnv generates the dataset and its ground truth per the paper's
// policy. Expensive for small graphs (power method) — callers should reuse
// the Env across figures.
func NewEnv(cfg Config, spec dataset.Spec) (*Env, error) {
	g := spec.Generate(cfg.Scale)
	env := &Env{Spec: spec, G: g}
	env.Sources = pickSources(g, cfg.Queries, cfg.Seed)

	// Ground truth comes through the same registry the sweeps use: the
	// power method for small graphs, optimized ExactSim for large ones.
	start := time.Now()
	var (
		truthName string
		truthOpts []algo.Option
	)
	if spec.Class == dataset.Small {
		cfg.logf("[%s] ground truth: power method on n=%d m=%d ...", spec.Key, g.N(), g.M())
		truthName = "powermethod"
		truthOpts = []algo.Option{algo.WithC(cfg.C), algo.WithWorkers(cfg.Workers)}
		env.TruthKind = "powermethod"
	} else {
		cfg.logf("[%s] ground truth: ExactSim eps=%g on n=%d m=%d ...",
			spec.Key, cfg.GroundTruthEps, g.N(), g.M())
		truthName = "exactsim"
		truthOpts = []algo.Option{
			algo.WithC(cfg.C), algo.WithEpsilon(cfg.GroundTruthEps),
			algo.WithWorkers(cfg.Workers), algo.WithSeed(cfg.Seed ^ 0xfeedface),
			algo.WithSampleFactor(cfg.SampleFactor),
		}
		env.TruthKind = fmt.Sprintf("exactsim(%g)", cfg.GroundTruthEps)
	}
	oracle, err := algo.New(truthName, g, truthOpts...)
	if err != nil {
		return nil, err
	}
	for _, s := range env.Sources {
		res, err := oracle.SingleSource(context.Background(), s)
		if err != nil {
			return nil, err
		}
		env.Truth = append(env.Truth, res.Scores)
	}
	cfg.logf("[%s] ground truth ready in %v", spec.Key, time.Since(start).Round(time.Millisecond))
	return env, nil
}

// pickSources selects distinct query nodes deterministically, biased
// towards nodes that actually have in-edges (degree-0 sources answer
// trivially and would dilute the measurements).
func pickSources(g *graph.Graph, count int, seed uint64) []graph.NodeID {
	n := g.N()
	if count > n {
		count = n
	}
	r := rng.New(seed)
	chosen := make(map[int32]bool, count)
	out := make([]graph.NodeID, 0, count)
	for attempts := 0; len(out) < count && attempts < 50*count; attempts++ {
		v := int32(r.Intn(n))
		if chosen[v] {
			continue
		}
		if g.InDegree(v) == 0 && attempts < 25*count {
			continue // prefer interesting sources while attempts remain
		}
		chosen[v] = true
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// kFor clamps the precision cutoff to a quarter of the graph so the
// metric stays meaningful on scaled-down stand-ins.
func (cfg Config) kFor(g *graph.Graph) int {
	k := cfg.K
	if max := g.N() / 4; k > max {
		k = max
	}
	if k < 1 {
		k = 1
	}
	return k
}

// epsGrid is the shared error-parameter sweep (paper: 10⁻¹ … 10⁻⁷ "if
// possible"; the time budget truncates it exactly like the 24 h rule).
func (c Config) epsGrid() []float64 {
	if len(c.EpsGrid) > 0 {
		return c.EpsGrid
	}
	return []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7}
}

func fmtEps(eps float64) string { return fmt.Sprintf("eps=%.0e", eps) }

// secs converts a duration to seconds with a floor that keeps downstream
// rate predictions away from division by zero.
func secs(d time.Duration) float64 { return math.Max(d.Seconds(), 1e-9) }
