package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Report is the rendered result of one experiment id.
type Report struct {
	ID    string
	Title string
	// Header/Rows hold tabular output; Preformatted (if set) is printed
	// verbatim instead (Table 2).
	Header       []string
	Rows         [][]string
	Preformatted string
	// Points keeps the raw measurements for programmatic use.
	Points []Point
}

func newReport(id, title string) *Report {
	return &Report{
		ID:    id,
		Title: title,
		Header: []string{
			"dataset", "method", "param", "x", "y", "note",
		},
	}
}

// add projects a point onto the report's (x, y) axes.
func (r *Report) add(p Point, proj projection) {
	r.Points = append(r.Points, p)
	if p.Omitted {
		r.Rows = append(r.Rows, []string{
			p.Dataset, p.Method, p.Param, "-", "-", "omitted: " + p.Reason,
		})
		return
	}
	var x, y string
	switch proj {
	case projError:
		x = fmt.Sprintf("%.4gs", p.QuerySeconds)
		y = fmt.Sprintf("maxerr=%.3e", p.MaxError)
	case projPrecision:
		x = fmt.Sprintf("%.4gs", p.QuerySeconds)
		y = fmt.Sprintf("prec=%.4f", p.Precision)
	case projPrep:
		x = fmt.Sprintf("%.4gs", p.PrepSeconds)
		y = fmt.Sprintf("maxerr=%.3e", p.MaxError)
	case projIndex:
		x = fmt.Sprintf("%.3fMB", float64(p.IndexBytes)/(1<<20))
		y = fmt.Sprintf("maxerr=%.3e", p.MaxError)
	}
	r.Rows = append(r.Rows, []string{p.Dataset, p.Method, p.Param, x, y, ""})
}

// Write renders the report as an aligned ASCII table.
func (r *Report) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	if r.Preformatted != "" {
		_, err := io.WriteString(w, r.Preformatted)
		return err
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		for i, cell := range cells {
			pad := widths[i]
			if _, err := fmt.Fprintf(w, "%-*s  ", pad, cell); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	if err := writeRow(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV emits the raw points as CSV for plotting.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"experiment", "dataset", "method", "param",
		"prep_seconds", "index_bytes", "query_seconds",
		"max_error", "precision", "omitted", "reason",
	}); err != nil {
		return err
	}
	for _, p := range r.Points {
		rec := []string{
			r.ID, p.Dataset, p.Method, p.Param,
			strconv.FormatFloat(p.PrepSeconds, 'g', 6, 64),
			strconv.FormatInt(p.IndexBytes, 10),
			strconv.FormatFloat(p.QuerySeconds, 'g', 6, 64),
			strconv.FormatFloat(p.MaxError, 'g', 6, 64),
			strconv.FormatFloat(p.Precision, 'g', 6, 64),
			strconv.FormatBool(p.Omitted),
			p.Reason,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
