package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/exactsim/exactsim/internal/algo"
	"github.com/exactsim/exactsim/internal/core"
	"github.com/exactsim/exactsim/internal/dataset"
)

// Runner executes experiments by id, caching dataset environments and
// method sweeps so that e.g. Figures 1–4 share one measurement pass.
type Runner struct {
	cfg    Config
	envs   map[string]*Env
	sweeps map[string][]Point
}

// NewRunner returns a Runner for the configuration.
func NewRunner(cfg Config) *Runner {
	return &Runner{cfg: cfg, envs: map[string]*Env{}, sweeps: map[string][]Point{}}
}

// Experiments lists the supported experiment ids in paper order.
func Experiments() []string {
	return []string{
		"table2", "fig1", "fig2", "fig3", "fig4",
		"fig5", "fig6", "fig7", "fig8", "fig9",
		"table3", "ablation-extra",
	}
}

// Env returns the (cached) environment for a dataset key.
func (r *Runner) Env(key string) (*Env, error) {
	if env, ok := r.envs[key]; ok {
		return env, nil
	}
	spec, err := dataset.ByKey(key)
	if err != nil {
		return nil, err
	}
	env, err := NewEnv(r.cfg, spec)
	if err != nil {
		return nil, err
	}
	r.envs[key] = env
	return env, nil
}

// sweep returns the (cached) all-method sweep for a dataset key.
func (r *Runner) sweep(key string) ([]Point, error) {
	if pts, ok := r.sweeps[key]; ok {
		return pts, nil
	}
	env, err := r.Env(key)
	if err != nil {
		return nil, err
	}
	pts := SweepAll(r.cfg, env)
	r.sweeps[key] = pts
	return pts, nil
}

func classKeys(c dataset.Class) []string {
	var keys []string
	var specs []dataset.Spec
	if c == dataset.Small {
		specs = dataset.SmallSpecs()
	} else {
		specs = dataset.LargeSpecs()
	}
	for _, s := range specs {
		keys = append(keys, s.Key)
	}
	return keys
}

// Run executes one experiment id and returns its report.
func (r *Runner) Run(id string) (*Report, error) {
	switch id {
	case "table2":
		return r.table2()
	case "fig1":
		return r.tradeoffFigure(id, dataset.Small, "MaxError vs query time (small graphs; paper Figure 1)", projError, false)
	case "fig2":
		return r.tradeoffFigure(id, dataset.Small, "Precision@k vs query time (small graphs; paper Figure 2)", projPrecision, false)
	case "fig3":
		return r.tradeoffFigure(id, dataset.Small, "MaxError vs preprocessing time (small graphs; paper Figure 3)", projPrep, true)
	case "fig4":
		return r.tradeoffFigure(id, dataset.Small, "MaxError vs index size (small graphs; paper Figure 4)", projIndex, true)
	case "fig5":
		return r.tradeoffFigure(id, dataset.Large, "MaxError vs query time (large graphs; paper Figure 5)", projError, false)
	case "fig6":
		return r.tradeoffFigure(id, dataset.Large, "Precision@k vs query time (large graphs; paper Figure 6)", projPrecision, false)
	case "fig7":
		return r.tradeoffFigure(id, dataset.Large, "MaxError vs preprocessing time (large graphs; paper Figure 7)", projPrep, true)
	case "fig8":
		return r.tradeoffFigure(id, dataset.Large, "MaxError vs index size (large graphs; paper Figure 8)", projIndex, true)
	case "fig9":
		return r.figure9()
	case "table3":
		return r.table3()
	case "ablation-extra":
		return r.ablationExtra()
	default:
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", id, Experiments())
	}
}

type projection int

const (
	projError projection = iota
	projPrecision
	projPrep
	projIndex
)

// indexMethods are the methods with a preprocessing phase (Figures 3/4/7/8
// plot only these, matching the paper).
func isIndexMethod(m string) bool {
	switch m {
	case "MC", "PRSim", "Linearization":
		return true
	}
	return false
}

func (r *Runner) tradeoffFigure(id string, class dataset.Class, title string,
	proj projection, indexOnly bool) (*Report, error) {

	rep := newReport(id, title)
	for _, key := range classKeys(class) {
		pts, err := r.sweep(key)
		if err != nil {
			return nil, err
		}
		for _, p := range pts {
			if indexOnly && !isIndexMethod(p.Method) {
				continue
			}
			rep.add(p, proj)
		}
	}
	return rep, nil
}

func (r *Runner) table2() (*Report, error) {
	rep := newReport("table2", "Datasets (paper Table 2) with generated stand-ins")
	var sb strings.Builder
	if err := dataset.WriteTable2(&sb, r.cfg.Scale); err != nil {
		return nil, err
	}
	rep.Preformatted = sb.String()
	return rep, nil
}

func (r *Runner) figure9() (*Report, error) {
	rep := newReport("fig9", "Basic vs optimized ExactSim (paper Figure 9: HP, DB)")
	for _, key := range []string{"HP", "DB"} {
		env, err := r.Env(key)
		if err != nil {
			return nil, err
		}
		for _, p := range SweepAblation(r.cfg, env, false) {
			rep.add(p, projError)
		}
	}
	return rep, nil
}

func (r *Runner) ablationExtra() (*Report, error) {
	rep := newReport("ablation-extra",
		"Component ablation: π²-sampling and Algorithm-3 isolated (DESIGN.md §3)")
	env, err := r.Env("GQ")
	if err != nil {
		return nil, err
	}
	for _, p := range SweepAblation(r.cfg, env, true) {
		rep.add(p, projError)
	}
	return rep, nil
}

// table3 measures the working memory of basic vs optimized ExactSim on the
// large stand-ins (paper Table 3), alongside the graph size.
func (r *Runner) table3() (*Report, error) {
	rep := newReport("table3", "Memory overhead on large graphs (paper Table 3)")
	rep.Header = []string{"dataset", "basic ExactSim (MB)", "ExactSim (MB)", "graph size (MB)"}
	eps := r.cfg.GroundTruthEps
	if eps < 1e-6 {
		eps = 1e-6 // the paper reports Table 3 at exactness settings; the
		// memory profile is set by L and the sparsification threshold.
	}
	for _, key := range classKeys(dataset.Large) {
		// Table 3 needs no ground truth: generate the graph directly
		// rather than paying for an Env.
		spec, err := dataset.ByKey(key)
		if err != nil {
			return nil, err
		}
		g := spec.Generate(r.cfg.Scale)
		src := pickSources(g, 1, r.cfg.Seed)[0]
		var extras [2]int64
		for i, regName := range []string{"exactsim-basic", "exactsim"} {
			// SampleFactor is irrelevant to the memory profile; keep it
			// tiny so Table 3 measures memory, not sampling time.
			q, err := algo.New(regName, g,
				algo.WithC(r.cfg.C), algo.WithEpsilon(eps),
				algo.WithSeed(r.cfg.Seed), algo.WithSampleFactor(1e-12))
			if err != nil {
				return nil, err
			}
			res, err := q.SingleSource(context.Background(), src)
			if err != nil {
				return nil, err
			}
			// The ExactSim adapters carry the full core record in Detail.
			extras[i] = res.Detail.(*core.Result).ExtraBytes
		}
		mb := func(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }
		rep.Rows = append(rep.Rows, []string{
			spec.Key, mb(extras[0]), mb(extras[1]), mb(g.Bytes()),
		})
	}
	return rep, nil
}

// RunAll executes every experiment in order.
func (r *Runner) RunAll() ([]*Report, error) {
	var out []*Report
	for _, id := range Experiments() {
		rep, err := r.Run(id)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// SortPoints orders points for stable report output.
func SortPoints(pts []Point) {
	sort.SliceStable(pts, func(i, j int) bool {
		if pts[i].Dataset != pts[j].Dataset {
			return pts[i].Dataset < pts[j].Dataset
		}
		return pts[i].Method < pts[j].Method
	})
}
