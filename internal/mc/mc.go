// Package mc implements the Monte-Carlo SimRank baseline of Fogaras & Rácz
// (paper §2, "MC"): an index of truncated √c-walk fingerprints.
//
// Preprocessing simulates r √c-walks of length ≤ L from every node and
// stores them. A single-source query for v_i compares, for every node v_j
// and every walk id, the stored trajectories of v_i and v_j; the fraction
// of walk ids on which they meet estimates S(i,j) (paper eq. 2).
//
// The method's complexity is the paper's recurring villain: the index costs
// O(n·r) walks and bytes, so driving the error to ε needs r = O(log n/ε²)
// walks *per node* — the O(n·log n/ε²) wall that makes exactness
// unreachable. The experiment harness reproduces exactly that wall
// (Figures 1/3/4 and 5/7/8).
package mc

import (
	"context"
	"time"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/walk"
)

// Params are the two knobs the paper sweeps for MC: walk length L and
// walks-per-node R (their "(L, r)" from (5,50) to (5000,50000)).
type Params struct {
	C    float64 // decay factor
	L    int     // maximum walk length
	R    int     // walks per node
	Seed uint64
}

// Index is the walk-fingerprint index. Walks are stored flattened:
// walk w of node v occupies data[offsets[v*R+w]:offsets[v*R+w+1]].
type Index struct {
	g       *graph.Graph
	p       Params
	offsets []int32
	data    []graph.NodeID
	// PrepTime records how long Build took (Figure 3/7 x-axis).
	PrepTime time.Duration
}

// Build simulates and stores the walk index.
func Build(g *graph.Graph, p Params) *Index {
	ix, _ := BuildCtx(context.Background(), g, p)
	return ix
}

// BuildCtx is Build with cancellation checked once per source node (R
// walks ≈ microseconds of work between checks).
func BuildCtx(ctx context.Context, g *graph.Graph, p Params) (*Index, error) {
	start := time.Now()
	n := g.N()
	w := walk.NewWalker(g, p.C, p.Seed)
	ix := &Index{g: g, p: p}
	ix.offsets = make([]int32, n*p.R+1)
	// expected walk length is √c/(1−√c) ≈ 3.4 for c=0.6; reserve generously
	ix.data = make([]graph.NodeID, 0, n*p.R*4)
	var buf []graph.NodeID
	for v := 0; v < n; v++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for r := 0; r < p.R; r++ {
			buf = w.Trajectory(int32(v), p.L, buf)
			ix.data = append(ix.data, buf...)
			ix.offsets[v*p.R+r+1] = int32(len(ix.data))
		}
	}
	ix.PrepTime = time.Since(start)
	return ix, nil
}

// walkOf returns the stored trajectory for (node, walk id).
func (ix *Index) walkOf(v graph.NodeID, r int) []graph.NodeID {
	i := int(v)*ix.p.R + r
	return ix.data[ix.offsets[i]:ix.offsets[i+1]]
}

// SingleSource estimates S(source, j) for every j by the meeting fraction
// of the stored walk pairs.
func (ix *Index) SingleSource(source graph.NodeID) []float64 {
	s, _ := ix.SingleSourceCtx(context.Background(), source)
	return s
}

// SingleSourceCtx is SingleSource with cancellation checked every 1024
// candidate nodes (each candidate costs R trajectory comparisons).
func (ix *Index) SingleSourceCtx(ctx context.Context, source graph.NodeID) ([]float64, error) {
	n := ix.g.N()
	scores := make([]float64, n)
	inv := 1 / float64(ix.p.R)
	// Pre-slice the source's walks once.
	srcWalks := make([][]graph.NodeID, ix.p.R)
	for r := 0; r < ix.p.R; r++ {
		srcWalks[r] = ix.walkOf(source, r)
	}
	for j := 0; j < n; j++ {
		if j&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		met := 0
		for r := 0; r < ix.p.R; r++ {
			if walk.TrajectoriesMeet(srcWalks[r], ix.walkOf(int32(j), r)) {
				met++
			}
		}
		scores[j] = float64(met) * inv
	}
	scores[source] = 1
	return scores, nil
}

// Bytes returns the index footprint (Figure 4/8 x-axis).
func (ix *Index) Bytes() int64 {
	return int64(len(ix.offsets))*4 + int64(len(ix.data))*4
}

// Params returns the build parameters.
func (ix *Index) Params() Params { return ix.p }
