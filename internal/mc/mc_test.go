package mc

import (
	"math"
	"reflect"
	"testing"

	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/powermethod"
	"github.com/exactsim/exactsim/internal/rng"
)

const c = 0.6

func randomGraph(seed uint64, n, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func TestBuildShape(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 1)
	ix := Build(g, Params{C: c, L: 10, R: 20, Seed: 5})
	if ix.Bytes() <= 0 {
		t.Fatal("empty index")
	}
	if ix.PrepTime <= 0 {
		t.Fatal("PrepTime not recorded")
	}
	// every stored walk begins at its node and respects the length cap
	for v := int32(0); v < int32(g.N()); v++ {
		for r := 0; r < 20; r++ {
			w := ix.walkOf(v, r)
			if len(w) == 0 || w[0] != v {
				t.Fatalf("walk (%d,%d) malformed: %v", v, r, w)
			}
			if len(w) > 11 {
				t.Fatalf("walk exceeds L: %d", len(w))
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := gen.BarabasiAlbert(50, 3, 2)
	a := Build(g, Params{C: c, L: 8, R: 10, Seed: 9})
	b := Build(g, Params{C: c, L: 8, R: 10, Seed: 9})
	if !reflect.DeepEqual(a.data, b.data) {
		t.Fatal("same-seed builds differ")
	}
}

func TestSingleSourceBasics(t *testing.T) {
	g := gen.BarabasiAlbert(80, 3, 3)
	ix := Build(g, Params{C: c, L: 10, R: 50, Seed: 1})
	s := ix.SingleSource(7)
	if len(s) != g.N() {
		t.Fatalf("scores length %d", len(s))
	}
	if s[7] != 1 {
		t.Fatalf("self score %g", s[7])
	}
	for j, v := range s {
		if v < 0 || v > 1 {
			t.Fatalf("score %d = %g", j, v)
		}
	}
}

func TestAccuracyImprovesWithR(t *testing.T) {
	g := randomGraph(7, 30, 120)
	truth := powermethod.Compute(g, powermethod.Options{C: c, L: 50})
	maxErrFor := func(R int) float64 {
		ix := Build(g, Params{C: c, L: 30, R: R, Seed: 11})
		worst := 0.0
		for _, src := range []int32{0, 5, 10} {
			s := ix.SingleSource(src)
			for j := range s {
				if d := math.Abs(s[j] - truth.At(int(src), j)); d > worst {
					worst = d
				}
			}
		}
		return worst
	}
	small := maxErrFor(20)
	large := maxErrFor(2000)
	if large > 0.05 {
		t.Fatalf("R=2000 error %g too large", large)
	}
	if large >= small {
		t.Fatalf("more walks did not help: R=20 → %g, R=2000 → %g", small, large)
	}
}

func TestTruncationBiasVisible(t *testing.T) {
	// L=1 truncates nearly all meetings: scores should underestimate badly
	// on a graph with deep structure.
	g := gen.Clique(10)
	truth := powermethod.Compute(g, powermethod.Options{C: c, L: 50})
	ix := Build(g, Params{C: c, L: 1, R: 3000, Seed: 3})
	s := ix.SingleSource(0)
	// the L=1 estimate only counts step-1 meetings: probability c/(n−1)
	want1 := c / 9
	if math.Abs(s[1]-want1) > 0.03 {
		t.Fatalf("L=1 estimate %g want ≈ %g", s[1], want1)
	}
	if s[1] >= truth.At(0, 1) {
		t.Fatalf("truncated estimate %g should undershoot truth %g", s[1], truth.At(0, 1))
	}
}

func TestBytesGrowsWithR(t *testing.T) {
	g := gen.BarabasiAlbert(60, 3, 4)
	a := Build(g, Params{C: c, L: 10, R: 10, Seed: 1})
	b := Build(g, Params{C: c, L: 10, R: 100, Seed: 1})
	if b.Bytes() <= a.Bytes() {
		t.Fatalf("index size did not grow with R: %d vs %d", a.Bytes(), b.Bytes())
	}
}

func BenchmarkQuery(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 5, 1)
	ix := Build(g, Params{C: c, L: 10, R: 100, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SingleSource(int32(i % g.N()))
	}
}
