package lineariz

import (
	"math"
	"testing"

	"github.com/exactsim/exactsim/internal/diag"
	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/powermethod"
	"github.com/exactsim/exactsim/internal/rng"
)

const c = 0.6

func randomGraph(seed uint64, n, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func TestExactDiagonalMatchesPowerMethod(t *testing.T) {
	// With the exact D, the query iteration must reproduce the power
	// method within the c^L truncation tail: validates the eq.-5 nesting.
	for seed := uint64(1); seed <= 4; seed++ {
		g := randomGraph(seed*3, 25, 90)
		truth := powermethod.Compute(g, powermethod.Options{C: c, L: 60})
		dExact := diag.ExactByIteration(g, c, 60)
		ix := BuildWithDiagonal(g, Params{C: c, Eps: 1e-6}, dExact)
		for _, src := range []int32{0, 12} {
			got := ix.SingleSource(src)
			for j := range got {
				if math.Abs(got[j]-truth.At(int(src), j)) > 1e-6 {
					t.Fatalf("seed %d src %d node %d: %g vs %g",
						seed, src, j, got[j], truth.At(int(src), j))
				}
			}
		}
	}
}

func TestSampledBuildAccuracy(t *testing.T) {
	g := randomGraph(11, 20, 80)
	truth := powermethod.Compute(g, powermethod.Options{C: c, L: 60})
	ix := Build(g, Params{C: c, Eps: 0.03, Seed: 7})
	got := ix.SingleSource(4)
	worst := 0.0
	for j := range got {
		if d := math.Abs(got[j] - truth.At(4, j)); d > worst {
			worst = d
		}
	}
	// D error ~ ε/√ln n per node; allow 3× headroom on the end-to-end error
	if worst > 0.09 {
		t.Fatalf("MaxError %g at eps=0.03", worst)
	}
}

func TestPrepCostScalesWithEps(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 1)
	a := PrepCost(g, Params{C: c, Eps: 0.1})
	b := PrepCost(g, Params{C: c, Eps: 0.01})
	if b < 90*a || b > 110*a {
		t.Fatalf("halving-eps-by-10 should cost ~100×: %d vs %d", a, b)
	}
	// cost is linear in n: the O(n·log n/ε²) wall
	g2 := gen.BarabasiAlbert(200, 3, 1)
	c2 := PrepCost(g2, Params{C: c, Eps: 0.1})
	if c2 <= a {
		t.Fatalf("cost did not grow with n: %d vs %d", a, c2)
	}
}

func TestIndexSizeConstantInEps(t *testing.T) {
	// Figure 4's vertical line: the index is just the diagonal.
	g := gen.BarabasiAlbert(100, 3, 2)
	d := make([]float64, g.N())
	a := BuildWithDiagonal(g, Params{C: c, Eps: 0.1}, d)
	b := BuildWithDiagonal(g, Params{C: c, Eps: 0.001}, d)
	if a.Bytes() != b.Bytes() {
		t.Fatalf("index size varies with eps: %d vs %d", a.Bytes(), b.Bytes())
	}
	if a.Bytes() != int64(g.N())*8 {
		t.Fatalf("index size %d, want 8n", a.Bytes())
	}
}

func TestLevels(t *testing.T) {
	ix := BuildWithDiagonal(gen.Cycle(4), Params{C: c, Eps: 1e-4}, make([]float64, 4))
	want := int(math.Ceil(math.Log(2e4) / math.Log(1/c)))
	if got := ix.Levels(); got != want {
		t.Fatalf("Levels = %d want %d", got, want)
	}
}

func TestBuildRecordsPrepTime(t *testing.T) {
	g := gen.BarabasiAlbert(60, 3, 3)
	ix := Build(g, Params{C: c, Eps: 0.2, Seed: 1})
	if ix.PrepTime <= 0 {
		t.Fatal("PrepTime not recorded")
	}
	if ix.SamplesPerNode <= 0 {
		t.Fatal("SamplesPerNode not recorded")
	}
	if len(ix.Diagonal()) != g.N() {
		t.Fatal("diagonal size mismatch")
	}
}

func TestDiagonalValuesPlausible(t *testing.T) {
	g := gen.BarabasiAlbert(80, 3, 4)
	ix := Build(g, Params{C: c, Eps: 0.05, Seed: 9})
	exact := diag.ExactByIteration(g, c, 60)
	for k, dk := range ix.Diagonal() {
		if dk < 0 || dk > 1 {
			t.Fatalf("D(%d) = %g", k, dk)
		}
		if math.Abs(dk-exact[k]) > 0.1 {
			t.Fatalf("D(%d) = %g vs exact %g", k, dk, exact[k])
		}
	}
}

func BenchmarkQueryEps1e2(b *testing.B) {
	g := gen.BarabasiAlbert(5000, 5, 1)
	ix := BuildWithDiagonal(g, Params{C: c, Eps: 1e-2}, make([]float64, g.N()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SingleSource(int32(i % g.N()))
	}
}
