// Package lineariz implements the Linearization baseline (Maehara et al.,
// paper §2): the linearized SimRank iteration with a Monte-Carlo estimate
// of the diagonal correction matrix D computed in a preprocessing phase.
//
// Preprocessing estimates every D(k,k) independently with R_D walk-pair
// samples — n·R_D pairs in total. This is the O(n·log n/ε²) wall the paper
// identifies (§2.2): each tenfold precision gain costs 100× preprocessing,
// so the method cannot reach exactness on any non-trivial graph. The index
// itself is tiny (the n-entry diagonal), which is why Linearization's
// points form a vertical line in the paper's index-size plots (Figure 4).
//
// Queries use the O(m·log²(1/ε)) nested iteration of paper eq. 5 — the
// memory-frugal variant the authors themselves benchmark ([24] "only uses
// the O(m·log² 1/ε) algorithm in the experiments").
package lineariz

import (
	"context"
	"math"
	"time"

	"github.com/exactsim/exactsim/internal/diag"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/linalg"
)

// Params configures Build.
type Params struct {
	C   float64 // decay factor
	Eps float64 // target additive error; drives R_D and the query level L
	// SampleFactor scales the per-node D sample count
	// R_D = ⌈SampleFactor·ln n/ε²⌉. 0 selects 1.0, which matches the
	// practical constants implied by the original paper's reported
	// preprocessing times (see DESIGN.md §4).
	SampleFactor float64
	Workers      int
	Seed         uint64
}

// Index holds the estimated diagonal.
type Index struct {
	g        *graph.Graph
	op       *linalg.Operator
	p        Params
	d        []float64
	PrepTime time.Duration
	// SamplesPerNode records the R_D actually used.
	SamplesPerNode int
}

// PrepCost predicts the number of walk-pair samples Build will simulate
// (n·R_D). The harness uses it to honor per-point time budgets without
// launching hopeless builds — the stand-in for the paper's 24-hour cutoff.
func PrepCost(g *graph.Graph, p Params) int64 {
	return int64(g.N()) * int64(samplesPerNode(g, p))
}

func samplesPerNode(g *graph.Graph, p Params) int {
	sf := p.SampleFactor
	if sf == 0 {
		sf = 1
	}
	ln := math.Log(float64(g.N()))
	if ln < 1 {
		ln = 1
	}
	return int(math.Ceil(sf * ln / (p.Eps * p.Eps)))
}

// Build runs the Monte-Carlo D estimation for every node.
func Build(g *graph.Graph, p Params) *Index {
	ix, _ := BuildCtx(context.Background(), g, p)
	return ix
}

// BuildCtx is Build under a context; the O(n·log n/ε²) sampling wall this
// preprocessing hits is exactly the phase a serving deadline must be able
// to abort, and diag.BatchCtx checks inside the per-node sample loops.
func BuildCtx(ctx context.Context, g *graph.Graph, p Params) (*Index, error) {
	start := time.Now()
	rd := samplesPerNode(g, p)
	reqs := make([]diag.Request, g.N())
	for k := range reqs {
		reqs[k] = diag.Request{Node: int32(k), Samples: rd}
	}
	d, err := diag.BatchCtx(ctx, g, reqs, diag.Options{
		C: p.C, Improved: false, Workers: p.Workers, Seed: p.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Index{
		g:              g,
		op:             linalg.NewOperator(g, 1),
		p:              p,
		d:              d,
		PrepTime:       time.Since(start),
		SamplesPerNode: rd,
	}, nil
}

// BuildWithDiagonal wraps a precomputed diagonal (used by tests and by the
// harness to share D across ε-sweeps where the paper would rebuild).
func BuildWithDiagonal(g *graph.Graph, p Params, d []float64) *Index {
	return &Index{g: g, op: linalg.NewOperator(g, 1), p: p, d: d,
		SamplesPerNode: samplesPerNode(g, p)}
}

// Levels returns the query iteration count L = ⌈log_{1/c}(2/ε)⌉.
func (ix *Index) Levels() int {
	return int(math.Ceil(math.Log(2/ix.p.Eps) / math.Log(1/ix.p.C)))
}

// SingleSource evaluates S_L·e_source = Σ_{ℓ=0}^{L} c^ℓ (Pᵀ)^ℓ D P^ℓ e_source
// by recomputing P^ℓ·e_source per level (eq. 5): O(m·L²) time, O(n) memory.
func (ix *Index) SingleSource(source graph.NodeID) []float64 {
	s, _ := ix.SingleSourceCtx(context.Background(), source)
	return s
}

// SingleSourceCtx is SingleSource with cancellation checked inside the
// nested iteration — once per O(m) matrix application, not just per outer
// level, since the inner loops grow linearly with ℓ.
func (ix *Index) SingleSourceCtx(ctx context.Context, source graph.NodeID) ([]float64, error) {
	n := ix.g.N()
	cc := ix.p.C
	L := ix.Levels()
	scores := make([]float64, n)
	u := make([]float64, n)
	v := make([]float64, n)
	for ell := 0; ell <= L; ell++ {
		// u = P^ell · e_source
		for i := range u {
			u[i] = 0
		}
		u[source] = 1
		for s := 0; s < ell; s++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			ix.op.ApplyP(v, u, 1)
			u, v = v, u
		}
		// u = D·u, then apply (Pᵀ)^ell and accumulate with weight c^ell
		for i := range u {
			u[i] *= ix.d[i]
		}
		for s := 0; s < ell; s++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			ix.op.ApplyPT(v, u, 1)
			u, v = v, u
		}
		w := math.Pow(cc, float64(ell))
		for i := range u {
			scores[i] += w * u[i]
		}
	}
	scores[source] = 1
	return scores, nil
}

// Diagonal exposes the estimated D (aliased; callers must not modify).
func (ix *Index) Diagonal() []float64 { return ix.d }

// Bytes returns the index footprint: the n-entry diagonal. Constant in ε —
// the vertical line of paper Figure 4.
func (ix *Index) Bytes() int64 { return int64(len(ix.d)) * 8 }
