package sparse

import (
	"math/rand"
	"testing"
)

// benchScores builds a deterministic pseudo-random dense score vector.
func benchScores(n int) []float64 {
	r := rand.New(rand.NewSource(42))
	s := make([]float64, n)
	for i := range s {
		s[i] = r.Float64()
	}
	return s
}

// BenchmarkTopK measures dense top-k selection across the (n, k) regimes
// the serving layer sees: every TopK request funnels a full score vector
// through this selection, so it sits on the query hot path right after the
// backward phase.
func BenchmarkTopK(b *testing.B) {
	for _, bc := range []struct {
		name string
		n, k int
	}{
		{"n=100k_k=10", 100_000, 10},
		{"n=100k_k=100", 100_000, 100},
		{"n=1M_k=10", 1_000_000, 10},
		{"n=1M_k=100", 1_000_000, 100},
	} {
		scores := benchScores(bc.n)
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := TopK(scores, bc.k, 0); len(got) != bc.k {
					b.Fatalf("got %d entries", len(got))
				}
			}
		})
	}
}

// BenchmarkTopKSparse measures the sparse-vector variant used by truncated
// single-source results.
func BenchmarkTopKSparse(b *testing.B) {
	const nnz, k = 100_000, 50
	dense := benchScores(nnz)
	v := FromDense(dense, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := TopKSparse(&v, k, 0); len(got) != k {
			b.Fatalf("got %d entries", len(got))
		}
	}
}
