package sparse

import "slices"

// Entry pairs a node index with a score; TopK returns slices of these.
// The JSON tags give top-k results a stable wire shape for the serving
// protocol.
type Entry struct {
	Idx int32   `json:"node"`
	Val float64 `json:"score"`
}

// topkHeap is a bounded min-heap on Val with deterministic tie-breaking on
// Idx (larger index treated as smaller, so it is evicted first), which
// makes TopK results stable across runs. It is a hand-rolled sift heap:
// container/heap's interface methods box every Entry and dispatch every
// comparison dynamically, which profiled as the bulk of selection time on
// dense score vectors — this version is allocation-free past the initial
// backing array and fully inlinable.
type topkHeap []Entry

// less orders a before b in the min-heap (a is "smaller": worse score, or
// equal score with larger index).
func (h topkHeap) less(a, b Entry) bool {
	if a.Val != b.Val {
		return a.Val < b.Val
	}
	return a.Idx > b.Idx
}

// push grows the heap by one (callers guarantee spare capacity).
func (h *topkHeap) push(e Entry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// replaceRoot overwrites the minimum with e and sifts it down.
func (h topkHeap) replaceRoot(e Entry) {
	h[0] = e
	i := 0
	//lint:bounded sift-down: i strictly descends a finite heap
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h.less(h[l], h[smallest]) {
			smallest = l
		}
		if r < len(h) && h.less(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// beats reports whether e should displace the current heap minimum.
func (h topkHeap) beats(e Entry) bool {
	return e.Val > h[0].Val || (e.Val == h[0].Val && e.Idx < h[0].Idx)
}

// sorted finalizes the selection: descending value, ascending index on
// ties. Sorting only the k survivors keeps the whole selection at
// O(nnz·log k); the comparator is a concrete function for slices.SortFunc,
// not the reflection-based sort.Slice swapper.
func (h topkHeap) sorted() []Entry {
	out := make([]Entry, len(h))
	copy(out, h)
	slices.SortFunc(out, func(a, b Entry) int {
		switch {
		case a.Val > b.Val:
			return -1
		case a.Val < b.Val:
			return 1
		case a.Idx < b.Idx:
			return -1
		case a.Idx > b.Idx:
			return 1
		default:
			return 0
		}
	})
	return out
}

// TopK returns the k largest entries of the dense score vector, sorted by
// descending value with ascending index as the tie-break. If exclude >= 0,
// that index is skipped (SimRank queries exclude the source node, whose
// similarity is definitionally 1).
func TopK(scores []float64, k int, exclude int32) []Entry {
	if k <= 0 {
		return nil
	}
	h := make(topkHeap, 0, min(k, len(scores)))
	// The filter comparison is kept inline (beats inlines; push and
	// replaceRoot are off the hot path): on a full heap the common case —
	// an entry below the current minimum — costs one compare, no call.
	for i, v := range scores {
		if int32(i) == exclude {
			continue
		}
		e := Entry{Idx: int32(i), Val: v}
		if len(h) < k {
			h.push(e)
		} else if h.beats(e) {
			h.replaceRoot(e)
		}
	}
	return h.sorted()
}

// TopKSparse selects the k largest entries of a sparse vector, same ordering
// contract as TopK.
func TopKSparse(v *Vector, k int, exclude int32) []Entry {
	if k <= 0 {
		return nil
	}
	h := make(topkHeap, 0, min(k, v.Len()))
	for i, idx := range v.Idx {
		if idx == exclude {
			continue
		}
		e := Entry{Idx: idx, Val: v.Val[i]}
		if len(h) < k {
			h.push(e)
		} else if h.beats(e) {
			h.replaceRoot(e)
		}
	}
	return h.sorted()
}
