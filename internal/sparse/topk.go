package sparse

import (
	"container/heap"
	"sort"
)

// Entry pairs a node index with a score; TopK returns slices of these.
// The JSON tags give top-k results a stable wire shape for the serving
// protocol.
type Entry struct {
	Idx int32   `json:"node"`
	Val float64 `json:"score"`
}

// entryMinHeap is a min-heap on Val with deterministic tie-breaking on Idx
// (larger index treated as smaller, so it is evicted first). This makes
// TopK results stable across runs.
type entryMinHeap []Entry

func (h entryMinHeap) Len() int { return len(h) }
func (h entryMinHeap) Less(i, j int) bool {
	if h[i].Val != h[j].Val {
		return h[i].Val < h[j].Val
	}
	return h[i].Idx > h[j].Idx
}
func (h entryMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *entryMinHeap) Push(x interface{}) { *h = append(*h, x.(Entry)) }
func (h *entryMinHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// beats reports whether e should displace the current heap minimum root.
func (h entryMinHeap) beats(e Entry) bool {
	return e.Val > h[0].Val || (e.Val == h[0].Val && e.Idx < h[0].Idx)
}

// TopK returns the k largest entries of the dense score vector, sorted by
// descending value with ascending index as the tie-break. If exclude >= 0,
// that index is skipped (SimRank queries exclude the source node, whose
// similarity is definitionally 1).
func TopK(scores []float64, k int, exclude int32) []Entry {
	if k <= 0 {
		return nil
	}
	h := make(entryMinHeap, 0, k)
	for i, v := range scores {
		if int32(i) == exclude {
			continue
		}
		e := Entry{Idx: int32(i), Val: v}
		if len(h) < k {
			heap.Push(&h, e)
		} else if h.beats(e) {
			h[0] = e
			heap.Fix(&h, 0)
		}
	}
	out := make([]Entry, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Val != out[j].Val {
			return out[i].Val > out[j].Val
		}
		return out[i].Idx < out[j].Idx
	})
	return out
}

// TopKSparse selects the k largest entries of a sparse vector, same ordering
// contract as TopK.
func TopKSparse(v *Vector, k int, exclude int32) []Entry {
	if k <= 0 {
		return nil
	}
	h := make(entryMinHeap, 0, k)
	for i, idx := range v.Idx {
		if idx == exclude {
			continue
		}
		e := Entry{Idx: idx, Val: v.Val[i]}
		if len(h) < k {
			heap.Push(&h, e)
		} else if h.beats(e) {
			h[0] = e
			heap.Fix(&h, 0)
		}
	}
	out := make([]Entry, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Val != out[j].Val {
			return out[i].Val > out[j].Val
		}
		return out[i].Idx < out[j].Idx
	})
	return out
}
