// Package sparse implements the sparse/dense vector kit shared by the
// linear-algebra phases of every SimRank method in this repository.
//
// The central object is Vector, a sorted (index, value) list. ExactSim's
// sparse-linearization optimization (paper §3.2, Lemma 2) is implemented
// here as Truncate: dropping entries below (1−√c)²ε bounds the number of
// surviving entries across all levels by 1/((1−√c)²ε) — the Pigeonhole
// argument — which frees the forward phase from its O(n·log(1/ε)) memory.
package sparse

import (
	"slices"
	"sort"
)

// Vector is a sparse vector: parallel slices of strictly increasing indices
// and their values. The zero value is an empty vector.
type Vector struct {
	Idx []int32
	Val []float64
}

// Len returns the number of stored entries.
func (v *Vector) Len() int { return len(v.Idx) }

// Bytes returns the memory footprint of the stored entries, used for the
// paper's Table 3 memory accounting.
func (v *Vector) Bytes() int64 { return int64(len(v.Idx))*4 + int64(len(v.Val))*8 }

// Sum returns the sum of all stored values.
func (v *Vector) Sum() float64 {
	s := 0.0
	for _, x := range v.Val {
		s += x
	}
	return s
}

// Norm2Squared returns Σ v(k)², the quantity ‖π‖² that drives the paper's
// π²-sampling optimization (Lemma 3).
func (v *Vector) Norm2Squared() float64 {
	s := 0.0
	for _, x := range v.Val {
		s += x * x
	}
	return s
}

// Get returns the value at index i (0 if absent) by binary search.
func (v *Vector) Get(i int32) float64 {
	pos := sort.Search(len(v.Idx), func(p int) bool { return v.Idx[p] >= i })
	if pos < len(v.Idx) && v.Idx[pos] == i {
		return v.Val[pos]
	}
	return 0
}

// Clone returns a deep copy.
func (v *Vector) Clone() Vector {
	return Vector{Idx: append([]int32(nil), v.Idx...), Val: append([]float64(nil), v.Val...)}
}

// Scale multiplies every value by s in place.
func (v *Vector) Scale(s float64) {
	for i := range v.Val {
		v.Val[i] *= s
	}
}

// Truncate removes entries with value ≤ threshold in place (values in this
// repository are non-negative probabilities, so no absolute value is taken).
// This is the sparse-linearization primitive of paper Lemma 2.
func (v *Vector) Truncate(threshold float64) {
	if threshold <= 0 {
		return
	}
	out := 0
	for i, x := range v.Val {
		if x > threshold {
			v.Idx[out] = v.Idx[i]
			v.Val[out] = x
			out++
		}
	}
	v.Idx = v.Idx[:out]
	v.Val = v.Val[:out]
}

// AddInto scatters v (times scale) into the dense slice dst.
func (v *Vector) AddInto(dst []float64, scale float64) {
	for i, idx := range v.Idx {
		dst[idx] += scale * v.Val[i]
	}
}

// FromDense extracts entries of dense strictly greater than threshold into a
// new Vector. Pass threshold = 0 to keep all positive entries; negative
// thresholds keep everything nonzero.
func FromDense(dense []float64, threshold float64) Vector {
	var v Vector
	for i, x := range dense {
		if x > threshold || (threshold < 0 && x != 0) {
			v.Idx = append(v.Idx, int32(i))
			v.Val = append(v.Val, x)
		}
	}
	return v
}

// ToDense materializes v as a dense slice of length n.
func (v *Vector) ToDense(n int) []float64 {
	dense := make([]float64, n)
	for i, idx := range v.Idx {
		dense[idx] = v.Val[i]
	}
	return dense
}

// Dot returns the dot product of two sparse vectors (merge join).
func Dot(a, b *Vector) float64 {
	i, j := 0, 0
	s := 0.0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] < b.Idx[j]:
			i++
		case a.Idx[i] > b.Idx[j]:
			j++
		default:
			s += a.Val[i] * b.Val[j]
			i++
			j++
		}
	}
	return s
}

// Accumulator builds sparse vectors by random-index accumulation without
// paying O(n) per build. It keeps a dense scratch array plus the list of
// touched indices; Reset is O(touched), not O(n).
type Accumulator struct {
	dense   []float64
	touched []int32
	mark    []bool
}

// NewAccumulator returns an accumulator over index space [0, n).
func NewAccumulator(n int) *Accumulator {
	return &Accumulator{dense: make([]float64, n), mark: make([]bool, n)}
}

// Add accumulates v at index i.
func (a *Accumulator) Add(i int32, v float64) {
	if !a.mark[i] {
		a.mark[i] = true
		a.touched = append(a.touched, i)
	}
	a.dense[i] += v
}

// Get returns the current value at index i.
func (a *Accumulator) Get(i int32) float64 { return a.dense[i] }

// Touched returns the number of distinct indices accumulated.
func (a *Accumulator) Touched() int { return len(a.touched) }

// Build extracts entries strictly greater than threshold as a sorted sparse
// Vector and resets the accumulator. The index sort is slices.Sort — the
// reflection-based sort.Slice swapper showed up as ~18% of the diagonal
// phase's profile before the switch.
func (a *Accumulator) Build(threshold float64) Vector {
	slices.Sort(a.touched)
	var v Vector
	v.Idx = make([]int32, 0, len(a.touched))
	v.Val = make([]float64, 0, len(a.touched))
	for _, idx := range a.touched {
		if x := a.dense[idx]; x > threshold {
			v.Idx = append(v.Idx, idx)
			v.Val = append(v.Val, x)
		}
		a.dense[idx] = 0
		a.mark[idx] = false
	}
	a.touched = a.touched[:0]
	return v
}

// Reset clears the accumulator without building a vector.
func (a *Accumulator) Reset() {
	for _, idx := range a.touched {
		a.dense[idx] = 0
		a.mark[idx] = false
	}
	a.touched = a.touched[:0]
}

// BuildIntoUnsorted extracts entries strictly greater than threshold into
// dst — reusing dst's backing arrays — in first-touch order, skipping the
// index sort, and resets the accumulator. For consumers that only iterate
// (and never binary-search or merge-join) a vector, the first-touch order
// is just as deterministic as sorted order and costs nothing; diag.explore
// builds hundreds of throwaway level vectors per node this way.
func (a *Accumulator) BuildIntoUnsorted(dst *Vector, threshold float64) {
	dst.Idx = dst.Idx[:0]
	dst.Val = dst.Val[:0]
	for _, idx := range a.touched {
		if x := a.dense[idx]; x > threshold {
			dst.Idx = append(dst.Idx, idx)
			dst.Val = append(dst.Val, x)
		}
		a.dense[idx] = 0
		a.mark[idx] = false
	}
	a.touched = a.touched[:0]
}

// DrainInto folds a's accumulated entries into dst (in a's touched order,
// i.e. first-touch order) and resets a. It is the merge step of the
// parallel sparse kernels: per-shard accumulators drain into the main one
// in fixed shard order, so the floating-point addition order — and hence
// the result, bit for bit — is independent of worker count and scheduling.
func (a *Accumulator) DrainInto(dst *Accumulator) {
	for _, idx := range a.touched {
		dst.Add(idx, a.dense[idx])
		a.dense[idx] = 0
		a.mark[idx] = false
	}
	a.touched = a.touched[:0]
}
