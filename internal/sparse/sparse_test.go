package sparse

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"github.com/exactsim/exactsim/internal/rng"
)

func vec(pairs ...float64) Vector {
	var v Vector
	for i := 0; i+1 < len(pairs); i += 2 {
		v.Idx = append(v.Idx, int32(pairs[i]))
		v.Val = append(v.Val, pairs[i+1])
	}
	return v
}

func TestVectorBasics(t *testing.T) {
	v := vec(0, 0.5, 3, 0.25, 7, 0.25)
	if v.Len() != 3 {
		t.Fatalf("Len=%d", v.Len())
	}
	if got := v.Sum(); math.Abs(got-1.0) > 1e-15 {
		t.Fatalf("Sum=%g", got)
	}
	if got := v.Norm2Squared(); math.Abs(got-(0.25+0.0625+0.0625)) > 1e-15 {
		t.Fatalf("Norm2Squared=%g", got)
	}
	if v.Get(3) != 0.25 || v.Get(4) != 0 || v.Get(7) != 0.25 {
		t.Fatal("Get broken")
	}
}

func TestCloneIndependent(t *testing.T) {
	v := vec(1, 2.0)
	c := v.Clone()
	c.Val[0] = 99
	if v.Val[0] != 2.0 {
		t.Fatal("Clone aliases original")
	}
}

func TestScale(t *testing.T) {
	v := vec(0, 1.0, 5, 3.0)
	v.Scale(0.5)
	if v.Val[0] != 0.5 || v.Val[1] != 1.5 {
		t.Fatalf("Scale result %v", v.Val)
	}
}

func TestTruncate(t *testing.T) {
	v := vec(0, 0.5, 1, 0.01, 2, 0.3, 3, 0.005)
	v.Truncate(0.01) // strictly-greater survives
	if v.Len() != 2 {
		t.Fatalf("after truncate: %v", v)
	}
	if v.Get(0) != 0.5 || v.Get(2) != 0.3 {
		t.Fatal("wrong survivors")
	}
	// zero threshold is a no-op
	w := vec(0, 0.1)
	w.Truncate(0)
	if w.Len() != 1 {
		t.Fatal("Truncate(0) should keep entries")
	}
}

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	dense := []float64{0, 0.5, 0, 0.25, 0, 0, 0.25}
	v := FromDense(dense, 0)
	if v.Len() != 3 {
		t.Fatalf("FromDense kept %d", v.Len())
	}
	back := v.ToDense(len(dense))
	if !reflect.DeepEqual(dense, back) {
		t.Fatalf("round trip: %v vs %v", dense, back)
	}
}

func TestAddInto(t *testing.T) {
	v := vec(1, 0.5, 3, 1.0)
	dst := make([]float64, 5)
	v.AddInto(dst, 2.0)
	want := []float64{0, 1.0, 0, 2.0, 0}
	if !reflect.DeepEqual(dst, want) {
		t.Fatalf("AddInto: %v", dst)
	}
}

func TestDot(t *testing.T) {
	a := vec(0, 1.0, 2, 2.0, 5, 3.0)
	b := vec(1, 1.0, 2, 4.0, 5, 0.5)
	if got := Dot(&a, &b); math.Abs(got-(2*4+3*0.5)) > 1e-15 {
		t.Fatalf("Dot=%g", got)
	}
	empty := Vector{}
	if Dot(&a, &empty) != 0 {
		t.Fatal("Dot with empty should be 0")
	}
}

func TestAccumulator(t *testing.T) {
	a := NewAccumulator(10)
	a.Add(5, 1.0)
	a.Add(2, 0.5)
	a.Add(5, 1.0)
	if a.Touched() != 2 {
		t.Fatalf("Touched=%d", a.Touched())
	}
	if a.Get(5) != 2.0 {
		t.Fatalf("Get(5)=%g", a.Get(5))
	}
	v := a.Build(0)
	if !reflect.DeepEqual(v.Idx, []int32{2, 5}) {
		t.Fatalf("Build idx %v", v.Idx)
	}
	if v.Val[0] != 0.5 || v.Val[1] != 2.0 {
		t.Fatalf("Build val %v", v.Val)
	}
	// accumulator must be clean after Build
	if a.Touched() != 0 || a.Get(5) != 0 {
		t.Fatal("Build did not reset")
	}
	a.Add(1, 0.001)
	a.Add(2, 0.5)
	v2 := a.Build(0.01)
	if v2.Len() != 1 || v2.Idx[0] != 2 {
		t.Fatalf("threshold build: %v", v2)
	}
}

func TestAccumulatorReset(t *testing.T) {
	a := NewAccumulator(4)
	a.Add(3, 1)
	a.Reset()
	if a.Touched() != 0 || a.Get(3) != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestPropertyTruncateBoundsMassLoss(t *testing.T) {
	// Property (paper Lemma 2 machinery): after Truncate(th), every removed
	// entry was ≤ th, and survivors are untouched.
	r := rng.New(5)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		n := 1 + rr.Intn(50)
		dense := make([]float64, n)
		for i := range dense {
			dense[i] = rr.Float64()
		}
		v := FromDense(dense, 0)
		before := v.Clone()
		th := rr.Float64() * 0.5
		v.Truncate(th)
		// every surviving entry > th and matches original
		for i, idx := range v.Idx {
			if v.Val[i] <= th || before.Get(idx) != v.Val[i] {
				return false
			}
		}
		// every removed entry was ≤ th
		for i, idx := range before.Idx {
			if v.Get(idx) == 0 && before.Val[i] > th {
				return false
			}
		}
		return true
	}
	_ = r
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAccumulatorMatchesDense(t *testing.T) {
	check := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := 1 + r.Intn(40)
		a := NewAccumulator(n)
		dense := make([]float64, n)
		ops := r.Intn(200)
		for i := 0; i < ops; i++ {
			idx := int32(r.Intn(n))
			val := r.Float64()
			a.Add(idx, val)
			dense[idx] += val
		}
		v := a.Build(0)
		for i := 0; i < n; i++ {
			if math.Abs(v.Get(int32(i))-dense[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.3, 0.9, 0.05, 0.7}
	got := TopK(scores, 3, -1)
	want := []Entry{{1, 0.9}, {3, 0.9}, {5, 0.7}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK = %v", got)
	}
}

func TestTopKExclude(t *testing.T) {
	scores := []float64{1.0, 0.9, 0.3}
	got := TopK(scores, 2, 0)
	want := []Entry{{1, 0.9}, {2, 0.3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK exclude = %v", got)
	}
}

func TestTopKSmallInput(t *testing.T) {
	if got := TopK([]float64{0.5}, 5, -1); len(got) != 1 {
		t.Fatalf("k larger than input: %v", got)
	}
	if got := TopK(nil, 3, -1); len(got) != 0 {
		t.Fatalf("empty input: %v", got)
	}
	if got := TopK([]float64{1, 2}, 0, -1); got != nil {
		t.Fatalf("k=0: %v", got)
	}
}

func TestTopKSparseAgreesWithDense(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(100)
		dense := make([]float64, n)
		for i := range dense {
			if r.Float64() < 0.5 {
				dense[i] = r.Float64()
			}
		}
		v := FromDense(dense, 0)
		k := 1 + r.Intn(10)
		a := TopK(dense, k, -1)
		b := TopKSparse(&v, k, -1)
		// dense zeros can pad TopK when sparse has fewer than k entries;
		// compare only the strictly-positive prefix
		for i := range b {
			if a[i] != b[i] {
				t.Fatalf("trial %d: dense %v vs sparse %v", trial, a, b)
			}
		}
	}
}

func TestPropertyTopKIsSorted(t *testing.T) {
	check := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := 1 + r.Intn(80)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = r.Float64()
		}
		k := 1 + r.Intn(20)
		got := TopK(scores, k, -1)
		if len(got) != min(k, n) {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].Val != got[j].Val {
				return got[i].Val > got[j].Val
			}
			return got[i].Idx < got[j].Idx
		}) {
			return false
		}
		// k-th value must dominate all excluded values
		minVal := got[len(got)-1].Val
		inTop := make(map[int32]bool, len(got))
		for _, e := range got {
			inTop[e.Idx] = true
		}
		for i, v := range scores {
			if !inTop[int32(i)] && v > minVal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccumulatorBuild(b *testing.B) {
	r := rng.New(1)
	a := NewAccumulator(100000)
	idxs := make([]int32, 10000)
	for i := range idxs {
		idxs[i] = int32(r.Intn(100000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, idx := range idxs {
			a.Add(idx, 0.1)
		}
		a.Build(0)
	}
}

func BenchmarkTopK500(b *testing.B) {
	r := rng.New(2)
	scores := make([]float64, 200000)
	for i := range scores {
		scores[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(scores, 500, -1)
	}
}
