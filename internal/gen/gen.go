// Package gen generates the synthetic graphs used throughout this
// repository. The paper evaluates on SNAP/LAW datasets which we cannot
// download in this offline environment, so internal/dataset substitutes
// generated graphs whose degree structure matches each original (see
// DESIGN.md §4). This package provides those generative models plus small
// deterministic fixtures used by unit tests.
//
// Every generator is deterministic given its seed.
package gen

import (
	"math"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/rng"
)

// BarabasiAlbert generates an undirected preferential-attachment graph with
// n nodes, each new node attaching k edges to existing nodes with
// probability proportional to degree. This matches the heavy-tailed degree
// distribution of the paper's co-authorship graphs (ca-GrQc, CA-HepTh,
// CA-HepPh, DBLP-Author). Each undirected edge appears as two directed
// edges in the result, m ≈ 2·k·n.
func BarabasiAlbert(n, k int, seed uint64) *graph.Graph {
	if n <= 0 {
		return graph.NewBuilder(0).Build()
	}
	if k < 1 {
		k = 1
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n).Reserve(2 * k * n)
	// targets holds one entry per edge endpoint, so sampling uniformly from
	// it is sampling proportional to degree.
	targets := make([]int32, 0, 2*k*n)
	core := k + 1
	if core > n {
		core = n
	}
	// Seed clique over the first `core` nodes.
	for u := 0; u < core; u++ {
		for v := u + 1; v < core; v++ {
			b.AddUndirected(int32(u), int32(v))
			targets = append(targets, int32(u), int32(v))
		}
	}
	chosen := make([]int32, 0, k)
	for u := core; u < n; u++ {
		chosen = chosen[:0]
		for len(chosen) < k {
			var v int32
			if len(targets) == 0 || r.Float64() < 0.05 {
				// small uniform component keeps the graph connected-ish and
				// avoids pathological star collapse
				v = int32(r.Intn(u))
			} else {
				v = targets[r.Intn(len(targets))]
			}
			if int(v) == u || contains(chosen, v) {
				continue
			}
			chosen = append(chosen, v)
		}
		for _, v := range chosen {
			b.AddUndirected(int32(u), v)
			targets = append(targets, int32(u), v)
		}
	}
	return b.Build()
}

// contains reports whether v occurs in xs; k is tiny so linear scan wins.
func contains(xs []int32, v int32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// DirectedScaleFree generates a directed graph with power-law in- and
// out-degrees following the Bollobás–Borgs–Chayes–Riordan model, used as the
// stand-in for Wikivote and Twitter. Parameters alpha/beta/gamma are the
// probabilities of the three growth events (alpha+beta+gamma = 1 after
// normalization):
//
//	alpha: new node with an edge to an existing node (in-degree pref.)
//	beta:  edge between existing nodes (out-pref → in-pref)
//	gamma: new node with an edge from an existing node (out-degree pref.)
//
// deltaIn/deltaOut smooth the preferential attachment. Generation stops when
// m edges have been attempted.
func DirectedScaleFree(n, m int, alpha, beta, gamma, deltaIn, deltaOut float64, seed uint64) *graph.Graph {
	if n <= 0 {
		return graph.NewBuilder(0).Build()
	}
	total := alpha + beta + gamma
	if total <= 0 {
		alpha, beta, gamma, total = 0.3, 0.4, 0.3, 1.0
	}
	alpha, beta = alpha/total, beta/total
	r := rng.New(seed)
	b := graph.NewBuilder(n).Reserve(m)

	inEnds := make([]int32, 0, m)  // one entry per edge head: degree-proportional sampling
	outEnds := make([]int32, 0, m) // one entry per edge tail
	nodes := 1                     // node 0 exists initially
	addEdge := func(u, v int32) {
		b.AddEdge(u, v)
		outEnds = append(outEnds, u)
		inEnds = append(inEnds, v)
	}
	pickIn := func() int32 {
		// with prob ∝ deltaIn pick uniform, else degree-proportional
		if len(inEnds) == 0 || r.Float64()*(float64(len(inEnds))+deltaIn*float64(nodes)) < deltaIn*float64(nodes) {
			return int32(r.Intn(nodes))
		}
		return inEnds[r.Intn(len(inEnds))]
	}
	pickOut := func() int32 {
		if len(outEnds) == 0 || r.Float64()*(float64(len(outEnds))+deltaOut*float64(nodes)) < deltaOut*float64(nodes) {
			return int32(r.Intn(nodes))
		}
		return outEnds[r.Intn(len(outEnds))]
	}
	for edges := 0; edges < m; edges++ {
		x := r.Float64()
		switch {
		case x < alpha && nodes < n:
			u := int32(nodes)
			nodes++
			addEdge(u, pickIn())
		case x < alpha+beta || nodes >= n:
			addEdge(pickOut(), pickIn())
		default:
			v := int32(nodes)
			nodes++
			addEdge(pickOut(), v)
		}
	}
	return b.Build()
}

// RMAT generates a directed Kronecker-style graph (Chakrabarti et al.) with
// 2^scale nodes and approximately m edges, the standard proxy for web crawls
// (IndoChina, It-2004): extreme skew plus community locality. Probabilities
// (a,b,c,d) must sum to ~1; the classic web-graph setting is
// (0.57, 0.19, 0.19, 0.05).
func RMAT(scale int, m int, a, b, c, d float64, seed uint64) *graph.Graph {
	n := 1 << scale
	r := rng.New(seed)
	bld := graph.NewBuilder(n).Reserve(m)
	total := a + b + c + d
	a, b, c = a/total, b/total, c/total
	for i := 0; i < m; i++ {
		var u, v int
		bit := n >> 1
		for bit > 0 {
			x := r.Float64()
			switch {
			case x < a:
				// upper-left: no bits set
			case x < a+b:
				v |= bit
			case x < a+b+c:
				u |= bit
			default:
				u |= bit
				v |= bit
			}
			bit >>= 1
		}
		bld.AddEdge(int32(u), int32(v))
	}
	return bld.Build()
}

// ErdosRenyi generates a directed G(n, m) graph with m edges sampled
// uniformly with replacement (duplicates merged by the builder).
func ErdosRenyi(n, m int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n).Reserve(m)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

// Deterministic fixtures for tests and examples.

// Cycle returns the directed n-cycle 0→1→…→n-1→0.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n).Reserve(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

// Path returns the directed path 0→1→…→n-1.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n).Reserve(n - 1)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// Star returns an undirected star: center 0 connected to 1..n-1 (both
// directions). All leaves are structurally identical, giving known SimRank
// values for tests.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n).Reserve(2 * (n - 1))
	for i := 1; i < n; i++ {
		b.AddUndirected(0, int32(i))
	}
	return b.Build()
}

// Clique returns the complete directed graph on n nodes (no self-loops).
func Clique(n int) *graph.Graph {
	b := graph.NewBuilder(n).Reserve(n * (n - 1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	return b.Build()
}

// Grid returns an undirected rows×cols grid graph.
func Grid(rows, cols int) *graph.Graph {
	n := rows * cols
	b := graph.NewBuilder(n).Reserve(4 * n)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddUndirected(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddUndirected(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// TwoCommunities returns an undirected graph of two dense communities of
// size half each with sparse cross edges: a fixture where SimRank top-k
// results have clear structure.
func TwoCommunities(half int, pIn, pOut float64, seed uint64) *graph.Graph {
	n := 2 * half
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameSide := (i < half) == (j < half)
			p := pOut
			if sameSide {
				p = pIn
			}
			if r.Float64() < p {
				b.AddUndirected(int32(i), int32(j))
			}
		}
	}
	return b.Build()
}

// PowerLawExponentEstimate fits a discrete power-law exponent to the in-
// degree distribution by the Hill/MLE estimator over degrees ≥ dmin. It is
// used by tests to confirm that the scale-free generators produce the
// heavy-tailed inputs the paper's π²-sampling analysis assumes.
func PowerLawExponentEstimate(g *graph.Graph, dmin int) float64 {
	if dmin < 1 {
		dmin = 1
	}
	var sum float64
	var count int
	for v := int32(0); v < int32(g.N()); v++ {
		d := g.InDegree(v)
		if d >= dmin {
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
			count++
		}
	}
	if count == 0 || sum == 0 {
		return 0
	}
	return 1 + float64(count)/sum
}
