package gen

import (
	"reflect"
	"testing"

	"github.com/exactsim/exactsim/internal/graph"
)

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(2000, 3, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 {
		t.Fatalf("n=%d", g.N())
	}
	// m ≈ 2·k·n (each of the n−core new nodes adds k undirected edges).
	if g.M() < 2*2*2000 || g.M() > 2*4*2000 {
		t.Fatalf("unexpected m=%d", g.M())
	}
	// undirected: in-degree equals out-degree for every node
	for v := int32(0); v < int32(g.N()); v++ {
		if g.InDegree(v) != g.OutDegree(v) {
			t.Fatalf("node %d: in=%d out=%d (should be symmetric)", v, g.InDegree(v), g.OutDegree(v))
		}
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(500, 2, 42)
	b := BarabasiAlbert(500, 2, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different graphs")
	}
	c := BarabasiAlbert(500, 2, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestBarabasiAlbertHeavyTail(t *testing.T) {
	g := BarabasiAlbert(5000, 4, 7)
	stats := graph.ComputeStats(g)
	// preferential attachment must create hubs far above the mean degree
	if float64(stats.MaxInDegree) < 5*stats.AvgDegree {
		t.Fatalf("no hubs: max in-degree %d vs avg %f", stats.MaxInDegree, stats.AvgDegree)
	}
	gamma := PowerLawExponentEstimate(g, 8)
	if gamma < 1.5 || gamma > 4.5 {
		t.Fatalf("power-law exponent estimate %f outside plausible range", gamma)
	}
}

func TestBarabasiAlbertTiny(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5} {
		g := BarabasiAlbert(n, 2, 1)
		if g.N() != n {
			t.Fatalf("n=%d got %d", n, g.N())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestDirectedScaleFree(t *testing.T) {
	g := DirectedScaleFree(3000, 20000, 0.2, 0.5, 0.3, 1.0, 1.0, 9)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 3000 {
		t.Fatalf("n=%d", g.N())
	}
	if g.M() < 10000 { // dedup can shrink, but not catastrophically
		t.Fatalf("m=%d too small", g.M())
	}
	stats := graph.ComputeStats(g)
	if float64(stats.MaxInDegree) < 3*stats.AvgDegree {
		t.Fatalf("directed scale-free produced no in-hubs: %+v", stats)
	}
}

func TestDirectedScaleFreeDeterministic(t *testing.T) {
	a := DirectedScaleFree(500, 2000, 0.3, 0.4, 0.3, 1, 1, 5)
	b := DirectedScaleFree(500, 2000, 0.3, 0.4, 0.3, 1, 1, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("not deterministic")
	}
}

func TestDirectedScaleFreeBadParams(t *testing.T) {
	// degenerate probabilities must not hang or panic
	g := DirectedScaleFree(100, 500, 0, 0, 0, 0, 0, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(12, 40000, 0.57, 0.19, 0.19, 0.05, 11)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 4096 {
		t.Fatalf("n=%d", g.N())
	}
	stats := graph.ComputeStats(g)
	if float64(stats.MaxInDegree) < 4*stats.AvgDegree {
		t.Fatalf("R-MAT not skewed: %+v", stats)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(8, 2000, 0.57, 0.19, 0.19, 0.05, 2)
	b := RMAT(8, 2000, 0.57, 0.19, 0.19, 0.05, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("not deterministic")
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(1000, 5000, 13)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 1000 {
		t.Fatalf("n=%d", g.N())
	}
	if g.M() < 4500 || g.M() > 5000 { // some dedup expected, not much
		t.Fatalf("m=%d", g.M())
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(5)
	if g.M() != 5 {
		t.Fatalf("m=%d", g.M())
	}
	for i := 0; i < 5; i++ {
		if !g.HasEdge(int32(i), int32((i+1)%5)) {
			t.Fatalf("missing edge %d→%d", i, (i+1)%5)
		}
		if g.InDegree(int32(i)) != 1 || g.OutDegree(int32(i)) != 1 {
			t.Fatalf("cycle degrees wrong at %d", i)
		}
	}
}

func TestPath(t *testing.T) {
	g := Path(4)
	if g.M() != 3 {
		t.Fatalf("m=%d", g.M())
	}
	if g.InDegree(0) != 0 || g.OutDegree(3) != 0 {
		t.Fatal("path endpoints wrong")
	}
}

func TestStar(t *testing.T) {
	g := Star(6)
	if g.M() != 10 {
		t.Fatalf("m=%d", g.M())
	}
	if g.InDegree(0) != 5 || g.OutDegree(0) != 5 {
		t.Fatal("center degrees wrong")
	}
	for i := 1; i < 6; i++ {
		if g.InDegree(int32(i)) != 1 {
			t.Fatalf("leaf %d in-degree %d", i, g.InDegree(int32(i)))
		}
	}
}

func TestClique(t *testing.T) {
	g := Clique(5)
	if g.M() != 20 {
		t.Fatalf("m=%d", g.M())
	}
	for i := int32(0); i < 5; i++ {
		if g.InDegree(i) != 4 || g.OutDegree(i) != 4 {
			t.Fatal("clique degrees wrong")
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("n=%d", g.N())
	}
	// undirected edges: horizontal 3*3=9, vertical 2*4=8 → 17 pairs → 34 arcs
	if g.M() != 34 {
		t.Fatalf("m=%d", g.M())
	}
	// corner has degree 2
	if g.InDegree(0) != 2 {
		t.Fatalf("corner degree %d", g.InDegree(0))
	}
}

func TestTwoCommunities(t *testing.T) {
	g := TwoCommunities(50, 0.3, 0.01, 21)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("n=%d", g.N())
	}
	// count cross vs intra arcs
	var intra, cross int
	for u := int32(0); u < 100; u++ {
		for _, v := range g.OutNeighbors(u) {
			if (u < 50) == (v < 50) {
				intra++
			} else {
				cross++
			}
		}
	}
	if intra < 10*cross {
		t.Fatalf("communities not separated: intra=%d cross=%d", intra, cross)
	}
}

func TestPowerLawEstimateOnUniform(t *testing.T) {
	// An ER graph has Poisson-ish degrees: estimator should return a large
	// exponent (fast tail), clearly different from scale-free ~2-3.
	er := ErdosRenyi(5000, 50000, 3)
	ba := BarabasiAlbert(5000, 5, 3)
	gEr := PowerLawExponentEstimate(er, 10)
	gBa := PowerLawExponentEstimate(ba, 10)
	if gBa >= gEr {
		t.Fatalf("scale-free exponent %f should be below ER %f", gBa, gEr)
	}
}

func BenchmarkBarabasiAlbert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BarabasiAlbert(10000, 4, uint64(i))
	}
}

func BenchmarkRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RMAT(14, 100000, 0.57, 0.19, 0.19, 0.05, uint64(i))
	}
}
