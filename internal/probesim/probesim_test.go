package probesim

import (
	"math"
	"testing"

	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/powermethod"
	"github.com/exactsim/exactsim/internal/rng"
	"github.com/exactsim/exactsim/internal/sparse"
)

const c = 0.6

func randomGraph(seed uint64, n, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func TestParamValidation(t *testing.T) {
	g := gen.Cycle(4)
	for _, bad := range []Params{{C: 0, Eps: 0.1}, {C: 1, Eps: 0.1}, {C: 0.6, Eps: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("params %+v accepted", bad)
				}
			}()
			New(g, bad)
		}()
	}
	e := New(g, Params{C: c, Eps: 0.1})
	if e.Samples() < 1 {
		t.Fatal("no samples configured")
	}
}

func TestMatchesPowerMethodOnSmallGraphs(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g := randomGraph(seed*7, 30, 120)
		truth := powermethod.Compute(g, powermethod.Options{C: c, L: 50})
		e := New(g, Params{C: c, Eps: 0.02, Seed: seed})
		for _, src := range []int32{0, 15} {
			got := e.SingleSource(src)
			worst := 0.0
			for j := range got {
				if d := math.Abs(got[j] - truth.At(int(src), j)); d > worst {
					worst = d
				}
			}
			// sampling noise ~ eps·couple + pruning bias
			if worst > 0.06 {
				t.Fatalf("seed %d src %d: MaxError %g", seed, src, worst)
			}
		}
	}
}

func TestProbeExactOnStar(t *testing.T) {
	// From a leaf of a star, a sampled walk alternates leaf→center→leaf…
	// Conditioned on any surviving walk, Pr[walk from another leaf meets
	// it] is dominated by the step-1 center meeting: both must survive
	// one step → ŝ averages to S(leaf,leaf') = c.
	g := gen.Star(8)
	truth := powermethod.Compute(g, powermethod.Options{C: c, L: 50})
	e := New(g, Params{C: c, Eps: 0.01, Seed: 3})
	got := e.SingleSource(1)
	for j := 2; j < 8; j++ {
		if math.Abs(got[j]-truth.At(1, j)) > 0.01 {
			t.Fatalf("leaf %d: %g vs %g", j, got[j], truth.At(1, j))
		}
	}
	if math.Abs(got[0]-truth.At(1, 0)) > 0.01 {
		t.Fatalf("center: %g vs %g", got[0], truth.At(1, 0))
	}
}

func TestSelfScoreOne(t *testing.T) {
	g := gen.Clique(6)
	e := New(g, Params{C: c, Eps: 0.05, Seed: 5})
	if s := e.SingleSource(2); s[2] != 1 {
		t.Fatalf("self score %g", s[2])
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := gen.BarabasiAlbert(60, 3, 9)
	a := New(g, Params{C: c, Eps: 0.05, Seed: 11}).SingleSource(4)
	b := New(g, Params{C: c, Eps: 0.05, Seed: 11}).SingleSource(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
}

func TestScoresInRange(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 13)
	s := New(g, Params{C: c, Eps: 0.05, Seed: 17}).SingleSource(0)
	for j, v := range s {
		if v < 0 || v > 1+1e-12 {
			t.Fatalf("score %d = %g", j, v)
		}
	}
}

func TestDeadEndSource(t *testing.T) {
	// Source with no in-neighbors: its walk never moves, so nothing can
	// meet it at step ≥ 1 — all similarities are zero.
	b := graph.NewBuilder(4)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	s := New(g, Params{C: c, Eps: 0.05, Seed: 19}).SingleSource(0)
	for j := 1; j < 4; j++ {
		if s[j] != 0 {
			t.Fatalf("dead-end source similarity to %d = %g", j, s[j])
		}
	}
}

func TestSetEntry(t *testing.T) {
	v := sparse.Vector{}
	v = setEntry(v, 5, 1)
	v = setEntry(v, 2, 1)
	v = setEntry(v, 9, 1)
	v = setEntry(v, 5, 0.5) // overwrite
	wantIdx := []int32{2, 5, 9}
	for i, idx := range v.Idx {
		if idx != wantIdx[i] {
			t.Fatalf("order broken: %v", v.Idx)
		}
	}
	if v.Get(5) != 0.5 {
		t.Fatalf("overwrite failed: %g", v.Get(5))
	}
}

func TestSamplesScaleWithEps(t *testing.T) {
	g := gen.Cycle(100)
	a := New(g, Params{C: c, Eps: 0.1}).Samples()
	b := New(g, Params{C: c, Eps: 0.01}).Samples()
	if b < 90*a {
		t.Fatalf("samples should grow ~100×: %d vs %d", a, b)
	}
}

func BenchmarkQueryEps5e2(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 5, 1)
	e := New(g, Params{C: c, Eps: 0.05, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SingleSource(int32(i % g.N()))
	}
}
