// Package probesim implements ProbeSim (Liu et al., PVLDB 2017), the
// index-free single-source baseline the paper discusses in §2.1 (it is
// also the origin of the pooling protocol). The paper's figures do not
// include it — its O(n·log n/ε²) query complexity parallels MC — so this
// package is an extension beyond the evaluated five methods, useful as an
// independent cross-check.
//
// Estimator. For each of R samples, simulate one √c-walk W from the
// source. Conditioned on W, the probability that an independent √c-walk
// from j meets W is computed for every j by one backward probe pass over
// W using
//
//	C_t(x) = 1                                   if x = W[t]
//	C_t(x) = (√c/d_in(x))·Σ_{y∈I(x)} C_{t+1}(y)  otherwise
//
// (being at W[t] at step t is a meeting with certainty; C beyond the
// walk's stopping point is 0). Then ŝ_W(j) = (√c·Pᵀ·C_1)(j) is
// Pr[walk from j first co-locates with W at some step ≥ 1], and averaging
// ŝ_W over samples estimates S(source, j) = E_W Pr[meet W] (paper eq. 2)
// without bias. Probe supports stay sparse; entries below Threshold are
// pruned — ProbeSim's pruning knob, a one-sided (downward) bias bounded
// by the truncated mass.
package probesim

import (
	"context"
	"fmt"
	"math"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/linalg"
	"github.com/exactsim/exactsim/internal/sparse"
	"github.com/exactsim/exactsim/internal/walk"
)

// Params configures a ProbeSim engine.
type Params struct {
	C   float64 // decay factor
	Eps float64 // error target; drives R = ⌈SampleFactor·ln n/ε²⌉
	// SampleFactor scales the sample count (0 selects 1.0).
	SampleFactor float64
	// Threshold prunes probe entries; 0 selects (1−√c)²·Eps/4.
	Threshold float64
	// MaxWalkLen caps sampled walks; 0 selects ⌈log_{1/c}(2/Eps)⌉.
	MaxWalkLen int
	Seed       uint64
}

// Engine answers ProbeSim single-source queries. Index-free: all state is
// per-query scratch.
type Engine struct {
	g  *graph.Graph
	op *linalg.Operator
	p  Params
	r  int // samples per query
	l  int // walk length cap
}

// New validates parameters and returns an engine; it panics on invalid
// parameters (NewChecked is the error-returning form).
func New(g *graph.Graph, p Params) *Engine {
	e, err := NewChecked(g, p)
	if err != nil {
		panic(err.Error())
	}
	return e
}

// NewChecked validates parameters and returns an engine or an error.
func NewChecked(g *graph.Graph, p Params) (*Engine, error) {
	if !(p.C > 0 && p.C < 1) { // negated form also rejects NaN
		return nil, fmt.Errorf("probesim: decay factor %g outside (0,1)", p.C)
	}
	if !(p.Eps > 0 && p.Eps < 1) {
		return nil, fmt.Errorf("probesim: eps %g outside (0,1)", p.Eps)
	}
	if p.SampleFactor == 0 {
		p.SampleFactor = 1
	}
	sqrtC := math.Sqrt(p.C)
	if p.Threshold == 0 {
		p.Threshold = (1 - sqrtC) * (1 - sqrtC) * p.Eps / 4
	}
	if p.MaxWalkLen == 0 {
		p.MaxWalkLen = int(math.Ceil(math.Log(2/p.Eps) / math.Log(1/p.C)))
	}
	ln := math.Log(float64(g.N()))
	if ln < 1 {
		ln = 1
	}
	r := int(math.Ceil(p.SampleFactor * ln / (p.Eps * p.Eps)))
	if r < 1 {
		r = 1
	}
	return &Engine{g: g, op: linalg.NewOperator(g, 1), p: p, r: r, l: p.MaxWalkLen}, nil
}

// Samples returns the per-query sample count R.
func (e *Engine) Samples() int { return e.r }

// SingleSource estimates S(source, j) for all j.
func (e *Engine) SingleSource(source graph.NodeID) []float64 {
	s, _ := e.SingleSourceCtx(context.Background(), source)
	return s
}

// SingleSourceCtx is SingleSource with cancellation checked every 64
// samples (each sample's probe pass can touch a large neighborhood, so
// the interval is tighter than for plain walk loops).
func (e *Engine) SingleSourceCtx(ctx context.Context, source graph.NodeID) ([]float64, error) {
	n := e.g.N()
	scores := make([]float64, n)
	w := walk.NewWalker(e.g, e.p.C, e.p.Seed^(0x9e3779b97f4a7c15*uint64(source+1)))
	acc := sparse.NewAccumulator(n)
	var traj []graph.NodeID
	inv := 1 / float64(e.r)
	for s := 0; s < e.r; s++ {
		if s&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		traj = w.Trajectory(source, e.l, traj)
		probe := e.probe(traj, acc)
		for i, j := range probe.Idx {
			scores[j] += inv * probe.Val[i]
		}
	}
	scores[source] = 1
	return scores, nil
}

// probe runs the backward pass over one sampled trajectory and returns
// ŝ_W as a sparse vector over j.
func (e *Engine) probe(traj []graph.NodeID, acc *sparse.Accumulator) sparse.Vector {
	sqrtC := math.Sqrt(e.p.C)
	cur := sparse.Vector{} // C beyond the walk's end is zero
	for t := len(traj) - 1; t >= 1; t-- {
		cur = e.op.ApplyPTSparse(&cur, acc, sqrtC, e.p.Threshold)
		// Being at W[t] at step t is a certain meeting, regardless of the
		// diffusion value: overwrite with 1.
		cur = setEntry(cur, traj[t], 1)
	}
	// ŝ_W = √c·Pᵀ·C_1: step 0 cannot collide for j ≠ source.
	return e.op.ApplyPTSparse(&cur, acc, sqrtC, e.p.Threshold)
}

// setEntry sets v[node] = val, inserting while preserving index order.
func setEntry(v sparse.Vector, node graph.NodeID, val float64) sparse.Vector {
	for i, idx := range v.Idx {
		if idx == node {
			v.Val[i] = val
			return v
		}
		if idx > node {
			v.Idx = append(v.Idx, 0)
			v.Val = append(v.Val, 0)
			copy(v.Idx[i+1:], v.Idx[i:])
			copy(v.Val[i+1:], v.Val[i:])
			v.Idx[i] = node
			v.Val[i] = val
			return v
		}
	}
	v.Idx = append(v.Idx, node)
	v.Val = append(v.Val, val)
	return v
}
