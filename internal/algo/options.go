package algo

import (
	"fmt"
	"math"

	"github.com/exactsim/exactsim/internal/core"
	"github.com/exactsim/exactsim/internal/diag"
)

// DefaultEpsilon is the registry's default additive-error target. It is a
// *serving* default — cheap enough that every algorithm (including the
// O(log n/ε²)-sampling baselines) answers interactively. Pass
// WithEpsilon(core.ExactEpsilon) for the paper's float-exact mode.
const DefaultEpsilon = 1e-2

// Config collects every knob any registered algorithm understands. One
// flat struct replaces the per-package Params zoo at the facade: each
// adapter reads the fields that apply to it and ignores the rest, so the
// same option list can configure any algorithm name.
type Config struct {
	// C is the SimRank decay factor in (0,1); 0 selects core.DefaultC.
	C float64
	// Epsilon is the additive error target in (0,1) for the error-driven
	// methods (ExactSim, Linearization, PRSim, ProbeSim); 0 selects
	// DefaultEpsilon.
	Epsilon float64
	// Seed drives every stochastic choice deterministically.
	Seed uint64
	// Workers bounds parallelism inside a single query or index build.
	Workers int
	// SampleFactor scales the theoretical sample counts of the sampling
	// methods; 0 selects 1.0 (the papers' constants).
	SampleFactor float64
	// Iterations is the level count for the iteration-driven methods:
	// ParSim's L (0 selects 50) and the power method's iteration count
	// (0 selects enough for ~1e-9 residual).
	Iterations int
	// WalkLength is MC's maximum walk length L; 0 selects 20.
	WalkLength int
	// WalksPerNode is MC's walks-per-node r; 0 selects 1000.
	WalksPerNode int
	// HubCount is PRSim's indexed-hub count; 0 selects PRSim's auto rule.
	HubCount int
	// PruneThreshold is ProbeSim's probe-pruning knob; 0 selects its
	// (1−√c)²·ε/4 default.
	PruneThreshold float64
	// MaxSamplesPerNode / MaxExploreEdges cap ExactSim's per-node work;
	// 0 selects the core defaults.
	MaxSamplesPerNode int
	MaxExploreEdges   int64
	// NoPiSquaredSampling / NoLocalExploit are ExactSim's §3.2 ablation
	// switches (harness Figure 9 / ablation-extra).
	NoPiSquaredSampling bool
	NoLocalExploit      bool
	// DiagIndex shares ExactSim's diagonal sample chunks across queries
	// and queriers (see core.Options.DiagIndex). Ignored by the other
	// algorithms.
	DiagIndex *diag.SampleIndex
}

// MC's default (L, r); shared by defaults() and the mc adapter's
// zero-guards so the two cannot diverge.
const (
	defaultWalkLength   = 20
	defaultWalksPerNode = 1000
)

func defaults() Config {
	return Config{
		C:            core.DefaultC,
		Epsilon:      DefaultEpsilon,
		Workers:      1,
		SampleFactor: 1,
		WalkLength:   defaultWalkLength,
		WalksPerNode: defaultWalksPerNode,
	}
}

// validate rejects non-finite and out-of-range knobs. NaN fails every
// ordered comparison, so plain "v <= 0" range checks would wave it
// through; every float is screened for NaN/Inf first.
func (c *Config) validate() error {
	for _, knob := range []struct {
		name string
		v    float64
	}{
		{"C", c.C}, {"Epsilon", c.Epsilon}, {"SampleFactor", c.SampleFactor},
		{"PruneThreshold", c.PruneThreshold},
	} {
		if math.IsNaN(knob.v) || math.IsInf(knob.v, 0) {
			return fmt.Errorf("algo: %s=%g is not finite", knob.name, knob.v)
		}
	}
	// Zero means "default" for every knob, including when an option set
	// it back to zero explicitly (e.g. WithEpsilon(0)).
	if c.C == 0 {
		c.C = core.DefaultC
	}
	if c.Epsilon == 0 {
		c.Epsilon = DefaultEpsilon
	}
	if c.C <= 0 || c.C >= 1 {
		return fmt.Errorf("algo: decay factor C=%g outside (0,1)", c.C)
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("algo: Epsilon=%g outside (0,1)", c.Epsilon)
	}
	if c.SampleFactor < 0 {
		return fmt.Errorf("algo: negative SampleFactor %g", c.SampleFactor)
	}
	if c.PruneThreshold < 0 {
		return fmt.Errorf("algo: negative PruneThreshold %g", c.PruneThreshold)
	}
	for _, knob := range []struct {
		name string
		v    int
	}{
		{"Iterations", c.Iterations}, {"WalkLength", c.WalkLength},
		{"WalksPerNode", c.WalksPerNode}, {"HubCount", c.HubCount},
		{"MaxSamplesPerNode", c.MaxSamplesPerNode},
	} {
		if knob.v < 0 {
			return fmt.Errorf("algo: negative %s %d", knob.name, knob.v)
		}
	}
	if c.MaxExploreEdges < 0 {
		return fmt.Errorf("algo: negative MaxExploreEdges %d", c.MaxExploreEdges)
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return nil
}

// Option customizes a Config built by New.
type Option func(*Config)

// Resolve applies opts over the defaults and validates, returning the
// effective Config without constructing a querier. The serving layer uses
// it to learn the base epsilon (and reject bad option sets early) that
// the query planner's decisions are anchored to.
func Resolve(opts ...Option) (Config, error) {
	cfg := defaults()
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// WithC sets the SimRank decay factor (paper: 0.6).
func WithC(c float64) Option { return func(cfg *Config) { cfg.C = c } }

// WithEpsilon sets the additive error target for the error-driven methods.
func WithEpsilon(eps float64) Option { return func(cfg *Config) { cfg.Epsilon = eps } }

// WithSeed fixes the random seed; equal seeds give identical answers.
func WithSeed(seed uint64) Option { return func(cfg *Config) { cfg.Seed = seed } }

// WithWorkers bounds parallelism within one query or index build.
func WithWorkers(w int) Option { return func(cfg *Config) { cfg.Workers = w } }

// WithSampleFactor scales the sampling methods' theoretical sample counts.
func WithSampleFactor(f float64) Option { return func(cfg *Config) { cfg.SampleFactor = f } }

// WithIterations sets the level count for ParSim and the power method.
func WithIterations(l int) Option { return func(cfg *Config) { cfg.Iterations = l } }

// WithWalks sets MC's (walk length, walks per node) grid point.
func WithWalks(length, perNode int) Option {
	return func(cfg *Config) { cfg.WalkLength, cfg.WalksPerNode = length, perNode }
}

// WithHubCount sets PRSim's indexed-hub count.
func WithHubCount(h int) Option { return func(cfg *Config) { cfg.HubCount = h } }

// WithPruneThreshold sets ProbeSim's probe-pruning threshold.
func WithPruneThreshold(t float64) Option { return func(cfg *Config) { cfg.PruneThreshold = t } }

// WithSampleCaps caps ExactSim's per-node sampling and exploration work
// (0 keeps a core default).
func WithSampleCaps(maxSamplesPerNode int, maxExploreEdges int64) Option {
	return func(cfg *Config) {
		cfg.MaxSamplesPerNode = maxSamplesPerNode
		cfg.MaxExploreEdges = maxExploreEdges
	}
}

// WithoutPiSquaredSampling disables ExactSim's π²-proportional sample
// allocation (ablation).
func WithoutPiSquaredSampling() Option {
	return func(cfg *Config) { cfg.NoPiSquaredSampling = true }
}

// WithoutLocalExploit disables ExactSim's Algorithm-3 deterministic
// exploitation (ablation).
func WithoutLocalExploit() Option {
	return func(cfg *Config) { cfg.NoLocalExploit = true }
}

// WithDiagIndex attaches a shared diagonal sample index to ExactSim
// queriers (both the Optimized and Basic variants); other algorithms
// ignore it. All queriers sharing one index must agree on graph, decay
// factor and seed — mismatched queriers fall back to uncached sampling.
func WithDiagIndex(ix *diag.SampleIndex) Option {
	return func(cfg *Config) { cfg.DiagIndex = ix }
}
