package algo

// Exactness classifies what an algorithm's answer promises. The planner
// (internal/plan) and the /v1/algorithms capability surface both key off
// this: "auto" may only substitute within or above a request's implied
// class, never below it.
type Exactness string

const (
	// ExactnessExact: the answer is exact up to float rounding (power
	// iteration run to numerical fixpoint).
	ExactnessExact Exactness = "exact"
	// ExactnessErrorBounded: the answer carries a proven additive error
	// bound of Epsilon (ExactSim's high-probability guarantee, the
	// linearization/PRSim/ProbeSim bounds).
	ExactnessErrorBounded Exactness = "error_bounded"
	// ExactnessHeuristic: no per-answer error bound — accuracy is
	// empirical (plain Monte Carlo, ParSim's truncated iteration).
	ExactnessHeuristic Exactness = "heuristic"
)

// Caps describes one registered algorithm's capabilities — the static
// half of the planner's knowledge (the dynamic half is the calibrated
// cost model). All fields are wire-stable: httpapi serializes them on
// GET /v1/algorithms.
type Caps struct {
	// Name is the registry name.
	Name string `json:"name"`
	// SupportsTopK: every registered method computes a full single-source
	// vector, so top-k extraction is always available; kept explicit so a
	// future partial-vector method can say no.
	SupportsTopK bool `json:"supports_topk"`
	// IndexBacked reports whether the querier builds a reusable index at
	// construction time (first query pays the build; later queries are
	// cheap). Index-free methods pay per query.
	IndexBacked bool `json:"index_backed"`
	// Exactness is the accuracy class of the answers.
	Exactness Exactness `json:"exactness"`
	// ErrorDriven reports whether Epsilon controls the method's work (and
	// thus whether an accuracy-tier ladder coarse→target is meaningful).
	// False for methods whose cost ignores Epsilon (mc, parsim,
	// powermethod).
	ErrorDriven bool `json:"error_driven"`
}

// caps is the static capability table, one row per registered algorithm.
// IndexBacked mirrors which adapters implement Index in adapters.go.
var caps = map[string]Caps{
	"exactsim":       {Name: "exactsim", SupportsTopK: true, IndexBacked: false, Exactness: ExactnessErrorBounded, ErrorDriven: true},
	"exactsim-basic": {Name: "exactsim-basic", SupportsTopK: true, IndexBacked: false, Exactness: ExactnessErrorBounded, ErrorDriven: true},
	"mc":             {Name: "mc", SupportsTopK: true, IndexBacked: true, Exactness: ExactnessHeuristic, ErrorDriven: false},
	"parsim":         {Name: "parsim", SupportsTopK: true, IndexBacked: false, Exactness: ExactnessHeuristic, ErrorDriven: false},
	"linearization":  {Name: "linearization", SupportsTopK: true, IndexBacked: true, Exactness: ExactnessErrorBounded, ErrorDriven: true},
	"prsim":          {Name: "prsim", SupportsTopK: true, IndexBacked: true, Exactness: ExactnessErrorBounded, ErrorDriven: true},
	"probesim":       {Name: "probesim", SupportsTopK: true, IndexBacked: false, Exactness: ExactnessErrorBounded, ErrorDriven: true},
	"powermethod":    {Name: "powermethod", SupportsTopK: true, IndexBacked: true, Exactness: ExactnessExact, ErrorDriven: false},
}

// Describe returns the capability row for a registered algorithm name.
func Describe(name string) (Caps, bool) {
	c, ok := caps[name]
	return c, ok
}

// AllCaps returns the capability rows in registry-name order (the order
// Names returns), so wire surfaces stay deterministic.
func AllCaps() []Caps {
	names := Names()
	out := make([]Caps, 0, len(names))
	for _, n := range names {
		if c, ok := caps[n]; ok {
			out = append(out, c)
		}
	}
	return out
}
