package algo

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/powermethod"
)

// conformanceCase fixes, per registered algorithm, the options that make
// it accurate on a 250-node graph and the MaxError it must then achieve
// against power-method ground truth.
type conformanceCase struct {
	opts []Option
	tol  float64
}

func conformanceCases() map[string]conformanceCase {
	return map[string]conformanceCase{
		"exactsim": {[]Option{WithEpsilon(1e-3), WithSeed(1)}, 1e-3},
		// The basic ablation caps R(k) at 1<<16 *without* Algorithm-3 depth
		// compensation (that is the ablation), so D(source) carries
		// σ ≈ 1/(2√R) ≈ 2e-3 of irreducible noise at any ε — a 1e-3
		// tolerance here would hold or fail by luck of the seed. 5σ bound.
		"exactsim-basic": {[]Option{WithEpsilon(1e-3), WithSeed(2)}, 1e-2},
		"powermethod":    {nil, 1e-8},
		"parsim":         {[]Option{WithIterations(100)}, 0.1},
		"mc":             {[]Option{WithWalks(20, 3000), WithSeed(3)}, 0.1},
		"linearization":  {[]Option{WithEpsilon(0.02), WithSeed(4)}, 0.1},
		"prsim":          {[]Option{WithEpsilon(0.02), WithSeed(5)}, 0.1},
		"probesim":       {[]Option{WithEpsilon(0.05), WithSeed(6)}, 0.1},
	}
}

// TestConformance runs every registered querier on one small graph and
// cross-checks it against the power method: correct vector shape, a
// self-similarity of 1, scores within the algorithm's tolerance of ground
// truth, and a well-formed TopK. The case table is keyed off Names() so
// registering a new algorithm without conformance coverage fails loudly.
func TestConformance(t *testing.T) {
	g := gen.BarabasiAlbert(250, 3, 42)
	truth := powermethod.Compute(g, powermethod.Options{C: 0.6, L: 40})
	const source = 17
	cases := conformanceCases()

	for _, name := range Names() {
		cse, ok := cases[name]
		if !ok {
			t.Fatalf("registered algorithm %q has no conformance case", name)
		}
		t.Run(name, func(t *testing.T) {
			q, err := New(name, g, cse.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if q.Name() != name {
				t.Fatalf("Name() = %q, want %q", q.Name(), name)
			}
			if q.Graph() != g {
				t.Fatal("Graph() does not return the construction graph")
			}
			res, err := q.SingleSource(context.Background(), source)
			if err != nil {
				t.Fatal(err)
			}
			if res.Algorithm != name {
				t.Fatalf("Result.Algorithm = %q, want %q", res.Algorithm, name)
			}
			if len(res.Scores) != g.N() {
				t.Fatalf("got %d scores for n=%d", len(res.Scores), g.N())
			}
			// ExactSim reconstructs s(i,i) ≈ 1 ± ε; the baselines pin it to 1.
			if math.Abs(res.Scores[source]-1) > cse.tol {
				t.Fatalf("self-similarity %g not within %g of 1", res.Scores[source], cse.tol)
			}
			var maxErr float64
			for j, s := range res.Scores {
				if e := math.Abs(s - truth.At(source, j)); e > maxErr {
					maxErr = e
				}
			}
			if maxErr > cse.tol {
				t.Fatalf("MaxError %g above tolerance %g", maxErr, cse.tol)
			}

			top, topRes, err := q.TopK(context.Background(), source, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(top) != 10 {
				t.Fatalf("TopK returned %d entries", len(top))
			}
			if topRes == nil || len(topRes.Scores) != g.N() {
				t.Fatal("TopK did not return the underlying Result")
			}
			for i, e := range top {
				if e.Idx == source {
					t.Fatal("TopK includes the source")
				}
				if i > 0 && e.Val > top[i-1].Val {
					t.Fatal("TopK not sorted descending")
				}
			}

			// Out-of-range sources error uniformly, before any work.
			if _, err := q.SingleSource(context.Background(), -1); err == nil {
				t.Fatal("negative source accepted")
			}
			if _, err := q.SingleSource(context.Background(), int32(g.N())); err == nil {
				t.Fatal("source == n accepted")
			}
		})
	}
}

// TestQuerierDeterminism: equal seeds and options give identical vectors.
func TestQuerierDeterminism(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 7)
	for _, name := range []string{"exactsim", "mc", "probesim", "prsim"} {
		a, err := New(name, g, WithEpsilon(0.05), WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(name, g, WithEpsilon(0.05), WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		ra, err := a.SingleSource(context.Background(), 3)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.SingleSource(context.Background(), 3)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ra.Scores {
			if ra.Scores[j] != rb.Scores[j] {
				t.Fatalf("%s: score %d differs across identically seeded runs", name, j)
			}
		}
	}
}

// TestCancelledContext: a pre-cancelled context is rejected by every
// registered querier without doing the query.
func TestCancelledContext(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cases := conformanceCases()
	for _, name := range Names() {
		q, err := New(name, g, cases[name].opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q.SingleSource(ctx, 0); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: got %v, want context.Canceled", name, err)
		}
	}
}

// TestDeadlineMidComputation: a deadline interrupts a long ExactSim run
// *during* the computation — the diagonal phase at ε=10⁻⁶ on a 3000-node
// graph runs for many seconds uncancelled — and surfaces as
// context.DeadlineExceeded well before the run would have finished.
func TestDeadlineMidComputation(t *testing.T) {
	g := gen.BarabasiAlbert(3000, 5, 13)
	q, err := New("exactsim", g, WithEpsilon(1e-6), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = q.SingleSource(ctx, 5)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; not honored inside the computation loops", elapsed)
	}
}

// TestCancelledIndexBuild: NewCtx aborts an expensive index build (here
// Linearization's O(n·log n/ε²) sampling) on deadline.
func TestCancelledIndexBuild(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 4, 17)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := NewCtx(ctx, "linearization", g, WithEpsilon(1e-3))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("build cancellation took %v", elapsed)
	}
}

// TestOptionValidation: NaN/Inf and out-of-range knobs are rejected for
// every algorithm (the NaN cases would previously slip through ordered
// comparisons and poison the run).
func TestOptionValidation(t *testing.T) {
	g := gen.BarabasiAlbert(50, 2, 3)
	bad := [][]Option{
		{WithC(math.NaN())},
		{WithC(math.Inf(1))},
		{WithC(1.5)},
		{WithEpsilon(math.NaN())},
		{WithEpsilon(-0.1)},
		{WithEpsilon(1)},
		{WithSampleFactor(math.NaN())},
		{WithSampleFactor(math.Inf(-1))},
		{WithSampleFactor(-1)},
		{WithIterations(-1)},
		{WithWalks(-1, 100)},
		{WithHubCount(-2)},
		{WithPruneThreshold(math.NaN())},
	}
	for i, opts := range bad {
		if _, err := New("exactsim", g, opts...); err == nil {
			t.Fatalf("bad option set %d accepted", i)
		}
	}
	if _, err := New("no-such-algo", g); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := New("exactsim", nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// TestMCZeroKnobsUseDefaults: zero means "default" for every Config
// knob; WithWalks(l, 0) must not reach MC literally (R=0 would divide
// every score 0/0 into NaN).
func TestMCZeroKnobsUseDefaults(t *testing.T) {
	g := gen.BarabasiAlbert(60, 2, 5)
	for _, opts := range [][]Option{
		{WithWalks(10, 0)},
		{WithWalks(0, 50)},
	} {
		q, err := New("mc", g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := q.SingleSource(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		for j, s := range res.Scores {
			if math.IsNaN(s) || s < 0 || s > 1 {
				t.Fatalf("score[%d] = %g with zero walk knobs", j, s)
			}
		}
	}
}
