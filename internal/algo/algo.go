// Package algo defines the unified single-source SimRank query API: one
// Querier interface implemented by adapters over every algorithm in the
// repository — ExactSim (optimized and basic), the MC walk index, ParSim,
// Linearization, PRSim, ProbeSim and the power method — plus a
// string-keyed registry that constructs any of them from one set of
// functional options.
//
// The paper's experimental story (§4) is a head-to-head of these methods,
// and a serving layer has to switch between them per request (index-based
// methods amortize preprocessing across queries; index-free methods answer
// exactly on every graph snapshot). Both need the algorithms to be
// interchangeable behind a single call shape:
//
//	q, err := algo.New("exactsim", g, algo.WithEpsilon(1e-4))
//	res, err := q.SingleSource(ctx, 42)
//	top, _, err := q.TopK(ctx, 42, 10)
//
// Every query takes a context whose cancellation is honored *inside* the
// underlying iteration and sampling loops (see the *Ctx methods of the
// algorithm packages), so per-request deadlines hold even at ε settings
// where a single query runs for minutes. See DESIGN.md §2.
package algo

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/sparse"
)

// Result is the uniform single-source answer: the full score vector plus
// the accounting a serving layer or experiment harness wants.
// The JSON tags make it the wire result of the serving protocol (see the
// httpapi package); Detail stays process-local — the algorithm-specific
// records hold engine internals that do not serialize meaningfully.
type Result struct {
	// Algorithm is the registry name of the method that produced this.
	Algorithm string `json:"algorithm"`
	// Scores holds ŝ(j) for every node j; Scores[source] = 1.
	// A Result may be shared (e.g. by a cache): treat Scores as read-only.
	Scores []float64 `json:"scores"`
	// QueryTime is the wall time of this query (excluding any index
	// build), serialized as nanoseconds.
	QueryTime time.Duration `json:"query_time_ns"`
	// Detail optionally carries the algorithm-specific result record —
	// *core.Result for the ExactSim variants — for callers that want the
	// phase timings and sample counts behind the paper's tables.
	Detail any `json:"-"`
}

// Querier is the unified single-source SimRank interface. Implementations
// are safe for concurrent use: queries allocate per-call state and the
// shared graph/index structures are immutable after construction.
type Querier interface {
	// Name returns the registry name this querier was constructed under.
	Name() string
	// Graph returns the graph the querier answers over.
	Graph() *graph.Graph
	// SingleSource returns similarity scores of every node to source.
	// Cancellation of ctx is honored inside the computation loops; a
	// cancelled query returns ctx.Err() and no partial result.
	SingleSource(ctx context.Context, source graph.NodeID) (*Result, error)
	// TopK returns the k nodes most similar to source (source excluded),
	// sorted by descending score, plus the underlying full Result.
	TopK(ctx context.Context, source graph.NodeID, k int) ([]sparse.Entry, *Result, error)
}

// Index is implemented by queriers with a preprocessing phase (MC,
// Linearization, PRSim, PowerMethod). Index-free queriers do not implement
// it; callers type-assert.
type Index interface {
	// PrepTime is the wall time the index build took.
	PrepTime() time.Duration
	// IndexBytes is the index memory footprint.
	IndexBytes() int64
}

// Factory builds a querier for one algorithm. The context governs the
// index build (where the algorithm has one); construction is where
// Linearization pays its O(n·log n/ε²) wall, so it must be abortable too.
type Factory func(ctx context.Context, g *graph.Graph, cfg Config) (Querier, error)

var registry = map[string]Factory{}

// Register adds an algorithm under a unique name. It is called from this
// package's init and exposed for external experiment variants; registering
// a duplicate name panics.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("algo: duplicate registration of %q", name))
	}
	registry[name] = f
}

// Names returns every registered algorithm name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Known reports whether name is registered — O(1), for per-request
// validation hot paths.
func Known(name string) bool {
	_, ok := registry[name]
	return ok
}

// New constructs the named querier with the given options applied over
// the defaults (see Config). Unknown names and invalid options error.
func New(name string, g *graph.Graph, opts ...Option) (Querier, error) {
	return NewCtx(context.Background(), name, g, opts...)
}

// NewCtx is New with a context bounding the index build, for algorithms
// that have one. A cancelled build returns ctx.Err().
func NewCtx(ctx context.Context, name string, g *graph.Graph, opts ...Option) (Querier, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("algo: unknown algorithm %q (have %v)", name, Names())
	}
	if g == nil {
		return nil, fmt.Errorf("algo: nil graph")
	}
	cfg := defaults()
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return f(ctx, g, cfg)
}

// checkSource validates a source id uniformly across adapters.
func checkSource(g *graph.Graph, source graph.NodeID) error {
	if source < 0 || int(source) >= g.N() {
		return fmt.Errorf("algo: source %d out of range [0,%d)", source, g.N())
	}
	return nil
}
