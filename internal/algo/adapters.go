package algo

import (
	"context"
	"time"

	"github.com/exactsim/exactsim/internal/core"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/lineariz"
	"github.com/exactsim/exactsim/internal/mc"
	"github.com/exactsim/exactsim/internal/parsim"
	"github.com/exactsim/exactsim/internal/powermethod"
	"github.com/exactsim/exactsim/internal/probesim"
	"github.com/exactsim/exactsim/internal/prsim"
	"github.com/exactsim/exactsim/internal/sparse"
)

func init() {
	Register("exactsim", newExactSim(true))
	Register("exactsim-basic", newExactSim(false))
	Register("mc", newMC)
	Register("parsim", newParSim)
	Register("linearization", newLinearization)
	Register("prsim", newPRSim)
	Register("probesim", newProbeSim)
	Register("powermethod", newPowerMethod)
}

// funcQuerier adapts a context-aware single-source function to Querier.
// All current adapters are built on it; the scores function must be safe
// for concurrent calls (every algorithm package keeps per-query state
// local and its graph/index immutable).
type funcQuerier struct {
	name string
	g    *graph.Graph
	// scores returns the dense score vector plus an optional detail
	// record for Result.Detail.
	scores func(ctx context.Context, source graph.NodeID) ([]float64, any, error)
}

func (q *funcQuerier) Name() string        { return q.name }
func (q *funcQuerier) Graph() *graph.Graph { return q.g }

func (q *funcQuerier) SingleSource(ctx context.Context, source graph.NodeID) (*Result, error) {
	if err := checkSource(q.g, source); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	scores, detail, err := q.scores(ctx, source)
	if err != nil {
		return nil, err
	}
	return &Result{
		Algorithm: q.name,
		Scores:    scores,
		QueryTime: time.Since(start),
		Detail:    detail,
	}, nil
}

func (q *funcQuerier) TopK(ctx context.Context, source graph.NodeID, k int) ([]sparse.Entry, *Result, error) {
	res, err := q.SingleSource(ctx, source)
	if err != nil {
		return nil, nil, err
	}
	return sparse.TopK(res.Scores, k, source), res, nil
}

// indexQuerier is a funcQuerier with a preprocessing phase; it implements
// the optional Index interface.
type indexQuerier struct {
	funcQuerier
	prep  time.Duration
	bytes int64
}

func (q *indexQuerier) PrepTime() time.Duration { return q.prep }
func (q *indexQuerier) IndexBytes() int64       { return q.bytes }

// newExactSim adapts core.Engine: optimized=true is the paper's ExactSim,
// false the Basic ablation variant. Result.Detail carries *core.Result.
func newExactSim(optimized bool) Factory {
	return func(_ context.Context, g *graph.Graph, cfg Config) (Querier, error) {
		name := "exactsim"
		if !optimized {
			name = "exactsim-basic"
		}
		eng, err := core.New(g, core.Options{
			C:                   cfg.C,
			Epsilon:             cfg.Epsilon,
			Optimized:           optimized,
			Workers:             cfg.Workers,
			Seed:                cfg.Seed,
			SampleFactor:        cfg.SampleFactor,
			MaxSamplesPerNode:   cfg.MaxSamplesPerNode,
			MaxExploreEdges:     cfg.MaxExploreEdges,
			NoPiSquaredSampling: cfg.NoPiSquaredSampling,
			NoLocalExploit:      cfg.NoLocalExploit,
			DiagIndex:           cfg.DiagIndex,
		})
		if err != nil {
			return nil, err
		}
		return &funcQuerier{name: name, g: g,
			scores: func(ctx context.Context, source graph.NodeID) ([]float64, any, error) {
				res, err := eng.SingleSourceCtx(ctx, source)
				if err != nil {
					return nil, nil, err
				}
				return res.Scores, res, nil
			}}, nil
	}
}

func newMC(ctx context.Context, g *graph.Graph, cfg Config) (Querier, error) {
	// Zero means "default" for every Config knob, so WithWalks(l, 0) /
	// WithWalks(0, r) must not reach mc.Build literally: R=0 would make
	// every score 0/0 = NaN and L=0 zero-length walks.
	l, r := cfg.WalkLength, cfg.WalksPerNode
	if l == 0 {
		l = defaultWalkLength
	}
	if r == 0 {
		r = defaultWalksPerNode
	}
	ix, err := mc.BuildCtx(ctx, g, mc.Params{
		C: cfg.C, L: l, R: r, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &indexQuerier{
		funcQuerier: funcQuerier{name: "mc", g: g,
			scores: func(ctx context.Context, source graph.NodeID) ([]float64, any, error) {
				s, err := ix.SingleSourceCtx(ctx, source)
				return s, nil, err
			}},
		prep:  ix.PrepTime,
		bytes: ix.Bytes(),
	}, nil
}

func newParSim(_ context.Context, g *graph.Graph, cfg Config) (Querier, error) {
	l := cfg.Iterations
	if l == 0 {
		l = 50
	}
	eng := parsim.New(g, parsim.Params{C: cfg.C, L: l})
	return &funcQuerier{name: "parsim", g: g,
		scores: func(ctx context.Context, source graph.NodeID) ([]float64, any, error) {
			s, err := eng.SingleSourceCtx(ctx, source)
			return s, nil, err
		}}, nil
}

func newLinearization(ctx context.Context, g *graph.Graph, cfg Config) (Querier, error) {
	ix, err := lineariz.BuildCtx(ctx, g, lineariz.Params{
		C: cfg.C, Eps: cfg.Epsilon, SampleFactor: cfg.SampleFactor,
		Workers: cfg.Workers, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &indexQuerier{
		funcQuerier: funcQuerier{name: "linearization", g: g,
			scores: func(ctx context.Context, source graph.NodeID) ([]float64, any, error) {
				s, err := ix.SingleSourceCtx(ctx, source)
				return s, nil, err
			}},
		prep:  ix.PrepTime,
		bytes: ix.Bytes(),
	}, nil
}

func newPRSim(ctx context.Context, g *graph.Graph, cfg Config) (Querier, error) {
	ix, err := prsim.BuildCtx(ctx, g, prsim.Params{
		C: cfg.C, Eps: cfg.Epsilon, HubCount: cfg.HubCount,
		SampleFactor: cfg.SampleFactor, Workers: cfg.Workers, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &indexQuerier{
		funcQuerier: funcQuerier{name: "prsim", g: g,
			scores: func(ctx context.Context, source graph.NodeID) ([]float64, any, error) {
				s, err := ix.SingleSourceCtx(ctx, source)
				return s, nil, err
			}},
		prep:  ix.PrepTime,
		bytes: ix.Bytes(),
	}, nil
}

func newProbeSim(_ context.Context, g *graph.Graph, cfg Config) (Querier, error) {
	eng, err := probesim.NewChecked(g, probesim.Params{
		C: cfg.C, Eps: cfg.Epsilon, SampleFactor: cfg.SampleFactor,
		Threshold: cfg.PruneThreshold, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &funcQuerier{name: "probesim", g: g,
		scores: func(ctx context.Context, source graph.NodeID) ([]float64, any, error) {
			s, err := eng.SingleSourceCtx(ctx, source)
			return s, nil, err
		}}, nil
}

func newPowerMethod(ctx context.Context, g *graph.Graph, cfg Config) (Querier, error) {
	start := time.Now()
	mat, err := powermethod.ComputeCtx(ctx, g, powermethod.Options{
		C: cfg.C, L: cfg.Iterations, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &indexQuerier{
		funcQuerier: funcQuerier{name: "powermethod", g: g,
			scores: func(_ context.Context, source graph.NodeID) ([]float64, any, error) {
				// The all-pairs matrix is precomputed; a query is a row copy.
				return mat.SingleSource(source), nil, nil
			}},
		prep:  time.Since(start),
		bytes: mat.Bytes(),
	}, nil
}
