// Package walk implements the √c-walk primitives behind every Monte-Carlo
// component in this repository.
//
// A √c-walk (paper §2, MC) moves, at each step, to a uniformly random
// in-neighbor with probability √c and stops otherwise; a node without
// in-neighbors forces a stop. Two √c-walks "meet" if they occupy the same
// node at the same step while both are still alive, and
//
//	S(i,j) = Pr[√c-walks from v_i and v_j meet]          (paper eq. 2)
//	D(k,k) = 1 − Pr[two √c-walks from v_k meet at ℓ ≥ 1] (paper §3.2)
//
// are the identities the MC baseline and the D estimators build on.
//
// The engine is built for the diagonal phase's throughput: millions of walk
// pairs per query at tight ε. Three structural choices keep the per-step
// cost to one bounded-random draw and two array loads:
//
//  1. Geometric length sampling. The per-step survival Bernoullis of a
//     √c-walk are i.i.d. and independent of the position draws, so the
//     number of survived steps is Geometric(√c) and can be drawn up front
//     with a single draw (rng.GeometricSampler). A walk then takes exactly
//     min(geometric length, dead-end time) position steps.
//  2. Flat CSR indexing. The walker captures the graph's inOff/inAdj arrays
//     once (graph.InCSR) and indexes them directly, instead of materializing
//     an InNeighbors slice header per step.
//  3. Lemire bounded sampling. Random neighbor selection uses
//     rng.Bounded — one 128-bit multiply, no modulo, unbiased.
package walk

import (
	"math"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/rng"
)

// Walker bundles a graph, decay factor, and RNG stream. It is not safe for
// concurrent use: parallel drivers derive one Walker per worker via Fork.
type Walker struct {
	g     *graph.Graph
	inOff []int64
	inAdj []int32
	sqrtC float64
	// geo samples √c-walk lengths: Geometric(√c) via an integer threshold
	// table, one Uint64 draw per walk. geoPair samples the joint survival
	// of a walk *pair*: min of two independent Geometric(√c) lengths is
	// Geometric(c), so one draw covers both walks. Immutable; shared
	// across Forks.
	geo     *rng.GeometricSampler
	geoPair *rng.GeometricSampler
	r       *rng.RNG
}

// NewWalker returns a walker over g with SimRank decay c, seeded
// deterministically.
func NewWalker(g *graph.Graph, c float64, seed uint64) *Walker {
	if c <= 0 || c >= 1 {
		panic("walk: decay factor must lie in (0,1)")
	}
	inOff, inAdj := g.InCSR()
	sqrtC := math.Sqrt(c)
	return &Walker{
		g:       g,
		inOff:   inOff,
		inAdj:   inAdj,
		sqrtC:   sqrtC,
		geo:     rng.NewGeometricSampler(sqrtC),
		geoPair: rng.NewGeometricSampler(c),
		r:       rng.New(seed),
	}
}

// Fork derives an independent walker for another goroutine.
func (w *Walker) Fork() *Walker {
	f := *w
	f.r = w.r.Split()
	return &f
}

// RNG exposes the walker's random stream (used by samplers built on top).
func (w *Walker) RNG() *rng.RNG { return w.r }

// length draws the number of steps a √c-walk survives: Geometric(√c), one
// uniform draw.
func (w *Walker) length() int {
	return w.geo.Sample(w.r)
}

// stepIn moves to a uniformly random in-neighbor of v; ok=false on a dead
// end. Survival is NOT sampled here — callers budget steps via length().
func (w *Walker) stepIn(v graph.NodeID) (graph.NodeID, bool) {
	lo, hi := w.inOff[v], w.inOff[v+1]
	if lo == hi {
		return v, false
	}
	return w.inAdj[lo+int64(w.r.Bounded(uint64(hi-lo)))], true
}

// Trajectory simulates one √c-walk from start, recording at most maxSteps
// moves. The returned slice begins with start; its length-1 is the number
// of steps taken. dst is reused if it has capacity.
func (w *Walker) Trajectory(start graph.NodeID, maxSteps int, dst []graph.NodeID) []graph.NodeID {
	dst = append(dst[:0], start)
	steps := w.length()
	if steps > maxSteps {
		steps = maxSteps
	}
	v := start
	for t := 0; t < steps; t++ {
		next, alive := w.stepIn(v)
		if !alive {
			break
		}
		v = next
		dst = append(dst, v)
	}
	return dst
}

// TrajectoriesMeet reports whether two stored √c-walk trajectories meet:
// same node at the same step index while both are alive (indices past a
// trajectory's end are "stopped"). Index 0 counts, so identical sources
// meet trivially — callers compare distinct sources.
func TrajectoriesMeet(a, b []graph.NodeID) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for t := 0; t < n; t++ {
		if a[t] == b[t] {
			return true
		}
	}
	return false
}

// PairMeetsFrom simulates two fresh √c-walks from x and y (both alive at
// step 0, positions distinct unless x==y) and reports whether they ever
// meet at a step ≥ 1. This is the MC estimator's primitive for S(x,y) when
// combined with the step-0 check, and Algorithm 3's tail continuation.
//
// The pair can only meet while both walks are alive, and
// min(Geometric(√c), Geometric(√c)) = Geometric(c), so a single geometric
// draw budgets the whole pair; dead ends cut it short.
func (w *Walker) PairMeetsFrom(x, y graph.NodeID) bool {
	steps := w.geoPair.Sample(w.r)
	inOff, inAdj := w.inOff, w.inAdj
	for t := 0; t < steps; t++ {
		xlo, xhi := inOff[x], inOff[x+1]
		if xlo == xhi {
			return false
		}
		ylo, yhi := inOff[y], inOff[y+1]
		if ylo == yhi {
			return false
		}
		x = inAdj[xlo+int64(w.r.Bounded(uint64(xhi-xlo)))]
		y = inAdj[ylo+int64(w.r.Bounded(uint64(yhi-ylo)))]
		if x == y {
			return true
		}
	}
	return false
}

// PairNoMeet simulates two independent √c-walks from the same node k and
// reports whether they do NOT meet at any step ≥ 1 — exactly the Bernoulli
// trial of paper Algorithm 2, whose success probability is D(k,k).
func (w *Walker) PairNoMeet(k graph.NodeID) bool {
	return !w.PairMeetsFrom(k, k)
}

// NonStopPrefixPair simulates the special walk pair of paper Algorithm 3:
// both walks take `prefix` forced (non-stopping) steps. It returns the two
// end positions and ok=true only if (a) neither walk hit a dead end — a
// dead end makes survival past it impossible under the true measure — and
// (b) the walks did not meet at any step 1..prefix (those meetings belong
// to the deterministically-computed Σ Z_ℓ part).
func (w *Walker) NonStopPrefixPair(k graph.NodeID, prefix int) (x, y graph.NodeID, ok bool) {
	x, y = k, k
	inOff, inAdj := w.inOff, w.inAdj
	for t := 0; t < prefix; t++ {
		xlo, xhi := inOff[x], inOff[x+1]
		ylo, yhi := inOff[y], inOff[y+1]
		if xlo == xhi || ylo == yhi {
			return x, y, false
		}
		x = inAdj[xlo+int64(w.r.Bounded(uint64(xhi-xlo)))]
		y = inAdj[ylo+int64(w.r.Bounded(uint64(yhi-ylo)))]
		if x == y {
			return x, y, false
		}
	}
	return x, y, true
}

// StopDistribution estimates, by simulation, the probability that a √c-walk
// from source stops at each node (the full PPR vector π_source). Used by
// tests to cross-validate internal/ppr against the walk process itself.
func (w *Walker) StopDistribution(source graph.NodeID, samples int) []float64 {
	counts := make([]float64, w.g.N())
	for s := 0; s < samples; s++ {
		v := source
		steps := w.length()
		for t := 0; t < steps; t++ {
			next, alive := w.stepIn(v)
			if !alive {
				break
			}
			v = next
		}
		counts[v]++
	}
	for i := range counts {
		counts[i] /= float64(samples)
	}
	return counts
}

// MeetFraction runs `samples` Algorithm-2 trials at node k and returns the
// fraction that met (an estimator of 1 − D(k,k)).
func (w *Walker) MeetFraction(k graph.NodeID, samples int) float64 {
	met := 0
	for s := 0; s < samples; s++ {
		if !w.PairNoMeet(k) {
			met++
		}
	}
	return float64(met) / float64(samples)
}
