// Package walk implements the √c-walk primitives behind every Monte-Carlo
// component in this repository.
//
// A √c-walk (paper §2, MC) moves, at each step, to a uniformly random
// in-neighbor with probability √c and stops otherwise; a node without
// in-neighbors forces a stop. Two √c-walks "meet" if they occupy the same
// node at the same step while both are still alive, and
//
//	S(i,j) = Pr[√c-walks from v_i and v_j meet]          (paper eq. 2)
//	D(k,k) = 1 − Pr[two √c-walks from v_k meet at ℓ ≥ 1] (paper §3.2)
//
// are the identities the MC baseline and the D estimators build on.
package walk

import (
	"math"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/rng"
)

// Walker bundles a graph, decay factor, and RNG stream. It is not safe for
// concurrent use: parallel drivers derive one Walker per worker via Fork.
type Walker struct {
	g     *graph.Graph
	sqrtC float64
	r     *rng.RNG
}

// NewWalker returns a walker over g with SimRank decay c, seeded
// deterministically.
func NewWalker(g *graph.Graph, c float64, seed uint64) *Walker {
	if c <= 0 || c >= 1 {
		panic("walk: decay factor must lie in (0,1)")
	}
	return &Walker{g: g, sqrtC: math.Sqrt(c), r: rng.New(seed)}
}

// Fork derives an independent walker for another goroutine.
func (w *Walker) Fork() *Walker {
	return &Walker{g: w.g, sqrtC: w.sqrtC, r: w.r.Split()}
}

// RNG exposes the walker's random stream (used by samplers built on top).
func (w *Walker) RNG() *rng.RNG { return w.r }

// step moves the walk one step if it survives; ok=false means the walk
// stopped (decay or dead end).
func (w *Walker) step(v graph.NodeID) (graph.NodeID, bool) {
	if w.r.Float64() >= w.sqrtC {
		return v, false
	}
	in := w.g.InNeighbors(v)
	if len(in) == 0 {
		return v, false
	}
	return in[w.r.Intn(len(in))], true
}

// Trajectory simulates one √c-walk from start, recording at most maxSteps
// moves. The returned slice begins with start; its length-1 is the number
// of steps taken. dst is reused if it has capacity.
func (w *Walker) Trajectory(start graph.NodeID, maxSteps int, dst []graph.NodeID) []graph.NodeID {
	dst = append(dst[:0], start)
	v := start
	for step := 0; step < maxSteps; step++ {
		next, alive := w.step(v)
		if !alive {
			break
		}
		v = next
		dst = append(dst, v)
	}
	return dst
}

// TrajectoriesMeet reports whether two stored √c-walk trajectories meet:
// same node at the same step index while both are alive (indices past a
// trajectory's end are "stopped"). Index 0 counts, so identical sources
// meet trivially — callers compare distinct sources.
func TrajectoriesMeet(a, b []graph.NodeID) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for t := 0; t < n; t++ {
		if a[t] == b[t] {
			return true
		}
	}
	return false
}

// PairMeetsFrom simulates two fresh √c-walks from x and y (both alive at
// step 0, positions distinct unless x==y) and reports whether they ever
// meet at a step ≥ 1. This is the MC estimator's primitive for S(x,y) when
// combined with the step-0 check, and Algorithm 3's tail continuation.
func (w *Walker) PairMeetsFrom(x, y graph.NodeID) bool {
	for {
		nx, ax := w.step(x)
		ny, ay := w.step(y)
		if !ax || !ay {
			return false
		}
		x, y = nx, ny
		if x == y {
			return true
		}
	}
}

// PairNoMeet simulates two independent √c-walks from the same node k and
// reports whether they do NOT meet at any step ≥ 1 — exactly the Bernoulli
// trial of paper Algorithm 2, whose success probability is D(k,k).
func (w *Walker) PairNoMeet(k graph.NodeID) bool {
	return !w.PairMeetsFrom(k, k)
}

// NonStopPrefixPair simulates the special walk pair of paper Algorithm 3:
// both walks take `prefix` forced (non-stopping) steps. It returns the two
// end positions and ok=true only if (a) neither walk hit a dead end — a
// dead end makes survival past it impossible under the true measure — and
// (b) the walks did not meet at any step 1..prefix (those meetings belong
// to the deterministically-computed Σ Z_ℓ part).
func (w *Walker) NonStopPrefixPair(k graph.NodeID, prefix int) (x, y graph.NodeID, ok bool) {
	x, y = k, k
	for step := 0; step < prefix; step++ {
		xin := w.g.InNeighbors(x)
		yin := w.g.InNeighbors(y)
		if len(xin) == 0 || len(yin) == 0 {
			return x, y, false
		}
		x = xin[w.r.Intn(len(xin))]
		y = yin[w.r.Intn(len(yin))]
		if x == y {
			return x, y, false
		}
	}
	return x, y, true
}

// StopDistribution estimates, by simulation, the probability that a √c-walk
// from source stops at each node (the full PPR vector π_source). Used by
// tests to cross-validate internal/ppr against the walk process itself.
func (w *Walker) StopDistribution(source graph.NodeID, samples int) []float64 {
	counts := make([]float64, w.g.N())
	for s := 0; s < samples; s++ {
		v := source
		for {
			next, alive := w.step(v)
			if !alive {
				break
			}
			v = next
		}
		counts[v]++
	}
	for i := range counts {
		counts[i] /= float64(samples)
	}
	return counts
}

// MeetFraction runs `samples` Algorithm-2 trials at node k and returns the
// fraction that met (an estimator of 1 − D(k,k)).
func (w *Walker) MeetFraction(k graph.NodeID, samples int) float64 {
	met := 0
	for s := 0; s < samples; s++ {
		if !w.PairNoMeet(k) {
			met++
		}
	}
	return float64(met) / float64(samples)
}
