package walk

import (
	"math"
	"testing"

	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/linalg"
	"github.com/exactsim/exactsim/internal/ppr"
)

const c = 0.6

func TestNewWalkerValidatesC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("c=1 accepted")
		}
	}()
	NewWalker(gen.Cycle(3), 1.0, 1)
}

func TestTrajectoryBasics(t *testing.T) {
	g := gen.Cycle(5)
	w := NewWalker(g, c, 7)
	for trial := 0; trial < 200; trial++ {
		tr := w.Trajectory(0, 50, nil)
		if tr[0] != 0 {
			t.Fatal("trajectory must start at source")
		}
		if len(tr) > 51 {
			t.Fatalf("trajectory exceeded maxSteps: %d", len(tr))
		}
		// on a cycle, step t must be at node (0 - t) mod 5
		for i, v := range tr {
			want := int32(((0-i)%5 + 5) % 5)
			if v != want {
				t.Fatalf("cycle walk step %d at %d want %d", i, v, want)
			}
		}
	}
}

func TestTrajectoryStopsAtDeadEnd(t *testing.T) {
	g := gen.Path(3) // 0→1→2; node 0 has no in-neighbors
	w := NewWalker(g, 0.99, 3)
	for trial := 0; trial < 100; trial++ {
		tr := w.Trajectory(2, 100, nil)
		if len(tr) > 3 {
			t.Fatalf("walk escaped the path: %v", tr)
		}
	}
}

func TestTrajectoryLengthGeometric(t *testing.T) {
	// On a clique (no dead ends), E[steps] = √c/(1−√c).
	g := gen.Clique(20)
	w := NewWalker(g, c, 11)
	const trials = 200000
	total := 0
	for i := 0; i < trials; i++ {
		total += len(w.Trajectory(0, 1000, nil)) - 1
	}
	sqrtC := math.Sqrt(c)
	want := sqrtC / (1 - sqrtC)
	got := float64(total) / trials
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("mean walk length %g want %g", got, want)
	}
}

func TestTrajectoriesMeet(t *testing.T) {
	cases := []struct {
		a, b []graph.NodeID
		want bool
	}{
		{[]int32{0, 1, 2}, []int32{3, 1, 4}, true},    // meet at step 1
		{[]int32{0, 1, 2}, []int32{3, 4, 5}, false},   // never aligned
		{[]int32{0, 1}, []int32{3, 4, 1}, false},      // same node, different steps
		{[]int32{0}, []int32{0, 4, 1}, true},          // step-0 identity
		{[]int32{0, 1, 2, 9}, []int32{3, 4, 2}, true}, // meet at step 2
		{nil, []int32{1}, false},
	}
	for i, cse := range cases {
		if got := TrajectoriesMeet(cse.a, cse.b); got != cse.want {
			t.Fatalf("case %d: got %v", i, got)
		}
	}
}

func TestMeetFractionOnCycle(t *testing.T) {
	// Single in-neighbor everywhere: both walks survive step 1 with
	// probability c and then necessarily collide, so Pr[meet] = c.
	g := gen.Cycle(6)
	w := NewWalker(g, c, 5)
	got := w.MeetFraction(0, 200000)
	if math.Abs(got-c) > 0.005 {
		t.Fatalf("cycle meet fraction %g want %g", got, c)
	}
}

func TestMeetFractionOnStar(t *testing.T) {
	// From the center of an (n−1)-leaf star:
	// M = c·[1/(n−1) + (n−2)/(n−1)·c]  (distinct leaves then both → center).
	n := 8
	g := gen.Star(n)
	w := NewWalker(g, c, 13)
	leaves := float64(n - 1)
	want := c * (1/leaves + (leaves-1)/leaves*c)
	got := w.MeetFraction(0, 200000)
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("star meet fraction %g want %g", got, want)
	}
}

func TestMeetFractionOnClique(t *testing.T) {
	// Closed form via two-state symmetry: from distinct nodes,
	// M' = c·[(n−2)/(n−1)² + (1−(n−2)/(n−1)²)·M'];
	// from equal nodes, M = c·[1/(n−1) + (n−2)/(n−1)·M'].
	n := 5
	g := gen.Clique(n)
	w := NewWalker(g, c, 17)
	q := float64(n-2) / float64((n-1)*(n-1))
	mPrime := c * q / (1 - c*(1-q))
	want := c * (1/float64(n-1) + float64(n-2)/float64(n-1)*mPrime)
	got := w.MeetFraction(0, 300000)
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("clique meet fraction %g want %g", got, want)
	}
}

func TestMeetFractionDeadEnds(t *testing.T) {
	// Node with no in-neighbors: walks stop immediately, never meet.
	g := gen.Path(4)
	w := NewWalker(g, c, 19)
	if got := w.MeetFraction(0, 1000); got != 0 {
		t.Fatalf("dead-end meet fraction %g", got)
	}
	// In-degree 1 (node 1 on the path): meet iff both survive → c.
	got := w.MeetFraction(1, 200000)
	if math.Abs(got-c) > 0.005 {
		t.Fatalf("din=1 meet fraction %g want %g", got, c)
	}
}

func TestPairMeetsFromDistinct(t *testing.T) {
	// Two distinct leaves of a star: both must move to the center
	// simultaneously (prob c) to meet; otherwise at least one stopped.
	g := gen.Star(6)
	w := NewWalker(g, c, 23)
	const trials = 200000
	met := 0
	for i := 0; i < trials; i++ {
		if w.PairMeetsFrom(1, 2) {
			met++
		}
	}
	got := float64(met) / trials
	if math.Abs(got-c) > 0.005 {
		t.Fatalf("leaf pair meet %g want %g", got, c)
	}
}

func TestNonStopPrefixPair(t *testing.T) {
	g := gen.Clique(10)
	w := NewWalker(g, c, 29)
	for trial := 0; trial < 1000; trial++ {
		x, y, ok := w.NonStopPrefixPair(0, 3)
		if ok && x == y {
			t.Fatal("ok pair ended at identical nodes after prefix (they met)")
		}
		if x < 0 || x >= 10 || y < 0 || y >= 10 {
			t.Fatal("positions out of range")
		}
	}
}

func TestNonStopPrefixPairDeadEnd(t *testing.T) {
	g := gen.Path(3)
	w := NewWalker(g, c, 31)
	// From node 2, non-stop prefix of 5 must hit the dead end at node 0.
	for trial := 0; trial < 100; trial++ {
		if _, _, ok := w.NonStopPrefixPair(2, 5); ok {
			t.Fatal("walk through a dead end reported ok")
		}
	}
}

func TestNonStopPrefixPairZeroPrefix(t *testing.T) {
	g := gen.Clique(4)
	w := NewWalker(g, c, 37)
	x, y, ok := w.NonStopPrefixPair(2, 0)
	if !ok || x != 2 || y != 2 {
		t.Fatalf("zero prefix: got (%d,%d,%v)", x, y, ok)
	}
}

func TestStopDistributionMatchesPPR(t *testing.T) {
	// On a dead-end-free graph the walk's stop distribution is the full PPR
	// vector (internal/ppr computes it by linear algebra).
	g := gen.Clique(8)
	op := linalg.NewOperator(g, 1)
	hops := ppr.HopsDense(op, 0, ppr.Config{C: c, L: 60})
	want := make([]float64, g.N())
	for _, h := range hops {
		for k, v := range h {
			want[k] += v
		}
	}
	w := NewWalker(g, c, 41)
	got := w.StopDistribution(0, 300000)
	for k := range want {
		if math.Abs(got[k]-want[k]) > 0.005 {
			t.Fatalf("stop distribution at %d: %g want %g", k, got[k], want[k])
		}
	}
}

func TestForkIndependence(t *testing.T) {
	g := gen.Clique(6)
	w := NewWalker(g, c, 43)
	f := w.Fork()
	// forked walker must be usable and deterministic given the parent seed
	a := f.MeetFraction(0, 1000)
	w2 := NewWalker(g, c, 43)
	b := w2.Fork().MeetFraction(0, 1000)
	if a != b {
		t.Fatalf("forked walkers not reproducible: %g vs %g", a, b)
	}
}

func BenchmarkPairNoMeet(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 5, 1)
	w := NewWalker(g, c, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.PairNoMeet(int32(i % g.N()))
	}
}

func BenchmarkTrajectory(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 5, 1)
	w := NewWalker(g, c, 1)
	var buf []graph.NodeID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = w.Trajectory(int32(i%g.N()), 100, buf)
	}
}
