package core

import "time"

// now and since are the kernel's only sanctioned wall-clock access. They
// exist to fill the phase-timing telemetry of Result (ForwardTime,
// DiagTime, ...), which reports how long a phase took but never feeds a
// score: rngsource bans direct time.Now in kernel packages, so routing
// every timing read through these two lines keeps the whole clock
// surface reviewable in one place.
func now() time.Time {
	return time.Now() //lint:nondeterministic-ok phase-timing telemetry only; durations never feed scored output
}

func since(t time.Time) time.Duration {
	return time.Since(t) //lint:nondeterministic-ok phase-timing telemetry only; durations never feed scored output
}
