package core

import (
	"math"
	"testing"

	"github.com/exactsim/exactsim/internal/diag"
	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/powermethod"
	"github.com/exactsim/exactsim/internal/rng"
)

const c = 0.6

func randomGraph(seed uint64, n, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func maxErr(got, want []float64) float64 {
	d := 0.0
	for i := range got {
		if x := math.Abs(got[i] - want[i]); x > d {
			d = x
		}
	}
	return d
}

func groundTruth(g *graph.Graph) *powermethod.Matrix {
	return powermethod.Compute(g, powermethod.Options{C: c, L: 60})
}

func TestOptionsValidation(t *testing.T) {
	g := gen.Cycle(4)
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := New(g, Options{C: 1.5}); err == nil {
		t.Fatal("c=1.5 accepted")
	}
	if _, err := New(g, Options{Epsilon: 2}); err == nil {
		t.Fatal("eps=2 accepted")
	}
	if _, err := New(g, Options{SampleFactor: -1}); err == nil {
		t.Fatal("negative SampleFactor accepted")
	}
	e, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	o := e.Options()
	if o.C != DefaultC || o.Epsilon != ExactEpsilon || o.Workers != 1 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if o.MaxSamplesPerNode != 1<<16 || o.MaxExploreEdges != 1<<22 {
		t.Fatalf("cap defaults not applied: %+v", o)
	}
}

func TestSourceRangeChecked(t *testing.T) {
	g := gen.Cycle(4)
	e, _ := New(g, Options{Epsilon: 0.1})
	if _, err := e.SingleSource(-1); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := e.SingleSource(4); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := e.SingleSourceWithD(0, make([]float64, 3)); err == nil {
		t.Fatal("short diagonal accepted")
	}
}

func TestBasicMatchesPowerMethod(t *testing.T) {
	g := randomGraph(11, 40, 160)
	truth := groundTruth(g)
	e, err := New(g, Options{Epsilon: 1e-2, Seed: 7, Optimized: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int32{0, 7, 23} {
		res, err := e.SingleSource(src)
		if err != nil {
			t.Fatal(err)
		}
		if got := maxErr(res.Scores, truth.Row(int(src))); got > 1e-2 {
			t.Fatalf("source %d: basic MaxError %g > eps", src, got)
		}
	}
}

func TestOptimizedMatchesPowerMethod(t *testing.T) {
	g := randomGraph(13, 40, 160)
	truth := groundTruth(g)
	e, err := New(g, Options{Epsilon: 1e-3, Seed: 9, Optimized: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int32{0, 11, 39} {
		res, err := e.SingleSource(src)
		if err != nil {
			t.Fatal(err)
		}
		if got := maxErr(res.Scores, truth.Row(int(src))); got > 1e-3 {
			t.Fatalf("source %d: optimized MaxError %g > eps", src, got)
		}
	}
}

func TestOptimizedTightEpsilon(t *testing.T) {
	// ε=1e-5 on a small scale-free graph: the variance-targeted capping
	// must hold the measured error at or below the configured ε.
	g := gen.BarabasiAlbert(60, 3, 17)
	truth := groundTruth(g)
	e, err := New(g, Options{Epsilon: 1e-5, Seed: 21, Optimized: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SingleSource(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(res.Scores, truth.Row(5)); got > 1e-5 {
		t.Fatalf("MaxError %g > 1e-5", got)
	}
}

func TestSelfScoreNearOne(t *testing.T) {
	g := gen.BarabasiAlbert(80, 3, 19)
	e, _ := New(g, Options{Epsilon: 1e-3, Seed: 3, Optimized: true})
	res, err := e.SingleSource(10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Scores[10]-1) > 1e-3 {
		t.Fatalf("ŝ(source) = %g", res.Scores[10])
	}
}

func TestExactDVariantIsDeterministicExact(t *testing.T) {
	// With the exact diagonal, the only error sources are the c^L tail and
	// (optimized) sparsification: at ε=1e-6 the result must match the power
	// method within 1e-6 with zero randomness.
	g := randomGraph(23, 30, 120)
	truth := groundTruth(g)
	dExact := diag.ExactByIteration(g, c, 80)
	for _, optimized := range []bool{false, true} {
		e, _ := New(g, Options{Epsilon: 1e-6, Optimized: optimized})
		res, err := e.SingleSourceWithD(3, dExact)
		if err != nil {
			t.Fatal(err)
		}
		if got := maxErr(res.Scores, truth.Row(3)); got > 1e-6 {
			t.Fatalf("optimized=%v: exact-D MaxError %g", optimized, got)
		}
	}
}

func TestParSimDiagonalShowsBias(t *testing.T) {
	// D=(1−c)·I is the ParSim approximation; the paper stresses it ignores
	// the first-meeting constraint. On a graph with hubs the bias must be
	// visible — and far larger than the exact-D error.
	g := gen.Star(20)
	truth := groundTruth(g)
	dPar := make([]float64, g.N())
	for i := range dPar {
		dPar[i] = 1 - c
	}
	e, _ := New(g, Options{Epsilon: 1e-6})
	res, err := e.SingleSourceWithD(1, dPar)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(res.Scores, truth.Row(1)); got < 1e-3 {
		t.Fatalf("ParSim diagonal unexpectedly accurate: MaxError %g", got)
	}
}

func TestDeterministicAcrossRunsAndWorkers(t *testing.T) {
	g := gen.BarabasiAlbert(100, 4, 29)
	run := func(workers int) []float64 {
		e, _ := New(g, Options{Epsilon: 1e-3, Seed: 55, Optimized: true, Workers: workers})
		res, err := e.SingleSource(17)
		if err != nil {
			t.Fatal(err)
		}
		return res.Scores
	}
	a, b, p := run(1), run(1), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs differ at %d", i)
		}
		if a[i] != p[i] {
			t.Fatalf("parallel run differs at %d", i)
		}
	}
}

func TestBasicAndOptimizedAgree(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 31)
	eb, _ := New(g, Options{Epsilon: 1e-3, Seed: 1, Optimized: false})
	eo, _ := New(g, Options{Epsilon: 1e-3, Seed: 2, Optimized: true})
	rb, err := eb.SingleSource(8)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := eo.SingleSource(8)
	if err != nil {
		t.Fatal(err)
	}
	if got := maxErr(rb.Scores, ro.Scores); got > 2e-3 {
		t.Fatalf("basic and optimized disagree by %g", got)
	}
}

func TestOptimizedUsesFewerSamples(t *testing.T) {
	// π²-sampling must allocate far fewer walk pairs than π-sampling at
	// the same ε (‖π‖² < 1); this is the Lemma-3 speedup. ε is chosen
	// loose enough that the per-node cap binds neither allocation (under
	// saturation both schemes flatten to cap·support and the comparison
	// would be vacuous).
	g := gen.BarabasiAlbert(300, 4, 37)
	eb, _ := New(g, Options{Epsilon: 5e-2, Seed: 1, Optimized: false})
	eo, _ := New(g, Options{Epsilon: 5e-2, Seed: 1, Optimized: true})
	rb, _ := eb.SingleSource(12)
	ro, _ := eo.SingleSource(12)
	if ro.TotalSamples*2 > rb.TotalSamples {
		t.Fatalf("optimized samples %d not well below basic %d",
			ro.TotalSamples, rb.TotalSamples)
	}
	if ro.PiNorm2 <= 0 || ro.PiNorm2 > 1 {
		t.Fatalf("PiNorm2 = %g", ro.PiNorm2)
	}
}

func TestMemoryAccountingShape(t *testing.T) {
	// Optimized mode must report much less extra memory than basic at
	// small ε (sparse hop vectors vs dense n·L) — Table 3's comparison.
	g := gen.BarabasiAlbert(2000, 4, 41)
	eb, _ := New(g, Options{Epsilon: 1e-4, Seed: 1, Optimized: false, SampleFactor: 1e-6})
	eo, _ := New(g, Options{Epsilon: 1e-4, Seed: 1, Optimized: true, SampleFactor: 1e-6})
	rb, _ := eb.SingleSource(3)
	ro, _ := eo.SingleSource(3)
	if rb.ExtraBytes <= ro.ExtraBytes {
		t.Fatalf("basic extra %d should exceed optimized extra %d",
			rb.ExtraBytes, ro.ExtraBytes)
	}
}

func TestResultAccounting(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 43)
	e, _ := New(g, Options{Epsilon: 1e-2, Seed: 5, Optimized: true})
	res, err := e.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.L <= 0 || res.TotalSamples <= 0 || res.DNodes <= 0 {
		t.Fatalf("accounting: %+v", res)
	}
	if res.DNodes > g.N() {
		t.Fatalf("DNodes %d > n", res.DNodes)
	}
	if res.ExtraBytes <= 0 {
		t.Fatal("ExtraBytes not recorded")
	}
}

func TestTopK(t *testing.T) {
	// Two communities: top-k of a node must be dominated by its own side.
	g := gen.TwoCommunities(25, 0.4, 0.01, 47)
	e, _ := New(g, Options{Epsilon: 1e-3, Seed: 11, Optimized: true})
	top, res, err := e.TopK(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("got %d entries", len(top))
	}
	for _, entry := range top {
		if entry.Idx == 3 {
			t.Fatal("source included in its own top-k")
		}
		if math.Abs(res.Scores[entry.Idx]-entry.Val) > 1e-15 {
			t.Fatal("entry value does not match score vector")
		}
	}
	sameSide := 0
	for _, entry := range top {
		if entry.Idx < 25 {
			sameSide++
		}
	}
	if sameSide < 7 {
		t.Fatalf("only %d/10 top-k from the source community", sameSide)
	}
}

func TestDisconnectedSource(t *testing.T) {
	// A node with no in-edges: π has only the level-0 spike; the result
	// must still be valid, with ŝ(source) ≈ D(source) / ... = 1.
	b := graph.NewBuilder(5)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	e, _ := New(g, Options{Epsilon: 1e-3, Seed: 1, Optimized: true})
	res, err := e.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Scores[0]-1) > 1e-3 {
		t.Fatalf("isolated source self-score %g", res.Scores[0])
	}
	for j := 1; j < 5; j++ {
		if res.Scores[j] != 0 {
			t.Fatalf("isolated source has nonzero similarity to %d", j)
		}
	}
}

func TestScoresWithinBounds(t *testing.T) {
	g := gen.BarabasiAlbert(150, 4, 53)
	e, _ := New(g, Options{Epsilon: 1e-3, Seed: 13, Optimized: true})
	res, err := e.SingleSource(5)
	if err != nil {
		t.Fatal(err)
	}
	for j, s := range res.Scores {
		if s < -1e-3 || s > 1+1e-3 {
			t.Fatalf("score %d = %g outside [0,1] beyond ε", j, s)
		}
		if int32(j) != 5 && s > c+1e-3 {
			t.Fatalf("off-source score %g exceeds c+ε", s)
		}
	}
}

func BenchmarkOptimizedEps1e3(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 5, 1)
	e, _ := New(g, Options{Epsilon: 1e-3, Seed: 1, Optimized: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.SingleSource(int32(i % g.N())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBasicEps1e3(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 5, 1)
	e, _ := New(g, Options{Epsilon: 1e-3, Seed: 1, Optimized: false})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.SingleSource(int32(i % g.N())); err != nil {
			b.Fatal(err)
		}
	}
}
