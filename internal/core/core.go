// Package core implements ExactSim, the paper's contribution: the first
// probabilistic-exact single-source SimRank algorithm for large graphs.
//
// Given a source v_i and error target ε, ExactSim returns ŝ with
// max_j |ŝ(j) − S(i,j)| ≤ ε with probability ≥ 1 − 1/n, in
// O(log n/ε² + m·log(1/ε)) time — crucially, the 1/ε² term does not
// multiply n, which is what makes ε = 10⁻⁷ (the float ulp, the paper's
// exactness threshold) reachable on billion-edge graphs.
//
// The three phases of Algorithm 1:
//
//  1. Forward: hop vectors π_i^ℓ = (√c·P)^ℓ(1−√c)e_i for ℓ = 0..L,
//     L = ⌈log_{1/c}(2/ε)⌉.
//  2. Diagonal: estimate D(k,k) with R(k) walk-pair samples per node.
//  3. Backward: s^ℓ = √c·Pᵀ·s^{ℓ−1} + D̂·π_i^{L−ℓ}/(1−√c); return s^L.
//
// The Optimized mode applies the paper's §3.2 techniques: sparse
// linearization (hop vectors truncated at (1−√c)²ε′, memory O(1/ε)),
// π²-proportional sample allocation (samples shrink by ‖π_i‖², large on
// power-law graphs), and Algorithm-3 local deterministic exploitation for
// D. Per Lemma 2's remark, Optimized runs internally at ε′ = ε/2 so the
// sparsification error keeps the end-to-end guarantee at ε.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/exactsim/exactsim/internal/diag"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/linalg"
	"github.com/exactsim/exactsim/internal/ppr"
	"github.com/exactsim/exactsim/internal/sparse"
)

// DefaultC is the decay factor used by the paper's evaluation (§4).
const DefaultC = 0.6

// ExactEpsilon is ε_min = 10⁻⁷: at this additive error the result matches
// the ground truth at float precision (Definition 1).
const ExactEpsilon = 1e-7

// Options configures an Engine.
type Options struct {
	// C is the SimRank decay factor in (0,1). Zero selects DefaultC.
	C float64
	// Epsilon is the additive error target in (0,1). Zero selects
	// ExactEpsilon, i.e. probabilistic-exact mode.
	Epsilon float64
	// Optimized enables sparse linearization, π²-sampling and Algorithm-3
	// D estimation (the paper's "ExactSim"); false gives "Basic ExactSim",
	// the ablation baseline of Figure 9 and Table 3.
	Optimized bool
	// Workers bounds parallelism. ≤1 reproduces the paper's single-thread
	// evaluation mode.
	Workers int
	// Seed makes every random choice deterministic. Two runs with equal
	// seeds and options return identical vectors regardless of Workers.
	Seed uint64
	// SampleFactor scales the theoretical sample count
	// R = 6·ln n/((1−√c)⁴ε²). 0 selects 1.0 (the paper's constant).
	SampleFactor float64
	// MaxSamplesPerNode caps R(k). The paper's theoretical R(k) is
	// astronomically conservative (≈10¹⁴ pairs for the source node at
	// ε=10⁻⁷); published runtimes imply the authors' implementation bounds
	// it in practice. In Optimized mode a capped node is compensated by
	// deeper Algorithm-3 exploration: reaching ℓ*(k) = ⌈log_{1/c}F(k)⌉/2
	// extra levels multiplies the tail variance by c^{2ℓ*} = 1/F(k),
	// restoring exactly the theoretical variance target (see DESIGN.md §4).
	// 0 selects 1<<16.
	MaxSamplesPerNode int
	// MaxExploreEdges caps the per-node Algorithm-3 deterministic
	// exploration work (edges pushed). 0 selects 1<<22.
	MaxExploreEdges int64
	// Ablation knobs, honoured only in Optimized mode (DESIGN.md §3,
	// "ablation-extra"): disable one §3.2 technique at a time.
	//
	// NoPiSquaredSampling falls back to the basic π-proportional sample
	// allocation (keeping sparse vectors and Algorithm 3).
	NoPiSquaredSampling bool
	// NoLocalExploit estimates D with Algorithm 2 instead of Algorithm 3
	// (keeping sparse vectors and π²-sampling; capped nodes lose their
	// depth compensation, so accuracy degrades — that is the point).
	NoLocalExploit bool
	// DiagIndex, when non-nil, shares the Diagonal phase's sample chunks
	// and exploration results across queries (and across engines bound to
	// the same graph, decay and seed — a Service shares one per graph
	// epoch). D(k,k) is a property of the graph, not of the query source,
	// so on a serving workload the index turns the dominant phase's cost
	// from per-query into per-epoch. With an index attached, per-node
	// sample allowances are rounded up to the next power of two so that
	// different sources land on identical (samples, depth, budget) cells
	// for shared nodes — at most 2× extra walk pairs on a cold node, in
	// exchange for near-total reuse on warm ones, and a strictly tighter
	// variance than the unrounded allowance. Results remain bit-identical
	// across worker counts, query order, and cache state (cold vs warm).
	DiagIndex *diag.SampleIndex
}

func (o *Options) normalize() error {
	// NaN fails every ordered comparison, so the range checks below would
	// silently wave it through (NaN <= 0 is false) and poison the whole
	// run; reject non-finite knobs explicitly first.
	for _, knob := range []struct {
		name string
		v    float64
	}{{"C", o.C}, {"Epsilon", o.Epsilon}, {"SampleFactor", o.SampleFactor}} {
		if math.IsNaN(knob.v) || math.IsInf(knob.v, 0) {
			return fmt.Errorf("core: %s=%g is not finite", knob.name, knob.v)
		}
	}
	if o.C == 0 {
		o.C = DefaultC
	}
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("core: decay factor c=%g outside (0,1)", o.C)
	}
	if o.Epsilon == 0 {
		o.Epsilon = ExactEpsilon
	}
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return fmt.Errorf("core: epsilon=%g outside (0,1)", o.Epsilon)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.SampleFactor == 0 {
		o.SampleFactor = 1
	}
	if o.SampleFactor < 0 {
		return fmt.Errorf("core: negative SampleFactor %g", o.SampleFactor)
	}
	if o.MaxSamplesPerNode <= 0 {
		o.MaxSamplesPerNode = 1 << 16
	}
	if o.MaxExploreEdges <= 0 {
		o.MaxExploreEdges = 1 << 22
	}
	return nil
}

// Result carries a single-source answer plus the cost accounting the
// experiment harness reports (Figures 1/5/9, Table 3).
type Result struct {
	// Scores holds ŝ(j) for every node j; Scores[source] ≈ 1.
	Scores []float64
	// L is the truncation level used.
	L int
	// TotalSamples is Σ_k R(k), the number of √c-walk pairs simulated.
	TotalSamples int64
	// DNodes is the number of nodes whose D(k,k) entry was estimated.
	DNodes int
	// PiNorm2 is ‖π_i‖², the quantity that drives π²-sampling gains.
	PiNorm2 float64
	// ExtraBytes estimates the peak working memory beyond the graph:
	// hop vectors + diagonal estimates + dense work vectors.
	ExtraBytes int64
	// Phase timings.
	ForwardTime, DiagTime, BackwardTime time.Duration
}

// Engine answers single-source and top-k SimRank queries over one graph.
// Construct with New; an Engine is safe for concurrent use (per-query
// state comes from internally synchronized pools).
type Engine struct {
	g   *graph.Graph
	op  *linalg.Operator
	opt Options

	// dPool recycles the diagonal phase's per-worker estimators (each owns
	// O(n) scratch) across queries.
	dPool *diag.EstimatorPool
	// scratch recycles the dense per-query work vectors; under a sustained
	// Service load the only per-query dense allocation left is the
	// returned Scores vector itself.
	scratch sync.Pool
}

// queryScratch is one query's reusable dense state. Invariants while
// pooled: dHat is all-zero; tmpF tracks exactly the possibly-nonzero
// support of tmp (dense meaning "anything"); sF is empty.
type queryScratch struct {
	tmp  []float64
	dHat []float64
	pi   []float64 // basic mode only, no cleanliness invariant
	tmpF *linalg.Frontier
	sF   *linalg.Frontier
}

// New validates options and builds an engine for g.
func New(g *graph.Graph, opt Options) (*Engine, error) {
	if g == nil {
		return nil, errors.New("core: nil graph")
	}
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	e := &Engine{g: g, op: linalg.NewOperator(g, opt.Workers), opt: opt}
	e.dPool = diag.NewEstimatorPool(g, e.opt.C)
	return e, nil
}

// getScratch returns pooled (or fresh) per-query dense state.
func (e *Engine) getScratch() *queryScratch {
	if sc, ok := e.scratch.Get().(*queryScratch); ok {
		return sc
	}
	n := e.g.N()
	return &queryScratch{
		tmp:  make([]float64, n),
		dHat: make([]float64, n),
		tmpF: linalg.NewFrontier(n),
		sF:   linalg.NewFrontier(n),
	}
}

// putScratch recycles sc. clean reports that the caller restored the
// invariants (zeroed dHat via its known support, synced the frontiers); an
// unclean return — an error path that bailed mid-computation — falls back
// to a full restore here.
func (e *Engine) putScratch(sc *queryScratch, clean bool) {
	if !clean {
		clear(sc.dHat)
		sc.sF.Reset()
		sc.tmpF.Reset()
		sc.tmpF.MarkDense()
	}
	e.scratch.Put(sc)
}

// Options returns the engine's normalized options.
func (e *Engine) Options() Options { return e.opt }

// Graph returns the underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// SingleSource runs ExactSim (Algorithm 1, plus §3.2 optimizations when
// enabled) for the given source node.
func (e *Engine) SingleSource(source graph.NodeID) (*Result, error) {
	return e.SingleSourceCtx(context.Background(), source)
}

// SingleSourceCtx is SingleSource under a context. Cancellation is
// cooperative and fine-grained: the forward phase checks between hop
// levels, the diagonal phase checks between nodes and every few thousand
// walk-pair samples (the phase that dominates at tight ε), and the
// backward phase checks between levels. A cancelled query returns
// ctx.Err() — typically context.Canceled or context.DeadlineExceeded —
// and no partial result.
func (e *Engine) SingleSourceCtx(ctx context.Context, source graph.NodeID) (*Result, error) {
	if source < 0 || int(source) >= e.g.N() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", source, e.g.N())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.opt.Optimized {
		return e.singleSourceOptimized(ctx, source)
	}
	return e.singleSourceBasic(ctx, source)
}

// lnN returns max(ln n, 1) so sample counts stay positive on tiny graphs.
func lnN(n int) float64 {
	l := math.Log(float64(n))
	if l < 1 {
		return 1
	}
	return l
}

// capSamples converts a theoretical (possibly astronomical) sample count to
// the per-node allowance.
func (e *Engine) capSamples(rTheory float64) int {
	if rTheory < 1 {
		return 1
	}
	if rTheory > float64(e.opt.MaxSamplesPerNode) {
		return e.opt.MaxSamplesPerNode
	}
	return int(rTheory)
}

// quantizeSamples rounds a theoretical sample count up to the next power of
// two when a DiagIndex is attached. Sample allowances derive from π_i(k),
// which varies continuously with the source i — unquantized, two queries
// would almost never agree on R(k) for a shared node k, and the index would
// cache streams nobody revisits. Quantizing collapses the allowances into
// octaves: per node only a handful of distinct (samples, depth, budget)
// cells ever occur, each sampled once per epoch and reused thereafter.
// Rounding up can only increase samples (and, for capped nodes, the
// compensation depth), so the Lemma-3 variance target still holds. The
// repeated doubling is exact in float64 far past any representable count,
// making the quantized value a pure function of its input on every path.
func (e *Engine) quantizeSamples(rTheory float64) float64 {
	if e.opt.DiagIndex == nil {
		return rTheory
	}
	p := 1.0
	for p < rTheory {
		p *= 2
	}
	return p
}

// singleSourceBasic is Algorithm 1 verbatim: dense hop vectors,
// π-proportional sampling, Algorithm-2 D estimation.
func (e *Engine) singleSourceBasic(ctx context.Context, source graph.NodeID) (*Result, error) {
	c, eps := e.opt.C, e.opt.Epsilon
	sqrtC := math.Sqrt(c)
	n := e.g.N()
	L := ppr.Levels(c, eps)
	res := &Result{L: L}

	sc := e.getScratch()
	clean := false
	defer func() { e.putScratch(sc, clean) }()
	if sc.pi == nil {
		sc.pi = make([]float64, n)
	}

	t0 := now()
	hops, err := ppr.HopsDenseCtx(ctx, e.op, source, ppr.Config{C: c, L: L})
	if err != nil {
		return nil, err
	}
	pi := sc.pi
	clear(pi)
	for _, h := range hops {
		for k, v := range h {
			pi[k] += v
		}
	}
	res.ForwardTime = since(t0)

	// R = 6·ln n/((1−√c)⁴·ε²); R(k) = ⌈R·π_i(k)⌉ (Algorithm 1 lines 6-8),
	// capped per node (Basic mode takes the cap uncompensated: it is the
	// ablation baseline, and Algorithm 2 has no depth knob to spend).
	t0 = now()
	gamma := math.Pow(1-sqrtC, 4)
	R := e.opt.SampleFactor * 6 * lnN(n) / (gamma * eps * eps)
	var reqs []diag.Request
	for k := 0; k < n; k++ {
		if pi[k] <= 0 {
			continue
		}
		rk := e.capSamples(e.quantizeSamples(math.Ceil(R * pi[k])))
		reqs = append(reqs, diag.Request{Node: int32(k), Samples: rk})
		res.TotalSamples += int64(rk)
	}
	dvals, err := diag.BatchCtx(ctx, e.g, reqs, diag.Options{
		C: c, Improved: false, Workers: e.opt.Workers, Seed: e.opt.Seed,
		Pool: e.dPool, Index: e.opt.DiagIndex,
	})
	if err != nil {
		return nil, err
	}
	dHat := sc.dHat
	for i, req := range reqs {
		dHat[req.Node] = dvals[i]
	}
	res.DNodes = len(reqs)
	res.DiagTime = since(t0)

	// Backward accumulation (Algorithm 1 lines 9-13). The basic engine's
	// products are dense, so every tmp entry is overwritten before it is
	// read and the pooled array needs no clearing.
	t0 = now()
	s := make([]float64, n)
	tmp := sc.tmp
	invOneMinusSqrtC := 1 / (1 - sqrtC)
	for j := L; j >= 0; j-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if j < L {
			e.op.ApplyPT(tmp, s, sqrtC)
			s, tmp = tmp, s
		}
		hj := hops[j]
		for k := 0; k < n; k++ {
			if hj[k] != 0 {
				s[k] += invOneMinusSqrtC * dHat[k] * hj[k]
			}
		}
	}
	res.BackwardTime = since(t0)
	res.Scores = s
	res.PiNorm2 = ppr.Norm2Squared(pi)
	// hop vectors (n·(L+1) floats) dominate; plus π, D̂, s, tmp.
	res.ExtraBytes = int64(n) * int64(L+1) * 8 // hops
	res.ExtraBytes += 4 * int64(n) * 8         // pi, dHat, s, tmp
	// Restore the pool invariants: dHat zeroed through its known support,
	// tmp (whichever array ended up not being returned) marked unknown —
	// a dense query dirties it wholesale, and basic engines never read it
	// before a dense overwrite anyway.
	for _, req := range reqs {
		dHat[req.Node] = 0
	}
	sc.tmp = tmp
	sc.tmpF.Reset()
	sc.tmpF.MarkDense()
	clean = true
	return res, nil
}

// singleSourceOptimized applies sparse linearization, π²-sampling and
// Algorithm-3 D estimation. Internally it targets ε′ = ε/2 (Lemma 2).
func (e *Engine) singleSourceOptimized(ctx context.Context, source graph.NodeID) (*Result, error) {
	c := e.opt.C
	epsPrime := e.opt.Epsilon / 2
	sqrtC := math.Sqrt(c)
	n := e.g.N()
	L := ppr.Levels(c, epsPrime)
	threshold := (1 - sqrtC) * (1 - sqrtC) * epsPrime
	res := &Result{L: L}

	sc := e.getScratch()
	clean := false
	defer func() { e.putScratch(sc, clean) }()

	t0 := now()
	hops, err := ppr.HopsCtx(ctx, e.op, source, ppr.Config{C: c, L: L, Threshold: threshold})
	if err != nil {
		return nil, err
	}
	piVec := ppr.Sum(hops, n)
	piNorm2 := piVec.Norm2Squared()
	res.PiNorm2 = piNorm2
	res.ForwardTime = since(t0)

	// π²-proportional allocation (Lemma 3): R(k) = ⌈R·π(k)²/‖π‖²⌉ with the
	// total scaled down by ‖π‖²: effectively R(k) = ⌈6·ln n·π(k)²/((1−√c)⁴ε′²)⌉.
	// Nodes whose theoretical R(k) exceeds the cap get a deeper Algorithm-3
	// deterministic phase instead: depth ℓ* = ⌈log_{1/c}(R_theory/R_cap)⌉/2
	// multiplies the tail variance by c^{2ℓ*} = R_cap/R_theory, so the
	// combination meets the same variance target at feasible cost.
	t0 = now()
	gamma := math.Pow(1-sqrtC, 4)
	base := e.opt.SampleFactor * 6 * lnN(n) / (gamma * epsPrime * epsPrime)
	logInvC := math.Log(1 / c)
	reqs := make([]diag.Request, 0, piVec.Len())
	for i, k := range piVec.Idx {
		p := piVec.Val[i]
		var rTheory float64
		if e.opt.NoPiSquaredSampling {
			rTheory = math.Ceil(base * p) // ablation: π-proportional
		} else {
			rTheory = math.Ceil(base * p * p)
		}
		rTheory = e.quantizeSamples(rTheory)
		rk := e.capSamples(rTheory)
		req := diag.Request{Node: k, Samples: rk}
		if rTheory > float64(rk) && !e.opt.NoLocalExploit {
			f := rTheory / float64(rk)
			req.TargetDepth = int(math.Ceil(math.Log(f) / (2 * logInvC)))
			req.EdgeBudget = e.opt.MaxExploreEdges
		}
		reqs = append(reqs, req)
		res.TotalSamples += int64(rk)
	}
	dvals, err := diag.BatchCtx(ctx, e.g, reqs, diag.Options{
		C: c, Improved: !e.opt.NoLocalExploit, Workers: e.opt.Workers, Seed: e.opt.Seed,
		Pool: e.dPool, Index: e.opt.DiagIndex,
	})
	if err != nil {
		return nil, err
	}
	dHat := sc.dHat
	for i, req := range reqs {
		dHat[req.Node] = dvals[i]
	}
	res.DNodes = len(reqs)
	res.DiagTime = since(t0)

	// Backward accumulation over sparse hop vectors. s's support spreads
	// from the source's backward reach, so the Pᵀ products run
	// frontier-aware: early levels scatter over the few reached nodes
	// instead of gathering over all n rows, and the frontiers also track
	// which stale entries of the pooled tmp need zeroing.
	t0 = now()
	s := make([]float64, n)
	tmp := sc.tmp
	sF, tmpF := sc.sF, sc.tmpF
	invOneMinusSqrtC := 1 / (1 - sqrtC)
	for j := L; j >= 0; j-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if j < L {
			e.op.ApplyPTFrontier(tmp, s, sqrtC, sF, tmpF)
			s, tmp = tmp, s
			sF, tmpF = tmpF, sF
		}
		hj := &hops[j]
		for i, k := range hj.Idx {
			s[k] += invOneMinusSqrtC * dHat[k] * hj.Val[i]
			sF.Add(k)
		}
	}
	res.BackwardTime = since(t0)
	res.Scores = s
	res.ExtraBytes = ppr.TotalBytes(hops) + piVec.Bytes()
	res.ExtraBytes += 3 * int64(n) * 8 // dHat, s, tmp
	// Restore the pool invariants: zero dHat through its known support,
	// keep tmp's frontier (it tracks the pooled array's stale entries for
	// the next query), and hand back an empty frontier for the next s —
	// sF tracks the *returned* Scores vector, which the caller owns now.
	for _, req := range reqs {
		dHat[req.Node] = 0
	}
	sc.tmp, sc.tmpF = tmp, tmpF
	sF.Reset()
	sc.sF = sF
	clean = true
	return res, nil
}

// SingleSourceWithD runs the linearized computation with a caller-supplied
// diagonal (len n). With the exact D this is a fully deterministic exact
// single-source method (used to validate the stochastic pipeline); with
// D = (1−c)·I it reproduces the ParSim approximation.
func (e *Engine) SingleSourceWithD(source graph.NodeID, d []float64) (*Result, error) {
	if source < 0 || int(source) >= e.g.N() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", source, e.g.N())
	}
	if len(d) != e.g.N() {
		return nil, fmt.Errorf("core: diagonal has %d entries for n=%d", len(d), e.g.N())
	}
	c, eps := e.opt.C, e.opt.Epsilon
	sqrtC := math.Sqrt(c)
	n := e.g.N()
	L := ppr.Levels(c, eps)
	res := &Result{L: L}

	var threshold float64
	if e.opt.Optimized {
		threshold = (1 - sqrtC) * (1 - sqrtC) * eps / 2
		L = ppr.Levels(c, eps/2)
		res.L = L
	}
	t0 := now()
	hops := ppr.Hops(e.op, source, ppr.Config{C: c, L: L, Threshold: threshold})
	res.ForwardTime = since(t0)

	t0 = now()
	s := make([]float64, n)
	tmp := make([]float64, n)
	invOneMinusSqrtC := 1 / (1 - sqrtC)
	for j := L; j >= 0; j-- {
		if j < L {
			e.op.ApplyPT(tmp, s, sqrtC)
			s, tmp = tmp, s
		}
		hj := &hops[j]
		for i, k := range hj.Idx {
			s[k] += invOneMinusSqrtC * d[k] * hj.Val[i]
		}
	}
	res.BackwardTime = since(t0)
	res.Scores = s
	res.ExtraBytes = ppr.TotalBytes(hops) + 3*int64(n)*8
	return res, nil
}

// TopK returns the k nodes most similar to source (source excluded),
// sorted by descending SimRank, along with the underlying Result.
func (e *Engine) TopK(source graph.NodeID, k int) ([]sparse.Entry, *Result, error) {
	return e.TopKCtx(context.Background(), source, k)
}

// TopKCtx is TopK under a context; see SingleSourceCtx for the
// cancellation granularity.
func (e *Engine) TopKCtx(ctx context.Context, source graph.NodeID, k int) ([]sparse.Entry, *Result, error) {
	res, err := e.SingleSourceCtx(ctx, source)
	if err != nil {
		return nil, nil, err
	}
	return sparse.TopK(res.Scores, k, source), res, nil
}
