// Package plan is the adaptive query planner behind Request.Algorithm ==
// "auto": a per-epoch cost model mapping (epsilon, k, deadline budget,
// priority, diag-index residency) to a concrete registry method and an
// effective epsilon, plus the accuracy-tier ladder that anytime serving
// refines along.
//
// The planner's knowledge splits in two, and the split is the determinism
// argument (DESIGN §13):
//
//   - The STRICT half — requests that opted into neither partial nor
//     degraded answers — is a pure function of (epsilon, k) and the
//     epoch-static graph statistics. Two same-epoch replicas plan such a
//     request identically, so hedged duplicates still race bit-identical
//     answers and "auto" at default settings answers byte-for-byte what
//     the concrete method it reports would have.
//   - The FLEXIBLE half — requests with AllowPartial or AllowDegraded —
//     may additionally consult the calibrated cost model (a one-time
//     microprobe refined online from observed per-query latencies) and
//     the request's remaining deadline, trading accuracy for meeting the
//     budget. Those answers are marked (Plan.Reason, Degraded/Partial),
//     never silently substituted.
//
// Wall clocks and EWMA state are deliberate here: plan is NOT a kernel
// package (internal/lint), because its nondeterminism is confined to
// requests that asked for it.
package plan

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/exactsim/exactsim/internal/algo"
	"github.com/exactsim/exactsim/internal/graph"
)

// Strict thresholds. These are the WHOLE input space of the strict
// planner besides the graph stats — keep them few, and keep the golden
// matrix in plan_test.go in sync.
const (
	// tightEpsilon: at or below this target, ExactSim's guarantees are
	// what the caller is paying for; no substitution.
	tightEpsilon = 0.005
	// largeN: below this node count every method is interactive and the
	// serving default (exactsim) wins on answer quality; the cost model
	// only starts discriminating above it.
	largeN = 50_000
	// powerLawSkew: max-in-degree over average degree at or above this
	// marks a power-law degree sequence — PRSim's cost analysis applies.
	powerLawSkew = 8
)

// Tier-ladder constants (see Tiers).
const (
	// coarsestEpsilon caps how coarse the first anytime tier may be.
	coarsestEpsilon = 0.064
	// tierStep is the per-tier epsilon refinement factor (×4 tighter per
	// rung, i.e. one power-of-two allowance quantization octave squared).
	tierStep = 4.0
)

// Reason strings are the enumerated, wire-stable explanations carried in
// Response.Plan.Reason.
const (
	ReasonTightEpsilon      = "tight-epsilon"
	ReasonLargePowerLaw     = "large-power-law"
	ReasonLargeFlat         = "large-flat"
	ReasonSmallGraphDefault = "small-graph-default"
	ReasonDeadlineDowngrade = "deadline-downgrade"
	ReasonDeadlineLoosen    = "deadline-loosen"
)

// maxLoosenEpsilon caps deadline-driven epsilon loosening, mirroring the
// brownout default: a flexible plan never loosens past this.
const maxLoosenEpsilon = 0.1

// probeSink receives the microprobe's scan checksum so the compiler
// cannot elide the timed loop.
var probeSink atomic.Int64

// Input is one request's planner-relevant shape. Deadline, QueueDwell,
// DiagResidentBytes and PriorityRank are consulted only when Flexible.
type Input struct {
	// Epsilon is the request's error target; 0 means the service default
	// (the planner substitutes its base epsilon for decisions but the
	// caller keeps the 0 sentinel for cache identity).
	Epsilon float64
	// K is the top-k ask (0 = full vector); part of the strict input.
	K int
	// Deadline is the remaining budget (0 = none).
	Deadline time.Duration
	// QueueDwell is the smoothed queue sojourn — time the request will
	// likely spend waiting before a worker touches it.
	QueueDwell time.Duration
	// PriorityRank is the validated priority class rank (0 highest).
	PriorityRank int
	// DiagResidentBytes is the diagonal sample index residency for the
	// current epoch — a warm index discounts ExactSim's estimated cost.
	DiagResidentBytes int64
	// Flexible opts this request into cost-model planning (AllowPartial
	// or AllowDegraded). Strict requests never leave the pure path.
	Flexible bool
}

// Decision is the planner's answer: the concrete method to run and the
// epsilon to run it at.
type Decision struct {
	// Algorithm is the chosen registry method.
	Algorithm string
	// Epsilon is the effective epsilon to run at. Equal to the request's
	// value (including the 0 "service default" sentinel) unless a
	// flexible plan loosened it.
	Epsilon float64
	// Reason is the enumerated explanation (Reason* constants).
	Reason string
	// EstimatedCost is the cost model's latency estimate for the chosen
	// plan; zero for strict decisions (the model is not consulted).
	EstimatedCost time.Duration
}

// Planner is one epoch's cost model. Construct one per graph generation
// (stats are epoch-static); Observe feeds completed-query latencies back
// in so estimates track the machine the epoch actually runs on.
type Planner struct {
	baseEpsilon float64

	// calibrate runs once, on first use: graph stats (the strict half's
	// entire world knowledge) plus the microprobe (flexible half only).
	calibrateOnce sync.Once
	g             *graph.Graph
	stats         graph.Stats
	// nsPerUnit is the microprobe-calibrated cost of one model work unit
	// (~ one adjacency-edge visit), in nanoseconds.
	nsPerUnit float64

	// adjust is the per-algorithm observed/estimated EWMA correction,
	// stored as math.Float64bits for lock-free reads on the query path.
	adjust [len(costModel)]atomic.Uint64

	// autoPlanned counts Plan calls that routed an "auto" request.
	autoPlanned atomic.Int64
}

// New builds the planner for one graph generation. Calibration (an O(n)
// stats scan plus a bounded microprobe) is deferred to first use so graph
// updates stay cheap.
func New(g *graph.Graph, baseEpsilon float64) *Planner {
	if baseEpsilon <= 0 {
		baseEpsilon = algo.DefaultEpsilon
	}
	return &Planner{g: g, baseEpsilon: baseEpsilon}
}

// NewFromStats builds a planner with pinned stats and a fixed unit cost,
// skipping graph access and the microprobe — the constructor golden tests
// and benchmarks use, so decisions are reproducible on any machine.
func NewFromStats(st graph.Stats, baseEpsilon float64) *Planner {
	if baseEpsilon <= 0 {
		baseEpsilon = algo.DefaultEpsilon
	}
	p := &Planner{baseEpsilon: baseEpsilon, stats: st, nsPerUnit: 1}
	p.calibrateOnce.Do(func() {}) // mark calibrated
	return p
}

// calibrated ensures stats and nsPerUnit are populated.
func (p *Planner) calibrated() {
	p.calibrateOnce.Do(func() {
		p.stats = graph.ComputeStats(p.g)
		p.nsPerUnit = microprobe(p.g)
	})
}

// microprobe times a bounded adjacency scan — the memory-bound inner
// shape every registered method shares — and returns ns per visited
// edge, clamped to a sane band so a scheduler hiccup cannot poison the
// whole epoch's estimates.
func microprobe(g *graph.Graph) float64 {
	const probeNodes = 4096
	n := g.N()
	if n == 0 {
		return 1
	}
	if n > probeNodes {
		n = probeNodes
	}
	var units int64
	var sink int64
	start := time.Now()
	for v := 0; v < n; v++ {
		for _, u := range g.InNeighbors(int32(v)) {
			sink += int64(u)
			units++
		}
		units++ // the node visit itself
	}
	elapsed := time.Since(start)
	probeSink.Store(sink) // defeat dead-code elimination of the scan
	per := float64(elapsed.Nanoseconds()) / float64(units)
	if per < 0.1 {
		per = 0.1
	}
	if per > 100 {
		per = 100
	}
	return per
}

// Stats returns the epoch-static graph statistics the strict planner
// decides from.
func (p *Planner) Stats() graph.Stats {
	p.calibrated()
	return p.stats
}

// AutoPlanned returns how many "auto" requests this planner has routed.
func (p *Planner) AutoPlanned() int64 { return p.autoPlanned.Load() }

// Plan maps one "auto" request to a concrete method + effective epsilon.
// Strict inputs take the pure path; flexible inputs may be downgraded or
// loosened to fit their deadline.
func (p *Planner) Plan(in Input) Decision {
	p.calibrated()
	p.autoPlanned.Add(1)
	d := p.strict(in)
	if !in.Flexible || in.Deadline <= 0 {
		return d
	}
	return p.fit(in, d)
}

// strict is the pure half: a function of (epsilon, k) and graph stats
// only. Changing anything here changes which answers "auto" serves —
// update the golden matrix and DESIGN §13 together with it.
func (p *Planner) strict(in Input) Decision {
	eps := in.Epsilon
	if eps == 0 {
		eps = p.baseEpsilon
	}
	out := Decision{Algorithm: "exactsim", Epsilon: in.Epsilon}
	switch {
	case eps <= tightEpsilon:
		out.Reason = ReasonTightEpsilon
	case p.stats.N >= largeN && p.skewed():
		// Power-law degree sequence at a loose target: PRSim's per-query
		// cost concentrates on the indexed hubs (PAPERS.md), beating
		// ExactSim's sampling for the same bound.
		out.Algorithm = "prsim"
		out.Reason = ReasonLargePowerLaw
	case p.stats.N >= largeN:
		// Large but flat: the hub index buys nothing; ProbeSim's
		// index-free probing is the cheapest error-bounded plan.
		out.Algorithm = "probesim"
		out.Reason = ReasonLargeFlat
	default:
		out.Reason = ReasonSmallGraphDefault
	}
	return out
}

// skewed reports a power-law-shaped degree sequence.
func (p *Planner) skewed() bool {
	return p.stats.AvgDegree > 0 &&
		float64(p.stats.MaxInDegree) >= powerLawSkew*p.stats.AvgDegree
}

// fit is the flexible half: keep the strict choice when its estimate fits
// the remaining budget; otherwise loosen epsilon one octave at a time
// (up to maxLoosenEpsilon), then step down to cheaper methods. The
// estimate discounts ExactSim when the diag index is warm (residency) and
// charges expected queue dwell against the deadline.
func (p *Planner) fit(in Input, d Decision) Decision {
	budget := in.Deadline - in.QueueDwell
	if budget <= 0 {
		budget = in.Deadline / 2
	}
	d.EstimatedCost = p.Estimate(d.Algorithm, p.effective(d.Epsilon), in.DiagResidentBytes)
	if d.EstimatedCost <= budget {
		return d
	}
	// Octave loosening first: same method, coarser target — the answer
	// class (error-bounded) survives, only the bound moves.
	eps := p.effective(d.Epsilon)
	for 2*eps <= maxLoosenEpsilon {
		eps *= 2
		cost := p.Estimate(d.Algorithm, eps, in.DiagResidentBytes)
		if cost <= budget {
			d.Epsilon, d.Reason, d.EstimatedCost = eps, ReasonDeadlineLoosen, cost
			return d
		}
	}
	// Method downgrade: cheaper classes in order. mc last — it gives up
	// the error bound entirely, which only a flexible request may accept.
	for _, alg := range []string{"prsim", "probesim", "mc"} {
		if alg == d.Algorithm {
			continue
		}
		cost := p.Estimate(alg, eps, in.DiagResidentBytes)
		if cost <= budget {
			d.Algorithm, d.Epsilon, d.Reason, d.EstimatedCost = alg, eps, ReasonDeadlineDowngrade, cost
			return d
		}
	}
	// Nothing fits: keep the loosest epsilon on the strict method and let
	// the anytime ladder salvage what the deadline allows.
	d.Epsilon, d.Reason = eps, ReasonDeadlineLoosen
	d.EstimatedCost = p.Estimate(d.Algorithm, eps, in.DiagResidentBytes)
	return d
}

// effective resolves the 0 "service default" epsilon sentinel.
func (p *Planner) effective(eps float64) float64 {
	if eps == 0 {
		return p.baseEpsilon
	}
	return eps
}

// Effective is the exported form of effective, for Plan blocks.
func (p *Planner) Effective(eps float64) float64 { return p.effective(eps) }

// ErrorDriven reports whether name's work is controlled by epsilon (and
// the anytime tier ladder therefore meaningful for it).
func ErrorDriven(name string) bool {
	c, ok := algo.Describe(name)
	return ok && c.ErrorDriven
}

// Tiers returns the accuracy ladder for an anytime evaluation of target:
// coarse→target, each rung ×tierStep tighter, first rung at most
// coarsestEpsilon, last rung exactly the target value (the 0 sentinel
// included — cache identity of the final answer must match the
// non-streaming path byte-for-byte). A target at or above the coarsest
// rung gets a single-rung ladder.
func (p *Planner) Tiers(target float64) []float64 {
	eff := p.effective(target)
	var ladder []float64
	for e := eff * tierStep; e <= coarsestEpsilon; e *= tierStep {
		ladder = append(ladder, e)
	}
	// Built tight→coarse; serve coarse→tight.
	sort.Sort(sort.Reverse(sort.Float64Slice(ladder)))
	return append(ladder, target)
}

// costModel maps each method to work units as a function of the graph
// and epsilon — coarse by design (the EWMA correction absorbs constant
// factors; the model only has to order the methods correctly and trend
// the right way in epsilon). Units ≈ adjacency-edge visits.
var costModel = [...]struct {
	name  string
	units func(st graph.Stats, eps float64) float64
}{
	// ExactSim: a local push over the graph plus π²-allocated sampling
	// whose volume grows as 1/ε².
	{"exactsim", func(st graph.Stats, eps float64) float64 {
		return float64(st.M) + 0.1/(eps*eps)
	}},
	// Basic variant: the same shape without the variance reduction.
	{"exactsim-basic", func(st graph.Stats, eps float64) float64 {
		return float64(st.M) + 1/(eps*eps)
	}},
	// MC: index answers from precomputed walks; per-query cost is the
	// walk budget of the source, independent of ε.
	{"mc", func(st graph.Stats, eps float64) float64 {
		return 20_000 // defaultWalkLength × defaultWalksPerNode
	}},
	// ParSim: L truncated iterations over the edge set.
	{"parsim", func(st graph.Stats, eps float64) float64 {
		return 50 * float64(st.M)
	}},
	// Linearization: solves per source against the index, ~n/ε.
	{"linearization", func(st graph.Stats, eps float64) float64 {
		return float64(st.N) / eps
	}},
	// PRSim: hub-indexed; residual work ~√m/ε on power-law graphs.
	{"prsim", func(st graph.Stats, eps float64) float64 {
		return math.Sqrt(float64(st.M)+1) / eps
	}},
	// ProbeSim: index-free probing, ~log(n)/ε² samples.
	{"probesim", func(st graph.Stats, eps float64) float64 {
		return math.Log(float64(st.N)+2) / (eps * eps)
	}},
	// Power method: full iteration to numerical fixpoint.
	{"powermethod", func(st graph.Stats, eps float64) float64 {
		return 100 * float64(st.M)
	}},
}

func modelIndex(name string) int {
	for i := range costModel {
		if costModel[i].name == name {
			return i
		}
	}
	return -1
}

// Estimate returns the cost model's latency estimate for running name at
// eps on this epoch's graph, corrected by the observed-latency EWMA. A
// warm diagonal index (resident bytes) discounts the ExactSim variants'
// sampling term — the chunks it would sample are already resident.
func (p *Planner) Estimate(name string, eps float64, diagResidentBytes int64) time.Duration {
	p.calibrated()
	i := modelIndex(name)
	if i < 0 {
		return 0
	}
	if eps <= 0 {
		eps = p.baseEpsilon
	}
	units := costModel[i].units(p.stats, eps)
	if diagResidentBytes > 0 && (name == "exactsim" || name == "exactsim-basic") {
		units *= 0.5
	}
	ns := units * p.nsPerUnit * p.adjustFor(i)
	return time.Duration(ns)
}

// Growth returns the cost model's work ratio for running name at `to`
// instead of `from` (clamped to ≥1): the multiplier the anytime ladder's
// deadline checkpoints scale the last tier's measured latency by to
// project the next tier's cost.
func (p *Planner) Growth(name string, from, to float64) float64 {
	p.calibrated()
	i := modelIndex(name)
	if i < 0 {
		return 1
	}
	f := costModel[i].units(p.stats, p.effective(from))
	t := costModel[i].units(p.stats, p.effective(to))
	if f <= 0 || t <= f {
		return 1
	}
	return t / f
}

// Observe feeds one completed query's latency back into the model: the
// per-algorithm EWMA correction converges estimates toward what this
// machine actually does. Safe for concurrent use from every worker.
func (p *Planner) Observe(name string, eps float64, d time.Duration) {
	p.calibrated()
	i := modelIndex(name)
	if i < 0 || d <= 0 {
		return
	}
	if eps <= 0 {
		eps = p.baseEpsilon
	}
	est := costModel[i].units(p.stats, eps) * p.nsPerUnit
	if est <= 0 {
		return
	}
	ratio := float64(d.Nanoseconds()) / est
	// Clamp wild outliers (a cache-cold first query, a GC pause): one
	// sample may pull the correction at most an order of magnitude.
	if ratio > 10 {
		ratio = 10
	}
	if ratio < 0.1 {
		ratio = 0.1
	}
	const alpha = 0.2
	for {
		old := p.adjust[i].Load()
		cur := math.Float64frombits(old)
		if cur == 0 {
			cur = 1
		}
		next := (1-alpha)*cur + alpha*ratio
		if p.adjust[i].CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func (p *Planner) adjustFor(i int) float64 {
	v := math.Float64frombits(p.adjust[i].Load())
	if v == 0 {
		return 1
	}
	return v
}

// CostEstimate is one method's calibrated cost row on the capability
// surface (GET /v1/algorithms).
type CostEstimate struct {
	// Name is the registry method.
	Name string `json:"name"`
	// Units is the model's work-unit count at the service's base epsilon.
	Units float64 `json:"units"`
	// Nanos is Units × calibrated ns/unit × the observed-latency EWMA.
	Nanos int64 `json:"nanos"`
}

// Estimates returns the calibrated per-method cost rows at the base
// epsilon, in registry order.
func (p *Planner) Estimates() []CostEstimate {
	p.calibrated()
	out := make([]CostEstimate, 0, len(costModel))
	for _, name := range algo.Names() {
		i := modelIndex(name)
		if i < 0 {
			continue
		}
		units := costModel[i].units(p.stats, p.baseEpsilon)
		out = append(out, CostEstimate{
			Name:  name,
			Units: units,
			Nanos: int64(units * p.nsPerUnit * p.adjustFor(i)),
		})
	}
	return out
}
