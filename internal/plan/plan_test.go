package plan

import (
	"math"
	"testing"
	"time"

	"github.com/exactsim/exactsim/internal/algo"
	"github.com/exactsim/exactsim/internal/graph"
)

// Synthetic epoch stats spanning the strict planner's whole decision
// space: below/above the largeN gate, skewed/flat degree sequences.
var (
	smallStats = graph.Stats{N: 1_000, M: 5_000, MaxInDegree: 50, AvgDegree: 5}
	// MaxInDegree 5000 ≥ powerLawSkew × AvgDegree 10 → skewed.
	largePowerLawStats = graph.Stats{N: 100_000, M: 1_000_000, MaxInDegree: 5_000, AvgDegree: 10}
	// MaxInDegree 40 < 8 × 10 → flat.
	largeFlatStats = graph.Stats{N: 100_000, M: 1_000_000, MaxInDegree: 40, AvgDegree: 10}
)

// TestPlannerGoldenMatrix pins the strict planner's entire input→output
// map. Every row here is an answer-identity promise: "auto" serves the
// bit-exact output of the method in the want column, so changing a row
// changes what users receive — update DESIGN §13 and the auto-conformance
// test alongside.
func TestPlannerGoldenMatrix(t *testing.T) {
	cases := []struct {
		name  string
		stats graph.Stats
		in    Input
		want  Decision
	}{
		{"small-default-eps", smallStats, Input{},
			Decision{Algorithm: "exactsim", Epsilon: 0, Reason: ReasonSmallGraphDefault}},
		{"small-loose-eps", smallStats, Input{Epsilon: 0.05},
			Decision{Algorithm: "exactsim", Epsilon: 0.05, Reason: ReasonSmallGraphDefault}},
		{"small-tight-eps", smallStats, Input{Epsilon: 0.001},
			Decision{Algorithm: "exactsim", Epsilon: 0.001, Reason: ReasonTightEpsilon}},
		{"tight-eps-boundary", smallStats, Input{Epsilon: 0.005},
			Decision{Algorithm: "exactsim", Epsilon: 0.005, Reason: ReasonTightEpsilon}},
		{"large-power-law", largePowerLawStats, Input{Epsilon: 0.02},
			Decision{Algorithm: "prsim", Epsilon: 0.02, Reason: ReasonLargePowerLaw}},
		{"large-power-law-default-eps", largePowerLawStats, Input{},
			Decision{Algorithm: "prsim", Epsilon: 0, Reason: ReasonLargePowerLaw}},
		{"large-power-law-tight", largePowerLawStats, Input{Epsilon: 0.002},
			Decision{Algorithm: "exactsim", Epsilon: 0.002, Reason: ReasonTightEpsilon}},
		{"large-flat", largeFlatStats, Input{Epsilon: 0.02},
			Decision{Algorithm: "probesim", Epsilon: 0.02, Reason: ReasonLargeFlat}},
		{"large-flat-topk", largeFlatStats, Input{Epsilon: 0.02, K: 10},
			Decision{Algorithm: "probesim", Epsilon: 0.02, Reason: ReasonLargeFlat}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewFromStats(tc.stats, 0.01)
			got := p.Plan(tc.in)
			if got != tc.want {
				t.Fatalf("Plan(%+v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

// TestPlannerStrictIgnoresRuntimeState: a strict (non-flexible) decision
// must be a pure function of (epsilon, k) and graph stats — deadline,
// queue dwell, priority and index residency must not leak in, or two
// same-epoch replicas could plan one request differently and hedging
// would race non-identical answers.
func TestPlannerStrictIgnoresRuntimeState(t *testing.T) {
	p := NewFromStats(largePowerLawStats, 0.01)
	base := p.Plan(Input{Epsilon: 0.02})
	perturbed := []Input{
		{Epsilon: 0.02, Deadline: time.Nanosecond},
		{Epsilon: 0.02, Deadline: time.Hour, QueueDwell: time.Minute},
		{Epsilon: 0.02, PriorityRank: 2},
		{Epsilon: 0.02, DiagResidentBytes: 1 << 30},
	}
	for _, in := range perturbed {
		if got := p.Plan(in); got != base {
			t.Fatalf("strict Plan(%+v) = %+v, want %+v (runtime state leaked into the pure half)", in, got, base)
		}
	}
	// Observed latencies refine the flexible cost model only — strict
	// decisions must not move.
	for i := 0; i < 100; i++ {
		p.Observe("prsim", 0.02, time.Second)
	}
	if got := p.Plan(Input{Epsilon: 0.02}); got != base {
		t.Fatalf("strict Plan after Observe = %+v, want %+v", got, base)
	}
}

// TestPlannerFlexibleFit pins the deadline-fitting ladder: strict choice
// kept when it fits, epsilon loosened by octaves first, methods
// downgraded after.
func TestPlannerFlexibleFit(t *testing.T) {
	t.Run("fits-unchanged", func(t *testing.T) {
		p := NewFromStats(largeFlatStats, 0.01)
		// probesim at ε=0.02 ≈ 28.8µs of model time (nsPerUnit pinned at 1).
		d := p.Plan(Input{Epsilon: 0.02, Deadline: time.Millisecond, Flexible: true})
		if d.Algorithm != "probesim" || d.Reason != ReasonLargeFlat || d.Epsilon != 0.02 {
			t.Fatalf("fitting plan changed: %+v", d)
		}
		if d.EstimatedCost <= 0 || d.EstimatedCost > time.Millisecond {
			t.Fatalf("EstimatedCost %v out of range", d.EstimatedCost)
		}
	})
	t.Run("loosens-epsilon", func(t *testing.T) {
		// exactsim at ε=0.01: 100 + 0.1/1e-4 = 1100 units → 1100ns; at
		// ε=0.02 it is 350ns, under the 600ns budget.
		p := NewFromStats(graph.Stats{N: 1_000, M: 100, MaxInDegree: 10, AvgDegree: 0.1}, 0.01)
		d := p.Plan(Input{Epsilon: 0.01, Deadline: 600 * time.Nanosecond, Flexible: true})
		want := Decision{Algorithm: "exactsim", Epsilon: 0.02, Reason: ReasonDeadlineLoosen, EstimatedCost: 350}
		if d != want {
			t.Fatalf("Plan = %+v, want %+v", d, want)
		}
	})
	t.Run("downgrades-method", func(t *testing.T) {
		// exactsim never fits a 4µs budget on smallStats even at the
		// loosest ε (M alone is 5000 units); prsim at ε=0.08 does.
		p := NewFromStats(smallStats, 0.01)
		d := p.Plan(Input{Epsilon: 0.01, Deadline: 4 * time.Microsecond, Flexible: true})
		if d.Algorithm != "prsim" || d.Reason != ReasonDeadlineDowngrade {
			t.Fatalf("Plan = %+v, want prsim via %s", d, ReasonDeadlineDowngrade)
		}
		if d.Epsilon != 0.08 {
			t.Fatalf("downgrade kept ε=%v, want the loosened 0.08", d.Epsilon)
		}
	})
	t.Run("strict-input-never-fitted", func(t *testing.T) {
		// The same impossible deadline without Flexible: the pure decision
		// stands, no cost estimate attached.
		p := NewFromStats(smallStats, 0.01)
		d := p.Plan(Input{Epsilon: 0.01, Deadline: 4 * time.Microsecond})
		want := Decision{Algorithm: "exactsim", Epsilon: 0.01, Reason: ReasonSmallGraphDefault}
		if d != want {
			t.Fatalf("Plan = %+v, want %+v", d, want)
		}
	})
}

// TestTiersGolden pins the anytime ladder shape: coarse→tight in
// ×tierStep rungs capped at coarsestEpsilon, terminal rung exactly the
// requested target (0 sentinel preserved — the final tier's cache key
// must equal the non-streaming request's).
func TestTiersGolden(t *testing.T) {
	p := NewFromStats(smallStats, 0.01)
	cases := []struct {
		target float64
		want   []float64
	}{
		{0, []float64{0.04, 0}},
		{0.01, []float64{0.04, 0.01}},
		{0.001, []float64{0.064, 0.016, 0.004, 0.001}},
		{0.05, []float64{0.05}},
		{0.2, []float64{0.2}},
	}
	for _, tc := range cases {
		got := p.Tiers(tc.target)
		if len(got) != len(tc.want) {
			t.Fatalf("Tiers(%v) = %v, want %v", tc.target, got, tc.want)
		}
		for i := range got {
			if i == len(got)-1 {
				if got[i] != tc.target {
					t.Fatalf("Tiers(%v) terminal rung %v, want the target verbatim", tc.target, got[i])
				}
				continue
			}
			if math.Abs(got[i]-tc.want[i]) > 1e-12 {
				t.Fatalf("Tiers(%v)[%d] = %v, want %v", tc.target, i, got[i], tc.want[i])
			}
			if got[i] > coarsestEpsilon+1e-12 {
				t.Fatalf("Tiers(%v)[%d] = %v coarser than the cap %v", tc.target, i, got[i], coarsestEpsilon)
			}
		}
	}
}

// TestCostModelCoversRegistry: every registered algorithm has a
// capability row and a cost-model row — a new registration without them
// would silently fall out of the planner and the /v1/algorithms surface.
func TestCostModelCoversRegistry(t *testing.T) {
	names := algo.Names()
	for _, name := range names {
		if _, ok := algo.Describe(name); !ok {
			t.Errorf("algorithm %q has no capability entry", name)
		}
		if modelIndex(name) < 0 {
			t.Errorf("algorithm %q has no cost-model entry", name)
		}
	}
	if len(costModel) != len(names) {
		t.Errorf("cost model has %d rows, registry has %d", len(costModel), len(names))
	}
	p := NewFromStats(smallStats, 0.01)
	ests := p.Estimates()
	if len(ests) != len(names) {
		t.Fatalf("Estimates() returned %d rows, want %d", len(ests), len(names))
	}
	for _, e := range ests {
		if e.Units <= 0 || e.Nanos <= 0 {
			t.Errorf("estimate for %q degenerate: %+v", e.Name, e)
		}
	}
}

// TestErrorDriven pins which methods the tier ladder applies to: the
// error-bounded ones whose work epsilon controls.
func TestErrorDriven(t *testing.T) {
	want := map[string]bool{
		"exactsim": true, "exactsim-basic": true, "linearization": true,
		"prsim": true, "probesim": true,
		"mc": false, "parsim": false, "powermethod": false,
	}
	for name, w := range want {
		if got := ErrorDriven(name); got != w {
			t.Errorf("ErrorDriven(%q) = %v, want %v", name, got, w)
		}
	}
	if ErrorDriven("no-such-method") {
		t.Error("unknown method reported error-driven")
	}
}

// TestObserveRefinesEstimates: observed latencies pull the estimate
// toward reality (EWMA), and Growth projects tier-to-tier cost ratios.
func TestObserveRefinesEstimates(t *testing.T) {
	p := NewFromStats(smallStats, 0.01)
	before := p.Estimate("exactsim", 0.01, 0)
	// Report the machine running 5× slower than the raw model.
	for i := 0; i < 50; i++ {
		p.Observe("exactsim", 0.01, 5*before)
	}
	after := p.Estimate("exactsim", 0.01, 0)
	if after <= 2*before {
		t.Fatalf("estimate did not converge toward observations: before %v, after %v", before, after)
	}
	// A warm diag index discounts the exactsim variants.
	if warm := p.Estimate("exactsim", 0.01, 1<<20); warm >= after {
		t.Fatalf("diag residency did not discount: %v >= %v", warm, after)
	}
	if g := p.Growth("exactsim", 0.064, 0.016); g <= 1 {
		t.Fatalf("Growth(0.064→0.016) = %v, want > 1", g)
	}
	// mc's cost is ε-independent: no growth across tiers.
	if g := p.Growth("mc", 0.064, 0.016); g != 1 {
		t.Fatalf("Growth(mc) = %v, want 1", g)
	}
}

// BenchmarkPlannerDecision measures the strict planning overhead added
// to every "auto" query — the acceptance bound is < 5µs/op.
func BenchmarkPlannerDecision(b *testing.B) {
	p := NewFromStats(largePowerLawStats, 0.01)
	in := Input{Epsilon: 0.02, K: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Plan(in)
	}
}

// BenchmarkPlannerDecisionFlexible includes the cost-model fit path.
func BenchmarkPlannerDecisionFlexible(b *testing.B) {
	p := NewFromStats(largePowerLawStats, 0.01)
	in := Input{Epsilon: 0.02, K: 10, Deadline: time.Millisecond, Flexible: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Plan(in)
	}
}
