// Package rng provides a fast, deterministic, splittable pseudo-random
// number generator used by every randomized component in this repository.
//
// Reproducibility is a hard requirement for the paper's experiments: ExactSim
// is a *probabilistic* exact algorithm, and its tests assert statistical
// error bounds under fixed seeds. The stdlib math/rand global source is
// lockful and unseedable per-worker, so we implement xoshiro256++ seeded via
// splitmix64 (the construction recommended by its authors). Each parallel
// worker derives an independent stream with Split, which guarantees that
// parallel runs are reproducible regardless of scheduling.
package rng

import "math"

// RNG is a xoshiro256++ generator. The zero value is invalid; construct with
// New or Split. RNG is not safe for concurrent use; give each goroutine its
// own via Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the seed state and returns the next output. It is used
// only to initialize xoshiro state, per Blackman & Vigna's recommendation.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically derived from seed. Distinct
// seeds yield decorrelated streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator to the stream identified by seed.
func (r *RNG) Reseed(seed uint64) {
	state := seed
	r.s0 = splitmix64(&state)
	r.s1 = splitmix64(&state)
	r.s2 = splitmix64(&state)
	r.s3 = splitmix64(&state)
	// xoshiro must not start from the all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives a new independent generator from r. The derived stream is a
// deterministic function of r's current state, so a fixed seed plus a fixed
// split order reproduces the whole tree of streams.
func (r *RNG) Split() *RNG {
	// Mix two outputs through splitmix64 so that consecutive Splits do not
	// hand out overlapping xoshiro orbits.
	seed := r.Uint64() ^ rotl(r.Uint64(), 32)
	return New(seed)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method (unbiased).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Int31 returns a uniform int32 in [0, n) for n > 0. Slightly faster than
// Intn for the hot random-neighbor path where degrees fit in 32 bits.
func (r *RNG) Int31(n int32) int32 {
	return int32(r.Intn(int(n)))
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
// Used only by generators, not by any algorithmic hot path.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
