// Package rng provides a fast, deterministic, splittable pseudo-random
// number generator used by every randomized component in this repository.
//
// Reproducibility is a hard requirement for the paper's experiments: ExactSim
// is a *probabilistic* exact algorithm, and its tests assert statistical
// error bounds under fixed seeds. The stdlib math/rand global source is
// lockful and unseedable per-worker, so we implement xoshiro256++ seeded via
// splitmix64 (the construction recommended by its authors). Each parallel
// worker derives an independent stream with Split, which guarantees that
// parallel runs are reproducible regardless of scheduling.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256++ generator. The zero value is invalid; construct with
// New or Split. RNG is not safe for concurrent use; give each goroutine its
// own via Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the seed state and returns the next output. It is used
// only to initialize xoshiro state, per Blackman & Vigna's recommendation.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically derived from seed. Distinct
// seeds yield decorrelated streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator to the stream identified by seed.
func (r *RNG) Reseed(seed uint64) {
	state := seed
	r.s0 = splitmix64(&state)
	r.s1 = splitmix64(&state)
	r.s2 = splitmix64(&state)
	r.s3 = splitmix64(&state)
	// xoshiro must not start from the all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives a new independent generator from r. The derived stream is a
// deterministic function of r's current state, so a fixed seed plus a fixed
// split order reproduces the whole tree of streams.
func (r *RNG) Split() *RNG {
	// Mix two outputs through splitmix64 so that consecutive Splits do not
	// hand out overlapping xoshiro orbits.
	seed := r.Uint64() ^ rotl(r.Uint64(), 32)
	return New(seed)
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method (unbiased).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Bounded(uint64(n)))
}

// Bounded returns a uniform uint64 in [0, n) for n > 0 using Lemire's
// multiply-shift method: a single 128-bit multiply in the common case, with
// the (rare) rejection branch computing the `-n % n` threshold lazily. This
// is the random-neighbor primitive of the walk engine, so it must not
// branch-mispredict or divide on the fast path.
func (r *RNG) Bounded(n uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Int31 returns a uniform int32 in [0, n) for n > 0. Slightly faster than
// Intn for the hot random-neighbor path where degrees fit in 32 bits.
func (r *RNG) Int31(n int32) int32 {
	return int32(r.Intn(int(n)))
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Geometric returns the number of consecutive successes of a Bernoulli(p)
// trial before the first failure: P[X = k] = p^k·(1−p) for k ≥ 0. It is the
// inverse-CDF method — one uniform draw replaces the whole run of per-trial
// Bernoullis, which is what lets the walk engine sample a √c-walk's length
// in O(1). Hot callers with a fixed p should precompute 1/ln(p) and use
// GeometricInv instead.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		panic("rng: Geometric with p >= 1")
	}
	return r.GeometricInv(1 / math.Log(p))
}

// GeometricInv is Geometric for callers that precomputed invLnP = 1/ln(p).
// P[X ≥ k] = P[1−U ≤ p^k] = p^k, so X = ⌊ln(1−U)/ln(p)⌋ is exact; U < 1
// keeps ln(1−U) finite, so the result is bounded by ≈ 53·|1/log₂(p)|.
func (r *RNG) GeometricInv(invLnP float64) int {
	return int(math.Log1p(-r.Float64()) * invLnP)
}

// geometricMaxTable caps a GeometricSampler's threshold table; draws beyond
// the table restart (geometric distributions are memoryless), so the cap
// trades a little tail-draw cost for bounded memory when p is close to 1.
const geometricMaxTable = 1024

// GeometricSampler draws Geometric(p) variates — the count of consecutive
// successes before the first failure — from a precomputed threshold table:
// thresh[k] ≈ p^{k+1}·2⁶⁴, so a single Uint64 draw compared against the
// table yields X with P[X ≥ k] = p^k at full 64-bit granularity. The scan
// costs E[X]+1 integer compares and no floating-point math; an inverse-CDF
// log call here showed up as 40% of the whole diagonal phase.
//
// A sampler is immutable after construction and safe to share across
// goroutines (each draw's state lives in the caller's RNG).
type GeometricSampler struct {
	thresh []uint64
}

// NewGeometricSampler builds the table for success probability p ∈ [0, 1).
func NewGeometricSampler(p float64) *GeometricSampler {
	if p < 0 || p >= 1 {
		panic("rng: GeometricSampler needs 0 <= p < 1")
	}
	gs := &GeometricSampler{}
	// thresh[k] = round(p^{k+1}·2⁶⁴); stop once the survival probability
	// rounds to zero at 64-bit granularity — beyond that X ≥ k is
	// impossible under the sampler, matching P ≈ p^k < 2⁻⁶⁴.
	pk := p
	for k := 0; k < geometricMaxTable; k++ {
		t := pk * (1 << 63) * 2 // p^{k+1}·2⁶⁴ without constant overflow
		if t < 1 {
			break
		}
		if t >= math.MaxUint64 {
			t = math.MaxUint64
		}
		gs.thresh = append(gs.thresh, uint64(t))
		pk *= p
	}
	return gs
}

// Sample draws one variate using r's stream.
func (gs *GeometricSampler) Sample(r *RNG) int {
	if len(gs.thresh) == 0 { // p == 0 (or rounds to it): X is always 0
		return 0
	}
	total := 0
	//lint:bounded memoryless restart fires only when u falls past the table cap; expected passes per sample ~ 1
	for {
		u := r.Uint64()
		k := 0
		for k < len(gs.thresh) && u < gs.thresh[k] {
			k++
		}
		total += k
		if k < len(gs.thresh) {
			return total
		}
		// Survived past the table: restart by memorylessness. Unreachable
		// unless p is so close to 1 that the table hit its cap.
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
// Used only by generators, not by any algorithmic hot path.
func (r *RNG) NormFloat64() float64 {
	//lint:bounded polar rejection accepts with probability pi/4 per iteration; terminates with probability 1
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
