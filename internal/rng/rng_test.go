package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincide too often: %d/100", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("Reseed did not restart stream at %d: got %d want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children coincide too often: %d/100", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	mk := func() []uint64 {
		p := New(5)
		c := p.Split()
		out := make([]uint64, 5)
		for i := range out {
			out[i] = c.Uint64()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("split streams are not reproducible at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean too far from 0.5: %g", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) out of range: %d", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(23)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %g", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulli(t *testing.T) {
	r := New(31)
	const n = 100000
	const p = 0.3
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%g) frequency %g", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	check := func(n uint8) bool {
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(43)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(xs)
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("Shuffle changed contents: sum %d want %d", got, sum)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(53)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %g", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %g", variance)
	}
}

func TestBoundedUniform(t *testing.T) {
	r := New(9)
	const n, trials = 7, 700000
	var counts [n]int
	for i := 0; i < trials; i++ {
		v := r.Bounded(n)
		if v >= n {
			t.Fatalf("Bounded(%d) returned %d", n, v)
		}
		counts[v]++
	}
	want := float64(trials) / n
	for v, got := range counts {
		if math.Abs(float64(got)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Bounded bucket %d: %d draws, want ≈ %g", v, got, want)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	// E[Geometric(p)] = p/(1−p); check p = √0.6 (the walk engine's case).
	r := New(11)
	p := math.Sqrt(0.6)
	const trials = 500000
	total := 0
	for i := 0; i < trials; i++ {
		k := r.Geometric(p)
		if k < 0 {
			t.Fatalf("negative geometric draw %d", k)
		}
		total += k
	}
	want := p / (1 - p)
	got := float64(total) / trials
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("geometric mean %g want %g", got, want)
	}
}

func TestGeometricTailProbability(t *testing.T) {
	// P[X ≥ k] = p^k exactly under inverse-CDF sampling.
	r := New(13)
	const p = 0.5
	const trials = 400000
	ge3 := 0
	for i := 0; i < trials; i++ {
		if r.Geometric(p) >= 3 {
			ge3++
		}
	}
	want := math.Pow(p, 3)
	got := float64(ge3) / trials
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("P[X>=3] = %g want %g", got, want)
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	r := New(17)
	if got := r.Geometric(0); got != 0 {
		t.Fatalf("Geometric(0) = %d", got)
	}
	if got := r.Geometric(-1); got != 0 {
		t.Fatalf("Geometric(-1) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(1) accepted")
		}
	}()
	r.Geometric(1)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
