package linalg

import (
	"math"
	"testing"

	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/rng"
	"github.com/exactsim/exactsim/internal/sparse"
)

// naiveApply multiplies the dense matrix by x.
func naiveApply(mat [][]float64, x []float64, scale float64) []float64 {
	n := len(mat)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			y[i] += mat[i][j] * x[j]
		}
	}
	for i := range y {
		y[i] *= scale
	}
	return y
}

// naiveTranspose returns matᵀ.
func naiveTranspose(mat [][]float64) [][]float64 {
	n := len(mat)
	t := make([][]float64, n)
	for i := range t {
		t[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			t[i][j] = mat[j][i]
		}
	}
	return t
}

func randomDense(r *rng.RNG, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64()
	}
	return x
}

func randomGraph(r *rng.RNG, n, m int) *graph.Graph {
	b := graph.NewBuilder(n).Reserve(m)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

func TestApplyPMatchesDense(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 2+r.Intn(40), r.Intn(200))
		op := NewOperator(g, 1)
		P := DenseP(g)
		x := randomDense(r, g.N())
		got := make([]float64, g.N())
		op.ApplyP(got, x, 0.7)
		want := naiveApply(P, x, 0.7)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Fatalf("trial %d: ApplyP differs from dense by %g", trial, d)
		}
	}
}

func TestApplyPTMatchesDense(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 2+r.Intn(40), r.Intn(200))
		op := NewOperator(g, 1)
		PT := naiveTranspose(DenseP(g))
		x := randomDense(r, g.N())
		got := make([]float64, g.N())
		op.ApplyPT(got, x, 0.9)
		want := naiveApply(PT, x, 0.9)
		if d := maxAbsDiff(got, want); d > 1e-12 {
			t.Fatalf("trial %d: ApplyPT differs from dense by %g", trial, d)
		}
	}
}

func TestSparseMatchesDense(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 2+r.Intn(40), r.Intn(150))
		op := NewOperator(g, 1)
		n := g.N()
		acc := sparse.NewAccumulator(n)
		dense := make([]float64, n)
		// sparse input: a few entries
		var sv sparse.Vector
		for i := 0; i < n; i += 1 + r.Intn(3) {
			val := r.Float64()
			sv.Idx = append(sv.Idx, int32(i))
			sv.Val = append(sv.Val, val)
			dense[i] = val
		}
		gotP := op.ApplyPSparse(&sv, acc, 0.77, 0)
		wantP := make([]float64, n)
		op.ApplyP(wantP, dense, 0.77)
		if d := maxAbsDiff(gotP.ToDense(n), wantP); d > 1e-12 {
			t.Fatalf("trial %d: sparse P differs by %g", trial, d)
		}
		gotPT := op.ApplyPTSparse(&sv, acc, 0.77, 0)
		wantPT := make([]float64, n)
		op.ApplyPT(wantPT, dense, 0.77)
		if d := maxAbsDiff(gotPT.ToDense(n), wantPT); d > 1e-12 {
			t.Fatalf("trial %d: sparse PT differs by %g", trial, d)
		}
	}
}

func TestSparseTruncation(t *testing.T) {
	g := gen.Star(10)
	op := NewOperator(g, 1)
	acc := sparse.NewAccumulator(g.N())
	x := sparse.Vector{Idx: []int32{0}, Val: []float64{1}}
	// From the center, P moves mass to the center's in-neighbors (leaves),
	// each getting 1/d_in(leaf)=1 share scaled... verify truncation drops
	// small entries.
	y := op.ApplyPSparse(&x, acc, 1, 0)
	if y.Len() == 0 {
		t.Fatal("no mass propagated")
	}
	yTrunc := op.ApplyPSparse(&x, acc, 1, 2.0) // everything ≤ 2 dropped
	if yTrunc.Len() != 0 {
		t.Fatalf("truncation kept %d entries", yTrunc.Len())
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	r := rng.New(5)
	g := randomGraph(r, 9000, 60000) // above the parallel threshold
	x := randomDense(r, g.N())
	serial := NewOperator(g, 1)
	par := NewOperator(g, 4)
	a := make([]float64, g.N())
	b := make([]float64, g.N())
	serial.ApplyP(a, x, 0.6)
	par.ApplyP(b, x, 0.6)
	if d := maxAbsDiff(a, b); d != 0 {
		t.Fatalf("parallel ApplyP differs by %g", d)
	}
	serial.ApplyPT(a, x, 0.6)
	par.ApplyPT(b, x, 0.6)
	if d := maxAbsDiff(a, b); d != 0 {
		t.Fatalf("parallel ApplyPT differs by %g", d)
	}
}

func TestSparseParallelBitIdentical(t *testing.T) {
	// The sparse kernels promise bit-identical results at every worker
	// count: shard boundaries are a function of the input's nonzero count
	// and partials merge in shard order. Exercise inputs straddling the
	// shard thresholds (1 shard, a few shards, the max).
	r := rng.New(7)
	g := randomGraph(r, 8000, 64000)
	for _, nnz := range []int{10, 600, 2000, 8000} {
		var sv sparse.Vector
		seen := make(map[int32]bool)
		for len(sv.Idx) < nnz {
			idx := int32(r.Intn(g.N()))
			if seen[idx] {
				continue
			}
			seen[idx] = true
			sv.Idx = append(sv.Idx, idx)
			sv.Val = append(sv.Val, r.Float64())
		}
		// kernel inputs must be index-sorted like all Vectors
		sorted := sv.Clone()
		sortVector(&sorted)

		ref := NewOperator(g, 1)
		refAcc := sparse.NewAccumulator(g.N())
		wantP := ref.ApplyPSparse(&sorted, refAcc, 0.77, 0)
		wantPT := ref.ApplyPTSparse(&sorted, refAcc, 0.77, 0)
		for _, workers := range []int{2, 3, 8} {
			op := NewOperator(g, workers)
			acc := sparse.NewAccumulator(g.N())
			gotP := op.ApplyPSparse(&sorted, acc, 0.77, 0)
			if !vectorsBitEqual(&wantP, &gotP) {
				t.Fatalf("nnz=%d workers=%d: ApplyPSparse not bit-identical to serial", nnz, workers)
			}
			gotPT := op.ApplyPTSparse(&sorted, acc, 0.77, 0)
			if !vectorsBitEqual(&wantPT, &gotPT) {
				t.Fatalf("nnz=%d workers=%d: ApplyPTSparse not bit-identical to serial", nnz, workers)
			}
		}
	}
}

func sortVector(v *sparse.Vector) {
	for i := 1; i < len(v.Idx); i++ {
		for j := i; j > 0 && v.Idx[j-1] > v.Idx[j]; j-- {
			v.Idx[j-1], v.Idx[j] = v.Idx[j], v.Idx[j-1]
			v.Val[j-1], v.Val[j] = v.Val[j], v.Val[j-1]
		}
	}
}

func vectorsBitEqual(a, b *sparse.Vector) bool {
	if len(a.Idx) != len(b.Idx) {
		return false
	}
	for i := range a.Idx {
		if a.Idx[i] != b.Idx[i] || math.Float64bits(a.Val[i]) != math.Float64bits(b.Val[i]) {
			return false
		}
	}
	return true
}

func TestApplyPTFrontierMatchesDense(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 40+r.Intn(60), 300)
		op := NewOperator(g, 1)
		n := g.N()
		x := make([]float64, n)
		xf := NewFrontier(n)
		for i := 0; i < 1+r.Intn(4); i++ {
			idx := int32(r.Intn(n))
			x[idx] = r.Float64()
			xf.Add(idx)
		}
		dst := make([]float64, n)
		// Pre-soil dst with stale values the frontier must clear.
		dstf := NewFrontier(n)
		for i := 0; i < 5; i++ {
			idx := int32(r.Intn(n))
			dst[idx] = 99
			dstf.Add(idx)
		}
		op.ApplyPTFrontier(dst, x, 0.8, xf, dstf)
		want := make([]float64, n)
		op.ApplyPT(want, x, 0.8)
		if d := maxAbsDiff(dst, want); d > 1e-12 {
			t.Fatalf("trial %d: frontier PT differs by %g", trial, d)
		}
		// Every nonzero of dst must be inside the reported frontier.
		if !dstf.Dense() {
			onFront := make(map[int32]bool, dstf.Len())
			for _, v := range dstf.list {
				onFront[v] = true
			}
			for i, v := range dst {
				if v != 0 && !onFront[int32(i)] {
					t.Fatalf("trial %d: nonzero dst[%d] outside frontier", trial, i)
				}
			}
		}
	}
}

func TestApplyPTFrontierDenseFallback(t *testing.T) {
	r := rng.New(13)
	g := randomGraph(r, 400, 4000)
	op := NewOperator(g, 2)
	n := g.N()
	x := randomDense(r, n)
	xf := NewFrontier(n)
	for i := 0; i < n; i++ { // frontier covers everything → > n/8 cutoff
		xf.Add(int32(i))
	}
	dst := make([]float64, n)
	for i := range dst {
		dst[i] = 123 // stale everywhere; dense gather must overwrite all
	}
	dstf := NewFrontier(n)
	op.ApplyPTFrontier(dst, x, 0.7, xf, dstf)
	if !dstf.Dense() {
		t.Fatal("full frontier did not flip dst frontier to dense")
	}
	want := make([]float64, n)
	op.ApplyPT(want, x, 0.7)
	if d := maxAbsDiff(dst, want); d != 0 {
		t.Fatalf("dense fallback differs by %g", d)
	}
	// A later sparse application over a dense-stale dst must clear it.
	clear(x)
	xf.Reset()
	x[0] = 1
	xf.Add(0)
	op.ApplyPTFrontier(want, x, 0.7, xf, dstf) // want is stale-dense now
	for i, v := range want {
		ref := 0.0
		for _, u := range g.InNeighbors(int32(i)) {
			ref += x[u]
		}
		ref *= 0.7 / float64(max(g.InDegree(int32(i)), 1))
		if math.Abs(v-ref) > 1e-12 {
			t.Fatalf("sparse-after-dense at %d: %g want %g", i, v, ref)
		}
	}
}

func TestDeadEndsAbsorb(t *testing.T) {
	// Path 0→1→2: node 0 has no in-neighbors. P moves mass toward
	// in-neighbors; mass on node 0 is absorbed (no outflow from x[0] via P
	// since... verify columns with d_in=0 contribute nothing).
	g := gen.Path(3)
	op := NewOperator(g, 1)
	x := []float64{1, 1, 1}
	y := make([]float64, 3)
	op.ApplyP(y, x, 1)
	// y(u) = Σ_{u→v} x(v)/din(v): y(0) = x(1)/1 = 1, y(1) = x(2)/1 = 1, y(2)=0
	if y[0] != 1 || y[1] != 1 || y[2] != 0 {
		t.Fatalf("path ApplyP = %v", y)
	}
}

func TestRowStochasticOnCycle(t *testing.T) {
	// On a cycle every node has in-degree 1, so P is a permutation matrix:
	// mass is conserved under both P and Pᵀ.
	g := gen.Cycle(7)
	op := NewOperator(g, 1)
	x := []float64{1, 0, 0, 0, 0, 0, 0}
	y := make([]float64, 7)
	op.ApplyP(y, x, 1)
	sum := 0.0
	for _, v := range y {
		sum += v
	}
	if math.Abs(sum-1) > 1e-15 {
		t.Fatalf("cycle mass not conserved: %g", sum)
	}
}

func TestOperatorAccessors(t *testing.T) {
	g := gen.Cycle(3)
	op := NewOperator(g, 0) // clamps to 1
	if op.Workers() != 1 {
		t.Fatalf("Workers=%d", op.Workers())
	}
	if op.Graph() != g {
		t.Fatal("Graph accessor broken")
	}
}

func BenchmarkApplyP(b *testing.B) {
	r := rng.New(1)
	g := gen.BarabasiAlbert(50000, 5, 1)
	op := NewOperator(g, 1)
	x := randomDense(r, g.N())
	y := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.ApplyP(y, x, 0.77)
	}
}

func BenchmarkApplyPSparse(b *testing.B) {
	g := gen.BarabasiAlbert(50000, 5, 1)
	op := NewOperator(g, 1)
	acc := sparse.NewAccumulator(g.N())
	x := sparse.Vector{Idx: []int32{0}, Val: []float64{1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := op.ApplyPSparse(&x, acc, 0.77, 1e-7)
		x = sparse.Vector{Idx: []int32{0}, Val: []float64{1}}
		_ = y
	}
}
