// Package linalg implements the transition-operator products at the heart
// of Linearization-style SimRank computation.
//
// P is the *reverse* transition matrix of the paper (Table 1):
//
//	P(i,j) = 1/d_in(v_j)  if v_i ∈ I(v_j), else 0.
//
// Probabilistically, applying P to a distribution moves a random walk to a
// uniformly random in-neighbor:  (Px)(u) = Σ_{u→v} x(v)/d_in(v).
// The transpose gathers:         (Pᵀx)(v) = (1/d_in(v)) Σ_{u∈I(v)} x(u).
//
// Operator caches 1/d_in and provides dense (optionally parallel) and
// sparse products; the sparse forms realize the paper's sparse
// linearization (§3.2) where per-level vectors stay truncated.
//
// Determinism contract: for a fixed input, every product is bit-for-bit
// identical regardless of the configured worker count. Dense products
// compute each output entry independently, so sharding them is trivially
// safe. Sparse products shard over the input's nonzeros with boundaries
// that depend only on the input size (never on Workers) and merge the
// per-shard partial accumulators in shard order, which pins the
// floating-point addition order.
package linalg

import (
	"sync"
	"sync/atomic"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/sparse"
)

// Sparse products are cut into at most maxSparseShards shards of at least
// sparseShardMin input nonzeros each. The shard count is a function of the
// input size only — NOT of the worker count — because the shard-order merge
// fixes the floating-point addition order: changing the boundaries would
// change the result bits, and the engine promises identical results at any
// parallelism.
const (
	maxSparseShards = 8
	sparseShardMin  = 512
)

// sparseShards returns the shard count for an input with nnz nonzeros.
func sparseShards(nnz int) int {
	s := nnz / sparseShardMin
	if s > maxSparseShards {
		s = maxSparseShards
	}
	if s < 1 {
		s = 1
	}
	return s
}

// shardBounds returns the half-open entry range of shard s of `shards`
// equal partitions of [0, nnz).
func shardBounds(nnz, shards, s int) (lo, hi int) {
	lo = s * nnz / shards
	hi = (s + 1) * nnz / shards
	return
}

// Operator applies P and Pᵀ for one graph. It is immutable after creation
// (the accumulator pool is internally synchronized) and safe for concurrent
// use; per-call scratch is owned by the caller.
type Operator struct {
	g       *graph.Graph
	invDin  []float64
	workers int

	// accPool recycles the per-shard accumulators of the parallel sparse
	// kernels (and is exported via GetAccumulator for callers that want
	// per-query scratch without per-query allocation).
	accPool sync.Pool
}

// NewOperator builds an operator over g. workers ≤ 1 selects serial
// execution; larger values shard products across that many goroutines.
// The paper's experiments run single-threaded for parity (§4, "single
// thread mode"), so the harness uses workers = 1.
func NewOperator(g *graph.Graph, workers int) *Operator {
	if workers < 1 {
		workers = 1
	}
	inv := make([]float64, g.N())
	for v := 0; v < g.N(); v++ {
		if d := g.InDegree(int32(v)); d > 0 {
			inv[v] = 1 / float64(d)
		}
	}
	return &Operator{g: g, invDin: inv, workers: workers}
}

// Graph returns the underlying graph.
func (op *Operator) Graph() *graph.Graph { return op.g }

// Workers returns the configured parallelism.
func (op *Operator) Workers() int { return op.workers }

// GetAccumulator returns a pooled accumulator sized to the graph; return it
// with PutAccumulator. Pooled accumulators are always handed out reset.
func (op *Operator) GetAccumulator() *sparse.Accumulator {
	if a, ok := op.accPool.Get().(*sparse.Accumulator); ok {
		return a
	}
	return sparse.NewAccumulator(op.g.N())
}

// PutAccumulator recycles a; a must be reset (Build, Reset and DrainInto
// all leave it reset).
func (op *Operator) PutAccumulator(a *sparse.Accumulator) { op.accPool.Put(a) }

// shard invokes fn(lo, hi) over a partition of [0, n) using the configured
// worker count.
func (op *Operator) shard(n int, fn func(lo, hi int32)) {
	if op.workers == 1 || n < 4096 {
		fn(0, int32(n))
		return
	}
	var wg sync.WaitGroup
	chunk := (n + op.workers - 1) / op.workers
	for w := 0; w < op.workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int32) {
			defer wg.Done()
			fn(lo, hi)
		}(int32(lo), int32(hi))
	}
	wg.Wait()
}

// ApplyP computes dst = scale·P·x. dst and x must have length n and must
// not alias.
func (op *Operator) ApplyP(dst, x []float64, scale float64) {
	g := op.g
	op.shard(g.N(), func(lo, hi int32) {
		for u := lo; u < hi; u++ {
			s := 0.0
			for _, v := range g.OutNeighbors(u) {
				s += x[v] * op.invDin[v]
			}
			dst[u] = scale * s
		}
	})
}

// ApplyPT computes dst = scale·Pᵀ·x. dst and x must have length n and must
// not alias.
func (op *Operator) ApplyPT(dst, x []float64, scale float64) {
	g := op.g
	op.shard(g.N(), func(lo, hi int32) {
		for v := lo; v < hi; v++ {
			s := 0.0
			for _, u := range g.InNeighbors(v) {
				s += x[u]
			}
			dst[v] = scale * s * op.invDin[v]
		}
	})
}

// runShards executes process(shard, accumulator) for every shard and drains
// the per-shard partials into acc in shard order. With one shard (or one
// worker) everything runs on the calling goroutine; the chunking and merge
// order are identical either way, so the bits are too.
func (op *Operator) runShards(shards int, acc *sparse.Accumulator, process func(s int, part *sparse.Accumulator)) {
	workers := op.workers
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		part := op.GetAccumulator()
		for s := 0; s < shards; s++ {
			process(s, part)
			part.DrainInto(acc)
		}
		op.PutAccumulator(part)
		return
	}
	parts := make([]*sparse.Accumulator, shards)
	for s := range parts {
		parts[s] = op.GetAccumulator()
	}
	var wg sync.WaitGroup
	var next int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := int(atomic.AddInt64(&next, 1) - 1); s < shards; s = int(atomic.AddInt64(&next, 1) - 1) {
				process(s, parts[s])
			}
		}()
	}
	wg.Wait()
	for _, part := range parts {
		part.DrainInto(acc)
		op.PutAccumulator(part)
	}
}

// ApplyPSparse computes scale·P·x for a sparse x, truncating result entries
// ≤ threshold (pass 0 to keep all). acc is caller-owned scratch sized to n.
// Large inputs are sharded over nonzeros across the configured workers; see
// the package comment for why the result does not depend on the worker
// count.
func (op *Operator) ApplyPSparse(x *sparse.Vector, acc *sparse.Accumulator, scale, threshold float64) sparse.Vector {
	inOff, inAdj := op.g.InCSR()
	nnz := x.Len()
	shards := sparseShards(nnz)
	scatter := func(lo, hi int, out *sparse.Accumulator) {
		for i := lo; i < hi; i++ {
			v := x.Idx[i]
			w := x.Val[i] * op.invDin[v] * scale
			if w == 0 {
				continue
			}
			for _, u := range inAdj[inOff[v]:inOff[v+1]] {
				out.Add(u, w)
			}
		}
	}
	if shards == 1 {
		scatter(0, nnz, acc)
		return acc.Build(threshold)
	}
	op.runShards(shards, acc, func(s int, part *sparse.Accumulator) {
		lo, hi := shardBounds(nnz, shards, s)
		scatter(lo, hi, part)
	})
	return acc.Build(threshold)
}

// ApplyPTSparse computes scale·Pᵀ·x for a sparse x with truncation, sharded
// like ApplyPSparse.
func (op *Operator) ApplyPTSparse(x *sparse.Vector, acc *sparse.Accumulator, scale, threshold float64) sparse.Vector {
	outOff, outAdj := op.g.OutCSR()
	nnz := x.Len()
	shards := sparseShards(nnz)
	scatter := func(lo, hi int, out *sparse.Accumulator) {
		for i := lo; i < hi; i++ {
			u := x.Idx[i]
			w := x.Val[i] * scale
			for _, v := range outAdj[outOff[u]:outOff[u+1]] {
				out.Add(v, w*op.invDin[v])
			}
		}
	}
	if shards == 1 {
		scatter(0, nnz, acc)
		return acc.Build(threshold)
	}
	op.runShards(shards, acc, func(s int, part *sparse.Accumulator) {
		lo, hi := shardBounds(nnz, shards, s)
		scatter(lo, hi, part)
	})
	return acc.Build(threshold)
}

// Frontier tracks the set of possibly-nonzero entries of a dense vector for
// ApplyPTFrontier. Once the set outgrows the sparse regime the frontier
// flips to dense and stays coarse ("everything may be nonzero"). The zero
// set is represented exactly: entries outside the frontier are guaranteed
// zero in the tracked vector.
type Frontier struct {
	mark  []bool
	list  []int32
	dense bool
}

// NewFrontier returns an empty frontier over index space [0, n).
func NewFrontier(n int) *Frontier {
	return &Frontier{mark: make([]bool, n)}
}

// Reset empties the frontier (back to the sparse regime).
func (f *Frontier) Reset() {
	for _, v := range f.list {
		f.mark[v] = false
	}
	f.list = f.list[:0]
	f.dense = false
}

// Add records that position i may be nonzero.
func (f *Frontier) Add(i int32) {
	if f.dense || f.mark[i] {
		return
	}
	f.mark[i] = true
	f.list = append(f.list, i)
}

// Dense reports whether the frontier has given up tracking (every position
// may be nonzero).
func (f *Frontier) Dense() bool { return f.dense }

// MarkDense flips the frontier to the dense regime without scanning —
// for callers whose tracked vector's support became unknown (e.g. an
// aborted computation left it partially written).
func (f *Frontier) MarkDense() { f.dense = true }

// Len returns the tracked position count (meaningless once Dense).
func (f *Frontier) Len() int { return len(f.list) }

// ApplyPTFrontier computes dst = scale·Pᵀ·x like ApplyPT, exploiting a
// frontier xf that bounds x's support: while the support is small — the
// early levels of ExactSim's backward accumulation, where s has only
// reached a few hops from the source — it scatters over the frontier's
// out-edges instead of gathering over all n rows, skipping the (dense)
// work for nodes the backward wave has not reached. dstf is reset and
// rebuilt to bound dst's support; stale dst entries from a previous use
// are zeroed through it, so callers can ping-pong two (vector, frontier)
// pairs without clearing anything themselves.
//
// Once the frontier exceeds n/8 the call falls back to the dense gather
// (writing every entry) and marks dstf dense; the cutoff depends only on
// the input, preserving the package's worker-count determinism.
func (op *Operator) ApplyPTFrontier(dst, x []float64, scale float64, xf, dstf *Frontier) {
	n := op.g.N()
	if xf.dense || len(xf.list) > n/8 {
		op.ApplyPT(dst, x, scale) // writes all of dst; stale entries gone
		dstf.Reset()
		dstf.dense = true
		return
	}
	// Zero dst's stale support before rebuilding it.
	if dstf.dense {
		clear(dst)
	} else {
		for _, v := range dstf.list {
			dst[v] = 0
		}
	}
	dstf.Reset()
	outOff, outAdj := op.g.OutCSR()
	for _, u := range xf.list {
		w := x[u] * scale
		if w == 0 {
			continue
		}
		for _, v := range outAdj[outOff[u]:outOff[u+1]] {
			dstf.Add(v)
			dst[v] += w * op.invDin[v]
		}
	}
}

// DenseP materializes P as a dense n×n row-major matrix. Intended only for
// tests and the power-method baseline on small graphs.
func DenseP(g *graph.Graph) [][]float64 {
	n := g.N()
	mat := make([][]float64, n)
	for i := range mat {
		mat[i] = make([]float64, n)
	}
	for j := int32(0); j < int32(n); j++ {
		d := g.InDegree(j)
		if d == 0 {
			continue
		}
		w := 1 / float64(d)
		for _, i := range g.InNeighbors(j) {
			mat[i][j] = w
		}
	}
	return mat
}
