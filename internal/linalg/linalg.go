// Package linalg implements the transition-operator products at the heart
// of Linearization-style SimRank computation.
//
// P is the *reverse* transition matrix of the paper (Table 1):
//
//	P(i,j) = 1/d_in(v_j)  if v_i ∈ I(v_j), else 0.
//
// Probabilistically, applying P to a distribution moves a random walk to a
// uniformly random in-neighbor:  (Px)(u) = Σ_{u→v} x(v)/d_in(v).
// The transpose gathers:         (Pᵀx)(v) = (1/d_in(v)) Σ_{u∈I(v)} x(u).
//
// Operator caches 1/d_in and provides dense (optionally parallel) and
// sparse products; the sparse forms realize the paper's sparse
// linearization (§3.2) where per-level vectors stay truncated.
package linalg

import (
	"sync"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/sparse"
)

// Operator applies P and Pᵀ for one graph. It is immutable after creation
// and safe for concurrent use; per-call scratch is owned by the caller.
type Operator struct {
	g       *graph.Graph
	invDin  []float64
	workers int
}

// NewOperator builds an operator over g. workers ≤ 1 selects serial
// execution; larger values shard dense products across that many
// goroutines. The paper's experiments run single-threaded for parity
// (§4, "single thread mode"), so the harness uses workers = 1.
func NewOperator(g *graph.Graph, workers int) *Operator {
	if workers < 1 {
		workers = 1
	}
	inv := make([]float64, g.N())
	for v := 0; v < g.N(); v++ {
		if d := g.InDegree(int32(v)); d > 0 {
			inv[v] = 1 / float64(d)
		}
	}
	return &Operator{g: g, invDin: inv, workers: workers}
}

// Graph returns the underlying graph.
func (op *Operator) Graph() *graph.Graph { return op.g }

// Workers returns the configured parallelism.
func (op *Operator) Workers() int { return op.workers }

// shard invokes fn(lo, hi) over a partition of [0, n) using the configured
// worker count.
func (op *Operator) shard(n int, fn func(lo, hi int32)) {
	if op.workers == 1 || n < 4096 {
		fn(0, int32(n))
		return
	}
	var wg sync.WaitGroup
	chunk := (n + op.workers - 1) / op.workers
	for w := 0; w < op.workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int32) {
			defer wg.Done()
			fn(lo, hi)
		}(int32(lo), int32(hi))
	}
	wg.Wait()
}

// ApplyP computes dst = scale·P·x. dst and x must have length n and must
// not alias.
func (op *Operator) ApplyP(dst, x []float64, scale float64) {
	g := op.g
	op.shard(g.N(), func(lo, hi int32) {
		for u := lo; u < hi; u++ {
			s := 0.0
			for _, v := range g.OutNeighbors(u) {
				s += x[v] * op.invDin[v]
			}
			dst[u] = scale * s
		}
	})
}

// ApplyPT computes dst = scale·Pᵀ·x. dst and x must have length n and must
// not alias.
func (op *Operator) ApplyPT(dst, x []float64, scale float64) {
	g := op.g
	op.shard(g.N(), func(lo, hi int32) {
		for v := lo; v < hi; v++ {
			s := 0.0
			for _, u := range g.InNeighbors(v) {
				s += x[u]
			}
			dst[v] = scale * s * op.invDin[v]
		}
	})
}

// ApplyPSparse computes scale·P·x for a sparse x, truncating result entries
// ≤ threshold (pass 0 to keep all). acc is caller-owned scratch sized to n.
func (op *Operator) ApplyPSparse(x *sparse.Vector, acc *sparse.Accumulator, scale, threshold float64) sparse.Vector {
	g := op.g
	for i, v := range x.Idx {
		w := x.Val[i] * op.invDin[v] * scale
		if w == 0 {
			continue
		}
		for _, u := range g.InNeighbors(v) {
			acc.Add(u, w)
		}
	}
	return acc.Build(threshold)
}

// ApplyPTSparse computes scale·Pᵀ·x for a sparse x with truncation.
func (op *Operator) ApplyPTSparse(x *sparse.Vector, acc *sparse.Accumulator, scale, threshold float64) sparse.Vector {
	g := op.g
	for i, u := range x.Idx {
		w := x.Val[i] * scale
		for _, v := range g.OutNeighbors(u) {
			acc.Add(v, w*op.invDin[v])
		}
	}
	return acc.Build(threshold)
}

// DenseP materializes P as a dense n×n row-major matrix. Intended only for
// tests and the power-method baseline on small graphs.
func DenseP(g *graph.Graph) [][]float64 {
	n := g.N()
	mat := make([][]float64, n)
	for i := range mat {
		mat[i] = make([]float64, n)
	}
	for j := int32(0); j < int32(n); j++ {
		d := g.InDegree(j)
		if d == 0 {
			continue
		}
		w := 1 / float64(d)
		for _, i := range g.InNeighbors(j) {
			mat[i][j] = w
		}
	}
	return mat
}
