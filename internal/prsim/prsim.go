// Package prsim implements the PRSim baseline (Wei et al., SIGMOD 2019;
// paper §2): an index-based single-source method whose cost scales with
// ‖π‖², making it the strongest prior art on power-law graphs.
//
// Index: the top hub nodes by walk-decay PageRank get precomputed reverse
// ℓ-hop PPR vectors r_k^ℓ(j) = π_j^ℓ(k) (computed by iterating √c·Pᵀ from
// e_k with sparse truncation), plus Monte-Carlo estimates of their D(k,k).
//
// Query (paper eq. 7): S(i,j) = (1/(1−√c)²)·Σ_ℓ Σ_k π_i^ℓ(k)·π_j^ℓ(k)·D(k,k)
// splits at the hub boundary. The hub part is evaluated exactly against the
// index. The non-hub tail is estimated by sampling: a √c-walk from the
// source emits a stop position (ℓ,k) with probability π_i^ℓ(k); a
// walk-pair trial at k estimates D(k,k); and an importance-weighted
// reverse walk along out-edges lands on a node j* with
// E[weight·1{j*=j}] = P^ℓ(k,j), scattering an unbiased contribution.
//
// Port notes (DESIGN.md §4): the original evaluates the source side by
// sampling as well; we compute the forward vectors exactly (an O(m·L) term
// shared with ParSim/ExactSim) which preserves the index/error tradeoffs
// the paper's figures measure.
package prsim

import (
	"context"
	"math"
	"sort"
	"time"

	"github.com/exactsim/exactsim/internal/diag"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/linalg"
	"github.com/exactsim/exactsim/internal/ppr"
	"github.com/exactsim/exactsim/internal/rng"
	"github.com/exactsim/exactsim/internal/sparse"
)

// Params configures Build.
type Params struct {
	C   float64 // decay factor
	Eps float64 // error target; drives truncation, levels, sample counts
	// HubCount is the number of PageRank-ranked hub nodes to index.
	// 0 selects max(32, n/64) capped at 4096.
	HubCount int
	// SampleFactor scales the Monte-Carlo sample counts (hub D estimates
	// and per-query tail walks); 0 selects 1.0.
	SampleFactor float64
	Workers      int
	Seed         uint64
}

func (p *Params) normalize(n int) {
	if p.SampleFactor == 0 {
		p.SampleFactor = 1
	}
	if p.HubCount == 0 {
		p.HubCount = n / 64
		if p.HubCount < 32 {
			p.HubCount = 32
		}
		if p.HubCount > 4096 {
			p.HubCount = 4096
		}
	}
	if p.HubCount > n {
		p.HubCount = n
	}
}

// Index is the PRSim hub index.
type Index struct {
	g        *graph.Graph
	op       *linalg.Operator
	p        Params
	L        int
	hubs     []graph.NodeID    // sorted by PageRank, descending
	hubPos   []int32           // node → hub slot, -1 for non-hubs
	rev      [][]sparse.Vector // rev[slot][ℓ] = scaled reverse vector
	dHub     []float64         // D̂ for hubs, by slot
	PrepTime time.Duration
}

// Build computes PageRank, selects hubs, precomputes their reverse vectors
// and D estimates.
func Build(g *graph.Graph, p Params) *Index {
	ix, _ := BuildCtx(context.Background(), g, p)
	return ix
}

// BuildCtx is Build under a context: cancellation is observed between the
// per-hub reverse-vector expansions and inside the hub D estimation.
func BuildCtx(ctx context.Context, g *graph.Graph, p Params) (*Index, error) {
	start := time.Now()
	n := g.N()
	p.normalize(n)
	op := linalg.NewOperator(g, 1)
	L := ppr.Levels(p.C, p.Eps)
	sqrtC := math.Sqrt(p.C)

	pr, err := ppr.WalkPageRankCtx(ctx, op, p.C, L)
	if err != nil {
		return nil, err
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if pr[order[a]] != pr[order[b]] {
			return pr[order[a]] > pr[order[b]]
		}
		return order[a] < order[b]
	})
	hubs := make([]graph.NodeID, p.HubCount)
	hubPos := make([]int32, n)
	for i := range hubPos {
		hubPos[i] = -1
	}
	for i := 0; i < p.HubCount; i++ {
		hubs[i] = int32(order[i])
		hubPos[order[i]] = int32(i)
	}

	// Reverse vectors: r^ℓ = (1−√c)(√c·Pᵀ)^ℓ e_k, truncated like the
	// sparse linearization (Lemma 2's threshold).
	threshold := (1 - sqrtC) * (1 - sqrtC) * p.Eps
	rev := make([][]sparse.Vector, p.HubCount)
	acc := sparse.NewAccumulator(n)
	for slot, k := range hubs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		levels := make([]sparse.Vector, 0, L+1)
		cur := sparse.Vector{Idx: []int32{k}, Val: []float64{1 - sqrtC}}
		levels = append(levels, cur.Clone())
		for ell := 1; ell <= L; ell++ {
			cur = op.ApplyPTSparse(&cur, acc, sqrtC, threshold)
			levels = append(levels, cur.Clone())
			if cur.Len() == 0 {
				break
			}
		}
		rev[slot] = levels
	}

	// Hub D estimates: PageRank-proportional allocation out of a total of
	// SampleFactor·ln n/ε² pairs (PRSim's source-independent counterpart of
	// ExactSim's π-allocation), floored at 64 and capped per node.
	ln := math.Log(float64(n))
	if ln < 1 {
		ln = 1
	}
	total := p.SampleFactor * ln / (p.Eps * p.Eps)
	reqs := make([]diag.Request, len(hubs))
	for slot, k := range hubs {
		rk := int(math.Ceil(total * pr[k]))
		if rk < 64 {
			rk = 64
		}
		if rk > 1<<18 {
			rk = 1 << 18
		}
		reqs[slot] = diag.Request{Node: k, Samples: rk}
	}
	dHub, err := diag.BatchCtx(ctx, g, reqs, diag.Options{
		C: p.C, Improved: true, Workers: p.Workers, Seed: p.Seed,
	})
	if err != nil {
		return nil, err
	}

	return &Index{
		g: g, op: op, p: p, L: L,
		hubs: hubs, hubPos: hubPos, rev: rev, dHub: dHub,
		PrepTime: time.Since(start),
	}, nil
}

// Bytes returns the index footprint (reverse vectors + hub metadata + D̂).
func (ix *Index) Bytes() int64 {
	var b int64
	for _, levels := range ix.rev {
		for i := range levels {
			b += levels[i].Bytes()
		}
	}
	b += int64(len(ix.hubs))*4 + int64(len(ix.hubPos))*4 + int64(len(ix.dHub))*8
	return b
}

// Params returns the normalized build parameters.
func (ix *Index) Params() Params { return ix.p }

// HubCount returns the number of indexed hubs.
func (ix *Index) HubCount() int { return len(ix.hubs) }

// SingleSource answers a PRSim single-source query.
func (ix *Index) SingleSource(source graph.NodeID) []float64 {
	s, _ := ix.SingleSourceCtx(context.Background(), source)
	return s
}

// SingleSourceCtx is SingleSource with cancellation checked per forward
// level and every few thousand tail samples (the dominant query cost).
func (ix *Index) SingleSourceCtx(ctx context.Context, source graph.NodeID) ([]float64, error) {
	n := ix.g.N()
	c := ix.p.C
	sqrtC := math.Sqrt(c)
	invNorm := 1 / ((1 - sqrtC) * (1 - sqrtC))
	scores := make([]float64, n)

	// Exact forward vectors for the source.
	hops, err := ppr.HopsCtx(ctx, ix.op, source, ppr.Config{C: c, L: ix.L})
	if err != nil {
		return nil, err
	}

	// Hub part: scatter π_i^ℓ(k)·D̂(k)·r_k^ℓ for every indexed k.
	for ell := 0; ell <= ix.L && ell < len(hops); ell++ {
		h := &hops[ell]
		for t, k := range h.Idx {
			slot := ix.hubPos[k]
			if slot < 0 {
				continue
			}
			levels := ix.rev[slot]
			if ell >= len(levels) {
				continue
			}
			w := invNorm * h.Val[t] * ix.dHub[slot]
			rv := &levels[ell]
			for u, j := range rv.Idx {
				scores[j] += w * rv.Val[u]
			}
		}
	}

	// Non-hub tail by sampling.
	ln := math.Log(float64(n))
	if ln < 1 {
		ln = 1
	}
	rq := int(math.Ceil(ix.p.SampleFactor * ln / (ix.p.Eps * ix.p.Eps)))
	if rq > 1<<22 {
		rq = 1 << 22
	}
	r := rng.New(ix.p.Seed ^ (0xabcdef123456789 + uint64(source)))
	invRq := 1 / float64(rq)
	for s := 0; s < rq; s++ {
		if s&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ix.sampleTail(source, scores, invNorm*invRq, sqrtC, r)
	}
	scores[source] = 1
	return scores, nil
}

// sampleTail performs one tail sample: forward emission walk, D trial,
// importance-weighted reverse walk.
func (ix *Index) sampleTail(source graph.NodeID, scores []float64, scale, sqrtC float64, r *rng.RNG) {
	g := ix.g
	// Forward √c-walk with explicit decay-stop emission: arriving at node
	// v at step ℓ, emit (ℓ,v) with probability 1−√c — exactly π_i^ℓ(v).
	v := source
	ell := 0
	for {
		if r.Float64() >= sqrtC {
			break // emit at (ell, v)
		}
		in := g.InNeighbors(v)
		if len(in) == 0 {
			return // dead-end absorption: no emission
		}
		v = in[r.Intn(len(in))]
		ell++
	}
	if ix.hubPos[v] >= 0 {
		return // hub mass is handled exactly by the index
	}
	// One Bernoulli D trial at v: pair of √c-walks, no meeting → 1.
	d := 1.0
	if pairMeets(g, v, sqrtC, r) {
		d = 0
	}
	if d == 0 {
		return
	}
	// Importance-weighted reverse walk along out-edges:
	// weight = Π d_out(w_t)/d_in(w_{t+1}) makes E[weight·1{land on j}] = P^ℓ(v,j).
	w := v
	weight := 1.0
	for t := 0; t < ell; t++ {
		out := g.OutNeighbors(w)
		if len(out) == 0 {
			return
		}
		next := out[r.Intn(len(out))]
		weight *= float64(len(out)) / float64(g.InDegree(next))
		w = next
	}
	// contribution: (1/(1−√c)²)·π_i^ℓ(v)-sample · D̂ · (1−√c)(√c)^ℓ·weight
	scores[w] += scale * d * (1 - sqrtC) * math.Pow(sqrtC, float64(ell)) * weight
}

// pairMeets simulates two √c-walks from k and reports a meeting at ℓ ≥ 1.
func pairMeets(g *graph.Graph, k graph.NodeID, sqrtC float64, r *rng.RNG) bool {
	x, y := k, k
	for {
		if r.Float64() >= sqrtC || r.Float64() >= sqrtC {
			return false
		}
		xin := g.InNeighbors(x)
		yin := g.InNeighbors(y)
		if len(xin) == 0 || len(yin) == 0 {
			return false
		}
		x = xin[r.Intn(len(xin))]
		y = yin[r.Intn(len(yin))]
		if x == y {
			return true
		}
	}
}
