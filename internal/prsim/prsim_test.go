package prsim

import (
	"math"
	"testing"

	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/powermethod"
	"github.com/exactsim/exactsim/internal/rng"
)

const c = 0.6

func randomGraph(seed uint64, n, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func maxErrRow(got []float64, truth *powermethod.Matrix, src int) float64 {
	worst := 0.0
	for j := range got {
		if d := math.Abs(got[j] - truth.At(src, j)); d > worst {
			worst = d
		}
	}
	return worst
}

func TestBuildShape(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 1)
	ix := Build(g, Params{C: c, Eps: 0.05, Seed: 3})
	if ix.HubCount() != 32 { // n/64 floored at 32
		t.Fatalf("HubCount = %d", ix.HubCount())
	}
	if ix.Bytes() <= 0 || ix.PrepTime <= 0 {
		t.Fatal("index accounting missing")
	}
}

func TestHubCountNormalization(t *testing.T) {
	g := gen.Cycle(10)
	ix := Build(g, Params{C: c, Eps: 0.1, HubCount: 50, Seed: 1})
	if ix.HubCount() != 10 {
		t.Fatalf("HubCount should clamp to n: %d", ix.HubCount())
	}
}

func TestAllHubsIsDeterministicIndexProduct(t *testing.T) {
	// With every node indexed, the tail sampler never fires and the query
	// reduces to the index product; its error comes only from D̂ noise and
	// truncation, so it must track the power method closely.
	g := randomGraph(5, 30, 120)
	truth := powermethod.Compute(g, powermethod.Options{C: c, L: 60})
	ix := Build(g, Params{C: c, Eps: 0.01, HubCount: 30, Seed: 7})
	for _, src := range []int32{0, 11} {
		got := ix.SingleSource(src)
		if e := maxErrRow(got, truth, int(src)); e > 0.05 {
			t.Fatalf("src %d: all-hub error %g", src, e)
		}
	}
}

func TestMixedHubAccuracy(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 9)
	truth := powermethod.Compute(g, powermethod.Options{C: c, L: 60})
	ix := Build(g, Params{C: c, Eps: 0.03, HubCount: 40, Seed: 11})
	worst := 0.0
	for _, src := range []int32{0, 25, 60} {
		got := ix.SingleSource(src)
		if e := maxErrRow(got, truth, int(src)); e > worst {
			worst = e
		}
	}
	// the sampled tail is noisy; assert a loose but meaningful bound
	if worst > 0.15 {
		t.Fatalf("mixed-hub MaxError %g", worst)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := gen.BarabasiAlbert(80, 3, 13)
	a := Build(g, Params{C: c, Eps: 0.05, Seed: 21}).SingleSource(5)
	b := Build(g, Params{C: c, Eps: 0.05, Seed: 21}).SingleSource(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed queries differ at %d", i)
		}
	}
}

func TestIndexGrowsWithPrecision(t *testing.T) {
	g := gen.BarabasiAlbert(300, 4, 15)
	loose := Build(g, Params{C: c, Eps: 0.1, HubCount: 64, Seed: 1})
	tight := Build(g, Params{C: c, Eps: 0.001, HubCount: 64, Seed: 1})
	if tight.Bytes() <= loose.Bytes() {
		t.Fatalf("index should grow as eps shrinks: %d vs %d",
			loose.Bytes(), tight.Bytes())
	}
}

func TestSelfScoreOne(t *testing.T) {
	g := gen.BarabasiAlbert(60, 3, 17)
	s := Build(g, Params{C: c, Eps: 0.05, Seed: 5}).SingleSource(9)
	if s[9] != 1 {
		t.Fatalf("self score %g", s[9])
	}
}

func TestScoresSane(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 19)
	s := Build(g, Params{C: c, Eps: 0.05, Seed: 23}).SingleSource(0)
	for j, v := range s {
		// individual tail samples can overshoot slightly; bound loosely
		if v < 0 || v > 1.5 {
			t.Fatalf("score %d = %g implausible", j, v)
		}
	}
}

func BenchmarkQueryEps5e2(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 5, 1)
	ix := Build(g, Params{C: c, Eps: 0.05, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SingleSource(int32(i % g.N()))
	}
}
