//go:build unix

package store

import (
	"errors"
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The returned release function
// unmaps; the *os.File itself may be closed immediately after mapping
// (the mapping keeps its own reference to the pages). Empty files are
// declined — mmap of length 0 is an error on most kernels, and the
// parser rejects them anyway.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, errors.New("store: size not mappable")
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
