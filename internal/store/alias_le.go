//go:build !(mips || mips64 || ppc64 || s390x)

package store

// hostLittleEndian gates the zero-copy reinterpretations: the container
// is defined little-endian, so aliasing raw bytes as integers is only
// meaningful where the host agrees. Big-endian platforms take the
// explicit-decode path instead (alias_be.go).
const hostLittleEndian = true
