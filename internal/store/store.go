// Package store implements the repository's persistent snapshot
// container: a versioned, checksummed binary file format holding
// sections of little-endian fixed-width data — the graph's CSR arrays,
// and optionally a spill of the diagonal sample index — laid out so the
// whole file can be mmap'd and served zero-copy.
//
// # Container layout
//
// All integers are little-endian. The file is:
//
//	file header (16 B):  magic u64 | format version u32 | section count u32
//	section × count:     id u32 | reserved u32 | payload length u64
//	                     payload (length bytes)
//	                     zero padding to the next 8-byte boundary
//	                     crc64(payload) u64   (ECMA polynomial)
//
// The fixed 16-byte file header and 16-byte section headers, plus the
// payload padding, keep every payload 8-byte aligned relative to the
// start of the file. An mmap'd mapping is page-aligned, so an aligned
// payload can be reinterpreted in place as []int64/[]int32 on 64-bit
// little-endian platforms (see Alias*); everywhere else the same bytes
// decode through explicit little-endian reads behind the same API.
//
// Unknown section ids are preserved and skipped by readers (forward
// compatibility); an unknown format version is rejected (the version
// only changes when the layout above changes incompatibly). Truncation
// anywhere is caught by the byte accounting, bit corruption by the
// per-section CRCs.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc64"
	"io"
)

const (
	// Magic identifies a snapshot container ("EXSIMSNP", read as a
	// little-endian u64 from the file's first 8 bytes).
	Magic = uint64(0x504e534d49535845)
	// Version is the current container format version. Readers reject
	// other versions outright: a layout change bumps it, and silently
	// misparsing someone's graph is worse than asking them to re-convert.
	Version = uint32(1)

	// SectionGraph holds the graph's CSR arrays (see internal/graph).
	SectionGraph = uint32(1)
	// SectionDiagIndex holds a diagonal sample index spill
	// (see internal/diag).
	SectionDiagIndex = uint32(2)

	fileHeaderSize    = 16
	sectionHeaderSize = 16
)

// crcTable is the ECMA-polynomial table shared by every checksum in the
// container (and by the diag spill's own trailer).
var crcTable = crc64.MakeTable(crc64.ECMA)

// CRC64 is the container's checksum function, exported so section
// payloads produced elsewhere (the diag spill) can bind to the same
// definition.
func CRC64(b []byte) uint64 { return crc64.Checksum(b, crcTable) }

// NewCRC64 returns a streaming hasher over the container's checksum
// definition, for payloads too large to buffer (graph checksums hash
// the encoded CSR without materializing it).
func NewCRC64() hash.Hash64 { return crc64.New(crcTable) }

// pad8 returns how many zero bytes follow an n-byte payload.
func pad8(n int64) int64 { return (8 - n&7) & 7 }

var zeros [8]byte

// Writer streams one container to an io.Writer. Sections are declared
// up front (the count sits in the file header) and written strictly in
// call order; each section's payload length must be known before its
// bytes are produced — CSR arrays and index spills both have computable
// sizes, and knowing the length lets the writer stream without seeking.
type Writer struct {
	w         *bufio.Writer
	remaining int
	err       error
}

// NewWriter writes the file header for a container of `sections`
// sections and returns the writer for their payloads.
func NewWriter(w io.Writer, sections int) (*Writer, error) {
	if sections < 0 || sections > 1<<20 {
		return nil, fmt.Errorf("store: implausible section count %d", sections)
	}
	sw := &Writer{w: bufio.NewWriterSize(w, 1<<20), remaining: sections}
	var hdr [fileHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], Magic)
	binary.LittleEndian.PutUint32(hdr[8:], Version)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(sections))
	if _, err := sw.w.Write(hdr[:]); err != nil {
		sw.err = err
		return nil, fmt.Errorf("store: writing file header: %w", err)
	}
	return sw, nil
}

// crcCounter computes the running CRC and length of a section payload
// as it streams through.
type crcCounter struct {
	w   io.Writer
	crc uint64
	n   int64
}

func (c *crcCounter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc64.Update(c.crc, crcTable, p[:n])
	c.n += int64(n)
	return n, err
}

// Section writes one section: header, the payload produced by fn
// (which must write exactly length bytes), alignment padding and the
// payload CRC. It returns the payload's CRC64 — for the graph section
// this value is the graph checksum the diag spill binds to.
func (sw *Writer) Section(id uint32, length int64, fn func(io.Writer) error) (uint64, error) {
	if sw.err != nil {
		return 0, sw.err
	}
	if sw.remaining <= 0 {
		return 0, sw.fail(fmt.Errorf("store: more sections written than the %s header declared", "container"))
	}
	if length < 0 {
		return 0, sw.fail(fmt.Errorf("store: negative section length %d", length))
	}
	sw.remaining--
	var hdr [sectionHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], id)
	binary.LittleEndian.PutUint32(hdr[4:], 0)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(length))
	if _, err := sw.w.Write(hdr[:]); err != nil {
		return 0, sw.fail(fmt.Errorf("store: writing section %d header: %w", id, err))
	}
	cc := &crcCounter{w: sw.w}
	if err := fn(cc); err != nil {
		return 0, sw.fail(fmt.Errorf("store: writing section %d payload: %w", id, err))
	}
	if cc.n != length {
		return 0, sw.fail(fmt.Errorf("store: section %d payload wrote %d bytes, declared %d", id, cc.n, length))
	}
	if _, err := sw.w.Write(zeros[:pad8(length)]); err != nil {
		return 0, sw.fail(fmt.Errorf("store: padding section %d: %w", id, err))
	}
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], cc.crc)
	if _, err := sw.w.Write(tail[:]); err != nil {
		return 0, sw.fail(fmt.Errorf("store: writing section %d checksum: %w", id, err))
	}
	return cc.crc, nil
}

// Close flushes the container. It fails if fewer sections were written
// than the header declared — the file would claim content it does not
// have.
func (sw *Writer) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if sw.remaining != 0 {
		return sw.fail(fmt.Errorf("store: %d declared sections never written", sw.remaining))
	}
	if err := sw.w.Flush(); err != nil {
		return sw.fail(fmt.Errorf("store: flushing container: %w", err))
	}
	return nil
}

func (sw *Writer) fail(err error) error {
	if sw.err == nil {
		sw.err = err
	}
	return err
}

func getU32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

func getU64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }
