package store

import (
	"fmt"
	"io"
	"os"
)

// Section is one parsed container section. Payload aliases the File's
// backing bytes (the mmap'd mapping or the in-memory read); treat it as
// read-only, and do not touch it after File.Close.
type Section struct {
	// ID is the section type (SectionGraph, SectionDiagIndex, ...).
	ID uint32
	// Offset is the payload's byte offset in the file — always 8-byte
	// aligned, which is what makes zero-copy reinterpretation possible.
	Offset int64
	// CRC is the payload's verified CRC64.
	CRC uint64
	// Payload is the section's bytes.
	Payload []byte
}

// File is one opened container: the parsed section table over a backing
// byte slice that is either an mmap'd mapping (Open, on platforms that
// support it) or plain memory (the read fallback, OpenReader). Sections
// alias the backing bytes either way; Close releases the mapping, after
// which no Payload may be touched.
type File struct {
	sections []Section
	mapped   bool
	release  func() error
	closed   bool
}

// Open maps path and parses it as a container. Where mmap is available
// the payloads alias the mapping — the graph is served straight out of
// the page cache, shared across processes, with no allocation; elsewhere
// (or if mapping fails) the file is read into memory with io.ReadFull
// behind the same API. Every section checksum is verified before Open
// returns.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if data, release, err := mapFile(f, size); err == nil {
		file, perr := parse(data)
		if perr != nil {
			release()
			return nil, fmt.Errorf("store: %s: %w", path, perr)
		}
		file.mapped = true
		file.release = release
		return file, nil
	}
	// Fallback: bulk read. Payloads alias the heap buffer, so loads stay
	// single-copy (file → buffer) even without mmap.
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", path, err)
	}
	file, err := parse(data)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return file, nil
}

// OpenReader reads a whole container from r and parses it. Payloads
// alias the read buffer.
func OpenReader(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("store: reading container: %w", err)
	}
	return Parse(data)
}

// Parse parses an in-memory container. Payloads alias data.
func Parse(data []byte) (*File, error) {
	f, err := parse(data)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return f, nil
}

func parse(data []byte) (*File, error) {
	if len(data) < fileHeaderSize {
		return nil, fmt.Errorf("container truncated: %d bytes, want at least the %d-byte header", len(data), fileHeaderSize)
	}
	if m := getU64(data); m != Magic {
		return nil, fmt.Errorf("bad magic %#x (not a snapshot container)", m)
	}
	if v := getU32(data[8:]); v != Version {
		return nil, fmt.Errorf("unsupported container format version %d (this build reads version %d)", v, Version)
	}
	count := int(getU32(data[12:]))
	// The count field sits outside any CRC (only payloads are
	// checksummed), so bound it by what the file could physically hold
	// — each section costs at least its header plus its trailing CRC —
	// before allocating anything proportional to it.
	if maxSections := (len(data) - fileHeaderSize) / (sectionHeaderSize + 8); count > maxSections {
		return nil, fmt.Errorf("container declares %d sections but only %d bytes follow the header", count, len(data)-fileHeaderSize)
	}
	f := &File{sections: make([]Section, 0, count)}
	off := int64(fileHeaderSize)
	total := int64(len(data))
	for i := 0; i < count; i++ {
		if off+sectionHeaderSize > total {
			return nil, fmt.Errorf("container truncated in section %d/%d header", i+1, count)
		}
		id := getU32(data[off:])
		plen := getU64(data[off+8:])
		payloadOff := off + sectionHeaderSize
		if plen > uint64(total) || payloadOff+int64(plen)+pad8(int64(plen))+8 > total {
			return nil, fmt.Errorf("container truncated in section %d/%d (id %d): payload of %d bytes does not fit", i+1, count, id, plen)
		}
		payload := data[payloadOff : payloadOff+int64(plen) : payloadOff+int64(plen)]
		crcOff := payloadOff + int64(plen) + pad8(int64(plen))
		want := getU64(data[crcOff:])
		if got := CRC64(payload); got != want {
			return nil, fmt.Errorf("section %d/%d (id %d) checksum mismatch: file says %#x, payload hashes to %#x", i+1, count, id, want, got)
		}
		f.sections = append(f.sections, Section{ID: id, Offset: payloadOff, CRC: want, Payload: payload})
		off = crcOff + 8
	}
	return f, nil
}

// Section returns the first section with the given id.
func (f *File) Section(id uint32) (Section, bool) {
	for _, s := range f.sections {
		if s.ID == id {
			return s, true
		}
	}
	return Section{}, false
}

// Sections returns the parsed section table in file order.
func (f *File) Sections() []Section { return f.sections }

// Mapped reports whether the backing bytes are an mmap'd mapping (as
// opposed to the read-into-memory fallback).
func (f *File) Mapped() bool { return f.mapped }

// Close releases the mapping (a no-op for the in-memory fallback, where
// the garbage collector owns the buffer). After Close, section payloads
// — and anything aliasing them, like an OpenBinary graph's CSR arrays —
// must not be touched. Close is idempotent.
func (f *File) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	if f.release != nil {
		return f.release()
	}
	return nil
}
