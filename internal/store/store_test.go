package store

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// writeContainer builds a two-section container in memory.
func writeContainer(t *testing.T, a, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Section(SectionGraph, int64(len(a)), func(sw io.Writer) error {
		_, err := sw.Write(a)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Section(SectionDiagIndex, int64(len(b)), func(sw io.Writer) error {
		_, err := sw.Write(b)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestContainerRoundTrip(t *testing.T) {
	a := []byte("the graph payload, deliberately unaligned length!")
	b := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	data := writeContainer(t, a, b)

	f, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Sections()) != 2 {
		t.Fatalf("sections = %d, want 2", len(f.Sections()))
	}
	ga, ok := f.Section(SectionGraph)
	if !ok || !bytes.Equal(ga.Payload, a) {
		t.Fatalf("graph section payload mismatch (ok=%v)", ok)
	}
	if ga.Offset%8 != 0 {
		t.Fatalf("graph payload offset %d not 8-aligned", ga.Offset)
	}
	di, ok := f.Section(SectionDiagIndex)
	if !ok || !bytes.Equal(di.Payload, b) {
		t.Fatalf("diag section payload mismatch (ok=%v)", ok)
	}
	if di.Offset%8 != 0 {
		t.Fatalf("diag payload offset %d not 8-aligned", di.Offset)
	}
	if _, ok := f.Section(99); ok {
		t.Fatal("found a section that was never written")
	}
}

func TestContainerOpenMmap(t *testing.T) {
	a := make([]byte, 4096)
	for i := range a {
		a[i] = byte(i)
	}
	data := writeContainer(t, a, []byte("diag"))
	path := filepath.Join(t.TempDir(), "c.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sec, ok := f.Section(SectionGraph)
	if !ok || !bytes.Equal(sec.Payload, a) {
		t.Fatal("mmap'd payload differs from written payload")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestContainerRejectsCorruption(t *testing.T) {
	data := writeContainer(t, []byte("payload-one"), []byte("payload-two"))

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"clobbered magic", func(d []byte) []byte { d[0] ^= 0xff; return d }},
		{"future version", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:], Version+1)
			return d
		}},
		// The count field is outside CRC coverage; an absurd value must
		// come back as a parse error, not a giant allocation.
		{"absurd section count", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[12:], 0xffffffff)
			return d
		}},
		{"payload bit flip", func(d []byte) []byte { d[fileHeaderSize+sectionHeaderSize] ^= 0x01; return d }},
		{"crc bit flip", func(d []byte) []byte { d[len(d)-1] ^= 0x80; return d }},
		{"truncated header", func(d []byte) []byte { return d[:10] }},
		{"truncated mid-payload", func(d []byte) []byte { return d[:fileHeaderSize+sectionHeaderSize+3] }},
		{"truncated before last crc", func(d []byte) []byte { return d[:len(d)-4] }},
		{"missing second section", func(d []byte) []byte { return d[:fileHeaderSize+sectionHeaderSize+16+8] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(append([]byte(nil), data...))
			if _, err := Parse(mutated); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			// The file-backed path must reject identically.
			path := filepath.Join(t.TempDir(), "bad.snap")
			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(path); err == nil {
				t.Fatalf("%s accepted by Open", tc.name)
			}
		})
	}
}

func TestWriterEnforcesDeclaredShape(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong payload length must fail.
	if _, err := w.Section(SectionGraph, 10, func(sw io.Writer) error {
		_, err := sw.Write([]byte("short"))
		return err
	}); err == nil {
		t.Fatal("length mismatch accepted")
	}

	buf.Reset()
	w, _ = NewWriter(&buf, 2)
	if _, err := w.Section(SectionGraph, 1, func(sw io.Writer) error {
		_, err := sw.Write([]byte{7})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close accepted a container missing a declared section")
	}

	buf.Reset()
	w, _ = NewWriter(&buf, 0)
	if _, err := w.Section(SectionGraph, 0, func(io.Writer) error { return nil }); err == nil {
		t.Fatal("undeclared section accepted")
	}
}

func TestAliasRoundTrip(t *testing.T) {
	xs := []int64{-1, 0, 1, 1 << 40}
	b, ok := AliasBytes64(xs)
	if ok {
		back, ok2 := AliasInt64s(b)
		if !ok2 {
			t.Fatal("AliasInt64s declined bytes produced by AliasBytes64")
		}
		for i := range xs {
			if back[i] != xs[i] {
				t.Fatalf("alias round trip [%d] = %d, want %d", i, back[i], xs[i])
			}
		}
	}
	ys := []int32{-5, 9, 1 << 20}
	b32, ok := AliasBytes32(ys)
	if ok {
		back, ok2 := AliasInt32s(b32)
		if !ok2 {
			t.Fatal("AliasInt32s declined bytes produced by AliasBytes32")
		}
		for i := range ys {
			if back[i] != ys[i] {
				t.Fatalf("alias32 round trip [%d] = %d, want %d", i, back[i], ys[i])
			}
		}
	}
	// Regardless of platform, the encoded image must be little-endian:
	// cross-check against encoding/binary.
	if ok {
		var want bytes.Buffer
		if err := binary.Write(&want, binary.LittleEndian, ys); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b32, want.Bytes()) {
			t.Fatal("aliased bytes are not the little-endian encoding")
		}
	}
	// A length that is not a multiple of the element size must be
	// declined, and so must a misaligned base pointer (constructed from a
	// guaranteed-aligned int64 buffer shifted by 4 bytes).
	if _, ok := AliasInt64s(make([]byte, 17)); ok {
		t.Fatal("aliased a slice with non-multiple-of-8 length")
	}
	if aligned, ok := AliasBytes64(make([]int64, 3)); ok {
		if _, ok := AliasInt64s(aligned[4 : 4+16]); ok {
			t.Fatal("aliased a misaligned base pointer")
		}
	}
}
