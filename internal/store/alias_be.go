//go:build mips || mips64 || ppc64 || s390x

package store

// Big-endian host: container bytes (little-endian by definition) can
// never be reinterpreted in place; every Alias* helper declines and
// callers decode explicitly.
const hostLittleEndian = false
