package store

import "unsafe"

// The Alias* helpers reinterpret container bytes as typed slices — and
// typed slices as bytes — without copying. They succeed only when the
// host is little-endian (matching the on-disk byte order) and the
// pointer is aligned for the element type; callers must keep a fallback
// decode path, which is also the portable path on big-endian hosts.
// Aliased slices share memory with their source: the source must stay
// reachable (and, for mmap-backed bytes, mapped) for the alias's
// lifetime, and neither side may be written.

// AliasInt64s reinterprets b as a []int64 when possible.
func AliasInt64s(b []byte) ([]int64, bool) {
	if !hostLittleEndian || len(b)%8 != 0 {
		return nil, false
	}
	if len(b) == 0 {
		return []int64{}, true
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*int64)(p), len(b)/8), true
}

// AliasInt32s reinterprets b as a []int32 when possible.
func AliasInt32s(b []byte) ([]int32, bool) {
	if !hostLittleEndian || len(b)%4 != 0 {
		return nil, false
	}
	if len(b) == 0 {
		return []int32{}, true
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%4 != 0 {
		return nil, false
	}
	return unsafe.Slice((*int32)(p), len(b)/4), true
}

// AliasBytes64 reinterprets xs as its little-endian byte image when the
// host already stores it that way (the zero-copy write path).
func AliasBytes64(xs []int64) ([]byte, bool) {
	if !hostLittleEndian {
		return nil, false
	}
	if len(xs) == 0 {
		return []byte{}, true
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(xs))), len(xs)*8), true
}

// AliasBytes32 reinterprets xs as its little-endian byte image when the
// host already stores it that way.
func AliasBytes32(xs []int32) ([]byte, bool) {
	if !hostLittleEndian {
		return nil, false
	}
	if len(xs) == 0 {
		return []byte{}, true
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(xs))), len(xs)*4), true
}
