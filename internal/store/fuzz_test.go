package store_test

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/store"
)

// validContainer builds a well-formed single-section container holding
// a real graph CSR payload — the honest starting point the fuzzer
// mutates from.
func validContainer(tb testing.TB) []byte {
	tb.Helper()
	g := graph.FromEdges(6, [][2]graph.NodeID{
		{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {0, 3},
	})
	var buf bytes.Buffer
	sw, err := store.NewWriter(&buf, 1)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := sw.Section(store.SectionGraph, graph.BinarySize(g), func(w io.Writer) error {
		return graph.EncodeCSR(w, g)
	}); err != nil {
		tb.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzOpenContainer throws arbitrary bytes at the container parser and
// the graph decoder behind it — the exact path a daemon walks when it
// boots from a -snapshot file or ingests a peer's /v1/snapshot stream.
// The contract under fuzzing: never panic, never hang; reject or return
// a structurally valid File. When the container parses, the graph
// section must either decode into a graph that passes Validate or be
// rejected — a silently inconsistent graph would poison every
// downstream answer.
func FuzzOpenContainer(f *testing.F) {
	valid := validContainer(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2]) // truncated mid-section
	f.Add(valid[:17])           // truncated mid-section-header

	flipped := bytes.Clone(valid)
	flipped[len(flipped)/2] ^= 0x40 // payload bit rot
	f.Add(flipped)

	bumped := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(bumped[8:], store.Version+1) // future version
	f.Add(bumped)

	badMagic := bytes.Clone(valid)
	badMagic[0] ^= 0xff
	f.Add(badMagic)

	crcSmashed := bytes.Clone(valid)
	crcSmashed[len(crcSmashed)-1] ^= 0x01 // trailing section CRC
	f.Add(crcSmashed)

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := store.Parse(data)
		if err != nil {
			return // rejected: the only acceptable failure mode
		}
		defer file.Close()
		for _, sec := range file.Sections() {
			if int64(len(sec.Payload)) > int64(len(data)) {
				t.Fatalf("section %d claims %d payload bytes from a %d-byte input",
					sec.ID, len(sec.Payload), len(data))
			}
		}
		if _, ok := file.Section(store.SectionGraph); !ok {
			return
		}
		g, _, err := graph.FromContainer(file)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("graph decoded from fuzzed container fails validation: %v", err)
		}
	})
}
