//go:build !unix

package store

import (
	"errors"
	"os"
)

// mapFile on platforms without the unix mmap syscalls always declines,
// sending Open down the io.ReadFull fallback path. The API above this
// point is identical; only Mapped() observes the difference.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, errors.New("store: mmap unsupported on this platform")
}
