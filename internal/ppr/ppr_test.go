package ppr

import (
	"math"
	"testing"

	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/linalg"
	"github.com/exactsim/exactsim/internal/rng"
)

const c = 0.6

func TestLevels(t *testing.T) {
	// L = ceil(log_{1/c}(2/eps)); for c=0.6, eps=1e-7: log(2e7)/log(1/0.6)
	want := int(math.Ceil(math.Log(2e7) / math.Log(1/0.6)))
	if got := Levels(0.6, 1e-7); got != want {
		t.Fatalf("Levels = %d want %d", got, want)
	}
	if got := Levels(0.6, 2); got != 0 {
		t.Fatalf("Levels(0.6, 2) = %d want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Levels with bad args did not panic")
		}
	}()
	Levels(0.6, 0)
}

func TestHopsOnCycle(t *testing.T) {
	// On a directed cycle each node has exactly one in-neighbor, so the
	// √c-walk is deterministic: π^ℓ has a single entry of mass
	// (1−√c)(√c)^ℓ at distance ℓ backwards.
	g := gen.Cycle(5)
	op := linalg.NewOperator(g, 1)
	sqrtC := math.Sqrt(c)
	hops := Hops(op, 0, Config{C: c, L: 6})
	for ell, h := range hops {
		if h.Len() != 1 {
			t.Fatalf("level %d has %d entries", ell, h.Len())
		}
		wantNode := int32(((0-ell)%5 + 5) % 5) // in-neighbor of node k on cycle is k-1
		wantVal := (1 - sqrtC) * math.Pow(sqrtC, float64(ell))
		if h.Idx[0] != wantNode {
			t.Fatalf("level %d at node %d want %d", ell, h.Idx[0], wantNode)
		}
		if math.Abs(h.Val[0]-wantVal) > 1e-15 {
			t.Fatalf("level %d mass %g want %g", ell, h.Val[0], wantVal)
		}
	}
}

func TestHopsMassConservation(t *testing.T) {
	// Without dead ends, Σ_ℓ Σ_k π^ℓ(k) = 1 − (√c)^{L+1}.
	g := gen.Clique(10)
	op := linalg.NewOperator(g, 1)
	L := 20
	hops := Hops(op, 3, Config{C: c, L: L})
	total := 0.0
	for i := range hops {
		total += hops[i].Sum()
	}
	want := 1 - math.Pow(math.Sqrt(c), float64(L+1))
	if math.Abs(total-want) > 1e-12 {
		t.Fatalf("total mass %g want %g", total, want)
	}
}

func TestHopsDeadEndLoseMass(t *testing.T) {
	// Path 0→1→2: source 2 walks to 1 then 0, where d_in=0 absorbs.
	g := gen.Path(3)
	op := linalg.NewOperator(g, 1)
	hops := Hops(op, 2, Config{C: c, L: 10})
	total := 0.0
	for i := range hops {
		total += hops[i].Sum()
	}
	sqrtC := math.Sqrt(c)
	// levels 0,1,2 carry (1-√c), (1-√c)√c, (1-√c)c; everything beyond is 0
	want := (1 - sqrtC) * (1 + sqrtC + c)
	if math.Abs(total-want) > 1e-15 {
		t.Fatalf("total %g want %g", total, want)
	}
	// level 3+ must be empty
	for ell := 3; ell < len(hops); ell++ {
		if hops[ell].Len() != 0 {
			t.Fatalf("level %d nonempty on path", ell)
		}
	}
}

func TestHopsSparseMatchesDense(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(50)
		b := graph.NewBuilder(n)
		for i := 0; i < n*3; i++ {
			b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
		}
		g := b.Build()
		op := linalg.NewOperator(g, 1)
		src := int32(r.Intn(n))
		cfg := Config{C: c, L: 8}
		sp := Hops(op, src, cfg)
		dn := HopsDense(op, src, cfg)
		for ell := 0; ell <= cfg.L; ell++ {
			got := sp[ell].ToDense(n)
			for k := 0; k < n; k++ {
				if math.Abs(got[k]-dn[ell][k]) > 1e-12 {
					t.Fatalf("trial %d level %d node %d: %g vs %g", trial, ell, k, got[k], dn[ell][k])
				}
			}
		}
	}
}

func TestHopsTruncationErrorBounded(t *testing.T) {
	// With threshold th, truncation error propagates additively through the
	// sub-stochastic operator √c·P, so the per-coordinate error at level ℓ
	// is at most th·ℓ plus the level's own truncation — the telescoping
	// bound behind the paper's Lemma 2. Assert error ≤ th·(ℓ+1).
	g := gen.BarabasiAlbert(200, 3, 4)
	op := linalg.NewOperator(g, 1)
	th := 1e-4
	cfg := Config{C: c, L: 10, Threshold: th}
	sp := Hops(op, 0, cfg)
	dn := HopsDense(op, 0, Config{C: c, L: 10})
	for ell := 0; ell <= 10; ell++ {
		got := sp[ell].ToDense(g.N())
		for k := 0; k < g.N(); k++ {
			if diff := math.Abs(got[k] - dn[ell][k]); diff > th*float64(ell+1) {
				t.Fatalf("level %d node %d error %g > %g", ell, k, diff, th*float64(ell+1))
			}
		}
	}
}

func TestSumAggregates(t *testing.T) {
	g := gen.Clique(6)
	op := linalg.NewOperator(g, 1)
	hops := Hops(op, 0, Config{C: c, L: 15})
	pi := Sum(hops, g.N())
	total := pi.Sum()
	want := 1 - math.Pow(math.Sqrt(c), 16)
	if math.Abs(total-want) > 1e-12 {
		t.Fatalf("aggregated mass %g want %g", total, want)
	}
}

func TestTotalBytes(t *testing.T) {
	g := gen.Cycle(4)
	op := linalg.NewOperator(g, 1)
	hops := Hops(op, 0, Config{C: c, L: 3})
	// 4 levels × 1 entry × 12 bytes
	if got := TotalBytes(hops); got != 48 {
		t.Fatalf("TotalBytes = %d", got)
	}
}

func TestWalkPageRankUniformOnCycle(t *testing.T) {
	// Symmetry: on a cycle all nodes have equal PageRank.
	g := gen.Cycle(8)
	op := linalg.NewOperator(g, 1)
	pr := WalkPageRank(op, c, 30)
	for i := 1; i < len(pr); i++ {
		if math.Abs(pr[i]-pr[0]) > 1e-12 {
			t.Fatalf("cycle PageRank not uniform: %g vs %g", pr[i], pr[0])
		}
	}
	sum := 0.0
	for _, v := range pr {
		sum += v
	}
	want := 1 - math.Pow(math.Sqrt(c), 31)
	if math.Abs(sum-want) > 1e-12 {
		t.Fatalf("PageRank mass %g want %g", sum, want)
	}
}

func TestWalkPageRankIsAveragePPR(t *testing.T) {
	r := rng.New(33)
	n := 30
	b := graph.NewBuilder(n)
	for i := 0; i < 120; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	g := b.Build()
	op := linalg.NewOperator(g, 1)
	L := 12
	pr := WalkPageRank(op, c, L)
	avg := make([]float64, n)
	for src := 0; src < n; src++ {
		hops := HopsDense(op, int32(src), Config{C: c, L: L})
		for _, h := range hops {
			for k, v := range h {
				avg[k] += v / float64(n)
			}
		}
	}
	for k := 0; k < n; k++ {
		if math.Abs(pr[k]-avg[k]) > 1e-12 {
			t.Fatalf("PageRank(%d) = %g, average PPR = %g", k, pr[k], avg[k])
		}
	}
}

func TestNorm2SquaredHubEffect(t *testing.T) {
	// A star's PageRank concentrates on the center → larger ‖π‖² than a
	// cycle of the same size (uniform). This is the power-law property the
	// π²-sampling optimization exploits.
	star := gen.Star(50)
	cyc := gen.Cycle(50)
	prS := WalkPageRank(linalg.NewOperator(star, 1), c, 20)
	prC := WalkPageRank(linalg.NewOperator(cyc, 1), c, 20)
	if Norm2Squared(prS) <= Norm2Squared(prC) {
		t.Fatalf("star ‖π‖²=%g should exceed cycle ‖π‖²=%g",
			Norm2Squared(prS), Norm2Squared(prC))
	}
}

func BenchmarkHopsSparse(b *testing.B) {
	g := gen.BarabasiAlbert(50000, 5, 1)
	op := linalg.NewOperator(g, 1)
	cfg := Config{C: c, L: 30, Threshold: 1e-7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hops(op, int32(i%g.N()), cfg)
	}
}

func BenchmarkHopsDense(b *testing.B) {
	g := gen.BarabasiAlbert(50000, 5, 1)
	op := linalg.NewOperator(g, 1)
	cfg := Config{C: c, L: 30}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HopsDense(op, int32(i%g.N()), cfg)
	}
}
