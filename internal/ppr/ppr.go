// Package ppr computes the ℓ-hop Personalized PageRank vectors that drive
// ExactSim's forward phase, plus the walk-decay PageRank used by the PRSim
// baseline for hub selection.
//
// Following the paper's notation, the ℓ-hop PPR vector of source v_i is
//
//	π_i^ℓ = (1−√c) (√c·P)^ℓ e_i ,
//
// i.e. π_i^ℓ(k) is the probability that a √c-walk from v_i stops at v_k in
// exactly ℓ steps. The full PPR vector is π_i = Σ_ℓ π_i^ℓ with Σ_k π_i(k)
// ≤ 1 (dead ends absorb the deficit).
package ppr

import (
	"context"
	"math"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/linalg"
	"github.com/exactsim/exactsim/internal/sparse"
)

// Config controls a hop-vector computation.
type Config struct {
	// C is the SimRank decay factor (the paper uses 0.6 throughout its
	// evaluation; 0.6–0.8 are the typical settings).
	C float64
	// L is the number of hops. ExactSim sets L = ⌈log_{1/c}(2/ε)⌉.
	L int
	// Threshold sparsifies each hop vector: entries ≤ Threshold are
	// dropped after each application of √c·P. Zero keeps everything
	// (the "basic" ExactSim behaviour); the optimized algorithm passes
	// (1−√c)²·ε (paper Lemma 2).
	Threshold float64
}

// Levels returns L = ⌈log_{1/c}(2/ε)⌉, the truncation level that bounds the
// tail error by ε/2 (paper Algorithm 1, line 1).
func Levels(c, eps float64) int {
	if eps <= 0 || c <= 0 || c >= 1 {
		panic("ppr: Levels requires 0<c<1 and eps>0")
	}
	return int(math.Ceil(math.Log(2/eps) / math.Log(1/c)))
}

// Hops returns the sparse hop vectors [π^0, π^1, …, π^L] for the source.
func Hops(op *linalg.Operator, source graph.NodeID, cfg Config) []sparse.Vector {
	out, _ := HopsCtx(context.Background(), op, source, cfg)
	return out
}

// HopsCtx is Hops with per-level cancellation: the context is checked
// before every application of √c·P, so a deadline interrupts the forward
// phase after at most one level's worth of work. Scratch comes from the
// operator's accumulator pool, so a sustained query load does not allocate
// O(n) per forward phase.
func HopsCtx(ctx context.Context, op *linalg.Operator, source graph.NodeID, cfg Config) ([]sparse.Vector, error) {
	sqrtC := math.Sqrt(cfg.C)
	acc := op.GetAccumulator()
	defer op.PutAccumulator(acc)
	out := make([]sparse.Vector, 0, cfg.L+1)
	// Each ApplyPSparse builds a fresh vector, so levels can be retained
	// without cloning.
	cur := sparse.Vector{Idx: []int32{source}, Val: []float64{1 - sqrtC}}
	out = append(out, cur)
	for ell := 1; ell <= cfg.L; ell++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cur = op.ApplyPSparse(&cur, acc, sqrtC, cfg.Threshold)
		out = append(out, cur)
		if cur.Len() == 0 {
			// all mass absorbed or truncated; remaining levels are zero
			for len(out) <= cfg.L {
				out = append(out, sparse.Vector{})
			}
			break
		}
	}
	return out, nil
}

// HopsDense returns dense hop vectors; used by the basic (unoptimized)
// ExactSim variant and by tests.
func HopsDense(op *linalg.Operator, source graph.NodeID, cfg Config) [][]float64 {
	out, _ := HopsDenseCtx(context.Background(), op, source, cfg)
	return out
}

// HopsDenseCtx is HopsDense with per-level cancellation.
func HopsDenseCtx(ctx context.Context, op *linalg.Operator, source graph.NodeID, cfg Config) ([][]float64, error) {
	sqrtC := math.Sqrt(cfg.C)
	n := op.Graph().N()
	out := make([][]float64, cfg.L+1)
	cur := make([]float64, n)
	cur[source] = 1 - sqrtC
	out[0] = append([]float64(nil), cur...)
	next := make([]float64, n)
	for ell := 1; ell <= cfg.L; ell++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		op.ApplyP(next, cur, sqrtC)
		cur, next = next, cur
		out[ell] = append([]float64(nil), cur...)
	}
	return out, nil
}

// Sum aggregates hop vectors into the full PPR vector π_i = Σ_ℓ π_i^ℓ.
func Sum(hops []sparse.Vector, n int) sparse.Vector {
	acc := sparse.NewAccumulator(n)
	for i := range hops {
		h := &hops[i]
		for j, idx := range h.Idx {
			acc.Add(idx, h.Val[j])
		}
	}
	return acc.Build(0)
}

// TotalBytes reports the memory held by a hop-vector stack, for the
// paper's Table 3 accounting.
func TotalBytes(hops []sparse.Vector) int64 {
	var b int64
	for i := range hops {
		b += hops[i].Bytes()
	}
	return b
}

// WalkPageRank returns the decay-√c PageRank vector: the average over all
// sources of the full PPR vector, equivalently the stop distribution of a
// √c-walk started from a uniformly random node. PRSim ranks hub nodes by
// this quantity, and its complexity bound is O(n·‖π‖²·log n/ε²).
func WalkPageRank(op *linalg.Operator, c float64, L int) []float64 {
	out, _ := WalkPageRankCtx(context.Background(), op, c, L)
	return out
}

// WalkPageRankCtx is WalkPageRank with per-level cancellation, so PRSim's
// hub selection — L dense products over the whole graph — honors the same
// deadline contract as every other preprocessing loop.
func WalkPageRankCtx(ctx context.Context, op *linalg.Operator, c float64, L int) ([]float64, error) {
	sqrtC := math.Sqrt(c)
	n := op.Graph().N()
	cur := make([]float64, n)
	for i := range cur {
		cur[i] = (1 - sqrtC) / float64(n)
	}
	total := append([]float64(nil), cur...)
	next := make([]float64, n)
	for ell := 1; ell <= L; ell++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		op.ApplyP(next, cur, sqrtC)
		cur, next = next, cur
		for i, v := range cur {
			total[i] += v
		}
	}
	return total, nil
}

// Norm2Squared returns ‖x‖² = Σ x(k)² of a dense vector.
func Norm2Squared(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}
