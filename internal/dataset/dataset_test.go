package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	if len(All()) != 8 {
		t.Fatalf("expected 8 datasets, have %d", len(All()))
	}
	if len(SmallSpecs()) != 4 || len(LargeSpecs()) != 4 {
		t.Fatalf("class split wrong: %d small, %d large",
			len(SmallSpecs()), len(LargeSpecs()))
	}
}

func TestByKey(t *testing.T) {
	s, err := ByKey("GQ")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "ca-GrQc" {
		t.Fatalf("GQ resolves to %q", s.Name)
	}
	if _, err := ByKey("nope"); err == nil {
		t.Fatal("unknown key accepted")
	}
}

func TestSmallStandInsMatchPaperSizes(t *testing.T) {
	for _, s := range SmallSpecs() {
		g := s.Generate(1)
		if g.N() != s.OrigN && s.Key != "WV" {
			// WV's directed model keeps n exactly too — all four must match
			t.Fatalf("%s: stand-in n=%d, paper n=%d", s.Key, g.N(), s.OrigN)
		}
		// m within 2× of the paper's m (generative models are approximate)
		if g.M() < s.OrigM/2 || g.M() > s.OrigM*2 {
			t.Fatalf("%s: stand-in m=%d too far from paper m=%d", s.Key, g.M(), s.OrigM)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Key, err)
		}
	}
}

func TestUndirectedSpecsAreSymmetric(t *testing.T) {
	for _, s := range All() {
		if s.Directed {
			continue
		}
		g := s.Generate(0.05)
		for v := int32(0); v < int32(g.N()); v++ {
			if g.InDegree(v) != g.OutDegree(v) {
				t.Fatalf("%s: node %d asymmetric in undirected stand-in", s.Key, v)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, key := range []string{"GQ", "WV", "IC"} {
		s, _ := ByKey(key)
		a := s.Generate(0.05)
		b := s.Generate(0.05)
		if a.N() != b.N() || a.M() != b.M() {
			t.Fatalf("%s: generation not deterministic", key)
		}
	}
}

func TestScaleShrinks(t *testing.T) {
	s, _ := ByKey("DB")
	full := s.Generate(0.2)
	tiny := s.Generate(0.02)
	if tiny.N() >= full.N() {
		t.Fatalf("scale did not shrink: %d vs %d", tiny.N(), full.N())
	}
	// silly scales clamp to the floor
	if g := s.Generate(-1); g.N() != s.StandInN {
		t.Fatalf("negative scale should select full size, got n=%d", g.N())
	}
}

func TestLargeDensityPreserved(t *testing.T) {
	for _, s := range LargeSpecs() {
		g := s.Generate(0.05)
		origDensity := float64(s.OrigM) / float64(s.OrigN)
		gotDensity := float64(g.M()) / float64(g.N())
		if gotDensity < origDensity/3 || gotDensity > origDensity*3 {
			t.Fatalf("%s: density %f vs original %f", s.Key, gotDensity, origDensity)
		}
	}
}

func TestWriteTable2(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable2(&buf, 0.02); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ca-GrQc", "Twitter", "It-2004", "directed", "undirected"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 output missing %q:\n%s", want, out)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 9 {
		t.Fatalf("Table 2 should have header + 8 rows:\n%s", out)
	}
}

func TestSeedOfDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, s := range All() {
		if prev, dup := seen[seedOf(s.Key)]; dup {
			t.Fatalf("seed collision between %s and %s", prev, s.Key)
		}
		seen[seedOf(s.Key)] = s.Key
	}
}
