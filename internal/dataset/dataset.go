// Package dataset registers synthetic stand-ins for the eight datasets of
// the paper's Table 2. The originals are SNAP/LAW downloads unavailable in
// this offline environment; each stand-in is generated (internal/gen) with
// a model chosen to match the original's class and degree structure:
//
//   - co-authorship graphs (GQ, HT, HP, DB) → undirected Barabási–Albert,
//   - social/vote graphs (WV, TW)           → directed scale-free
//     (Bollobás et al.),
//   - web crawls (IC, IT)                   → R-MAT with web parameters
//     (0.57, 0.19, 0.19, 0.05).
//
// Small graphs keep the paper's exact node counts (the power method must
// remain feasible on them, as in the paper); large graphs are scaled down
// to container size while preserving m/n. DESIGN.md §4 argues why this
// preserves every phenomenon the evaluation measures. The Scale parameter
// lets the harness shrink everything further for quick runs.
package dataset

import (
	"fmt"
	"io"
	"sort"

	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/graph"
)

// Class separates the paper's small graphs (power-method ground truth)
// from the large ones (ExactSim@1e-7 ground truth).
type Class int

const (
	// Small marks the four graphs of §4.1.
	Small Class = iota
	// Large marks the four graphs of §4.2.
	Large
)

// Spec describes one dataset stand-in.
type Spec struct {
	Key      string // short key used by the harness and CLI (e.g. "GQ")
	Name     string // the original's name (e.g. "ca-GrQc")
	Directed bool
	Class    Class
	// OrigN and OrigM are the paper's Table 2 numbers.
	OrigN, OrigM int
	// StandInN is the default generated node count (scale 1.0).
	StandInN int
	build    func(n int, seed uint64) *graph.Graph
}

// Generate builds the stand-in at the given scale in (0,1]; scale 1 gives
// StandInN nodes. Generation is deterministic per (Key, scale).
func (s Spec) Generate(scale float64) *graph.Graph {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	n := int(float64(s.StandInN) * scale)
	if n < 16 {
		n = 16
	}
	return s.build(n, seedOf(s.Key))
}

func seedOf(key string) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range []byte(key) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// ba builds an undirected Barabási–Albert stand-in with attachment k.
func ba(k int) func(n int, seed uint64) *graph.Graph {
	return func(n int, seed uint64) *graph.Graph {
		return gen.BarabasiAlbert(n, k, seed)
	}
}

// dsf builds a directed scale-free stand-in with edge density mPerN.
func dsf(mPerN int) func(n int, seed uint64) *graph.Graph {
	return func(n int, seed uint64) *graph.Graph {
		return gen.DirectedScaleFree(n, mPerN*n, 0.15, 0.70, 0.15, 1.0, 1.0, seed)
	}
}

// rmat builds a web-crawl stand-in; n is rounded up to a power of two.
func rmat(mPerN int) func(n int, seed uint64) *graph.Graph {
	return func(n int, seed uint64) *graph.Graph {
		scale := 4
		for 1<<scale < n {
			scale++
		}
		return gen.RMAT(scale, mPerN*(1<<scale), 0.57, 0.19, 0.19, 0.05, seed)
	}
}

var specs = []Spec{
	// Small graphs: exact paper sizes (Table 2), densities to match m.
	{Key: "GQ", Name: "ca-GrQc", Directed: false, Class: Small,
		OrigN: 5242, OrigM: 28968, StandInN: 5242, build: ba(3)},
	{Key: "HT", Name: "CA-HepTh", Directed: false, Class: Small,
		OrigN: 9877, OrigM: 51946, StandInN: 9877, build: ba(3)},
	{Key: "WV", Name: "Wikivote", Directed: true, Class: Small,
		OrigN: 7115, OrigM: 103689, StandInN: 7115, build: dsf(15)},
	{Key: "HP", Name: "CA-HepPh", Directed: false, Class: Small,
		OrigN: 12008, OrigM: 236978, StandInN: 12008, build: ba(10)},
	// Large graphs: scaled-down stand-ins with original m/n.
	{Key: "DB", Name: "DBLP-Author", Directed: false, Class: Large,
		OrigN: 5425963, OrigM: 17298032, StandInN: 100000, build: ba(2)},
	{Key: "IC", Name: "IndoChina", Directed: true, Class: Large,
		OrigN: 7414768, OrigM: 191606827, StandInN: 131072, build: rmat(26)},
	{Key: "IT", Name: "It-2004", Directed: true, Class: Large,
		OrigN: 41290682, OrigM: 1135718909, StandInN: 262144, build: rmat(27)},
	{Key: "TW", Name: "Twitter", Directed: true, Class: Large,
		OrigN: 41652230, OrigM: 1468364884, StandInN: 250000, build: dsf(35)},
}

// All returns every dataset spec in Table 2 order.
func All() []Spec { return append([]Spec(nil), specs...) }

// SmallSpecs returns the four small-graph specs.
func SmallSpecs() []Spec { return filter(Small) }

// LargeSpecs returns the four large-graph specs.
func LargeSpecs() []Spec { return filter(Large) }

func filter(c Class) []Spec {
	var out []Spec
	for _, s := range specs {
		if s.Class == c {
			out = append(out, s)
		}
	}
	return out
}

// ByKey finds a spec by its short key (case-sensitive).
func ByKey(key string) (Spec, error) {
	for _, s := range specs {
		if s.Key == key {
			return s, nil
		}
	}
	keys := make([]string, len(specs))
	for i, s := range specs {
		keys[i] = s.Key
	}
	sort.Strings(keys)
	return Spec{}, fmt.Errorf("dataset: unknown key %q (have %v)", key, keys)
}

// WriteTable2 renders the paper's Table 2 alongside the generated stand-in
// sizes at the given scale.
func WriteTable2(w io.Writer, scale float64) error {
	if _, err := fmt.Fprintf(w, "%-4s %-12s %-10s %12s %14s %12s %14s\n",
		"Key", "Data Set", "Type", "paper n", "paper m", "stand-in n", "stand-in m"); err != nil {
		return err
	}
	for _, s := range specs {
		g := s.Generate(scale)
		typ := "undirected"
		if s.Directed {
			typ = "directed"
		}
		if _, err := fmt.Fprintf(w, "%-4s %-12s %-10s %12d %14d %12d %14d\n",
			s.Key, s.Name, typ, s.OrigN, s.OrigM, g.N(), g.M()); err != nil {
			return err
		}
	}
	return nil
}
