package fault

import (
	"errors"
	"io"
)

// ErrTornWrite is the error a torn-write fault surfaces as: part of the
// buffer reached the destination, the rest did not — the disk-side
// analogue of a connection reset.
var ErrTornWrite = errors.New("fault: injected torn write")

// Reader wraps r with the injector's schedule on the container *read*
// path: corrupt XORs one byte of a chunk with a random nonzero mask
// (silent at this layer — the container CRC64 is what must catch it),
// short cuts the stream with io.ErrUnexpectedEOF.
func (in *Injector) Reader(r io.Reader) io.Reader {
	return &faultReader{in: in, r: r}
}

type faultReader struct {
	in  *Injector
	r   io.Reader
	cut bool
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if fr.cut {
		return 0, io.ErrUnexpectedEOF
	}
	n, err := fr.r.Read(p)
	if n > 0 {
		fr.in.mu.Lock()
		if fr.in.roll(fr.in.cfg.CorruptProb) {
			i, mask := fr.in.intn(n), byte(1+fr.in.intn(255))
			p[i] ^= mask
			fr.in.counts.Corruptions++
		}
		if fr.in.roll(fr.in.cfg.ShortBodyProb) {
			fr.cut = true
			fr.in.counts.ShortBodies++
		}
		fr.in.mu.Unlock()
	}
	return n, err
}

// Writer wraps w with the injector's schedule on the container *write*
// path: torn stops a Write partway and fails with ErrTornWrite (the
// caller's temp-file discipline must prevent the partial write from ever
// becoming the live file), corrupt silently XORs one byte so the
// resulting container is complete but wrong — the read-side CRC64 and
// the boot-time quarantine are what must catch that.
func (in *Injector) Writer(w io.Writer) io.Writer {
	return &faultWriter{in: in, w: w}
}

type faultWriter struct {
	in *Injector
	w  io.Writer
}

// decideWrite draws the write-path decisions for one buffer of length n.
func (in *Injector) decideWrite(n int) (tornAt int, corruptAt int, mask byte) {
	in.mu.Lock()
	defer in.mu.Unlock()
	tornAt, corruptAt = -1, -1
	if in.roll(in.cfg.TornWriteProb) {
		tornAt = in.intn(n)
		in.counts.TornWrites++
	}
	if in.roll(in.cfg.CorruptProb) {
		corruptAt, mask = in.intn(n), byte(1+in.intn(255))
		in.counts.Corruptions++
	}
	return tornAt, corruptAt, mask
}

// applyWrite performs one faulted write of p via raw, honoring the
// decisions from decideWrite without mutating the caller's buffer.
func applyWrite(p []byte, tornAt, corruptAt int, mask byte, raw func([]byte) (int, error)) (int, error) {
	if corruptAt >= 0 && (tornAt < 0 || corruptAt < tornAt) {
		dup := make([]byte, len(p))
		copy(dup, p)
		dup[corruptAt] ^= mask
		p = dup
	}
	if tornAt < 0 {
		return raw(p)
	}
	n, err := raw(p[:tornAt])
	if err != nil {
		return n, err
	}
	return n, ErrTornWrite
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return fw.w.Write(p)
	}
	tornAt, corruptAt, mask := fw.in.decideWrite(len(p))
	return applyWrite(p, tornAt, corruptAt, mask, fw.w.Write)
}

// WriterAt wraps w the same way Writer does, for positioned writers.
func (in *Injector) WriterAt(w io.WriterAt) io.WriterAt {
	return &faultWriterAt{in: in, w: w}
}

type faultWriterAt struct {
	in *Injector
	w  io.WriterAt
}

func (fw *faultWriterAt) WriteAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return fw.w.WriteAt(p, off)
	}
	tornAt, corruptAt, mask := fw.in.decideWrite(len(p))
	return applyWrite(p, tornAt, corruptAt, mask, func(b []byte) (int, error) {
		return fw.w.WriteAt(b, off)
	})
}
