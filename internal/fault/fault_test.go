package fault

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// TestScheduleDeterministic: the decision stream is a pure function of
// (seed, config) — two injectors with the same seed agree draw for draw,
// and a different seed diverges.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, ResetProb: 0.3, Error5xxProb: 0.2, ShortBodyProb: 0.1, CorruptProb: 0.1}
	a, b := New(cfg), New(cfg)
	var seqA, seqB []exchange
	for i := 0; i < 200; i++ {
		seqA = append(seqA, a.drawExchange())
		seqB = append(seqB, b.drawExchange())
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("draw %d diverged under one seed: %+v vs %+v", i, seqA[i], seqB[i])
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("counts diverged: %+v vs %+v", a.Counts(), b.Counts())
	}

	cfg.Seed = 43
	c := New(cfg)
	same := true
	for i := 0; i < 200; i++ {
		if c.drawExchange() != seqA[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seed 43 reproduced seed 42's schedule exactly — stream is not seed-driven")
	}

	// The mix roughly matches the probabilities (loose bounds; the point
	// is "faults actually fire", not a statistics test).
	ct := a.Counts()
	if ct.Resets == 0 || ct.Errors5xx == 0 || ct.ShortBodies == 0 || ct.Corruptions == 0 {
		t.Fatalf("some enabled fault kind never fired in 200 exchanges: %+v", ct)
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := New(Config{Seed: 7})
	if in.Config().Enabled() {
		t.Fatal("zero config reports Enabled")
	}
	for i := 0; i < 50; i++ {
		if d := in.drawExchange(); d != (exchange{}) {
			t.Fatalf("zero config produced a fault: %+v", d)
		}
	}
	if ct := in.Counts(); ct.Draws != 0 {
		t.Fatalf("zero config consumed draws: %+v", ct)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("latency=0.05:2ms,reset=0.1,5xx=0.05,short=0.04,corrupt=0.02,torn=0.01", 99)
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 99, LatencyProb: 0.05, Latency: 2 * time.Millisecond,
		ResetProb: 0.1, Error5xxProb: 0.05, ShortBodyProb: 0.04,
		CorruptProb: 0.02, TornWriteProb: 0.01,
	}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	if cfg, err := ParseSpec("latency=0.5", 0); err != nil || cfg.Latency != 5*time.Millisecond {
		t.Fatalf("default latency duration: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{"reset=1.5", "bogus=0.1", "reset", "reset=x", "reset=0.1:2ms", "latency=0.1:nope"} {
		if _, err := ParseSpec(bad, 0); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
	if cfg, err := ParseSpec("  ", 5); err != nil || cfg.Enabled() {
		t.Fatalf("blank spec: cfg=%+v err=%v", cfg, err)
	}
}

// TestTransportFaultKinds drives each kind through a real HTTP exchange
// by pinning its probability to 1.
func TestTransportFaultKinds(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Write(bytes.Repeat([]byte(`{"ok":true}`), 100))
	}))
	defer ts.Close()

	t.Run("reset", func(t *testing.T) {
		in := New(Config{Seed: 1, ResetProb: 1})
		hc := &http.Client{Transport: in.Transport(nil)}
		_, err := hc.Post(ts.URL, "application/json", strings.NewReader("{}"))
		if !errors.Is(err, ErrInjectedReset) {
			t.Fatalf("want injected reset, got %v", err)
		}
		if in.Counts().Resets != 1 {
			t.Fatalf("counts: %+v", in.Counts())
		}
	})

	t.Run("5xx", func(t *testing.T) {
		in := New(Config{Seed: 1, Error5xxProb: 1})
		hc := &http.Client{Transport: in.Transport(nil)}
		res, err := hc.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", res.StatusCode)
		}
		body, _ := io.ReadAll(res.Body)
		if !strings.Contains(string(body), "injected 5xx") {
			t.Fatalf("body %q", body)
		}
	})

	t.Run("short", func(t *testing.T) {
		in := New(Config{Seed: 1, ShortBodyProb: 1})
		hc := &http.Client{Transport: in.Transport(nil)}
		res, err := hc.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		data, err := io.ReadAll(res.Body)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("want unexpected EOF, got err=%v (read %d bytes)", err, len(data))
		}
		if len(data) == 0 || len(data) >= 1100 {
			t.Fatalf("short body read %d bytes", len(data))
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		in := New(Config{Seed: 1, CorruptProb: 1})
		hc := &http.Client{Transport: in.Transport(nil)}
		res, err := hc.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		data, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(data, []byte{0x01}) {
			t.Fatal("corrupted body carries no 0x01 byte")
		}
	})

	t.Run("latency", func(t *testing.T) {
		in := New(Config{Seed: 1, LatencyProb: 1, Latency: 30 * time.Millisecond})
		hc := &http.Client{Transport: in.Transport(nil)}
		start := time.Now()
		res, err := hc.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if d := time.Since(start); d < 30*time.Millisecond {
			t.Fatalf("exchange took %v, want ≥ 30ms", d)
		}
	})
}

func TestReaderCorruptsOneByte(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAA}, 4096)
	in := New(Config{Seed: 3, CorruptProb: 1})
	got, err := io.ReadAll(io.NopCloser(in.Reader(bytes.NewReader(payload))))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("reader with corrupt=1 returned the payload unmodified")
	}
	if len(got) != len(payload) {
		t.Fatalf("length changed: %d vs %d", len(got), len(payload))
	}
}

func TestReaderShortCut(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAA}, 4096)
	in := New(Config{Seed: 3, ShortBodyProb: 1})
	got, err := io.ReadAll(in.Reader(bytes.NewReader(payload)))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want unexpected EOF, got %v after %d bytes", err, len(got))
	}
}

func TestWriterTornWrite(t *testing.T) {
	var buf bytes.Buffer
	in := New(Config{Seed: 5, TornWriteProb: 1})
	n, err := in.Writer(&buf).Write(bytes.Repeat([]byte{0x55}, 1024))
	if !errors.Is(err, ErrTornWrite) {
		t.Fatalf("want torn write, got %v", err)
	}
	if n != buf.Len() || n >= 1024 {
		t.Fatalf("reported %d written, buffer has %d", n, buf.Len())
	}
}

func TestWriterSilentCorruption(t *testing.T) {
	src := bytes.Repeat([]byte{0x55}, 1024)
	var buf bytes.Buffer
	in := New(Config{Seed: 5, CorruptProb: 1})
	w := in.Writer(&buf)
	if _, err := w.Write(src); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf.Bytes(), src) {
		t.Fatal("corrupt=1 write arrived intact")
	}
	for _, b := range src {
		if b != 0x55 {
			t.Fatal("writer mutated the caller's buffer")
		}
	}
}

func TestWriterAtTornWrite(t *testing.T) {
	tmp, err := os.CreateTemp(t.TempDir(), "fault-*")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	in := New(Config{Seed: 5, TornWriteProb: 1})
	n, err := in.WriterAt(tmp).WriteAt(bytes.Repeat([]byte{0x77}, 512), 0)
	if !errors.Is(err, ErrTornWrite) {
		t.Fatalf("want torn write, got %v (n=%d)", err, n)
	}
	if n >= 512 {
		t.Fatalf("torn WriteAt reported full length %d", n)
	}
}
