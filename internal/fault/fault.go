// Package fault is a seeded, deterministic fault injector: one splitmix64
// stream drives every probabilistic decision, so a single seed reproduces
// an entire chaos run — the same schedule of latencies, resets, 5xx
// bodies, corrupted bytes and torn writes, in the same order.
//
// The injector wraps the two choke points the serving stack already
// funnels everything through: http.RoundTripper (httpapi.Client, the
// cluster router's probes and clones) and io.Reader/Writer/WriterAt (the
// store container read/write paths). Determinism is per *decision
// stream*: the k-th draw always yields the same verdict for a given seed;
// which goroutine consumes the k-th draw depends on scheduling, which is
// exactly the nondeterminism a chaos run wants to explore while keeping
// the fault mix reproducible.
//
// Fault kinds and where they bite:
//
//   - latency   — RoundTrip sleeps before forwarding (tail amplification)
//   - reset     — RoundTrip fails before forwarding (connection reset;
//     the request never reached the server, so retrying is always safe)
//   - 5xx       — RoundTrip synthesizes a 503 with a non-protocol body
//   - short     — response body is cut after a prefix (unexpected EOF)
//   - corrupt   — one response-body byte is overwritten with 0x01 on the
//     HTTP path (0x01 is invalid anywhere in JSON, so corruption is
//     always *detected*, never silently accepted — which is what keeps
//     the bit-determinism oracle sound); on the io paths a byte is XORed
//     with a random nonzero mask (the container CRC64 catches it)
//   - torn      — a Write/WriteAt stops partway and fails (partial write)
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config sets the per-decision probabilities of each fault kind. All
// probabilities are in [0, 1]; zero disables that kind. The zero Config
// injects nothing (every wrapper becomes a pass-through).
type Config struct {
	Seed uint64

	// LatencyProb adds Latency before forwarding a request.
	LatencyProb float64
	Latency     time.Duration

	// ResetProb fails a request before it is sent, modeling a connection
	// reset. Because the request never reaches the server, a retry can
	// never double-apply it.
	ResetProb float64

	// Error5xxProb replaces the exchange with a synthesized 503 whose
	// body is not the protocol's JSON.
	Error5xxProb float64

	// ShortBodyProb truncates the response body partway, surfacing as
	// io.ErrUnexpectedEOF to the reader.
	ShortBodyProb float64

	// CorruptProb flips one byte: on the HTTP response path the byte is
	// overwritten with 0x01 (invalid in JSON → always detected); on the
	// io wrappers it is XORed with a random nonzero mask (CRC-detected).
	CorruptProb float64

	// TornWriteProb makes a Write/WriteAt stop partway and fail.
	TornWriteProb float64
}

// Enabled reports whether any fault kind has a nonzero probability.
func (c Config) Enabled() bool {
	return c.LatencyProb > 0 || c.ResetProb > 0 || c.Error5xxProb > 0 ||
		c.ShortBodyProb > 0 || c.CorruptProb > 0 || c.TornWriteProb > 0
}

// Counts reports how many faults of each kind an Injector has fired —
// the receipts that prove a chaos run actually exercised something.
type Counts struct {
	Draws       int64 `json:"draws"`
	Latencies   int64 `json:"latencies"`
	Resets      int64 `json:"resets"`
	Errors5xx   int64 `json:"errors_5xx"`
	ShortBodies int64 `json:"short_bodies"`
	Corruptions int64 `json:"corruptions"`
	TornWrites  int64 `json:"torn_writes"`
}

// Injector draws fault decisions from one seeded splitmix64 stream. It is
// safe for concurrent use; all draws serialize under one mutex so the
// decision sequence is a pure function of the seed.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	state  uint64
	counts Counts
}

// New builds an injector for cfg, seeding the decision stream from
// cfg.Seed.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, state: cfg.Seed}
}

// Config returns the configuration the injector was built with.
func (in *Injector) Config() Config { return in.cfg }

// Counts snapshots the fault receipts so far.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// next advances the splitmix64 stream. Callers hold in.mu.
func (in *Injector) next() uint64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll draws one uniform [0,1) variate and compares it to p. Callers
// hold in.mu. A p ≤ 0 consumes no draw, so disabling a fault kind does
// not shift the schedule of the enabled ones... it does shift relative
// to a config where it was enabled — determinism is per (seed, config).
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	in.counts.Draws++
	return float64(in.next()>>11)/(1<<53) < p
}

// intn draws a uniform integer in [0, n). Callers hold in.mu; n > 0.
func (in *Injector) intn(n int) int {
	return int(in.next() % uint64(n))
}

// ParseSpec parses the -fault flag grammar: a comma-separated list of
// kind=prob entries, where latency also takes a duration —
//
//	latency=0.05:2ms,reset=0.1,5xx=0.05,short=0.04,corrupt=0.02,torn=0.01
//
// Unknown kinds and out-of-range probabilities are errors. The seed is
// carried separately (-fault-seed) so one schedule spec can be replayed
// under many seeds.
func ParseSpec(spec string, seed uint64) (Config, error) {
	cfg := Config{Seed: seed}
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		kind, val, ok := strings.Cut(field, "=")
		if !ok {
			return cfg, fmt.Errorf("fault: entry %q is not kind=prob", field)
		}
		probStr, durStr, hasDur := strings.Cut(val, ":")
		p, err := strconv.ParseFloat(probStr, 64)
		if err != nil || p < 0 || p > 1 {
			return cfg, fmt.Errorf("fault: %s probability %q not in [0,1]", kind, probStr)
		}
		if hasDur && kind != "latency" {
			return cfg, fmt.Errorf("fault: only latency takes a duration, not %q", kind)
		}
		switch kind {
		case "latency":
			cfg.LatencyProb = p
			cfg.Latency = 5 * time.Millisecond
			if hasDur {
				d, err := time.ParseDuration(durStr)
				if err != nil || d < 0 {
					return cfg, fmt.Errorf("fault: bad latency duration %q", durStr)
				}
				cfg.Latency = d
			}
		case "reset":
			cfg.ResetProb = p
		case "5xx":
			cfg.Error5xxProb = p
		case "short":
			cfg.ShortBodyProb = p
		case "corrupt":
			cfg.CorruptProb = p
		case "torn":
			cfg.TornWriteProb = p
		default:
			return cfg, fmt.Errorf("fault: unknown kind %q (want latency, reset, 5xx, short, corrupt, torn)", kind)
		}
	}
	return cfg, nil
}

// String renders the counts compactly for logs.
func (c Counts) String() string {
	parts := map[string]int64{
		"latency": c.Latencies, "reset": c.Resets, "5xx": c.Errors5xx,
		"short": c.ShortBodies, "corrupt": c.Corruptions, "torn": c.TornWrites,
	}
	keys := make([]string, 0, len(parts))
	for k, v := range parts {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return fmt.Sprintf("%d draws, no faults", c.Draws)
	}
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s=%d", k, parts[k])
	}
	return fmt.Sprintf("%d draws: %s", c.Draws, strings.Join(out, " "))
}
