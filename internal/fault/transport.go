package fault

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"time"
)

// ErrInjectedReset is the transport error a reset fault surfaces as.
// It fires *before* the request is forwarded, so — like a real reset
// raced against connection establishment — the server never saw the
// request and a retry cannot double-apply it.
var ErrInjectedReset = errors.New("fault: injected connection reset")

// exchange is the full decision set for one HTTP round trip, drawn under
// one lock so concurrent requests interleave whole exchanges rather than
// individual rolls.
type exchange struct {
	latency   time.Duration
	reset     bool
	err5xx    bool
	shortBody bool
	corrupt   bool
}

func (in *Injector) drawExchange() exchange {
	in.mu.Lock()
	defer in.mu.Unlock()
	var d exchange
	if in.roll(in.cfg.LatencyProb) {
		d.latency = in.cfg.Latency
		in.counts.Latencies++
	}
	if in.roll(in.cfg.ResetProb) {
		d.reset = true
		in.counts.Resets++
		return d // the exchange dies here; later kinds are moot
	}
	if in.roll(in.cfg.Error5xxProb) {
		d.err5xx = true
		in.counts.Errors5xx++
		return d
	}
	if in.roll(in.cfg.ShortBodyProb) {
		d.shortBody = true
		in.counts.ShortBodies++
	}
	if in.roll(in.cfg.CorruptProb) {
		d.corrupt = true
		in.counts.Corruptions++
	}
	return d
}

// Transport wraps base (nil = http.DefaultTransport) with the injector's
// fault schedule. Install it on any *http.Client — httpapi.WithHTTPClient,
// cluster.Options.HTTPClient — and every exchange through that client
// draws from the seeded stream.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &roundTripper{in: in, base: base}
}

type roundTripper struct {
	in   *Injector
	base http.RoundTripper
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	d := rt.in.drawExchange()
	if d.latency > 0 {
		t := time.NewTimer(d.latency)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
	}
	if d.reset {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, ErrInjectedReset
	}
	if d.err5xx {
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:       io.NopCloser(strings.NewReader("fault: injected 5xx\n")),
			Request:    req,
		}, nil
	}
	resp, err := rt.base.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if d.shortBody {
		// Cut after a small prefix; the injector picks where.
		rt.in.mu.Lock()
		cut := 1 + rt.in.intn(64)
		rt.in.mu.Unlock()
		resp.Body = &shortBody{rc: resp.Body, remain: int64(cut)}
		resp.ContentLength = -1
	}
	if d.corrupt {
		rt.in.mu.Lock()
		off := rt.in.intn(1 << 10)
		rt.in.mu.Unlock()
		resp.Body = &corruptBody{rc: resp.Body, off: int64(off)}
	}
	return resp, nil
}

// shortBody yields remain bytes then fails with io.ErrUnexpectedEOF,
// modeling a connection cut mid-body.
type shortBody struct {
	rc     io.ReadCloser
	remain int64
}

func (s *shortBody) Read(p []byte) (int, error) {
	if s.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > s.remain {
		p = p[:s.remain]
	}
	n, err := s.rc.Read(p)
	s.remain -= int64(n)
	if err == io.EOF {
		return n, io.EOF // body was shorter than the cut; nothing to truncate
	}
	if err == nil && s.remain <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (s *shortBody) Close() error { return s.rc.Close() }

// corruptBody overwrites the byte at off (clamped into the body if the
// body is shorter) with 0x01. 0x01 is invalid anywhere in JSON — as a raw
// control character inside a string and as a token everywhere else — so a
// corrupted protocol body always fails to decode instead of silently
// yielding wrong scores. That choice is what lets the chaos suite keep
// "every accepted answer is bit-identical" as its oracle.
type corruptBody struct {
	rc   io.ReadCloser
	off  int64
	pos  int64
	done bool
}

func (c *corruptBody) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	if n > 0 && !c.done {
		i := c.off - c.pos
		if i < 0 || i >= int64(n) {
			// Target offset not in this chunk; if the body is ending
			// before reaching it, corrupt the last byte we have.
			if err != nil && n > 0 {
				i = int64(n - 1)
			} else if i < 0 {
				i = 0
			} else {
				c.pos += int64(n)
				return n, err
			}
		}
		p[i] = 0x01
		c.done = true
	}
	c.pos += int64(n)
	return n, err
}

func (c *corruptBody) Close() error { return c.rc.Close() }
