package graph

import (
	"testing"

	"github.com/exactsim/exactsim/internal/rng"
)

func TestDynamicBasics(t *testing.T) {
	d := NewDynamic(4)
	if !d.AddEdge(0, 1) {
		t.Fatal("fresh edge rejected")
	}
	if d.AddEdge(0, 1) {
		t.Fatal("duplicate edge accepted")
	}
	if d.AddEdge(2, 2) {
		t.Fatal("self-loop accepted")
	}
	if d.M() != 1 || !d.HasEdge(0, 1) || d.HasEdge(1, 0) {
		t.Fatalf("state wrong: m=%d", d.M())
	}
	if !d.RemoveEdge(0, 1) {
		t.Fatal("existing edge not removed")
	}
	if d.RemoveEdge(0, 1) {
		t.Fatal("absent edge removed")
	}
	if d.M() != 0 {
		t.Fatalf("m=%d after removal", d.M())
	}
}

func TestDynamicUndirected(t *testing.T) {
	d := NewDynamic(3)
	d.AddUndirected(0, 2)
	if d.M() != 2 || !d.HasEdge(0, 2) || !d.HasEdge(2, 0) {
		t.Fatal("undirected insert broken")
	}
	d.RemoveUndirected(0, 2)
	if d.M() != 0 {
		t.Fatal("undirected removal broken")
	}
}

func TestDynamicAddNode(t *testing.T) {
	d := NewDynamic(2)
	id := d.AddNode()
	if id != 2 || d.N() != 3 {
		t.Fatalf("AddNode gave %d, n=%d", id, d.N())
	}
	if !d.AddEdge(2, 0) {
		t.Fatal("edge from new node rejected")
	}
}

func TestDynamicSnapshotCaching(t *testing.T) {
	d := NewDynamic(3)
	d.AddEdge(0, 1)
	s1 := d.Snapshot()
	s2 := d.Snapshot()
	if s1 != s2 {
		t.Fatal("snapshot not cached")
	}
	d.AddEdge(1, 2)
	s3 := d.Snapshot()
	if s3 == s1 {
		t.Fatal("mutation did not invalidate snapshot")
	}
	if s3.M() != 2 {
		t.Fatalf("snapshot m=%d", s3.M())
	}
	if err := s3.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicFromRoundTrip(t *testing.T) {
	r := rng.New(5)
	g := randomGraph(r, 50, 300)
	d := DynamicFrom(g)
	if d.M() != g.M() {
		t.Fatalf("m mismatch: %d vs %d", d.M(), g.M())
	}
	snap := d.Snapshot()
	if snap.M() != g.M() || snap.N() != g.N() {
		t.Fatal("snapshot size mismatch")
	}
	for u := int32(0); u < int32(g.N()); u++ {
		a, b := g.OutNeighbors(u), snap.OutNeighbors(u)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d", u)
			}
		}
	}
}

func TestDynamicAgainstReference(t *testing.T) {
	// Random add/remove workload cross-checked against a map reference.
	r := rng.New(11)
	const n = 30
	d := NewDynamic(n)
	ref := map[[2]int32]bool{}
	for op := 0; op < 5000; op++ {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if r.Bernoulli(0.6) {
			added := d.AddEdge(u, v)
			wantAdded := u != v && !ref[[2]int32{u, v}]
			if added != wantAdded {
				t.Fatalf("op %d: AddEdge(%d,%d) = %v want %v", op, u, v, added, wantAdded)
			}
			if wantAdded {
				ref[[2]int32{u, v}] = true
			}
		} else {
			removed := d.RemoveEdge(u, v)
			if removed != ref[[2]int32{u, v}] {
				t.Fatalf("op %d: RemoveEdge(%d,%d) = %v", op, u, v, removed)
			}
			delete(ref, [2]int32{u, v})
		}
	}
	if d.M() != len(ref) {
		t.Fatalf("edge count drifted: %d vs %d", d.M(), len(ref))
	}
	snap := d.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	count := 0
	for u := int32(0); u < n; u++ {
		for _, v := range snap.OutNeighbors(u) {
			if !ref[[2]int32{u, v}] {
				t.Fatalf("phantom edge %d→%d", u, v)
			}
			count++
		}
	}
	if count != len(ref) {
		t.Fatalf("snapshot missing edges: %d vs %d", count, len(ref))
	}
}

func TestDynamicPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewDynamic(2).AddEdge(0, 5)
}
