package graph

import (
	"fmt"
	"sort"
	"sync"
)

// DynamicGraph maintains a mutable edge set with cheap snapshots to the
// immutable CSR Graph that the algorithms run on. The paper points out
// (§4, Methods and Parameters) that ExactSim and ParSim handle dynamic
// graphs precisely because they are index-free: after any batch of
// updates, queries on a fresh snapshot are exact with zero maintenance —
// unlike MC/PRSim/Linearization whose indexes would have to be rebuilt.
//
// Adjacency is kept as sorted out-neighbor slices: AddEdge/RemoveEdge are
// O(d_out(u)), Snapshot is O(n + m) and cached until the next mutation.
// DynamicGraph is not safe for concurrent mutation.
type DynamicGraph struct {
	out      [][]int32
	m        int
	snapshot *Graph // invalidated by mutations

	// Subscribers receive each published snapshot (see Publish). The map
	// has its own lock so Subscribe/cancel may be called from goroutines
	// other than the mutating one (e.g. a Service closing).
	subMu  sync.Mutex
	subs   map[int]func(*Graph)
	subSeq int
}

// NewDynamic returns an empty dynamic graph with n nodes.
func NewDynamic(n int) *DynamicGraph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &DynamicGraph{out: make([][]int32, n)}
}

// DynamicFrom initializes a dynamic graph from an existing snapshot.
func DynamicFrom(g *Graph) *DynamicGraph {
	d := NewDynamic(g.N())
	for u := int32(0); u < int32(g.N()); u++ {
		d.out[u] = append([]int32(nil), g.OutNeighbors(u)...)
	}
	d.m = g.M()
	return d
}

// N returns the current node count.
func (d *DynamicGraph) N() int { return len(d.out) }

// M returns the current edge count.
func (d *DynamicGraph) M() int { return d.m }

// AddNode appends an isolated node and returns its id.
func (d *DynamicGraph) AddNode() NodeID {
	d.out = append(d.out, nil)
	d.snapshot = nil
	return int32(len(d.out) - 1)
}

func (d *DynamicGraph) check(u, v NodeID) {
	if u < 0 || int(u) >= len(d.out) || v < 0 || int(v) >= len(d.out) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, len(d.out)))
	}
}

// find returns the insertion position of v in u's sorted out-list and
// whether it is present.
func (d *DynamicGraph) find(u, v NodeID) (int, bool) {
	adj := d.out[u]
	pos := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return pos, pos < len(adj) && adj[pos] == v
}

// AddEdge inserts u→v; it reports whether the edge was new. Self-loops
// are rejected (the SimRank convention shared with Builder).
func (d *DynamicGraph) AddEdge(u, v NodeID) bool {
	d.check(u, v)
	if u == v {
		return false
	}
	pos, exists := d.find(u, v)
	if exists {
		return false
	}
	adj := d.out[u]
	adj = append(adj, 0)
	copy(adj[pos+1:], adj[pos:])
	adj[pos] = v
	d.out[u] = adj
	d.m++
	d.snapshot = nil
	return true
}

// RemoveEdge deletes u→v; it reports whether the edge existed.
func (d *DynamicGraph) RemoveEdge(u, v NodeID) bool {
	d.check(u, v)
	pos, exists := d.find(u, v)
	if !exists {
		return false
	}
	adj := d.out[u]
	copy(adj[pos:], adj[pos+1:])
	d.out[u] = adj[:len(adj)-1]
	d.m--
	d.snapshot = nil
	return true
}

// AddUndirected inserts both directions; reports whether either was new.
func (d *DynamicGraph) AddUndirected(u, v NodeID) bool {
	a := d.AddEdge(u, v)
	b := d.AddEdge(v, u)
	return a || b
}

// RemoveUndirected deletes both directions.
func (d *DynamicGraph) RemoveUndirected(u, v NodeID) bool {
	a := d.RemoveEdge(u, v)
	b := d.RemoveEdge(v, u)
	return a || b
}

// HasEdge reports whether u→v currently exists.
func (d *DynamicGraph) HasEdge(u, v NodeID) bool {
	d.check(u, v)
	_, exists := d.find(u, v)
	return exists
}

// OutDegree returns the current out-degree of u.
func (d *DynamicGraph) OutDegree(u NodeID) int { return len(d.out[u]) }

// Snapshot freezes the current edge set into an immutable CSR Graph.
// Snapshots are cached: repeated calls without intervening mutations
// return the same *Graph.
func (d *DynamicGraph) Snapshot() *Graph {
	if d.snapshot != nil {
		return d.snapshot
	}
	b := NewBuilder(len(d.out)).Reserve(d.m)
	for u := range d.out {
		for _, v := range d.out[u] {
			b.AddEdge(int32(u), v)
		}
	}
	d.snapshot = b.Build()
	return d.snapshot
}

// Subscribe registers fn to receive every snapshot passed to Publish and
// returns a cancel function that removes the registration. Callbacks run
// synchronously on the publishing goroutine, in unspecified order.
func (d *DynamicGraph) Subscribe(fn func(*Graph)) (cancel func()) {
	d.subMu.Lock()
	if d.subs == nil {
		d.subs = make(map[int]func(*Graph))
	}
	id := d.subSeq
	d.subSeq++
	d.subs[id] = fn
	d.subMu.Unlock()
	return func() {
		d.subMu.Lock()
		delete(d.subs, id)
		d.subMu.Unlock()
	}
}

// Publish freezes the current edge set (like Snapshot) and delivers the
// snapshot to every subscriber — the commit point of a mutation batch.
// Like the mutators, Publish must be called from the owning goroutine;
// subscriber callbacks run before it returns, so a subscribed Service
// already answers on the new snapshot when Publish comes back.
func (d *DynamicGraph) Publish() *Graph {
	g := d.Snapshot()
	d.subMu.Lock()
	// Deliver in subscription order: map iteration order would make
	// multi-subscriber delivery (e.g. a Service and a metrics tap)
	// differ run to run.
	ids := make([]int, 0, len(d.subs))
	for id := range d.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fns := make([]func(*Graph), 0, len(ids))
	for _, id := range ids {
		fns = append(fns, d.subs[id])
	}
	d.subMu.Unlock()
	for _, fn := range fns {
		fn(g)
	}
	return g
}
