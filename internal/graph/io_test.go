package graph

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/exactsim/exactsim/internal/store"
)

// graphsEqual compares two graphs structurally (the CSR arrays), which
// is what "the same graph" means regardless of backing (heap vs mmap).
func graphsEqual(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := int32(0); v < a.n; v++ {
		ai, bi := a.InNeighbors(v), b.InNeighbors(v)
		ao, bo := a.OutNeighbors(v), b.OutNeighbors(v)
		if len(ai) != len(bi) || len(ao) != len(bo) {
			return false
		}
		for i := range ai {
			if ai[i] != bi[i] {
				return false
			}
		}
		for i := range ao {
			if ao[i] != bo[i] {
				return false
			}
		}
	}
	return true
}

// TestTextToBinaryToMmapRoundTrip drives the full conversion pipeline:
// text edge list → Graph → container file → mmap'd OpenBinary → Graph,
// checking equality and checksum stability at every hop.
func TestTextToBinaryToMmapRoundTrip(t *testing.T) {
	const text = `# tiny directed graph
0 1
1 2
2 0
2 3
3 1
`
	g, err := ReadEdgeList(strings.NewReader(text), false)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}

	mm, err := OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	if !graphsEqual(g, mm) {
		t.Fatal("mmap'd graph differs from the graph that wrote it")
	}
	if g.Checksum() != mm.Checksum() {
		t.Fatalf("checksum drifted across the round trip: %#x vs %#x", g.Checksum(), mm.Checksum())
	}

	// The copy path (ReadBinary from a stream) must agree with both.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, rd) || rd.Checksum() != g.Checksum() {
		t.Fatal("stream-decoded graph differs from the original")
	}
}

func TestOpenBinaryZeroCopyAliasing(t *testing.T) {
	g := triangle()
	path := filepath.Join(t.TempDir(), "tri.snap")
	if err := SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	mm, err := OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, mm) {
		t.Fatal("graph mismatch")
	}
	// On platforms where the zero-copy path is live, the CSR slices must
	// genuinely alias the mapping and Close must be safe + idempotent.
	t.Logf("mapped=%v", mm.Mapped())
	if err := mm.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mm.Close(); err != nil {
		t.Fatal(err)
	}
	// A heap graph's Close is a no-op.
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenBinaryRejectsDamage(t *testing.T) {
	g := triangle()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"corrupt payload", func(d []byte) []byte { d[40] ^= 0x01; return d }},
		{"truncated", func(d []byte) []byte { return d[:len(d)-9] }},
		{"version from the future", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:], store.Version+7)
			return d
		}},
		{"wrong magic", func(d []byte) []byte { d[3] ^= 0xff; return d }},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), pristine...))
			if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
				t.Fatalf("ReadBinary accepted %s", tc.name)
			}
			path := filepath.Join(dir, "bad.snap")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := OpenBinary(path); err == nil {
				t.Fatalf("OpenBinary accepted %s", tc.name)
			}
		})
	}
}

// TestReadBinaryLegacyFormat keeps the pre-container format readable:
// files written by older builds load (and re-save as containers).
func TestReadBinaryLegacyFormat(t *testing.T) {
	g := triangle()
	var buf bytes.Buffer
	for _, h := range []uint64{legacyMagic, uint64(g.n), uint64(len(g.outAdj))} {
		if err := binary.Write(&buf, binary.LittleEndian, h); err != nil {
			t.Fatal(err)
		}
	}
	for _, arr := range [][]int64{g.outOff, g.inOff} {
		if err := binary.Write(&buf, binary.LittleEndian, arr); err != nil {
			t.Fatal(err)
		}
	}
	for _, arr := range [][]int32{g.outAdj, g.inAdj} {
		if err := binary.Write(&buf, binary.LittleEndian, arr); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("legacy decode differs")
	}
	// OpenBinary (the mmap path) must fall back to the legacy decoder
	// too — the daemon's -binary flag goes through it.
	path := filepath.Join(t.TempDir(), "legacy.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	opened, err := OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	if !graphsEqual(g, opened) {
		t.Fatal("OpenBinary legacy decode differs")
	}
}

// TestReadEdgeListSurfacesScannerErrors pins the fix for silently
// truncated graphs: a line longer than the scanner's 1 MiB buffer must
// turn into an error, not a graph missing its tail.
func TestReadEdgeListSurfacesScannerErrors(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("0 1\n")
	sb.WriteString("# ")
	sb.WriteString(strings.Repeat("x", 1<<20+16)) // comment line over the buffer cap
	sb.WriteString("\n1 2\n")
	if _, err := ReadEdgeList(strings.NewReader(sb.String()), false); err == nil {
		t.Fatal("over-long line silently ignored")
	}
}

func TestChecksumMatchesSectionCRC(t *testing.T) {
	g := triangle()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	f, err := store.Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sec, ok := f.Section(store.SectionGraph)
	if !ok {
		t.Fatal("no graph section")
	}
	if sec.CRC != g.Checksum() {
		t.Fatalf("section CRC %#x != graph.Checksum %#x", sec.CRC, g.Checksum())
	}
	// An independently built identical graph hashes identically; a
	// different graph does not.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	if b.Build().Checksum() != g.Checksum() {
		t.Fatal("identical graphs hash differently")
	}
	b2 := NewBuilder(3)
	b2.AddEdge(0, 1)
	b2.AddEdge(1, 2)
	if b2.Build().Checksum() == g.Checksum() {
		t.Fatal("different graphs hash identically")
	}
}
