package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/exactsim/exactsim/internal/rng"
)

// triangle returns the directed 3-cycle 0→1→2→0.
func triangle() *Graph {
	return FromEdges(3, [][2]int32{{0, 1}, {1, 2}, {2, 0}})
}

func TestBuilderBasic(t *testing.T) {
	g := triangle()
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
	if got := g.OutNeighbors(0); !reflect.DeepEqual(got, []int32{1}) {
		t.Fatalf("out(0) = %v", got)
	}
	if got := g.InNeighbors(0); !reflect.DeepEqual(got, []int32{2}) {
		t.Fatalf("in(0) = %v", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(1, 1) // self-loop: dropped by default
	b.AddEdge(2, 3)
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("expected 2 edges after dedup/loop-drop, got %d", g.M())
	}
	if g.HasEdge(1, 1) {
		t.Fatal("self-loop survived")
	}

	g2 := NewBuilder(2).KeepSelfLoops()
	g2.AddEdge(1, 1)
	built := g2.Build()
	if built.M() != 1 || !built.HasEdge(1, 1) {
		t.Fatal("KeepSelfLoops did not retain the loop")
	}
}

func TestBuilderUndirected(t *testing.T) {
	g := FromUndirectedEdges(3, [][2]int32{{0, 1}, {1, 2}})
	if g.M() != 4 {
		t.Fatalf("undirected build m=%d want 4", g.M())
	}
	for _, e := range [][2]int32{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v", e)
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := FromEdges(5, [][2]int32{{0, 1}, {0, 3}, {0, 4}, {2, 0}})
	cases := []struct {
		u, v int32
		want bool
	}{
		{0, 1, true}, {0, 2, false}, {0, 3, true}, {0, 4, true},
		{2, 0, true}, {0, 0, false}, {4, 4, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Fatalf("HasEdge(%d,%d) = %v want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestDegrees(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {2, 1}, {3, 1}, {1, 0}})
	if g.InDegree(1) != 3 || g.OutDegree(1) != 1 {
		t.Fatalf("degrees of 1: in=%d out=%d", g.InDegree(1), g.OutDegree(1))
	}
	if g.InDegree(3) != 0 || g.OutDegree(3) != 1 {
		t.Fatalf("degrees of 3: in=%d out=%d", g.InDegree(3), g.OutDegree(3))
	}
}

func TestComputeStats(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {2, 1}, {3, 1}, {1, 0}})
	s := ComputeStats(g)
	if s.N != 4 || s.M != 4 {
		t.Fatalf("stats n/m: %+v", s)
	}
	if s.MaxInDegree != 3 {
		t.Fatalf("MaxInDegree = %d", s.MaxInDegree)
	}
	if s.DeadEnds != 2 { // nodes 2 and 3 have no in-edges
		t.Fatalf("DeadEnds = %d", s.DeadEnds)
	}
	if s.Sources != 0 {
		t.Fatalf("Sources = %d (every node here has an out-edge)", s.Sources)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g5 := NewBuilder(5).Build() // nodes, no edges
	if g5.N() != 5 || g5.M() != 0 {
		t.Fatal("edgeless build broken")
	}
	if g5.InDegree(4) != 0 || g5.OutDegree(0) != 0 {
		t.Fatal("edgeless degrees nonzero")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

// randomGraph builds a random directed graph for property tests.
func randomGraph(r *rng.RNG, n, m int) *Graph {
	b := NewBuilder(n).Reserve(m)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func TestPropertyCSRInvariants(t *testing.T) {
	r := rng.New(7)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		n := 1 + rr.Intn(60)
		m := rr.Intn(300)
		g := randomGraph(r, n, m)
		if g.Validate() != nil {
			return false
		}
		// in-degree total equals out-degree total equals M
		inSum, outSum := 0, 0
		for v := int32(0); v < int32(g.N()); v++ {
			inSum += g.InDegree(v)
			outSum += g.OutDegree(v)
		}
		return inSum == g.M() && outSum == g.M()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyInOutConsistency(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 1+r.Intn(40), r.Intn(200))
		for v := int32(0); v < int32(g.N()); v++ {
			for _, u := range g.InNeighbors(v) {
				if !g.HasEdge(u, v) {
					t.Fatalf("in-neighbor %d of %d lacks out-edge", u, v)
				}
			}
			for _, w := range g.OutNeighbors(v) {
				found := false
				for _, u := range g.InNeighbors(w) {
					if u == v {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("out-edge %d→%d missing from in-list", v, w)
				}
			}
		}
	}
}

func TestReadEdgeList(t *testing.T) {
	input := `# a comment
% another comment
0 1
1 2

2 0
`
	g, err := ReadEdgeList(strings.NewReader(input), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("parsed n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(2, 0) {
		t.Fatal("missing edge 2→0")
	}
}

func TestReadEdgeListUndirected(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 {
		t.Fatalf("undirected m=%d want 4", g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0\n", "a b\n", "0 x\n", "-1 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(bad), false); err == nil {
			t.Fatalf("input %q: expected error", bad)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	r := rng.New(13)
	g := randomGraph(r, 30, 120)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	// Node count can shrink if trailing nodes are isolated; compare edges.
	if g2.M() != g.M() {
		t.Fatalf("round trip m: %d vs %d", g2.M(), g.M())
	}
	for u := int32(0); u < int32(g2.N()); u++ {
		if !reflect.DeepEqual(g.OutNeighbors(u), g2.OutNeighbors(u)) {
			t.Fatalf("out-neighbors of %d differ", u)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 1+r.Intn(100), r.Intn(500))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// Structural equality: the decoded graph may back its CSR with the
		// read buffer (zero-copy) rather than fresh arrays.
		if !graphsEqual(g, g2) {
			t.Fatal("binary round trip not identical")
		}
		if g.Checksum() != g2.Checksum() {
			t.Fatal("binary round trip changed the checksum")
		}
	}
}

func TestBinaryRejectsCorrupt(t *testing.T) {
	g := triangle()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[0] ^= 0xff // clobber magic
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(data[:10])); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestBytesAccounting(t *testing.T) {
	g := triangle()
	want := int64(2*4*8 + 2*3*4) // two offset arrays of n+1 int64, two adj arrays of m int32
	if got := g.Bytes(); got != want {
		t.Fatalf("Bytes() = %d want %d", got, want)
	}
}

func TestStringer(t *testing.T) {
	if s := triangle().String(); s != "graph{n=3 m=3}" {
		t.Fatalf("String() = %q", s)
	}
}

func BenchmarkBuild(b *testing.B) {
	r := rng.New(1)
	const n, m = 10000, 50000
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{int32(r.Intn(n)), int32(r.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(n, edges)
	}
}

func BenchmarkInNeighborScan(b *testing.B) {
	r := rng.New(2)
	g := randomGraph(r, 10000, 100000)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		for v := int32(0); v < int32(g.N()); v++ {
			sink += len(g.InNeighbors(v))
		}
	}
	_ = sink
}
