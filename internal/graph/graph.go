// Package graph provides the directed-graph substrate every algorithm in
// this repository runs on: an immutable CSR (compressed sparse row)
// representation with both out- and in-adjacency, a mutable builder,
// text and binary codecs, and degree statistics.
//
// SimRank's transition structure is defined on *in*-neighbors (a √c-walk
// moves to a uniformly random in-neighbor), so the in-adjacency arrays are
// the hot path; the out-adjacency arrays serve the transposed operator Pᵀ
// and the reverse sampling used by the PRSim baseline.
package graph

import (
	"fmt"
	"sync"
)

// NodeID identifies a vertex. 32 bits keeps the adjacency arrays compact;
// the paper's largest graph (Twitter, 4.2e7 nodes) fits with room to spare.
type NodeID = int32

// Graph is an immutable directed graph in CSR form. Construct with a
// Builder, Load, or one of the internal/gen generators.
//
// For an edge u→v, u appears in InNeighbors(v) and v in OutNeighbors(u).
// Parallel edges are merged by the builder; self-loops are preserved only if
// the builder is configured to keep them (SimRank convention drops them).
type Graph struct {
	n int32

	outOff []int64
	outAdj []int32
	inOff  []int64
	inAdj  []int32

	// mapped/release back graphs opened zero-copy from a snapshot
	// container (OpenBinary): the CSR slices above alias the mmap'd
	// mapping, and release unmaps it. Heap-built graphs leave both zero.
	mapped  bool
	release func() error
	relOnce sync.Once

	// sum caches Checksum() — the CRC64 of the encoded CSR section,
	// the graph identity snapshots and index spills bind to.
	sumOnce sync.Once
	sum     uint64
}

// Mapped reports whether the CSR arrays alias an mmap'd snapshot
// container (true only for OpenBinary graphs on platforms with mmap).
func (g *Graph) Mapped() bool { return g.mapped }

// Close releases the mmap'd mapping backing an OpenBinary graph. After
// Close the graph — and any slice obtained from it — must not be
// touched. Heap-backed graphs make Close a no-op, so callers can Close
// unconditionally. Idempotent; never closing a graph is safe and merely
// pins the mapping until process exit.
func (g *Graph) Close() error {
	var err error
	if g.release != nil {
		g.relOnce.Do(func() { err = g.release() })
	}
	return err
}

// N returns the number of nodes.
func (g *Graph) N() int { return int(g.n) }

// M returns the number of directed edges.
func (g *Graph) M() int { return len(g.outAdj) }

// InDegree returns d_in(v), the in-degree of v.
func (g *Graph) InDegree(v NodeID) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// OutDegree returns d_out(v).
func (g *Graph) OutDegree(v NodeID) int {
	return int(g.outOff[v+1] - g.outOff[v])
}

// InNeighbors returns the in-neighbors of v (nodes u with u→v), sorted
// ascending. The returned slice aliases the graph's storage; callers must
// not modify it.
func (g *Graph) InNeighbors(v NodeID) []NodeID {
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// OutNeighbors returns the out-neighbors of v (nodes w with v→w), sorted
// ascending. The returned slice aliases the graph's storage.
func (g *Graph) OutNeighbors(v NodeID) []NodeID {
	return g.outAdj[g.outOff[v]:g.outOff[v+1]]
}

// InCSR exposes the raw in-adjacency CSR arrays: the in-neighbors of v are
// adj[off[v]:off[v+1]]. The slices alias the graph's storage and must be
// treated as read-only. Hot loops (the walk engine, the sparse kernels)
// index these directly instead of calling InNeighbors per node, which saves
// a slice-header construction and a bounds-check pair per access.
func (g *Graph) InCSR() (off []int64, adj []int32) {
	return g.inOff, g.inAdj
}

// OutCSR exposes the raw out-adjacency CSR arrays; see InCSR for the
// aliasing contract.
func (g *Graph) OutCSR() (off []int64, adj []int32) {
	return g.outOff, g.outAdj
}

// HasEdge reports whether the directed edge u→v exists (binary search on
// the out-adjacency of u).
func (g *Graph) HasEdge(u, v NodeID) bool {
	adj := g.OutNeighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == v
}

// Bytes returns the in-memory footprint of the CSR arrays, used by the
// harness when reporting index sizes relative to graph size (Table 3).
func (g *Graph) Bytes() int64 {
	return int64(len(g.outOff)+len(g.inOff))*8 + int64(len(g.outAdj)+len(g.inAdj))*4
}

// Stats summarizes the degree structure of a graph.
type Stats struct {
	N            int
	M            int
	MaxInDegree  int
	MaxOutDegree int
	AvgDegree    float64 // m / n
	DeadEnds     int     // nodes with in-degree 0 (√c-walk absorbers)
	Sources      int     // nodes with out-degree 0
}

// ComputeStats scans the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{N: g.N(), M: g.M()}
	if s.N > 0 {
		s.AvgDegree = float64(s.M) / float64(s.N)
	}
	for v := int32(0); v < g.n; v++ {
		din, dout := g.InDegree(v), g.OutDegree(v)
		if din > s.MaxInDegree {
			s.MaxInDegree = din
		}
		if dout > s.MaxOutDegree {
			s.MaxOutDegree = dout
		}
		if din == 0 {
			s.DeadEnds++
		}
		if dout == 0 {
			s.Sources++
		}
	}
	return s
}

// String implements fmt.Stringer with a one-line summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}

// Validate checks internal CSR invariants. It is used by tests and by Load
// to reject corrupt binary files; a healthy builder never produces an
// invalid graph.
func (g *Graph) Validate() error {
	if int(g.n) < 0 {
		return fmt.Errorf("graph: negative node count %d", g.n)
	}
	if len(g.outOff) != int(g.n)+1 || len(g.inOff) != int(g.n)+1 {
		return fmt.Errorf("graph: offset array sizes %d,%d for n=%d", len(g.outOff), len(g.inOff), g.n)
	}
	if len(g.outAdj) != len(g.inAdj) {
		return fmt.Errorf("graph: out/in edge counts differ: %d vs %d", len(g.outAdj), len(g.inAdj))
	}
	if g.outOff[0] != 0 || g.inOff[0] != 0 {
		return fmt.Errorf("graph: offsets must start at 0")
	}
	if g.outOff[g.n] != int64(len(g.outAdj)) || g.inOff[g.n] != int64(len(g.inAdj)) {
		return fmt.Errorf("graph: final offsets do not cover adjacency arrays")
	}
	for v := int32(0); v < g.n; v++ {
		if g.outOff[v] > g.outOff[v+1] || g.inOff[v] > g.inOff[v+1] {
			return fmt.Errorf("graph: non-monotone offsets at node %d", v)
		}
		for _, lists := range [2][]int32{g.OutNeighbors(v), g.InNeighbors(v)} {
			for i, u := range lists {
				if u < 0 || u >= g.n {
					return fmt.Errorf("graph: neighbor %d of node %d out of range", u, v)
				}
				if i > 0 && lists[i-1] >= u {
					return fmt.Errorf("graph: adjacency of node %d not strictly sorted", v)
				}
			}
		}
	}
	return nil
}
