package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. It follows the
// SimRank literature's preprocessing conventions: parallel edges are merged,
// and self-loops are dropped by default (S(i,i) = 1 is definitional, so a
// self-loop only distorts the in-degree normalization).
type Builder struct {
	n         int32
	src, dst  []int32
	keepLoops bool
}

// NewBuilder returns a builder for a graph with n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: int32(n)}
}

// KeepSelfLoops configures the builder to retain self-loops. Off by default.
func (b *Builder) KeepSelfLoops() *Builder {
	b.keepLoops = true
	return b
}

// Reserve pre-allocates capacity for m edges.
func (b *Builder) Reserve(m int) *Builder {
	if cap(b.src) < m {
		src := make([]int32, len(b.src), m)
		copy(src, b.src)
		b.src = src
		dst := make([]int32, len(b.dst), m)
		copy(dst, b.dst)
		b.dst = dst
	}
	return b
}

// AddEdge records the directed edge u→v. Out-of-range endpoints panic: edge
// sources are internal (generators, loaders) and validate separately.
func (b *Builder) AddEdge(u, v NodeID) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, b.n))
	}
	if u == v && !b.keepLoops {
		return
	}
	b.src = append(b.src, u)
	b.dst = append(b.dst, v)
}

// AddUndirected records both u→v and v→u.
func (b *Builder) AddUndirected(u, v NodeID) {
	b.AddEdge(u, v)
	b.AddEdge(v, u)
}

// Len returns the number of edges recorded so far (before dedup).
func (b *Builder) Len() int { return len(b.src) }

// Build sorts, deduplicates, and freezes the edge set into a Graph. The
// builder can be reused afterwards; it retains its recorded edges.
func (b *Builder) Build() *Graph {
	m := len(b.src)
	// Sort edge ids by (src, dst) to produce sorted out-adjacency and to
	// make duplicates adjacent.
	order := make([]int32, m)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Sort(edgeSorter{order: order, src: b.src, dst: b.dst})

	g := &Graph{n: b.n}
	g.outOff = make([]int64, b.n+1)
	g.outAdj = make([]int32, 0, m)
	var prevU, prevV int32 = -1, -1
	for _, id := range order {
		u, v := b.src[id], b.dst[id]
		if u == prevU && v == prevV {
			continue // merge parallel edge
		}
		prevU, prevV = u, v
		g.outAdj = append(g.outAdj, v)
		g.outOff[u+1]++
	}
	for v := int32(0); v < b.n; v++ {
		g.outOff[v+1] += g.outOff[v]
	}

	// Counting pass for in-adjacency, then a placement pass. The resulting
	// in-lists are sorted because we scan sources in ascending order.
	g.inOff = make([]int64, b.n+1)
	for _, v := range g.outAdj {
		g.inOff[v+1]++
	}
	for v := int32(0); v < b.n; v++ {
		g.inOff[v+1] += g.inOff[v]
	}
	g.inAdj = make([]int32, len(g.outAdj))
	cursor := make([]int64, b.n)
	copy(cursor, g.inOff[:b.n])
	for u := int32(0); u < b.n; u++ {
		for _, v := range g.OutNeighbors(u) {
			g.inAdj[cursor[v]] = u
			cursor[v]++
		}
	}
	return g
}

// FromEdges is a convenience constructor: it builds a graph with n nodes
// from a list of directed (u,v) pairs.
func FromEdges(n int, edges [][2]NodeID) *Graph {
	b := NewBuilder(n).Reserve(len(edges))
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// FromUndirectedEdges builds a graph where each listed pair becomes two
// directed edges.
func FromUndirectedEdges(n int, edges [][2]NodeID) *Graph {
	b := NewBuilder(n).Reserve(2 * len(edges))
	for _, e := range edges {
		b.AddUndirected(e[0], e[1])
	}
	return b.Build()
}

// edgeSorter orders edge ids by (src, dst) with a typed, reflection-free
// sort: detrange bans sort.Slice in kernel packages (reflective swapper,
// non-stable order), and edge ids with equal keys merge as duplicates
// right after the sort, so the typed non-stable sort is exact.
type edgeSorter struct {
	order    []int32
	src, dst []int32
}

func (e edgeSorter) Len() int      { return len(e.order) }
func (e edgeSorter) Swap(i, j int) { e.order[i], e.order[j] = e.order[j], e.order[i] }
func (e edgeSorter) Less(i, j int) bool {
	a, c := e.order[i], e.order[j]
	if e.src[a] != e.src[c] {
		return e.src[a] < e.src[c]
	}
	return e.dst[a] < e.dst[c]
}
