package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/exactsim/exactsim/internal/store"
)

// Binary graphs live in the snapshot container format of internal/store:
// a versioned, checksummed file whose graph section is the CSR arrays in
// little-endian fixed-width form. The section payload is
//
//	u64 n | u64 m | outOff (n+1)×i64 | inOff (n+1)×i64 |
//	outAdj m×i32 | inAdj m×i32
//
// — int64 arrays first, so every array stays self-aligned inside the
// 8-byte-aligned payload. On 64-bit little-endian platforms OpenBinary
// serves the CSR straight out of an mmap'd mapping with zero copies and
// zero parsing; everywhere else (and for io.Reader sources) the same
// bytes decode through explicit little-endian reads behind the same API.
//
// The pre-container format (bare "GSIMRANK" header, no version, no
// checksum) is still read for old files; writers emit only containers.

const legacyMagic = uint64(0x4753494d52414e4b) // "GSIMRANK"

const csrHeaderSize = 16

// BinarySize returns the graph section payload length for g.
func BinarySize(g *Graph) int64 {
	return csrHeaderSize + int64(len(g.outOff)+len(g.inOff))*8 +
		int64(len(g.outAdj)+len(g.inAdj))*4
}

// EncodeCSR writes g's graph section payload (exactly BinarySize(g)
// bytes). On little-endian hosts the arrays are written as single bulk
// copies of their in-memory images.
func EncodeCSR(w io.Writer, g *Graph) error {
	var hdr [csrHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(g.outAdj)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var scratch [1 << 13]byte
	for _, arr := range [2][]int64{g.outOff, g.inOff} {
		if err := writeInt64s(w, arr, scratch[:]); err != nil {
			return err
		}
	}
	for _, arr := range [2][]int32{g.outAdj, g.inAdj} {
		if err := writeInt32s(w, arr, scratch[:]); err != nil {
			return err
		}
	}
	return nil
}

func writeInt64s(w io.Writer, xs []int64, scratch []byte) error {
	if b, ok := store.AliasBytes64(xs); ok {
		_, err := w.Write(b)
		return err
	}
	for len(xs) > 0 {
		n := len(scratch) / 8
		if n > len(xs) {
			n = len(xs)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(scratch[i*8:], uint64(xs[i]))
		}
		if _, err := w.Write(scratch[:n*8]); err != nil {
			return err
		}
		xs = xs[n:]
	}
	return nil
}

func writeInt32s(w io.Writer, xs []int32, scratch []byte) error {
	if b, ok := store.AliasBytes32(xs); ok {
		_, err := w.Write(b)
		return err
	}
	for len(xs) > 0 {
		n := len(scratch) / 4
		if n > len(xs) {
			n = len(xs)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(scratch[i*4:], uint32(xs[i]))
		}
		if _, err := w.Write(scratch[:n*4]); err != nil {
			return err
		}
		xs = xs[n:]
	}
	return nil
}

// Checksum returns the CRC64 of g's encoded graph section — the value a
// container's graph section carries, and the graph identity a diagonal
// sample index spill binds to. Computed once per Graph and cached
// (graphs are immutable); a graph opened from a container inherits the
// already-verified section checksum for free.
func (g *Graph) Checksum() uint64 {
	g.sumOnce.Do(func() {
		h := store.NewCRC64()
		// Writing to a hash cannot fail.
		_ = EncodeCSR(h, g)
		g.sum = h.Sum64()
	})
	return g.sum
}

// primeChecksum installs a checksum already known (a verified section
// CRC) so Checksum never re-hashes. No-op if Checksum already ran.
func (g *Graph) primeChecksum(sum uint64) {
	g.sumOnce.Do(func() { g.sum = sum })
}

// WriteBinary encodes the graph as a single-section snapshot container.
func WriteBinary(w io.Writer, g *Graph) error {
	sw, err := store.NewWriter(w, 1)
	if err != nil {
		return err
	}
	crc, err := sw.Section(store.SectionGraph, BinarySize(g), func(pw io.Writer) error {
		return EncodeCSR(pw, g)
	})
	if err != nil {
		return err
	}
	if err := sw.Close(); err != nil {
		return err
	}
	g.primeChecksum(crc)
	return nil
}

// decodeSection builds a Graph over one graph section payload. When the
// platform and alignment allow, the CSR slices alias the payload bytes
// (aliased=true) and share their lifetime; otherwise they are decoded
// into fresh heap arrays. The caller validates.
func decodeSection(payload []byte) (g *Graph, aliased bool, err error) {
	if len(payload) < csrHeaderSize {
		return nil, false, fmt.Errorf("graph: section of %d bytes is shorter than the CSR header", len(payload))
	}
	n := binary.LittleEndian.Uint64(payload[0:])
	m := binary.LittleEndian.Uint64(payload[8:])
	if n > 1<<31-2 || m > 1<<40 {
		return nil, false, fmt.Errorf("graph: implausible CSR header n=%d m=%d", n, m)
	}
	want := csrHeaderSize + int64(n+1)*16 + int64(m)*8
	if int64(len(payload)) != want {
		return nil, false, fmt.Errorf("graph: CSR section is %d bytes, header implies %d", len(payload), want)
	}
	offBytes := int64(n+1) * 8
	adjBytes := int64(m) * 4
	cut := func(off, length int64) []byte { return payload[off : off+length : off+length] }
	var (
		outOffB = cut(csrHeaderSize, offBytes)
		inOffB  = cut(csrHeaderSize+offBytes, offBytes)
		outAdjB = cut(csrHeaderSize+2*offBytes, adjBytes)
		inAdjB  = cut(csrHeaderSize+2*offBytes+adjBytes, adjBytes)
	)
	g = &Graph{n: int32(n)}
	outOff, ok1 := store.AliasInt64s(outOffB)
	inOff, ok2 := store.AliasInt64s(inOffB)
	outAdj, ok3 := store.AliasInt32s(outAdjB)
	inAdj, ok4 := store.AliasInt32s(inAdjB)
	if ok1 && ok2 && ok3 && ok4 {
		// Zero-copy: the graph IS the payload. All four alias or none do,
		// so the arrays never split their lifetimes across backings.
		g.outOff, g.inOff, g.outAdj, g.inAdj = outOff, inOff, outAdj, inAdj
		return g, true, nil
	}
	g.outOff = decodeInt64s(outOffB)
	g.inOff = decodeInt64s(inOffB)
	g.outAdj = decodeInt32s(outAdjB)
	g.inAdj = decodeInt32s(inAdjB)
	return g, false, nil
}

func decodeInt64s(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func decodeInt32s(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// FromContainer extracts the graph section of an opened container.
// When the section could be aliased (aliased=true) the graph's CSR
// slices share the container's backing bytes and the graph takes
// ownership: closing the graph closes the container, and the container
// must not be closed by anyone else while the graph lives. When the
// decode copied (aliased=false) the caller should close the container
// itself once done with its sections.
func FromContainer(f *store.File) (g *Graph, aliased bool, err error) {
	sec, ok := f.Section(store.SectionGraph)
	if !ok {
		return nil, false, fmt.Errorf("graph: container has no graph section")
	}
	g, aliased, err = decodeSection(sec.Payload)
	if err != nil {
		return nil, false, err
	}
	if err := g.Validate(); err != nil {
		return nil, false, fmt.Errorf("graph: container graph failed validation: %w", err)
	}
	g.primeChecksum(sec.CRC)
	if aliased {
		g.mapped = f.Mapped()
		g.release = f.Close
	}
	return g, aliased, nil
}

// OpenBinary opens a binary graph file for zero-copy serving: the file
// is mmap'd (where the platform allows) and the returned graph's CSR
// slices alias the mapping, so "loading" even a multi-gigabyte graph is
// a page-table operation plus one checksum pass — no parsing, no
// allocation. Close the graph when done to release the mapping; a
// never-closed graph simply pins the mapping for the life of the
// process, which is safe. On platforms without mmap (or for files that
// decline to alias) the same call transparently reads and decodes the
// file into heap arrays.
func OpenBinary(path string) (*Graph, error) {
	if legacy, err := sniffLegacy(path); err != nil {
		return nil, err
	} else if legacy {
		// Pre-container files have no section table to map over; decode
		// them the old way so every path that accepted them still does.
		return LoadBinary(path)
	}
	f, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	g, aliased, err := FromContainer(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if !aliased {
		f.Close()
	}
	return g, nil
}

// sniffLegacy reports whether path starts with the legacy binary magic.
func sniffLegacy(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return false, nil // too short for either format; let the parser complain
	}
	return binary.LittleEndian.Uint64(head[:]) == legacyMagic, nil
}

// ReadBinary decodes a binary graph from a stream — the container
// format, or the legacy pre-container format for old files — and
// validates it. The result never aliases an mmap (use OpenBinary for
// that); it may alias the in-memory read buffer.
func ReadBinary(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: reading binary graph: %w", err)
	}
	if len(data) >= 8 && binary.LittleEndian.Uint64(data) == legacyMagic {
		return readLegacyBinary(data[8:])
	}
	f, err := store.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	g, _, err := FromContainer(f)
	return g, err
}

// readLegacyBinary decodes the pre-container format: legacyMagic
// (already consumed), u64 n, u64 m, then the four CSR arrays.
func readLegacyBinary(data []byte) (*Graph, error) {
	br := bytes.NewReader(data)
	var n, m uint64
	for _, p := range []*uint64{&n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: reading legacy binary header: %w", err)
		}
	}
	if n > 1<<31-2 || m > 1<<40 {
		return nil, fmt.Errorf("graph: implausible legacy header n=%d m=%d", n, m)
	}
	g := &Graph{n: int32(n)}
	g.outOff = make([]int64, n+1)
	g.inOff = make([]int64, n+1)
	g.outAdj = make([]int32, m)
	g.inAdj = make([]int32, m)
	for _, arr := range [][]int64{g.outOff, g.inOff} {
		if err := binary.Read(br, binary.LittleEndian, arr); err != nil {
			return nil, fmt.Errorf("graph: reading legacy offsets: %w", err)
		}
	}
	for _, arr := range [][]int32{g.outAdj, g.inAdj} {
		if err := binary.Read(br, binary.LittleEndian, arr); err != nil {
			return nil, fmt.Errorf("graph: reading legacy adjacency: %w", err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: legacy binary file failed validation: %w", err)
	}
	return g, nil
}

// SaveBinary writes the container encoding to path atomically (temp
// file + rename), so a crash mid-write never leaves a half-snapshot
// where a loader could find it.
func SaveBinary(path string, g *Graph) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".graph-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	// CreateTemp's 0600 would survive the rename; graph files are meant
	// to be shared, give them normal file permissions.
	tmp.Chmod(0o644)
	if err := WriteBinary(tmp, g); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadBinary reads a binary graph from path into memory (copy
// semantics — safe to keep after any file handle is gone). For
// zero-copy mmap-backed serving use OpenBinary.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
