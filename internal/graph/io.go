package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Text format: SNAP-style edge lists. Lines starting with '#' or '%' are
// comments; each data line holds "u<ws>v" with 0-based node ids. Node count
// is inferred as max id + 1 unless the caller supplies one.

// ReadEdgeList parses a SNAP-style edge list. If undirected is true each
// line yields both directions (the convention for the paper's co-authorship
// datasets).
func ReadEdgeList(r io.Reader, undirected bool) (*Graph, error) {
	type edge struct{ u, v int32 }
	var edges []edge
	maxID := int32(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected \"u v\", got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source id: %w", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target id: %w", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		e := edge{int32(u), int32(v)}
		edges = append(edges, e)
		if e.u > maxID {
			maxID = e.u
		}
		if e.v > maxID {
			maxID = e.v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	b := NewBuilder(int(maxID) + 1).Reserve(len(edges))
	for _, e := range edges {
		if undirected {
			b.AddUndirected(e.u, e.v)
		} else {
			b.AddEdge(e.u, e.v)
		}
	}
	return b.Build(), nil
}

// LoadEdgeList reads an edge-list file from disk.
func LoadEdgeList(path string, undirected bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(bufio.NewReaderSize(f, 1<<20), undirected)
}

// WriteEdgeList emits the graph as a directed edge list.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# directed edge list: n=%d m=%d\n", g.N(), g.M())
	for u := int32(0); u < g.n; u++ {
		for _, v := range g.OutNeighbors(u) {
			fmt.Fprintf(bw, "%d\t%d\n", u, v)
		}
	}
	return bw.Flush()
}

// The binary codec (snapshot-container format, mmap-backed OpenBinary,
// legacy-format reading) lives in binary.go.
