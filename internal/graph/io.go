package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Text format: SNAP-style edge lists. Lines starting with '#' or '%' are
// comments; each data line holds "u<ws>v" with 0-based node ids. Node count
// is inferred as max id + 1 unless the caller supplies one.

// ReadEdgeList parses a SNAP-style edge list. If undirected is true each
// line yields both directions (the convention for the paper's co-authorship
// datasets).
func ReadEdgeList(r io.Reader, undirected bool) (*Graph, error) {
	type edge struct{ u, v int32 }
	var edges []edge
	maxID := int32(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected \"u v\", got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source id: %w", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target id: %w", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		e := edge{int32(u), int32(v)}
		edges = append(edges, e)
		if e.u > maxID {
			maxID = e.u
		}
		if e.v > maxID {
			maxID = e.v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	b := NewBuilder(int(maxID) + 1).Reserve(len(edges))
	for _, e := range edges {
		if undirected {
			b.AddUndirected(e.u, e.v)
		} else {
			b.AddEdge(e.u, e.v)
		}
	}
	return b.Build(), nil
}

// LoadEdgeList reads an edge-list file from disk.
func LoadEdgeList(path string, undirected bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(bufio.NewReaderSize(f, 1<<20), undirected)
}

// WriteEdgeList emits the graph as a directed edge list.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# directed edge list: n=%d m=%d\n", g.N(), g.M())
	for u := int32(0); u < g.n; u++ {
		for _, v := range g.OutNeighbors(u) {
			fmt.Fprintf(bw, "%d\t%d\n", u, v)
		}
	}
	return bw.Flush()
}

// Binary format: a fixed little-endian header followed by the four CSR
// arrays. Loading is a handful of bulk reads, which matters for the large
// stand-in datasets the experiment harness regenerates.

const binaryMagic = uint64(0x4753494d52414e4b) // "GSIMRANK"

// WriteBinary encodes the graph in the repository's binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint64{binaryMagic, uint64(g.n), uint64(len(g.outAdj))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("graph: writing binary header: %w", err)
		}
	}
	for _, arr := range [][]int64{g.outOff, g.inOff} {
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return fmt.Errorf("graph: writing offsets: %w", err)
		}
	}
	for _, arr := range [][]int32{g.outAdj, g.inAdj} {
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return fmt.Errorf("graph: writing adjacency: %w", err)
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a graph written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, n, m uint64
	for _, p := range []*uint64{&magic, &n, &m} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: reading binary header: %w", err)
		}
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if n > 1<<31-2 || m > 1<<40 {
		return nil, fmt.Errorf("graph: implausible header n=%d m=%d", n, m)
	}
	g := &Graph{n: int32(n)}
	g.outOff = make([]int64, n+1)
	g.inOff = make([]int64, n+1)
	g.outAdj = make([]int32, m)
	g.inAdj = make([]int32, m)
	for _, arr := range [][]int64{g.outOff, g.inOff} {
		if err := binary.Read(br, binary.LittleEndian, arr); err != nil {
			return nil, fmt.Errorf("graph: reading offsets: %w", err)
		}
	}
	for _, arr := range [][]int32{g.outAdj, g.inAdj} {
		if err := binary.Read(br, binary.LittleEndian, arr); err != nil {
			return nil, fmt.Errorf("graph: reading adjacency: %w", err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary file failed validation: %w", err)
	}
	return g, nil
}

// SaveBinary writes the binary encoding to path.
func SaveBinary(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a binary graph from path.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
