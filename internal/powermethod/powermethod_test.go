package powermethod

import (
	"math"
	"testing"

	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/rng"
)

const c = 0.6

func compute(g *graph.Graph, L int) *Matrix {
	return Compute(g, Options{C: c, L: L})
}

func TestIterations(t *testing.T) {
	L := Iterations(0.6, 1e-7)
	// c^L ≤ 1e-7 and c^{L-1} > 1e-7
	if math.Pow(0.6, float64(L)) > 1e-7 {
		t.Fatalf("c^%d = %g > 1e-7", L, math.Pow(0.6, float64(L)))
	}
	if math.Pow(0.6, float64(L-1)) <= 1e-7 {
		t.Fatalf("L=%d not minimal", L)
	}
}

func TestDiagonalIsOne(t *testing.T) {
	g := gen.BarabasiAlbert(50, 3, 1)
	s := compute(g, 20)
	for i := 0; i < g.N(); i++ {
		if s.At(i, i) != 1 {
			t.Fatalf("S(%d,%d) = %g", i, i, s.At(i, i))
		}
	}
}

func TestRangeAndSymmetry(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		n := 5 + r.Intn(30)
		b := graph.NewBuilder(n)
		for e := 0; e < n*3; e++ {
			b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
		}
		g := b.Build()
		s := compute(g, 25)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := s.At(i, j)
				if v < 0 || v > 1 {
					t.Fatalf("S(%d,%d) = %g out of [0,1]", i, j, v)
				}
				if math.Abs(v-s.At(j, i)) > 1e-12 {
					t.Fatalf("asymmetric at (%d,%d): %g vs %g", i, j, v, s.At(j, i))
				}
				if i != j && v > c {
					t.Fatalf("off-diagonal S(%d,%d)=%g exceeds c", i, j, v)
				}
			}
		}
	}
}

func TestPairGraphIsZero(t *testing.T) {
	// Two nodes joined by an undirected edge: walks alternate parity and
	// never meet, so S(0,1) = 0 — the classic SimRank parity artifact.
	g := graph.FromUndirectedEdges(2, [][2]int32{{0, 1}})
	s := compute(g, 40)
	if s.At(0, 1) != 0 {
		t.Fatalf("pair graph S(0,1) = %g want 0", s.At(0, 1))
	}
}

func TestCycleOffDiagonalZero(t *testing.T) {
	g := gen.Cycle(6)
	s := compute(g, 40)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i != j && s.At(i, j) != 0 {
				t.Fatalf("cycle S(%d,%d) = %g", i, j, s.At(i, j))
			}
		}
	}
}

func TestStarClosedForm(t *testing.T) {
	// Star center 0, leaves 1..n−1: S(leaf,leaf') = c, S(center,leaf) = 0.
	n := 7
	g := gen.Star(n)
	s := compute(g, 50)
	for a := 1; a < n; a++ {
		if math.Abs(s.At(0, a)) > 1e-12 {
			t.Fatalf("S(center,%d) = %g want 0", a, s.At(0, a))
		}
		for b := 1; b < n; b++ {
			if a == b {
				continue
			}
			if math.Abs(s.At(a, b)-c) > 1e-12 {
				t.Fatalf("S(%d,%d) = %g want %g", a, b, s.At(a, b), c)
			}
		}
	}
}

func TestCliqueClosedForm(t *testing.T) {
	// From distinct clique nodes: M' = c·q/(1−c(1−q)), q=(n−2)/(n−1)².
	n := 6
	g := gen.Clique(n)
	s := compute(g, 60)
	q := float64(n-2) / float64((n-1)*(n-1))
	want := c * q / (1 - c*(1-q))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if math.Abs(s.At(i, j)-want) > 1e-12 {
				t.Fatalf("clique S(%d,%d) = %g want %g", i, j, s.At(i, j), want)
			}
		}
	}
}

func TestFixedPointResidual(t *testing.T) {
	// S_L must satisfy the SimRank recurrence up to c^L.
	r := rng.New(9)
	n := 25
	b := graph.NewBuilder(n)
	for e := 0; e < 80; e++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	g := b.Build()
	L := 40
	s := compute(g, L)
	tol := math.Pow(c, float64(L)) + 1e-10
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			di, dj := g.InDegree(int32(i)), g.InDegree(int32(j))
			want := 0.0
			if di > 0 && dj > 0 {
				sum := 0.0
				for _, u := range g.InNeighbors(int32(i)) {
					for _, v := range g.InNeighbors(int32(j)) {
						sum += s.At(int(u), int(v))
					}
				}
				want = c * sum / float64(di*dj)
			}
			if math.Abs(s.At(i, j)-want) > tol {
				t.Fatalf("residual at (%d,%d): %g vs %g", i, j, s.At(i, j), want)
			}
		}
	}
}

func TestConvergenceRate(t *testing.T) {
	g := gen.BarabasiAlbert(40, 3, 5)
	s20 := compute(g, 20)
	s45 := compute(g, 45)
	maxDiff := 0.0
	for i := range s20.Data {
		if d := math.Abs(s20.Data[i] - s45.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	bound := math.Pow(c, 20)
	if maxDiff > bound {
		t.Fatalf("iteration-20 error %g exceeds c^20 = %g", maxDiff, bound)
	}
	if maxDiff == 0 {
		t.Fatal("suspicious exact convergence at L=20")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	g := gen.BarabasiAlbert(300, 4, 7)
	a := Compute(g, Options{C: c, L: 15, Workers: 1})
	b := Compute(g, Options{C: c, L: 15, Workers: 4})
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("parallel result differs at %d", i)
		}
	}
}

func TestSingleSourceIsCopy(t *testing.T) {
	g := gen.Star(5)
	s := compute(g, 20)
	row := s.SingleSource(1)
	row[0] = 99
	if s.At(1, 0) == 99 {
		t.Fatal("SingleSource aliases matrix storage")
	}
}

func TestExactDTrivialCases(t *testing.T) {
	// Path 0→1→2: d_in(0)=0 → D=1; d_in(1)=d_in(2)=1 → D=1−c.
	g := gen.Path(3)
	s := compute(g, 40)
	d := ExactD(g, c, s)
	if d[0] != 1 {
		t.Fatalf("D(0) = %g want 1 (dead end)", d[0])
	}
	for _, k := range []int{1, 2} {
		if math.Abs(d[k]-(1-c)) > 1e-12 {
			t.Fatalf("D(%d) = %g want %g", k, d[k], 1-c)
		}
	}
}

func TestExactDStar(t *testing.T) {
	// Center of an n-star: D = 1 − c·(1 + (n−2)c)/(n−1).
	n := 7
	g := gen.Star(n)
	s := compute(g, 60)
	d := ExactD(g, c, s)
	leaves := float64(n - 1)
	want := 1 - c*(1+(leaves-1)*c)/leaves
	if math.Abs(d[0]-want) > 1e-12 {
		t.Fatalf("star center D = %g want %g", d[0], want)
	}
	// leaves have d_in = 1
	if math.Abs(d[1]-(1-c)) > 1e-12 {
		t.Fatalf("leaf D = %g", d[1])
	}
}

func TestExactDRange(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 10; trial++ {
		n := 5 + r.Intn(30)
		b := graph.NewBuilder(n)
		for e := 0; e < n*4; e++ {
			b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
		}
		g := b.Build()
		s := compute(g, 40)
		for k, dk := range ExactD(g, c, s) {
			if dk < 1-c-1e-9 || dk > 1+1e-9 {
				t.Fatalf("D(%d) = %g outside [1−c, 1]", k, dk)
			}
		}
	}
}

func TestMatrixBytes(t *testing.T) {
	g := gen.Cycle(10)
	s := compute(g, 5)
	if s.Bytes() != 800 {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
}

func BenchmarkPowerMethod1K(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g, Options{C: c, L: 10})
	}
}
