// Package powermethod implements the classic exact all-pairs SimRank
// algorithm of Jeh & Widom in the matrix form used by the paper (§2.1):
//
//	S = (c·Pᵀ·S·P) ∨ I ,
//
// iterated from S₀ = I, where ∨ is the element-wise maximum (which only
// affects the diagonal, since off-diagonal entries of c·PᵀSP stay below 1).
// After L iterations the additive error is at most c^L.
//
// This is the paper's ground-truth oracle for small graphs — and its
// motivating obstacle: O(n²) space and O(n·m) time per iteration make it
// infeasible beyond ~10⁶ nodes, which is exactly why ExactSim exists.
package powermethod

import (
	"context"
	"math"
	"sync"

	"github.com/exactsim/exactsim/internal/graph"
)

// Matrix is a dense row-major n×n similarity matrix.
type Matrix struct {
	N    int
	Data []float64 // row-major, len N*N
}

// At returns S(i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Row returns row i (aliased, do not modify).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.N : (i+1)*m.N] }

// Options configures the power method.
type Options struct {
	C       float64 // decay factor; must be in (0,1)
	L       int     // iterations; 0 picks ⌈log_{1/c}(1/eps)⌉ for eps=1e-9
	Workers int     // row-parallelism; ≤1 means serial
}

// Iterations returns the iteration count that guarantees additive error eps.
func Iterations(c, eps float64) int {
	return int(math.Ceil(math.Log(1/eps) / math.Log(1/c)))
}

// Compute runs the power method and returns the SimRank matrix. Memory is
// 2·n²·8 bytes; callers are expected to keep n modest (the whole point of
// the paper).
func Compute(g *graph.Graph, opt Options) *Matrix {
	m, _ := ComputeCtx(context.Background(), g, opt)
	return m
}

// ComputeCtx is Compute with per-iteration cancellation (each iteration
// costs O(n·m), so on anything but toy graphs a deadline matters here).
func ComputeCtx(ctx context.Context, g *graph.Graph, opt Options) (*Matrix, error) {
	if opt.C <= 0 || opt.C >= 1 {
		panic("powermethod: decay factor must lie in (0,1)")
	}
	L := opt.L
	if L <= 0 {
		L = Iterations(opt.C, 1e-9)
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	n := g.N()
	cur := newIdentity(n)
	tmp := &Matrix{N: n, Data: make([]float64, n*n)}
	next := &Matrix{N: n, Data: make([]float64, n*n)}
	invDin := make([]float64, n)
	for v := 0; v < n; v++ {
		if d := g.InDegree(int32(v)); d > 0 {
			invDin[v] = 1 / float64(d)
		}
	}
	for iter := 0; iter < L; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// tmp = S·P :  tmp(u,j) = (1/d_in(j))·Σ_{v∈I(j)} S(u,v)
		parallelRows(n, workers, func(u int) {
			srow := cur.Row(u)
			trow := tmp.Row(u)
			for j := 0; j < n; j++ {
				if invDin[j] == 0 {
					trow[j] = 0
					continue
				}
				s := 0.0
				for _, v := range g.InNeighbors(int32(j)) {
					s += srow[v]
				}
				trow[j] = s * invDin[j]
			}
		})
		// next = c·Pᵀ·tmp, then diagonal forced to 1 (the ∨ I step):
		// next(i,j) = c·(1/d_in(i))·Σ_{u∈I(i)} tmp(u,j)
		parallelRows(n, workers, func(i int) {
			nrow := next.Row(i)
			if invDin[i] == 0 {
				for j := range nrow {
					nrow[j] = 0
				}
			} else {
				in := g.InNeighbors(int32(i))
				for j := 0; j < n; j++ {
					s := 0.0
					for _, u := range in {
						s += tmp.At(int(u), j)
					}
					nrow[j] = opt.C * s * invDin[i]
				}
			}
			nrow[i] = 1
		})
		cur, next = next, cur
	}
	return cur, nil
}

func newIdentity(n int) *Matrix {
	m := &Matrix{N: n, Data: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

func parallelRows(n, workers int, fn func(row int)) {
	if workers == 1 || n < 256 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// SingleSource extracts the single-source vector for node i as a copy.
func (m *Matrix) SingleSource(i graph.NodeID) []float64 {
	return append([]float64(nil), m.Row(int(i))...)
}

// ExactD derives the diagonal correction matrix D from an exact SimRank
// matrix via D(k,k) = 1 − c·(PᵀSP)(k,k): the meeting probability of two
// √c-walks from v_k equals the (k,k) entry of c·PᵀSP (first step must
// survive on both sides, then the pair behaves like an (i,j) pair whose
// meeting probability is S(i,j), with S(i,i)=1 capturing "already met").
func ExactD(g *graph.Graph, c float64, s *Matrix) []float64 {
	n := g.N()
	d := make([]float64, n)
	for k := 0; k < n; k++ {
		din := g.InDegree(int32(k))
		if din == 0 {
			d[k] = 1
			continue
		}
		in := g.InNeighbors(int32(k))
		sum := 0.0
		for _, u := range in {
			for _, v := range in {
				sum += s.At(int(u), int(v))
			}
		}
		d[k] = 1 - c*sum/float64(din*din)
	}
	return d
}

// Bytes returns the matrix's memory footprint.
func (m *Matrix) Bytes() int64 { return int64(len(m.Data)) * 8 }
