// Package parsim implements the ParSim baseline (Yu & McCann, paper §2):
// the linearized iteration with the diagonal approximated as D = (1−c)·I,
// which simply ignores the first-meeting constraint.
//
// ParSim is index-free and fast — its L iterations cost O(m·L) like
// ExactSim's deterministic phases — but the D approximation biases the
// result: the paper (§2.2, Figure 1/5) shows its MaxError plateaus at the
// bias floor no matter how large L grows, while (Figure 2) its top-k
// precision on small graphs stays surprisingly high. Both behaviours are
// reproduced by the harness.
package parsim

import (
	"context"
	"math"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/linalg"
	"github.com/exactsim/exactsim/internal/ppr"
)

// Params configures a ParSim query. The paper sweeps L from 50 to 5·10⁵ on
// small graphs and 10..500 on large ones.
type Params struct {
	C float64 // decay factor
	L int     // iteration count; error floor is the D-approximation bias
}

// Engine answers ParSim single-source queries.
type Engine struct {
	g  *graph.Graph
	op *linalg.Operator
	p  Params
}

// New returns a ParSim engine.
func New(g *graph.Graph, p Params) *Engine {
	return &Engine{g: g, op: linalg.NewOperator(g, 1), p: p}
}

// truncation keeps the level vectors sparse without observable error; the
// dropped mass per level is below double rounding at any plotted scale.
const truncation = 1e-15

// SingleSource computes Σ_{ℓ=0}^{L} c^ℓ (Pᵀ)^ℓ (1−c) P^ℓ e_source using the
// backward-accumulation identity (paper eq. 6) with D = (1−c)·I.
func (e *Engine) SingleSource(source graph.NodeID) []float64 {
	s, _ := e.SingleSourceCtx(context.Background(), source)
	return s
}

// SingleSourceCtx is SingleSource with per-level cancellation in both the
// forward and backward sweeps (each level costs O(m), so a deadline is
// honored within one matrix application).
func (e *Engine) SingleSourceCtx(ctx context.Context, source graph.NodeID) ([]float64, error) {
	c := e.p.C
	sqrtC := math.Sqrt(c)
	n := e.g.N()
	hops, err := ppr.HopsCtx(ctx, e.op, source, ppr.Config{C: c, L: e.p.L, Threshold: truncation})
	if err != nil {
		return nil, err
	}

	// With D = (1−c)I the correction constant becomes (1−c)/(1−√c)²·...:
	// S·e_i ≈ Σ_ℓ (√cPᵀ)^ℓ (1−c)/(1−√c) π_i^ℓ · 1/(1−√c) — same backward
	// recurrence as ExactSim with d(k) ≡ 1−c.
	s := make([]float64, n)
	tmp := make([]float64, n)
	// s = Σ_ℓ (√cPᵀ)^ℓ·(1−c)·π^ℓ/(1−√c): one (1−√c) of π's definition
	// cancels against the 1/(1−√c) of eq. 8.
	coeff := (1 - c) / (1 - sqrtC)
	for j := e.p.L; j >= 0; j-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if j < e.p.L {
			e.op.ApplyPT(tmp, s, sqrtC)
			s, tmp = tmp, s
		}
		hj := &hops[j]
		for i, k := range hj.Idx {
			s[k] += coeff * hj.Val[i]
		}
	}
	s[source] = 1
	return s, nil
}

// MaxLevelBytes reports the peak memory of the level vectors for a query —
// ParSim is index-free, so this is its only memory overhead.
func (e *Engine) MaxLevelBytes(source graph.NodeID) int64 {
	hops := ppr.Hops(e.op, source, ppr.Config{C: e.p.C, L: e.p.L, Threshold: truncation})
	var total int64
	for i := range hops {
		total += hops[i].Bytes()
	}
	return total
}
