package parsim

import (
	"math"
	"testing"

	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/linalg"
	"github.com/exactsim/exactsim/internal/powermethod"
	"github.com/exactsim/exactsim/internal/rng"
)

const c = 0.6

func randomGraph(seed uint64, n, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

// bruteParSim evaluates Σ_{ℓ=0}^{L} c^ℓ (Pᵀ)^ℓ (1−c) P^ℓ e_src densely.
func bruteParSim(g *graph.Graph, src graph.NodeID, L int) []float64 {
	n := g.N()
	P := linalg.DenseP(g)
	mul := func(mat [][]float64, x []float64) []float64 {
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				y[i] += mat[i][j] * x[j]
			}
		}
		return y
	}
	mulT := func(mat [][]float64, x []float64) []float64 {
		y := make([]float64, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				y[j] += mat[i][j] * x[i]
			}
		}
		return y
	}
	out := make([]float64, n)
	u := make([]float64, n)
	u[src] = 1
	for ell := 0; ell <= L; ell++ {
		v := append([]float64(nil), u...)
		for s := 0; s < ell; s++ {
			v = mulT(P, v)
		}
		w := math.Pow(c, float64(ell)) * (1 - c)
		for i := range v {
			out[i] += w * v[i]
		}
		u = mul(P, u)
	}
	out[src] = 1
	return out
}

func TestMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g := randomGraph(seed, 15, 50)
		e := New(g, Params{C: c, L: 12})
		for _, src := range []int32{0, 7} {
			got := e.SingleSource(src)
			want := bruteParSim(g, src, 12)
			for j := range got {
				if math.Abs(got[j]-want[j]) > 1e-9 {
					t.Fatalf("seed %d src %d node %d: %g vs %g",
						seed, src, j, got[j], want[j])
				}
			}
		}
	}
}

func TestBiasFloorOnStar(t *testing.T) {
	// The paper's point: more iterations cannot repair the D=(1−c)I bias.
	g := gen.Star(20)
	truth := powermethod.Compute(g, powermethod.Options{C: c, L: 60})
	worstAt := func(L int) float64 {
		e := New(g, Params{C: c, L: L})
		s := e.SingleSource(1)
		worst := 0.0
		for j := range s {
			if d := math.Abs(s[j] - truth.At(1, j)); d > worst {
				worst = d
			}
		}
		return worst
	}
	e50, e500 := worstAt(50), worstAt(500)
	if e500 < 1e-3 {
		t.Fatalf("ParSim error %g suspiciously small — bias floor missing", e500)
	}
	if math.Abs(e50-e500) > 1e-6 {
		t.Fatalf("error should have converged to the bias floor: %g vs %g", e50, e500)
	}
}

func TestConvergesInL(t *testing.T) {
	g := randomGraph(9, 30, 120)
	e5 := New(g, Params{C: c, L: 5}).SingleSource(3)
	e30 := New(g, Params{C: c, L: 30}).SingleSource(3)
	e60 := New(g, Params{C: c, L: 60}).SingleSource(3)
	d1, d2 := 0.0, 0.0
	for j := range e5 {
		d1 = math.Max(d1, math.Abs(e5[j]-e60[j]))
		d2 = math.Max(d2, math.Abs(e30[j]-e60[j]))
	}
	if d2 >= d1 && d1 != 0 {
		t.Fatalf("no convergence: |L5−L60|=%g, |L30−L60|=%g", d1, d2)
	}
	if d2 > math.Pow(c, 30) {
		t.Fatalf("L=30 residual %g exceeds c^30", d2)
	}
}

func TestSelfScoreOne(t *testing.T) {
	g := gen.BarabasiAlbert(50, 3, 13)
	s := New(g, Params{C: c, L: 20}).SingleSource(8)
	if s[8] != 1 {
		t.Fatalf("self score %g", s[8])
	}
}

func TestMaxLevelBytesPositive(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 17)
	e := New(g, Params{C: c, L: 20})
	if e.MaxLevelBytes(0) <= 0 {
		t.Fatal("no level memory reported")
	}
}

func BenchmarkQueryL50(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 5, 1)
	e := New(g, Params{C: c, L: 50})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SingleSource(int32(i % g.N()))
	}
}
