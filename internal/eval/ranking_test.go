package eval

import (
	"math"
	"testing"

	"github.com/exactsim/exactsim/internal/rng"
)

func TestNDCGPerfect(t *testing.T) {
	truth := []float64{1, 0.9, 0.8, 0.7, 0.1}
	if got := NDCGAtK(truth, truth, 3, 0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect NDCG %g", got)
	}
}

func TestNDCGDegradesWithNoise(t *testing.T) {
	r := rng.New(3)
	truth := make([]float64, 200)
	for i := range truth {
		truth[i] = r.Float64()
	}
	noisy := make([]float64, len(truth))
	garbage := make([]float64, len(truth))
	for i := range truth {
		noisy[i] = truth[i] + 0.01*r.Float64()
		garbage[i] = r.Float64()
	}
	nPerfect := NDCGAtK(truth, truth, 20, -1)
	nNoisy := NDCGAtK(noisy, truth, 20, -1)
	nGarbage := NDCGAtK(garbage, truth, 20, -1)
	if !(nPerfect >= nNoisy && nNoisy > nGarbage) {
		t.Fatalf("NDCG ordering broken: %g %g %g", nPerfect, nNoisy, nGarbage)
	}
	if nGarbage >= 0.99 {
		t.Fatalf("garbage NDCG suspiciously high: %g", nGarbage)
	}
}

func TestNDCGEdgeCases(t *testing.T) {
	if NDCGAtK([]float64{1}, []float64{1}, 0, -1) != 1 {
		t.Fatal("k=0")
	}
	if NDCGAtK([]float64{0, 0}, []float64{0, 0}, 2, -1) != 1 {
		t.Fatal("all-zero truth should yield 1")
	}
}

func TestKendallTau(t *testing.T) {
	truth := []float64{0.9, 0.8, 0.7, 0.6, 0.1}
	if got := KendallTauAtK(truth, truth, 4, -1); got != 1 {
		t.Fatalf("identity tau %g", got)
	}
	reversed := []float64{0.1, 0.2, 0.3, 0.4, 0.9}
	// true top-4 = nodes 0..3; approx reverses them... node 4 has high
	// approx but is outside the true top-4 set
	if got := KendallTauAtK(reversed, truth, 4, -1); got != -1 {
		t.Fatalf("reversed tau %g", got)
	}
}

func TestKendallTauTies(t *testing.T) {
	truth := []float64{0.9, 0.8, 0.7}
	flat := []float64{0.5, 0.5, 0.5}
	if got := KendallTauAtK(flat, truth, 3, -1); got != 0 {
		t.Fatalf("all-ties tau %g", got)
	}
}

func TestKendallTauSmallK(t *testing.T) {
	if got := KendallTauAtK([]float64{1, 2}, []float64{1, 2}, 1, -1); got != 1 {
		t.Fatalf("k=1 tau %g", got)
	}
}

func TestRankOf(t *testing.T) {
	scores := []float64{1.0, 0.3, 0.9, 0.3, 0.5}
	// excluding source 0: order is 2 (0.9), 4 (0.5), 1 (0.3), 3 (0.3)
	cases := map[int32]int{2: 1, 4: 2, 1: 3, 3: 4}
	for node, want := range cases {
		if got := RankOf(scores, node, 0); got != want {
			t.Fatalf("RankOf(%d) = %d want %d", node, got, want)
		}
	}
	if RankOf(scores, 0, 0) != 0 {
		t.Fatal("source rank should be 0")
	}
}
