package eval

import (
	"math"
	"testing"

	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/powermethod"
	"github.com/exactsim/exactsim/internal/sparse"
)

const c = 0.6

func TestMaxError(t *testing.T) {
	got := []float64{0.1, 0.5, 0.9}
	truth := []float64{0.1, 0.45, 1.0}
	if e := MaxError(got, truth); math.Abs(e-0.1) > 1e-15 {
		t.Fatalf("MaxError = %g", e)
	}
	if e := MaxError(truth, truth); e != 0 {
		t.Fatalf("self MaxError = %g", e)
	}
}

func TestMaxErrorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	MaxError([]float64{1}, []float64{1, 2})
}

func TestAvgError(t *testing.T) {
	got := []float64{0, 1}
	truth := []float64{1, 1}
	if e := AvgError(got, truth); math.Abs(e-0.5) > 1e-15 {
		t.Fatalf("AvgError = %g", e)
	}
	if AvgError(nil, nil) != 0 {
		t.Fatal("empty AvgError")
	}
}

func TestPrecisionAtKPerfect(t *testing.T) {
	truth := []float64{1.0, 0.9, 0.8, 0.7, 0.1, 0.05}
	if p := PrecisionAtK(truth, truth, 3, 0); p != 1 {
		t.Fatalf("identical vectors precision %g", p)
	}
}

func TestPrecisionAtKDisjoint(t *testing.T) {
	truth := []float64{1.0, 0.9, 0.8, 0.0, 0.0, 0.0}
	approx := []float64{1.0, 0.0, 0.0, 0.9, 0.8, 0.7}
	// truth top-2 (excluding source 0): {1,2}; approx top-2: {3,4} → 0,
	// but ties at 0.0 in truth don't matter since approx picked 0.9/0.8.
	if p := PrecisionAtK(approx, truth, 2, 0); p != 0 {
		t.Fatalf("disjoint precision %g", p)
	}
}

func TestPrecisionAtKPartial(t *testing.T) {
	truth := []float64{1.0, 0.9, 0.8, 0.7, 0.0}
	approx := []float64{1.0, 0.9, 0.0, 0.8, 0.7}
	// truth top-3: {1,2,3}; approx top-3: {1,3,4} → 2/3
	if p := PrecisionAtK(approx, truth, 3, 0); math.Abs(p-2.0/3) > 1e-15 {
		t.Fatalf("partial precision %g", p)
	}
}

func TestPrecisionAtKTies(t *testing.T) {
	// Nodes 2 and 3 tie at the k-th value: either is a valid member.
	truth := []float64{1.0, 0.9, 0.5, 0.5, 0.1}
	approxA := []float64{1.0, 0.9, 0.5, 0.0, 0.0} // picks node 2
	approxB := []float64{1.0, 0.9, 0.0, 0.5, 0.0} // picks node 3
	if p := PrecisionAtK(approxA, truth, 2, 0); p != 1 {
		t.Fatalf("tie variant A precision %g", p)
	}
	if p := PrecisionAtK(approxB, truth, 2, 0); p != 1 {
		t.Fatalf("tie variant B precision %g", p)
	}
}

func TestPrecisionAtKZeroK(t *testing.T) {
	if p := PrecisionAtK([]float64{1}, []float64{1}, 0, -1); p != 1 {
		t.Fatalf("k=0 precision %g", p)
	}
}

func TestPoolRanksExactAlgorithmFirst(t *testing.T) {
	// Star graph: true top-k of a leaf is the other leaves (S = c), and
	// the center scores 0. A "good" algorithm submits leaves; a "bad" one
	// submits the center plus junk. Pooling must prefer the good one.
	g := gen.Star(12)
	truth := powermethod.Compute(g, powermethod.Options{C: c, L: 40})
	src := int32(1)
	good := sparse.TopK(truth.Row(int(src)), 5, src)
	bad := []sparse.Entry{{Idx: 0, Val: 0.9}} // center: actually S=0
	for j := int32(2); len(bad) < 5; j++ {
		if j != src {
			bad = append(bad, sparse.Entry{Idx: j, Val: 0.01})
		}
	}
	res := Pool(g, c, src, 5, []PoolEntry{
		{Algorithm: "good", TopK: good},
		{Algorithm: "bad", TopK: bad},
	}, 20000, 7)
	if res.Precision["good"] != 1 {
		t.Fatalf("good algorithm precision %g", res.Precision["good"])
	}
	if res.Precision["bad"] >= res.Precision["good"] {
		t.Fatalf("bad %g should trail good %g",
			res.Precision["bad"], res.Precision["good"])
	}
	// the pooled top-k must not contain the center (its true score is 0)
	for _, e := range res.PooledTopK {
		if e.Idx == 0 {
			t.Fatal("center leaked into pooled ground truth")
		}
	}
}

func TestPoolPrecisionRelative(t *testing.T) {
	// Pool with a single algorithm: precision is trivially ≥ its overlap
	// with itself, demonstrating the "relative" caveat the paper stresses.
	g := gen.Clique(8)
	entries := []PoolEntry{{Algorithm: "only", TopK: []sparse.Entry{
		{Idx: 1, Val: 0.3}, {Idx: 2, Val: 0.2},
	}}}
	res := Pool(g, c, 0, 2, entries, 5000, 3)
	if res.Precision["only"] != 1 {
		t.Fatalf("single-entry pool precision %g", res.Precision["only"])
	}
}

func TestPoolEmptyTopK(t *testing.T) {
	g := gen.Clique(4)
	res := Pool(g, c, 0, 3, []PoolEntry{{Algorithm: "empty"}}, 100, 1)
	if res.Precision["empty"] != 0 {
		t.Fatalf("empty algorithm precision %g", res.Precision["empty"])
	}
}

func TestPoolScoresMatchSimRank(t *testing.T) {
	// The MC adjudication scores must approximate true SimRank.
	g := gen.Clique(6)
	truth := powermethod.Compute(g, powermethod.Options{C: c, L: 40})
	entries := []PoolEntry{{Algorithm: "a", TopK: []sparse.Entry{
		{Idx: 1, Val: 0}, {Idx: 2, Val: 0}, {Idx: 3, Val: 0},
	}}}
	res := Pool(g, c, 0, 3, entries, 50000, 11)
	for _, e := range res.PooledTopK {
		if math.Abs(e.Val-truth.At(0, int(e.Idx))) > 0.01 {
			t.Fatalf("pool score for %d: %g vs truth %g",
				e.Idx, e.Val, truth.At(0, int(e.Idx)))
		}
	}
}
