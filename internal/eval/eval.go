// Package eval implements the paper's evaluation methodology (§4): the
// MaxError and Precision@k metrics, and the pooling protocol of §2 for
// comparing top-k algorithms when no ground truth is available.
package eval

import (
	"fmt"
	"math"
	"sort"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/sparse"
	"github.com/exactsim/exactsim/internal/walk"
)

// MaxError returns max_j |got(j) − truth(j)| (the paper's MaxError metric).
func MaxError(got, truth []float64) float64 {
	if len(got) != len(truth) {
		panic(fmt.Sprintf("eval: length mismatch %d vs %d", len(got), len(truth)))
	}
	worst := 0.0
	for i := range got {
		if d := math.Abs(got[i] - truth[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// AvgError returns the mean absolute error.
func AvgError(got, truth []float64) float64 {
	if len(got) != len(truth) {
		panic(fmt.Sprintf("eval: length mismatch %d vs %d", len(got), len(truth)))
	}
	if len(got) == 0 {
		return 0
	}
	sum := 0.0
	for i := range got {
		sum += math.Abs(got[i] - truth[i])
	}
	return sum / float64(len(got))
}

// PrecisionAtK returns the fraction of the approximate top-k that belongs
// to the true top-k (the paper's Precision@k, with k=500 in §4). Ties in
// the ground truth are handled generously: any node whose true score ties
// the k-th true score (within tieEps) counts as a valid member, matching
// how the paper treats indistinguishable candidates.
func PrecisionAtK(approx, truth []float64, k int, source graph.NodeID) float64 {
	if k <= 0 {
		return 1
	}
	approxTop := sparse.TopK(approx, k, source)
	truthTop := sparse.TopK(truth, k, source)
	if len(truthTop) == 0 {
		return 1
	}
	const tieEps = 1e-12
	kth := truthTop[len(truthTop)-1].Val
	valid := make(map[int32]bool, 2*k)
	for _, e := range truthTop {
		valid[e.Idx] = true
	}
	// widen with tied nodes beyond position k
	for j, v := range truth {
		if int32(j) != source && v >= kth-tieEps {
			valid[int32(j)] = true
		}
	}
	hit := 0
	for _, e := range approxTop {
		if valid[e.Idx] {
			hit++
		}
	}
	return float64(hit) / float64(len(approxTop))
}

// PoolEntry is one algorithm's contribution to a pool.
type PoolEntry struct {
	Algorithm string
	TopK      []sparse.Entry
}

// PoolResult reports the pooling adjudication.
type PoolResult struct {
	// PooledTopK is the best-possible top-k assembled from the union of
	// all candidates, ranked by high-precision Monte-Carlo SimRank.
	PooledTopK []sparse.Entry
	// Precision maps algorithm name → fraction of its top-k that appears
	// in PooledTopK.
	Precision map[string]float64
}

// Pool implements the paper's §2 pooling protocol: merge the top-k
// candidate sets of all algorithms, estimate S(source, candidate) for each
// pooled node with `samples` √c-walk pairs, take the best k as the pooled
// "ground truth", and score each algorithm's precision against it.
//
// As the paper stresses, pooled precision is relative — valid only for
// comparing the participants — which is exactly how the harness uses it.
func Pool(g *graph.Graph, c float64, source graph.NodeID, k int,
	entries []PoolEntry, samples int, seed uint64) PoolResult {

	pool := map[int32]bool{}
	for _, e := range entries {
		for _, cand := range e.TopK {
			if cand.Idx != source {
				pool[cand.Idx] = true
			}
		}
	}
	candidates := make([]int32, 0, len(pool))
	for v := range pool {
		candidates = append(candidates, v)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	// High-precision MC adjudication.
	w := walk.NewWalker(g, c, seed)
	scored := make([]sparse.Entry, len(candidates))
	for i, v := range candidates {
		met := 0
		for s := 0; s < samples; s++ {
			if w.PairMeetsFrom(source, v) {
				met++
			}
		}
		scored[i] = sparse.Entry{Idx: v, Val: float64(met) / float64(samples)}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Val != scored[j].Val {
			return scored[i].Val > scored[j].Val
		}
		return scored[i].Idx < scored[j].Idx
	})
	if len(scored) > k {
		scored = scored[:k]
	}
	inPool := make(map[int32]bool, len(scored))
	for _, e := range scored {
		inPool[e.Idx] = true
	}
	res := PoolResult{PooledTopK: scored, Precision: map[string]float64{}}
	for _, e := range entries {
		if len(e.TopK) == 0 {
			res.Precision[e.Algorithm] = 0
			continue
		}
		hit := 0
		for _, cand := range e.TopK {
			if inPool[cand.Idx] {
				hit++
			}
		}
		res.Precision[e.Algorithm] = float64(hit) / float64(len(e.TopK))
	}
	return res
}
