package eval

import (
	"math"
	"sort"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/sparse"
)

// Ranking-quality metrics beyond the paper's Precision@k. The SimRank
// literature the paper builds on (SLING, PRSim, ProbeSim) commonly also
// reports NDCG@k and rank correlation; these round out the evaluation
// toolkit for downstream users.

// NDCGAtK computes the Normalized Discounted Cumulative Gain of the
// approximate ranking against true scores: the approximate top-k order is
// credited with the *true* score of each returned node, discounted by
// log2(rank+1), and normalized by the ideal ordering's DCG.
func NDCGAtK(approx, truth []float64, k int, source graph.NodeID) float64 {
	if k <= 0 {
		return 1
	}
	approxTop := sparse.TopK(approx, k, source)
	idealTop := sparse.TopK(truth, k, source)
	if len(idealTop) == 0 {
		return 1
	}
	dcg := 0.0
	for rank, e := range approxTop {
		dcg += truth[e.Idx] / math.Log2(float64(rank)+2)
	}
	ideal := 0.0
	for rank, e := range idealTop {
		ideal += e.Val / math.Log2(float64(rank)+2)
	}
	if ideal == 0 {
		return 1
	}
	return dcg / ideal
}

// KendallTauAtK computes Kendall's tau-a between the approximate and true
// orderings restricted to the true top-k set: the fraction of concordant
// pairs minus discordant pairs among the k·(k−1)/2 pairs. 1 is perfect
// agreement, −1 perfect inversion.
func KendallTauAtK(approx, truth []float64, k int, source graph.NodeID) float64 {
	top := sparse.TopK(truth, k, source)
	if len(top) < 2 {
		return 1
	}
	nodes := make([]int32, len(top))
	for i, e := range top {
		nodes[i] = e.Idx
	}
	// nodes are in true-rank order; count inversions under approx scores.
	concordant, discordant := 0, 0
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			a, b := approx[nodes[i]], approx[nodes[j]]
			switch {
			case a > b:
				concordant++
			case a < b:
				discordant++
			}
			// ties contribute to neither (tau-a denominator keeps them)
		}
	}
	pairs := len(nodes) * (len(nodes) - 1) / 2
	return float64(concordant-discordant) / float64(pairs)
}

// RankOf returns the 1-based rank of node in the score vector (descending,
// ties broken by ascending index, source excluded), or 0 if node == source.
func RankOf(scores []float64, node, source graph.NodeID) int {
	if node == source {
		return 0
	}
	type pair struct {
		idx int32
		val float64
	}
	ps := make([]pair, 0, len(scores)-1)
	for i, v := range scores {
		if int32(i) == source {
			continue
		}
		ps = append(ps, pair{int32(i), v})
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].val != ps[b].val {
			return ps[a].val > ps[b].val
		}
		return ps[a].idx < ps[b].idx
	})
	for r, p := range ps {
		if p.idx == node {
			return r + 1
		}
	}
	return 0
}
