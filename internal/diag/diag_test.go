package diag

import (
	"math"
	"runtime"
	"testing"

	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/powermethod"
	"github.com/exactsim/exactsim/internal/rng"
)

const c = 0.6

func randomGraph(seed uint64, n, m int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func TestExactByIterationTrivial(t *testing.T) {
	g := gen.Path(3)
	d := ExactByIteration(g, c, 40)
	if d[0] != 1 {
		t.Fatalf("dead end D = %g", d[0])
	}
	for _, k := range []int{1, 2} {
		if math.Abs(d[k]-(1-c)) > 1e-12 {
			t.Fatalf("d_in=1 node %d: D = %g", k, d[k])
		}
	}
}

func TestExactByIterationStar(t *testing.T) {
	n := 7
	g := gen.Star(n)
	d := ExactByIteration(g, c, 60)
	leaves := float64(n - 1)
	want := 1 - c*(1+(leaves-1)*c)/leaves
	if math.Abs(d[0]-want) > 1e-12 {
		t.Fatalf("star center D = %g want %g", d[0], want)
	}
}

func TestExactByIterationCycle(t *testing.T) {
	// Two walks from the same cycle node stay glued: they meet iff both
	// survive step 1, so D = 1 − c.
	d := ExactByIteration(gen.Cycle(6), c, 60)
	for k, dk := range d {
		if math.Abs(dk-(1-c)) > 1e-12 {
			t.Fatalf("cycle D(%d) = %g", k, dk)
		}
	}
}

func TestExactByIterationMatchesPowerMethod(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomGraph(seed, 20, 70)
		want := powermethod.ExactD(g, c, powermethod.Compute(g, powermethod.Options{C: c, L: 50}))
		got := ExactByIteration(g, c, 50)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-9 {
				t.Fatalf("seed %d node %d: pair-iteration %g vs power method %g",
					seed, k, got[k], want[k])
			}
		}
	}
}

func TestBasicEstimatorConverges(t *testing.T) {
	g := randomGraph(3, 15, 60)
	exact := ExactByIteration(g, c, 60)
	e := NewEstimator(g, c, 99)
	for k := 0; k < g.N(); k++ {
		got := e.Basic(int32(k), 40000)
		// σ ≤ 1/(2√R) ≈ 0.0025 → 5σ margin
		if math.Abs(got-exact[k]) > 0.015 {
			t.Fatalf("node %d: basic %g vs exact %g", k, got, exact[k])
		}
	}
}

func TestImprovedEstimatorConverges(t *testing.T) {
	g := randomGraph(5, 15, 60)
	exact := ExactByIteration(g, c, 60)
	e := NewEstimator(g, c, 101)
	for k := 0; k < g.N(); k++ {
		got := e.Improved(int32(k), 20000)
		if math.Abs(got-exact[k]) > 0.015 {
			t.Fatalf("node %d: improved %g vs exact %g", k, got, exact[k])
		}
	}
}

func TestImprovedBeatsBasicVariance(t *testing.T) {
	// With a healthy budget the deterministic prefix must shrink the
	// spread of the improved estimator well below the basic one.
	g := gen.BarabasiAlbert(60, 3, 9)
	exact := ExactByIteration(g, c, 60)
	k := int32(0)
	const trials, samples = 60, 400
	var mseB, mseI float64
	for i := 0; i < trials; i++ {
		e := NewEstimator(g, c, uint64(1000+i))
		b := e.Basic(k, samples)
		e.Reseed(uint64(5000 + i))
		im := e.Improved(k, samples)
		mseB += (b - exact[k]) * (b - exact[k])
		mseI += (im - exact[k]) * (im - exact[k])
	}
	if mseI >= mseB {
		t.Fatalf("improved MSE %g not below basic MSE %g", mseI/trials, mseB/trials)
	}
}

func TestImprovedTrivialCases(t *testing.T) {
	g := gen.Path(3)
	e := NewEstimator(g, c, 7)
	if got := e.Improved(0, 100); got != 1 {
		t.Fatalf("dead end: %g", got)
	}
	if got := e.Improved(1, 100); got != 1-c {
		t.Fatalf("d_in=1: %g", got)
	}
}

func TestImprovedTinyBudgetFallsBackToSampling(t *testing.T) {
	// samples=1 gives an edge budget too small for level 1 on a hub, so
	// ℓ(k)=0 and the estimator degenerates to a 1-sample Algorithm 2 —
	// the result must still be a valid probability in [1−c, 1] (clamped).
	g := gen.Clique(10)
	e := NewEstimator(g, c, 11)
	for trial := 0; trial < 50; trial++ {
		got := e.Improved(0, 1)
		if got < 1-c-1e-12 || got > 1+1e-12 {
			t.Fatalf("out of range: %g", got)
		}
	}
}

// bruteFirstMeeting computes Σ_{ℓ=1}^{L} Z_ℓ(k) by exact DP over pair
// states of non-stop walks, discounting by c^ℓ and removing collided mass
// (first-meeting semantics).
func bruteFirstMeeting(g *graph.Graph, cc float64, k graph.NodeID, L int) float64 {
	cur := map[[2]int32]float64{{k, k}: 1}
	total := 0.0
	for ell := 1; ell <= L; ell++ {
		next := map[[2]int32]float64{}
		collide := 0.0
		for uv, p := range cur {
			iu := g.InNeighbors(uv[0])
			iv := g.InNeighbors(uv[1])
			if len(iu) == 0 || len(iv) == 0 {
				continue
			}
			w := p / float64(len(iu)*len(iv))
			for _, up := range iu {
				for _, vp := range iv {
					if up == vp {
						collide += w
					} else {
						next[[2]int32{up, vp}] += w
					}
				}
			}
		}
		total += math.Pow(cc, float64(ell)) * collide
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	return total
}

func TestExploreDeterministicMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g := randomGraph(seed*13, 12, 40)
		for k := int32(0); k < int32(g.N()); k++ {
			if g.InDegree(k) < 2 {
				continue
			}
			e := NewEstimator(g, c, 1)
			lk, zSum := e.exploreDeterministic(k, 1<<40)
			want := bruteFirstMeeting(g, c, k, lk)
			if math.Abs(zSum-want) > 1e-9 {
				t.Fatalf("seed %d node %d: zSum %g vs brute %g (ℓ(k)=%d)",
					seed, k, zSum, want, lk)
			}
		}
	}
}

func TestExploreDeterministicFullDepthGivesExactD(t *testing.T) {
	// With unlimited budget the deterministic sum reaches depth 64 where
	// the tail is ≤ c^64 ≈ 1e-15: 1 − Σ Z equals exact D.
	g := randomGraph(21, 10, 35)
	exact := ExactByIteration(g, c, 80)
	for k := int32(0); k < int32(g.N()); k++ {
		if g.InDegree(k) < 2 {
			continue
		}
		e := NewEstimator(g, c, 1)
		_, zSum := e.exploreDeterministic(k, 1<<50)
		if math.Abs((1-zSum)-exact[k]) > 1e-9 {
			t.Fatalf("node %d: 1−ΣZ = %g vs exact %g", k, 1-zSum, exact[k])
		}
	}
}

func TestBatchSerialParallelIdentical(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 31)
	reqs := make([]Request, 50)
	for i := range reqs {
		reqs[i] = Request{Node: int32(i * 3), Samples: 50 + i}
	}
	for _, improved := range []bool{false, true} {
		serial := Batch(g, reqs, Options{C: c, Improved: improved, Workers: 1, Seed: 42})
		par := Batch(g, reqs, Options{C: c, Improved: improved, Workers: 4, Seed: 42})
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("improved=%v req %d: serial %g vs parallel %g",
					improved, i, serial[i], par[i])
			}
		}
	}
}

func TestBatchFatRequestSerialParallelIdentical(t *testing.T) {
	// A request far above chunkSamples splits into many chunks; the merge
	// must keep the result bit-identical across worker counts (this is the
	// regime the chunking exists for — the source node's R(k)).
	g := gen.BarabasiAlbert(300, 4, 7)
	reqs := []Request{
		{Node: 0, Samples: 3*chunkSamples + 17},
		{Node: 5, Samples: 10},
		{Node: 9, Samples: chunkSamples}, // exactly one chunk
	}
	for _, improved := range []bool{false, true} {
		serial := Batch(g, reqs, Options{C: c, Improved: improved, Workers: 1, Seed: 9})
		for _, workers := range []int{2, 8} {
			par := Batch(g, reqs, Options{C: c, Improved: improved, Workers: workers, Seed: 9})
			for i := range serial {
				if math.Float64bits(serial[i]) != math.Float64bits(par[i]) {
					t.Fatalf("improved=%v workers=%d req %d: %g vs %g",
						improved, workers, i, serial[i], par[i])
				}
			}
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	g := gen.Cycle(3)
	if got := Batch(g, nil, Options{C: c, Workers: 2, Seed: 1}); len(got) != 0 {
		t.Fatalf("empty batch returned %v", got)
	}
}

func TestBatchAccuracy(t *testing.T) {
	g := randomGraph(77, 12, 50)
	exact := ExactByIteration(g, c, 60)
	reqs := make([]Request, g.N())
	for i := range reqs {
		reqs[i] = Request{Node: int32(i), Samples: 20000}
	}
	got := Batch(g, reqs, Options{C: c, Improved: true, Workers: 2, Seed: 5})
	for k := range got {
		if math.Abs(got[k]-exact[k]) > 0.02 {
			t.Fatalf("node %d: batch %g vs exact %g", k, got[k], exact[k])
		}
	}
}

func TestEstimatesWithinFeasibleInterval(t *testing.T) {
	// D(k,k) ∈ [1−c, 1] always; Improved clamps, and on these graphs the
	// basic estimator with moderate samples must stay inside a loose band.
	g := gen.BarabasiAlbert(100, 4, 51)
	e := NewEstimator(g, c, 3)
	for k := int32(0); k < 100; k += 7 {
		im := e.Improved(k, 500)
		if im < 1-c-1e-12 || im > 1+1e-12 {
			t.Fatalf("improved D(%d) = %g outside [1−c,1]", k, im)
		}
	}
}

func BenchmarkBasic1000(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 5, 1)
	e := NewEstimator(g, c, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Basic(int32(i%g.N()), 1000)
	}
}

func BenchmarkImproved1000(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 5, 1)
	e := NewEstimator(g, c, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Improved(int32(i%g.N()), 1000)
	}
}

// benchBatchReqs models ExactSim's diagonal phase at tight ε: one fat
// source request (the π²-sampling cap) plus a long tail of small ones.
func benchBatchReqs(g *graph.Graph) []Request {
	reqs := make([]Request, 0, 1001)
	reqs = append(reqs, Request{Node: 0, Samples: 1 << 16})
	for i := 1; i <= 1000; i++ {
		reqs = append(reqs, Request{Node: int32(i % g.N()), Samples: 64})
	}
	return reqs
}

// BenchmarkDiagBatch is the stable baseline for the diagonal phase's
// parallel scaling: run with -cpu=1,8 to see the fat-request sharding
// effect (whole-request scheduling would pin the 1<<16-sample source on
// one worker regardless of pool size).
func BenchmarkDiagBatch(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 5, 1)
	reqs := benchBatchReqs(g)
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Batch(g, reqs, Options{C: c, Improved: true, Workers: workers, Seed: 1})
	}
}

// BenchmarkDiagBatchSerial is BenchmarkDiagBatch pinned to one worker, the
// denominator of the scaling ratio.
func BenchmarkDiagBatchSerial(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 5, 1)
	reqs := benchBatchReqs(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Batch(g, reqs, Options{C: c, Improved: true, Workers: 1, Seed: 1})
	}
}
