package diag

import (
	"math"
	"sync"
	"testing"

	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/graph"
)

// indexTestRequests builds a request mix exercising every index path: a
// fat multi-chunk node, mid-size nodes with partial tail chunks, trivial
// in-degree nodes, and (Improved mode) depth-compensated requests.
func indexTestRequests(g *graph.Graph) []Request {
	reqs := []Request{
		{Node: 0, Samples: 3 * chunkSamples},                                      // three full chunks
		{Node: 1, Samples: chunkSamples + 100},                                    // full + partial tail
		{Node: 2, Samples: 500},                                                   // single partial chunk
		{Node: 3, Samples: 1},                                                     // minimal
		{Node: 5, Samples: 2048, TargetDepth: 3, EdgeBudget: 1 << 18},             // compensated
		{Node: 7, Samples: 2 * chunkSamples, TargetDepth: 2, EdgeBudget: 1 << 16}, // compensated, fat
	}
	for i := range reqs {
		if int(reqs[i].Node) >= g.N() {
			panic("graph too small for index test requests")
		}
	}
	return reqs
}

// bitsEqual fails the test at the first float whose bits differ.
func bitsEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: value %d = %x, want %x", label,
				i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestSampleIndexColdWarmBitEqual is the index's core contract: for one
// request set, the output with no index, with a cold index, with the same
// index warm, and with an index pre-warmed by a different query, are all
// bit-identical — the index is an amortization layer, never an estimator
// change.
func TestSampleIndexColdWarmBitEqual(t *testing.T) {
	g := gen.BarabasiAlbert(500, 4, 3)
	reqs := indexTestRequests(g)
	for _, improved := range []bool{false, true} {
		base := Options{C: c, Improved: improved, Workers: 2, Seed: 11}

		want := Batch(g, reqs, base)

		withIx := base
		withIx.Index = NewSampleIndex(0)
		cold := Batch(g, reqs, withIx)
		bitsEqual(t, "cold index", cold, want)

		warm := Batch(g, reqs, withIx)
		bitsEqual(t, "warm index", warm, want)

		// An index warmed by a *different* request set must not perturb
		// this one (shared nodes hit, different sizes miss — both exact).
		other := NewSampleIndex(0)
		otherReqs := []Request{
			{Node: 0, Samples: chunkSamples},
			{Node: 2, Samples: 500},
			{Node: 9, Samples: 100},
		}
		crossIx := base
		crossIx.Index = other
		Batch(g, otherReqs, crossIx)
		cross := Batch(g, reqs, crossIx)
		bitsEqual(t, "cross-warmed index", cross, want)

		st := withIx.Index.Stats()
		if st.Hits == 0 || st.Misses == 0 {
			t.Fatalf("index never exercised: %+v", st)
		}
		if st.Chunks == 0 || st.ResidentBytes <= 0 {
			t.Fatalf("nothing resident: %+v", st)
		}
		if improved && st.Explores == 0 {
			t.Fatalf("no explorations cached in improved mode: %+v", st)
		}
	}
}

// TestSampleIndexEvictionBitEqual pins the eviction contract: a budget far
// too small for the working set forces constant chunk-granularity LRU
// eviction, and the output stays bit-identical to the indexless run — a
// re-sampled chunk reproduces the evicted integer exactly.
func TestSampleIndexEvictionBitEqual(t *testing.T) {
	g := gen.BarabasiAlbert(400, 4, 5)
	reqs := indexTestRequests(g)
	base := Options{C: c, Improved: true, Workers: 2, Seed: 7}
	want := Batch(g, reqs, base)

	tiny := base
	tiny.Index = NewSampleIndex(512) // a handful of entries at most
	for round := 0; round < 3; round++ {
		got := Batch(g, reqs, tiny)
		bitsEqual(t, "evicting index", got, want)
	}
	st := tiny.Index.Stats()
	if st.Evictions == 0 {
		t.Fatalf("budget 512 never evicted: %+v", st)
	}
	if st.ResidentBytes > 512 {
		t.Fatalf("resident %d exceeds budget 512", st.ResidentBytes)
	}
}

// TestSampleIndexMismatchBypass: an index bound to another (graph, c,
// seed) triple must be bypassed, not consulted — its chunks belong to
// different streams.
func TestSampleIndexMismatchBypass(t *testing.T) {
	g1 := gen.BarabasiAlbert(300, 3, 1)
	g2 := gen.BarabasiAlbert(300, 3, 2)
	reqs := []Request{{Node: 0, Samples: 4096}, {Node: 1, Samples: 512}}

	ix := NewSampleIndex(0)
	Batch(g1, reqs, Options{C: c, Improved: true, Seed: 9, Index: ix}) // binds to g1

	want := Batch(g2, reqs, Options{C: c, Improved: true, Seed: 9})
	got := Batch(g2, reqs, Options{C: c, Improved: true, Seed: 9, Index: ix})
	bitsEqual(t, "mismatched graph", got, want)

	wantSeed := Batch(g1, reqs, Options{C: c, Improved: true, Seed: 10})
	gotSeed := Batch(g1, reqs, Options{C: c, Improved: true, Seed: 10, Index: ix})
	bitsEqual(t, "mismatched seed", gotSeed, wantSeed)
}

// TestTailMeetsZeroPrefixIsPairMeets pins the stream identity the shared
// chunk key relies on: tailMeets with a zero-length non-stop prefix must
// consume exactly the RNG draws of pairMeets and count the same meets, so
// chunk entries at lk=0 are interchangeable between Algorithm-2 and
// Algorithm-3 queries sharing one index. If a walk-engine change breaks
// this, the chunkKey needs an Improved/Basic bit.
func TestTailMeetsZeroPrefixIsPairMeets(t *testing.T) {
	g := gen.BarabasiAlbert(300, 4, 17)
	e := NewEstimator(g, c, 1)
	for _, node := range []graph.NodeID{0, 3, 99, 250} {
		for _, seed := range []uint64{2, 77, 123456} {
			e.Reseed(seed)
			pair := e.pairMeets(node, 3000)
			e.Reseed(seed)
			tail := e.tailMeets(node, 0, 3000)
			if pair != tail {
				t.Fatalf("node %d seed %d: pairMeets=%d tailMeets(lk=0)=%d — streams diverged",
					node, seed, pair, tail)
			}
		}
	}
}

// TestSampleIndexReset: Reset clears the binding and the resident entries,
// and the next use rebinds to a new graph and serves it correctly.
func TestSampleIndexReset(t *testing.T) {
	g1 := gen.BarabasiAlbert(300, 3, 1)
	g2 := gen.BarabasiAlbert(300, 3, 2)
	reqs := []Request{{Node: 0, Samples: 4096}, {Node: 1, Samples: 512}}

	ix := NewSampleIndex(0)
	Batch(g1, reqs, Options{C: c, Improved: true, Seed: 9, Index: ix})
	if st := ix.Stats(); st.Chunks == 0 {
		t.Fatalf("nothing cached before reset: %+v", st)
	}

	ix.Reset()
	if st := ix.Stats(); st.Chunks != 0 || st.Explores != 0 || st.ResidentBytes != 0 {
		t.Fatalf("reset left residue: %+v", st)
	}

	// Rebinds to g2 and actually serves it (a second run must hit).
	want := Batch(g2, reqs, Options{C: c, Improved: true, Seed: 9})
	got := Batch(g2, reqs, Options{C: c, Improved: true, Seed: 9, Index: ix})
	bitsEqual(t, "post-reset cold", got, want)
	before := ix.Stats().Hits
	again := Batch(g2, reqs, Options{C: c, Improved: true, Seed: 9, Index: ix})
	bitsEqual(t, "post-reset warm", again, want)
	if ix.Stats().Hits == before {
		t.Fatal("index did not rebind to the new graph after Reset")
	}
}

// TestSampleIndexConcurrentBatch runs many concurrent Batch calls over
// overlapping request sets against one shared index (the Service's serving
// pattern) and checks — under -race — that every result is bit-identical
// to its indexless serial counterpart, even while entries race to fill and
// evict.
func TestSampleIndexConcurrentBatch(t *testing.T) {
	g := gen.BarabasiAlbert(400, 4, 13)
	sets := [][]Request{
		{{Node: 0, Samples: 2 * chunkSamples}, {Node: 1, Samples: 700}},
		{{Node: 0, Samples: 2 * chunkSamples}, {Node: 2, Samples: 1024}},
		{{Node: 1, Samples: 700}, {Node: 2, Samples: 1024}, {Node: 3, Samples: 64}},
		{{Node: 0, Samples: chunkSamples}, {Node: 3, Samples: 64}},
	}
	base := Options{C: c, Improved: true, Workers: 2, Seed: 21}
	want := make([][]float64, len(sets))
	for i, reqs := range sets {
		want[i] = Batch(g, reqs, base)
	}

	ix := NewSampleIndex(0)
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for i := range sets {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				withIx := base
				withIx.Index = ix
				got := Batch(g, sets[i], withIx)
				for j := range got {
					if math.Float64bits(got[j]) != math.Float64bits(want[i][j]) {
						t.Errorf("set %d value %d diverged under concurrency", i, j)
						return
					}
				}
			}(i)
		}
	}
	wg.Wait()
}
