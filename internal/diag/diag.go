// Package diag estimates the diagonal correction matrix D of the SimRank
// linearization S = Σ_ℓ c^ℓ (P^ℓ)ᵀ D P^ℓ (paper eq. 3).
//
// D(k,k) = 1 − Pr[two √c-walks from v_k meet at some step ≥ 1], which lies
// in [1−c, 1]. The package provides the paper's two estimators —
//
//   - Algorithm 2 (Estimator.Basic): the plain Bernoulli trial, fraction of
//     walk pairs that never meet;
//   - Algorithm 3 (Estimator.Improved): local deterministic exploitation of
//     the first-meeting probabilities Z_ℓ(k) via the Lemma-4 recursion
//     under an adaptive edge budget, plus hybrid non-stop/√c tail walks —
//
// an exact oracle for small graphs (ExactByIteration, pair-state value
// iteration), and a deterministic parallel Batch driver used by ExactSim
// and the Linearization baseline.
//
// Batch shards *within* fat requests, not just across requests: the source
// node's sample allowance R(k) is orders of magnitude above the median
// (π²-sampling concentrates almost everything on the source), so
// whole-request scheduling would leave one worker grinding the source while
// the rest idle. Requests are cut into fixed-size sample chunks; each chunk
// runs on its own RNG stream derived from (Seed, node, chunk), and chunk
// results are integer meet-counts, so the merge is exact and the output is
// bit-identical at any worker count. Because the stream belongs to the
// node rather than the request, chunk results are also reusable across
// queries: SampleIndex caches them (and the deterministic exploration
// results) so a serving workload pays each node's sampling once per graph
// epoch instead of once per query.
package diag

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/sparse"
	"github.com/exactsim/exactsim/internal/walk"
)

// maxDeterministicLevels caps Algorithm 3's deterministic exploitation
// depth; beyond this depth c^ℓ has shrunk the tail far below any error
// target we support, so deeper exploration would only burn budget.
const maxDeterministicLevels = 64

// chunkSamples is the walk-pair count of one Batch scheduling unit — small
// enough that the fattest request (R(k) capped at 1<<16 by default) splits
// across every worker, large enough that per-chunk reseed/bookkeeping
// amortizes to noise (a chunk is ≈ 1 ms of walking). It must stay fixed:
// chunk boundaries are part of the seed→result contract.
const chunkSamples = 8192

// cPowTable returns [1, c, c², …] up to the deterministic depth cap.
func cPowTable(c float64) [maxDeterministicLevels + 1]float64 {
	var t [maxDeterministicLevels + 1]float64
	t[0] = 1
	for i := 1; i < len(t); i++ {
		t[i] = t[i-1] * c
	}
	return t
}

// Estimator estimates D(k,k) entries for one graph. It owns reusable
// scratch, so one Estimator per worker amortizes allocations across the
// (typically many) nodes whose D entries a query needs. Not safe for
// concurrent use.
type Estimator struct {
	g    *graph.Graph
	c    float64
	w    *walk.Walker
	acc  *sparse.Accumulator // level extension scratch
	zacc *sparse.Accumulator // Z-recursion scratch

	// cPow[ℓ] = c^ℓ, hoisted out of the Lemma-4 recursion's inner loops
	// (math.Pow per (ℓ,ℓ') pair showed up in profiles).
	cPow [maxDeterministicLevels + 1]float64

	// srcSlot/srcStates index the non-stop walk distributions of the
	// sources discovered during explore, keyed by first-touch order: a
	// slice walk instead of the map the profile showed thrashing on. After
	// each explore the touched slots reset to -1; srcStates keeps its
	// capacity across nodes.
	srcSlot   []int32
	srcStates []sourceState
	zByLevel  []sparse.Vector // per-explore Z_ℓ scratch, reused

	// stop, when non-nil, is polled inside the sample and exploration
	// loops (every stopCheckMask+1 samples); once set, estimates are
	// abandoned mid-node. Only BatchCtx sets it, and it discards the
	// partial output, so a non-cancelled run stays bit-reproducible.
	stop *atomic.Bool
}

// stopCheckMask controls how often the sample loops poll the stop flag:
// every 4096 walk pairs, ≈ tens of microseconds of work between polls.
const stopCheckMask = 4095

// SetStop installs a cooperative cancellation flag (nil to clear).
func (e *Estimator) SetStop(stop *atomic.Bool) { e.stop = stop }

// stopped reports whether a cancellation flag is set.
func (e *Estimator) stopped() bool { return e.stop != nil && e.stop.Load() }

// NewEstimator returns an estimator with decay c and a deterministic seed.
func NewEstimator(g *graph.Graph, c float64, seed uint64) *Estimator {
	slots := make([]int32, g.N())
	for i := range slots {
		slots[i] = -1
	}
	return &Estimator{
		g:       g,
		c:       c,
		w:       walk.NewWalker(g, c, seed),
		acc:     sparse.NewAccumulator(g.N()),
		zacc:    sparse.NewAccumulator(g.N()),
		cPow:    cPowTable(c),
		srcSlot: slots,
	}
}

// Reseed resets the estimator's random stream, making the next estimate a
// deterministic function of (graph, node, samples, seed) — the property
// Batch uses to stay reproducible under parallel scheduling.
func (e *Estimator) Reseed(seed uint64) { e.w.RNG().Reseed(seed) }

// pairMeets runs `count` Algorithm-2 trials at k and returns how many met.
func (e *Estimator) pairMeets(k graph.NodeID, count int) int64 {
	var met int64
	for s := 0; s < count; s++ {
		if s&stopCheckMask == 0 && e.stopped() {
			break
		}
		if !e.w.PairNoMeet(k) {
			met++
		}
	}
	return met
}

// tailMeets runs `count` hybrid walk-pair trials of Algorithm 3 — lk forced
// non-stop steps, then ordinary √c-walks — and returns how many met. With
// lk == 0 this is exactly pairMeets.
func (e *Estimator) tailMeets(k graph.NodeID, lk, count int) int64 {
	var met int64
	for s := 0; s < count; s++ {
		if s&stopCheckMask == 0 && e.stopped() {
			break
		}
		x, y, ok := e.w.NonStopPrefixPair(k, lk)
		if !ok {
			continue // dead end or met during prefix: zero contribution
		}
		if e.w.PairMeetsFrom(x, y) {
			met++
		}
	}
	return met
}

// Basic is paper Algorithm 2: simulate `samples` independent pairs of
// √c-walks from k and return the fraction that do NOT meet. Unbiased with
// variance D(k,k)(1−D(k,k))/samples.
func (e *Estimator) Basic(k graph.NodeID, samples int) float64 {
	if samples <= 0 {
		samples = 1
	}
	met := e.pairMeets(k, samples)
	return float64(int64(samples)-met) / float64(samples)
}

// ImprovedParams tunes Algorithm 3 beyond the paper's defaults.
type ImprovedParams struct {
	// Samples is the tail walk-pair count R(k).
	Samples int
	// TargetDepth, when positive, asks the deterministic phase to reach at
	// least this level (budget permitting) and to stop there rather than
	// spending the whole budget. ExactSim uses it to compensate sample
	// capping: reaching depth ℓ* multiplies the tail variance by c^{2ℓ*}.
	TargetDepth int
	// EdgeBudget caps deterministic-exploration work. Zero selects the
	// paper's 2·Samples/√c (the expected edge cost of plain sampling).
	EdgeBudget int64
}

// normalize fills the paper's defaults in place (shared by the single-node
// path and Batch's planning phase so both run identical parameters).
func (p *ImprovedParams) normalize(c float64) {
	if p.Samples <= 0 {
		p.Samples = 1
	}
	if p.EdgeBudget <= 0 {
		p.EdgeBudget = int64(2 * float64(p.Samples) / math.Sqrt(c))
	}
	if p.TargetDepth <= 0 || p.TargetDepth > maxDeterministicLevels {
		p.TargetDepth = maxDeterministicLevels
	}
}

// finishImproved assembles the Algorithm-3 estimate from the deterministic
// prefix (lk, zSum) and the tail meet count, clamping to the feasible
// interval [1−c, 1] (stochastic noise can stray slightly).
func finishImproved(c float64, cl float64, zSum float64, meets int64, samples int) float64 {
	dHat := 1 - zSum - cl*float64(meets)/float64(samples)
	if dHat < 1-c {
		dHat = 1 - c
	}
	if dHat > 1 {
		dHat = 1
	}
	return dHat
}

// Improved is paper Algorithm 3. Under the edge budget (default 2·R(k)/√c,
// the expected edge work of the plain estimator) it deterministically
// computes the first-meeting mass Σ_{ℓ≤ℓ(k)} Z_ℓ(k) via the Lemma-4
// recursion, then estimates the tail Σ_{ℓ>ℓ(k)} Z_ℓ(k) with R(k) hybrid
// walk pairs: ℓ(k) forced non-stop steps followed by ordinary √c-walks,
// each meeting pair weighted c^{ℓ(k)}/R(k). Variance shrinks by c^{ℓ(k)}.
func (e *Estimator) Improved(k graph.NodeID, samples int) float64 {
	return e.ImprovedWith(k, ImprovedParams{Samples: samples})
}

// ImprovedWith runs Algorithm 3 with explicit exploration parameters.
func (e *Estimator) ImprovedWith(k graph.NodeID, p ImprovedParams) float64 {
	switch e.g.InDegree(k) {
	case 0:
		return 1
	case 1:
		return 1 - e.c
	}
	p.normalize(e.c)
	lk, zSum := e.explore(k, p.EdgeBudget, p.TargetDepth)
	meets := e.tailMeets(k, lk, p.Samples)
	return finishImproved(e.c, e.cPow[lk], zSum, meets, p.Samples)
}

// sourceState tracks the non-stop walk distributions (Pᵀ)^a(q,·) of one
// source q for a = 0..len(levels)-1.
type sourceState struct {
	node   graph.NodeID
	levels []sparse.Vector
}

// slot returns the srcStates index of source q, creating (and seeding with
// the level-0 unit vector) on first touch. Callers must not hold
// *sourceState pointers across slot calls — the backing array may grow.
func (e *Estimator) slot(q graph.NodeID) int32 {
	if s := e.srcSlot[q]; s >= 0 {
		return s
	}
	s := int32(len(e.srcStates))
	e.srcSlot[q] = s
	if len(e.srcStates) < cap(e.srcStates) {
		// Reuse the retired element's level vectors from a prior explore —
		// in steady state an explore allocates nothing here.
		e.srcStates = e.srcStates[:s+1]
		st := &e.srcStates[s]
		st.node = q
		if cap(st.levels) > 0 {
			st.levels = st.levels[:1]
			st.levels[0].Idx = append(st.levels[0].Idx[:0], q)
			st.levels[0].Val = append(st.levels[0].Val[:0], 1)
			return s
		}
	}
	e.srcStates = append(e.srcStates[:s], sourceState{
		node:   q,
		levels: []sparse.Vector{{Idx: []int32{q}, Val: []float64{1}}},
	})
	return s
}

// resetSources retires every source discovered by the last explore.
func (e *Estimator) resetSources() {
	for i := range e.srcStates {
		e.srcSlot[e.srcStates[i].node] = -1
	}
	e.srcStates = e.srcStates[:0]
}

// exploreDeterministic runs Algorithm 3's deterministic phase with the
// paper's default depth policy (budget-driven only).
func (e *Estimator) exploreDeterministic(k graph.NodeID, budget int64) (int, float64) {
	return e.explore(k, budget, maxDeterministicLevels)
}

// explore runs Algorithm 3's deterministic phase for node k and returns
// the reached level ℓ(k) and Σ_{ℓ=1}^{ℓ(k)} Z_ℓ(k). It stops at maxDepth
// even if budget remains. It uses no randomness, so its result is a pure
// function of (graph, k, budget, maxDepth) — Batch relies on that to
// parallelize exploration without threatening reproducibility.
//
// Invariant kept per outer level ℓ: before computing Z_ℓ, every node q'
// discovered at depth d (that is, (Pᵀ)^d(k,q') > 0 for some 1 ≤ d < ℓ) has
// its distributions computed up to level ℓ−d; the Lemma-4 subtraction at
// level ℓ reads exactly levels ℓ' = ℓ−d of those sources.
func (e *Estimator) explore(k graph.NodeID, budget int64, maxDepth int) (int, float64) {
	g := e.g
	inOff, inAdj := g.InCSR()
	var edges int64
	defer e.resetSources()

	// extend computes one more level for the source in slot si. It returns
	// false as soon as the edge budget trips; the partially accumulated
	// level is discarded by the callers (they abort the whole exploration).
	extend := func(si int32) bool {
		st := &e.srcStates[si]
		last := &st.levels[len(st.levels)-1]
		for i, x := range last.Idx {
			lo, hi := inOff[x], inOff[x+1]
			if lo == hi {
				continue
			}
			share := last.Val[i] / float64(hi-lo)
			for _, q := range inAdj[lo:hi] {
				e.acc.Add(q, share)
			}
			edges += hi - lo
			if edges >= budget {
				e.acc.Reset()
				return false
			}
		}
		// Build unsorted (first-touch order — deterministic, and nothing
		// binary-searches these vectors), into the retired vector beyond
		// len when one exists so steady state allocates nothing.
		nl := len(st.levels)
		if nl < cap(st.levels) {
			st.levels = st.levels[:nl+1]
		} else {
			st.levels = append(st.levels, sparse.Vector{})
		}
		e.acc.BuildIntoUnsorted(&st.levels[nl], 0)
		return true
	}

	kSlot := e.slot(k)
	zByLevel := append(e.zByLevel[:0], sparse.Vector{}) // level 0 unused
	defer func() { e.zByLevel = zByLevel[:0] }()
	zSum := 0.0

	for ell := 1; ell <= maxDepth; ell++ {
		if e.stopped() {
			return ell - 1, zSum
		}
		// Grow the from-k distribution to level ell.
		if len(e.srcStates[kSlot].levels) <= ell {
			if !extend(kSlot) {
				return ell - 1, zSum
			}
		}
		if e.srcStates[kSlot].levels[ell].Len() == 0 {
			// walk from k dies out entirely (dead ends): Z is complete
			return ell - 1, zSum
		}
		// Ensure discovered sources have the levels the subtraction needs.
		for d := 1; d < ell; d++ {
			for i := 0; i < e.srcStates[kSlot].levels[d].Len(); i++ {
				q := e.srcStates[kSlot].levels[d].Idx[i]
				si := e.slot(q)
				for len(e.srcStates[si].levels) <= ell-d {
					if !extend(si) {
						return ell - 1, zSum
					}
				}
			}
		}

		// Z_ℓ(k,q) = c^ℓ (Pᵀ)^ℓ(k,q)² − Σ_{ℓ'=1}^{ℓ−1} Σ_{q'} c^{ℓ'} (Pᵀ)^{ℓ'}(q',q)² Z_{ℓ−ℓ'}(k,q').
		cl := e.cPow[ell]
		kLevel := &e.srcStates[kSlot].levels[ell]
		for i, q := range kLevel.Idx {
			p := kLevel.Val[i]
			e.zacc.Add(q, cl*p*p)
		}
		for lp := 1; lp < ell; lp++ {
			zPrev := &zByLevel[ell-lp]
			clp := e.cPow[lp]
			for i, qp := range zPrev.Idx {
				zval := zPrev.Val[i]
				if zval == 0 {
					continue
				}
				lv := &e.srcStates[e.srcSlot[qp]].levels[lp]
				for j, q := range lv.Idx {
					p := lv.Val[j]
					e.zacc.Add(q, -clp*p*p*zval)
				}
			}
		}
		nz := len(zByLevel)
		if nz < cap(zByLevel) {
			zByLevel = zByLevel[:nz+1]
		} else {
			zByLevel = append(zByLevel, sparse.Vector{})
		}
		zell := &zByLevel[nz]
		e.zacc.BuildIntoUnsorted(zell, math.Inf(-1))
		for i, v := range zell.Val {
			if v < 0 { // numerical noise; Z is a probability mass
				zell.Val[i] = 0
			}
		}
		zSum += zell.Sum()
		if edges >= budget {
			return ell, zSum
		}
	}
	return maxDepth, zSum
}

// Request names one node and its pair-sample allowance for Batch.
// TargetDepth and EdgeBudget (Algorithm-3 runs only) follow the
// ImprovedParams semantics; zero values select the paper's defaults.
type Request struct {
	Node        graph.NodeID
	Samples     int
	TargetDepth int
	EdgeBudget  int64
}

// Options configures a Batch run.
type Options struct {
	C        float64 // decay factor
	Improved bool    // Algorithm 3 instead of Algorithm 2
	Workers  int     // parallel workers (≤1 serial)
	Seed     uint64  // base seed
	// Pool, when non-nil, supplies the per-worker Estimators (and takes
	// them back) instead of constructing them per call. An Estimator owns
	// O(n) scratch, so a query service calling Batch per request wants
	// this. The pool's graph and decay must match; a mismatch falls back
	// to fresh construction.
	Pool *EstimatorPool
	// Index, when non-nil, caches chunk meet counts and exploration
	// results across Batch calls. It binds to the first (graph, C, Seed)
	// triple that uses it; mismatched runs bypass it. Because chunk
	// streams are keyed by node — not by request — cached and freshly
	// sampled chunks are interchangeable bit for bit, so the index is a
	// pure amortization layer: it changes nothing but the walking time.
	Index *SampleIndex
}

// EstimatorPool recycles Estimators — and their O(n) accumulator and
// source-index scratch — across Batch calls. Safe for concurrent use.
type EstimatorPool struct {
	g    *graph.Graph
	c    float64
	pool sync.Pool
}

// NewEstimatorPool returns a pool producing estimators over g with decay c.
func NewEstimatorPool(g *graph.Graph, c float64) *EstimatorPool {
	return &EstimatorPool{g: g, c: c}
}

// get returns a pooled (or fresh) estimator; seed only matters until the
// first Reseed, and Batch reseeds per chunk.
func (p *EstimatorPool) get(seed uint64) *Estimator {
	if e, ok := p.pool.Get().(*Estimator); ok {
		return e
	}
	return NewEstimator(p.g, p.c, seed)
}

// put takes an estimator back; its cancellation flag is detached first.
func (p *EstimatorPool) put(e *Estimator) {
	e.SetStop(nil)
	p.pool.Put(e)
}

// chunkSeed derives the RNG stream of one (node, chunk) cell. The two odd
// multipliers decorrelate the lattice before rng.New's splitmix finalizer.
// Keying on the node — not the request index — makes a chunk's stream a
// source-independent property of the graph, which is what lets a
// SampleIndex share chunk results across queries: any request that needs
// chunk c of node k draws the identical stream. The flip side is that two
// requests naming the same node in one Batch would draw correlated
// (identical) streams — callers must not duplicate nodes, and none do
// (core issues one request per touched node).
func chunkSeed(seed uint64, node graph.NodeID, chunk int) uint64 {
	return seed ^ (0x9e3779b97f4a7c15 * (uint64(node) + 1)) ^ (0xbf58476d1ce4e5b9 * uint64(chunk+1))
}

// reqPlan is Batch's per-request state between phases.
type reqPlan struct {
	samples int
	lk      int     // Algorithm-3 prefix depth
	zSum    float64 // deterministic first-meeting mass
	direct  bool    // out[i] already final (trivial in-degree cases)
}

// Batch estimates D(k,k) for every request. Each sample chunk runs on its
// own RNG stream derived from (Seed, node, chunk index), so results are
// bit-for-bit reproducible regardless of worker count, scheduling, or —
// when Options.Index is set — cache hit pattern; the property the paper's
// parallelization paragraph demands of a ground-truth tool. Requests must
// name distinct nodes (see chunkSeed).
func Batch(g *graph.Graph, reqs []Request, opt Options) []float64 {
	out, _ := BatchCtx(context.Background(), g, reqs, opt)
	return out
}

// BatchCtx is Batch under a context: cancellation is observed between
// scheduling units and — via the estimators' stop flag — inside the
// per-chunk sample and exploration loops, so even a single
// astronomically-sampled node cannot outlive its deadline by more than a
// few thousand walk pairs. On cancellation the partial output is discarded
// and ctx.Err() returned.
//
// The run has three phases. Phase 1 parallelizes over requests: trivial
// in-degree answers and (Improved mode) the deterministic exploration,
// which uses no randomness. Phase 2 parallelizes over fixed-size sample
// chunks — the fat-request remedy: the source node's R(k) dwarfs the
// median allowance, and whole-request scheduling would serialize the whole
// phase behind it. Phase 3 merges integer meet counts per request
// (addition of int64s — exact, order-free) and applies the estimator
// formula once per node.
func BatchCtx(ctx context.Context, g *graph.Graph, reqs []Request, opt Options) ([]float64, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	var stop atomic.Bool
	if ctx.Done() != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			// A race between cancellation and normal completion only
			// decides whether workers abandon in-flight chunks; their
			// partial results are discarded once BatchCtx sees ctx.Err().
			//lint:nondeterministic-ok cancellation watcher; losing the race only abandons work, results are discarded on ctx.Err()
			select {
			case <-ctx.Done():
				stop.Store(true)
			case <-watchDone:
			}
		}()
	}

	pool := opt.Pool
	if pool != nil && (pool.g != g || pool.c != opt.C) {
		pool = nil
	}
	ix := opt.Index
	if ix != nil && !ix.bind(g, opt.C, opt.Seed) {
		ix = nil
	}
	ests := make([]*Estimator, workers)
	for i := range ests {
		if pool != nil {
			ests[i] = pool.get(opt.Seed + uint64(i))
		} else {
			ests[i] = NewEstimator(g, opt.C, opt.Seed+uint64(i))
		}
		ests[i].SetStop(&stop)
	}
	if pool != nil {
		defer func() {
			for _, e := range ests {
				pool.put(e)
			}
		}()
	}
	// runParallel drains unit indices [0, count) across the worker pool.
	runParallel := func(count int, unit func(e *Estimator, i int)) {
		var next int64
		work := func(e *Estimator) {
			for !stop.Load() {
				i := int(atomic.AddInt64(&next, 1) - 1)
				if i >= count {
					return
				}
				unit(e, i)
			}
		}
		if workers == 1 || count <= 1 {
			work(ests[0])
			return
		}
		var wg sync.WaitGroup
		for _, e := range ests {
			wg.Add(1)
			go func(e *Estimator) {
				defer wg.Done()
				work(e)
			}(e)
		}
		wg.Wait()
	}

	out := make([]float64, len(reqs))
	plans := make([]reqPlan, len(reqs))

	// Phase 1: per-request deterministic work (no RNG involved).
	runParallel(len(reqs), func(e *Estimator, i int) {
		req := reqs[i]
		p := &plans[i]
		p.samples = req.Samples
		if p.samples <= 0 {
			p.samples = 1
		}
		if !opt.Improved {
			return
		}
		switch g.InDegree(req.Node) {
		case 0:
			out[i], p.direct = 1, true
		case 1:
			out[i], p.direct = 1-opt.C, true
		default:
			ip := ImprovedParams{
				Samples:     p.samples,
				TargetDepth: req.TargetDepth,
				EdgeBudget:  req.EdgeBudget,
			}
			ip.normalize(opt.C)
			// The exploration is a pure function of the normalized key, so
			// a cached result is the bit-identical value recomputation
			// would produce. A run cancelled mid-explore returns a
			// truncated (lk, zSum) — never cached; the whole Batch output
			// is discarded on cancellation anyway.
			ek := exploreKey{node: req.Node, depth: int32(ip.TargetDepth), budget: ip.EdgeBudget}
			if ix != nil {
				if v, ok := ix.exploreResult(ek); ok {
					p.lk, p.zSum = v.lk, v.zSum
					return
				}
			}
			p.lk, p.zSum = e.explore(req.Node, ip.EdgeBudget, ip.TargetDepth)
			if ix != nil && !e.stopped() {
				ix.putExplore(ek, exploreVal{lk: p.lk, zSum: p.zSum})
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2: sample chunks. Boundaries are a pure function of the
	// requests (chunkSamples is a constant), never of the worker count.
	type chunkRef struct {
		req     int32
		chunk   int32
		samples int32
	}
	var chunks []chunkRef
	for i := range plans {
		if plans[i].direct {
			continue
		}
		for c, left := 0, plans[i].samples; left > 0; c++ {
			cs := left
			if cs > chunkSamples {
				cs = chunkSamples
			}
			chunks = append(chunks, chunkRef{req: int32(i), chunk: int32(c), samples: int32(cs)})
			left -= cs
		}
	}
	meets := make([]int64, len(chunks))
	runParallel(len(chunks), func(e *Estimator, ci int) {
		ch := chunks[ci]
		node := reqs[ch.req].Node
		lk := plans[ch.req].lk // 0 in Algorithm-2 mode
		// The key carries no Improved/Basic bit: at lk=0 the two modes
		// draw the identical stream (a zero-length non-stop prefix
		// consumes no RNG draws), so their chunk values are
		// interchangeable and an index shared across exactsim and
		// exactsim-basic queriers stays exact. TestTailMeetsZeroPrefixIsPairMeets
		// pins that identity against drift in the walk engine.
		key := chunkKey{node: node, lk: int32(lk), chunk: ch.chunk, size: ch.samples}
		if ix != nil {
			if m, ok := ix.chunkMeets(key); ok {
				meets[ci] = m
				return
			}
		}
		e.Reseed(chunkSeed(opt.Seed, node, int(ch.chunk)))
		var m int64
		if opt.Improved {
			m = e.tailMeets(node, lk, int(ch.samples))
		} else {
			m = e.pairMeets(node, int(ch.samples))
		}
		meets[ci] = m
		// A chunk interrupted mid-loop holds a partial count; the stop
		// flag is monotone, so a false read here proves the loop ran to
		// completion and the count is the chunk's true value.
		if ix != nil && !e.stopped() {
			ix.putChunk(key, m)
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 3: exact merge — chunk meet counts are integers, so summation
	// order cannot perturb the result.
	totals := make([]int64, len(reqs))
	for ci, ch := range chunks {
		totals[ch.req] += meets[ci]
	}
	cPow := cPowTable(opt.C)
	for i := range reqs {
		p := &plans[i]
		if p.direct {
			continue
		}
		if opt.Improved {
			out[i] = finishImproved(opt.C, cPow[p.lk], p.zSum, totals[i], p.samples)
		} else {
			out[i] = float64(int64(p.samples)-totals[i]) / float64(p.samples)
		}
	}
	return out, nil
}

// ExactByIteration computes D exactly by value iteration on the pair chain
//
//	M(u,v) = (c / d_in(u)d_in(v)) Σ_{u'∈I(u)} Σ_{v'∈I(v)} ([u'=v'] + [u'≠v']·M(u',v'))
//
// with D(k,k) = 1 − M(k,k). After `iters` rounds the error is ≤ c^iters.
// O(iters·m²) time and O(n²) space: a small-graph oracle used to validate
// both estimators and to drive the deterministic exact-D ExactSim variant.
func ExactByIteration(g *graph.Graph, c float64, iters int) []float64 {
	n := g.N()
	cur := make([]float64, n*n)
	nxt := make([]float64, n*n)
	for it := 0; it < iters; it++ {
		for u := 0; u < n; u++ {
			iu := g.InNeighbors(int32(u))
			for v := 0; v < n; v++ {
				iv := g.InNeighbors(int32(v))
				if len(iu) == 0 || len(iv) == 0 {
					nxt[u*n+v] = 0
					continue
				}
				sum := 0.0
				for _, up := range iu {
					for _, vp := range iv {
						if up == vp {
							sum++
						} else {
							sum += cur[int(up)*n+int(vp)]
						}
					}
				}
				nxt[u*n+v] = c * sum / float64(len(iu)*len(iv))
			}
		}
		cur, nxt = nxt, cur
	}
	d := make([]float64, n)
	for k := 0; k < n; k++ {
		d[k] = 1 - cur[k*n+k]
	}
	return d
}
