// Package diag estimates the diagonal correction matrix D of the SimRank
// linearization S = Σ_ℓ c^ℓ (P^ℓ)ᵀ D P^ℓ (paper eq. 3).
//
// D(k,k) = 1 − Pr[two √c-walks from v_k meet at some step ≥ 1], which lies
// in [1−c, 1]. The package provides the paper's two estimators —
//
//   - Algorithm 2 (Estimator.Basic): the plain Bernoulli trial, fraction of
//     walk pairs that never meet;
//   - Algorithm 3 (Estimator.Improved): local deterministic exploitation of
//     the first-meeting probabilities Z_ℓ(k) via the Lemma-4 recursion
//     under an adaptive edge budget, plus hybrid non-stop/√c tail walks —
//
// an exact oracle for small graphs (ExactByIteration, pair-state value
// iteration), and a deterministic parallel Batch driver used by ExactSim
// and the Linearization baseline.
package diag

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/sparse"
	"github.com/exactsim/exactsim/internal/walk"
)

// maxDeterministicLevels caps Algorithm 3's deterministic exploitation
// depth; beyond this depth c^ℓ has shrunk the tail far below any error
// target we support, so deeper exploration would only burn budget.
const maxDeterministicLevels = 64

// Estimator estimates D(k,k) entries for one graph. It owns reusable
// scratch, so one Estimator per worker amortizes allocations across the
// (typically many) nodes whose D entries a query needs. Not safe for
// concurrent use.
type Estimator struct {
	g    *graph.Graph
	c    float64
	w    *walk.Walker
	acc  *sparse.Accumulator // level extension scratch
	zacc *sparse.Accumulator // Z-recursion scratch
	// stop, when non-nil, is polled inside the sample and exploration
	// loops (every stopCheckMask+1 samples); once set, estimates are
	// abandoned mid-node. Only BatchCtx sets it, and it discards the
	// partial output, so a non-cancelled run stays bit-reproducible.
	stop *atomic.Bool
}

// stopCheckMask controls how often the sample loops poll the stop flag:
// every 4096 walk pairs, ≈ tens of microseconds of work between polls.
const stopCheckMask = 4095

// SetStop installs a cooperative cancellation flag (nil to clear).
func (e *Estimator) SetStop(stop *atomic.Bool) { e.stop = stop }

// stopped reports whether a cancellation flag is set.
func (e *Estimator) stopped() bool { return e.stop != nil && e.stop.Load() }

// NewEstimator returns an estimator with decay c and a deterministic seed.
func NewEstimator(g *graph.Graph, c float64, seed uint64) *Estimator {
	return &Estimator{
		g:    g,
		c:    c,
		w:    walk.NewWalker(g, c, seed),
		acc:  sparse.NewAccumulator(g.N()),
		zacc: sparse.NewAccumulator(g.N()),
	}
}

// Reseed resets the estimator's random stream, making the next estimate a
// deterministic function of (graph, node, samples, seed) — the property
// Batch uses to stay reproducible under parallel scheduling.
func (e *Estimator) Reseed(seed uint64) { e.w.RNG().Reseed(seed) }

// Basic is paper Algorithm 2: simulate `samples` independent pairs of
// √c-walks from k and return the fraction that do NOT meet. Unbiased with
// variance D(k,k)(1−D(k,k))/samples.
func (e *Estimator) Basic(k graph.NodeID, samples int) float64 {
	if samples <= 0 {
		samples = 1
	}
	noMeet := 0
	for s := 0; s < samples; s++ {
		if s&stopCheckMask == 0 && e.stopped() {
			break
		}
		if e.w.PairNoMeet(k) {
			noMeet++
		}
	}
	return float64(noMeet) / float64(samples)
}

// ImprovedParams tunes Algorithm 3 beyond the paper's defaults.
type ImprovedParams struct {
	// Samples is the tail walk-pair count R(k).
	Samples int
	// TargetDepth, when positive, asks the deterministic phase to reach at
	// least this level (budget permitting) and to stop there rather than
	// spending the whole budget. ExactSim uses it to compensate sample
	// capping: reaching depth ℓ* multiplies the tail variance by c^{2ℓ*}.
	TargetDepth int
	// EdgeBudget caps deterministic-exploration work. Zero selects the
	// paper's 2·Samples/√c (the expected edge cost of plain sampling).
	EdgeBudget int64
}

// Improved is paper Algorithm 3. Under the edge budget (default 2·R(k)/√c,
// the expected edge work of the plain estimator) it deterministically
// computes the first-meeting mass Σ_{ℓ≤ℓ(k)} Z_ℓ(k) via the Lemma-4
// recursion, then estimates the tail Σ_{ℓ>ℓ(k)} Z_ℓ(k) with R(k) hybrid
// walk pairs: ℓ(k) forced non-stop steps followed by ordinary √c-walks,
// each meeting pair weighted c^{ℓ(k)}/R(k). Variance shrinks by c^{ℓ(k)}.
func (e *Estimator) Improved(k graph.NodeID, samples int) float64 {
	return e.ImprovedWith(k, ImprovedParams{Samples: samples})
}

// ImprovedWith runs Algorithm 3 with explicit exploration parameters.
func (e *Estimator) ImprovedWith(k graph.NodeID, p ImprovedParams) float64 {
	switch e.g.InDegree(k) {
	case 0:
		return 1
	case 1:
		return 1 - e.c
	}
	samples := p.Samples
	if samples <= 0 {
		samples = 1
	}
	budget := p.EdgeBudget
	if budget <= 0 {
		budget = int64(2 * float64(samples) / math.Sqrt(e.c))
	}
	maxDepth := p.TargetDepth
	if maxDepth <= 0 || maxDepth > maxDeterministicLevels {
		maxDepth = maxDeterministicLevels
	}
	lk, zSum := e.explore(k, budget, maxDepth)

	dHat := 1 - zSum
	cl := math.Pow(e.c, float64(lk))
	inv := cl / float64(samples)
	for s := 0; s < samples; s++ {
		if s&stopCheckMask == 0 && e.stopped() {
			break
		}
		// With lk == 0 the prefix is empty and this is exactly Algorithm 2.
		x, y, ok := e.w.NonStopPrefixPair(k, lk)
		if !ok {
			continue // dead end or met during prefix: zero contribution
		}
		if e.w.PairMeetsFrom(x, y) {
			dHat -= inv
		}
	}
	// Clamp to the feasible interval; stochastic noise can stray slightly.
	if dHat < 1-e.c {
		dHat = 1 - e.c
	}
	if dHat > 1 {
		dHat = 1
	}
	return dHat
}

// sourceState tracks the non-stop walk distributions (Pᵀ)^a(q,·) of one
// source q for a = 0..len(levels)-1.
type sourceState struct {
	levels []sparse.Vector
}

// exploreDeterministic runs Algorithm 3's deterministic phase with the
// paper's default depth policy (budget-driven only).
func (e *Estimator) exploreDeterministic(k graph.NodeID, budget int64) (int, float64) {
	return e.explore(k, budget, maxDeterministicLevels)
}

// explore runs Algorithm 3's deterministic phase for node k and returns
// the reached level ℓ(k) and Σ_{ℓ=1}^{ℓ(k)} Z_ℓ(k). It stops at maxDepth
// even if budget remains.
//
// Invariant kept per outer level ℓ: before computing Z_ℓ, every node q'
// discovered at depth d (that is, (Pᵀ)^d(k,q') > 0 for some 1 ≤ d < ℓ) has
// its distributions computed up to level ℓ−d; the Lemma-4 subtraction at
// level ℓ reads exactly levels ℓ' = ℓ−d of those sources.
func (e *Estimator) explore(k graph.NodeID, budget int64, maxDepth int) (int, float64) {
	g := e.g
	var edges int64

	// extend computes one more level for st. It returns false as soon as
	// the edge budget trips; the partially accumulated level is discarded
	// by the callers (they abort the whole exploration).
	extend := func(st *sourceState) bool {
		last := &st.levels[len(st.levels)-1]
		for i, x := range last.Idx {
			din := g.InDegree(x)
			if din == 0 {
				continue
			}
			share := last.Val[i] / float64(din)
			for _, q := range g.InNeighbors(x) {
				e.acc.Add(q, share)
			}
			edges += int64(din)
			if edges >= budget {
				e.acc.Reset()
				return false
			}
		}
		st.levels = append(st.levels, e.acc.Build(0))
		return true
	}

	stK := &sourceState{levels: []sparse.Vector{{Idx: []int32{k}, Val: []float64{1}}}}
	sources := map[int32]*sourceState{k: stK}
	zByLevel := []sparse.Vector{{}} // level 0 unused
	zSum := 0.0

	for ell := 1; ell <= maxDepth; ell++ {
		if e.stopped() {
			return ell - 1, zSum
		}
		// Grow the from-k distribution to level ell.
		if len(stK.levels) <= ell {
			if !extend(stK) {
				return ell - 1, zSum
			}
		}
		if stK.levels[ell].Len() == 0 {
			// walk from k dies out entirely (dead ends): Z is complete
			return ell - 1, zSum
		}
		// Ensure discovered sources have the levels the subtraction needs.
		for d := 1; d < ell; d++ {
			fk := &stK.levels[d]
			for _, q := range fk.Idx {
				st := sources[q]
				if st == nil {
					st = &sourceState{levels: []sparse.Vector{{Idx: []int32{q}, Val: []float64{1}}}}
					sources[q] = st
				}
				for len(st.levels) <= ell-d {
					if !extend(st) {
						return ell - 1, zSum
					}
				}
			}
		}

		// Z_ℓ(k,q) = c^ℓ (Pᵀ)^ℓ(k,q)² − Σ_{ℓ'=1}^{ℓ−1} Σ_{q'} c^{ℓ'} (Pᵀ)^{ℓ'}(q',q)² Z_{ℓ−ℓ'}(k,q').
		cl := math.Pow(e.c, float64(ell))
		for i, q := range stK.levels[ell].Idx {
			p := stK.levels[ell].Val[i]
			e.zacc.Add(q, cl*p*p)
		}
		for lp := 1; lp < ell; lp++ {
			zPrev := &zByLevel[ell-lp]
			clp := math.Pow(e.c, float64(lp))
			for i, qp := range zPrev.Idx {
				zval := zPrev.Val[i]
				if zval == 0 {
					continue
				}
				st := sources[qp]
				lv := &st.levels[lp]
				for j, q := range lv.Idx {
					p := lv.Val[j]
					e.zacc.Add(q, -clp*p*p*zval)
				}
			}
		}
		zell := e.zacc.Build(math.Inf(-1))
		for i, v := range zell.Val {
			if v < 0 { // numerical noise; Z is a probability mass
				zell.Val[i] = 0
			}
		}
		zByLevel = append(zByLevel, zell)
		zSum += zell.Sum()
		if edges >= budget {
			return ell, zSum
		}
	}
	return maxDepth, zSum
}

// Request names one node and its pair-sample allowance for Batch.
// TargetDepth and EdgeBudget (Algorithm-3 runs only) follow the
// ImprovedParams semantics; zero values select the paper's defaults.
type Request struct {
	Node        graph.NodeID
	Samples     int
	TargetDepth int
	EdgeBudget  int64
}

// Options configures a Batch run.
type Options struct {
	C        float64 // decay factor
	Improved bool    // Algorithm 3 instead of Algorithm 2
	Workers  int     // parallel workers (≤1 serial)
	Seed     uint64  // base seed
}

// Batch estimates D(k,k) for every request. Each request runs on its own
// RNG stream derived from (Seed, request index), so results are
// bit-for-bit reproducible regardless of worker count or scheduling — the
// property the paper's parallelization paragraph demands of a ground-truth
// tool.
func Batch(g *graph.Graph, reqs []Request, opt Options) []float64 {
	out, _ := BatchCtx(context.Background(), g, reqs, opt)
	return out
}

// BatchCtx is Batch under a context: cancellation is observed between
// requests and — via the estimators' stop flag — inside the per-node sample
// and exploration loops, so even a single astronomically-sampled node
// cannot outlive its deadline by more than a few thousand walk pairs.
// On cancellation the partial output is discarded and ctx.Err() returned.
func BatchCtx(ctx context.Context, g *graph.Graph, reqs []Request, opt Options) ([]float64, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	var stop atomic.Bool
	if ctx.Done() != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				stop.Store(true)
			case <-watchDone:
			}
		}()
	}
	out := make([]float64, len(reqs))
	var next int64
	run := func(e *Estimator) {
		e.SetStop(&stop)
		for !stop.Load() {
			i := int(atomic.AddInt64(&next, 1) - 1)
			if i >= len(reqs) {
				return
			}
			req := reqs[i]
			e.Reseed(opt.Seed ^ (0x9e3779b97f4a7c15 * uint64(i+1)))
			if opt.Improved {
				out[i] = e.ImprovedWith(req.Node, ImprovedParams{
					Samples:     req.Samples,
					TargetDepth: req.TargetDepth,
					EdgeBudget:  req.EdgeBudget,
				})
			} else {
				out[i] = e.Basic(req.Node, req.Samples)
			}
		}
	}
	if workers == 1 {
		run(NewEstimator(g, opt.C, opt.Seed))
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				run(NewEstimator(g, opt.C, opt.Seed+uint64(id)))
			}(w)
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ExactByIteration computes D exactly by value iteration on the pair chain
//
//	M(u,v) = (c / d_in(u)d_in(v)) Σ_{u'∈I(u)} Σ_{v'∈I(v)} ([u'=v'] + [u'≠v']·M(u',v'))
//
// with D(k,k) = 1 − M(k,k). After `iters` rounds the error is ≤ c^iters.
// O(iters·m²) time and O(n²) space: a small-graph oracle used to validate
// both estimators and to drive the deterministic exact-D ExactSim variant.
func ExactByIteration(g *graph.Graph, c float64, iters int) []float64 {
	n := g.N()
	cur := make([]float64, n*n)
	nxt := make([]float64, n*n)
	for it := 0; it < iters; it++ {
		for u := 0; u < n; u++ {
			iu := g.InNeighbors(int32(u))
			for v := 0; v < n; v++ {
				iv := g.InNeighbors(int32(v))
				if len(iu) == 0 || len(iv) == 0 {
					nxt[u*n+v] = 0
					continue
				}
				sum := 0.0
				for _, up := range iu {
					for _, vp := range iv {
						if up == vp {
							sum++
						} else {
							sum += cur[int(up)*n+int(vp)]
						}
					}
				}
				nxt[u*n+v] = c * sum / float64(len(iu)*len(iv))
			}
		}
		cur, nxt = nxt, cur
	}
	d := make([]float64, n)
	for k := 0; k < n; k++ {
		d[k] = 1 - cur[k*n+k]
	}
	return d
}
