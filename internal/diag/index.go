package diag

import (
	"container/list"
	"sync"

	"github.com/exactsim/exactsim/internal/graph"
)

// DefaultIndexBytes is the SampleIndex memory budget selected by a zero
// budget: generous enough that eviction never fires on graphs up to tens of
// millions of touched (node, depth) cells, small next to the CSR arrays of
// any graph large enough to produce that many.
const DefaultIndexBytes = 128 << 20

// Approximate resident cost of one index entry: key + value + map bucket
// share + LRU list element. The constants deliberately overestimate — the
// budget is a protection limit, not an accounting exercise.
const (
	chunkEntryBytes   = 120
	exploreEntryBytes = 136
)

// chunkKey identifies one cached sample chunk. The sample stream of a chunk
// is seeded by (index seed, node, chunk ordinal) — never by the request —
// so the key is source-independent: any query that needs chunk `chunk` of
// node `node` at tail depth `lk` draws the identical stream and therefore
// owns the identical integer meet count. size is the walk-pair count of the
// chunk (full chunks are chunkSamples; a request's tail chunk is smaller,
// and two different tail lengths are two different keys).
type chunkKey struct {
	node  graph.NodeID
	lk    int32
	chunk int32
	size  int32
}

// exploreKey identifies one cached deterministic exploration. explore is a
// pure function of (graph, node, budget, maxDepth), so its output can be
// reused by any query that normalizes to the same parameters.
type exploreKey struct {
	node   graph.NodeID
	depth  int32
	budget int64
}

// exploreVal is the cached output of one exploration.
type exploreVal struct {
	lk   int
	zSum float64
}

// indexEntry is one LRU cell — either a chunk meet count or an explore
// result (isExplore selects which key/value pair is live).
type indexEntry struct {
	isExplore bool
	ck        chunkKey
	ek        exploreKey
	meets     int64
	ev        exploreVal
}

// IndexStats is a point-in-time snapshot of a SampleIndex.
type IndexStats struct {
	// Hits / Misses count lookups (chunk and explore alike) since
	// construction.
	Hits   int64
	Misses int64
	// Evictions counts entries dropped by the memory budget.
	Evictions int64
	// Chunks / Explores are the resident entry counts.
	Chunks   int
	Explores int
	// ResidentBytes estimates the index's current footprint;
	// BudgetBytes is the eviction threshold.
	ResidentBytes int64
	BudgetBytes   int64
}

// SampleIndex is a shared, graph-bound cache of the diagonal phase's two
// expensive intermediates: integer walk-pair meet counts per fixed sample
// chunk, and deterministic exploration results. D(k,k) depends only on the
// graph — not on the query source — so a serving workload that pays the
// Diagonal phase per query re-derives the same quantities endlessly; the
// index amortizes them across queries.
//
// Reuse does not threaten exactness: a chunk's RNG stream is a pure
// function of (seed, node, chunk ordinal), its result is an integer merged
// exactly, and an exploration is deterministic — so a cached value is
// bit-identical to what recomputation would produce, and a query's answer
// is bit-identical regardless of query order, worker count, cache hit
// pattern, or eviction history.
//
// An index binds to the first (graph, c, seed) triple that uses it;
// mismatched callers bypass it (Batch falls back to uncached sampling),
// so a stale index can serve wrong-graph chunks to no one. Eviction is a
// chunk-granularity LRU under a byte budget. Safe for concurrent use.
type SampleIndex struct {
	mu sync.Mutex

	// Binding: set by the first Batch that uses the index, or restored
	// from a spill (then g is nil and restoredSum holds the checksum of
	// the graph the entries belong to until a matching graph adopts it;
	// see spill.go).
	bound       bool
	g           *graph.Graph
	c           float64
	seed        uint64
	restoredSum uint64

	budget   int64
	resident int64

	chunkEls   map[chunkKey]*list.Element
	exploreEls map[exploreKey]*list.Element
	ll         *list.List // front = most recently used, both entry kinds

	hits      int64
	misses    int64
	evictions int64
	chunks    int
	explores  int
}

// NewSampleIndex returns an empty index with the given memory budget in
// bytes (0 selects DefaultIndexBytes).
func NewSampleIndex(budgetBytes int64) *SampleIndex {
	if budgetBytes <= 0 {
		budgetBytes = DefaultIndexBytes
	}
	return &SampleIndex{
		budget:     budgetBytes,
		chunkEls:   make(map[chunkKey]*list.Element),
		exploreEls: make(map[exploreKey]*list.Element),
		ll:         list.New(),
	}
}

// Stats returns a snapshot of the index gauges.
func (ix *SampleIndex) Stats() IndexStats {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return IndexStats{
		Hits:          ix.hits,
		Misses:        ix.misses,
		Evictions:     ix.evictions,
		Chunks:        ix.chunks,
		Explores:      ix.explores,
		ResidentBytes: ix.resident,
		BudgetBytes:   ix.budget,
	}
}

// Reset empties the index and clears its (graph, c, seed) binding, so the
// next Batch that uses it rebinds fresh. For callers that keep one index
// while swapping graphs outside a Service (which builds a fresh index per
// epoch instead): without a Reset, a mismatched index pins the old graph
// and its resident entries for its lifetime while serving nothing.
func (ix *SampleIndex) Reset() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.resetLocked()
}

// bind pins the index to (g, c, seed) on first use and reports whether the
// caller's triple matches the binding. A mismatch means the caller must
// bypass the index: its chunk streams would not be the cached ones (call
// Reset to repurpose an index for a new binding).
//
// An index restored from a spill is bound to a graph *checksum* rather
// than a pointer; the first caller whose graph hashes to it (and whose
// c and seed match) adopts the binding, after which the cheap pointer
// comparison resumes. Checksum hashing is O(m) but cached on the graph,
// so the adoption costs one pass, once.
func (ix *SampleIndex) bind(g *graph.Graph, c float64, seed uint64) bool {
	ix.mu.Lock()
	if !ix.bound {
		ix.bound, ix.g, ix.c, ix.seed = true, g, c, seed
		ix.mu.Unlock()
		return true
	}
	if ix.g == nil && ix.restoredSum != 0 {
		if ix.c != c || ix.seed != seed {
			ix.mu.Unlock()
			return false
		}
		want := ix.restoredSum
		ix.mu.Unlock()
		sum := g.Checksum() // may hash O(m) bytes; never under ix.mu
		ix.mu.Lock()
		// Recheck: a concurrent bind may have adopted (or Reset) meanwhile.
		if ix.bound && ix.g == nil && ix.restoredSum == want && sum == want {
			ix.g = g
		}
		ok := ix.bound && ix.g == g && ix.c == c && ix.seed == seed
		ix.mu.Unlock()
		return ok
	}
	ok := ix.g == g && ix.c == c && ix.seed == seed
	ix.mu.Unlock()
	return ok
}

// chunkMeets returns the cached meet count for one chunk.
func (ix *SampleIndex) chunkMeets(k chunkKey) (int64, bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	el, ok := ix.chunkEls[k]
	if !ok {
		ix.misses++
		return 0, false
	}
	ix.hits++
	ix.ll.MoveToFront(el)
	return el.Value.(*indexEntry).meets, true
}

// putChunk stores one completed chunk's meet count. Concurrent queries can
// race to fill the same key; both compute the identical value (the stream
// is seed-determined), so last-write-wins is harmless.
func (ix *SampleIndex) putChunk(k chunkKey, meets int64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if el, ok := ix.chunkEls[k]; ok {
		ix.ll.MoveToFront(el)
		el.Value.(*indexEntry).meets = meets
		return
	}
	ix.chunkEls[k] = ix.ll.PushFront(&indexEntry{ck: k, meets: meets})
	ix.chunks++
	ix.resident += chunkEntryBytes
	ix.evictLocked()
}

// exploreResult returns the cached exploration output for one key.
func (ix *SampleIndex) exploreResult(k exploreKey) (exploreVal, bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	el, ok := ix.exploreEls[k]
	if !ok {
		ix.misses++
		return exploreVal{}, false
	}
	ix.hits++
	ix.ll.MoveToFront(el)
	return el.Value.(*indexEntry).ev, true
}

// putExplore stores one completed exploration result.
func (ix *SampleIndex) putExplore(k exploreKey, v exploreVal) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if el, ok := ix.exploreEls[k]; ok {
		ix.ll.MoveToFront(el)
		el.Value.(*indexEntry).ev = v
		return
	}
	ix.exploreEls[k] = ix.ll.PushFront(&indexEntry{isExplore: true, ek: k, ev: v})
	ix.explores++
	ix.resident += exploreEntryBytes
	ix.evictLocked()
}

// evictLocked drops least-recently-used entries until the budget holds.
// Eviction cannot perturb results — a re-sampled chunk reproduces the
// evicted integer bit for bit — it only costs the walking time again.
func (ix *SampleIndex) evictLocked() {
	for ix.resident > ix.budget && ix.ll.Len() > 0 {
		oldest := ix.ll.Back()
		ix.ll.Remove(oldest)
		e := oldest.Value.(*indexEntry)
		if e.isExplore {
			delete(ix.exploreEls, e.ek)
			ix.explores--
			ix.resident -= exploreEntryBytes
		} else {
			delete(ix.chunkEls, e.ck)
			ix.chunks--
			ix.resident -= chunkEntryBytes
		}
		ix.evictions++
	}
}
