package diag

import (
	"bytes"
	"testing"

	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/graph"
)

// warmIndex builds an index and fills it through a real Batch run.
func warmIndex(t *testing.T, g *graph.Graph, seed uint64, budget int64) *SampleIndex {
	t.Helper()
	ix := NewSampleIndex(budget)
	reqs := make([]Request, 0, g.N())
	for v := 0; v < g.N(); v++ {
		reqs = append(reqs, Request{Node: graph.NodeID(v), Samples: 3000})
	}
	Batch(g, reqs, Options{C: 0.6, Improved: true, Workers: 2, Seed: seed, Index: ix})
	if st := ix.Stats(); st.Chunks == 0 || st.Explores == 0 {
		t.Fatalf("warm index is empty: %+v", st)
	}
	return ix
}

func spillBytes(t *testing.T, ix *SampleIndex) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	if n != ix.SpillSize() {
		t.Fatalf("SpillSize %d != written %d", ix.SpillSize(), n)
	}
	return buf.Bytes()
}

// TestSpillRoundTripBitEquality proves the core guarantee: a Batch over
// a restored index answers bit-identically to the writer — every cached
// chunk and exploration is served, none resampled.
func TestSpillRoundTripBitEquality(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 7)
	const seed = 42
	ix := warmIndex(t, g, seed, 0)
	want := ix.Stats()
	data := spillBytes(t, ix)

	reqs := make([]Request, 0, g.N())
	for v := 0; v < g.N(); v++ {
		reqs = append(reqs, Request{Node: graph.NodeID(v), Samples: 3000})
	}
	ref := Batch(g, reqs, Options{C: 0.6, Improved: true, Workers: 2, Seed: seed, Index: ix})

	ix2 := NewSampleIndex(0)
	if n, err := ix2.ReadFrom(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	} else if n != int64(len(data)) {
		t.Fatalf("ReadFrom consumed %d of %d bytes", n, len(data))
	}
	st := ix2.Stats()
	if st.Chunks != want.Chunks || st.Explores != want.Explores || st.ResidentBytes != want.ResidentBytes {
		t.Fatalf("restored index shape %+v != writer %+v", st, want)
	}
	got := Batch(g, reqs, Options{C: 0.6, Improved: true, Workers: 4, Seed: seed, Index: ix2})
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("restored batch diverges at node %d: %v vs %v", i, got[i], ref[i])
		}
	}
	// And every lookup must have been a hit: the restored index carries
	// everything the writer's did.
	st = ix2.Stats()
	if st.Misses != 0 {
		t.Fatalf("restored index missed %d lookups (hits %d)", st.Misses, st.Hits)
	}
}

func TestSpillRejectsMismatchedGraph(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 7)
	other := gen.BarabasiAlbert(200, 3, 8)
	const seed = 9
	data := spillBytes(t, warmIndex(t, g, seed, 0))

	ix := NewSampleIndex(0)
	if _, err := ix.ReadFrom(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if err := ix.BindRestored(other); err == nil {
		t.Fatal("BindRestored accepted a different graph")
	}
	// The lazy path must bypass (cold), not serve wrong-graph chunks.
	if ix.bind(other, 0.6, seed) {
		t.Fatal("bind adopted a mismatched graph")
	}
	// Wrong seed or decay against the right graph must bypass too.
	if ix.bind(g, 0.6, seed+1) {
		t.Fatal("bind adopted a mismatched seed")
	}
	if ix.bind(g, 0.8, seed) {
		t.Fatal("bind adopted a mismatched decay")
	}
	// The right triple adopts — even after the failed attempts.
	if !ix.bind(g, 0.6, seed) {
		t.Fatal("bind refused the matching graph")
	}
	if err := ix.BindRestored(g); err == nil {
		t.Fatal("BindRestored succeeded twice (already adopted)")
	}
}

func TestSpillBindRestoredAdopts(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 3)
	const seed = 5
	data := spillBytes(t, warmIndex(t, g, seed, 0))
	ix := NewSampleIndex(0)
	if _, err := ix.ReadFrom(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if sum, ok := ix.RestoredChecksum(); !ok || sum != g.Checksum() {
		t.Fatalf("RestoredChecksum = %#x, %v; want %#x, true", sum, ok, g.Checksum())
	}
	if err := ix.BindRestored(g); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.RestoredChecksum(); ok {
		t.Fatal("RestoredChecksum still pending after adoption")
	}
	if !ix.bind(g, 0.6, seed) {
		t.Fatal("bind refused adopted graph")
	}
}

// TestSpillHonorsDestinationBudget restores a big spill into a small
// index: the most recently used entries must survive, the tail evict.
func TestSpillHonorsDestinationBudget(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 11)
	src := warmIndex(t, g, 13, 0)
	data := spillBytes(t, src)
	full := src.Stats()

	budget := full.ResidentBytes / 3
	ix := NewSampleIndex(budget)
	if _, err := ix.ReadFrom(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.ResidentBytes > budget {
		t.Fatalf("restored index resident %d exceeds budget %d", st.ResidentBytes, budget)
	}
	if st.Chunks+st.Explores == 0 {
		t.Fatal("budgeted restore kept nothing")
	}
	if st.Chunks+st.Explores >= full.Chunks+full.Explores {
		t.Fatal("budgeted restore evicted nothing despite a third of the budget")
	}
	if st.Evictions != 0 {
		t.Fatalf("restore reported %d evictions; capacity shaping should not count", st.Evictions)
	}
	// The survivors must be the most recently used: the writer's MRU
	// entry is the front of its list; spill order is LRU-first, so the
	// destination's front equals the writer's front.
	srcFront := src.ll.Front().Value.(*indexEntry)
	dstFront := ix.ll.Front().Value.(*indexEntry)
	if srcFront.isExplore != dstFront.isExplore || srcFront.ck != dstFront.ck || srcFront.ek != dstFront.ek {
		t.Fatal("restored MRU entry differs from writer MRU entry")
	}
}

func TestSpillRejectsDamage(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 2)
	data := spillBytes(t, warmIndex(t, g, 1, 0))

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"magic", func(d []byte) []byte { d[0] ^= 0xff; return d }},
		{"version", func(d []byte) []byte { d[4] ^= 0x02; return d }},
		{"entry bit flip", func(d []byte) []byte { d[spillHeaderSize+5] ^= 0x10; return d }},
		{"truncated entries", func(d []byte) []byte { return d[:spillHeaderSize+7] }},
		{"truncated checksum", func(d []byte) []byte { return d[:len(d)-3] }},
		{"checksum flip", func(d []byte) []byte { d[len(d)-1] ^= 0x01; return d }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ix := NewSampleIndex(0)
			if _, err := ix.ReadFrom(bytes.NewReader(tc.mutate(append([]byte(nil), data...)))); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			// A failed restore must leave the index fresh and usable.
			st := ix.Stats()
			if st.Chunks != 0 || st.Explores != 0 || st.ResidentBytes != 0 {
				t.Fatalf("failed restore left residue: %+v", st)
			}
			if ix.bound {
				t.Fatal("failed restore left a binding")
			}
		})
	}
}

func TestSpillRefusesNonFreshIndex(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 2)
	data := spillBytes(t, warmIndex(t, g, 1, 0))
	used := warmIndex(t, g, 1, 0)
	if _, err := used.ReadFrom(bytes.NewReader(data)); err == nil {
		t.Fatal("ReadFrom merged into a live index")
	}
	// After Reset it is fresh again and must accept.
	used.Reset()
	if _, err := used.ReadFrom(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
}

func TestSpillEmptyUnboundIndex(t *testing.T) {
	ix := NewSampleIndex(0)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := ReadSpillInfo(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if info.Bound || info.Chunks != 0 || info.Explores != 0 {
		t.Fatalf("empty spill info = %+v", info)
	}
	ix2 := NewSampleIndex(0)
	if _, err := ix2.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if ix2.bound {
		t.Fatal("restore of an unbound spill produced a binding")
	}
}

func TestReadSpillInfo(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 4)
	const seed = 17
	ix := warmIndex(t, g, seed, 0)
	st := ix.Stats()
	info, err := ReadSpillInfo(bytes.NewReader(spillBytes(t, ix)))
	if err != nil {
		t.Fatal(err)
	}
	if !info.Bound || info.Seed != seed || info.C != 0.6 {
		t.Fatalf("spill info binding = %+v", info)
	}
	if info.GraphChecksum != g.Checksum() {
		t.Fatalf("spill info checksum %#x != graph %#x", info.GraphChecksum, g.Checksum())
	}
	if info.Chunks != st.Chunks || info.Explores != st.Explores {
		t.Fatalf("spill info counts %d/%d != stats %d/%d", info.Chunks, info.Explores, st.Chunks, st.Explores)
	}
}
