package diag

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/store"
)

// Spill format: the on-disk image of a SampleIndex, written into a
// snapshot container's diag section (or anywhere else — the stream is
// self-delimiting and self-checksummed). All integers little-endian:
//
//	u32 magic "DSPL" | u16 version | u16 flags(bit0 = bound)
//	u64 graph checksum | u64 c bits | u64 seed | u64 writer budget
//	u64 entry count
//	entries, least-recently-used first:
//	  u8 kind 0 (chunk):   i32 node | i32 lk | i32 chunk | i32 size | i64 meets
//	  u8 kind 1 (explore): i32 node | i32 depth | i64 edge budget |
//	                       i64 reached level | u64 zSum bits
//	u64 crc64 of everything above
//
// The binding triple (graph checksum, c, seed) is what makes restoring
// safe: a chunk's meet count is only meaningful for the exact RNG
// stream (seed), decay (c) and graph that produced it, so a restored
// index refuses to serve until the host graph hashes to the recorded
// checksum — a mismatched restore degrades to a cold index (or a hard
// error via BindRestored), never to silently wrong similarity scores.

const (
	spillMagic   = uint32(0x4c505344) // "DSPL"
	spillVersion = uint16(1)

	spillFlagBound = uint16(1)

	spillHeaderSize  = 48
	spillChunkSize   = 1 + 4*4 + 8
	spillExploreSize = 1 + 4 + 4 + 8 + 8 + 8
)

// SpillInfo summarizes a spill stream without restoring it — the
// inspection half of the snapshot tooling.
type SpillInfo struct {
	// Bound reports whether the writing index had a binding (an unbound
	// index is necessarily empty).
	Bound bool
	// GraphChecksum, C, Seed are the binding triple a restore must match.
	GraphChecksum uint64
	C             float64
	Seed          uint64
	// BudgetBytes is the writing index's eviction budget (informational;
	// the restoring index keeps its own).
	BudgetBytes int64
	// Chunks and Explores count the spilled entries by kind.
	Chunks   int
	Explores int
}

// WriteTo serializes the index — binding and entries, least recently
// used first — implementing io.WriterTo. The entries are marshalled
// under the index lock into one buffer, then written outside it, so a
// slow destination never stalls concurrent queries. Spilling is a pure
// read: the index keeps serving, and the spill is a consistent
// point-in-time image.
func (ix *SampleIndex) WriteTo(w io.Writer) (int64, error) {
	// Hash the graph identity before taking ix.mu: Checksum may cost an
	// O(m) pass the first time (cached after), and holding the index
	// lock through it would stall every concurrent query.
	ix.mu.Lock()
	g := ix.g
	ix.mu.Unlock()
	var gsum uint64
	if g != nil {
		gsum = g.Checksum()
	}
	buf := ix.marshal(g, gsum)
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], store.CRC64(buf))
	buf = append(buf, tail[:]...)
	n, err := w.Write(buf)
	return int64(n), err
}

// SpillSize returns the exact byte length WriteTo would produce right
// now (callers declaring container section lengths want it; a
// concurrent mutation between SpillSize and WriteTo changes the answer,
// so snapshotting callers buffer the spill instead).
func (ix *SampleIndex) SpillSize() int64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return int64(spillHeaderSize) + int64(ix.chunks)*spillChunkSize +
		int64(ix.explores)*spillExploreSize + 8
}

// marshal renders header + entries (no trailing CRC) under the lock.
// (hintG, gsumHint) carry the checksum the caller pre-computed outside
// the lock for the graph it saw bound; the hint applies only while that
// same graph is still bound. In the rare races (adoption or Reset
// in between) the in-lock Checksum call is O(1-ish): adoption just
// computed and cached it.
func (ix *SampleIndex) marshal(hintG *graph.Graph, gsumHint uint64) []byte {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	buf := make([]byte, spillHeaderSize,
		int(spillHeaderSize)+ix.chunks*spillChunkSize+ix.explores*spillExploreSize)
	binary.LittleEndian.PutUint32(buf[0:], spillMagic)
	binary.LittleEndian.PutUint16(buf[4:], spillVersion)
	var flags uint16
	var gsum uint64
	if ix.bound {
		flags |= spillFlagBound
		switch {
		case ix.g != nil && ix.g == hintG:
			gsum = gsumHint
		case ix.g != nil:
			gsum = ix.g.Checksum()
		default:
			gsum = ix.restoredSum // restored but never re-adopted: pass the binding through
		}
	}
	binary.LittleEndian.PutUint16(buf[6:], flags)
	binary.LittleEndian.PutUint64(buf[8:], gsum)
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(ix.c))
	binary.LittleEndian.PutUint64(buf[24:], ix.seed)
	binary.LittleEndian.PutUint64(buf[32:], uint64(ix.budget))
	binary.LittleEndian.PutUint64(buf[40:], uint64(ix.ll.Len()))
	var rec [spillExploreSize]byte
	for el := ix.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*indexEntry)
		if e.isExplore {
			rec[0] = 1
			binary.LittleEndian.PutUint32(rec[1:], uint32(e.ek.node))
			binary.LittleEndian.PutUint32(rec[5:], uint32(e.ek.depth))
			binary.LittleEndian.PutUint64(rec[9:], uint64(e.ek.budget))
			binary.LittleEndian.PutUint64(rec[17:], uint64(e.ev.lk))
			binary.LittleEndian.PutUint64(rec[25:], math.Float64bits(e.ev.zSum))
			buf = append(buf, rec[:spillExploreSize]...)
		} else {
			rec[0] = 0
			binary.LittleEndian.PutUint32(rec[1:], uint32(e.ck.node))
			binary.LittleEndian.PutUint32(rec[5:], uint32(e.ck.lk))
			binary.LittleEndian.PutUint32(rec[9:], uint32(e.ck.chunk))
			binary.LittleEndian.PutUint32(rec[13:], uint32(e.ck.size))
			binary.LittleEndian.PutUint64(rec[17:], uint64(e.meets))
			buf = append(buf, rec[:spillChunkSize]...)
		}
	}
	return buf
}

// ReadFrom restores a spill into this index, implementing
// io.ReaderFrom. The index must be fresh (empty and unbound) — restores
// never merge. Entries are inserted in spilled order (least recently
// used first) so the destination reproduces the writer's LRU order; the
// destination's own byte budget applies, evicting the least-recent
// spilled entries when the writer's index was bigger than this one's
// budget allows.
//
// A restored index is bound to the spill's (graph checksum, c, seed)
// but holds no graph yet: the first Batch that uses it (or an explicit
// BindRestored) must present a graph hashing to the recorded checksum,
// or the index bypasses — cold, not wrong.
func (ix *SampleIndex) ReadFrom(r io.Reader) (int64, error) {
	var hdr [spillHeaderSize]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		return int64(n), fmt.Errorf("diag: reading spill header: %w", err)
	}
	read := int64(n)
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != spillMagic {
		return read, fmt.Errorf("diag: bad spill magic %#x", m)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != spillVersion {
		return read, fmt.Errorf("diag: unsupported spill version %d (this build reads version %d)", v, spillVersion)
	}
	flags := binary.LittleEndian.Uint16(hdr[6:])
	gsum := binary.LittleEndian.Uint64(hdr[8:])
	c := math.Float64frombits(binary.LittleEndian.Uint64(hdr[16:]))
	seed := binary.LittleEndian.Uint64(hdr[24:])
	count := binary.LittleEndian.Uint64(hdr[40:])
	if count > 1<<32 {
		return read, fmt.Errorf("diag: implausible spill entry count %d", count)
	}
	crc := store.NewCRC64()
	crc.Write(hdr[:])

	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.bound || ix.ll.Len() > 0 {
		return read, fmt.Errorf("diag: ReadFrom requires a fresh index (this one is %s)",
			map[bool]string{true: "already bound", false: "non-empty"}[ix.bound])
	}

	var rec [spillExploreSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(r, rec[:1]); err != nil {
			ix.resetLocked()
			return read, fmt.Errorf("diag: spill truncated at entry %d/%d: %w", i+1, count, err)
		}
		read++
		crc.Write(rec[:1])
		switch rec[0] {
		case 0:
			m, err := io.ReadFull(r, rec[1:spillChunkSize])
			read += int64(m)
			if err != nil {
				ix.resetLocked()
				return read, fmt.Errorf("diag: spill truncated in chunk entry %d/%d: %w", i+1, count, err)
			}
			crc.Write(rec[1:spillChunkSize])
			k := chunkKey{
				node:  graph.NodeID(binary.LittleEndian.Uint32(rec[1:])),
				lk:    int32(binary.LittleEndian.Uint32(rec[5:])),
				chunk: int32(binary.LittleEndian.Uint32(rec[9:])),
				size:  int32(binary.LittleEndian.Uint32(rec[13:])),
			}
			if _, dup := ix.chunkEls[k]; dup {
				ix.resetLocked()
				return read, fmt.Errorf("diag: spill repeats chunk entry %+v", k)
			}
			ix.chunkEls[k] = ix.ll.PushFront(&indexEntry{
				ck: k, meets: int64(binary.LittleEndian.Uint64(rec[17:])),
			})
			ix.chunks++
			ix.resident += chunkEntryBytes
		case 1:
			m, err := io.ReadFull(r, rec[1:spillExploreSize])
			read += int64(m)
			if err != nil {
				ix.resetLocked()
				return read, fmt.Errorf("diag: spill truncated in explore entry %d/%d: %w", i+1, count, err)
			}
			crc.Write(rec[1:spillExploreSize])
			k := exploreKey{
				node:   graph.NodeID(binary.LittleEndian.Uint32(rec[1:])),
				depth:  int32(binary.LittleEndian.Uint32(rec[5:])),
				budget: int64(binary.LittleEndian.Uint64(rec[9:])),
			}
			if _, dup := ix.exploreEls[k]; dup {
				ix.resetLocked()
				return read, fmt.Errorf("diag: spill repeats explore entry %+v", k)
			}
			ix.exploreEls[k] = ix.ll.PushFront(&indexEntry{
				isExplore: true, ek: k,
				ev: exploreVal{
					lk:   int(int64(binary.LittleEndian.Uint64(rec[17:]))),
					zSum: math.Float64frombits(binary.LittleEndian.Uint64(rec[25:])),
				},
			})
			ix.explores++
			ix.resident += exploreEntryBytes
		default:
			ix.resetLocked()
			return read, fmt.Errorf("diag: unknown spill entry kind %d", rec[0])
		}
		// The destination budget governs, entry by entry: inserting
		// oldest-first and evicting from the LRU tail keeps exactly the
		// most recently used spilled entries that fit.
		ix.evictLocked()
	}
	var tail [8]byte
	m, err := io.ReadFull(r, tail[:])
	read += int64(m)
	if err != nil {
		ix.resetLocked()
		return read, fmt.Errorf("diag: spill missing checksum trailer: %w", err)
	}
	if got, want := crc.Sum64(), binary.LittleEndian.Uint64(tail[:]); got != want {
		ix.resetLocked()
		return read, fmt.Errorf("diag: spill checksum mismatch: stream says %#x, content hashes to %#x", want, got)
	}
	// Evictions during a restore are capacity shaping, not cache churn:
	// start the gauge clean.
	ix.evictions = 0
	if flags&spillFlagBound != 0 {
		ix.bound = true
		ix.g = nil
		ix.c = c
		ix.seed = seed
		ix.restoredSum = gsum
	}
	return read, nil
}

// resetLocked is Reset for callers already holding ix.mu.
func (ix *SampleIndex) resetLocked() {
	ix.bound, ix.g, ix.c, ix.seed, ix.restoredSum = false, nil, 0, 0, 0
	clear(ix.chunkEls)
	clear(ix.exploreEls)
	ix.ll.Init()
	ix.resident, ix.chunks, ix.explores = 0, 0, 0
}

// BindRestored adopts g as the graph of a restored index, verifying
// that it hashes to the checksum the spill was bound to. It is the
// fail-fast alternative to the lazy adoption in bind(): a snapshot
// loader calls it to reject a graph/index mismatch at restore time
// instead of serving cold forever.
func (ix *SampleIndex) BindRestored(g *graph.Graph) error {
	sum := g.Checksum() // outside ix.mu: may hash O(m) bytes
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ix.bound || ix.g != nil || ix.restoredSum == 0 {
		return fmt.Errorf("diag: BindRestored on an index that was not restored from a spill")
	}
	if sum != ix.restoredSum {
		return fmt.Errorf("diag: restored index is bound to graph %#x, got graph %#x (the graph changed since the spill was written)",
			ix.restoredSum, sum)
	}
	ix.g = g
	return nil
}

// RestoredChecksum returns the graph checksum a restored-but-unadopted
// index is waiting for (ok=false once adopted, or if never restored).
func (ix *SampleIndex) RestoredChecksum() (sum uint64, ok bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.bound && ix.g == nil && ix.restoredSum != 0 {
		return ix.restoredSum, true
	}
	return 0, false
}

// ReadSpillInfo parses a spill stream's header and counts its entries
// without building an index — cmd/snapshot's inspect path.
func ReadSpillInfo(r io.Reader) (SpillInfo, error) {
	var hdr [spillHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return SpillInfo{}, fmt.Errorf("diag: reading spill header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != spillMagic {
		return SpillInfo{}, fmt.Errorf("diag: bad spill magic %#x", m)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != spillVersion {
		return SpillInfo{}, fmt.Errorf("diag: unsupported spill version %d", v)
	}
	info := SpillInfo{
		Bound:         binary.LittleEndian.Uint16(hdr[6:])&spillFlagBound != 0,
		GraphChecksum: binary.LittleEndian.Uint64(hdr[8:]),
		C:             math.Float64frombits(binary.LittleEndian.Uint64(hdr[16:])),
		Seed:          binary.LittleEndian.Uint64(hdr[24:]),
		BudgetBytes:   int64(binary.LittleEndian.Uint64(hdr[32:])),
	}
	count := binary.LittleEndian.Uint64(hdr[40:])
	var kind [1]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(r, kind[:]); err != nil {
			return info, fmt.Errorf("diag: spill truncated at entry %d/%d: %w", i+1, count, err)
		}
		var skip int64
		switch kind[0] {
		case 0:
			info.Chunks++
			skip = spillChunkSize - 1
		case 1:
			info.Explores++
			skip = spillExploreSize - 1
		default:
			return info, fmt.Errorf("diag: unknown spill entry kind %d", kind[0])
		}
		if _, err := io.CopyN(io.Discard, r, skip); err != nil {
			return info, fmt.Errorf("diag: spill truncated in entry %d/%d: %w", i+1, count, err)
		}
	}
	return info, nil
}
