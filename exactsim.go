// Package exactsim is a Go implementation of ExactSim — "Exact
// Single-Source SimRank Computation on Large Graphs" (Wang, Wei, Yuan, Du,
// Wen; SIGMOD 2020) — together with every baseline and evaluation tool the
// paper's experimental study uses.
//
// SimRank (Jeh & Widom 2002) scores the structural similarity of two nodes
// by the recursive intuition that "two pages are similar if they are
// referenced by similar pages". ExactSim is the first algorithm that
// answers single-source SimRank queries on large graphs with an additive
// error of ε = 10⁻⁷ — float-precision ground truth — with high
// probability, in O(log n/ε² + m·log(1/ε)) time.
//
// # Quick start
//
//	g, _ := exactsim.GenerateDataset("GQ", 1.0) // or LoadEdgeList(...)
//	q, _ := exactsim.NewQuerier("exactsim", g, exactsim.WithEpsilon(1e-6))
//	res, _ := q.SingleSource(ctx, 42)   // res.Scores[j] = S(42, j) ± ε
//	top, _, _ := q.TopK(ctx, 42, 10)    // ten most similar nodes
//
// NewQuerier accepts any name in Algorithms() — ExactSim, its Basic
// ablation variant, and the six baselines all answer through the same
// Querier interface with context-based cancellation. For concurrent
// multi-user traffic, wrap the graph in a Service (worker pool, per-query
// deadlines, epoch-keyed LRU result cache, batching, live graph updates
// via Update/ServeDynamic):
//
//	svc, _ := exactsim.NewService(g, exactsim.ServiceOptions{})
//	defer svc.Close()
//	resp := svc.Query(ctx, exactsim.Request{Source: 42, K: 10})
//
// Request/Response form a serializable protocol (structured error codes,
// graph epochs) with an HTTP transport in the httpapi package and a
// serving daemon in cmd/exactsimd; httpapi.Client implements this same
// Querier interface against a remote server. See DESIGN.md §6. A warm
// service persists its state — graph plus diagonal sample index — as a
// checksummed snapshot container (Service.Snapshot/SaveSnapshot) that
// OpenSnapshot restores in milliseconds with the graph mmap'd zero-copy;
// see DESIGN.md §8.
//
// The legacy engine-per-algorithm constructors (New, BuildMCIndex, ...)
// remain for direct access to algorithm-specific records.
//
// # Packages
//
// The root package is a facade over the internal implementation:
// internal/algo defines the unified Querier interface and registry,
// internal/core holds the ExactSim algorithm, internal/{mc, parsim,
// lineariz, prsim, probesim, powermethod} the baselines, internal/eval
// the paper's metrics and pooling protocol, internal/dataset the Table-2
// dataset stand-ins, and internal/harness the per-figure experiment
// drivers (see cmd/experiments and DESIGN.md).
package exactsim

import (
	"context"
	"io"

	"github.com/exactsim/exactsim/internal/algo"
	"github.com/exactsim/exactsim/internal/core"
	"github.com/exactsim/exactsim/internal/dataset"
	"github.com/exactsim/exactsim/internal/diag"
	"github.com/exactsim/exactsim/internal/eval"
	"github.com/exactsim/exactsim/internal/gen"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/lineariz"
	"github.com/exactsim/exactsim/internal/mc"
	"github.com/exactsim/exactsim/internal/parsim"
	"github.com/exactsim/exactsim/internal/powermethod"
	"github.com/exactsim/exactsim/internal/probesim"
	"github.com/exactsim/exactsim/internal/prsim"
	"github.com/exactsim/exactsim/internal/sparse"
)

// Core graph types.
type (
	// Graph is the immutable CSR directed graph all algorithms run on.
	Graph = graph.Graph
	// GraphBuilder accumulates edges and freezes them into a Graph.
	GraphBuilder = graph.Builder
	// DynamicGraph supports edge updates with cheap CSR snapshots; the
	// index-free methods (ExactSim, ParSim, ProbeSim) answer exactly on
	// every snapshot with no index maintenance.
	DynamicGraph = graph.DynamicGraph
	// NodeID identifies a vertex (dense 0-based int32 ids).
	NodeID = graph.NodeID
	// GraphStats summarizes degree structure.
	GraphStats = graph.Stats
	// Entry pairs a node with a similarity score (top-k results).
	Entry = sparse.Entry
)

// Unified query API (internal/algo). Every algorithm in Algorithms() is
// constructible through NewQuerier and answers through the same two
// context-aware methods; see DESIGN.md §2.
type (
	// Querier is the unified single-source SimRank interface implemented
	// by every registered algorithm. Safe for concurrent use.
	Querier = algo.Querier
	// QueryResult is the uniform single-source answer (scores + costs).
	QueryResult = algo.Result
	// QuerierIndex is the optional interface of index-based queriers
	// (preprocessing time and index footprint).
	QuerierIndex = algo.Index
	// QuerierOption customizes NewQuerier (see the With... constructors).
	QuerierOption = algo.Option
	// DiagSampleIndex is a shared cache of ExactSim's diagonal-phase
	// sample chunks and exploration results; attach one with
	// WithDiagIndex to amortize the Diagonal phase across queries
	// (a Service does this automatically, one index per graph epoch).
	DiagSampleIndex = diag.SampleIndex
	// DiagIndexStats is a DiagSampleIndex gauge snapshot.
	DiagIndexStats = diag.IndexStats
)

// Algorithms returns the registry names accepted by NewQuerier: exactsim,
// exactsim-basic, linearization, mc, parsim, powermethod, probesim, prsim.
func Algorithms() []string { return algo.Names() }

// KnownAlgorithm reports whether name is a registered algorithm (O(1)).
func KnownAlgorithm(name string) bool { return algo.Known(name) }

// NewQuerier constructs the named algorithm over g with per-algorithm
// functional options. Index-based algorithms (mc, linearization, prsim,
// powermethod) pay their preprocessing here.
func NewQuerier(name string, g *Graph, opts ...QuerierOption) (Querier, error) {
	return algo.New(name, g, opts...)
}

// NewQuerierCtx is NewQuerier with the index build bounded by ctx.
func NewQuerierCtx(ctx context.Context, name string, g *Graph, opts ...QuerierOption) (Querier, error) {
	return algo.NewCtx(ctx, name, g, opts...)
}

// Querier options, re-exported from internal/algo as wrapper functions
// (not package vars, which would be mutable by importers).

// WithC sets the SimRank decay factor (paper: 0.6).
func WithC(c float64) QuerierOption { return algo.WithC(c) }

// WithEpsilon sets the additive error target for error-driven methods.
func WithEpsilon(eps float64) QuerierOption { return algo.WithEpsilon(eps) }

// WithSeed fixes every random choice deterministically.
func WithSeed(seed uint64) QuerierOption { return algo.WithSeed(seed) }

// WithWorkers bounds parallelism inside one query or index build.
func WithWorkers(w int) QuerierOption { return algo.WithWorkers(w) }

// WithSampleFactor scales the sampling methods' sample counts.
func WithSampleFactor(f float64) QuerierOption { return algo.WithSampleFactor(f) }

// WithIterations sets ParSim's / the power method's level count.
func WithIterations(l int) QuerierOption { return algo.WithIterations(l) }

// WithWalks sets MC's (walk length, walks per node).
func WithWalks(length, perNode int) QuerierOption { return algo.WithWalks(length, perNode) }

// WithHubCount sets PRSim's indexed-hub count.
func WithHubCount(h int) QuerierOption { return algo.WithHubCount(h) }

// WithPruneThreshold sets ProbeSim's probe-pruning threshold.
func WithPruneThreshold(t float64) QuerierOption { return algo.WithPruneThreshold(t) }

// WithSampleCaps caps ExactSim's per-node sampling/exploration work.
func WithSampleCaps(maxSamplesPerNode int, maxExploreEdges int64) QuerierOption {
	return algo.WithSampleCaps(maxSamplesPerNode, maxExploreEdges)
}

// WithoutPiSquaredSampling disables ExactSim's π²-allocation (ablation).
func WithoutPiSquaredSampling() QuerierOption { return algo.WithoutPiSquaredSampling() }

// WithoutLocalExploit disables ExactSim's Algorithm-3 phase (ablation).
func WithoutLocalExploit() QuerierOption { return algo.WithoutLocalExploit() }

// NewDiagSampleIndex returns an empty diagonal sample index with the given
// memory budget in bytes (0 selects the 128 MiB default).
func NewDiagSampleIndex(budgetBytes int64) *DiagSampleIndex {
	return diag.NewSampleIndex(budgetBytes)
}

// WithDiagIndex attaches a shared diagonal sample index to ExactSim
// queriers; every querier sharing the index must agree on graph, decay
// factor and seed (mismatches bypass it).
func WithDiagIndex(ix *DiagSampleIndex) QuerierOption { return algo.WithDiagIndex(ix) }

// ExactSim types.
type (
	// Options configures an ExactSim engine; see the field docs in
	// internal/core for the error/optimization knobs.
	Options = core.Options
	// Engine answers single-source and top-k SimRank queries.
	Engine = core.Engine
	// Result carries the score vector plus cost accounting.
	Result = core.Result
)

// Baseline types re-exported for head-to-head evaluation.
type (
	// MCParams configures the Monte-Carlo walk-index baseline.
	MCParams = mc.Params
	// MCIndex is the Fogaras–Rácz walk-fingerprint index.
	MCIndex = mc.Index
	// ParSimParams configures the D=(1−c)I iterative baseline.
	ParSimParams = parsim.Params
	// ParSimEngine answers ParSim queries.
	ParSimEngine = parsim.Engine
	// LinearizationParams configures the Linearization baseline.
	LinearizationParams = lineariz.Params
	// LinearizationIndex holds Linearization's estimated diagonal.
	LinearizationIndex = lineariz.Index
	// PRSimParams configures the PRSim hub-index baseline.
	PRSimParams = prsim.Params
	// PRSimIndex is PRSim's hub index.
	PRSimIndex = prsim.Index
	// ProbeSimParams configures the index-free ProbeSim baseline
	// (related work §2.1; an extension beyond the paper's figures).
	ProbeSimParams = probesim.Params
	// ProbeSimEngine answers ProbeSim queries.
	ProbeSimEngine = probesim.Engine
	// SimRankMatrix is a dense all-pairs matrix from the power method.
	SimRankMatrix = powermethod.Matrix
	// Dataset describes one Table-2 dataset stand-in.
	Dataset = dataset.Spec
	// PoolEntry and PoolResult belong to the §2 pooling protocol.
	PoolEntry = eval.PoolEntry
	// PoolResult reports pooled precision per algorithm.
	PoolResult = eval.PoolResult
)

// Re-exported constants.
const (
	// DefaultC is the paper's decay factor, 0.6.
	DefaultC = core.DefaultC
	// ExactEpsilon is ε_min = 10⁻⁷, the float-precision exactness target.
	ExactEpsilon = core.ExactEpsilon
)

// New builds an ExactSim engine for g.
func New(g *Graph, opt Options) (*Engine, error) { return core.New(g, opt) }

// NewGraphBuilder returns a builder for a graph with n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// NewDynamicGraph returns an empty dynamic graph with n nodes.
func NewDynamicGraph(n int) *DynamicGraph { return graph.NewDynamic(n) }

// DynamicFrom initializes a dynamic graph from an existing snapshot.
func DynamicFrom(g *Graph) *DynamicGraph { return graph.DynamicFrom(g) }

// LoadEdgeList reads a SNAP-style edge-list file.
func LoadEdgeList(path string, undirected bool) (*Graph, error) {
	return graph.LoadEdgeList(path, undirected)
}

// ReadEdgeList parses a SNAP-style edge list from a reader.
func ReadEdgeList(r io.Reader, undirected bool) (*Graph, error) {
	return graph.ReadEdgeList(r, undirected)
}

// WriteEdgeList emits g as a directed SNAP-style edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// SaveBinary / LoadBinary use the repository's binary graph format —
// a single-section snapshot container (see DESIGN.md §8). LoadBinary
// decodes into memory; OpenBinary (snapshot.go) mmaps zero-copy.
func SaveBinary(path string, g *Graph) error { return graph.SaveBinary(path, g) }

// LoadBinary reads a graph written by SaveBinary (or the legacy
// pre-container binary format).
func LoadBinary(path string) (*Graph, error) { return graph.LoadBinary(path) }

// GraphChecksum returns g's identity checksum — the CRC64 of its
// encoded CSR section, the value snapshot diag spills bind to.
func GraphChecksum(g *Graph) uint64 { return g.Checksum() }

// Stats computes degree statistics for g.
func Stats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// Datasets returns the Table-2 registry (all eight stand-ins).
func Datasets() []Dataset { return dataset.All() }

// GenerateDataset generates the stand-in for a Table-2 key ("GQ", "HT",
// "WV", "HP", "DB", "IC", "IT", "TW") at the given scale in (0,1].
func GenerateDataset(key string, scale float64) (*Graph, error) {
	spec, err := dataset.ByKey(key)
	if err != nil {
		return nil, err
	}
	return spec.Generate(scale), nil
}

// Generators for custom experiments.

// GenerateBarabasiAlbert builds an undirected preferential-attachment graph.
func GenerateBarabasiAlbert(n, k int, seed uint64) *Graph {
	return gen.BarabasiAlbert(n, k, seed)
}

// GenerateDirectedScaleFree builds a directed power-law graph.
func GenerateDirectedScaleFree(n, m int, seed uint64) *Graph {
	return gen.DirectedScaleFree(n, m, 0.15, 0.70, 0.15, 1.0, 1.0, seed)
}

// GenerateRMAT builds a web-crawl-like Kronecker graph with 2^scale nodes.
func GenerateRMAT(scale, m int, seed uint64) *Graph {
	return gen.RMAT(scale, m, 0.57, 0.19, 0.19, 0.05, seed)
}

// Baselines.

// BuildMCIndex preprocesses the Monte-Carlo walk index.
func BuildMCIndex(g *Graph, p MCParams) *MCIndex { return mc.Build(g, p) }

// NewParSim returns the D=(1−c)I iterative baseline.
func NewParSim(g *Graph, p ParSimParams) *ParSimEngine { return parsim.New(g, p) }

// BuildLinearization preprocesses the Linearization baseline (the
// O(n·log n/ε²) diagonal estimation the paper criticizes).
func BuildLinearization(g *Graph, p LinearizationParams) *LinearizationIndex {
	return lineariz.Build(g, p)
}

// BuildPRSim preprocesses the PRSim hub index.
func BuildPRSim(g *Graph, p PRSimParams) *PRSimIndex { return prsim.Build(g, p) }

// NewProbeSim returns the index-free ProbeSim baseline.
func NewProbeSim(g *Graph, p ProbeSimParams) *ProbeSimEngine { return probesim.New(g, p) }

// PowerMethod computes the exact all-pairs SimRank matrix (O(n²) memory —
// small graphs only). L ≤ 0 picks enough iterations for ~1e-9 residual.
func PowerMethod(g *Graph, c float64, L int) *SimRankMatrix {
	return powermethod.Compute(g, powermethod.Options{C: c, L: L})
}

// Evaluation metrics (paper §4).

// MaxError is max_j |got(j) − truth(j)|.
func MaxError(got, truth []float64) float64 { return eval.MaxError(got, truth) }

// AvgError is the mean absolute error.
func AvgError(got, truth []float64) float64 { return eval.AvgError(got, truth) }

// PrecisionAtK scores an approximate top-k against the true scores.
func PrecisionAtK(approx, truth []float64, k int, source NodeID) float64 {
	return eval.PrecisionAtK(approx, truth, k, source)
}

// NDCGAtK scores an approximate ranking by discounted cumulative gain.
func NDCGAtK(approx, truth []float64, k int, source NodeID) float64 {
	return eval.NDCGAtK(approx, truth, k, source)
}

// KendallTauAtK measures rank correlation over the true top-k set.
func KendallTauAtK(approx, truth []float64, k int, source NodeID) float64 {
	return eval.KendallTauAtK(approx, truth, k, source)
}

// TopKOf extracts the k best entries of a score vector, excluding source.
func TopKOf(scores []float64, k int, source NodeID) []Entry {
	return sparse.TopK(scores, k, source)
}

// Pool runs the paper's §2 pooling protocol over competing top-k results.
func Pool(g *Graph, c float64, source NodeID, k int, entries []PoolEntry,
	samples int, seed uint64) PoolResult {
	return eval.Pool(g, c, source, k, entries, samples, seed)
}
