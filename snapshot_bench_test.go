package exactsim_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	exactsim "github.com/exactsim/exactsim"
)

// The PR5 benchmark pair: how fast a process gets from "nothing in
// memory" to "graph served" (text parse vs binary mmap), and from
// "process start" to "first single-source answer" (cold vs
// snapshot-restored). The warm/cold ratios are the snapshot store's
// reason to exist; CI publishes them as BENCH_PR5.json.

const benchSnapSeed = 99

func benchSnapshotGraph() *exactsim.Graph {
	return exactsim.GenerateBarabasiAlbert(2000, 4, benchSnapSeed)
}

func benchSnapshotOptions() exactsim.ServiceOptions {
	return exactsim.ServiceOptions{
		CacheSize: -1, // measure computation, not the result LRU
		QuerierOptions: []exactsim.QuerierOption{
			exactsim.WithSeed(benchSnapSeed),
			exactsim.WithEpsilon(0.02),
		},
	}
}

// writeBenchFiles materializes the same graph as a text edge list and a
// binary container, returning both paths.
func writeBenchFiles(b *testing.B) (textPath, binPath string) {
	b.Helper()
	g := benchSnapshotGraph()
	dir := b.TempDir()
	textPath = filepath.Join(dir, "g.txt")
	f, err := os.Create(textPath)
	if err != nil {
		b.Fatal(err)
	}
	if err := exactsim.WriteEdgeList(f, g); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	binPath = filepath.Join(dir, "g.snap")
	if err := exactsim.SaveBinary(binPath, g); err != nil {
		b.Fatal(err)
	}
	return textPath, binPath
}

func BenchmarkGraphLoadText(b *testing.B) {
	textPath, _ := writeBenchFiles(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := exactsim.LoadEdgeList(textPath, false)
		if err != nil {
			b.Fatal(err)
		}
		if g.N() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkGraphLoadBinaryMmap(b *testing.B) {
	_, binPath := writeBenchFiles(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := exactsim.OpenBinary(binPath)
		if err != nil {
			b.Fatal(err)
		}
		if g.N() == 0 {
			b.Fatal("empty graph")
		}
		g.Close()
	}
}

// benchFirstQuery measures service construction + one single-source
// query — restart-to-first-answer latency — with start supplying the
// freshly started service each iteration.
func benchFirstQuery(b *testing.B, src exactsim.NodeID, start func() *exactsim.Service) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc := start()
		resp := svc.Query(context.Background(), exactsim.Request{Source: src})
		if resp.Err != nil {
			b.Fatal(resp.Err)
		}
		b.StopTimer()
		svc.Close()
		b.StartTimer()
	}
}

func BenchmarkFirstQueryColdStart(b *testing.B) {
	g := benchSnapshotGraph()
	benchFirstQuery(b, 1, func() *exactsim.Service {
		svc, err := exactsim.NewService(g, benchSnapshotOptions())
		if err != nil {
			b.Fatal(err)
		}
		return svc
	})
}

func BenchmarkFirstQuerySnapshotRestored(b *testing.B) {
	g := benchSnapshotGraph()
	writer, err := exactsim.NewService(g, benchSnapshotOptions())
	if err != nil {
		b.Fatal(err)
	}
	// Warm exactly the source the benchmark queries: the snapshot then
	// carries every diag chunk that query needs.
	if resp := writer.Query(context.Background(), exactsim.Request{Source: 1}); resp.Err != nil {
		b.Fatal(resp.Err)
	}
	path := filepath.Join(b.TempDir(), "warm.snap")
	if err := writer.SaveSnapshot(path); err != nil {
		b.Fatal(err)
	}
	writer.Close()

	benchFirstQuery(b, 1, func() *exactsim.Service {
		svc, err := exactsim.OpenSnapshot(path, benchSnapshotOptions())
		if err != nil {
			b.Fatal(err)
		}
		return svc
	})
}
