package exactsim

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// Wrapf must keep the local errors.Is/As chain intact while attaching a
// transport code, and must shed the cause (but not the code or message)
// at the serialization boundary — the exact contract errcode pushes the
// serving surface towards.
func TestWrapfChainAndSerialization(t *testing.T) {
	cause := context.DeadlineExceeded
	err := Wrapf(CodeDeadlineExceeded, cause, "fetching shard %d", 3)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("wrapped cause lost: errors.Is(err, DeadlineExceeded) = false")
	}
	var pe *Error
	if !errors.As(err, &pe) || pe.Code != CodeDeadlineExceeded {
		t.Errorf("errors.As: got %+v", pe)
	}
	if want := "fetching shard 3: context deadline exceeded"; pe.Message != want {
		t.Errorf("Message = %q, want %q", pe.Message, want)
	}

	// Round-trip through JSON: the code survives, the cause does not,
	// and code-based Is matching still holds on the far side.
	data, jerr := json.Marshal(err)
	if jerr != nil {
		t.Fatal(jerr)
	}
	var remote Error
	if jerr := json.Unmarshal(data, &remote); jerr != nil {
		t.Fatal(jerr)
	}
	if remote.Unwrap() != nil {
		t.Error("cause crossed the serialization boundary")
	}
	if !errors.Is(&remote, context.DeadlineExceeded) {
		t.Error("code-based Is matching lost after round-trip")
	}
	if remote.Message != pe.Message {
		t.Errorf("message lost: %q != %q", remote.Message, pe.Message)
	}
}

func TestWrapfNilCause(t *testing.T) {
	err := Wrapf(CodeInternal, nil, "no cause")
	if err.Message != "no cause" {
		t.Errorf("Message = %q", err.Message)
	}
	if err.Unwrap() != nil {
		t.Error("Unwrap() != nil for nil cause")
	}
}
