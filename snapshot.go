package exactsim

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/exactsim/exactsim/internal/diag"
	"github.com/exactsim/exactsim/internal/graph"
	"github.com/exactsim/exactsim/internal/store"
)

// Snapshots make the diagonal sample index durable: everything a warm
// serving process has paid for — the graph in instantly-loadable binary
// CSR form, plus the epoch's accumulated diag chunks and explorations —
// lands in one versioned, checksummed container (internal/store) that a
// restarting process (or a fresh fleet member) opens in milliseconds.
// The graph section is mmap'd and served zero-copy where the platform
// allows; the diag spill is bound to (graph checksum, c, seed), so a
// snapshot restored against the wrong graph is rejected rather than
// silently wrong. Queries on a restored service are bit-identical to
// queries on the process that wrote the snapshot: the graph bytes are
// identical, every algorithm is a deterministic function of
// (graph, seed, options), and cached diag entries are interchangeable
// bit-for-bit with recomputation (see internal/diag).

// Snapshot writes the service's current graph generation — graph plus
// diagonal sample index spill — as a snapshot container on w. It is a
// pure read: the service keeps serving, and the snapshot is a
// consistent point-in-time image of one epoch. Restore it with
// OpenSnapshot (or fetch it from a live daemon via /v1/snapshot).
func (s *Service) Snapshot(w io.Writer) error {
	return s.SnapshotTo(w, nil)
}

// SnapshotTo is Snapshot with a hook invoked with the epoch being
// written, after that generation is pinned but before its first byte
// goes out — transports use it to emit the epoch as a header on a
// stream they cannot buffer, guaranteed to label the generation
// actually streamed even when an Update races the call.
func (s *Service) SnapshotTo(w io.Writer, before func(epoch uint64)) error {
	// Register with the snapshot refcount before releasing closeMu:
	// Close releases a snapshot-opened service's mmap'd graph and must
	// not pull the mapping out from under a stream in progress. A
	// refcount — not holding the read lock across the write — keeps one
	// slow snapshot consumer from wedging the lock queue for everyone
	// else; Close waits on it only at the very end, just before the
	// munmap.
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return ToError(ErrServiceClosed)
	}
	s.snapshots.Add(1)
	s.closeMu.RUnlock()
	defer s.snapshots.Done()
	st := s.state.Load()
	if before != nil {
		before(st.epoch)
	}
	return writeSnapshot(w, st.g, st.diagIdx)
}

// writeSnapshot assembles one container from a graph and an optional
// diag index.
func writeSnapshot(w io.Writer, g *Graph, ix *DiagSampleIndex) error {
	var spill []byte
	if ix != nil {
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			return fmt.Errorf("exactsim: spilling diag index: %w", err)
		}
		spill = buf.Bytes()
	}
	sections := 1
	if spill != nil {
		sections = 2
	}
	sw, err := store.NewWriter(w, sections)
	if err != nil {
		return err
	}
	if _, err := sw.Section(store.SectionGraph, graph.BinarySize(g), func(pw io.Writer) error {
		return graph.EncodeCSR(pw, g)
	}); err != nil {
		return err
	}
	if spill != nil {
		if _, err := sw.Section(store.SectionDiagIndex, int64(len(spill)), func(pw io.Writer) error {
			_, werr := pw.Write(spill)
			return werr
		}); err != nil {
			return err
		}
	}
	return sw.Close()
}

// SaveSnapshot writes a service snapshot to path atomically (temp file
// + rename): a crash mid-write can never leave a half-container where
// the next boot's -snapshot flag would find it.
func (s *Service) SaveSnapshot(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	// CreateTemp's 0600 would survive the rename; snapshots are fleet
	// artifacts, give them normal file permissions.
	tmp.Chmod(0o644)
	if err := s.Snapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// OpenSnapshot starts a Service from a snapshot container: the graph is
// opened zero-copy (mmap-backed where possible) and the diagonal sample
// index spill, when present and indexing is enabled, is restored into
// the initial graph generation — so the first query after a restart
// starts as warm as the process that wrote the snapshot. The spill's
// binding is verified against the container's own graph section; a
// mismatch (a grafted or tampered container) is rejected with
// CodeInvalidArgument. The service owns the mapping and releases it on
// Close.
//
// The restored index binds to the (c, seed) the writer ran with; a
// service configured with different QuerierOptions simply serves cold
// (the index bypasses on mismatch) — wrong options can cost the warmth,
// never the exactness.
func OpenSnapshot(path string, opts ServiceOptions) (*Service, error) {
	f, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	g, aliased, err := graph.FromContainer(f)
	if err != nil {
		f.Close()
		return nil, Errorf(CodeInvalidArgument, "exactsim: %v", err)
	}

	var restored *DiagSampleIndex
	if sec, ok := f.Section(store.SectionDiagIndex); ok && opts.DiagIndexBytes >= 0 {
		ix := NewDiagSampleIndex(opts.DiagIndexBytes)
		if _, err := ix.ReadFrom(bytes.NewReader(sec.Payload)); err != nil {
			f.Close()
			return nil, Errorf(CodeInvalidArgument, "exactsim: %v", err)
		}
		if _, pending := ix.RestoredChecksum(); pending {
			// Bind the spill to the graph that arrived in the same
			// container. The graph's checksum is the verified section CRC,
			// so this is an O(1) comparison — and it catches containers
			// whose sections come from different graphs.
			if err := ix.BindRestored(g); err != nil {
				f.Close()
				return nil, Errorf(CodeInvalidArgument, "exactsim: %v", err)
			}
		}
		restored = ix
	}

	s, err := newService(g, opts, restored)
	if err != nil {
		f.Close()
		return nil, err
	}
	if aliased {
		// The graph aliases the container: the service owns both and
		// releases the mapping on Close.
		s.graphCloser = g
	} else {
		f.Close()
	}
	return s, nil
}

// InspectSnapshot describes a snapshot container without starting a
// service: section shapes, the graph's degree structure, and the diag
// spill binding. The graph section is fully validated (checksums always
// are); cmd/snapshot's inspect command prints the result.
type SnapshotInfo struct {
	// Mapped reports whether this open used the zero-copy mmap path.
	Mapped bool
	// Sections lists the container sections in file order.
	Sections []SnapshotSection
	// GraphStats summarizes the graph section.
	GraphStats GraphStats
	// GraphChecksum is the graph section's verified CRC64 — the identity
	// the diag spill binds to.
	GraphChecksum uint64
	// Diag holds the spill header when the container carries one.
	Diag *diag.SpillInfo
}

// SnapshotSection is one section of an inspected container.
type SnapshotSection struct {
	ID     uint32
	Offset int64
	Bytes  int64
	CRC    uint64
}

// InspectSnapshot opens, verifies and summarizes a snapshot container.
func InspectSnapshot(path string) (*SnapshotInfo, error) {
	f, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info := &SnapshotInfo{Mapped: f.Mapped()}
	for _, sec := range f.Sections() {
		info.Sections = append(info.Sections, SnapshotSection{
			ID: sec.ID, Offset: sec.Offset, Bytes: int64(len(sec.Payload)), CRC: sec.CRC,
		})
	}
	g, _, err := graph.FromContainer(f)
	if err != nil {
		return nil, err
	}
	info.GraphStats = Stats(g)
	info.GraphChecksum = g.Checksum()
	if sec, ok := f.Section(store.SectionDiagIndex); ok {
		di, err := diag.ReadSpillInfo(bytes.NewReader(sec.Payload))
		if err != nil {
			return nil, err
		}
		info.Diag = &di
	}
	return info, nil
}

// OpenBinary opens a binary graph file zero-copy: where the platform
// allows, the file is mmap'd and the graph's CSR arrays alias the
// mapping (no parsing, no allocation — Close the graph to release it).
// Elsewhere the same call transparently decodes into memory.
func OpenBinary(path string) (*Graph, error) { return graph.OpenBinary(path) }
